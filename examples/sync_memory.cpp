//===- examples/sync_memory.cpp - Section 3.7 subsorts in action ----------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Synchronous memories demand more than loop freedom: their read address
// must be stable at the start of the clock cycle, i.e. driven straight
// from a register with no combinational logic in between (Figure 8).
// The -direct/-indirect subsorts express this as an interface contract
// that composition checking enforces.
//
//===----------------------------------------------------------------------===//

#include "wiresort.h"

#include <cstdio>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

const char *subSortName(SubSort S) {
  switch (S) {
  case SubSort::Direct:
    return "direct";
  case SubSort::Indirect:
    return "indirect";
  case SubSort::None:
    return "-";
  }
  return "?";
}

void report(const Design &D, const Circuit &Circ,
            const std::map<ModuleId, ModuleSummary> &Summaries) {
  auto Violations = checkMemoryContracts(Circ, Summaries);
  if (Violations.empty()) {
    std::printf("  -> contracts satisfied\n");
    return;
  }
  for (const auto &Violation : Violations)
    std::printf("  -> VIOLATION: %s\n", Violation.message().c_str());
  (void)D;
}

} // namespace

int main() {
  Design D;
  // A synchronous RAM that publishes the Figure 8 contract on raddr_i.
  ModuleId Ram = D.addModule(gen::makeSyncRam(10, 32));
  // A well-behaved producer: address straight out of a register.
  ModuleId Direct = D.addModule(gen::makeAddrStage(10));
  // A sloppy producer: the address goes through an increment first.
  ModuleId Sloppy = [&] {
    Builder B("incrementing_addr");
    V En = B.input("en_i", 1);
    V Addr = B.regLoop("addr_r", 10);
    B.drive(Addr, B.mux(En, B.inc(Addr), Addr));
    B.output("raddr_o", B.inc(Addr)); // Adder after the register!
    return D.addModule(B.finish());
  }();

  std::map<ModuleId, ModuleSummary> Summaries;
  if (wiresort::support::Status Loop = analyzeDesign(D, Summaries);
      Loop.hasError()) {
    std::printf("loop: %s\n", Loop.describe().c_str());
    return 1;
  }

  for (ModuleId Id : {Direct, Sloppy}) {
    const Module &M = D.module(Id);
    WireId Out = M.findPort("raddr_o");
    std::printf("%s.raddr_o: %s (%s)\n", M.Name.c_str(),
                sortName(Summaries.at(Id).sortOf(Out)),
                subSortName(Summaries.at(Id).subSortOf(Out)));
  }

  std::printf("\nconnecting addr_stage -> sync_ram:\n");
  {
    Circuit Circ(D, "good");
    InstId S = Circ.addInstance(Direct, "stage");
    InstId R = Circ.addInstance(Ram, "ram");
    Circ.connect(S, "raddr_o", R, "raddr_i");
    report(D, Circ, Summaries);
  }

  std::printf("connecting incrementing_addr -> sync_ram:\n");
  {
    Circuit Circ(D, "bad");
    InstId S = Circ.addInstance(Sloppy, "stage");
    InstId R = Circ.addInstance(Ram, "ram");
    Circ.connect(S, "raddr_o", R, "raddr_i");
    report(D, Circ, Summaries);
  }
  return 0;
}
