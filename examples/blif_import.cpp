//===- examples/blif_import.cpp - Legacy-netlist annotation ---------------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// The Section 5.1/5.2 pipeline: import a synthesized BLIF netlist (here,
// one we synthesize ourselves from a forwarding FIFO) and infer its wire
// sorts automatically — annotations for legacy code, no source changes
// required. Pass a path to analyze your own BLIF file.
//
//===----------------------------------------------------------------------===//

#include "wiresort.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

int main(int ArgC, char **ArgV) {
  std::string Text;
  if (ArgC > 1) {
    std::ifstream In(ArgV[1]);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", ArgV[1]);
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Text = SS.str();
    std::printf("analyzing %s\n", ArgV[1]);
  } else {
    // Self-demo: synthesize a forwarding FIFO to BLIF, as Yosys would.
    Design D;
    ModuleId Id = D.addModule(gen::makeFifo({16, 3, true}));
    Module Gates = synth::lower(D, Id);
    Design FlatD;
    ModuleId FlatId = FlatD.addModule(std::move(Gates));
    Text = parse::writeBlif(FlatD, FlatId);
    std::printf("analyzing a synthesized forwarding FIFO "
                "(%zu bytes of BLIF)\n",
                Text.size());
  }

  auto File = parse::parseBlif(Text, ArgC > 1 ? ArgV[1] : "demo.blif");
  if (!File) {
    std::fprintf(stderr, "%s\n", File.describe().c_str());
    return 1;
  }

  Timer T;
  std::map<ModuleId, ModuleSummary> Summaries;
  if (wiresort::support::Status Loop = analyzeDesign(File->Design, Summaries);
      Loop.hasError()) {
    std::printf("combinational loop found:\n  %s\n",
                Loop.describe().c_str());
    return 1;
  }
  double Ms = T.milliseconds();

  const Module &Top = File->Design.module(File->Top);
  const ModuleSummary &S = Summaries.at(File->Top);
  size_t Counts[4] = {0, 0, 0, 0};
  for (WireId In : Top.Inputs)
    ++Counts[static_cast<int>(S.sortOf(In))];
  for (WireId Out : Top.Outputs)
    ++Counts[static_cast<int>(S.sortOf(Out))];

  Table Summary({"Model", "Gates", "Ports", "TS", "TP", "FS", "FP",
                 "Time (ms)"});
  Summary.addRow({Top.Name, Table::withCommas(Top.Nets.size()),
                  std::to_string(Top.numPorts()),
                  std::to_string(Counts[0]), std::to_string(Counts[1]),
                  std::to_string(Counts[2]), std::to_string(Counts[3]),
                  Table::secondsStr(Ms, 2)});
  Summary.print();

  // Per-port detail for modest interfaces.
  if (Top.numPorts() <= 64) {
    std::printf("\n");
    Table Detail({"Port", "Dir", "Sort"});
    for (WireId In : Top.Inputs)
      Detail.addRow({Top.wire(In).Name, "in", sortName(S.sortOf(In))});
    for (WireId Out : Top.Outputs)
      Detail.addRow({Top.wire(Out).Name, "out", sortName(S.sortOf(Out))});
    Detail.print();
  }
  return 0;
}
