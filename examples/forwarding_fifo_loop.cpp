//===- examples/forwarding_fifo_loop.cpp - The Figure 3 story -------------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Recreates the paper's motivating bug (Figure 3): three modules, each
// individually fine, whose composition hides a combinational loop that
// BaseJump STL's helpful/demanding classification certifies as safe.
// Shows the three ways of finding (or missing) it:
//
//   1. BaseJump's endpoint rules — approve the connection (unsound);
//   2. wire sorts at circuit level — report the loop with module/port
//      names, before any synthesis;
//   3. gate-level cycle detection after lowering — also finds it, but
//      late and phrased in anonymous gate names.
//
//===----------------------------------------------------------------------===//

#include "wiresort.h"

#include <cstdio>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

int main() {
  Design D;
  ModuleId Normal = D.addModule(gen::makeFifo({8, 3, false}));
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 3, true}));
  ModuleId Pass = D.addModule(gen::makePassthrough(1));

  std::map<ModuleId, ModuleSummary> Summaries;
  if (wiresort::support::Status Loop = analyzeDesign(D, Summaries);
      Loop.hasError()) {
    std::printf("unexpected: %s\n", Loop.describe().c_str());
    return 1;
  }

  // 1. BaseJump's view of the forwarding-FIFO -> normal-FIFO connection.
  const Module &FwdM = D.module(Fwd);
  const Module &NormalM = D.module(Normal);
  ProducerEndpoint Prod{FwdM.findPort("yumi_i"), FwdM.findPort("v_o"),
                        FwdM.findPort("data_o")};
  ConsumerEndpoint Cons{NormalM.findPort("ready_o"),
                        NormalM.findPort("v_i"),
                        NormalM.findPort("data_i")};
  Temperament P = classifyProducer(Summaries.at(Fwd), Prod);
  Temperament C = classifyConsumer(Summaries.at(Normal), Cons);
  std::printf("BaseJump: producer endpoint is %s, consumer endpoint is "
              "%s -> connection %s\n",
              temperamentName(P), temperamentName(C),
              baseJumpAllowsConnection(P, C) ? "ALLOWED" : "forbidden");

  // The Figure 3 wiring: fwd -> normal directly, and fwd -> monitor ->
  // module X -> back into fwd's v_i.
  Circuit Circ(D, "figure3");
  InstId NormalInst = Circ.addInstance(Normal, "fifo_normal");
  InstId FwdInst = Circ.addInstance(Fwd, "fifo_fwd");
  InstId Monitor = Circ.addInstance(Pass, "monitor");
  InstId X = Circ.addInstance(Pass, "module_x");
  Circ.connect(FwdInst, "v_o", NormalInst, "v_i");
  Circ.connect(FwdInst, "v_o", Monitor, "data_i");
  Circ.connect(Monitor, "data_o", X, "data_i");
  Circ.connect(X, "data_o", FwdInst, "v_i");

  // 2. Wire sorts at the HDL level.
  CircuitCheckResult Result = checkCircuit(Circ, Summaries);
  if (!Result.WellConnected && Result.Diags.hasError()) {
    std::printf("wire sorts: %s\n", Result.Diags.describe().c_str());
  } else {
    std::printf("wire sorts: no loop (unexpected!)\n");
    return 1;
  }

  // 3. The synthesis-time experience: flatten to gates first.
  ModuleId Top = Circ.seal();
  Module Gates = synth::lower(D, Top);
  auto Netlist = synth::detectCycles(Gates);
  std::printf("synthesis: %zu primitive gates; loop %s", Gates.Nets.size(),
              Netlist.HasLoop ? "found, e.g. through gate-level wires:\n"
                              : "missed\n");
  if (Netlist.HasLoop && Netlist.Diags.hasError()) {
    size_t Shown = 0;
    std::vector<std::string> Labels =
        Netlist.Diags.firstError().witnessLabels();
    for (const std::string &Label : Labels) {
      std::printf("  %s\n", Label.c_str());
      if (++Shown == 6 && Labels.size() > 6) {
        std::printf("  ... (%zu more)\n", Labels.size() - 6);
        break;
      }
    }
  }
  std::printf("\nThe wire-sort report names ports of your design; the "
              "netlist report names synthesized bits.\n");
  return 0;
}
