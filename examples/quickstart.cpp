//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Build a module with the PyRTL-style Builder, infer its wire sorts, wire
// a small circuit, and check well-connectedness — the full Stage 1/2/3
// pipeline of Section 3.5 in one file.
//
//===----------------------------------------------------------------------===//

#include "wiresort.h"

#include <cstdio>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

int main() {
  Design D;

  // --- Stage 0: describe hardware ----------------------------------------
  // A normal FIFO (the "universal interface") and a forwarding FIFO,
  // identical at the port level — only the sorts tell them apart.
  ModuleId Normal = D.addModule(gen::makeFifo({32, 4, false}));
  ModuleId Fwd = D.addModule(gen::makeFifo({32, 4, true}));

  // --- Stage 1: per-module sort inference ---------------------------------
  std::map<ModuleId, ModuleSummary> Summaries;
  if (wiresort::support::Status Loop = analyzeDesign(D, Summaries);
      Loop.hasError()) {
    std::printf("module-internal loop: %s\n", Loop.describe().c_str());
    return 1;
  }
  for (ModuleId Id : {Normal, Fwd}) {
    const Module &M = D.module(Id);
    std::printf("%s:\n", M.Name.c_str());
    for (WireId In : M.Inputs)
      std::printf("  input  %-8s %s\n", M.wire(In).Name.c_str(),
                  sortName(Summaries.at(Id).sortOf(In)));
    for (WireId Out : M.Outputs)
      std::printf("  output %-8s %s\n", M.wire(Out).Name.c_str(),
                  sortName(Summaries.at(Id).sortOf(Out)));
  }

  // --- Stages 2 and 3: compose and check ----------------------------------
  Circuit Circ(D, "two_queues");
  InstId Producer = Circ.addInstance(Fwd, "producer_q");
  InstId Consumer = Circ.addInstance(Normal, "consumer_q");
  Circ.connect(Producer, "v_o", Consumer, "v_i");
  Circ.connect(Producer, "data_o", Consumer, "data_i");
  Circ.connect(Consumer, "ready_o", Producer, "yumi_i");

  CircuitCheckResult Result = checkCircuit(Circ, Summaries);
  std::printf("\ncircuit '%s': %s (%zu connections safe by sorts alone, "
              "%zu needed the whole-circuit check)\n",
              Circ.name().c_str(),
              Result.WellConnected ? "well-connected" : "LOOPED",
              Result.SafeBySort, Result.NeedsCheck);
  return Result.WellConnected ? 0 : 1;
}
