//===- examples/riscv_soc.cpp - The Section 5.3 case study ----------------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Builds the 11-module multithreaded RV32I CPU, runs the wire-sort
// pipeline over it, then loads a Fibonacci program and executes it on
// the cycle-accurate simulator — proving the checked design is real,
// working hardware.
//
// With --emit-blif FILE the hierarchical CPU is also lowered to
// primitive gates and written as BLIF, which is how the CI trace stage
// (tools/run_tests.sh) gets a real multi-module netlist to feed
// wiresort-check --trace-out.
//
//===----------------------------------------------------------------------===//

#include "wiresort.h"

#include <cstdio>
#include <cstring>
#include <fstream>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;
using namespace wiresort::riscv;

int main(int ArgC, char **ArgV) {
  std::string BlifOut;
  for (int I = 1; I < ArgC; ++I) {
    if (std::strcmp(ArgV[I], "--emit-blif") == 0 && I + 1 < ArgC) {
      BlifOut = ArgV[++I];
    } else {
      std::fprintf(stderr, "usage: %s [--emit-blif FILE]\n", ArgV[0]);
      return 2;
    }
  }

  Design D;
  Cpu C = buildCpu(D);

  // Stage 1: infer all 11 module summaries.
  Timer InferTimer;
  std::map<ModuleId, ModuleSummary> Summaries;
  if (wiresort::support::Status Loop = analyzeDesign(D, Summaries);
      Loop.hasError()) {
    std::printf("loop inside a module: %s\n", Loop.describe().c_str());
    return 1;
  }
  double InferMs = InferTimer.milliseconds();

  std::printf("module sorts (11 modules):\n");
  for (ModuleId Id : C.Modules) {
    const Module &M = D.module(Id);
    size_t Counts[4] = {0, 0, 0, 0};
    for (WireId In : M.Inputs)
      ++Counts[static_cast<int>(Summaries.at(Id).sortOf(In))];
    for (WireId Out : M.Outputs)
      ++Counts[static_cast<int>(Summaries.at(Id).sortOf(Out))];
    std::printf("  %-12s TS=%zu TP=%zu FS=%zu FP=%zu\n", M.Name.c_str(),
                Counts[0], Counts[1], Counts[2], Counts[3]);
  }

  // Stages 2/3: check the full CPU composition.
  Timer CheckTimer;
  CircuitCheckResult Result = checkCircuit(C.Circ, Summaries);
  double CheckMs = CheckTimer.milliseconds();
  std::printf("\nsort inference: %.1f ms; circuit check: %.1f ms -> %s\n",
              InferMs, CheckMs,
              Result.WellConnected ? "well-connected" : "LOOPED");
  if (!Result.WellConnected)
    return 1;

  // Execute fib(12) on the checked design.
  ModuleId Top = sealCpu(C);

  if (!BlifOut.empty()) {
    // Lower the whole sealed hierarchy to gates and export it; the CPU
    // comes back in through parse::parseBlif as an ordinary multi-module
    // netlist (the CI trace stage feeds it to wiresort-check).
    synth::HierLowered Low = synth::lowerHierarchical(D, Top);
    std::ofstream Out(BlifOut);
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", BlifOut.c_str());
      return 2;
    }
    Out << parse::writeBlif(Low.Design, Low.Top);
    if (!Out.good()) {
      std::fprintf(stderr, "error writing '%s'\n", BlifOut.c_str());
      return 2;
    }
    std::printf("blif written to %s\n", BlifOut.c_str());
  }
  Module Flat = synth::inlineInstances(D, Top);
  auto Sim = sim::Simulator::create(Flat);
  if (!Sim) {
    std::printf("simulator: %s\n", Sim.describe().c_str());
    return 1;
  }
  std::vector<uint64_t> Program = {
      addi(1, 0, 0),  addi(2, 0, 1),  addi(3, 0, 12),
      beq(3, 0, 24),  add(4, 1, 2),   addi(1, 2, 0),
      addi(2, 4, 0),  addi(3, 3, -1), jal(0, -20),
      jal(0, 0),
  };
  MemId IMem = 0, Bank0 = 0;
  for (MemId M = 0; M != Flat.Memories.size(); ++M) {
    if (Flat.Memories[M].Name == "fetch.imem")
      IMem = M;
    if (Flat.Memories[M].Name == "regfile.bank0")
      Bank0 = M;
  }
  Sim->loadMemory(IMem, Program);
  Sim->setInput("sched.run_i", 1);
  Sim->setInput("fetch.imem_wen_i", 0);
  Sim->setInput("fetch.imem_waddr_i", 0);
  Sim->setInput("fetch.imem_wdata_i", 0);
  for (int Cycle = 0; Cycle != 600; ++Cycle)
    Sim->step();

  std::printf("\nfib(12) on all %u hardware threads:\n",
              C.Config.NumThreads);
  for (uint16_t T = 0; T != C.Config.NumThreads; ++T)
    std::printf("  thread %u: x1 = %llu\n", T,
                static_cast<unsigned long long>(
                    Sim->memoryWord(Bank0, (uint64_t(T) << 5) | 1)));
  std::printf("(expected 144 everywhere)\n");
  return 0;
}
