#!/bin/sh
# Four-stage test driver:
#
#   1. the regular suite in the default build tree (configured if
#      absent) — includes the structured-diagnostics suites (DiagTest,
#      ParseDiagTest) and the golden-file CLI contract tests
#      (tests/tools/run_cli_golden.sh, docs/DIAGNOSTICS.md);
#   2. a ThreadSanitizer build of the SummaryEngine suites — the engine's
#      scheduler/cache locking (docs/ENGINE.md) is a correctness claim,
#      and so is the byte-identical serial/parallel/warm diag ordering
#      the determinism trials assert, so the concurrency-heavy tests
#      rerun under -fsanitize=thread; the bit-parallel kernel suite
#      rides along (its masks feed the engine);
#   3. an UndefinedBehaviorSanitizer build of the kernel suite — the CSR
#      sweep (docs/KERNEL.md) lives on shifts and index arithmetic, which
#      is exactly UBSan's beat — followed by a rerun of the regular-build
#      kernel suite with WIRESORT_KERNEL_ISA=scalar forced, so the env
#      override path and the scalar sweep variant stay covered even on
#      hosts whose CPUID would always dispatch AVX (the in-process
#      cross-ISA differential inside the suite still exercises every
#      supported wider variant);
#   4. a jq smoke check that live `wiresort-check --format json` output
#      is valid NDJSON (skipped when jq is absent);
#   5. a trace/stats validation stage (docs/OBSERVABILITY.md): export the
#      riscv_soc CPU as BLIF, run `wiresort-check --trace-out --stats`
#      over it, and jq-check the Chrome trace (ph/ts/tid on every event,
#      monotonic timestamps, engine/kernel/parse categories, cache
#      hit/miss attributes on engine.module spans) and that the fault.*
#      robustness and serve.* overload counters are present, then run
#      the bench_engine disabled-vs-enabled tracing and failpoint
#      overhead smokes;
#   6. an AddressSanitizer build of the fault-injection suites — the
#      200-schedule fault soak (ctest label `soak`) plus the
#      crash-recovery and failpoint unit suites (docs/ROBUSTNESS.md):
#      injected faults walk the error/retry/quarantine paths that
#      ordinary runs never touch, which is exactly where leaks and
#      use-after-frees hide — plus the kernel suite, whose cross-ISA
#      differential then runs every vector sweep variant's row-arena
#      indexing under ASan;
#   7. the scale tier (docs/SCALE.md): the shard-differential,
#      metamorphic, and generator-determinism suites (ctest label
#      `scale`), a TSan rerun of the in-process shard paths, and a jq
#      byte-comparison of serial vs `--shards 4` vs merged `--shard i/4`
#      wiresort-check NDJSON on the golden fixtures;
#   8. the wire-format contract (docs/FORMATS.md): on the golden
#      fixtures, text -> binary -> text summary conversion must
#      round-trip byte-identically, repeated binary writes must be
#      byte-stable, and the binary sidecar a 4-shard fork run writes
#      must be byte-identical to the serial one.
#   9. the serving tier (docs/SERVING.md): the `served`-labelled suites
#      (driver facade + in-process server + concurrent soak + the
#      overload-safety suite) rerun under TSan — the resident cache,
#      telemetry mutex, and connection pool are concurrency claims —
#      and the two serving soaks rerun under ASan (overload paths move
#      buffers across threads under fault schedules), followed by an
#      out-of-process golden session: start wiresort-served on a
#      scratch socket, replay the golden corpus through wiresort-client,
#      byte-compare every response against a cold serial wiresort-check
#      run, probe health, stop a second instance with SIGTERM (the
#      graceful-drain path), and assert clean shutdowns that leak
#      neither socket files nor temp files.
#
# Usage: tools/run_tests.sh [--skip-slow]
#   --skip-slow  excludes the ctest label `slow` (the 200-seed
#                differential and fault soaks) from the regular stage; the
#                TSan stage always runs the differential soak (races love
#                randomized schedules) and the ASan stage always runs the
#                fault soak.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD="$ROOT/build"
TSAN_BUILD="$ROOT/build-tsan"

LABEL_ARGS=""
for Arg in "$@"; do
  case "$Arg" in
  --skip-slow) LABEL_ARGS="-LE slow" ;;
  *)
    echo "unknown argument: $Arg" >&2
    exit 2
    ;;
  esac
done

echo "=== stage 1: full suite ($BUILD) ==="
[ -f "$BUILD/CMakeCache.txt" ] || cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$(nproc)"
# shellcheck disable=SC2086 # LABEL_ARGS is intentionally word-split.
(cd "$BUILD" && ctest --output-on-failure $LABEL_ARGS)

echo
echo "=== stage 2: SummaryEngine suites under ThreadSanitizer ($TSAN_BUILD) ==="
[ -f "$TSAN_BUILD/CMakeCache.txt" ] || cmake -B "$TSAN_BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$TSAN_BUILD" -j "$(nproc)" \
  --target engine_tests differential_tests kernel_tests trace_tests
# halt_on_error so a single race fails the run instead of scrolling by.
TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD/tests/engine_tests"
TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD/tests/differential_tests"
TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD/tests/kernel_tests"
# The trace layer's per-thread buffers and counter registry are lockless
# on the hot path; the suite hammers them from a ThreadPool on purpose.
TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD/tests/trace_tests"

echo
echo "=== stage 3: kernel suite under UndefinedBehaviorSanitizer ($ROOT/build-ubsan) ==="
UBSAN_BUILD="$ROOT/build-ubsan"
[ -f "$UBSAN_BUILD/CMakeCache.txt" ] || cmake -B "$UBSAN_BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=undefined"
cmake --build "$UBSAN_BUILD" -j "$(nproc)" --target kernel_tests
"$UBSAN_BUILD/tests/kernel_tests"
# Forced-scalar rerun of the regular build: WIRESORT_KERNEL_ISA is read
# once at first dispatch, so this covers the env-override parse and runs
# the whole suite (including the multi-word lane rows) on the portable
# sweep loops regardless of host CPU.
echo
echo "=== stage 3b: kernel suite with WIRESORT_KERNEL_ISA=scalar ==="
WIRESORT_KERNEL_ISA=scalar "$BUILD/tests/kernel_tests"

echo
echo "=== stage 4: CLI JSON smoke check (jq) ==="
if command -v jq >/dev/null 2>&1; then
  CHECK="$BUILD/tools/wiresort-check"
  FIXTURES="$ROOT/tests/tools"
  # Loop-free: one verdict line; loopy: diag lines + verdict. Every line
  # must parse standalone (the NDJSON contract, docs/DIAGNOSTICS.md).
  (cd "$FIXTURES" && "$CHECK" loopfree.blif --format json) | jq -e . \
    >/dev/null
  (cd "$FIXTURES" && "$CHECK" loopy.blif --format json || [ $? -eq 1 ]) \
    | jq -e . >/dev/null
  echo "wiresort-check --format json output parses as NDJSON"
else
  echo "jq not found; skipping"
fi

echo
echo "=== stage 5: trace & stats validation (jq) ==="
if command -v jq >/dev/null 2>&1; then
  TRACE_TMP=$(mktemp -d)
  trap 'rm -rf "$TRACE_TMP"' EXIT
  # A real multi-module netlist: the Section 5.3 CPU, lowered and
  # exported by the example binary itself.
  "$BUILD/examples/riscv_soc" --emit-blif "$TRACE_TMP/soc.blif" >/dev/null
  "$BUILD/tools/wiresort-check" "$TRACE_TMP/soc.blif" --quiet \
    --threads 2 --stats --trace-out "$TRACE_TMP/trace.json" \
    >"$TRACE_TMP/stats.txt"
  TRACE="$TRACE_TMP/trace.json"
  # The document parses, is non-empty, and every event carries the
  # Chrome trace-event basics.
  jq -e '.traceEvents | length > 0' "$TRACE" >/dev/null
  jq -e '[.traceEvents[] | has("ph") and has("ts") and has("pid") and
          has("tid")] | all' "$TRACE" >/dev/null
  # Timestamps are monotonic (parents flushed before children).
  jq -e '[.traceEvents[].ts] as $t | $t == ($t | sort)' "$TRACE" \
    >/dev/null
  # Every instrumented layer shows up.
  jq -e '[.traceEvents[].cat // empty] | unique as $c |
         (["engine", "kernel", "parse"] - $c) == []' "$TRACE" >/dev/null
  # engine.module spans carry the cache hit/miss attribute.
  jq -e '[.traceEvents[] | select(.name == "engine.module") |
          .args.result] | length > 0 and
         (unique - ["hit", "miss", "ascribed", "loop"]) == []' \
    "$TRACE" >/dev/null
  grep -q 'engine.cache_misses' "$TRACE_TMP/stats.txt"
  # The robustness counters are interned at startup so they are visible
  # (at zero, here) in every stats report (docs/ROBUSTNESS.md).
  grep -q 'fault.injected' "$TRACE_TMP/stats.txt"
  grep -q 'fault.quarantined_records' "$TRACE_TMP/stats.txt"
  # Likewise the wire codec counters (docs/FORMATS.md): interned at
  # startup, so present even in a run that never touched binary data.
  grep -q 'wire.records_written' "$TRACE_TMP/stats.txt"
  grep -q 'wire.records_read' "$TRACE_TMP/stats.txt"
  grep -q 'wire.checksum_failures' "$TRACE_TMP/stats.txt"
  # And the serving layer's overload counters (docs/SERVING.md): zero on
  # a CLI run by construction — nothing serves — but always enumerated.
  grep -q 'serve.admitted' "$TRACE_TMP/stats.txt"
  grep -q 'serve.shed' "$TRACE_TMP/stats.txt"
  grep -q 'serve.timed_out' "$TRACE_TMP/stats.txt"
  grep -q 'serve.queue_depth' "$TRACE_TMP/stats.txt"
  echo "trace-out document passes the jq contract checks"
  # Disabled-vs-enabled overhead smokes — tracing and failpoints share
  # the same one-relaxed-load budget (the < 2% bar is asserted by
  # eye/trend tooling, not a hard gate: CI machines are noisy).
  "$BUILD/bench/bench_engine" --quick | grep -A2 "overhead smoke"
else
  echo "jq not found; skipping"
fi

echo
echo "=== stage 6: fault-injection suites under AddressSanitizer ($ROOT/build-asan) ==="
ASAN_BUILD="$ROOT/build-asan"
[ -f "$ASAN_BUILD/CMakeCache.txt" ] || cmake -B "$ASAN_BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address"
cmake --build "$ASAN_BUILD" -j "$(nproc)" \
  --target fault_soak_tests engine_tests support_tests kernel_tests
ASAN_OPTIONS="abort_on_error=1" "$ASAN_BUILD/tests/fault_soak_tests"
ASAN_OPTIONS="abort_on_error=1" "$ASAN_BUILD/tests/engine_tests"
ASAN_OPTIONS="abort_on_error=1" "$ASAN_BUILD/tests/support_tests"
# The cross-ISA differential (SimdKernelTest) under ASan: every
# supported sweep variant's loads/stores against the flat row arena,
# including the partial-row tails at the 63/65/127/129/511/513 source
# boundaries.
ASAN_OPTIONS="abort_on_error=1" "$ASAN_BUILD/tests/kernel_tests"

echo
echo "=== stage 7: scale tier — sharding determinism (docs/SCALE.md) ==="
cmake --build "$BUILD" -j "$(nproc)" \
  --target shard_differential_tests metamorphic_tests \
  gen_determinism_tests wiresort-check wiresort-mega
(cd "$BUILD" && ctest --output-on-failure -L scale)
# The in-process shard coordinator (waves of worker threads merging into
# per-shard buffers) is a concurrency claim like the engine's: rerun it
# under TSan. Fork-mode trials ride along; TSan tolerates fork+pipe.
cmake --build "$TSAN_BUILD" -j "$(nproc)" --target shard_differential_tests
TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD/tests/shard_differential_tests"
if command -v jq >/dev/null 2>&1; then
  SCALE_TMP=$(mktemp -d)
  # Keep stage 5's temp dir in the cleanup when both stages ran.
  trap 'rm -rf "${TRACE_TMP:-}" "$SCALE_TMP"' EXIT
  CHECK="$BUILD/tools/wiresort-check"
  FIXTURES="$ROOT/tests/tools"
  for Fixture in loopfree.blif loopy.blif; do
    # Serial vs one fork-sharded invocation: byte-identical NDJSON.
    (cd "$FIXTURES" && "$CHECK" "$Fixture" --format json) \
      >"$SCALE_TMP/serial.json" || [ $? -eq 1 ]
    (cd "$FIXTURES" && "$CHECK" "$Fixture" --format json --shards 4) \
      >"$SCALE_TMP/sharded.json" || [ $? -eq 1 ]
    cmp "$SCALE_TMP/serial.json" "$SCALE_TMP/sharded.json"
    # Four scripted slices: their diag lines (everything except the
    # per-slice verdict line) must merge to exactly the serial diags.
    : >"$SCALE_TMP/slices.json"
    for I in 0 1 2 3; do
      (cd "$FIXTURES" && "$CHECK" "$Fixture" --format json --shard $I/4) \
        >>"$SCALE_TMP/slices.json" || [ $? -eq 1 ]
    done
    grep -v '"verdict"' "$SCALE_TMP/slices.json" | sort \
      >"$SCALE_TMP/slices_sorted.json" || true
    grep -v '"verdict"' "$SCALE_TMP/serial.json" | sort \
      >"$SCALE_TMP/serial_sorted.json" || true
    cmp "$SCALE_TMP/serial_sorted.json" "$SCALE_TMP/slices_sorted.json"
  done
  echo "serial, --shards 4, and merged --shard i/4 NDJSON agree byte-for-byte"
else
  echo "jq not found; skipping the CLI byte-comparison"
fi

echo
echo "=== stage 8: wire-format round-trip contract (docs/FORMATS.md) ==="
WIRE_TMP=$(mktemp -d)
trap 'rm -rf "${TRACE_TMP:-}" "${SCALE_TMP:-}" "$WIRE_TMP"' EXIT
CHECK="$BUILD/tools/wiresort-check"
# Loop-free fixtures only: a WS101 verdict writes no sidecar. The CLI
# golden fixture plus the 12-module Section 5.3 CPU netlist.
cp "$ROOT/tests/tools/loopfree.blif" "$WIRE_TMP/loopfree.blif"
"$BUILD/examples/riscv_soc" --emit-blif "$WIRE_TMP/soc.blif" >/dev/null
for Fixture in loopfree.blif soc.blif; do
  F="$WIRE_TMP/$Fixture"
  # A text sidecar, converted text -> binary -> text, must come back
  # byte-identical — the two formats carry the same information.
  "$CHECK" "$F" --quiet \
    --summaries "$WIRE_TMP/text1.wsort" --summary-format text >/dev/null
  "$CHECK" "$F" --quiet --convert-summaries "$WIRE_TMP/text1.wsort" \
    --summaries "$WIRE_TMP/bin.wsort" --summary-format binary >/dev/null
  "$CHECK" "$F" --quiet --convert-summaries "$WIRE_TMP/bin.wsort" \
    --summaries "$WIRE_TMP/text2.wsort" --summary-format text >/dev/null
  cmp "$WIRE_TMP/text1.wsort" "$WIRE_TMP/text2.wsort"
  # Binary writes are deterministic: a direct binary sidecar matches
  # the converted one byte for byte, serial or 4-shard fork alike.
  "$CHECK" "$F" --quiet \
    --summaries "$WIRE_TMP/bin_direct.wsort" --summary-format binary \
    >/dev/null
  cmp "$WIRE_TMP/bin.wsort" "$WIRE_TMP/bin_direct.wsort"
  "$CHECK" "$F" --quiet --shards 4 \
    --summaries "$WIRE_TMP/bin_sharded.wsort" --summary-format binary \
    >/dev/null
  cmp "$WIRE_TMP/bin_direct.wsort" "$WIRE_TMP/bin_sharded.wsort"
done
echo "text <-> binary summaries round-trip; serial and sharded binary sidecars agree byte-for-byte"

echo
echo "=== stage 9: serving tier — resident daemon (docs/SERVING.md) ==="
# The served-labelled suites already ran in stage 1's default tier; here
# they rerun under ThreadSanitizer, because one resident CheckService
# handling concurrent requests (shared summary cache, serialized
# telemetry window, pooled connections) is a concurrency claim.
cmake --build "$TSAN_BUILD" -j "$(nproc)" \
  --target driver_tests served_soak_tests served_robustness_tests
TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD/tests/driver_tests"
TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD/tests/served_soak_tests"
TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD/tests/served_robustness_tests"
# The serving soaks again under AddressSanitizer (stage 6 built the
# build tree): the overload paths shuttle request/response buffers
# across threads under fault schedules — exactly where a lifetime bug
# would hide from the default build.
cmake --build "$ASAN_BUILD" -j "$(nproc)" \
  --target served_soak_tests served_robustness_tests
ASAN_OPTIONS="abort_on_error=1" "$ASAN_BUILD/tests/served_soak_tests"
ASAN_OPTIONS="abort_on_error=1" "$ASAN_BUILD/tests/served_robustness_tests"
# Out-of-process golden session: daemon up, golden corpus through the
# client byte-compared against serial CLI runs, clean shutdown with no
# leaked socket. (The script itself asserts the unlink; we re-assert
# from out here that its scratch dir is gone too.)
cmake --build "$BUILD" -j "$(nproc)" \
  --target wiresort-served wiresort-client wiresort-check
SERVED_SOCKS_BEFORE=$(find "${TMPDIR:-/tmp}" -maxdepth 1 \
  -name 'served_golden.*' 2>/dev/null | wc -l)
sh "$ROOT/tests/tools/run_served_golden.sh" \
  "$BUILD/tools/wiresort-served" "$BUILD/tools/wiresort-client" \
  "$BUILD/tools/wiresort-check" "$ROOT/tests/tools"
SERVED_SOCKS_AFTER=$(find "${TMPDIR:-/tmp}" -maxdepth 1 \
  -name 'served_golden.*' 2>/dev/null | wc -l)
if [ "$SERVED_SOCKS_AFTER" -gt "$SERVED_SOCKS_BEFORE" ]; then
  echo "FAIL: serving golden session leaked scratch dirs" >&2
  exit 1
fi
echo "resident daemon matches serial CLI byte-for-byte and shuts down clean"

echo
echo "all suites passed (regular + TSan + UBSan + CLI smoke + trace + ASan soak + scale + wire + serving)"
