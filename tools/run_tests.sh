#!/bin/sh
# Four-stage test driver:
#
#   1. the regular suite in the default build tree (configured if
#      absent) — includes the structured-diagnostics suites (DiagTest,
#      ParseDiagTest) and the golden-file CLI contract tests
#      (tests/tools/run_cli_golden.sh, docs/DIAGNOSTICS.md);
#   2. a ThreadSanitizer build of the SummaryEngine suites — the engine's
#      scheduler/cache locking (docs/ENGINE.md) is a correctness claim,
#      and so is the byte-identical serial/parallel/warm diag ordering
#      the determinism trials assert, so the concurrency-heavy tests
#      rerun under -fsanitize=thread; the bit-parallel kernel suite
#      rides along (its masks feed the engine);
#   3. an UndefinedBehaviorSanitizer build of the kernel suite — the CSR
#      sweep (docs/KERNEL.md) lives on shifts and index arithmetic, which
#      is exactly UBSan's beat;
#   4. a jq smoke check that live `wiresort-check --format json` output
#      is valid NDJSON (skipped when jq is absent).
#
# Usage: tools/run_tests.sh [--skip-slow]
#   --skip-slow  excludes the ctest label `slow` (the 200-seed
#                differential soak) from the regular stage; the TSan stage
#                always runs it, since races love randomized schedules.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD="$ROOT/build"
TSAN_BUILD="$ROOT/build-tsan"

LABEL_ARGS=""
for Arg in "$@"; do
  case "$Arg" in
  --skip-slow) LABEL_ARGS="-LE slow" ;;
  *)
    echo "unknown argument: $Arg" >&2
    exit 2
    ;;
  esac
done

echo "=== stage 1: full suite ($BUILD) ==="
[ -f "$BUILD/CMakeCache.txt" ] || cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$(nproc)"
# shellcheck disable=SC2086 # LABEL_ARGS is intentionally word-split.
(cd "$BUILD" && ctest --output-on-failure $LABEL_ARGS)

echo
echo "=== stage 2: SummaryEngine suites under ThreadSanitizer ($TSAN_BUILD) ==="
[ -f "$TSAN_BUILD/CMakeCache.txt" ] || cmake -B "$TSAN_BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$TSAN_BUILD" -j "$(nproc)" \
  --target engine_tests differential_tests kernel_tests
# halt_on_error so a single race fails the run instead of scrolling by.
TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD/tests/engine_tests"
TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD/tests/differential_tests"
TSAN_OPTIONS="halt_on_error=1" "$TSAN_BUILD/tests/kernel_tests"

echo
echo "=== stage 3: kernel suite under UndefinedBehaviorSanitizer ($ROOT/build-ubsan) ==="
UBSAN_BUILD="$ROOT/build-ubsan"
[ -f "$UBSAN_BUILD/CMakeCache.txt" ] || cmake -B "$UBSAN_BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=undefined"
cmake --build "$UBSAN_BUILD" -j "$(nproc)" --target kernel_tests
"$UBSAN_BUILD/tests/kernel_tests"

echo
echo "=== stage 4: CLI JSON smoke check (jq) ==="
if command -v jq >/dev/null 2>&1; then
  CHECK="$BUILD/tools/wiresort-check"
  FIXTURES="$ROOT/tests/tools"
  # Loop-free: one verdict line; loopy: diag lines + verdict. Every line
  # must parse standalone (the NDJSON contract, docs/DIAGNOSTICS.md).
  (cd "$FIXTURES" && "$CHECK" loopfree.blif --format json) | jq -e . \
    >/dev/null
  (cd "$FIXTURES" && "$CHECK" loopy.blif --format json || [ $? -eq 1 ]) \
    | jq -e . >/dev/null
  echo "wiresort-check --format json output parses as NDJSON"
else
  echo "jq not found; skipping"
fi

echo
echo "all suites passed (regular + TSan + UBSan + CLI smoke)"
