//===- tools/wiresort-mega.cpp - Mega-scale generate-and-check driver -----===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Generates a gen::MegaScale design from a named preset (or explicit
// parameters) and runs the full paper pipeline over it: Stage-1 summary
// inference (serial, threaded, or fork-sharded) followed by the Stage-3
// circuit check of the top-level composition. This is the end-to-end
// witness that designs of 100k..1M flattened instances check in seconds
// (docs/SCALE.md), and the cross-process oracle the generator-determinism
// suite shells out to (--fingerprint).
//
//   wiresort-mega 100k                       # generate + check, verdict
//   wiresort-mega 100k --shards 8            # fork-sharded Stage-1 +
//                                            # sharded Stage-3
//   wiresort-mega ci --seed 7 --fingerprint  # digest only, no analysis
//   wiresort-mega ci-loop --json             # stable JSON verdict line
//   wiresort-mega 1m --threads 8 --quiet
//
// Exit-code contract (matches wiresort-check, docs/DIAGNOSTICS.md):
// 0 = well-connected, 1 = loop diagnostics, 2 = usage error, 3 =
// cancelled by --timeout-ms. --json emits NDJSON diagnostics followed by
// one deterministic verdict line carrying the design's fingerprint and
// flat instance count — byte-stable across shard counts and processes,
// which the scale stage of tools/run_tests.sh diff-compares.
//
//===----------------------------------------------------------------------===//

#include "wiresort.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

int usage(const std::string &Why) {
  std::fprintf(stderr, "error: %s\n", Why.c_str());
  std::fprintf(
      stderr,
      "usage: wiresort-mega <preset> [--seed N] [--inject-loop]\n"
      "                     [--fingerprint] [--json] [--quiet]\n"
      "                     [--threads N] [--shards N] [--timeout-ms N]\n"
      "presets: ci ci-loop ci-noc ci-fabric 10k 100k 100k-noc "
      "100k-fabric 1m\n");
  return 2;
}

} // namespace

int main(int ArgC, char **ArgV) {
  std::string PresetName;
  std::optional<uint64_t> SeedOverride;
  bool InjectLoop = false;
  bool FingerprintOnly = false;
  bool Json = false;
  bool Quiet = false;
  unsigned Threads = 0;
  unsigned Shards = 0;
  uint64_t TimeoutMs = 0;

  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    auto takeValue = [&](uint64_t &Slot) {
      if (I + 1 >= ArgC)
        return false;
      Slot = std::strtoull(ArgV[++I], nullptr, 10);
      return true;
    };
    if (Arg == "--seed") {
      uint64_t V = 0;
      if (!takeValue(V))
        return usage("--seed expects a number");
      SeedOverride = V;
    } else if (Arg == "--inject-loop") {
      InjectLoop = true;
    } else if (Arg == "--fingerprint") {
      FingerprintOnly = true;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--threads") {
      uint64_t V = 0;
      if (!takeValue(V) || V == 0)
        return usage("--threads expects a positive count");
      Threads = static_cast<unsigned>(V);
    } else if (Arg == "--shards") {
      uint64_t V = 0;
      if (!takeValue(V) || V == 0)
        return usage("--shards expects a positive worker count");
      Shards = static_cast<unsigned>(V);
    } else if (Arg == "--timeout-ms") {
      if (!takeValue(TimeoutMs) || TimeoutMs == 0)
        return usage("--timeout-ms expects positive milliseconds");
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage("unknown option '" + Arg + "'");
    } else if (PresetName.empty()) {
      PresetName = Arg;
    } else {
      return usage("more than one preset");
    }
  }
  if (PresetName.empty())
    return usage("no preset named");
  std::optional<MegaScaleParams> Preset = megaScalePreset(PresetName);
  if (!Preset)
    return usage("unknown preset '" + PresetName + "'");
  MegaScaleParams P = *Preset;
  if (SeedOverride)
    P.Seed = *SeedOverride;
  if (InjectLoop)
    P.InjectLoop = true;

  // Stage 3 wants the unsealed top circuit; sealing afterwards gives the
  // fingerprint/flat-count pass its top module id. Both views describe
  // the same construction.
  Design D;
  Circuit Circ = buildMegaScaleCircuit(D, P);

  if (FingerprintOnly) {
    ModuleId Top = Circ.seal();
    const std::string FP = fingerprint(D, Top);
    const uint64_t Flat = flatInstanceCount(D, Top);
    if (Json)
      std::printf("{\"preset\":\"%s\",\"seed\":%llu,\"fingerprint\":"
                  "\"%s\",\"flatInstances\":%llu,\"modules\":%zu}\n",
                  PresetName.c_str(),
                  static_cast<unsigned long long>(P.Seed), FP.c_str(),
                  static_cast<unsigned long long>(Flat),
                  static_cast<size_t>(D.numModules()));
    else
      std::printf("%s %llu %zu\n", FP.c_str(),
                  static_cast<unsigned long long>(Flat),
                  static_cast<size_t>(D.numModules()));
    return 0;
  }

  support::Deadline DL = TimeoutMs != 0
                             ? support::Deadline::afterMs(TimeoutMs)
                             : support::Deadline();

  // Stage 1 over the module library (the top circuit is not sealed yet,
  // so this summarizes exactly the instantiated definitions).
  CheckOptions Opts;
  if (Threads != 0)
    Opts.Threads = Threads;
  std::map<ModuleId, ModuleSummary> Summaries;
  support::Status Stage1;
  size_t Inferred = 0, CacheHits = 0;
  std::optional<ShardedEngine> ShardedE;
  std::optional<SummaryEngine> PlainE;
  if (Shards != 0) {
    ShardOptions SOpts;
    SOpts.Shards = Shards;
    SOpts.ExecMode = ShardOptions::Mode::Fork;
    SOpts.Engine = Opts.engine();
    ShardedE.emplace(SOpts);
    Stage1 = ShardedE->analyze(D, Summaries, {}, DL);
    Inferred = ShardedE->stats().Inferred;
    CacheHits = ShardedE->stats().CacheHits;
  } else {
    PlainE.emplace(Opts);
    Stage1 = PlainE->analyze(D, Summaries, {}, DL);
    Inferred = PlainE->stats().Inferred;
    CacheHits = PlainE->stats().CacheHits;
  }

  auto emitDiags = [&](const support::DiagList &Ds) {
    for (const support::Diag &Dg : Ds) {
      if (Json)
        std::printf("%s\n", support::renderJson(Dg).c_str());
      else
        std::fprintf(stderr, "%s\n",
                     support::renderText(Dg, nullptr).c_str());
    }
  };

  size_t Errors = 0;
  bool Cancelled = false;
  for (const support::Diag &Dg : Stage1) {
    if (Dg.severity() == support::Severity::Error)
      ++Errors;
    if (Dg.code() == support::DiagCode::WS601_CANCELLED)
      Cancelled = true;
  }
  emitDiags(Stage1);

  // Stage 3 over the top-level composition, only when every definition
  // summarized (a Stage-1 loop already decides the verdict).
  CircuitCheckResult Check;
  if (!Stage1.hasError()) {
    Check = Shards != 0 ? checkCircuitSharded(Circ, Summaries, Shards)
                        : checkCircuit(Circ, Summaries);
    for (const support::Diag &Dg : Check.Diags)
      if (Dg.severity() == support::Severity::Error)
        ++Errors;
    emitDiags(Check.Diags);
  }

  // Seal for the size/fingerprint report; analysis is already done.
  ModuleId Top = Circ.seal();
  const uint64_t Flat = flatInstanceCount(D, Top);
  const std::string FP = fingerprint(D, Top);
  const bool Ok = !Stage1.hasError() && Check.WellConnected;

  if (Json) {
    std::printf("{\"verdict\":\"%s\",\"preset\":\"%s\",\"seed\":%llu,"
                "\"modules\":%zu,\"flatInstances\":%llu,"
                "\"fingerprint\":\"%s\",\"errors\":%zu}\n",
                Cancelled ? "cancelled" : (Ok ? "well-connected" : "error"),
                PresetName.c_str(),
                static_cast<unsigned long long>(P.Seed),
                static_cast<size_t>(D.numModules()),
                static_cast<unsigned long long>(Flat), FP.c_str(), Errors);
  } else if (!Quiet) {
    std::printf("%s: preset %s seed %llu: %llu flat instance(s), "
                "%zu unique module(s), fingerprint %s\n",
                Cancelled ? "cancelled" : (Ok ? "well-connected" : "LOOPED"),
                PresetName.c_str(),
                static_cast<unsigned long long>(P.Seed),
                static_cast<unsigned long long>(Flat),
                static_cast<size_t>(D.numModules()), FP.c_str());
    if (Ok)
      std::printf("stage 1: %zu inferred, %zu cache hit(s); stage 3: "
                  "%zu safe by sort, %zu checked\n",
                  Inferred, CacheHits, Check.SafeBySort, Check.NeedsCheck);
  }
  if (Cancelled)
    return 3;
  return Ok ? 0 : 1;
}
