//===- tools/wiresort-check.cpp - The wiresort command-line tool ----------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// A Yosys-pass-style command-line front end — and, since the serving
// layer landed, a *thin client* of the library-level check facade
// (src/driver/Check.h): main() only parses flags into a
// driver::CheckRequest, runs it one-shot through driver::runCheck, and
// replays the result's stdout/stderr bytes. The daemon
// (tools/wiresort-served.cpp) serves the very same facade resident, so
// its responses are byte-identical to this tool by construction
// (docs/SERVING.md).
//
//   wiresort-check design.blif                 # sorts + verdict
//   wiresort-check design.blif --format json   # NDJSON diags + verdict
//   wiresort-check design.blif --summaries out.wsort
//   wiresort-check design.blif --check out.wsort   # ascription check
//   wiresort-check design.blif --dot out.dot   # top module, colored
//   wiresort-check design.blif --quiet         # verdict only
//   wiresort-check design.blif --depth         # timing extension
//   wiresort-check design.blif --threads 8     # parallel inference
//   wiresort-check design.blif --shards 4      # fork-isolated workers
//   wiresort-check design.blif --shard 1/4     # one slice of a scripted
//                                              # N-way partition
//   wiresort-check design.blif --cache d.wscache   # warm-start repeats
//   wiresort-check design.blif --trace-out t.json  # Chrome trace events
//   wiresort-check design.blif --stats         # registry counter dump
//   wiresort-check design.blif --timeout-ms 500    # bounded run
//   wiresort-check design.blif --failpoints s=mode # fault injection
//
// Exit-code contract (docs/DIAGNOSTICS.md): 0 = well-connected and every
// requested check passed; 1 = analysis/parse diagnostics with severity >=
// error were emitted; 2 = usage or I/O failure (WS5xx); 3 = the run was
// cancelled by --timeout-ms (WS601_CANCELLED, with partial-progress
// notes — docs/ROBUSTNESS.md). With --format json all diagnostics go to
// stdout as newline-delimited JSON (support::renderJson) followed by one
// deterministic verdict line — {"verdict":"well-connected","modules":N},
// {"verdict":"error","errors":K}, or {"verdict":"cancelled","errors":K}
// — with no timing or thread counts, so the output is byte-stable for
// golden tests.
//
//===----------------------------------------------------------------------===//

#include "wiresort.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace wiresort;
using namespace wiresort::analysis;

namespace {

/// Pre-run diagnostics (usage, failpoint-spec trouble) still honor the
/// format parsed so far: JSON renderings go to stdout like every other
/// machine-readable diag, text to stderr.
void emitEarly(Format Fmt, const support::Diag &D) {
  if (Fmt == Format::Json)
    std::printf("%s\n", support::renderJson(D).c_str());
  else
    std::fprintf(stderr, "%s\n", support::renderText(D, nullptr).c_str());
}

void emitEarly(Format Fmt, const support::Status &Ds) {
  for (const support::Diag &D : Ds)
    emitEarly(Fmt, D);
}

int usage(const char *Argv0, Format Fmt, const std::string &Why) {
  emitEarly(Fmt, support::Diag(support::DiagCode::WS503_USAGE, Why));
  std::fprintf(stderr,
               "usage: %s <design.blif|design.v> [--summaries FILE] "
               "[--summary-format text|binary] [--convert-summaries FILE] "
               "[--check FILE] [--dot FILE] [--format text|json] "
               "[--quiet] [--depth] [--threads N] [--shards N] "
               "[--shard I/N] [--cache FILE] "
               "[--trace-out FILE] [--stats] [--timeout-ms N] "
               "[--failpoints SPEC] [--fault-seed N]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int ArgC, char **ArgV) {
  driver::CheckRequest R;
  EngineConfig Cfg;
  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    auto takeValue = [&](std::string &Slot) {
      if (I + 1 >= ArgC)
        return false;
      Slot = ArgV[++I];
      return true;
    };
    Format Fmt = R.Req.OutputFormat;
    if (Arg == "--summaries") {
      if (!takeValue(R.SummariesOut))
        return usage(ArgV[0], Fmt, "--summaries expects a file");
    } else if (Arg == "--summary-format") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--summary-format expects text or binary");
      if (Value == "binary")
        R.BinarySummaries = true;
      else if (Value == "text")
        R.BinarySummaries = false;
      else
        return usage(ArgV[0], Fmt, "unknown --summary-format '" + Value +
                                       "' (text|binary)");
    } else if (Arg == "--convert-summaries") {
      if (!takeValue(R.ConvertIn))
        return usage(ArgV[0], Fmt, "--convert-summaries expects a file");
    } else if (Arg == "--check") {
      if (!takeValue(R.CheckPath))
        return usage(ArgV[0], Fmt, "--check expects a file");
    } else if (Arg == "--dot") {
      if (!takeValue(R.DotPath))
        return usage(ArgV[0], Fmt, "--dot expects a file");
    } else if (Arg == "--cache") {
      if (!takeValue(R.Req.CachePath))
        return usage(ArgV[0], Fmt, "--cache expects a file");
    } else if (Arg == "--trace-out") {
      if (!takeValue(R.Req.TraceOutPath))
        return usage(ArgV[0], Fmt, "--trace-out expects a file");
    } else if (Arg == "--stats") {
      R.Req.Stats = true;
    } else if (Arg == "--format") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--format expects text or json");
      if (Value == "json")
        R.Req.OutputFormat = Format::Json;
      else if (Value == "text")
        R.Req.OutputFormat = Format::Text;
      else
        return usage(ArgV[0], Fmt,
                     "unknown --format '" + Value + "' (text|json)");
    } else if (Arg == "--threads") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--threads expects a count");
      Cfg.Threads = static_cast<unsigned>(std::atoi(Value.c_str()));
      if (Cfg.Threads == 0)
        return usage(ArgV[0], Fmt, "--threads expects a positive count");
    } else if (Arg == "--shards") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--shards expects a worker count");
      R.Shards = static_cast<unsigned>(std::atoi(Value.c_str()));
      if (R.Shards == 0)
        return usage(ArgV[0], Fmt, "--shards expects a positive worker count");
    } else if (Arg == "--shard") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--shard expects I/N");
      const char *Text = Value.c_str();
      char *End = nullptr;
      R.SliceShard = static_cast<unsigned>(std::strtoul(Text, &End, 10));
      if (End == Text || *End != '/')
        return usage(ArgV[0], Fmt, "--shard expects I/N (e.g. --shard 0/4)");
      R.SliceOf = static_cast<unsigned>(std::strtoul(End + 1, nullptr, 10));
      if (R.SliceOf == 0 || R.SliceShard >= R.SliceOf)
        return usage(ArgV[0], Fmt, "--shard I/N needs 0 <= I < N");
    } else if (Arg == "--timeout-ms") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--timeout-ms expects milliseconds");
      R.Req.TimeoutMs = std::strtoull(Value.c_str(), nullptr, 10);
      if (R.Req.TimeoutMs == 0)
        return usage(ArgV[0], Fmt,
                     "--timeout-ms expects a positive millisecond count");
    } else if (Arg == "--failpoints") {
      if (!takeValue(R.Req.FailpointSpec))
        return usage(ArgV[0], Fmt, "--failpoints expects site=mode,...");
    } else if (Arg == "--fault-seed") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--fault-seed expects a number");
      R.Req.FaultSeed = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--quiet") {
      R.Quiet = true;
    } else if (Arg == "--depth") {
      R.ShowDepth = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(ArgV[0], Fmt, "unknown option '" + Arg + "'");
    } else if (R.DesignPath.empty()) {
      R.DesignPath = Arg;
    } else {
      return usage(ArgV[0], Fmt, "more than one design file");
    }
  }
  const Format Fmt = R.Req.OutputFormat;
  if (R.DesignPath.empty())
    return usage(ArgV[0], Fmt, "no design file");
  if (R.Shards != 0 && R.SliceOf != 0)
    return usage(ArgV[0], Fmt, "--shards and --shard are mutually exclusive");
  if (!R.ConvertIn.empty() && R.SummariesOut.empty())
    return usage(ArgV[0], Fmt,
                 "--convert-summaries needs --summaries FILE for the output");

  // Environment-driven fault injection arms before the driver runs so
  // every site is eligible; configureFromEnv() also interns the fault.*
  // counters so they appear (at zero) in --stats output. Env first,
  // then the flag (inside the driver), so --failpoints overrides
  // WIRESORT_FAILPOINTS clause by clause.
  if (support::Status Env = support::failpoint::configureFromEnv();
      Env.hasError()) {
    emitEarly(Fmt, Env);
    return 2;
  }
  // Same contract for the wire.* serialization counters and the
  // serving layer's serve.* overload counters: interned at startup so
  // --stats enumerates them at zero even on all-text, non-served runs.
  support::wire::internCounters();
  driver::internServeCounters();

  // A CLI invocation is the one-shot, fork-allowed corner of the
  // request space; everything else about the run — parse dispatch,
  // engine setup, cache I/O, verdicts — happens in the shared driver.
  driver::CheckResult Res = driver::runCheck(R, Cfg);
  if (!Res.Out.empty())
    std::fwrite(Res.Out.data(), 1, Res.Out.size(), stdout);
  if (!Res.Err.empty())
    std::fwrite(Res.Err.data(), 1, Res.Err.size(), stderr);
  return Res.ExitCode;
}
