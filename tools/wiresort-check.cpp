//===- tools/wiresort-check.cpp - The wiresort command-line tool ----------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// A Yosys-pass-style command-line front end for the library: read a
// (possibly hierarchical) BLIF netlist or structural Verilog file
// (dispatched on the .v/.sv extension), infer every module's wire sorts,
// check the design for combinational loops through the module-interface
// analysis, and optionally emit sort annotations and Graphviz renderings.
//
//   wiresort-check design.blif                 # sorts + verdict
//   wiresort-check design.blif --summaries out.wsort
//   wiresort-check design.blif --check out.wsort   # ascription check
//   wiresort-check design.blif --dot out.dot   # top module, colored
//   wiresort-check design.blif --quiet         # verdict only
//   wiresort-check design.blif --depth         # timing extension
//   wiresort-check design.blif --threads 8     # parallel inference
//   wiresort-check design.blif --cache d.wscache   # warm-start repeats
//
// Inference runs through analysis::SummaryEngine: independent modules of
// the instantiation DAG are inferred concurrently, and --cache persists
// the content-addressed summary cache so an unchanged module costs a
// hash lookup on the next invocation (docs/ENGINE.md).
//
//===----------------------------------------------------------------------===//

#include "analysis/Ascription.h"
#include "analysis/Depth.h"
#include "analysis/Dot.h"
#include "analysis/SortInference.h"
#include "analysis/SummaryEngine.h"
#include "analysis/SummaryIO.h"
#include "parse/Blif.h"
#include "parse/VerilogReader.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <design.blif> [--summaries FILE] "
               "[--check FILE] [--dot FILE] [--quiet] [--depth] "
               "[--threads N] [--cache FILE]\n",
               Argv0);
  return 2;
}

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

bool writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << Text;
  return Out.good();
}

} // namespace

int main(int ArgC, char **ArgV) {
  std::string BlifPath, SummariesOut, CheckPath, DotPath, CachePath;
  bool Quiet = false;
  bool ShowDepth = false;
  unsigned Threads = 0; // 0 = hardware concurrency.
  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    auto takeValue = [&](std::string &Slot) {
      if (I + 1 >= ArgC)
        return false;
      Slot = ArgV[++I];
      return true;
    };
    if (Arg == "--summaries") {
      if (!takeValue(SummariesOut))
        return usage(ArgV[0]);
    } else if (Arg == "--check") {
      if (!takeValue(CheckPath))
        return usage(ArgV[0]);
    } else if (Arg == "--dot") {
      if (!takeValue(DotPath))
        return usage(ArgV[0]);
    } else if (Arg == "--cache") {
      if (!takeValue(CachePath))
        return usage(ArgV[0]);
    } else if (Arg == "--threads") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0]);
      Threads = static_cast<unsigned>(std::atoi(Value.c_str()));
      if (Threads == 0)
        return usage(ArgV[0]);
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--depth") {
      ShowDepth = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(ArgV[0]);
    } else if (BlifPath.empty()) {
      BlifPath = Arg;
    } else {
      return usage(ArgV[0]);
    }
  }
  if (BlifPath.empty())
    return usage(ArgV[0]);

  std::optional<std::string> Text = readFile(BlifPath);
  if (!Text) {
    std::fprintf(stderr, "error: cannot read %s\n", BlifPath.c_str());
    return 2;
  }

  std::string Error;
  bool IsVerilog =
      BlifPath.size() >= 2 &&
      (BlifPath.rfind(".v") == BlifPath.size() - 2 ||
       (BlifPath.size() >= 3 &&
        BlifPath.rfind(".sv") == BlifPath.size() - 3));
  std::optional<parse::BlifFile> File;
  if (IsVerilog) {
    auto VFile = parse::parseVerilog(*Text, Error);
    if (VFile) {
      File.emplace();
      File->Design = std::move(VFile->Design);
      File->Top = VFile->Top;
    }
  } else {
    File = parse::parseBlif(*Text, Error);
  }
  if (!File) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }

  EngineOptions EngineOpts;
  EngineOpts.Threads = Threads;
  SummaryEngine Engine(EngineOpts);
  if (!CachePath.empty()) {
    auto Loaded = Engine.loadCache(CachePath, File->Design, Error);
    if (!Loaded) {
      std::fprintf(stderr, "error: bad cache file: %s\n", Error.c_str());
      return 2;
    }
    if (!Quiet && *Loaded)
      std::printf("cache: %zu summaries loaded from %s\n", *Loaded,
                  CachePath.c_str());
  }

  Timer T;
  std::map<ModuleId, ModuleSummary> Summaries;
  std::optional<LoopDiagnostic> Loop =
      Engine.analyze(File->Design, Summaries);
  double Ms = T.milliseconds();

  if (Loop) {
    std::printf("LOOPED: %s\n", Loop->describe().c_str());
    return 1;
  }

  if (!CachePath.empty() &&
      !Engine.saveCache(CachePath, File->Design, Summaries))
    std::fprintf(stderr, "warning: cannot write cache %s\n",
                 CachePath.c_str());

  if (!Quiet) {
    for (ModuleId Id = 0; Id != File->Design.numModules(); ++Id) {
      const Module &M = File->Design.module(Id);
      const ModuleSummary &S = Summaries.at(Id);
      std::printf("module %s (%zu gates, %zu regs, %zu instances)\n",
                  M.Name.c_str(), M.Nets.size(), M.Registers.size(),
                  M.Instances.size());
      Table PortTable({"Dir", "Port", "Sort", "Depends on / affects"});
      auto setOf = [&](WireId Port) {
        const auto &Set = M.isInput(Port) ? S.outputPortSet(Port)
                                          : S.inputPortSet(Port);
        std::string Out;
        for (size_t I = 0; I != Set.size(); ++I) {
          if (I)
            Out += ", ";
          Out += M.wire(Set[I]).Name;
        }
        return Out;
      };
      for (WireId In : M.Inputs)
        PortTable.addRow(
            {"in", M.wire(In).Name, sortName(S.sortOf(In)), setOf(In)});
      for (WireId Out : M.Outputs)
        PortTable.addRow({"out", M.wire(Out).Name,
                          sortName(S.sortOf(Out)), setOf(Out)});
      PortTable.print();
      std::printf("\n");
    }
  }
  const EngineStats &Stats = Engine.stats();
  std::printf("well-connected: %zu module(s) analyzed in %.2f ms "
              "(%u thread(s), %zu inferred, %zu cache hit(s))\n",
              File->Design.numModules(), Ms, Stats.ThreadsUsed,
              Stats.Inferred, Stats.CacheHits);

  if (ShowDepth) {
    auto Depths = inferAllDepths(File->Design, Summaries);
    if (!Depths) {
      std::fprintf(stderr, "error: depth analysis needs an acyclic "
                           "design\n");
      return 2;
    }
    Table DepthTable({"Module", "Reg-to-reg depth", "Deepest in->out"});
    for (ModuleId Id = 0; Id != File->Design.numModules(); ++Id) {
      const DepthSummary &Depth = Depths->at(Id);
      uint32_t DeepestPair = 0;
      for (const auto &[Pair, Levels] : Depth.PairDepth)
        DeepestPair = std::max(DeepestPair, Levels);
      DepthTable.addRow({File->Design.module(Id).Name,
                         std::to_string(Depth.InternalDepth),
                         std::to_string(DeepestPair)});
    }
    DepthTable.print();
  }

  if (!SummariesOut.empty()) {
    if (!writeFile(SummariesOut,
                   writeSummaries(File->Design, Summaries))) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   SummariesOut.c_str());
      return 2;
    }
    std::printf("summaries written to %s\n", SummariesOut.c_str());
  }

  if (!CheckPath.empty()) {
    std::optional<std::string> Declared = readFile(CheckPath);
    if (!Declared) {
      std::fprintf(stderr, "error: cannot read %s\n", CheckPath.c_str());
      return 2;
    }
    auto DeclaredSummaries =
        parseSummaries(*Declared, File->Design, Error);
    if (!DeclaredSummaries) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
    size_t Mismatches = 0;
    for (const auto &[Id, Declared] : *DeclaredSummaries) {
      const Module &M = File->Design.module(Id);
      const ModuleSummary &Computed = Summaries.at(Id);
      auto reportMismatch = [&](WireId Port, const char *What) {
        std::printf("MISMATCH %s.%s: %s\n", M.Name.c_str(),
                    M.wire(Port).Name.c_str(), What);
        ++Mismatches;
      };
      for (WireId Port : M.Inputs) {
        if (Declared.sortOf(Port) != Computed.sortOf(Port))
          reportMismatch(Port, "declared sort differs from computed");
        else if (Declared.outputPortSet(Port) !=
                 Computed.outputPortSet(Port))
          reportMismatch(Port, "declared output-port-set differs");
      }
      for (WireId Port : M.Outputs) {
        if (Declared.sortOf(Port) != Computed.sortOf(Port))
          reportMismatch(Port, "declared sort differs from computed");
        else if (Declared.inputPortSet(Port) !=
                 Computed.inputPortSet(Port))
          reportMismatch(Port, "declared input-port-set differs");
      }
    }
    if (Mismatches) {
      std::printf("%zu ascription mismatch(es)\n", Mismatches);
      return 1;
    }
    std::printf("all ascriptions match\n");
  }

  if (!DotPath.empty()) {
    const Module &Top = File->Design.module(File->Top);
    if (!writeFile(DotPath, moduleDot(Top, Summaries.at(File->Top)))) {
      std::fprintf(stderr, "error: cannot write %s\n", DotPath.c_str());
      return 2;
    }
    std::printf("dot written to %s\n", DotPath.c_str());
  }
  return 0;
}
