//===- tools/wiresort-check.cpp - The wiresort command-line tool ----------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// A Yosys-pass-style command-line front end for the library: read a
// (possibly hierarchical) BLIF netlist or structural Verilog file
// (dispatched on the .v/.sv extension), infer every module's wire sorts,
// check the design for combinational loops through the module-interface
// analysis, and optionally emit sort annotations and Graphviz renderings.
//
//   wiresort-check design.blif                 # sorts + verdict
//   wiresort-check design.blif --format json   # NDJSON diags + verdict
//   wiresort-check design.blif --summaries out.wsort
//   wiresort-check design.blif --check out.wsort   # ascription check
//   wiresort-check design.blif --dot out.dot   # top module, colored
//   wiresort-check design.blif --quiet         # verdict only
//   wiresort-check design.blif --depth         # timing extension
//   wiresort-check design.blif --threads 8     # parallel inference
//   wiresort-check design.blif --shards 4      # fork-isolated workers
//   wiresort-check design.blif --shard 1/4     # one slice of a scripted
//                                              # N-way partition
//   wiresort-check design.blif --cache d.wscache   # warm-start repeats
//   wiresort-check design.blif --trace-out t.json  # Chrome trace events
//   wiresort-check design.blif --stats         # registry counter dump
//   wiresort-check design.blif --timeout-ms 500    # bounded run
//   wiresort-check design.blif --failpoints s=mode # fault injection
//
// Exit-code contract (docs/DIAGNOSTICS.md): 0 = well-connected and every
// requested check passed; 1 = analysis/parse diagnostics with severity >=
// error were emitted; 2 = usage or I/O failure (WS5xx); 3 = the run was
// cancelled by --timeout-ms (WS601_CANCELLED, with partial-progress
// notes — docs/ROBUSTNESS.md). With --format json all diagnostics go to
// stdout as newline-delimited JSON (support::renderJson) followed by one
// deterministic verdict line — {"verdict":"well-connected","modules":N},
// {"verdict":"error","errors":K}, or {"verdict":"cancelled","errors":K}
// — with no timing or thread counts, so the output is byte-stable for
// golden tests.
//
// Inference runs through analysis::SummaryEngine: independent modules of
// the instantiation DAG are inferred concurrently, and --cache persists
// the content-addressed summary cache so an unchanged module costs a
// hash lookup on the next invocation (docs/ENGINE.md).
//
// Sharding (docs/SCALE.md): --shards N routes Stage-1 through the
// ShardedEngine's fork+pipe workers — N isolated child processes per
// wave, byte-identical diagnostics and cache sidecars to the serial run,
// and a crashed worker fails closed as WS604. --shard I/N instead runs
// *one slice* of a script-level partition: this invocation reports only
// the diagnostics and summaries of modules with id mod N == I, so N
// invocations (launched by make -j, a cluster, ...) jointly reproduce
// the serial output exactly — merge the N diag streams by module id and
// concatenate the N --summaries sidecars.
//
//===----------------------------------------------------------------------===//

#include "wiresort.h"

#include <optional>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

/// The CLI's rendering switch is CheckOptions::Format — one enum shared
/// with the engine/bench layers instead of a private copy.
using Format = CheckOptions::Format;

/// Routes diagnostics to the requested renderer: human text (with caret
/// echoes when the source text is at hand) on stderr, or NDJSON on
/// stdout. Tracks the error count for the final verdict line.
struct Emitter {
  Format Fmt = Format::Text;
  /// Source text for caret rendering, keyed by nothing: the CLI reads at
  /// most one design file, so one buffer suffices.
  const std::string *SourceText = nullptr;
  size_t Errors = 0;

  void emit(const support::Diag &D) {
    if (D.severity() == support::Severity::Error)
      ++Errors;
    if (Fmt == Format::Json)
      std::printf("%s\n", support::renderJson(D).c_str());
    else
      std::fprintf(stderr, "%s\n",
                   support::renderText(D, SourceText).c_str());
  }
  void emit(const support::DiagList &Ds) {
    for (const support::Diag &D : Ds)
      emit(D);
  }

  /// The deterministic success verdict: text keeps its human one-liner
  /// (printed by the caller, with timing); JSON emits the stable line.
  void verdictOk(size_t Modules) {
    if (Fmt == Format::Json)
      std::printf("{\"verdict\":\"well-connected\",\"modules\":%zu}\n",
                  Modules);
  }
  /// The failure verdict; \returns the process exit code (1).
  int verdictError() {
    if (Fmt == Format::Json)
      std::printf("{\"verdict\":\"error\",\"errors\":%zu}\n", Errors);
    return 1;
  }
  /// The cancelled verdict (--timeout-ms fired); \returns exit code 3.
  int verdictCancelled() {
    if (Fmt == Format::Json)
      std::printf("{\"verdict\":\"cancelled\",\"errors\":%zu}\n", Errors);
    return 3;
  }
};

/// True when \p Ds carries a WS601_CANCELLED diag — the run was cut
/// short by the deadline and exits 3, not 1.
bool wasCancelled(const support::DiagList &Ds) {
  for (const support::Diag &D : Ds)
    if (D.code() == support::DiagCode::WS601_CANCELLED)
      return true;
  return false;
}

int usage(const char *Argv0, Emitter &E, const std::string &Why) {
  E.emit(support::Diag(support::DiagCode::WS503_USAGE, Why));
  std::fprintf(stderr,
               "usage: %s <design.blif|design.v> [--summaries FILE] "
               "[--summary-format text|binary] [--convert-summaries FILE] "
               "[--check FILE] [--dot FILE] [--format text|json] "
               "[--quiet] [--depth] [--threads N] [--shards N] "
               "[--shard I/N] [--cache FILE] "
               "[--trace-out FILE] [--stats] [--timeout-ms N] "
               "[--failpoints SPEC] [--fault-seed N]\n",
               Argv0);
  return 2;
}

int ioError(Emitter &E, const std::string &Why) {
  E.emit(support::Diag(support::DiagCode::WS501_IO_ERROR, Why));
  return 2;
}

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

bool writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << Text;
  return Out.good();
}

/// --check: compare a declared sidecar against the computed summaries,
/// one WS102 diag per mismatching port (module-id then port order).
support::DiagList
checkDeclared(const Design &D,
              const std::map<ModuleId, ModuleSummary> &Declared,
              const std::map<ModuleId, ModuleSummary> &Computed) {
  support::DiagList Mismatches;
  for (const auto &[Id, Decl] : Declared) {
    // A --shard slice computes only its owned modules; declared entries
    // for the other slices are theirs to check.
    auto CompIt = Computed.find(Id);
    if (CompIt == Computed.end())
      continue;
    const Module &M = D.module(Id);
    const ModuleSummary &Comp = CompIt->second;
    auto report = [&](WireId Port, const char *What) {
      Mismatches.add(
          support::Diag(support::DiagCode::WS102_ASCRIPTION_MISMATCH,
                        "port '" + M.wire(Port).Name + "': " + What)
              .withNote("module", M.Name)
              .withNote("port", M.wire(Port).Name));
    };
    for (WireId Port : M.Inputs) {
      if (Decl.sortOf(Port) != Comp.sortOf(Port))
        report(Port, "declared sort differs from computed");
      else if (Decl.outputPortSet(Port) != Comp.outputPortSet(Port))
        report(Port, "declared output-port-set differs");
    }
    for (WireId Port : M.Outputs) {
      if (Decl.sortOf(Port) != Comp.sortOf(Port))
        report(Port, "declared sort differs from computed");
      else if (Decl.inputPortSet(Port) != Comp.inputPortSet(Port))
        report(Port, "declared input-port-set differs");
    }
  }
  return Mismatches;
}

} // namespace

int main(int ArgC, char **ArgV) {
  std::string DesignPath, SummariesOut, CheckPath, DotPath, ConvertIn;
  CheckOptions Opts;
  Emitter Emit;
  bool Quiet = false;
  bool ShowDepth = false;
  bool BinarySummaries = false;
  // Sharding: --shards N (fork workers) or --shard I/N (slice mode).
  unsigned Shards = 0;
  unsigned SliceShard = 0, SliceOf = 0;
  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    auto takeValue = [&](std::string &Slot) {
      if (I + 1 >= ArgC)
        return false;
      Slot = ArgV[++I];
      return true;
    };
    if (Arg == "--summaries") {
      if (!takeValue(SummariesOut))
        return usage(ArgV[0], Emit, "--summaries expects a file");
    } else if (Arg == "--summary-format") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Emit,
                     "--summary-format expects text or binary");
      if (Value == "binary")
        BinarySummaries = true;
      else if (Value == "text")
        BinarySummaries = false;
      else
        return usage(ArgV[0], Emit, "unknown --summary-format '" + Value +
                                        "' (text|binary)");
    } else if (Arg == "--convert-summaries") {
      if (!takeValue(ConvertIn))
        return usage(ArgV[0], Emit, "--convert-summaries expects a file");
    } else if (Arg == "--check") {
      if (!takeValue(CheckPath))
        return usage(ArgV[0], Emit, "--check expects a file");
    } else if (Arg == "--dot") {
      if (!takeValue(DotPath))
        return usage(ArgV[0], Emit, "--dot expects a file");
    } else if (Arg == "--cache") {
      if (!takeValue(Opts.CachePath))
        return usage(ArgV[0], Emit, "--cache expects a file");
    } else if (Arg == "--trace-out") {
      if (!takeValue(Opts.TraceOutPath))
        return usage(ArgV[0], Emit, "--trace-out expects a file");
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg == "--format") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Emit, "--format expects text or json");
      if (Value == "json")
        Opts.OutputFormat = Format::Json;
      else if (Value == "text")
        Opts.OutputFormat = Format::Text;
      else
        return usage(ArgV[0], Emit,
                     "unknown --format '" + Value + "' (text|json)");
      Emit.Fmt = Opts.OutputFormat;
    } else if (Arg == "--threads") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Emit, "--threads expects a count");
      Opts.Threads = static_cast<unsigned>(std::atoi(Value.c_str()));
      if (Opts.Threads == 0)
        return usage(ArgV[0], Emit, "--threads expects a positive count");
    } else if (Arg == "--shards") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Emit, "--shards expects a worker count");
      Shards = static_cast<unsigned>(std::atoi(Value.c_str()));
      if (Shards == 0)
        return usage(ArgV[0], Emit,
                     "--shards expects a positive worker count");
    } else if (Arg == "--shard") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Emit, "--shard expects I/N");
      const char *Text = Value.c_str();
      char *End = nullptr;
      SliceShard = static_cast<unsigned>(std::strtoul(Text, &End, 10));
      if (End == Text || *End != '/')
        return usage(ArgV[0], Emit,
                     "--shard expects I/N (e.g. --shard 0/4)");
      SliceOf = static_cast<unsigned>(std::strtoul(End + 1, nullptr, 10));
      if (SliceOf == 0 || SliceShard >= SliceOf)
        return usage(ArgV[0], Emit,
                     "--shard I/N needs 0 <= I < N");
    } else if (Arg == "--timeout-ms") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Emit, "--timeout-ms expects milliseconds");
      Opts.TimeoutMs = std::strtoull(Value.c_str(), nullptr, 10);
      if (Opts.TimeoutMs == 0)
        return usage(ArgV[0], Emit,
                     "--timeout-ms expects a positive millisecond count");
    } else if (Arg == "--failpoints") {
      if (!takeValue(Opts.FailpointSpec))
        return usage(ArgV[0], Emit, "--failpoints expects site=mode,...");
    } else if (Arg == "--fault-seed") {
      std::string Value;
      if (!takeValue(Value))
        return usage(ArgV[0], Emit, "--fault-seed expects a number");
      Opts.FaultSeed = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--depth") {
      ShowDepth = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(ArgV[0], Emit, "unknown option '" + Arg + "'");
    } else if (DesignPath.empty()) {
      DesignPath = Arg;
    } else {
      return usage(ArgV[0], Emit, "more than one design file");
    }
  }
  if (DesignPath.empty())
    return usage(ArgV[0], Emit, "no design file");
  if (Shards != 0 && SliceOf != 0)
    return usage(ArgV[0], Emit,
                 "--shards and --shard are mutually exclusive");
  if (!ConvertIn.empty() && SummariesOut.empty())
    return usage(ArgV[0], Emit,
                 "--convert-summaries needs --summaries FILE for the "
                 "output");

  // Fault injection arms before any other work so every site in the run
  // is eligible; configureFromEnv() also interns the fault.* counters so
  // they appear (at zero) in --stats output. Env first, then the flag,
  // so --failpoints overrides WIRESORT_FAILPOINTS clause by clause.
  if (support::Status Env = support::failpoint::configureFromEnv();
      Env.hasError()) {
    Emit.emit(Env);
    return 2;
  }
  // Same contract for the wire.* serialization counters: interned at
  // startup so --stats reports them at zero even on all-text runs.
  support::wire::internCounters();
  if (!Opts.FailpointSpec.empty()) {
    support::Status Armed =
        support::failpoint::configure(Opts.FailpointSpec, Opts.FaultSeed);
    if (Armed.hasError()) {
      Emit.emit(Armed);
      return 2;
    }
  }

  // One deadline covers parse + Stage-1 analysis (docs/ROBUSTNESS.md);
  // inert when --timeout-ms is absent.
  support::Deadline DL = Opts.TimeoutMs != 0
                             ? support::Deadline::afterMs(Opts.TimeoutMs)
                             : support::Deadline();
  const support::Deadline *DLPtr = DL.active() ? &DL : nullptr;

  // The collection window opens before the design is even read so the
  // parse spans land in the trace; it closes (and the stats record is
  // emitted) right before the verdict. Exit-2 paths below still get
  // their trace file via the Session destructor.
  std::optional<trace::Session> TraceSession;
  if (Opts.Stats || !Opts.TraceOutPath.empty())
    TraceSession.emplace(trace::SessionOptions{Opts.TraceOutPath, true});
  // Closes the session and emits the stats record (before the verdict
  // line, per docs/DIAGNOSTICS.md). \returns false when the trace file
  // cannot be written.
  auto finishTelemetry = [&]() {
    if (!TraceSession)
      return true;
    support::Status Write = TraceSession->finish();
    if (Opts.Stats) {
      if (Emit.Fmt == Format::Json)
        std::printf("%s\n", TraceSession->statsJson().c_str());
      else
        std::printf("%s", TraceSession->statsText().c_str());
    }
    if (Write.hasError()) {
      Emit.emit(Write);
      return false;
    }
    return true;
  };

  std::optional<std::string> Text = readFile(DesignPath);
  if (!Text)
    return ioError(Emit, "cannot read '" + DesignPath + "'");
  Emit.SourceText = &*Text;

  bool IsVerilog =
      DesignPath.size() >= 2 &&
      (DesignPath.rfind(".v") == DesignPath.size() - 2 ||
       (DesignPath.size() >= 3 &&
        DesignPath.rfind(".sv") == DesignPath.size() - 3));
  std::optional<parse::BlifFile> File;
  if (IsVerilog) {
    auto VFile = parse::parseVerilog(*Text, DesignPath, DLPtr);
    if (!VFile) {
      bool Cancelled = wasCancelled(VFile.diags());
      Emit.emit(VFile.diags());
      (void)finishTelemetry();
      return Cancelled ? Emit.verdictCancelled() : Emit.verdictError();
    }
    File.emplace();
    File->Design = std::move(VFile->Design);
    File->Top = VFile->Top;
  } else {
    auto BFile = parse::parseBlif(*Text, DesignPath, DLPtr);
    if (!BFile) {
      bool Cancelled = wasCancelled(BFile.diags());
      Emit.emit(BFile.diags());
      (void)finishTelemetry();
      return Cancelled ? Emit.verdictCancelled() : Emit.verdictError();
    }
    File = std::move(*BFile);
  }

  // --convert-summaries: re-serialize an existing sidecar (either
  // format, sniffed) in the --summary-format encoding and exit. Port
  // names resolve against the design, so this doubles as a validation
  // pass; the run_tests round-trip stage leans on text → binary → text
  // being byte-identical.
  if (!ConvertIn.empty()) {
    std::optional<std::string> InBytes = readFile(ConvertIn);
    if (!InBytes)
      return ioError(Emit, "cannot read '" + ConvertIn + "'");
    auto Converted = readSummariesAny(*InBytes, File->Design, ConvertIn);
    if (!Converted) {
      Emit.SourceText = nullptr;
      Emit.emit(Converted.diags());
      return Emit.verdictError();
    }
    const std::string Out =
        BinarySummaries ? writeSummariesBinary(File->Design, *Converted)
                        : writeSummaries(File->Design, *Converted);
    if (!writeFile(SummariesOut, Out))
      return ioError(Emit, "cannot write '" + SummariesOut + "'");
    if (!finishTelemetry())
      return 2;
    if (Emit.Fmt == Format::Text)
      std::printf("summaries converted to %s\n", SummariesOut.c_str());
    return 0;
  }

  // One engine serves every mode: plain runs own it directly, sharded
  // and slice runs own it through the ShardedEngine front end (whose
  // cache and keys are the inner engine's, so --cache behaves
  // identically in all three).
  std::optional<ShardedEngine> Sharded;
  std::optional<SummaryEngine> Plain;
  if (Shards != 0 || SliceOf != 0) {
    ShardOptions SOpts;
    SOpts.Shards = Shards != 0 ? Shards : SliceOf;
    // --shards asks for isolation: fork workers. --shard I/N is itself
    // one process of a scripted fleet; it runs in-process.
    SOpts.ExecMode = Shards != 0 ? ShardOptions::Mode::Fork
                                 : ShardOptions::Mode::InProcess;
    if (SliceOf != 0)
      SOpts.SliceShard = static_cast<int>(SliceShard);
    SOpts.Check = Opts;
    Sharded.emplace(SOpts);
  } else {
    Plain.emplace(Opts);
  }
  SummaryEngine &Engine = Sharded ? Sharded->engine() : *Plain;

  if (!Opts.CachePath.empty()) {
    support::Expected<CacheLoadResult> Loaded =
        Engine.loadCache(Opts.CachePath, File->Design);
    if (!Loaded) {
      Emit.emit(Loaded.diags());
      return 2;
    }
    // Quarantined-record warnings (WS602/WS603) degrade, never fail:
    // the damaged records re-infer cold while the rest stay warm.
    Emit.emit(Loaded->Warnings);
    if (!Quiet && Emit.Fmt == Format::Text && Loaded->Loaded)
      std::printf("cache: %zu summaries loaded from %s\n", Loaded->Loaded,
                  Opts.CachePath.c_str());
  }

  Timer T;
  std::map<ModuleId, ModuleSummary> Summaries;
  support::Status Stage1 =
      Sharded ? Sharded->analyze(File->Design, Summaries, {}, DL)
              : Engine.analyze(File->Design, Summaries, {}, DL);
  double Ms = T.milliseconds();

  if (Stage1.hasError()) {
    bool Cancelled = wasCancelled(Stage1);
    Emit.emit(Stage1);
    // A cancelled run still persists what it finished — the next,
    // fully-budgeted invocation starts warm (docs/ROBUSTNESS.md).
    if (!Opts.CachePath.empty())
      Emit.emit(Engine.saveCache(Opts.CachePath, File->Design, Summaries));
    (void)finishTelemetry();
    return Cancelled ? Emit.verdictCancelled() : Emit.verdictError();
  }

  if (!Opts.CachePath.empty())
    Emit.emit(Engine.saveCache(Opts.CachePath, File->Design, Summaries));

  if (!Quiet && Emit.Fmt == Format::Text) {
    for (ModuleId Id = 0; Id != File->Design.numModules(); ++Id) {
      // Slice mode delivers only the owned modules' summaries; the
      // table shows exactly those.
      auto SliceIt = Summaries.find(Id);
      if (SliceIt == Summaries.end())
        continue;
      const Module &M = File->Design.module(Id);
      const ModuleSummary &S = SliceIt->second;
      std::printf("module %s (%zu gates, %zu regs, %zu instances)\n",
                  M.Name.c_str(), M.Nets.size(), M.Registers.size(),
                  M.Instances.size());
      Table PortTable({"Dir", "Port", "Sort", "Depends on / affects"});
      auto setOf = [&](WireId Port) {
        const auto &Set = M.isInput(Port) ? S.outputPortSet(Port)
                                          : S.inputPortSet(Port);
        std::string Out;
        for (size_t I = 0; I != Set.size(); ++I) {
          if (I)
            Out += ", ";
          Out += M.wire(Set[I]).Name;
        }
        return Out;
      };
      for (WireId In : M.Inputs)
        PortTable.addRow(
            {"in", M.wire(In).Name, sortName(S.sortOf(In)), setOf(In)});
      for (WireId Out : M.Outputs)
        PortTable.addRow({"out", M.wire(Out).Name,
                          sortName(S.sortOf(Out)), setOf(Out)});
      PortTable.print();
      std::printf("\n");
    }
  }
  if (Emit.Fmt == Format::Text) {
    if (Sharded) {
      const ShardStats &Stats = Sharded->stats();
      std::printf("well-connected: %zu module(s) analyzed in %.2f ms "
                  "(%u shard(s), %zu wave(s), %zu inferred, "
                  "%zu cache hit(s))\n",
                  Summaries.size(), Ms, Stats.Shards, Stats.Waves,
                  Stats.Inferred, Stats.CacheHits);
    } else {
      const EngineStats &Stats = Engine.stats();
      std::printf("well-connected: %zu module(s) analyzed in %.2f ms "
                  "(%u thread(s), %zu inferred, %zu cache hit(s))\n",
                  File->Design.numModules(), Ms, Stats.ThreadsUsed,
                  Stats.Inferred, Stats.CacheHits);
    }
  }

  if (ShowDepth && Emit.Fmt == Format::Text) {
    if (Summaries.size() != File->Design.numModules()) {
      std::fprintf(stderr, "error: --depth needs the whole design's "
                           "summaries (not a --shard slice)\n");
      return 2;
    }
    auto Depths = inferAllDepths(File->Design, Summaries);
    if (!Depths) {
      std::fprintf(stderr, "error: depth analysis needs an acyclic "
                           "design\n");
      return 2;
    }
    Table DepthTable({"Module", "Reg-to-reg depth", "Deepest in->out"});
    for (ModuleId Id = 0; Id != File->Design.numModules(); ++Id) {
      const DepthSummary &Depth = Depths->at(Id);
      uint32_t DeepestPair = 0;
      for (const auto &[Pair, Levels] : Depth.PairDepth)
        DeepestPair = std::max(DeepestPair, Levels);
      DepthTable.addRow({File->Design.module(Id).Name,
                         std::to_string(Depth.InternalDepth),
                         std::to_string(DeepestPair)});
    }
    DepthTable.print();
  }

  if (!SummariesOut.empty()) {
    const std::string Out =
        BinarySummaries ? writeSummariesBinary(File->Design, Summaries)
                        : writeSummaries(File->Design, Summaries);
    if (!writeFile(SummariesOut, Out))
      return ioError(Emit, "cannot write '" + SummariesOut + "'");
    if (Emit.Fmt == Format::Text)
      std::printf("summaries written to %s\n", SummariesOut.c_str());
  }

  if (!CheckPath.empty()) {
    std::optional<std::string> Declared = readFile(CheckPath);
    if (!Declared)
      return ioError(Emit, "cannot read '" + CheckPath + "'");
    auto DeclaredSummaries =
        readSummariesAny(*Declared, File->Design, CheckPath);
    if (!DeclaredSummaries) {
      // The sidecar, not the design, is the malformed text here; skip
      // the caret echo rather than point it into the wrong buffer.
      Emit.SourceText = nullptr;
      Emit.emit(DeclaredSummaries.diags());
      return Emit.verdictError();
    }
    support::DiagList Mismatches =
        checkDeclared(File->Design, *DeclaredSummaries, Summaries);
    if (Mismatches.hasError()) {
      Emit.emit(Mismatches);
      if (Emit.Fmt == Format::Text)
        std::printf("%zu ascription mismatch(es)\n", Mismatches.size());
      (void)finishTelemetry();
      return Emit.verdictError();
    }
    if (Emit.Fmt == Format::Text)
      std::printf("all ascriptions match\n");
  }

  if (!DotPath.empty()) {
    if (!Summaries.count(File->Top))
      return ioError(Emit, "--dot needs the top module's summary (not "
                           "delivered by this --shard slice)");
    const Module &Top = File->Design.module(File->Top);
    if (!writeFile(DotPath, moduleDot(Top, Summaries.at(File->Top))))
      return ioError(Emit, "cannot write '" + DotPath + "'");
    if (Emit.Fmt == Format::Text)
      std::printf("dot written to %s\n", DotPath.c_str());
  }

  if (!finishTelemetry())
    return 2;
  // Summaries.size() == numModules except in slice mode, where the
  // verdict counts the delivered slice.
  Emit.verdictOk(Summaries.size());
  return 0;
}
