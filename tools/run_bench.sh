#!/bin/sh
# Refreshes the committed benchmark reports (docs/SCALE.md). Runs:
#
#  * bench_scalability — gate-count/input-width curves, pairwise vs SCC,
#    and the mega-scale presets through serial, 4-shard-thread, and
#    4-shard-fork Stage 1 plus SCC vs sharded Stage 3 — written over
#    BENCH_scalability.json at the repo root;
#  * bench_kernel — serial-vs-kernel Stage-1 rows with per-phase
#    (freeze/frontier/sweep) attribution, plus the MegaScale flat-graph
#    512-source closure under every available sweep ISA against the
#    scalar 1-lane-word baseline — written over BENCH_kernel.json;
#  * bench_engine — serial/parallel/warm engine curves, the cold
#    summary-load comparison (text sidecar vs wire binary vs loadCache
#    on a v3 cache file), the resident-service-vs-cold-process check
#    latency table (1/8/64 repeat requests on a mega preset, with the
#    >= 5x warm-edited-re-check gate on the full 100k preset —
#    docs/SERVING.md; WIRESORT_CHECK is exported below so the cold side
#    is a real process spawn), and the trace/failpoint overhead smokes —
#    written over BENCH_engine.json.
#
# Every timing in both reports is gated on a results-identical check
# (serial reference / scalar-baseline bitset), so a committed report is
# also a passed equivalence run.
#
# Usage: tools/run_bench.sh [--quick]
#   --quick  CI-sized sweep (small presets only); the committed reports
#            should come from a full run on a quiet machine.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD="$ROOT/build"

QUICK=""
for Arg in "$@"; do
  case "$Arg" in
  --quick) QUICK="--quick" ;;
  *)
    echo "unknown argument: $Arg" >&2
    exit 2
    ;;
  esac
done

[ -f "$BUILD/CMakeCache.txt" ] || cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$(nproc)" --target bench_scalability \
  --target bench_kernel --target bench_engine --target wiresort-check

# bench_engine's serving table spawns this binary for its cold side, so
# the resident-vs-cold comparison includes real process startup.
WIRESORT_CHECK="$BUILD/tools/wiresort-check"
export WIRESORT_CHECK

# shellcheck disable=SC2086 # QUICK is intentionally word-split.
"$BUILD/bench/bench_scalability" $QUICK --json "$ROOT/BENCH_scalability.json"
echo "wrote $ROOT/BENCH_scalability.json"

# shellcheck disable=SC2086
"$BUILD/bench/bench_kernel" $QUICK --json "$ROOT/BENCH_kernel.json"
echo "wrote $ROOT/BENCH_kernel.json"

# shellcheck disable=SC2086
"$BUILD/bench/bench_engine" $QUICK --json "$ROOT/BENCH_engine.json"
echo "wrote $ROOT/BENCH_engine.json"
