#!/bin/sh
# Refreshes the committed benchmark reports (docs/SCALE.md). Runs the
# scalability sweep — gate-count/input-width curves, pairwise vs SCC,
# and the mega-scale presets through serial, 4-shard-thread, and
# 4-shard-fork Stage 1 plus SCC vs sharded Stage 3 — and writes its
# --json report over BENCH_scalability.json at the repo root. Every
# timing in the report is gated on a results-identical check against
# the serial reference, so a committed report is also a passed
# equivalence run.
#
# Usage: tools/run_bench.sh [--quick]
#   --quick  CI-sized sweep (small presets only); the committed report
#            should come from a full run on a quiet machine.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD="$ROOT/build"

QUICK=""
for Arg in "$@"; do
  case "$Arg" in
  --quick) QUICK="--quick" ;;
  *)
    echo "unknown argument: $Arg" >&2
    exit 2
    ;;
  esac
done

[ -f "$BUILD/CMakeCache.txt" ] || cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$(nproc)" --target bench_scalability

# shellcheck disable=SC2086 # QUICK is intentionally word-split.
"$BUILD/bench/bench_scalability" $QUICK --json "$ROOT/BENCH_scalability.json"
echo "wrote $ROOT/BENCH_scalability.json"
