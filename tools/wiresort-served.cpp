//===- tools/wiresort-served.cpp - The resident check daemon --------------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// The daemon shell around driver::Server (docs/SERVING.md): keeps one
// CheckService — parsed designs' summaries and the content-addressed
// summary cache — resident across requests, so a re-submitted edited
// design re-infers only the modules whose structural content changed.
// Requests arrive over a Unix-domain socket and multiplex onto a
// support::ThreadPool; each runs under its own request deadline.
//
//   wiresort-served --socket /tmp/ws.sock              # serve until
//                                                      # a shutdown request
//   wiresort-served --socket /tmp/ws.sock --workers 4  # connection pool
//   wiresort-served --socket /tmp/ws.sock --threads 2  # per-request engine
//   wiresort-served --socket /tmp/ws.sock --no-cache   # cold every time
//   wiresort-served --socket /tmp/ws.sock --max-pending 8 --drain-ms 2000
//
// Prints one "listening on PATH" line to stdout once the socket is
// bound (scripts wait for it), then blocks until a `shutdown` request
// or a SIGTERM/SIGINT — the signal path drains gracefully: stop
// admitting work (new requests get retryable Busy), let in-flight
// requests finish under --drain-ms, cancel stragglers through the
// cooperative deadline, then unlink the socket, leaving no droppings
// (tools/run_tests.sh asserts that). Exit codes: 0 clean shutdown or
// drain, 2 startup failure (WS5xx).
//
//===----------------------------------------------------------------------===//

#include "wiresort.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace wiresort;

namespace {

int usage(const char *Argv0, const std::string &Why) {
  std::fprintf(stderr, "%s\n",
               support::renderText(
                   support::Diag(support::DiagCode::WS503_USAGE, Why), nullptr)
                   .c_str());
  std::fprintf(stderr,
               "usage: %s --socket PATH [--workers N] [--threads N] "
               "[--no-cache] [--max-request-bytes N] [--max-pending N] "
               "[--read-timeout-ms N] [--write-timeout-ms N] [--drain-ms N]\n",
               Argv0);
  return 2;
}

/// Which signal asked for a graceful drain (0 = none yet). A handler
/// may only touch lock-free atomics; the main loop does the draining.
std::atomic<int> DrainSignal{0};

void onDrainSignal(int Sig) { DrainSignal.store(Sig); }

} // namespace

int main(int ArgC, char **ArgV) {
  driver::ServeOptions Opts;
  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    auto takeValue = [&](std::string &Slot) {
      if (I + 1 >= ArgC)
        return false;
      Slot = ArgV[++I];
      return true;
    };
    std::string Value;
    if (Arg == "--socket") {
      if (!takeValue(Opts.SocketPath))
        return usage(ArgV[0], "--socket expects a path");
    } else if (Arg == "--workers") {
      if (!takeValue(Value))
        return usage(ArgV[0], "--workers expects a count");
      Opts.Workers = static_cast<unsigned>(std::atoi(Value.c_str()));
    } else if (Arg == "--threads") {
      if (!takeValue(Value))
        return usage(ArgV[0], "--threads expects a count");
      Opts.Engine.Threads =
          static_cast<unsigned>(std::atoi(Value.c_str()));
      if (Opts.Engine.Threads == 0)
        return usage(ArgV[0], "--threads expects a positive count");
    } else if (Arg == "--no-cache") {
      Opts.Engine.UseCache = false;
    } else if (Arg == "--max-request-bytes") {
      if (!takeValue(Value))
        return usage(ArgV[0], "--max-request-bytes expects a byte count");
      Opts.MaxRequestBytes = std::strtoull(Value.c_str(), nullptr, 10);
      if (Opts.MaxRequestBytes == 0)
        return usage(ArgV[0], "--max-request-bytes expects a positive count");
    } else if (Arg == "--max-pending") {
      // 0 = unbounded (the pre-admission-control behavior).
      if (!takeValue(Value))
        return usage(ArgV[0], "--max-pending expects a count");
      Opts.MaxPending = static_cast<unsigned>(std::atoi(Value.c_str()));
    } else if (Arg == "--read-timeout-ms") {
      if (!takeValue(Value))
        return usage(ArgV[0], "--read-timeout-ms expects milliseconds");
      Opts.ReadTimeoutMs = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--write-timeout-ms") {
      if (!takeValue(Value))
        return usage(ArgV[0], "--write-timeout-ms expects milliseconds");
      Opts.WriteTimeoutMs = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--drain-ms") {
      if (!takeValue(Value))
        return usage(ArgV[0], "--drain-ms expects milliseconds");
      Opts.DrainDeadlineMs = std::strtoull(Value.c_str(), nullptr, 10);
      if (Opts.DrainDeadlineMs == 0)
        return usage(ArgV[0], "--drain-ms expects a positive count");
    } else {
      return usage(ArgV[0], "unknown option '" + Arg + "'");
    }
  }
  if (Opts.SocketPath.empty())
    return usage(ArgV[0], "no --socket path");

  // Same startup contract as wiresort-check: env-armed failpoints (the
  // serving soak schedules serve.* sites this way) and the wire.* +
  // serve.* counters interned so stats report them at zero.
  if (support::Status Env = support::failpoint::configureFromEnv();
      Env.hasError()) {
    for (const support::Diag &D : Env)
      std::fprintf(stderr, "%s\n", support::renderText(D, nullptr).c_str());
    return 2;
  }
  support::wire::internCounters();
  driver::internServeCounters();

  driver::Server Server(std::move(Opts));
  if (support::Status S = Server.start(); S.hasError()) {
    for (const support::Diag &D : S)
      std::fprintf(stderr, "%s\n", support::renderText(D, nullptr).c_str());
    return 2;
  }
  // Graceful drain on the operator signals; must be installed after
  // start() (which sets SIGPIPE ignore process-wide).
  std::signal(SIGTERM, onDrainSignal);
  std::signal(SIGINT, onDrainSignal);
  std::printf("wiresort-served: listening on %s\n",
              Server.socketPath().c_str());
  std::fflush(stdout); // Scripts block on this line; don't buffer it.
  // Watch for either stop cause: a protocol shutdown request flips the
  // server's own flag; a signal lands in DrainSignal and the drain runs
  // here on the main thread, never in the handler.
  while (!Server.stopRequested() && DrainSignal.load() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  if (int Sig = DrainSignal.load(); Sig != 0 && !Server.stopRequested()) {
    std::printf("wiresort-served: draining on signal %d\n", Sig);
    std::fflush(stdout);
    Server.drain();
  }
  Server.wait();
  std::printf("wiresort-served: %zu connections served, shut down cleanly\n",
              Server.connectionsServed());
  return 0;
}
