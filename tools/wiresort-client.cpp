//===- tools/wiresort-client.cpp - Client for the resident daemon ---------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// The socket-side twin of wiresort-check (docs/SERVING.md): same check
// flags, but instead of running the driver in-process it ships the
// request to a running wiresort-served daemon and replays the
// response's stdout/stderr bytes — which are byte-identical to what
// `wiresort-check` would print for the same inputs, because both sides
// run driver::CheckService (tools/run_served_golden.sh asserts that,
// byte for byte).
//
//   wiresort-client --socket /tmp/ws.sock design.blif --format json
//   wiresort-client --socket /tmp/ws.sock design.blif --check decl.wsort
//   wiresort-client --socket /tmp/ws.sock --stats     # daemon counters
//   wiresort-client --socket /tmp/ws.sock --health    # ready | draining
//   wiresort-client --socket /tmp/ws.sock --shutdown  # drain and stop
//   wiresort-client --socket /tmp/ws.sock design.blif --retries 5
//
// The design file (and any --check sidecar) is read *locally* and
// shipped inline with its path as the diagnostic name, so the daemon
// never depends on sharing a working directory with the client, and
// caret echoes still point at the right file.
//
// Transient trouble is retryable: --retries N re-dials a refused or
// missing socket and resends Busy-shed requests under decorrelated-
// jitter backoff (--retry-base-ms floors the sleeps; the jitter stream
// seeds from WIRESORT_FAILPOINT_SEED, so soak schedules replay).
// --transport-timeout-ms bounds the client-side socket I/O.
//
// Exit codes (docs/DIAGNOSTICS.md): the server-side check's own
// contract (0/1/2/3) passed through verbatim; then the transport
// dispositions, each distinguishable to scripts:
//   2  transport damage (torn/checksum-failed response) or a rejected
//      request — the client fails closed and never guesses a verdict
//   4  connection refused after all retries (daemon not listening)
//   5  socket path does not exist (stale path / daemon never started)
//   6  transport timeout (WS606: server read/write or client deadline)
//   7  server still Busy after all retries (shed or draining)
//
//===----------------------------------------------------------------------===//

#include "wiresort.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace wiresort;
using namespace wiresort::analysis;

namespace {

void emitEarly(Format Fmt, const support::Diag &D) {
  if (Fmt == Format::Json)
    std::printf("%s\n", support::renderJson(D).c_str());
  else
    std::fprintf(stderr, "%s\n", support::renderText(D, nullptr).c_str());
}

void emitEarly(Format Fmt, const support::Status &Ds) {
  for (const support::Diag &D : Ds)
    emitEarly(Fmt, D);
}

int usage(const char *Argv0, Format Fmt, const std::string &Why) {
  emitEarly(Fmt, support::Diag(support::DiagCode::WS503_USAGE, Why));
  std::fprintf(stderr,
               "usage: %s --socket PATH <design.blif|design.v> "
               "[--summaries FILE] [--summary-format text|binary] "
               "[--check FILE] [--dot FILE] [--format text|json] "
               "[--quiet] [--depth] [--shards N] [--shard I/N] "
               "[--cache FILE] [--trace-out FILE] [--stats-line] "
               "[--timeout-ms N] [--failpoints SPEC] [--fault-seed N] "
               "[--retries N] [--retry-base-ms N] [--transport-timeout-ms N]\n"
               "       %s --socket PATH --stats | --health | --shutdown\n",
               Argv0, Argv0);
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  Out = Ss.str();
  return true;
}

} // namespace

int main(int ArgC, char **ArgV) {
  driver::CheckRequest R;
  std::string SocketPath;
  bool WantStats = false, WantShutdown = false, WantHealth = false;
  unsigned Retries = 0;
  uint64_t RetryBaseMs = 10, TransportTimeoutMs = 0;
  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    auto takeValue = [&](std::string &Slot) {
      if (I + 1 >= ArgC)
        return false;
      Slot = ArgV[++I];
      return true;
    };
    Format Fmt = R.Req.OutputFormat;
    std::string Value;
    if (Arg == "--socket") {
      if (!takeValue(SocketPath))
        return usage(ArgV[0], Fmt, "--socket expects a path");
    } else if (Arg == "--stats") {
      WantStats = true;
    } else if (Arg == "--shutdown") {
      WantShutdown = true;
    } else if (Arg == "--health") {
      WantHealth = true;
    } else if (Arg == "--retries") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--retries expects a count");
      // strtoull silently negates "-1" into ~4 billion attempts, so
      // reject a leading sign and trailing junk explicitly; cap the
      // count so a typo cannot spell an effectively-infinite loop.
      const char *Text = Value.c_str();
      char *End = nullptr;
      unsigned long long N = std::strtoull(Text, &End, 10);
      if (End == Text || *End != '\0' ||
          !std::isdigit(static_cast<unsigned char>(Value[0])) || N > 1000)
        return usage(ArgV[0], Fmt,
                     "--retries expects a count between 0 and 1000");
      Retries = static_cast<unsigned>(N);
    } else if (Arg == "--retry-base-ms") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--retry-base-ms expects milliseconds");
      RetryBaseMs = std::strtoull(Value.c_str(), nullptr, 10);
      if (RetryBaseMs == 0)
        return usage(ArgV[0], Fmt,
                     "--retry-base-ms expects a positive millisecond count");
    } else if (Arg == "--transport-timeout-ms") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt,
                     "--transport-timeout-ms expects milliseconds");
      TransportTimeoutMs = std::strtoull(Value.c_str(), nullptr, 10);
      if (TransportTimeoutMs == 0)
        return usage(ArgV[0], Fmt,
                     "--transport-timeout-ms expects a positive count");
    } else if (Arg == "--summaries") {
      if (!takeValue(R.SummariesOut))
        return usage(ArgV[0], Fmt, "--summaries expects a file");
    } else if (Arg == "--summary-format") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--summary-format expects text or binary");
      if (Value == "binary")
        R.BinarySummaries = true;
      else if (Value == "text")
        R.BinarySummaries = false;
      else
        return usage(ArgV[0], Fmt, "unknown --summary-format '" + Value +
                                       "' (text|binary)");
    } else if (Arg == "--check") {
      if (!takeValue(R.CheckPath))
        return usage(ArgV[0], Fmt, "--check expects a file");
    } else if (Arg == "--dot") {
      if (!takeValue(R.DotPath))
        return usage(ArgV[0], Fmt, "--dot expects a file");
    } else if (Arg == "--cache") {
      if (!takeValue(R.Req.CachePath))
        return usage(ArgV[0], Fmt, "--cache expects a file");
    } else if (Arg == "--trace-out") {
      if (!takeValue(R.Req.TraceOutPath))
        return usage(ArgV[0], Fmt, "--trace-out expects a file");
    } else if (Arg == "--stats-line") {
      R.Req.Stats = true;
    } else if (Arg == "--format") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--format expects text or json");
      if (Value == "json")
        R.Req.OutputFormat = Format::Json;
      else if (Value == "text")
        R.Req.OutputFormat = Format::Text;
      else
        return usage(ArgV[0], Fmt,
                     "unknown --format '" + Value + "' (text|json)");
    } else if (Arg == "--shards") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--shards expects a worker count");
      R.Shards = static_cast<unsigned>(std::atoi(Value.c_str()));
      if (R.Shards == 0)
        return usage(ArgV[0], Fmt, "--shards expects a positive worker count");
    } else if (Arg == "--shard") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--shard expects I/N");
      const char *Text = Value.c_str();
      char *End = nullptr;
      R.SliceShard = static_cast<unsigned>(std::strtoul(Text, &End, 10));
      if (End == Text || *End != '/')
        return usage(ArgV[0], Fmt, "--shard expects I/N (e.g. --shard 0/4)");
      R.SliceOf = static_cast<unsigned>(std::strtoul(End + 1, nullptr, 10));
      if (R.SliceOf == 0 || R.SliceShard >= R.SliceOf)
        return usage(ArgV[0], Fmt, "--shard I/N needs 0 <= I < N");
    } else if (Arg == "--timeout-ms") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--timeout-ms expects milliseconds");
      R.Req.TimeoutMs = std::strtoull(Value.c_str(), nullptr, 10);
      if (R.Req.TimeoutMs == 0)
        return usage(ArgV[0], Fmt,
                     "--timeout-ms expects a positive millisecond count");
    } else if (Arg == "--failpoints") {
      if (!takeValue(R.Req.FailpointSpec))
        return usage(ArgV[0], Fmt, "--failpoints expects site=mode,...");
    } else if (Arg == "--fault-seed") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--fault-seed expects a number");
      R.Req.FaultSeed = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--quiet") {
      R.Quiet = true;
    } else if (Arg == "--depth") {
      R.ShowDepth = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(ArgV[0], Fmt, "unknown option '" + Arg + "'");
    } else if (R.DesignPath.empty()) {
      R.DesignPath = Arg;
    } else {
      return usage(ArgV[0], Fmt, "more than one design file");
    }
  }
  const Format Fmt = R.Req.OutputFormat;
  if (SocketPath.empty())
    return usage(ArgV[0], Fmt, "no --socket path");
  if ((WantStats ? 1 : 0) + (WantShutdown ? 1 : 0) + (WantHealth ? 1 : 0) > 1)
    return usage(ArgV[0], Fmt,
                 "--stats, --health, and --shutdown are mutually exclusive");

  driver::Method M = driver::Method::Check;
  if (WantStats || WantShutdown || WantHealth) {
    if (!R.DesignPath.empty())
      return usage(ArgV[0], Fmt,
                   WantStats    ? "--stats takes no design file"
                   : WantHealth ? "--health takes no design file"
                                : "--shutdown takes no design file");
    M = WantStats    ? driver::Method::Stats
        : WantHealth ? driver::Method::Health
                     : driver::Method::Shutdown;
  } else {
    if (R.DesignPath.empty())
      return usage(ArgV[0], Fmt, "no design file");
    if (R.Shards != 0 && R.SliceOf != 0)
      return usage(ArgV[0], Fmt, "--shards and --shard are mutually exclusive");
    // Ship the sources inline, named by their paths: the daemon needs
    // no shared cwd, and diagnostics (caret echoes included) come back
    // byte-identical to a local wiresort-check run on the same files.
    if (!readFile(R.DesignPath, R.DesignText)) {
      emitEarly(Fmt, support::Diag(support::DiagCode::WS501_IO_ERROR,
                                   "cannot read design file")
                         .withNote("path", R.DesignPath));
      return 2;
    }
    R.HasInlineText = true;
    R.DesignName = R.DesignPath;
    if (!R.CheckPath.empty()) {
      if (!readFile(R.CheckPath, R.CheckText)) {
        emitEarly(Fmt, support::Diag(support::DiagCode::WS501_IO_ERROR,
                                     "cannot read declared-summary file")
                           .withNote("path", R.CheckPath));
        return 2;
      }
      R.HasInlineCheckText = true;
      M = driver::Method::Ascribe;
    }
  }

  // The client-side failpoints (client.connect.refuse) arm from the
  // environment, the same contract as the daemon and CLI.
  if (support::Status Env = support::failpoint::configureFromEnv();
      Env.hasError()) {
    emitEarly(Fmt, Env);
    return 2;
  }

  support::sock::RetryPolicy Policy;
  Policy.MaxAttempts = Retries + 1;
  Policy.BaseMs = RetryBaseMs;
  if (const char *SeedEnv = std::getenv("WIRESORT_FAILPOINT_SEED"))
    Policy.Seed = std::strtoull(SeedEnv, nullptr, 10);

  driver::Response Res =
      driver::requestWithRetry(SocketPath, M, R, Policy, TransportTimeoutMs);
  if (!Res.Ok) {
    // Fail closed, but say *how* it failed: scripts key restart logic
    // on these codes, and the WS-coded diags carry the errno evidence.
    emitEarly(Fmt, Res.Transport);
    if (Res.TimedOut)
      return 6;
    std::string Errno = Res.Transport.hasError()
                            ? Res.Transport.firstError().note("errno")
                            : "";
    if (Errno == "ECONNREFUSED")
      return 4;
    if (Errno == "ENOENT")
      return 5;
    return 2;
  }
  if (!Res.Out.empty())
    std::fwrite(Res.Out.data(), 1, Res.Out.size(), stdout);
  if (!Res.Err.empty())
    std::fwrite(Res.Err.data(), 1, Res.Err.size(), stderr);
  if (Res.Busy) {
    // Retries exhausted against a shedding/draining server: the canned
    // server line already went to stderr above; add the WS-coded diag
    // scripts key on, with the retry evidence.
    emitEarly(Fmt,
              support::Diag(support::DiagCode::WS607_SERVER_BUSY,
                            "server busy after all retries")
                  .withNote("attempts", std::to_string(Policy.MaxAttempts)));
    return 7;
  }
  if (Res.TimedOut)
    return 6; // The server's transport deadline fired on our request.
  return Res.ExitCode;
}
