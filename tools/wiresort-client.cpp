//===- tools/wiresort-client.cpp - Client for the resident daemon ---------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// The socket-side twin of wiresort-check (docs/SERVING.md): same check
// flags, but instead of running the driver in-process it ships the
// request to a running wiresort-served daemon and replays the
// response's stdout/stderr bytes — which are byte-identical to what
// `wiresort-check` would print for the same inputs, because both sides
// run driver::CheckService (tools/run_served_golden.sh asserts that,
// byte for byte).
//
//   wiresort-client --socket /tmp/ws.sock design.blif --format json
//   wiresort-client --socket /tmp/ws.sock design.blif --check decl.wsort
//   wiresort-client --socket /tmp/ws.sock --stats     # daemon counters
//   wiresort-client --socket /tmp/ws.sock --shutdown  # drain and stop
//
// The design file (and any --check sidecar) is read *locally* and
// shipped inline with its path as the diagnostic name, so the daemon
// never depends on sharing a working directory with the client, and
// caret echoes still point at the right file.
//
// Exit codes: the server-side check's own contract (0/1/2/3 —
// docs/DIAGNOSTICS.md) passed through verbatim; 2 for transport damage
// (can't connect, torn or checksum-failed response — the client fails
// closed and never guesses a verdict).
//
//===----------------------------------------------------------------------===//

#include "wiresort.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace wiresort;
using namespace wiresort::analysis;

namespace {

void emitEarly(Format Fmt, const support::Diag &D) {
  if (Fmt == Format::Json)
    std::printf("%s\n", support::renderJson(D).c_str());
  else
    std::fprintf(stderr, "%s\n", support::renderText(D, nullptr).c_str());
}

void emitEarly(Format Fmt, const support::Status &Ds) {
  for (const support::Diag &D : Ds)
    emitEarly(Fmt, D);
}

int usage(const char *Argv0, Format Fmt, const std::string &Why) {
  emitEarly(Fmt, support::Diag(support::DiagCode::WS503_USAGE, Why));
  std::fprintf(stderr,
               "usage: %s --socket PATH <design.blif|design.v> "
               "[--summaries FILE] [--summary-format text|binary] "
               "[--check FILE] [--dot FILE] [--format text|json] "
               "[--quiet] [--depth] [--shards N] [--shard I/N] "
               "[--cache FILE] [--trace-out FILE] [--stats-line] "
               "[--timeout-ms N] [--failpoints SPEC] [--fault-seed N]\n"
               "       %s --socket PATH --stats | --shutdown\n",
               Argv0, Argv0);
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  Out = Ss.str();
  return true;
}

} // namespace

int main(int ArgC, char **ArgV) {
  driver::CheckRequest R;
  std::string SocketPath;
  bool WantStats = false, WantShutdown = false;
  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    auto takeValue = [&](std::string &Slot) {
      if (I + 1 >= ArgC)
        return false;
      Slot = ArgV[++I];
      return true;
    };
    Format Fmt = R.Req.OutputFormat;
    std::string Value;
    if (Arg == "--socket") {
      if (!takeValue(SocketPath))
        return usage(ArgV[0], Fmt, "--socket expects a path");
    } else if (Arg == "--stats") {
      WantStats = true;
    } else if (Arg == "--shutdown") {
      WantShutdown = true;
    } else if (Arg == "--summaries") {
      if (!takeValue(R.SummariesOut))
        return usage(ArgV[0], Fmt, "--summaries expects a file");
    } else if (Arg == "--summary-format") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--summary-format expects text or binary");
      if (Value == "binary")
        R.BinarySummaries = true;
      else if (Value == "text")
        R.BinarySummaries = false;
      else
        return usage(ArgV[0], Fmt, "unknown --summary-format '" + Value +
                                       "' (text|binary)");
    } else if (Arg == "--check") {
      if (!takeValue(R.CheckPath))
        return usage(ArgV[0], Fmt, "--check expects a file");
    } else if (Arg == "--dot") {
      if (!takeValue(R.DotPath))
        return usage(ArgV[0], Fmt, "--dot expects a file");
    } else if (Arg == "--cache") {
      if (!takeValue(R.Req.CachePath))
        return usage(ArgV[0], Fmt, "--cache expects a file");
    } else if (Arg == "--trace-out") {
      if (!takeValue(R.Req.TraceOutPath))
        return usage(ArgV[0], Fmt, "--trace-out expects a file");
    } else if (Arg == "--stats-line") {
      R.Req.Stats = true;
    } else if (Arg == "--format") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--format expects text or json");
      if (Value == "json")
        R.Req.OutputFormat = Format::Json;
      else if (Value == "text")
        R.Req.OutputFormat = Format::Text;
      else
        return usage(ArgV[0], Fmt,
                     "unknown --format '" + Value + "' (text|json)");
    } else if (Arg == "--shards") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--shards expects a worker count");
      R.Shards = static_cast<unsigned>(std::atoi(Value.c_str()));
      if (R.Shards == 0)
        return usage(ArgV[0], Fmt, "--shards expects a positive worker count");
    } else if (Arg == "--shard") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--shard expects I/N");
      const char *Text = Value.c_str();
      char *End = nullptr;
      R.SliceShard = static_cast<unsigned>(std::strtoul(Text, &End, 10));
      if (End == Text || *End != '/')
        return usage(ArgV[0], Fmt, "--shard expects I/N (e.g. --shard 0/4)");
      R.SliceOf = static_cast<unsigned>(std::strtoul(End + 1, nullptr, 10));
      if (R.SliceOf == 0 || R.SliceShard >= R.SliceOf)
        return usage(ArgV[0], Fmt, "--shard I/N needs 0 <= I < N");
    } else if (Arg == "--timeout-ms") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--timeout-ms expects milliseconds");
      R.Req.TimeoutMs = std::strtoull(Value.c_str(), nullptr, 10);
      if (R.Req.TimeoutMs == 0)
        return usage(ArgV[0], Fmt,
                     "--timeout-ms expects a positive millisecond count");
    } else if (Arg == "--failpoints") {
      if (!takeValue(R.Req.FailpointSpec))
        return usage(ArgV[0], Fmt, "--failpoints expects site=mode,...");
    } else if (Arg == "--fault-seed") {
      if (!takeValue(Value))
        return usage(ArgV[0], Fmt, "--fault-seed expects a number");
      R.Req.FaultSeed = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--quiet") {
      R.Quiet = true;
    } else if (Arg == "--depth") {
      R.ShowDepth = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(ArgV[0], Fmt, "unknown option '" + Arg + "'");
    } else if (R.DesignPath.empty()) {
      R.DesignPath = Arg;
    } else {
      return usage(ArgV[0], Fmt, "more than one design file");
    }
  }
  const Format Fmt = R.Req.OutputFormat;
  if (SocketPath.empty())
    return usage(ArgV[0], Fmt, "no --socket path");
  if (WantStats && WantShutdown)
    return usage(ArgV[0], Fmt, "--stats and --shutdown are mutually exclusive");

  driver::Method M = driver::Method::Check;
  if (WantStats || WantShutdown) {
    if (!R.DesignPath.empty())
      return usage(ArgV[0], Fmt,
                   WantStats ? "--stats takes no design file"
                             : "--shutdown takes no design file");
    M = WantStats ? driver::Method::Stats : driver::Method::Shutdown;
  } else {
    if (R.DesignPath.empty())
      return usage(ArgV[0], Fmt, "no design file");
    if (R.Shards != 0 && R.SliceOf != 0)
      return usage(ArgV[0], Fmt, "--shards and --shard are mutually exclusive");
    // Ship the sources inline, named by their paths: the daemon needs
    // no shared cwd, and diagnostics (caret echoes included) come back
    // byte-identical to a local wiresort-check run on the same files.
    if (!readFile(R.DesignPath, R.DesignText)) {
      emitEarly(Fmt, support::Diag(support::DiagCode::WS501_IO_ERROR,
                                   "cannot read design file")
                         .withNote("path", R.DesignPath));
      return 2;
    }
    R.HasInlineText = true;
    R.DesignName = R.DesignPath;
    if (!R.CheckPath.empty()) {
      if (!readFile(R.CheckPath, R.CheckText)) {
        emitEarly(Fmt, support::Diag(support::DiagCode::WS501_IO_ERROR,
                                     "cannot read declared-summary file")
                           .withNote("path", R.CheckPath));
        return 2;
      }
      R.HasInlineCheckText = true;
      M = driver::Method::Ascribe;
    }
  }

  driver::Response Res = driver::requestOnce(SocketPath, M, R);
  if (!Res.Ok) {
    emitEarly(Fmt, Res.Transport);
    return 2;
  }
  if (!Res.Out.empty())
    std::fwrite(Res.Out.data(), 1, Res.Out.size(), stdout);
  if (!Res.Err.empty())
    std::fwrite(Res.Err.data(), 1, Res.Err.size(), stderr);
  return Res.ExitCode;
}
