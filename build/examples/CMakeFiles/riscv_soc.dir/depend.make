# Empty dependencies file for riscv_soc.
# This may be replaced when dependencies are built.
