file(REMOVE_RECURSE
  "CMakeFiles/riscv_soc.dir/riscv_soc.cpp.o"
  "CMakeFiles/riscv_soc.dir/riscv_soc.cpp.o.d"
  "riscv_soc"
  "riscv_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
