file(REMOVE_RECURSE
  "CMakeFiles/sync_memory.dir/sync_memory.cpp.o"
  "CMakeFiles/sync_memory.dir/sync_memory.cpp.o.d"
  "sync_memory"
  "sync_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
