# Empty dependencies file for sync_memory.
# This may be replaced when dependencies are built.
