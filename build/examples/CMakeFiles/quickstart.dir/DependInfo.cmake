
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/riscv/CMakeFiles/ws_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/ws_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ws_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/ws_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ws_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ws_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ws_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
