file(REMOVE_RECURSE
  "CMakeFiles/blif_import.dir/blif_import.cpp.o"
  "CMakeFiles/blif_import.dir/blif_import.cpp.o.d"
  "blif_import"
  "blif_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blif_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
