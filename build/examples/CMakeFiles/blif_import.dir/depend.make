# Empty dependencies file for blif_import.
# This may be replaced when dependencies are built.
