# Empty dependencies file for forwarding_fifo_loop.
# This may be replaced when dependencies are built.
