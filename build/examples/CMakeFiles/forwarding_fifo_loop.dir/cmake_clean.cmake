file(REMOVE_RECURSE
  "CMakeFiles/forwarding_fifo_loop.dir/forwarding_fifo_loop.cpp.o"
  "CMakeFiles/forwarding_fifo_loop.dir/forwarding_fifo_loop.cpp.o.d"
  "forwarding_fifo_loop"
  "forwarding_fifo_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forwarding_fifo_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
