file(REMOVE_RECURSE
  "CMakeFiles/ws_sim.dir/Simulator.cpp.o"
  "CMakeFiles/ws_sim.dir/Simulator.cpp.o.d"
  "CMakeFiles/ws_sim.dir/Vcd.cpp.o"
  "CMakeFiles/ws_sim.dir/Vcd.cpp.o.d"
  "libws_sim.a"
  "libws_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
