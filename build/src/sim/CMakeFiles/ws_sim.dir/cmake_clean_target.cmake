file(REMOVE_RECURSE
  "libws_sim.a"
)
