file(REMOVE_RECURSE
  "CMakeFiles/ws_support.dir/Graph.cpp.o"
  "CMakeFiles/ws_support.dir/Graph.cpp.o.d"
  "CMakeFiles/ws_support.dir/Table.cpp.o"
  "CMakeFiles/ws_support.dir/Table.cpp.o.d"
  "libws_support.a"
  "libws_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
