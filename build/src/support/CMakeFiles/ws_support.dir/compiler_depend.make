# Empty compiler generated dependencies file for ws_support.
# This may be replaced when dependencies are built.
