file(REMOVE_RECURSE
  "libws_parse.a"
)
