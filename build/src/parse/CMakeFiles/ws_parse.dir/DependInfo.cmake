
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parse/Blif.cpp" "src/parse/CMakeFiles/ws_parse.dir/Blif.cpp.o" "gcc" "src/parse/CMakeFiles/ws_parse.dir/Blif.cpp.o.d"
  "/root/repo/src/parse/Verilog.cpp" "src/parse/CMakeFiles/ws_parse.dir/Verilog.cpp.o" "gcc" "src/parse/CMakeFiles/ws_parse.dir/Verilog.cpp.o.d"
  "/root/repo/src/parse/VerilogLexer.cpp" "src/parse/CMakeFiles/ws_parse.dir/VerilogLexer.cpp.o" "gcc" "src/parse/CMakeFiles/ws_parse.dir/VerilogLexer.cpp.o.d"
  "/root/repo/src/parse/VerilogReader.cpp" "src/parse/CMakeFiles/ws_parse.dir/VerilogReader.cpp.o" "gcc" "src/parse/CMakeFiles/ws_parse.dir/VerilogReader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ws_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
