# Empty dependencies file for ws_parse.
# This may be replaced when dependencies are built.
