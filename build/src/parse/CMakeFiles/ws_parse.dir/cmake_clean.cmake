file(REMOVE_RECURSE
  "CMakeFiles/ws_parse.dir/Blif.cpp.o"
  "CMakeFiles/ws_parse.dir/Blif.cpp.o.d"
  "CMakeFiles/ws_parse.dir/Verilog.cpp.o"
  "CMakeFiles/ws_parse.dir/Verilog.cpp.o.d"
  "CMakeFiles/ws_parse.dir/VerilogLexer.cpp.o"
  "CMakeFiles/ws_parse.dir/VerilogLexer.cpp.o.d"
  "CMakeFiles/ws_parse.dir/VerilogReader.cpp.o"
  "CMakeFiles/ws_parse.dir/VerilogReader.cpp.o.d"
  "libws_parse.a"
  "libws_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
