file(REMOVE_RECURSE
  "CMakeFiles/ws_ir.dir/Builder.cpp.o"
  "CMakeFiles/ws_ir.dir/Builder.cpp.o.d"
  "CMakeFiles/ws_ir.dir/Circuit.cpp.o"
  "CMakeFiles/ws_ir.dir/Circuit.cpp.o.d"
  "CMakeFiles/ws_ir.dir/Design.cpp.o"
  "CMakeFiles/ws_ir.dir/Design.cpp.o.d"
  "CMakeFiles/ws_ir.dir/Module.cpp.o"
  "CMakeFiles/ws_ir.dir/Module.cpp.o.d"
  "libws_ir.a"
  "libws_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
