# Empty dependencies file for ws_ir.
# This may be replaced when dependencies are built.
