file(REMOVE_RECURSE
  "libws_ir.a"
)
