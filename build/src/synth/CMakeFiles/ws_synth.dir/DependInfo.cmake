
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/CycleDetect.cpp" "src/synth/CMakeFiles/ws_synth.dir/CycleDetect.cpp.o" "gcc" "src/synth/CMakeFiles/ws_synth.dir/CycleDetect.cpp.o.d"
  "/root/repo/src/synth/Flatten.cpp" "src/synth/CMakeFiles/ws_synth.dir/Flatten.cpp.o" "gcc" "src/synth/CMakeFiles/ws_synth.dir/Flatten.cpp.o.d"
  "/root/repo/src/synth/Lower.cpp" "src/synth/CMakeFiles/ws_synth.dir/Lower.cpp.o" "gcc" "src/synth/CMakeFiles/ws_synth.dir/Lower.cpp.o.d"
  "/root/repo/src/synth/Optimize.cpp" "src/synth/CMakeFiles/ws_synth.dir/Optimize.cpp.o" "gcc" "src/synth/CMakeFiles/ws_synth.dir/Optimize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ws_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ws_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
