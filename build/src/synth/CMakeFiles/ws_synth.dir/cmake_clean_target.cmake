file(REMOVE_RECURSE
  "libws_synth.a"
)
