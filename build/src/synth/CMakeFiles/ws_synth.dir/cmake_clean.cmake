file(REMOVE_RECURSE
  "CMakeFiles/ws_synth.dir/CycleDetect.cpp.o"
  "CMakeFiles/ws_synth.dir/CycleDetect.cpp.o.d"
  "CMakeFiles/ws_synth.dir/Flatten.cpp.o"
  "CMakeFiles/ws_synth.dir/Flatten.cpp.o.d"
  "CMakeFiles/ws_synth.dir/Lower.cpp.o"
  "CMakeFiles/ws_synth.dir/Lower.cpp.o.d"
  "CMakeFiles/ws_synth.dir/Optimize.cpp.o"
  "CMakeFiles/ws_synth.dir/Optimize.cpp.o.d"
  "libws_synth.a"
  "libws_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
