# Empty dependencies file for ws_synth.
# This may be replaced when dependencies are built.
