file(REMOVE_RECURSE
  "libws_riscv.a"
)
