# Empty compiler generated dependencies file for ws_riscv.
# This may be replaced when dependencies are built.
