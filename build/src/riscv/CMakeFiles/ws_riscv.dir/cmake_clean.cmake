file(REMOVE_RECURSE
  "CMakeFiles/ws_riscv.dir/Cpu.cpp.o"
  "CMakeFiles/ws_riscv.dir/Cpu.cpp.o.d"
  "libws_riscv.a"
  "libws_riscv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
