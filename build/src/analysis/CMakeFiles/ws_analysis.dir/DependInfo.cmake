
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Ascription.cpp" "src/analysis/CMakeFiles/ws_analysis.dir/Ascription.cpp.o" "gcc" "src/analysis/CMakeFiles/ws_analysis.dir/Ascription.cpp.o.d"
  "/root/repo/src/analysis/BaseJump.cpp" "src/analysis/CMakeFiles/ws_analysis.dir/BaseJump.cpp.o" "gcc" "src/analysis/CMakeFiles/ws_analysis.dir/BaseJump.cpp.o.d"
  "/root/repo/src/analysis/Depth.cpp" "src/analysis/CMakeFiles/ws_analysis.dir/Depth.cpp.o" "gcc" "src/analysis/CMakeFiles/ws_analysis.dir/Depth.cpp.o.d"
  "/root/repo/src/analysis/Dot.cpp" "src/analysis/CMakeFiles/ws_analysis.dir/Dot.cpp.o" "gcc" "src/analysis/CMakeFiles/ws_analysis.dir/Dot.cpp.o.d"
  "/root/repo/src/analysis/Incremental.cpp" "src/analysis/CMakeFiles/ws_analysis.dir/Incremental.cpp.o" "gcc" "src/analysis/CMakeFiles/ws_analysis.dir/Incremental.cpp.o.d"
  "/root/repo/src/analysis/MemoryChecks.cpp" "src/analysis/CMakeFiles/ws_analysis.dir/MemoryChecks.cpp.o" "gcc" "src/analysis/CMakeFiles/ws_analysis.dir/MemoryChecks.cpp.o.d"
  "/root/repo/src/analysis/Reachability.cpp" "src/analysis/CMakeFiles/ws_analysis.dir/Reachability.cpp.o" "gcc" "src/analysis/CMakeFiles/ws_analysis.dir/Reachability.cpp.o.d"
  "/root/repo/src/analysis/SortInference.cpp" "src/analysis/CMakeFiles/ws_analysis.dir/SortInference.cpp.o" "gcc" "src/analysis/CMakeFiles/ws_analysis.dir/SortInference.cpp.o.d"
  "/root/repo/src/analysis/SummaryIO.cpp" "src/analysis/CMakeFiles/ws_analysis.dir/SummaryIO.cpp.o" "gcc" "src/analysis/CMakeFiles/ws_analysis.dir/SummaryIO.cpp.o.d"
  "/root/repo/src/analysis/WellConnected.cpp" "src/analysis/CMakeFiles/ws_analysis.dir/WellConnected.cpp.o" "gcc" "src/analysis/CMakeFiles/ws_analysis.dir/WellConnected.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ws_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
