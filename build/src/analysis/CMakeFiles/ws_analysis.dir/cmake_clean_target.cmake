file(REMOVE_RECURSE
  "libws_analysis.a"
)
