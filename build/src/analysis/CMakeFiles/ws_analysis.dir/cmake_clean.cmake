file(REMOVE_RECURSE
  "CMakeFiles/ws_analysis.dir/Ascription.cpp.o"
  "CMakeFiles/ws_analysis.dir/Ascription.cpp.o.d"
  "CMakeFiles/ws_analysis.dir/BaseJump.cpp.o"
  "CMakeFiles/ws_analysis.dir/BaseJump.cpp.o.d"
  "CMakeFiles/ws_analysis.dir/Depth.cpp.o"
  "CMakeFiles/ws_analysis.dir/Depth.cpp.o.d"
  "CMakeFiles/ws_analysis.dir/Dot.cpp.o"
  "CMakeFiles/ws_analysis.dir/Dot.cpp.o.d"
  "CMakeFiles/ws_analysis.dir/Incremental.cpp.o"
  "CMakeFiles/ws_analysis.dir/Incremental.cpp.o.d"
  "CMakeFiles/ws_analysis.dir/MemoryChecks.cpp.o"
  "CMakeFiles/ws_analysis.dir/MemoryChecks.cpp.o.d"
  "CMakeFiles/ws_analysis.dir/Reachability.cpp.o"
  "CMakeFiles/ws_analysis.dir/Reachability.cpp.o.d"
  "CMakeFiles/ws_analysis.dir/SortInference.cpp.o"
  "CMakeFiles/ws_analysis.dir/SortInference.cpp.o.d"
  "CMakeFiles/ws_analysis.dir/SummaryIO.cpp.o"
  "CMakeFiles/ws_analysis.dir/SummaryIO.cpp.o.d"
  "CMakeFiles/ws_analysis.dir/WellConnected.cpp.o"
  "CMakeFiles/ws_analysis.dir/WellConnected.cpp.o.d"
  "libws_analysis.a"
  "libws_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
