
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/CacheDma.cpp" "src/gen/CMakeFiles/ws_gen.dir/CacheDma.cpp.o" "gcc" "src/gen/CMakeFiles/ws_gen.dir/CacheDma.cpp.o.d"
  "/root/repo/src/gen/Catalog.cpp" "src/gen/CMakeFiles/ws_gen.dir/Catalog.cpp.o" "gcc" "src/gen/CMakeFiles/ws_gen.dir/Catalog.cpp.o.d"
  "/root/repo/src/gen/Fifo.cpp" "src/gen/CMakeFiles/ws_gen.dir/Fifo.cpp.o" "gcc" "src/gen/CMakeFiles/ws_gen.dir/Fifo.cpp.o.d"
  "/root/repo/src/gen/LoopInjector.cpp" "src/gen/CMakeFiles/ws_gen.dir/LoopInjector.cpp.o" "gcc" "src/gen/CMakeFiles/ws_gen.dir/LoopInjector.cpp.o.d"
  "/root/repo/src/gen/Opdb.cpp" "src/gen/CMakeFiles/ws_gen.dir/Opdb.cpp.o" "gcc" "src/gen/CMakeFiles/ws_gen.dir/Opdb.cpp.o.d"
  "/root/repo/src/gen/Random.cpp" "src/gen/CMakeFiles/ws_gen.dir/Random.cpp.o" "gcc" "src/gen/CMakeFiles/ws_gen.dir/Random.cpp.o.d"
  "/root/repo/src/gen/ShiftReg.cpp" "src/gen/CMakeFiles/ws_gen.dir/ShiftReg.cpp.o" "gcc" "src/gen/CMakeFiles/ws_gen.dir/ShiftReg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ws_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
