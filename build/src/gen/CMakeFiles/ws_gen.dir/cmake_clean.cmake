file(REMOVE_RECURSE
  "CMakeFiles/ws_gen.dir/CacheDma.cpp.o"
  "CMakeFiles/ws_gen.dir/CacheDma.cpp.o.d"
  "CMakeFiles/ws_gen.dir/Catalog.cpp.o"
  "CMakeFiles/ws_gen.dir/Catalog.cpp.o.d"
  "CMakeFiles/ws_gen.dir/Fifo.cpp.o"
  "CMakeFiles/ws_gen.dir/Fifo.cpp.o.d"
  "CMakeFiles/ws_gen.dir/LoopInjector.cpp.o"
  "CMakeFiles/ws_gen.dir/LoopInjector.cpp.o.d"
  "CMakeFiles/ws_gen.dir/Opdb.cpp.o"
  "CMakeFiles/ws_gen.dir/Opdb.cpp.o.d"
  "CMakeFiles/ws_gen.dir/Random.cpp.o"
  "CMakeFiles/ws_gen.dir/Random.cpp.o.d"
  "CMakeFiles/ws_gen.dir/ShiftReg.cpp.o"
  "CMakeFiles/ws_gen.dir/ShiftReg.cpp.o.d"
  "libws_gen.a"
  "libws_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
