file(REMOVE_RECURSE
  "libws_gen.a"
)
