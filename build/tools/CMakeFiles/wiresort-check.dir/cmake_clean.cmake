file(REMOVE_RECURSE
  "CMakeFiles/wiresort-check.dir/wiresort-check.cpp.o"
  "CMakeFiles/wiresort-check.dir/wiresort-check.cpp.o.d"
  "wiresort-check"
  "wiresort-check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiresort-check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
