# Empty compiler generated dependencies file for wiresort-check.
# This may be replaced when dependencies are built.
