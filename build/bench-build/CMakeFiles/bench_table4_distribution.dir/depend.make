# Empty dependencies file for bench_table4_distribution.
# This may be replaced when dependencies are built.
