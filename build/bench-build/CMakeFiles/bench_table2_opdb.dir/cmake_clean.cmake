file(REMOVE_RECURSE
  "../bench/bench_table2_opdb"
  "../bench/bench_table2_opdb.pdb"
  "CMakeFiles/bench_table2_opdb.dir/bench_table2_opdb.cpp.o"
  "CMakeFiles/bench_table2_opdb.dir/bench_table2_opdb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_opdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
