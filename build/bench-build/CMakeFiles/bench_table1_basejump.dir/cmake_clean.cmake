file(REMOVE_RECURSE
  "../bench/bench_table1_basejump"
  "../bench/bench_table1_basejump.pdb"
  "CMakeFiles/bench_table1_basejump.dir/bench_table1_basejump.cpp.o"
  "CMakeFiles/bench_table1_basejump.dir/bench_table1_basejump.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_basejump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
