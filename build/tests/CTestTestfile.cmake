# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_tests "/root/repo/build/tests/support_tests")
set_tests_properties(support_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;ws_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ir_tests "/root/repo/build/tests/ir_tests")
set_tests_properties(ir_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;ws_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_tests "/root/repo/build/tests/analysis_tests")
set_tests_properties(analysis_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;ws_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(synth_tests "/root/repo/build/tests/synth_tests")
set_tests_properties(synth_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;27;ws_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(parse_tests "/root/repo/build/tests/parse_tests")
set_tests_properties(parse_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;31;ws_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_tests "/root/repo/build/tests/sim_tests")
set_tests_properties(sim_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;35;ws_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gen_tests "/root/repo/build/tests/gen_tests")
set_tests_properties(gen_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;38;ws_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(riscv_tests "/root/repo/build/tests/riscv_tests")
set_tests_properties(riscv_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;44;ws_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_tests "/root/repo/build/tests/property_tests")
set_tests_properties(property_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;46;ws_test;/root/repo/tests/CMakeLists.txt;0;")
