file(REMOVE_RECURSE
  "CMakeFiles/riscv_tests.dir/riscv/CpuTest.cpp.o"
  "CMakeFiles/riscv_tests.dir/riscv/CpuTest.cpp.o.d"
  "riscv_tests"
  "riscv_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riscv_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
