# Empty dependencies file for riscv_tests.
# This may be replaced when dependencies are built.
