file(REMOVE_RECURSE
  "CMakeFiles/ir_tests.dir/ir/BuilderTest.cpp.o"
  "CMakeFiles/ir_tests.dir/ir/BuilderTest.cpp.o.d"
  "CMakeFiles/ir_tests.dir/ir/CircuitTest.cpp.o"
  "CMakeFiles/ir_tests.dir/ir/CircuitTest.cpp.o.d"
  "CMakeFiles/ir_tests.dir/ir/ModuleTest.cpp.o"
  "CMakeFiles/ir_tests.dir/ir/ModuleTest.cpp.o.d"
  "ir_tests"
  "ir_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
