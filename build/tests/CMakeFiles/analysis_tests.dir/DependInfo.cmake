
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/AscriptionTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/AscriptionTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/AscriptionTest.cpp.o.d"
  "/root/repo/tests/analysis/BaseJumpTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/BaseJumpTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/BaseJumpTest.cpp.o.d"
  "/root/repo/tests/analysis/DepthTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/DepthTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/DepthTest.cpp.o.d"
  "/root/repo/tests/analysis/IncrementalTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/IncrementalTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/IncrementalTest.cpp.o.d"
  "/root/repo/tests/analysis/MemoryChecksTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/MemoryChecksTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/MemoryChecksTest.cpp.o.d"
  "/root/repo/tests/analysis/SortInferenceTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/SortInferenceTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/SortInferenceTest.cpp.o.d"
  "/root/repo/tests/analysis/SummaryIOTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/SummaryIOTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/SummaryIOTest.cpp.o.d"
  "/root/repo/tests/analysis/SupermoduleTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/SupermoduleTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/SupermoduleTest.cpp.o.d"
  "/root/repo/tests/analysis/WellConnectedTest.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/WellConnectedTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/WellConnectedTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/riscv/CMakeFiles/ws_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/ws_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ws_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/ws_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ws_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ws_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ws_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ws_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
