file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/AscriptionTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/AscriptionTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/BaseJumpTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/BaseJumpTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/DepthTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/DepthTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/IncrementalTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/IncrementalTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/MemoryChecksTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/MemoryChecksTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/SortInferenceTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/SortInferenceTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/SummaryIOTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/SummaryIOTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/SupermoduleTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/SupermoduleTest.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/WellConnectedTest.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/WellConnectedTest.cpp.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
