file(REMOVE_RECURSE
  "CMakeFiles/property_tests.dir/property/SoundnessTest.cpp.o"
  "CMakeFiles/property_tests.dir/property/SoundnessTest.cpp.o.d"
  "property_tests"
  "property_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
