file(REMOVE_RECURSE
  "CMakeFiles/gen_tests.dir/gen/CatalogTest.cpp.o"
  "CMakeFiles/gen_tests.dir/gen/CatalogTest.cpp.o.d"
  "CMakeFiles/gen_tests.dir/gen/FifoTest.cpp.o"
  "CMakeFiles/gen_tests.dir/gen/FifoTest.cpp.o.d"
  "CMakeFiles/gen_tests.dir/gen/NewFamiliesTest.cpp.o"
  "CMakeFiles/gen_tests.dir/gen/NewFamiliesTest.cpp.o.d"
  "CMakeFiles/gen_tests.dir/gen/OpdbTest.cpp.o"
  "CMakeFiles/gen_tests.dir/gen/OpdbTest.cpp.o.d"
  "CMakeFiles/gen_tests.dir/gen/ShiftRegTest.cpp.o"
  "CMakeFiles/gen_tests.dir/gen/ShiftRegTest.cpp.o.d"
  "gen_tests"
  "gen_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
