file(REMOVE_RECURSE
  "CMakeFiles/parse_tests.dir/parse/BlifTest.cpp.o"
  "CMakeFiles/parse_tests.dir/parse/BlifTest.cpp.o.d"
  "CMakeFiles/parse_tests.dir/parse/VerilogReaderTest.cpp.o"
  "CMakeFiles/parse_tests.dir/parse/VerilogReaderTest.cpp.o.d"
  "CMakeFiles/parse_tests.dir/parse/VerilogTest.cpp.o"
  "CMakeFiles/parse_tests.dir/parse/VerilogTest.cpp.o.d"
  "parse_tests"
  "parse_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parse_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
