# Empty compiler generated dependencies file for parse_tests.
# This may be replaced when dependencies are built.
