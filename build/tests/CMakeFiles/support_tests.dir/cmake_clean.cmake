file(REMOVE_RECURSE
  "CMakeFiles/support_tests.dir/support/GraphTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/GraphTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/TableTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/TableTest.cpp.o.d"
  "support_tests"
  "support_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
