file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/SimulatorTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/SimulatorTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/VcdTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/VcdTest.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
