file(REMOVE_RECURSE
  "CMakeFiles/synth_tests.dir/synth/CycleDetectTest.cpp.o"
  "CMakeFiles/synth_tests.dir/synth/CycleDetectTest.cpp.o.d"
  "CMakeFiles/synth_tests.dir/synth/LowerTest.cpp.o"
  "CMakeFiles/synth_tests.dir/synth/LowerTest.cpp.o.d"
  "CMakeFiles/synth_tests.dir/synth/OptimizeTest.cpp.o"
  "CMakeFiles/synth_tests.dir/synth/OptimizeTest.cpp.o.d"
  "synth_tests"
  "synth_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
