//===- tests/ir/CircuitTest.cpp - Circuit construction tests --------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "ir/Circuit.h"

#include "ir/Builder.h"
#include "synth/Flatten.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::ir;

namespace {

/// y = reg(a): the simplest sync module.
ModuleId pipeStage(Design &D, const std::string &Name) {
  Builder B(Name);
  V A = B.input("a", 8);
  B.output("y", B.reg(A, "r"));
  return D.addModule(B.finish());
}

} // namespace

TEST(CircuitTest, ConnectByName) {
  Design D;
  ModuleId Stage = pipeStage(D, "stage");
  Circuit C(D, "pipe2");
  InstId U0 = C.addInstance(Stage, "u0");
  InstId U1 = C.addInstance(Stage, "u1");
  C.connect(U0, "y", U1, "a");
  EXPECT_EQ(C.connections().size(), 1u);
  EXPECT_EQ(C.portLabel(C.connections()[0].From), "u0.y");
  EXPECT_EQ(C.portLabel(C.connections()[0].To), "u1.a");
}

TEST(CircuitTest, CompletenessDetection) {
  Design D;
  ModuleId Stage = pipeStage(D, "stage");
  Circuit C(D, "ring");
  InstId U0 = C.addInstance(Stage, "u0");
  InstId U1 = C.addInstance(Stage, "u1");
  C.connect(U0, "y", U1, "a");
  EXPECT_FALSE(C.isComplete());
  C.connect(U1, "y", U0, "a");
  EXPECT_TRUE(C.isComplete());
}

TEST(CircuitTest, SealPromotesOpenPorts) {
  Design D;
  ModuleId Stage = pipeStage(D, "stage");
  Circuit C(D, "pipe2");
  InstId U0 = C.addInstance(Stage, "u0");
  InstId U1 = C.addInstance(Stage, "u1");
  C.connect(U0, "y", U1, "a");
  ModuleId Top = C.seal();
  ASSERT_FALSE(D.validate().has_value());
  const Module &M = D.module(Top);
  // u0.a promoted to input, u1.y to output.
  EXPECT_EQ(M.Inputs.size(), 1u);
  EXPECT_EQ(M.Outputs.size(), 1u);
  EXPECT_EQ(M.wire(M.Inputs[0]).Name, "u0.a");
  EXPECT_EQ(M.wire(M.Outputs[0]).Name, "u1.y");
}

TEST(CircuitTest, SealedCircuitFlattensAndSimulates) {
  Design D;
  ModuleId Stage = pipeStage(D, "stage");
  Circuit C(D, "pipe3");
  InstId U0 = C.addInstance(Stage, "u0");
  InstId U1 = C.addInstance(Stage, "u1");
  InstId U2 = C.addInstance(Stage, "u2");
  C.connect(U0, "y", U1, "a");
  C.connect(U1, "y", U2, "a");
  ModuleId Top = C.seal();

  Module Flat = synth::inlineInstances(D, Top);
  EXPECT_TRUE(Flat.Instances.empty());
  EXPECT_EQ(Flat.Registers.size(), 3u);
}

TEST(CircuitTest, FanOutSharesOneWire) {
  Design D;
  ModuleId Stage = pipeStage(D, "stage");
  Circuit C(D, "fan");
  InstId U0 = C.addInstance(Stage, "u0");
  InstId U1 = C.addInstance(Stage, "u1");
  InstId U2 = C.addInstance(Stage, "u2");
  C.connect(U0, "y", U1, "a");
  C.connect(U0, "y", U2, "a");
  ModuleId Top = C.seal();
  ASSERT_FALSE(D.validate().has_value());
  // One shared local wire + no promoted wire for u0.y.
  const Module &M = D.module(Top);
  EXPECT_EQ(M.Inputs.size(), 1u);  // u0.a.
  EXPECT_EQ(M.Outputs.size(), 2u); // u1.y, u2.y.
}
