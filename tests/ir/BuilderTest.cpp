//===- tests/ir/BuilderTest.cpp - Builder EDSL tests ----------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::ir;

namespace {

/// Builds a module, simulates it combinationally with the given inputs,
/// and returns the value of output port "y".
uint64_t evalComb(Module M, const std::vector<std::pair<std::string,
                                                        uint64_t>> &Ins) {
  auto S = sim::Simulator::create(M);
  EXPECT_TRUE(S.hasValue()) << S.describe();
  for (const auto &[Name, Value] : Ins)
    S->setInput(Name, Value);
  S->evaluate();
  return S->value("y");
}

} // namespace

TEST(BuilderTest, ArithmeticOps) {
  {
    Builder B("add");
    V A = B.input("a", 8), Bv = B.input("b", 8);
    B.output("y", B.add(A, Bv));
    EXPECT_EQ(evalComb(B.finish(), {{"a", 200}, {"b", 100}}), 44u);
  }
  {
    Builder B("sub");
    V A = B.input("a", 8), Bv = B.input("b", 8);
    B.output("y", B.sub(A, Bv));
    EXPECT_EQ(evalComb(B.finish(), {{"a", 5}, {"b", 7}}), 254u);
  }
}

TEST(BuilderTest, Comparisons) {
  Builder B("cmp");
  V A = B.input("a", 8), Bv = B.input("b", 8);
  B.output("y", B.concat({B.eq(A, Bv), B.lt(A, Bv), B.slt(A, Bv)}));
  Module M = B.finish();
  // a = 200 (-56 signed), b = 100: eq=0, ltu=0, slt=1.
  EXPECT_EQ(evalComb(M, {{"a", 200}, {"b", 100}}), 0b001u);
  // a = b.
  EXPECT_EQ(evalComb(M, {{"a", 7}, {"b", 7}}), 0b100u);
  // a = 3 < b = 100 both ways.
  EXPECT_EQ(evalComb(M, {{"a", 3}, {"b", 100}}), 0b011u);
}

TEST(BuilderTest, ShiftsConstAndBarrel) {
  Builder B("sh");
  V A = B.input("a", 16);
  V Amt = B.input("amt", 4);
  B.output("y", B.concat({B.shlConst(A, 4), B.shl(A, Amt)}));
  Module M = B.finish();
  auto S = sim::Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  S->setInput("a", 0x00FF);
  S->setInput("amt", 8);
  S->evaluate();
  uint64_t Y = S->value("y");
  EXPECT_EQ(Y >> 16, 0x0FF0u);      // shlConst 4.
  EXPECT_EQ(Y & 0xFFFF, 0xFF00u);   // barrel shl 8.
}

TEST(BuilderTest, ArithmeticShiftRight) {
  Builder B("sra");
  V A = B.input("a", 8);
  V Amt = B.input("amt", 3);
  B.output("y", B.shr(A, Amt, /*Arithmetic=*/true));
  Module M = B.finish();
  EXPECT_EQ(evalComb(M, {{"a", 0x80}, {"amt", 3}}), 0xF0u);
  EXPECT_EQ(evalComb(M, {{"a", 0x40}, {"amt", 3}}), 0x08u);
}

TEST(BuilderTest, MuxNClampsToLastCase) {
  Builder B("muxn");
  V Sel = B.input("sel", 2);
  std::vector<V> Cases{B.lit(10, 8), B.lit(20, 8), B.lit(30, 8)};
  B.output("y", B.muxN(Sel, Cases));
  Module M = B.finish();
  EXPECT_EQ(evalComb(M, {{"sel", 0}}), 10u);
  EXPECT_EQ(evalComb(M, {{"sel", 1}}), 20u);
  EXPECT_EQ(evalComb(M, {{"sel", 2}}), 30u);
  EXPECT_EQ(evalComb(M, {{"sel", 3}}), 30u); // Clamped.
}

TEST(BuilderTest, SignZeroExtension) {
  Builder B("ext");
  V A = B.input("a", 4);
  B.output("y", B.concat({B.sext(A, 8), B.zext(A, 8)}));
  Module M = B.finish();
  EXPECT_EQ(evalComb(M, {{"a", 0x9}}), 0xF909u);
  EXPECT_EQ(evalComb(M, {{"a", 0x5}}), 0x0505u);
}

TEST(BuilderTest, Reductions) {
  Builder B("red");
  V A = B.input("a", 4);
  B.output("y", B.concat({B.andr(A), B.orr(A), B.xorr(A)}));
  Module M = B.finish();
  EXPECT_EQ(evalComb(M, {{"a", 0xF}}), 0b110u); // and=1 or=1 xor=0.
  EXPECT_EQ(evalComb(M, {{"a", 0x0}}), 0b000u);
  EXPECT_EQ(evalComb(M, {{"a", 0x7}}), 0b011u);
}

TEST(BuilderTest, RegisterLoopCounter) {
  Builder B("cnt");
  V En = B.input("en", 1);
  V Q = B.regLoop("q", 4, 0);
  B.drive(Q, B.mux(En, B.inc(Q), Q));
  B.output("y", Q);
  Module M = B.finish();

  auto S = sim::Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  S->setInput("en", 1);
  for (int I = 0; I != 5; ++I)
    S->step();
  S->evaluate();
  EXPECT_EQ(S->value("y"), 5u);
  S->setInput("en", 0);
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("y"), 5u);
}

TEST(BuilderTest, RegisterInitValue) {
  Builder B("init");
  V Q = B.regLoop("q", 8, 42);
  B.drive(Q, Q);
  B.output("y", Q);
  Module M = B.finish();
  auto S = sim::Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  S->evaluate();
  EXPECT_EQ(S->value("y"), 42u);
}

TEST(BuilderTest, InstantiateBindsPortsByName) {
  Design D;
  Builder Sub("adder");
  V A = Sub.input("a", 8), Bv = Sub.input("b", 8);
  Sub.output("sum", Sub.add(A, Bv));
  ModuleId SubId = D.addModule(Sub.finish());

  Builder Top("top");
  V X = Top.input("x", 8);
  auto Outs = Top.instantiate(D, SubId, "u0",
                              {{"a", X}, {"b", Top.lit(3, 8)}});
  Top.output("y", Outs.at("sum"));
  D.addModule(Top.finish());
  EXPECT_FALSE(D.validate().has_value());
}
