//===- tests/ir/ModuleTest.cpp - Module/Design invariant tests ------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "ir/Design.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::ir;

namespace {

/// in -> not -> out.
Module inverter() {
  Module M("inv");
  WireId In = M.addInput("a", 1);
  WireId Out = M.addOutput("y", 1);
  M.addNet(Op::Not, {In}, Out);
  return M;
}

} // namespace

TEST(ModuleTest, ValidModulePasses) {
  Module M = inverter();
  EXPECT_FALSE(M.validate().has_value());
}

TEST(ModuleTest, UndrivenOutputCaughtByDesignValidate) {
  Module M("bad");
  M.addInput("a", 1);
  M.addOutput("y", 1);
  Design D;
  D.addModule(std::move(M));
  auto Err = D.validate();
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("no driver"), std::string::npos);
}

TEST(ModuleTest, DoubleDriverRejected) {
  Module M("bad");
  WireId A = M.addInput("a", 1);
  WireId Y = M.addOutput("y", 1);
  M.addNet(Op::Buf, {A}, Y);
  M.addNet(Op::Not, {A}, Y);
  auto Err = M.validate();
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("multiple drivers"), std::string::npos);
}

TEST(ModuleTest, DrivenInputRejected) {
  Module M("bad");
  WireId A = M.addInput("a", 1);
  WireId B = M.addInput("b", 1);
  M.addNet(Op::Buf, {A}, B);
  EXPECT_TRUE(M.validate().has_value());
}

TEST(ModuleTest, WidthMismatchRejected) {
  Module M("bad");
  WireId A = M.addInput("a", 2);
  WireId B = M.addInput("b", 3);
  WireId Y = M.addOutput("y", 3);
  M.addNet(Op::And, {A, B}, Y);
  auto Err = M.validate();
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("ill-typed"), std::string::npos);
}

TEST(ModuleTest, ResultWidthRules) {
  EXPECT_EQ(Module::resultWidth(Op::And, {8, 8}, 0, 8), 8);
  EXPECT_EQ(Module::resultWidth(Op::And, {8, 4}, 0, 8), std::nullopt);
  EXPECT_EQ(Module::resultWidth(Op::Eq, {16, 16}, 0, 1), 1);
  EXPECT_EQ(Module::resultWidth(Op::Concat, {8, 8, 4}, 0, 20), 20);
  EXPECT_EQ(Module::resultWidth(Op::Mux, {1, 8, 8}, 0, 8), 8);
  EXPECT_EQ(Module::resultWidth(Op::Mux, {2, 8, 8}, 0, 8), std::nullopt);
  // Select of bits [5:2] out of 8.
  EXPECT_EQ(Module::resultWidth(Op::Select, {8}, 2, 4), 4);
  EXPECT_EQ(Module::resultWidth(Op::Select, {8}, 6, 4), std::nullopt);
}

TEST(ModuleTest, FindPortResolvesNames) {
  Module M = inverter();
  EXPECT_NE(M.findPort("a"), InvalidId);
  EXPECT_NE(M.findPort("y"), InvalidId);
  EXPECT_EQ(M.findPort("nope"), InvalidId);
  EXPECT_EQ(M.numPorts(), 2u);
}

TEST(DesignTest, InstanceBindingValidation) {
  Design D;
  ModuleId Inv = D.addModule(inverter());

  Module Top("top");
  WireId In = Top.addInput("x", 1);
  WireId Out = Top.addOutput("z", 1);
  SubInstance Inst;
  Inst.Def = Inv;
  Inst.Name = "u0";
  Inst.Bindings.emplace_back(D.module(Inv).findPort("a"), In);
  Inst.Bindings.emplace_back(D.module(Inv).findPort("y"), Out);
  Top.addInstance(std::move(Inst));
  D.addModule(std::move(Top));

  EXPECT_FALSE(D.validate().has_value());
}

TEST(DesignTest, UnboundInstanceInputRejected) {
  Design D;
  ModuleId Inv = D.addModule(inverter());

  Module Top("top");
  WireId Out = Top.addOutput("z", 1);
  SubInstance Inst;
  Inst.Def = Inv;
  Inst.Name = "u0";
  Inst.Bindings.emplace_back(D.module(Inv).findPort("y"), Out);
  Top.addInstance(std::move(Inst));
  D.addModule(std::move(Top));

  auto Err = D.validate();
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("unbound"), std::string::npos);
}

TEST(DesignTest, CyclicInstantiationRejected) {
  Design D;
  // Module 0 instantiates module 1 and vice versa.
  Module A("a");
  Module B("b");
  SubInstance IA;
  IA.Def = 1;
  IA.Name = "ub";
  A.addInstance(std::move(IA));
  SubInstance IB;
  IB.Def = 0;
  IB.Name = "ua";
  B.addInstance(std::move(IB));
  D.addModule(std::move(A));
  D.addModule(std::move(B));
  auto Err = D.validate();
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("cyclic"), std::string::npos);
}

TEST(DesignTest, TopologicalModuleOrderRespectsInstantiation) {
  Design D;
  ModuleId Inv = D.addModule(inverter());
  Module Top("top");
  WireId In = Top.addInput("x", 1);
  WireId Out = Top.addOutput("z", 1);
  SubInstance Inst;
  Inst.Def = Inv;
  Inst.Name = "u0";
  Inst.Bindings.emplace_back(D.module(Inv).findPort("a"), In);
  Inst.Bindings.emplace_back(D.module(Inv).findPort("y"), Out);
  Top.addInstance(std::move(Inst));
  ModuleId TopId = D.addModule(std::move(Top));

  auto Order = D.topologicalModuleOrder();
  ASSERT_TRUE(Order.has_value());
  size_t InvPos = 0, TopPos = 0;
  for (size_t I = 0; I != Order->size(); ++I) {
    if ((*Order)[I] == Inv)
      InvPos = I;
    if ((*Order)[I] == TopId)
      TopPos = I;
  }
  EXPECT_LT(InvPos, TopPos);
}
