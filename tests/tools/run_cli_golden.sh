#!/bin/sh
# Golden-file tests for the wiresort-check CLI contract
# (docs/DIAGNOSTICS.md): with --format json the tool emits
# newline-delimited support::renderJson diagnostics followed by one
# verdict line, byte-for-byte reproducible, and exits 0 (well-connected),
# 1 (error-severity diagnostics) or 2 (usage / I/O / cache trouble).
#
# Usage: run_cli_golden.sh <wiresort-check-binary> <fixture-dir>
#
# Each case runs from the fixture directory (so file names in diags stay
# relative and the goldens stay machine-independent) and diffs stdout
# against <name>.golden.json.
set -u

BIN=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
FIXTURES=$2
cd "$FIXTURES" || exit 2

Failures=0

# run <name> <expected-exit> <arg...>: diff stdout against the golden
# and check the exit code. stderr is ignored (usage text, human diags).
run() {
  Name=$1
  WantExit=$2
  shift 2
  Out=$("$BIN" "$@" 2>/dev/null)
  GotExit=$?
  if [ "$GotExit" -ne "$WantExit" ]; then
    echo "FAIL $Name: exit $GotExit, want $WantExit" >&2
    Failures=$((Failures + 1))
    return
  fi
  if ! printf '%s\n' "$Out" | diff -u "$Name.golden.json" - >&2; then
    echo "FAIL $Name: stdout differs from $Name.golden.json" >&2
    Failures=$((Failures + 1))
    return
  fi
  echo "ok $Name (exit $GotExit)"
}

# Exit 0: a loop-free design ends in the well-connected verdict line.
run loopfree 0 loopfree.blif --format json

# Exit 1: an internal combinational loop, witness rendered as
# instance.port hops; a malformed BLIF with file:line:col provenance;
# an ascription sidecar whose declared sorts disagree with computed.
run loopy 1 loopy.blif --format json
run malformed 1 malformed.blif --format json
run badascribe 1 badascribe.blif --format json --check badascribe.wsort

# Exit 2: I/O failure (WS501), bad command line (WS503), and a --cache
# file that is not a summary sidecar (WS502). No verdict line: the run
# never got far enough to have one.
run missing 2 no_such_file.blif --format json
run badflag 2 loopfree.blif --format json --bogus
run badcache 2 loopfree.blif --format json --cache bogus.wscache

# The machine contract really is machine-readable: every line of every
# golden must parse as standalone JSON (jq is in the base image; skip
# quietly where it is not).
if command -v jq >/dev/null 2>&1; then
  for Golden in *.golden.json; do
    if ! jq -e . "$Golden" >/dev/null 2>&1; then
      echo "FAIL $Golden is not valid NDJSON" >&2
      Failures=$((Failures + 1))
    fi
  done
  echo "ok goldens parse as NDJSON (jq)"
fi

if [ "$Failures" -ne 0 ]; then
  echo "$Failures golden CLI case(s) failed" >&2
  exit 1
fi
echo "all golden CLI cases passed"
