#!/bin/sh
# Golden-file tests for the wiresort-check CLI contract
# (docs/DIAGNOSTICS.md): with --format json the tool emits
# newline-delimited support::renderJson diagnostics followed by one
# verdict line, byte-for-byte reproducible, and exits 0 (well-connected),
# 1 (error-severity diagnostics) or 2 (usage / I/O / cache trouble).
#
# Usage: run_cli_golden.sh <wiresort-check-binary> <fixture-dir>
#
# Each case runs from the fixture directory (so file names in diags stay
# relative and the goldens stay machine-independent) and diffs stdout
# against <name>.golden.json.
set -u

BIN=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
FIXTURES=$2
cd "$FIXTURES" || exit 2

Failures=0

# run <name> <expected-exit> <arg...>: diff stdout against the golden
# and check the exit code. stderr is ignored (usage text, human diags).
run() {
  Name=$1
  WantExit=$2
  shift 2
  Out=$("$BIN" "$@" 2>/dev/null)
  GotExit=$?
  if [ "$GotExit" -ne "$WantExit" ]; then
    echo "FAIL $Name: exit $GotExit, want $WantExit" >&2
    Failures=$((Failures + 1))
    return
  fi
  if ! printf '%s\n' "$Out" | diff -u "$Name.golden.json" - >&2; then
    echo "FAIL $Name: stdout differs from $Name.golden.json" >&2
    Failures=$((Failures + 1))
    return
  fi
  echo "ok $Name (exit $GotExit)"
}

# Exit 0: a loop-free design ends in the well-connected verdict line.
run loopfree 0 loopfree.blif --format json

# Exit 1: an internal combinational loop, witness rendered as
# instance.port hops; a malformed BLIF with file:line:col provenance;
# an ascription sidecar whose declared sorts disagree with computed.
run loopy 1 loopy.blif --format json
run malformed 1 malformed.blif --format json
run badascribe 1 badascribe.blif --format json --check badascribe.wsort

# Exit 2: I/O failure (WS501), bad command line (WS503), and a --cache
# file that is not a summary sidecar (WS502). No verdict line: the run
# never got far enough to have one.
run missing 2 no_such_file.blif --format json
run badflag 2 loopfree.blif --format json --bogus
run badcache 2 loopfree.blif --format json --cache bogus.wscache

# Exit 3: a deadline that fires cancels the run with a WS601
# partial-progress diag and the cancelled verdict (docs/ROBUSTNESS.md).
# Real clocks are not byte-stable, so the engine.cancel failpoint
# simulates the expiry deterministically.
run timeout 3 loopfree.blif --format json --threads 1 --timeout-ms 1 \
    --failpoints engine.cancel=always

# Exit 0 despite damage: a cache record failing its v2 checksum is
# quarantined with a WS603 warning, the module re-infers cold, and the
# verdict is unchanged. The run then rewrites the cache (healing it), so
# the fixture is copied to a scratch name first.
cp corruptcache.wscache corrupt.run.wscache
run corruptcache 0 loopfree.blif --format json --cache corrupt.run.wscache
if cmp -s corruptcache.wscache corrupt.run.wscache; then
  echo "FAIL corruptcache: save did not heal the damaged record" >&2
  Failures=$((Failures + 1))
else
  echo "ok corruptcache healed on save"
fi
rm -f corrupt.run.wscache

# --stats: the NDJSON stats record precedes the verdict line. Counters
# are deterministic at --threads 1; the histogram timing fields are not,
# so jq reduces each histogram to its count before the diff (which is
# why this case needs jq at all).
if command -v jq >/dev/null 2>&1; then
  Out=$("$BIN" loopfree.blif --format json --threads 1 --stats \
        2>/dev/null)
  GotExit=$?
  Norm=$(printf '%s\n' "$Out" | jq -c 'if .type == "stats"
           then .histograms |= with_entries(.value |= {count: .count})
           else . end')
  if [ "$GotExit" -ne 0 ]; then
    echo "FAIL stats: exit $GotExit, want 0" >&2
    Failures=$((Failures + 1))
  elif ! printf '%s\n' "$Norm" | diff -u stats.golden.json - >&2; then
    echo "FAIL stats: stdout differs from stats.golden.json" >&2
    Failures=$((Failures + 1))
  else
    echo "ok stats (exit 0)"
  fi
fi

# --stats, human rendering: byte-stable once the wall-clock tokens
# ("... ms", "sum=..us") are scrubbed.
Out=$("$BIN" loopfree.blif --quiet --threads 1 --stats 2>/dev/null |
      sed -e 's/[0-9][0-9.]* ms/NNN ms/g' -e 's/=[0-9][0-9]*us/=NNNus/g')
if ! printf '%s\n' "$Out" | diff -u statstext.golden.txt - >&2; then
  echo "FAIL statstext: stdout differs from statstext.golden.txt" >&2
  Failures=$((Failures + 1))
else
  echo "ok statstext"
fi

# The machine contract really is machine-readable: every line of every
# golden must parse as standalone JSON (jq is in the base image; skip
# quietly where it is not).
if command -v jq >/dev/null 2>&1; then
  for Golden in *.golden.json; do
    if ! jq -e . "$Golden" >/dev/null 2>&1; then
      echo "FAIL $Golden is not valid NDJSON" >&2
      Failures=$((Failures + 1))
    fi
  done
  echo "ok goldens parse as NDJSON (jq)"
fi

if [ "$Failures" -ne 0 ]; then
  echo "$Failures golden CLI case(s) failed" >&2
  exit 1
fi
echo "all golden CLI cases passed"
