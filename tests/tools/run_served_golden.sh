#!/bin/sh
# Golden session for the resident check service (docs/SERVING.md): start
# wiresort-served on a scratch socket, replay the CLI golden corpus
# through wiresort-client, and byte-compare each response's stdout and
# exit code against a fresh serial `wiresort-check --format json` run on
# the same inputs — the daemon's identity-by-construction claim, checked
# from the outside. Then stats, shutdown, and the no-droppings check:
# the daemon must exit 0 and unlink its socket file.
#
# Usage: run_served_golden.sh <wiresort-served> <wiresort-client> \
#            <wiresort-check> <fixture-dir>
set -u

SERVED=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
CLIENT=$(cd "$(dirname "$2")" && pwd)/$(basename "$2")
CHECK=$(cd "$(dirname "$3")" && pwd)/$(basename "$3")
FIXTURES=$4
cd "$FIXTURES" || exit 2

SCRATCH=$(mktemp -d "${TMPDIR:-/tmp}/served_golden.XXXXXX")
SOCK=$SCRATCH/served.sock
trap 'kill $SERVED_PID 2>/dev/null; rm -rf "$SCRATCH"' EXIT

"$SERVED" --socket "$SOCK" --workers 2 > "$SCRATCH/served.log" 2>&1 &
SERVED_PID=$!

# Wait for the listening line (the daemon prints it once bound).
Tries=0
while ! grep -q "listening on" "$SCRATCH/served.log" 2>/dev/null; do
  Tries=$((Tries + 1))
  if [ "$Tries" -gt 100 ]; then
    echo "FAIL: daemon never started" >&2
    cat "$SCRATCH/served.log" >&2
    exit 1
  fi
  sleep 0.05
done

Failures=0

# run <name> <arg...>: the same request through the daemon and through a
# cold serial CLI process; stdout and exit must match byte for byte.
run() {
  Name=$1
  shift
  "$CLIENT" --socket "$SOCK" "$@" > "$SCRATCH/client.out" 2>/dev/null
  ClientExit=$?
  "$CHECK" "$@" > "$SCRATCH/cli.out" 2>/dev/null
  CliExit=$?
  if [ "$ClientExit" -ne "$CliExit" ]; then
    echo "FAIL $Name: client exit $ClientExit, cli exit $CliExit" >&2
    Failures=$((Failures + 1))
    return
  fi
  if ! diff -u "$SCRATCH/cli.out" "$SCRATCH/client.out" >&2; then
    echo "FAIL $Name: daemon stdout differs from serial CLI" >&2
    Failures=$((Failures + 1))
    return
  fi
  echo "ok $Name (exit $ClientExit, bytes identical)"
}

run loopfree loopfree.blif --format json
run loopy loopy.blif --format json
run malformed malformed.blif --format json
run badascribe badascribe.blif --format json --check badascribe.wsort
# Warm repeat: the resident cache serves every summary; bytes unchanged.
run loopfree_warm loopfree.blif --format json
# Text mode has no timing in diagnostics-only runs, so it goldens too.
run malformed_text malformed.blif

# Daemon counters: one NDJSON record, requests counted.
if "$CLIENT" --socket "$SOCK" --stats | grep -q '"type":"served-stats"'; then
  echo "ok stats"
else
  echo "FAIL stats: no served-stats record" >&2
  Failures=$((Failures + 1))
fi

# Health probe: answered in every state; a serving daemon reports ready.
if "$CLIENT" --socket "$SOCK" --health | grep -q '"state":"ready"'; then
  echo "ok health (ready)"
else
  echo "FAIL health: no ready served-health record" >&2
  Failures=$((Failures + 1))
fi

# Clean shutdown: exit 0, no socket file left behind.
"$CLIENT" --socket "$SOCK" --shutdown > /dev/null
wait $SERVED_PID
ServedExit=$?
SERVED_PID=""
trap 'rm -rf "$SCRATCH"' EXIT
if [ "$ServedExit" -ne 0 ]; then
  echo "FAIL shutdown: daemon exit $ServedExit" >&2
  cat "$SCRATCH/served.log" >&2
  Failures=$((Failures + 1))
elif [ -e "$SOCK" ]; then
  echo "FAIL shutdown: socket file leaked at $SOCK" >&2
  Failures=$((Failures + 1))
else
  echo "ok shutdown (exit 0, socket unlinked)"
fi

# Graceful drain (docs/SERVING.md): a second daemon instance, stopped
# with SIGTERM instead of the protocol shutdown, must drain within its
# deadline, exit 0, and unlink its socket — the systemd-stop path.
DRAINSOCK=$SCRATCH/drain.sock
"$SERVED" --socket "$DRAINSOCK" --workers 2 --drain-ms 2000 \
  > "$SCRATCH/drain.log" 2>&1 &
DRAIN_PID=$!
Tries=0
while ! grep -q "listening on" "$SCRATCH/drain.log" 2>/dev/null; do
  Tries=$((Tries + 1))
  if [ "$Tries" -gt 100 ]; then
    echo "FAIL drain: second daemon never started" >&2
    kill "$DRAIN_PID" 2>/dev/null
    exit 1
  fi
  sleep 0.05
done
"$CLIENT" --socket "$DRAINSOCK" loopfree.blif --format json > /dev/null
kill -TERM "$DRAIN_PID"
wait "$DRAIN_PID"
DrainExit=$?
if [ "$DrainExit" -ne 0 ]; then
  echo "FAIL drain: daemon exit $DrainExit after SIGTERM" >&2
  cat "$SCRATCH/drain.log" >&2
  Failures=$((Failures + 1))
elif [ -e "$DRAINSOCK" ]; then
  echo "FAIL drain: socket file leaked at $DRAINSOCK" >&2
  Failures=$((Failures + 1))
elif ! grep -q "draining on signal" "$SCRATCH/drain.log"; then
  echo "FAIL drain: no draining line in the log" >&2
  cat "$SCRATCH/drain.log" >&2
  Failures=$((Failures + 1))
else
  echo "ok drain (SIGTERM, exit 0, socket unlinked)"
fi

if [ "$Failures" -ne 0 ]; then
  echo "$Failures serving golden case(s) failed" >&2
  exit 1
fi
echo "all serving golden cases passed"
