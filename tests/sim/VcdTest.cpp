//===- tests/sim/VcdTest.cpp - VCD tracing tests --------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "sim/Vcd.h"

#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::sim;

TEST(VcdTest, HeaderDeclaresSignals) {
  Builder B("traceable");
  V A = B.input("a", 1);
  V Wide = B.input("wide", 8);
  B.output("y", B.andv(A, B.orr(Wide)));
  Module M = B.finish();
  auto S = Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();

  VcdTrace Trace(M);
  S->setInput("a", 1);
  S->setInput("wide", 0x0F);
  S->evaluate();
  Trace.sample(*S, 0);
  std::string Vcd = Trace.str();

  EXPECT_NE(Vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(Vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(Vcd.find("$var wire 8"), std::string::npos);
  EXPECT_NE(Vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(Vcd.find("b00001111"), std::string::npos);
}

TEST(VcdTest, OnlyChangesAreEmitted) {
  Builder B("cnt");
  V Q = B.regLoop("q", 4);
  B.drive(Q, B.inc(Q));
  V Stuck = B.output("stuck", B.lit(1, 1));
  (void)Stuck;
  B.output("count", Q);
  Module M = B.finish();
  auto S = Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();

  VcdTrace Trace(M);
  for (uint64_t T = 0; T != 4; ++T) {
    S->evaluate();
    Trace.sample(*S, T);
    S->step();
  }
  std::string Vcd = Trace.str();
  // The counter changes every cycle: four timestamps...
  for (const char *Stamp : {"#0", "#1", "#2", "#3"})
    EXPECT_NE(Vcd.find(Stamp), std::string::npos) << Stamp;
  // ...but the constant output appears exactly once after its first
  // sample (find its id via the header line).
  size_t VarPos = Vcd.find("$var wire 1");
  ASSERT_NE(VarPos, std::string::npos);
  // Count "1<id>" value lines for the stuck signal: id is the token
  // after width in the $var line.
  std::istringstream Header(Vcd.substr(VarPos));
  std::string Dollar, Kind, Width, Id;
  Header >> Dollar >> Kind >> Width >> Id;
  size_t Occurrences = 0;
  std::string Needle = "\n1" + Id + "\n";
  for (size_t Pos = Vcd.find(Needle); Pos != std::string::npos;
       Pos = Vcd.find(Needle, Pos + 1))
    ++Occurrences;
  EXPECT_EQ(Occurrences, 1u);
}

TEST(VcdTest, ManySignalsGetDistinctIds) {
  Builder B("many");
  std::vector<V> Ins;
  for (int I = 0; I != 100; ++I)
    Ins.push_back(B.input("in" + std::to_string(I), 1));
  V Acc = B.lit(0, 1);
  for (const V &In : Ins)
    Acc = B.xorv(Acc, In);
  B.output("y", Acc);
  Module M = B.finish();
  auto S = Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  VcdTrace Trace(M);
  S->evaluate();
  Trace.sample(*S, 0);
  std::string Vcd = Trace.str();
  // 101 signals -> ids spill into two characters; all unique.
  std::set<std::string> Ids;
  std::istringstream Stream(Vcd);
  std::string Line;
  while (std::getline(Stream, Line)) {
    if (Line.rfind("$var", 0) != 0)
      continue;
    std::istringstream LS(Line);
    std::string Dollar, Kind, Width, Id;
    LS >> Dollar >> Kind >> Width >> Id;
    EXPECT_TRUE(Ids.insert(Id).second) << Id;
  }
  EXPECT_EQ(Ids.size(), 101u);
}
