//===- tests/sim/SimulatorTest.cpp - Simulator substrate tests ------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::sim;

TEST(SimulatorTest, RejectsCombinationalLoop) {
  Module M("loopy");
  WireId A = M.addWire("a", WireKind::Basic, 1);
  WireId In = M.addInput("x", 1);
  WireId Out = M.addOutput("y", 1);
  M.addNet(Op::And, {A, In}, A);
  M.addNet(Op::Buf, {A}, Out);
  auto S = Simulator::create(M);
  EXPECT_FALSE(S.hasValue());
  EXPECT_EQ(S.diags().firstError().code(),
            support::DiagCode::WS302_SIM_COMB_LOOP);
  EXPECT_NE(S.describe().find("combinational loop"), std::string::npos);
}

TEST(SimulatorTest, RejectsHierarchy) {
  Module M("withinst");
  SubInstance Inst;
  Inst.Def = 0;
  M.addInstance(std::move(Inst));
  auto S = Simulator::create(M);
  EXPECT_FALSE(S.hasValue());
  EXPECT_EQ(S.diags().firstError().code(),
            support::DiagCode::WS301_SIM_BUILD);
  EXPECT_NE(S.describe().find("flatten"), std::string::npos);
}

TEST(SimulatorTest, MemoryReadBeforeWriteSemantics) {
  Builder B("rmw");
  V Addr = B.input("addr", 2);
  V WData = B.input("wdata", 8);
  V Wen = B.input("wen", 1);
  B.output("y", B.memory("m", /*SyncRead=*/false, Addr, Addr, WData, Wen));
  Module M = B.finish();
  auto S = Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();

  S->setInput("addr", 1);
  S->setInput("wdata", 42);
  S->setInput("wen", 1);
  S->evaluate();
  EXPECT_EQ(S->value("y"), 0u); // Write has not landed yet.
  S->step();
  S->setInput("wen", 0);
  S->evaluate();
  EXPECT_EQ(S->value("y"), 42u); // Next cycle it has.
}

TEST(SimulatorTest, SyncReadLatchesPreWriteContents) {
  Builder B("sync");
  V RAddr = B.input("raddr", 2);
  V WAddr = B.input("waddr", 2);
  V WData = B.input("wdata", 8);
  V Wen = B.input("wen", 1);
  B.output("y",
           B.memory("m", /*SyncRead=*/true, RAddr, WAddr, WData, Wen));
  Module M = B.finish();
  auto S = Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();

  // Write 7 to address 2 while reading address 2: the synchronous read
  // must return the old contents (0) on the next cycle.
  S->setInput("raddr", 2);
  S->setInput("waddr", 2);
  S->setInput("wdata", 7);
  S->setInput("wen", 1);
  S->step();
  S->setInput("wen", 0);
  S->evaluate();
  EXPECT_EQ(S->value("y"), 0u);
  // One more cycle: now the write is visible.
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("y"), 7u);
}

TEST(SimulatorTest, LoadMemoryPreloadsWords) {
  Builder B("rom");
  V Addr = B.input("addr", 3);
  B.output("y", B.memory("m", /*SyncRead=*/false, Addr, B.lit(0, 3),
                         B.lit(0, 16), B.lit(0, 1)));
  Module M = B.finish();
  auto S = Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  S->loadMemory(0, {10, 20, 30});
  for (uint64_t A = 0; A != 3; ++A) {
    S->setInput("addr", A);
    S->evaluate();
    EXPECT_EQ(S->value("y"), (A + 1) * 10);
  }
  EXPECT_EQ(S->memoryWord(0, 1), 20u);
}

TEST(SimulatorTest, WideArithmeticMasks) {
  Builder B("mask");
  V A = B.input("a", 64);
  B.output("y", B.add(A, B.lit(1, 64)));
  Module M = B.finish();
  auto S = Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  S->setInput("a", ~0ull);
  S->evaluate();
  EXPECT_EQ(S->value("y"), 0u);
}

TEST(SimulatorTest, CycleCounterAdvances) {
  Builder B("cnt");
  V Q = B.regLoop("q", 8);
  B.drive(Q, B.inc(Q));
  B.output("y", Q);
  Module M = B.finish();
  auto S = Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  EXPECT_EQ(S->cycles(), 0u);
  for (int I = 0; I != 3; ++I)
    S->step();
  EXPECT_EQ(S->cycles(), 3u);
  S->evaluate();
  EXPECT_EQ(S->value("y"), 3u);
}
