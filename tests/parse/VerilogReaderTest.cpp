//===- tests/parse/VerilogReaderTest.cpp - Verilog import tests -----------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "parse/VerilogReader.h"

#include "analysis/SortInference.h"
#include "gen/Fifo.h"
#include "parse/Verilog.h"
#include "sim/Simulator.h"
#include "synth/Lower.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;
using namespace wiresort::parse;

namespace {

VerilogFile parseOrDie(const std::string &Text) {
  auto File = parseVerilog(Text);
  EXPECT_TRUE(File.hasValue()) << File.describe();
  return File ? std::move(*File) : VerilogFile{};
}

} // namespace

TEST(VerilogReaderTest, AnsiPortsAndAssigns) {
  VerilogFile File = parseOrDie(R"(
// A little ALU slice.
module alu_slice(input wire [7:0] a, input wire [7:0] b,
                 input wire sel, output wire [7:0] y,
                 output wire eq);
  wire [7:0] sum;
  wire [7:0] diff;
  assign sum = a + b;
  assign diff = a - b;
  assign y = sel ? sum : diff;
  assign eq = a == b;
endmodule
)");
  const Module &M = File.Design.module(File.Top);
  EXPECT_EQ(M.Inputs.size(), 3u);
  EXPECT_EQ(M.Outputs.size(), 2u);

  auto S = sim::Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  S->setInput("a", 20);
  S->setInput("b", 22);
  S->setInput("sel", 1);
  S->evaluate();
  EXPECT_EQ(S->value("y"), 42u);
  EXPECT_EQ(S->value("eq"), 0u);
  S->setInput("sel", 0);
  S->evaluate();
  EXPECT_EQ(S->value("y"), 254u); // 20 - 22 mod 256.
}

TEST(VerilogReaderTest, ClassicPortsAndRegs) {
  VerilogFile File = parseOrDie(R"(
module counter(clk, en, count);
  input clk;
  input en;
  output [3:0] count;
  reg [3:0] count_q = 4'd0;
  always @(posedge clk) begin
    count_q <= en ? count_q + 4'd1 : count_q;
  end
  assign count = count_q;
endmodule
)");
  const Module &M = File.Design.module(File.Top);
  EXPECT_EQ(M.Registers.size(), 1u);

  auto S = sim::Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  S->setInput("en", 1);
  S->setInput("clk", 0); // The explicit clk port is ignored by sim.
  for (int I = 0; I != 5; ++I)
    S->step();
  S->evaluate();
  EXPECT_EQ(S->value("count"), 5u);
}

TEST(VerilogReaderTest, OperatorsAndSelects) {
  VerilogFile File = parseOrDie(R"(
module ops(input wire [7:0] a, input wire [7:0] b,
           output wire [7:0] o_logic, output wire o_red,
           output wire [7:0] o_shift, output wire o_rel,
           output wire [7:0] o_cat);
  assign o_logic = (a & b) | (a ^ ~b);
  assign o_red = &a | ^b | !a;
  assign o_shift = (a << 2) | (b >> 3);
  assign o_rel = (a < b) && (a != b) || (a >= b);
  assign o_cat = {a[3:0], b[7:4]};
endmodule
)");
  const Module &M = File.Design.module(File.Top);
  auto S = sim::Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  auto check = [&](uint64_t A, uint64_t B) {
    S->setInput("a", A);
    S->setInput("b", B);
    S->evaluate();
    uint64_t Logic = ((A & B) | (A ^ (~B & 0xFF))) & 0xFF;
    EXPECT_EQ(S->value("o_logic"), Logic);
    uint64_t Red = (A == 0xFF) | (__builtin_popcountll(B) & 1) |
                   (A == 0);
    EXPECT_EQ(S->value("o_red"), Red & 1);
    EXPECT_EQ(S->value("o_shift"), ((A << 2) | (B >> 3)) & 0xFF);
    uint64_t Rel = ((A < B) && (A != B)) || (A >= B);
    EXPECT_EQ(S->value("o_rel"), Rel);
    EXPECT_EQ(S->value("o_cat"), ((A & 0xF) << 4) | ((B >> 4) & 0xF));
  };
  check(0x0F, 0xF0);
  check(0xFF, 0x01);
  check(0x00, 0x00);
  check(0xAA, 0xAA);
}

TEST(VerilogReaderTest, HierarchyWithForwardReference) {
  VerilogFile File = parseOrDie(R"(
module top(input wire [3:0] x, output wire [3:0] y);
  wire [3:0] mid;
  inv u0 (.a(x), .y(mid));
  inv u1 (.a(mid), .y(y));
endmodule

module inv(input wire [3:0] a, output wire [3:0] y);
  assign y = ~a;
endmodule
)");
  EXPECT_EQ(File.Design.numModules(), 2u);
  const Module &Top = File.Design.module(File.Top);
  EXPECT_EQ(Top.Instances.size(), 2u);

  Module Flat = synth::lower(File.Design, File.Top);
  auto S = sim::Simulator::create(Flat);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  for (int Bit = 0; Bit != 4; ++Bit)
    S->setInput("x[" + std::to_string(Bit) + "]", (5 >> Bit) & 1);
  S->evaluate();
  uint64_t Y = 0;
  for (int Bit = 0; Bit != 4; ++Bit)
    Y |= S->value("y[" + std::to_string(Bit) + "]") << Bit;
  EXPECT_EQ(Y, 5u); // Double inversion.
}

TEST(VerilogReaderTest, ForwardingFifoSortsFromVerilogSource) {
  // The paper's Figure 2 module written directly in Verilog: the reader
  // feeds the analysis and the sorts come out right.
  VerilogFile File = parseOrDie(R"(
module fwd_fifo(input wire clk, input wire v_i,
                input wire [7:0] data_i, input wire yumi_i,
                output wire v_o, output wire [7:0] data_o,
                output wire ready_o);
  reg [2:0] count = 3'd0;
  reg [7:0] store = 8'd0;
  wire empty;
  wire enq;
  wire deq;
  assign empty = count == 3'd0;
  assign ready_o = count < 3'd4;
  assign v_o = (count != 3'd0) | (v_i & ready_o);
  assign data_o = (empty & v_i) ? data_i : store;
  assign enq = v_i & ready_o;
  assign deq = yumi_i & (count != 3'd0);
  always @(posedge clk) begin
    count <= count + {2'b00, enq} - {2'b00, deq};
    store <= enq ? data_i : store;
  end
endmodule
)");
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(File.Design, Out).hasError());
  const Module &M = File.Design.module(File.Top);
  const ModuleSummary &S = Out.at(File.Top);
  EXPECT_EQ(S.sortOf(M.findPort("v_i")), Sort::ToPort);
  EXPECT_EQ(S.sortOf(M.findPort("data_i")), Sort::ToPort);
  EXPECT_EQ(S.sortOf(M.findPort("yumi_i")), Sort::ToSync);
  EXPECT_EQ(S.sortOf(M.findPort("v_o")), Sort::FromPort);
  EXPECT_EQ(S.sortOf(M.findPort("data_o")), Sort::FromPort);
  EXPECT_EQ(S.sortOf(M.findPort("ready_o")), Sort::FromSync);
}

TEST(VerilogReaderTest, WriterOutputRoundTrips) {
  // Full circle: generate, lower, write Verilog, reparse, co-simulate.
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo({4, 2, true}));
  Design Flat;
  ModuleId FlatId = Flat.addModule(synth::lower(D, Id));
  std::string Text = writeVerilog(Flat, FlatId);

  VerilogFile File = parseOrDie(Text);
  const Module &Reparsed = File.Design.module(File.Top);
  const Module &Original = Flat.module(FlatId);
  EXPECT_EQ(Reparsed.Registers.size(), Original.Registers.size());

  auto S1 = sim::Simulator::create(Original);
  ASSERT_TRUE(S1.hasValue()) << S1.describe();
  auto S2 = sim::Simulator::create(Reparsed);
  ASSERT_TRUE(S2.hasValue()) << S2.describe();
  for (int Cycle = 0; Cycle != 60; ++Cycle) {
    uint64_t Push = (Cycle % 3) != 0;
    uint64_t Pop = (Cycle % 2) != 0;
    for (auto *S : {&*S1, &*S2}) {
      S->setInput("v_i[0]", Push);
      S->setInput("yumi_i[0]", Pop);
      for (int Bit = 0; Bit != 4; ++Bit)
        S->setInput("data_i[" + std::to_string(Bit) + "]",
                    (Cycle >> Bit) & 1);
    }
    // The reparsed module gained an explicit clk input.
    S2->setInput("clk", 0);
    S1->step();
    S2->step();
    for (WireId Out : Original.Outputs)
      EXPECT_EQ(S1->value(Original.wire(Out).Name),
                S2->value(Original.wire(Out).Name))
          << Original.wire(Out).Name << " cycle " << Cycle;
  }
}

TEST(VerilogReaderTest, ErrorsAreSpecific) {
  auto expectError = [](const std::string &Text, const char *Needle) {
    auto File = parseVerilog(Text);
    ASSERT_FALSE(File.hasValue()) << Text;
    EXPECT_NE(File.describe().find(Needle), std::string::npos)
        << File.describe();
  };
  expectError("", "no modules");
  expectError("module m(input wire a); assign b = a; endmodule",
              "undeclared");
  expectError("module m(input wire a, output wire y);\n"
              "  assign y = a + 2'b11;\nendmodule",
              "width mismatch");
  expectError("module m(input wire a, output wire y);\n"
              "  initial y = 0;\nendmodule",
              "initial");
  expectError("module m(input wire a, output wire y);\n"
              "  assign y = q;\nendmodule",
              "undeclared");
}

TEST(VerilogReaderTest, CombinationalLoopInSourceIsCaught) {
  VerilogFile File = parseOrDie(R"(
module loopy(input wire a, output wire y);
  wire p;
  wire q;
  assign p = q & a;
  assign q = p;
  assign y = p;
endmodule
)");
  std::map<ModuleId, ModuleSummary> Out;
  wiresort::support::Status Loop = analyzeDesign(File.Design, Out);
  ASSERT_TRUE(Loop.hasError());
  EXPECT_NE(Loop.describe().find("loopy"), std::string::npos);
}

TEST(VerilogReaderTest, UnsizedLiteralsAdaptToContext) {
  VerilogFile File = parseOrDie(R"(
module lits(input wire [15:0] a, output wire [15:0] y,
            output wire z);
  assign y = a + 1;
  assign z = a == 1234;
endmodule
)");
  const Module &M = File.Design.module(File.Top);
  auto S = sim::Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  S->setInput("a", 1234);
  S->evaluate();
  EXPECT_EQ(S->value("y"), 1235u);
  EXPECT_EQ(S->value("z"), 1u);
}
