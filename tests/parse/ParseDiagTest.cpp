//===- tests/parse/ParseDiagTest.cpp - Parser diagnostic coverage ---------===//
//
// Part of the wiresort project. Every parser rejection must carry a
// structured diag with the right WSxxx code and a 1-based line:col into
// the named file — that is the promise docs/DIAGNOSTICS.md makes for
// the parse layer. One test per syntax-error class, for BLIF and for
// the Verilog subset.
//
//===----------------------------------------------------------------------===//

#include "parse/Blif.h"
#include "parse/VerilogReader.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::parse;
using namespace wiresort::support;

namespace {

/// Parses \p Text expecting rejection; returns the first error diag
/// after asserting it carries \p Code, mentions \p Needle, and points at
/// \p Line (in file "t.blif" / "t.v").
template <typename ParseFn>
Diag expectDiag(ParseFn Parse, const std::string &Text,
                const std::string &File, DiagCode Code,
                const std::string &Needle, size_t Line) {
  auto Result = Parse(Text, File);
  EXPECT_FALSE(Result.hasValue()) << "accepted:\n" << Text;
  if (Result.hasValue())
    return Diag(DiagCode::WS501_IO_ERROR, "accepted");
  const Diag &D = Result.diags().firstError();
  EXPECT_EQ(D.code(), Code) << D.describe();
  EXPECT_NE(D.message().find(Needle), std::string::npos) << D.describe();
  EXPECT_TRUE(D.loc().has_value()) << D.describe();
  if (D.loc()) {
    EXPECT_EQ(D.loc()->File, File);
    EXPECT_EQ(D.loc()->Line, Line) << D.describe();
  }
  return D;
}

Diag expectBlifDiag(const std::string &Text, DiagCode Code,
                    const std::string &Needle, size_t Line) {
  return expectDiag(
      [](const std::string &T, const std::string &F) {
        return parseBlif(T, F);
      },
      Text, "t.blif", Code, Needle, Line);
}

Diag expectVerilogDiag(const std::string &Text, DiagCode Code,
                       const std::string &Needle, size_t Line) {
  return expectDiag(
      [](const std::string &T, const std::string &F) {
        return parseVerilog(T, F);
      },
      Text, "t.v", Code, Needle, Line);
}

} // namespace

// --- BLIF -------------------------------------------------------------------

TEST(ParseDiagTest, BlifModelWithoutName) {
  Diag D = expectBlifDiag(".model\n", DiagCode::WS201_BLIF_SYNTAX,
                          ".model expects a name", 1);
  EXPECT_EQ(D.loc()->Col, 1u);
}

TEST(ParseDiagTest, BlifDirectiveBeforeModel) {
  expectBlifDiag(".inputs a b\n", DiagCode::WS201_BLIF_SYNTAX,
                 "directive before .model", 1);
}

TEST(ParseDiagTest, BlifDuplicateSignalPointsAtTheSecondToken) {
  Diag D = expectBlifDiag(".model m\n.inputs a a\n.end\n",
                          DiagCode::WS201_BLIF_SYNTAX,
                          "duplicate signal 'a'", 2);
  // Column of the *second* `a`, not of the directive.
  EXPECT_EQ(D.loc()->Col, 11u);
}

TEST(ParseDiagTest, BlifNamesWithoutOutput) {
  expectBlifDiag(".model m\n.names\n.end\n", DiagCode::WS201_BLIF_SYNTAX,
                 ".names expects at least an output", 2);
}

TEST(ParseDiagTest, BlifLatchMissingOperands) {
  expectBlifDiag(".model m\n.latch x\n.end\n",
                 DiagCode::WS201_BLIF_SYNTAX,
                 ".latch expects input and output", 2);
}

TEST(ParseDiagTest, BlifCoverRowOutsideNames) {
  expectBlifDiag(".model m\n1 1\n.end\n", DiagCode::WS201_BLIF_SYNTAX,
                 "cover row outside .names", 2);
}

TEST(ParseDiagTest, BlifUnsupportedDirective) {
  Diag D = expectBlifDiag(".model m\n  .exdc\n.end\n",
                          DiagCode::WS201_BLIF_SYNTAX,
                          "unsupported directive '.exdc'", 2);
  EXPECT_EQ(D.loc()->Col, 3u); // Past the indentation.
}

TEST(ParseDiagTest, BlifEmptyInputIsAStructureError) {
  auto Result = parseBlif("# only a comment\n", "t.blif");
  ASSERT_FALSE(Result.hasValue());
  const Diag &D = Result.diags().firstError();
  EXPECT_EQ(D.code(), DiagCode::WS202_BLIF_STRUCTURE);
  EXPECT_NE(D.message().find("no .model found"), std::string::npos);
}

// --- Verilog ----------------------------------------------------------------

TEST(ParseDiagTest, VerilogEmptyInput) {
  auto Result = parseVerilog("", "t.v");
  ASSERT_FALSE(Result.hasValue());
  const Diag &D = Result.diags().firstError();
  EXPECT_EQ(D.code(), DiagCode::WS212_VERILOG_SYNTAX);
  EXPECT_NE(D.message().find("no modules"), std::string::npos);
  ASSERT_TRUE(D.loc().has_value());
  EXPECT_EQ(D.loc()->File, "t.v");
}

TEST(ParseDiagTest, VerilogGarbageInsteadOfModule) {
  Diag D = expectVerilogDiag("garbage\n", DiagCode::WS212_VERILOG_SYNTAX,
                             "expected 'module'", 1);
  EXPECT_EQ(D.loc()->Col, 1u);
}

TEST(ParseDiagTest, VerilogDuplicateDeclaration) {
  expectVerilogDiag("module m(input wire a, output wire y);\n"
                    "  wire a;\n"
                    "  assign y = a;\n"
                    "endmodule\n",
                    DiagCode::WS212_VERILOG_SYNTAX,
                    "duplicate declaration of 'a'", 2);
}

TEST(ParseDiagTest, VerilogUndeclaredNet) {
  Diag D = expectVerilogDiag("module m(output wire y);\n"
                             "  assign y = ghost;\n"
                             "endmodule\n",
                             DiagCode::WS212_VERILOG_SYNTAX,
                             "undeclared net 'ghost'", 2);
  EXPECT_EQ(D.loc()->Col, 14u);
}

TEST(ParseDiagTest, VerilogWidthMismatch) {
  expectVerilogDiag("module m(input wire [7:0] a, input wire [3:0] b,\n"
                    "         output wire [7:0] y);\n"
                    "  assign y = a + b;\n"
                    "endmodule\n",
                    DiagCode::WS212_VERILOG_SYNTAX, "width mismatch", 3);
}

TEST(ParseDiagTest, VerilogNonZeroBasedRangeIsUnsupported) {
  expectVerilogDiag("module m(input wire [4:1] a, output wire y);\n"
                    "  assign y = a[1];\n"
                    "endmodule\n",
                    DiagCode::WS213_VERILOG_UNSUPPORTED,
                    "only [N:0] ranges", 1);
}

TEST(ParseDiagTest, VerilogUnknownModuleInstantiation) {
  expectVerilogDiag("module m(input wire a, output wire y);\n"
                    "  mystery u0(.x(a), .y(y));\n"
                    "endmodule\n",
                    DiagCode::WS212_VERILOG_SYNTAX,
                    "unknown module 'mystery'", 2);
}

TEST(ParseDiagTest, VerilogOnlyTheRootCauseIsReported) {
  // Rejections after the first are fallout; the parser records exactly
  // one diagnostic so tools never drown the user in cascades.
  auto Result = parseVerilog("module m(output wire y);\n"
                             "  assign y = ghost1;\n"
                             "  assign z = ghost2;\n"
                             "endmodule\n",
                             "t.v");
  ASSERT_FALSE(Result.hasValue());
  EXPECT_EQ(Result.diags().size(), 1u);
  EXPECT_NE(Result.diags()[0].message().find("ghost1"),
            std::string::npos);
}
