//===- tests/parse/BlifTest.cpp - BLIF reader/writer tests ----------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "parse/Blif.h"

#include "analysis/SortInference.h"
#include "gen/Fifo.h"
#include "sim/Simulator.h"
#include "synth/CycleDetect.h"
#include "synth/Lower.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;
using namespace wiresort::parse;

TEST(BlifTest, ParsesSimpleCombinationalModel) {
  const char *Text = R"(
# A half adder.
.model half_adder
.inputs a b
.outputs sum carry
.names a b sum
10 1
01 1
.names a b carry
11 1
.end
)";
  auto File = parseBlif(Text);
  ASSERT_TRUE(File.hasValue()) << File.describe();
  const Module &M = File->Design.module(File->Top);
  EXPECT_EQ(M.Name, "half_adder");
  EXPECT_EQ(M.Inputs.size(), 2u);
  EXPECT_EQ(M.Outputs.size(), 2u);
  EXPECT_EQ(M.Nets.size(), 2u);

  auto S = sim::Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  for (unsigned A = 0; A != 2; ++A)
    for (unsigned B = 0; B != 2; ++B) {
      S->setInput("a", A);
      S->setInput("b", B);
      S->evaluate();
      EXPECT_EQ(S->value("sum"), static_cast<uint64_t>(A ^ B));
      EXPECT_EQ(S->value("carry"), static_cast<uint64_t>(A & B));
    }
}

TEST(BlifTest, ParsesLatchesAndConstants) {
  const char *Text = R"(
.model toggler
.inputs en
.outputs q
.names one
1
.names en q nq
10 1
01 1
.latch nq q re clk 0
.end
)";
  auto File = parseBlif(Text);
  ASSERT_TRUE(File.hasValue()) << File.describe();
  const Module &M = File->Design.module(File->Top);
  EXPECT_EQ(M.Registers.size(), 1u);

  auto S = sim::Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  S->setInput("en", 1);
  S->evaluate();
  EXPECT_EQ(S->value("q"), 0u);
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("q"), 1u);
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("q"), 0u);
}

TEST(BlifTest, ParsesHierarchySubckt) {
  const char *Text = R"(
.model top
.inputs x
.outputs y
.subckt inv a=x y=mid
.subckt inv a=mid y=y
.end
.model inv
.inputs a
.outputs y
.names a y
0 1
.end
)";
  auto File = parseBlif(Text);
  ASSERT_TRUE(File.hasValue()) << File.describe();
  EXPECT_EQ(File->Design.numModules(), 2u);
  const Module &Top = File->Design.module(File->Top);
  EXPECT_EQ(Top.Instances.size(), 2u);

  // Double inversion: y == x after flattening.
  Module Gates = synth::lower(File->Design, File->Top);
  auto S = sim::Simulator::create(Gates);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  S->setInput("x[0]", 1);
  S->evaluate();
  EXPECT_EQ(S->value("y[0]"), 1u);
}

TEST(BlifTest, LineContinuationsAndComments) {
  const char *Text =
      ".model wide # trailing comment\n"
      ".inputs a \\\nb\n"
      ".outputs y\n"
      ".names a b y\n11 1\n.end\n";
  auto File = parseBlif(Text);
  ASSERT_TRUE(File.hasValue()) << File.describe();
  EXPECT_EQ(File->Design.module(File->Top).Inputs.size(), 2u);
}

TEST(BlifTest, ErrorsCarryLineNumbers) {
  {
    auto File = parseBlif(".model m\n.bogus\n.end\n", "d.blif");
    ASSERT_FALSE(File.hasValue());
    const support::Diag &Diag = File.diags().firstError();
    ASSERT_TRUE(Diag.loc().has_value());
    EXPECT_EQ(Diag.loc()->File, "d.blif");
    EXPECT_EQ(Diag.loc()->Line, 2u);
  }
  {
    auto File = parseBlif(".inputs a\n");
    ASSERT_FALSE(File.hasValue());
    EXPECT_NE(File.describe().find("before .model"), std::string::npos);
  }
  {
    auto File =
        parseBlif(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n"
                  ".names a y\n0 1\n.end\n");
    ASSERT_FALSE(File.hasValue());
    EXPECT_NE(File.describe().find("driven twice"), std::string::npos);
  }
}

TEST(BlifTest, CoverRowArityChecked) {
  auto File = parseBlif(".model m\n.inputs a b\n.outputs y\n"
                        ".names a b y\n1 1\n.end\n");
  ASSERT_FALSE(File.hasValue());
  EXPECT_NE(File.describe().find("arity"), std::string::npos);
}

TEST(BlifTest, RoundTripPreservesBehaviorAndLoops) {
  // Lower a forwarding FIFO, export, reimport, and compare both the
  // simulated behavior and the cycle-detection verdict.
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo({4, 2, true}));
  Module Gates = synth::lower(D, Id);
  std::string Text = [&] {
    Design Flat;
    ModuleId FlatId = Flat.addModule(Gates);
    return writeBlif(Flat, FlatId);
  }();

  auto File = parseBlif(Text);
  ASSERT_TRUE(File.hasValue()) << File.describe();
  const Module &Reimported = File->Design.module(File->Top);
  EXPECT_EQ(Reimported.Registers.size(), Gates.Registers.size());

  auto S1 = sim::Simulator::create(Gates);
  ASSERT_TRUE(S1.hasValue()) << S1.describe();
  auto S2 = sim::Simulator::create(Reimported);
  ASSERT_TRUE(S2.hasValue()) << S2.describe();
  // Drive a push/pop sequence and compare outputs cycle by cycle.
  for (int Cycle = 0; Cycle != 40; ++Cycle) {
    uint64_t Push = (Cycle % 3) == 0;
    uint64_t Pop = (Cycle % 2) == 0;
    for (auto *S : {&*S1, &*S2}) {
      S->setInput("v_i[0]", Push);
      S->setInput("yumi_i[0]", Pop);
      for (int Bit = 0; Bit != 4; ++Bit)
        S->setInput("data_i[" + std::to_string(Bit) + "]",
                    (Cycle >> Bit) & 1);
    }
    S1->step();
    S2->step();
    for (WireId Out : Gates.Outputs)
      EXPECT_EQ(S1->value(Gates.wire(Out).Name),
                S2->value(Gates.wire(Out).Name))
          << Gates.wire(Out).Name;
  }

  EXPECT_FALSE(synth::detectCycles(Reimported).HasLoop);
}

TEST(BlifTest, ImportedDesignIsAnalyzable) {
  // The paper's pipeline: BLIF in, sorts out.
  const char *Text = R"(
.model fwdish
.inputs v_i
.outputs v_o
.names count_q v_i v_o
1- 1
-1 1
.latch v_i count_q re clk 0
.end
)";
  auto File = parseBlif(Text);
  ASSERT_TRUE(File.hasValue()) << File.describe();
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(File->Design, Out).hasError());
  const Module &M = File->Design.module(File->Top);
  EXPECT_EQ(Out.at(File->Top).sortOf(M.findPort("v_i")), Sort::ToPort);
  EXPECT_EQ(Out.at(File->Top).sortOf(M.findPort("v_o")), Sort::FromPort);
}

TEST(BlifTest, ParseCacheReplaysByteIdentically) {
  const char *Text = ".model top\n"
                     ".inputs x\n.outputs y\n"
                     ".subckt inv a=x y=mid\n"
                     ".subckt inv a=mid y=y\n"
                     ".end\n"
                     ".model inv\n"
                     ".inputs a\n.outputs y\n"
                     ".names a y\n0 1\n.end\n";
  BlifParseCache Cache;
  auto First = parseBlif(Text, "c.blif", nullptr, &Cache);
  ASSERT_TRUE(First.hasValue()) << First.describe();
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), 2u); // top chunk + inv chunk
  EXPECT_EQ(Cache.size(), 2u);

  auto Second = parseBlif(Text, "c.blif", nullptr, &Cache);
  ASSERT_TRUE(Second.hasValue()) << Second.describe();
  EXPECT_EQ(Cache.hits(), 2u);
  EXPECT_EQ(Cache.misses(), 2u);

  // The replayed design is the parsed design, byte for byte.
  EXPECT_EQ(writeBlif(First->Design, First->Top),
            writeBlif(Second->Design, Second->Top));
  // And identical to a cache-free parse.
  auto Plain = parseBlif(Text, "c.blif");
  ASSERT_TRUE(Plain.hasValue());
  EXPECT_EQ(writeBlif(Plain->Design, Plain->Top),
            writeBlif(Second->Design, Second->Top));
}

TEST(BlifTest, ParseCacheReparsesOnlyEditedChunk) {
  auto design = [](const char *LeafBody) {
    return std::string(".model top\n.inputs x\n.outputs y\n"
                       ".subckt leaf a=x y=y\n.end\n"
                       ".model leaf\n.inputs a\n.outputs y\n") +
           LeafBody + ".end\n";
  };
  BlifParseCache Cache;
  std::string V1 = design(".names a y\n1 1\n");
  ASSERT_TRUE(parseBlif(V1, "e.blif", nullptr, &Cache).hasValue());
  ASSERT_EQ(Cache.misses(), 2u);

  // Edit the leaf body: top replays, only the leaf chunk re-parses.
  std::string V2 = design(".names a y\n0 1\n");
  auto File = parseBlif(V2, "e.blif", nullptr, &Cache);
  ASSERT_TRUE(File.hasValue()) << File.describe();
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 3u);
  auto Plain = parseBlif(V2, "e.blif");
  ASSERT_TRUE(Plain.hasValue());
  EXPECT_EQ(writeBlif(Plain->Design, Plain->Top),
            writeBlif(File->Design, File->Top));
}

TEST(BlifTest, ParseCacheRebasesDiagnosticLines) {
  // A cached chunk replayed at a different file position must report
  // resolution diagnostics at its *new* lines — byte-identical to an
  // uncached parse of the shifted file.
  const char *Body = ".model top\n.inputs x\n.outputs y\n"
                     ".subckt nosuch a=x y=y\n.end\n";
  BlifParseCache Cache;
  auto First = parseBlif(Body, "r.blif", nullptr, &Cache);
  ASSERT_FALSE(First.hasValue());
  ASSERT_TRUE(First.diags().firstError().loc().has_value());
  EXPECT_EQ(First.diags().firstError().loc()->Line, 4u);

  // Two comment lines above shift the (unchanged, cache-hot) chunk.
  std::string Shifted = std::string("# pad\n# pad\n") + Body;
  auto Second = parseBlif(Shifted, "r.blif", nullptr, &Cache);
  ASSERT_FALSE(Second.hasValue());
  EXPECT_GE(Cache.hits(), 1u);
  ASSERT_TRUE(Second.diags().firstError().loc().has_value());
  EXPECT_EQ(Second.diags().firstError().loc()->Line, 6u);
  auto Plain = parseBlif(Shifted, "r.blif");
  EXPECT_EQ(Plain.describe(), Second.describe());
}

TEST(BlifTest, ParseCacheHonorsContinuationAcrossModelBoundary) {
  // A backslash continuation immediately before a `.model` line glues
  // the two physical lines into one logical line, so it is NOT a chunk
  // boundary; cached and plain parses must agree exactly. (Here the
  // glued line drags `.model m2` into a .names token list, which the
  // parser accepts as wire names — one model either way.)
  const char *Text = ".model m1\n"
                     ".inputs a b\n.outputs y\n"
                     ".names a b y \\\n"
                     ".model m2\n"
                     "11-- 1\n"
                     ".end\n";
  auto Plain = parseBlif(Text, "g.blif");
  BlifParseCache Cache;
  auto Cached = parseBlif(Text, "g.blif", nullptr, &Cache);
  auto Replayed = parseBlif(Text, "g.blif", nullptr, &Cache);
  ASSERT_EQ(Plain.hasValue(), Cached.hasValue());
  ASSERT_EQ(Plain.hasValue(), Replayed.hasValue());
  if (Plain.hasValue()) {
    EXPECT_EQ(Plain->Design.numModules(), 1u);
    EXPECT_EQ(writeBlif(Plain->Design, Plain->Top),
              writeBlif(Replayed->Design, Replayed->Top));
  } else {
    EXPECT_EQ(Plain.describe(), Cached.describe());
    EXPECT_EQ(Plain.describe(), Replayed.describe());
  }
}

TEST(BlifTest, ParseCacheEvictsLeastRecentlyUsedNotWholesale) {
  // Overflow evicts the coldest chunk only; the warm working set
  // survives (the daemon-residency point of the LRU — a wholesale
  // flush would cold-parse everything after one overflow).
  BlifParseCache Cache(/*MaxEntries=*/2);
  const char *A = ".model a\n.inputs i\n.outputs o\n.names i o\n1 1\n.end\n";
  const char *B = ".model b\n.inputs i\n.outputs o\n.names i o\n0 1\n.end\n";
  const char *C = ".model c\n.inputs i\n.outputs o\n.names i o\n- 1\n.end\n";
  ASSERT_TRUE(parseBlif(A, "a.blif", nullptr, &Cache).hasValue());
  ASSERT_TRUE(parseBlif(B, "b.blif", nullptr, &Cache).hasValue());
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.misses(), 2u);

  // Touch A so B becomes the least recently used...
  ASSERT_TRUE(parseBlif(A, "a.blif", nullptr, &Cache).hasValue());
  EXPECT_EQ(Cache.hits(), 1u);
  // ...then overflow with C: exactly one chunk (B) is evicted.
  ASSERT_TRUE(parseBlif(C, "c.blif", nullptr, &Cache).hasValue());
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.misses(), 3u);

  // A stayed warm across the overflow; B re-parses cold; both correct.
  auto AgainA = parseBlif(A, "a.blif", nullptr, &Cache);
  ASSERT_TRUE(AgainA.hasValue()) << AgainA.describe();
  EXPECT_EQ(Cache.hits(), 2u);
  EXPECT_EQ(AgainA->Design.module(AgainA->Top).Name, "a");
  auto AgainB = parseBlif(B, "b.blif", nullptr, &Cache);
  ASSERT_TRUE(AgainB.hasValue()) << AgainB.describe();
  EXPECT_EQ(Cache.misses(), 4u);
  EXPECT_EQ(AgainB->Design.module(AgainB->Top).Name, "b");
  EXPECT_EQ(Cache.size(), 2u);
}
