//===- tests/parse/VerilogTest.cpp - Verilog export tests -----------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "parse/Verilog.h"

#include "gen/Fifo.h"
#include "ir/Builder.h"
#include "synth/Lower.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::parse;

namespace {

/// Counts occurrences of \p Needle in \p Haystack.
size_t countOf(const std::string &Haystack, const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

} // namespace

TEST(VerilogTest, EmitsCombinationalAssigns) {
  Builder B("gates");
  V A = B.input("a", 1);
  V Bv = B.input("b", 1);
  B.output("y_and", B.andv(A, Bv));
  B.output("y_not", B.notv(A));
  B.output("y_mux", B.mux(A, Bv, B.lit(0, 1)));
  Design D;
  ModuleId Id = D.addModule(B.finish());
  Design Flat;
  ModuleId FlatId = Flat.addModule(synth::lower(D, Id));
  std::string V = writeVerilog(Flat, FlatId);

  EXPECT_NE(V.find("module"), std::string::npos);
  EXPECT_NE(V.find("endmodule"), std::string::npos);
  EXPECT_NE(V.find("input wire clk"), std::string::npos);
  EXPECT_GT(countOf(V, "assign"), 3u);
  EXPECT_NE(V.find("? "), std::string::npos); // The mux.
  // Escaped identifiers for bracketed bit names.
  EXPECT_NE(V.find("\\a[0] "), std::string::npos);
}

TEST(VerilogTest, EmitsRegistersWithInitials) {
  Builder B("seq");
  V A = B.input("a", 1);
  V Q = B.regLoop("q", 1, 1); // Init 1.
  B.drive(Q, B.xorv(Q, A));
  B.output("y", Q);
  Design D;
  ModuleId Id = D.addModule(B.finish());
  Design Flat;
  ModuleId FlatId = Flat.addModule(synth::lower(D, Id));
  std::string V = writeVerilog(Flat, FlatId);

  EXPECT_NE(V.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(V.find("<= "), std::string::npos);
  EXPECT_NE(V.find("= 1'b1;"), std::string::npos); // The init.
}

TEST(VerilogTest, HierarchicalExportInstantiates) {
  Design D;
  Builder Leaf("leafv");
  {
    V A = Leaf.input("a", 2);
    Leaf.output("y", Leaf.notv(A));
  }
  ModuleId LeafId = D.addModule(Leaf.finish());
  Builder Top("topv");
  {
    V X = Top.input("x", 2);
    auto O1 = Top.instantiate(D, LeafId, "u0", {{"a", X}});
    auto O2 = Top.instantiate(D, LeafId, "u1", {{"a", O1.at("y")}});
    Top.output("y", O2.at("y"));
  }
  ModuleId TopId = D.addModule(Top.finish());

  synth::HierLowered Hier = synth::lowerHierarchical(D, TopId);
  std::string V = writeVerilog(Hier.Design, Hier.Top);
  EXPECT_EQ(countOf(V, "module "), 2u); // Two definitions, shared leaf.
  EXPECT_EQ(countOf(V, "endmodule"), 2u);
  EXPECT_EQ(countOf(V, ".clk(clk)"), 2u); // Two instantiations.
}

TEST(VerilogTest, FifoExportsCompletely) {
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo({8, 2, true}));
  Design Flat;
  ModuleId FlatId = Flat.addModule(synth::lower(D, Id));
  std::string V = writeVerilog(Flat, FlatId);
  const Module &M = Flat.module(FlatId);
  // Every port appears in the header.
  for (WireId In : M.Inputs)
    EXPECT_NE(V.find(M.wire(In).Name), std::string::npos)
        << M.wire(In).Name;
  // One assign per net plus one per constant wire.
  size_t Consts = 0;
  for (const Wire &W : M.Wires)
    Consts += W.Kind == WireKind::Const;
  EXPECT_EQ(countOf(V, "assign"), M.Nets.size() + Consts);
  // One nonblocking assignment per register.
  EXPECT_EQ(countOf(V, "<= "), M.Registers.size());
}

TEST(VerilogTest, LutCoversBecomeSumOfProducts) {
  Module M("lutty");
  WireId A = M.addInput("a", 1);
  WireId B = M.addInput("b", 1);
  WireId Y = M.addOutput("y", 1);
  M.addNet(Op::Lut, {A, B}, Y, 0, {"101", "011"}); // a~b | ~ab.
  Design D;
  ModuleId Id = D.addModule(std::move(M));
  std::string V = writeVerilog(D, Id);
  EXPECT_NE(V.find("(a & ~b) | (~a & b)"), std::string::npos) << V;
}
