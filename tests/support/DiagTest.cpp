//===- tests/support/DiagTest.cpp - Structured diagnostics tests ----------===//
//
// Part of the wiresort project. The Diag/DiagList/Expected result model
// every layer reports through, and the two renderers the CLI contract is
// golden-tested against. The JSON expectations here are byte-exact on
// purpose: renderJson feeds `wiresort-check --format json`, whose output
// is a machine contract (docs/DIAGNOSTICS.md).
//
//===----------------------------------------------------------------------===//

#include "support/Diag.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::support;

TEST(DiagTest, FluentConstructionPopulatesEveryField) {
  Diag D = Diag(DiagCode::WS101_COMB_LOOP, "combinational loop")
               .withLoc(SrcLoc{"ring.v", 3, 7})
               .withHop("fifo1", "v_i")
               .withHop("fwd", "v_o")
               .withNote("module", "ring");
  EXPECT_EQ(D.code(), DiagCode::WS101_COMB_LOOP);
  EXPECT_EQ(D.severity(), Severity::Error);
  EXPECT_EQ(D.message(), "combinational loop");
  ASSERT_TRUE(D.loc().has_value());
  EXPECT_EQ(D.loc()->File, "ring.v");
  EXPECT_EQ(D.loc()->Line, 3u);
  EXPECT_EQ(D.loc()->Col, 7u);
  ASSERT_EQ(D.witness().size(), 2u);
  EXPECT_EQ(D.witness()[0].label(), "fifo1.v_i");
  EXPECT_EQ(D.note("module"), "ring");
  EXPECT_EQ(D.note("absent"), "");
  EXPECT_EQ(D.witnessLabels(),
            (std::vector<std::string>{"fifo1.v_i", "fwd.v_o"}));
}

TEST(DiagTest, DescribeClosesTheWitnessCycle) {
  Diag D(DiagCode::WS101_COMB_LOOP, "loop");
  D.addHop("a", "x");
  D.addHop("b", "y");
  // The first hop repeats at the end — the paper's cyclic presentation.
  EXPECT_EQ(D.describe(), "loop: a.x -> b.y -> a.x");
}

TEST(DiagTest, DescribePrefixesLocation) {
  Diag D = Diag(DiagCode::WS201_BLIF_SYNTAX, "bad directive")
               .withLoc(SrcLoc{"d.blif", 2, 5});
  EXPECT_EQ(D.describe(), "d.blif:2:5: bad directive");
  Diag NoCol = Diag(DiagCode::WS221_SUMMARY_SYNTAX, "bad line")
                   .withLoc(SrcLoc{"s.wsort", 4, 0});
  EXPECT_EQ(NoCol.describe(), "s.wsort:4: bad line");
}

TEST(DiagTest, RenderTextMatchesTheDocumentedShape) {
  Diag D = Diag(DiagCode::WS201_BLIF_SYNTAX, ".model expects a name")
               .withLoc(SrcLoc{"design.blif", 3, 1});
  EXPECT_EQ(renderText(D),
            "design.blif:3:1: error[WS201_BLIF_SYNTAX]: "
            ".model expects a name");
}

TEST(DiagTest, RenderTextEchoesSourceWithCaret) {
  std::string Source = ".model m\n.inputs a a\n.end\n";
  Diag D = Diag(DiagCode::WS201_BLIF_SYNTAX, "duplicate signal 'a'")
               .withLoc(SrcLoc{"d.blif", 2, 11});
  EXPECT_EQ(renderText(D, &Source),
            "d.blif:2:11: error[WS201_BLIF_SYNTAX]: duplicate signal 'a'"
            "\n  .inputs a a"
            "\n            ^");
}

TEST(DiagTest, RenderTextListsNotesAndWitness) {
  Diag D = Diag(DiagCode::WS102_ASCRIPTION_MISMATCH, "sort differs")
               .withNote("module", "fifo")
               .withNote("port", "v_i");
  Diag Loop = Diag(DiagCode::WS401_NETLIST_CYCLE, "cycle")
                  .withHop("top", "w0")
                  .withHop("top", "w1");
  EXPECT_EQ(renderText(D), "error[WS102_ASCRIPTION_MISMATCH]: "
                           "sort differs\n  module: fifo\n  port: v_i");
  EXPECT_EQ(renderText(Loop),
            "error[WS401_NETLIST_CYCLE]: cycle"
            "\n  witness: top.w0 -> top.w1 -> top.w0");
}

TEST(DiagTest, RenderJsonIsByteStable) {
  Diag Bare(DiagCode::WS503_USAGE, "unknown flag");
  EXPECT_EQ(renderJson(Bare),
            "{\"severity\":\"error\",\"code\":\"WS503_USAGE\","
            "\"message\":\"unknown flag\"}");

  Diag Full = Diag(DiagCode::WS101_COMB_LOOP, "loop", Severity::Error)
                  .withLoc(SrcLoc{"ring.blif", 1, 8})
                  .withHop("top", "x")
                  .withNote("module", "top");
  EXPECT_EQ(renderJson(Full),
            "{\"severity\":\"error\",\"code\":\"WS101_COMB_LOOP\","
            "\"message\":\"loop\","
            "\"loc\":{\"file\":\"ring.blif\",\"line\":1,\"col\":8},"
            "\"witness\":[{\"instance\":\"top\",\"port\":\"x\"}],"
            "\"notes\":{\"module\":\"top\"}}");
}

TEST(DiagTest, RenderJsonEscapesControlCharacters) {
  Diag D(DiagCode::WS501_IO_ERROR, "path \"a\\b\"\nwith\tcontrol\x01");
  EXPECT_EQ(renderJson(D),
            "{\"severity\":\"error\",\"code\":\"WS501_IO_ERROR\","
            "\"message\":\"path \\\"a\\\\b\\\"\\nwith\\tcontrol"
            "\\u0001\"}");
}

TEST(DiagTest, DiagListSeverityQueries) {
  DiagList Ds;
  EXPECT_TRUE(Ds.empty());
  EXPECT_FALSE(Ds.hasError());

  Ds.add(Diag(DiagCode::WS104_CONTRACT_VIOLATION, "just advisory",
              Severity::Warning));
  EXPECT_FALSE(Ds.hasError());

  Ds.add(Diag(DiagCode::WS101_COMB_LOOP, "the real one"));
  ASSERT_TRUE(Ds.hasError());
  // firstError skips the leading warning.
  EXPECT_EQ(Ds.firstError().message(), "the real one");
  EXPECT_EQ(Ds.size(), 2u);
  EXPECT_EQ(Ds.describe(), "just advisory\nthe real one");
}

TEST(DiagTest, DiagListEqualityIsStructural) {
  auto make = [](const char *Msg) {
    DiagList Ds;
    Ds.add(Diag(DiagCode::WS101_COMB_LOOP, Msg)
               .withHop("a", "x"));
    return Ds;
  };
  EXPECT_EQ(make("loop"), make("loop"));
  EXPECT_FALSE(make("loop") == make("other"));

  DiagList Merged = make("loop");
  Merged.append(make("loop"));
  EXPECT_EQ(Merged.size(), 2u);
  EXPECT_FALSE(Merged == make("loop"));
}

TEST(DiagTest, ExpectedCarriesValueOrDiags) {
  Expected<int> Ok = 42;
  ASSERT_TRUE(Ok.hasValue());
  EXPECT_TRUE(static_cast<bool>(Ok));
  EXPECT_EQ(*Ok, 42);
  EXPECT_EQ(Ok.describe(), "");
  EXPECT_TRUE(Ok.diags().empty());

  Expected<int> Bad = Diag(DiagCode::WS501_IO_ERROR, "cannot read f");
  EXPECT_FALSE(Bad.hasValue());
  ASSERT_TRUE(Bad.diags().hasError());
  EXPECT_EQ(Bad.diags().firstError().code(), DiagCode::WS501_IO_ERROR);
  EXPECT_EQ(Bad.describe(), "cannot read f");
}

TEST(DiagTest, ExpectedFromDiagListKeepsEveryDiag) {
  DiagList Ds;
  Ds.add(Diag(DiagCode::WS212_VERILOG_SYNTAX, "first",
              Severity::Warning));
  Ds.add(Diag(DiagCode::WS212_VERILOG_SYNTAX, "second"));
  Expected<std::string> E = Ds;
  EXPECT_FALSE(E.hasValue());
  EXPECT_EQ(E.diags().size(), 2u);
  EXPECT_EQ(E.diags(), Ds);
}

TEST(DiagTest, CodeNamesAreStable) {
  // These spellings appear in JSON output; they are part of the machine
  // contract and must never change (docs/DIAGNOSTICS.md).
  EXPECT_STREQ(diagCodeName(DiagCode::WS101_COMB_LOOP),
               "WS101_COMB_LOOP");
  EXPECT_STREQ(diagCodeName(DiagCode::WS221_SUMMARY_SYNTAX),
               "WS221_SUMMARY_SYNTAX");
  EXPECT_STREQ(diagCodeName(DiagCode::WS503_USAGE), "WS503_USAGE");
  EXPECT_EQ(static_cast<uint16_t>(DiagCode::WS101_COMB_LOOP), 101u);
  EXPECT_EQ(static_cast<uint16_t>(DiagCode::WS401_NETLIST_CYCLE), 401u);
  EXPECT_STREQ(severityName(Severity::Warning), "warning");
}
