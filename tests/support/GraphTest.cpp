//===- tests/support/GraphTest.cpp - Graph algorithm tests ----------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/Graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

using namespace wiresort;

TEST(GraphTest, EmptyGraphIsAcyclic) {
  Graph G(0);
  EXPECT_FALSE(G.hasCycle());
  EXPECT_FALSE(G.findCycle().has_value());
  ASSERT_TRUE(G.topoSort().has_value());
  EXPECT_TRUE(G.topoSort()->empty());
}

TEST(GraphTest, SingleNodeNoEdges) {
  Graph G(1);
  EXPECT_FALSE(G.hasCycle());
  EXPECT_EQ(G.topoSort()->size(), 1u);
}

TEST(GraphTest, SelfLoopIsACycle) {
  Graph G(2);
  G.addEdge(1, 1);
  EXPECT_TRUE(G.hasCycle());
  auto Cycle = G.findCycle();
  ASSERT_TRUE(Cycle.has_value());
  EXPECT_EQ(Cycle->size(), 1u);
  EXPECT_EQ((*Cycle)[0], 1u);
  EXPECT_FALSE(G.topoSort().has_value());
}

TEST(GraphTest, ChainIsAcyclicAndTopoOrdered) {
  Graph G(5);
  for (uint32_t I = 0; I + 1 < 5; ++I)
    G.addEdge(I, I + 1);
  EXPECT_FALSE(G.hasCycle());
  auto Order = G.topoSort();
  ASSERT_TRUE(Order.has_value());
  std::vector<uint32_t> Pos(5);
  for (size_t I = 0; I != Order->size(); ++I)
    Pos[(*Order)[I]] = static_cast<uint32_t>(I);
  for (uint32_t I = 0; I + 1 < 5; ++I)
    EXPECT_LT(Pos[I], Pos[I + 1]);
}

TEST(GraphTest, TwoNodeCycleFound) {
  Graph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 1);
  G.addEdge(2, 3);
  EXPECT_TRUE(G.hasCycle());
  auto Cycle = G.findCycle();
  ASSERT_TRUE(Cycle.has_value());
  std::set<uint32_t> Nodes(Cycle->begin(), Cycle->end());
  EXPECT_EQ(Nodes, (std::set<uint32_t>{1, 2}));
}

TEST(GraphTest, SccComponentsOfTwoCycles) {
  // 0 -> 1 -> 0 and 2 -> 3 -> 2, with 1 -> 2 bridging.
  Graph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 0);
  G.addEdge(2, 3);
  G.addEdge(3, 2);
  G.addEdge(1, 2);
  uint32_t NumComponents = 0;
  std::vector<uint32_t> Comp = G.tarjanScc(NumComponents);
  EXPECT_EQ(NumComponents, 2u);
  EXPECT_EQ(Comp[0], Comp[1]);
  EXPECT_EQ(Comp[2], Comp[3]);
  EXPECT_NE(Comp[0], Comp[2]);
}

TEST(GraphTest, ReachableFromFollowsEdgesForwardOnly) {
  Graph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(3, 0);
  std::vector<bool> R = G.reachableFrom(0);
  EXPECT_TRUE(R[0]);
  EXPECT_TRUE(R[1]);
  EXPECT_TRUE(R[2]);
  EXPECT_FALSE(R[3]);
}

TEST(GraphTest, DeepChainDoesNotOverflowStack) {
  // The iterative Tarjan must handle graphs deeper than the C stack.
  const uint32_t N = 500000;
  Graph G(N);
  for (uint32_t I = 0; I + 1 < N; ++I)
    G.addEdge(I, I + 1);
  G.addEdge(N - 1, 0); // One giant cycle.
  EXPECT_TRUE(G.hasCycle());
  auto Cycle = G.findCycle();
  ASSERT_TRUE(Cycle.has_value());
  EXPECT_EQ(Cycle->size(), N);
}

TEST(GraphTest, RandomGraphTopoSortAgreesWithHasCycle) {
  std::mt19937 Rng(7);
  for (int Trial = 0; Trial != 50; ++Trial) {
    std::uniform_int_distribution<uint32_t> NodeCount(1, 40);
    uint32_t N = NodeCount(Rng);
    Graph G(N);
    std::uniform_int_distribution<uint32_t> Node(0, N - 1);
    std::uniform_int_distribution<uint32_t> EdgeCount(0, 3 * N);
    uint32_t E = EdgeCount(Rng);
    for (uint32_t I = 0; I != E; ++I)
      G.addEdge(Node(Rng), Node(Rng));
    EXPECT_EQ(G.hasCycle(), !G.topoSort().has_value());
    EXPECT_EQ(G.hasCycle(), G.findCycle().has_value());
  }
}

TEST(GraphTest, FindCycleReturnsRealCycle) {
  std::mt19937 Rng(11);
  for (int Trial = 0; Trial != 30; ++Trial) {
    uint32_t N = 20;
    Graph G(N);
    std::uniform_int_distribution<uint32_t> Node(0, N - 1);
    for (uint32_t I = 0; I != 40; ++I)
      G.addEdge(Node(Rng), Node(Rng));
    auto Cycle = G.findCycle();
    if (!Cycle)
      continue;
    // Verify each consecutive pair is an edge, wrapping around.
    for (size_t I = 0; I != Cycle->size(); ++I) {
      uint32_t From = (*Cycle)[I];
      uint32_t To = (*Cycle)[(I + 1) % Cycle->size()];
      const auto &Succ = G.successors(From);
      EXPECT_NE(std::find(Succ.begin(), Succ.end(), To), Succ.end())
          << "missing edge " << From << " -> " << To;
    }
  }
}
