//===- tests/support/TableTest.cpp - Table formatter tests ----------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <gtest/gtest.h>

using namespace wiresort;

TEST(TableTest, WithCommasFormatsGroups) {
  EXPECT_EQ(Table::withCommas(0), "0");
  EXPECT_EQ(Table::withCommas(999), "999");
  EXPECT_EQ(Table::withCommas(1000), "1,000");
  EXPECT_EQ(Table::withCommas(1517073), "1,517,073");
  EXPECT_EQ(Table::withCommas(1234567890123ull), "1,234,567,890,123");
}

TEST(TableTest, SecondsAndSpeedupFormatting) {
  EXPECT_EQ(Table::secondsStr(30.1764), "30.176");
  EXPECT_EQ(Table::secondsStr(0.0005, 3), "0.001");
  EXPECT_EQ(Table::speedupStr(33.93), "33.93x");
}

TEST(TableTest, ColumnsAreAligned) {
  Table T({"Module", "Gates"});
  T.addRow({"fifo", "148272"});
  T.addRow({"x", "1"});
  std::string S = T.str();
  // Header, rule, and both rows present.
  EXPECT_NE(S.find("Module"), std::string::npos);
  EXPECT_NE(S.find("fifo"), std::string::npos);
  EXPECT_NE(S.find("---"), std::string::npos);
  // Every line of a column-aligned table starts the second column at the
  // same offset: "Gates" and "148272" share a column start.
  size_t HeaderCol = S.find("Gates") - S.rfind('\n', S.find("Gates")) - 1;
  size_t RowCol = S.find("148272") - S.rfind('\n', S.find("148272")) - 1;
  EXPECT_EQ(HeaderCol, RowCol);
}
