//===- tests/support/FailPointTest.cpp - Fault-injection framework --------===//
//
// Part of the wiresort project. The failpoint registry's own contract
// (docs/ROBUSTNESS.md): mode semantics (always / nth / prob / off),
// (spec, seed) determinism for probabilistic triggers, whole-spec
// validation before any site is armed, and the ThreadPool exception
// containment the engine's panic handling is built on.
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <vector>

using namespace wiresort;
using namespace wiresort::support;
using namespace wiresort::support::failpoint;

namespace {

/// Every trial disarms on both sides so no schedule leaks into (or out
/// of) a test — the same discipline production callers follow.
class FailPointTest : public ::testing::Test {
protected:
  void SetUp() override { disarmAll(); }
  void TearDown() override {
    disarmAll();
    ::unsetenv("WIRESORT_FAILPOINTS");
    ::unsetenv("WIRESORT_FAILPOINT_SEED");
  }
};

/// Fires \p Site N times and returns the fire pattern.
std::vector<bool> pattern(const char *Name, int N) {
  Site &S = site(Name);
  std::vector<bool> P;
  for (int I = 0; I != N; ++I)
    P.push_back(S.shouldFire());
  return P;
}

} // namespace

TEST_F(FailPointTest, DisarmedSiteNeverFires) {
  // The production steady state: a site nobody configured is a relaxed
  // load + branch that always says no (and counts nothing).
  Site &S = site("test.fp.idle");
  for (int I = 0; I != 1000; ++I)
    EXPECT_FALSE(S.shouldFire());
  EXPECT_EQ(S.hits(), 0u);
  EXPECT_EQ(S.fires(), 0u);
}

TEST_F(FailPointTest, AlwaysFiresEveryHitAndOffNever) {
  ASSERT_TRUE(configure("test.fp.a=always,test.fp.b=off").empty());
  EXPECT_EQ(armedCount(), 1u);
  for (bool Fired : pattern("test.fp.a", 5))
    EXPECT_TRUE(Fired);
  for (bool Fired : pattern("test.fp.b", 5))
    EXPECT_FALSE(Fired);
  EXPECT_EQ(site("test.fp.a").fires(), 5u);
}

TEST_F(FailPointTest, NthFiresExactlyOnceOnTheNthHit) {
  ASSERT_TRUE(configure("test.fp.nth=nth(3)").empty());
  std::vector<bool> P = pattern("test.fp.nth", 6);
  EXPECT_EQ(P, (std::vector<bool>{false, false, true, false, false,
                                  false}));
  EXPECT_EQ(site("test.fp.nth").fires(), 1u);
}

TEST_F(FailPointTest, ProbExtremesAndSeedDeterminism) {
  ASSERT_TRUE(configure("test.fp.p0=prob(0),test.fp.p1=prob(1)").empty());
  for (bool Fired : pattern("test.fp.p0", 50))
    EXPECT_FALSE(Fired);
  for (bool Fired : pattern("test.fp.p1", 50))
    EXPECT_TRUE(Fired);

  // The same (spec, seed) pair replays byte-identically; a different
  // seed gives a different stream (with overwhelming probability over
  // 200 draws of p=0.5).
  disarmAll();
  ASSERT_TRUE(configure("test.fp.ph=prob(0.5)", 42).empty());
  std::vector<bool> First = pattern("test.fp.ph", 200);
  disarmAll();
  ASSERT_TRUE(configure("test.fp.ph=prob(0.5)", 42).empty());
  EXPECT_EQ(pattern("test.fp.ph", 200), First);
  disarmAll();
  ASSERT_TRUE(configure("test.fp.ph=prob(0.5)", 43).empty());
  EXPECT_NE(pattern("test.fp.ph", 200), First);

  // And the stream is not degenerate: both outcomes occur.
  EXPECT_NE(std::count(First.begin(), First.end(), true), 0);
  EXPECT_NE(std::count(First.begin(), First.end(), true), 200);
}

TEST_F(FailPointTest, MalformedSpecsRejectWithoutArmingAnything) {
  for (const char *Bad :
       {"noequals", "=always", "s=bogus", "s=nth(0)", "s=nth(x)",
        "s=prob(2)", "s=prob(-1)", "s=prob()"}) {
    Status St = configure(Bad);
    ASSERT_TRUE(St.hasError()) << Bad;
    EXPECT_EQ(St.firstError().code(), DiagCode::WS503_USAGE) << Bad;
  }
  // Validation is all-or-nothing: one bad clause keeps the good one
  // from arming too.
  Status St = configure("test.fp.good=always,test.fp.bad=bogus");
  ASSERT_TRUE(St.hasError());
  EXPECT_EQ(armedCount(), 0u);
  EXPECT_FALSE(site("test.fp.good").shouldFire());
}

TEST_F(FailPointTest, ConfigureFromEnvArmsAndIsANoOpWhenUnset) {
  ASSERT_TRUE(configureFromEnv().empty());
  EXPECT_EQ(armedCount(), 0u);

  ::setenv("WIRESORT_FAILPOINTS", "test.fp.env=nth(2)", 1);
  ASSERT_TRUE(configureFromEnv().empty());
  std::vector<bool> P = pattern("test.fp.env", 3);
  EXPECT_EQ(P, (std::vector<bool>{false, true, false}));

  ::setenv("WIRESORT_FAILPOINTS", "test.fp.env=nonsense", 1);
  EXPECT_TRUE(configureFromEnv().hasError());
}

TEST_F(FailPointTest, MacroCachesTheSiteAndRegistersItsName) {
  auto hit = [] { return WS_FAILPOINT("test.fp.macro"); };
  EXPECT_FALSE(hit());
  ASSERT_TRUE(configure("test.fp.macro=always").empty());
  EXPECT_TRUE(hit());
  std::vector<std::string> Names = siteNames();
  EXPECT_NE(std::find(Names.begin(), Names.end(), "test.fp.macro"),
            Names.end());
}

TEST_F(FailPointTest, NthFiresOnceEvenUnderAConcurrentHammer) {
  // nth(N) claims its hit index atomically: 8 workers racing 1000 hits
  // each observe distinct indices, so exactly one fires.
  ASSERT_TRUE(configure("test.fp.race=nth(500)").empty());
  Site &S = site("test.fp.race");
  std::atomic<uint64_t> Fired{0};
  {
    ThreadPool Pool(8);
    for (int W = 0; W != 8; ++W)
      Pool.submit([&] {
        for (int I = 0; I != 1000; ++I)
          if (S.shouldFire())
            Fired.fetch_add(1);
      });
    Pool.wait();
  }
  EXPECT_EQ(Fired.load(), 1u);
  EXPECT_EQ(S.hits(), 8000u);
}

TEST_F(FailPointTest, ThreadPoolContainsThrowingTasks) {
  // The engine's last line of defense: a task that throws must park its
  // exception for drainExceptions(), never unwind a worker (which would
  // std::terminate), and must not poison later tasks.
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  for (int I = 0; I != 8; ++I)
    Pool.submit([&, I] {
      ++Ran;
      if (I % 2 == 0)
        throw std::runtime_error("task " + std::to_string(I));
    });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 8);
  std::vector<std::exception_ptr> Escaped = Pool.drainExceptions();
  EXPECT_EQ(Escaped.size(), 4u);
  // Draining is destructive; the pool is clean for reuse.
  EXPECT_TRUE(Pool.drainExceptions().empty());
  Pool.submit([&] { ++Ran; });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 9);
  EXPECT_TRUE(Pool.drainExceptions().empty());
}
