//===- tests/support/TraceTest.cpp - Tracing & metrics tests --------------===//
//
// Part of the wiresort project. Pins the support::trace contract
// (docs/OBSERVABILITY.md): spans collected across ThreadPool workers nest
// and rebase correctly, counters and histograms stay exact under
// concurrent hammering (this suite runs in the TSan stage of
// tools/run_tests.sh), the disabled path records nothing, sessions reset
// the registry, and the Chrome trace-event JSON writer emits monotonic
// timestamps and well-formed documents.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

using namespace wiresort;

namespace {

/// Spans collected by \p S with the given name.
std::vector<trace::SpanRecord> spansNamed(const trace::Session &S,
                                          const char *Name) {
  std::vector<trace::SpanRecord> Out;
  for (const trace::SpanRecord &R : S.spans())
    if (R.Name == Name)
      Out.push_back(R);
  return Out;
}

TEST(TraceTest, DisabledInstrumentationRecordsNothing) {
  // No session live: spans vanish, counters stay put.
  ASSERT_FALSE(trace::spansEnabled());
  ASSERT_FALSE(trace::countersEnabled());
  trace::Counter &C = trace::counter("trace_test.disabled");
  const uint64_t Before = C.value();
  C.add(41);
  EXPECT_EQ(C.value(), Before);
  trace::Histogram &H = trace::histogram("trace_test.disabled_us");
  H.record(99);
  EXPECT_EQ(H.count(), 0u);
  {
    trace::Span S("trace_test.orphan", "test");
    EXPECT_FALSE(S.active());
  }
}

TEST(TraceTest, SessionResetsRegistryAndCollectsSpans) {
  {
    trace::Session First;
    trace::counter("trace_test.reset").add(7);
    ASSERT_EQ(trace::counter("trace_test.reset").value(), 7u);
  }
  trace::Session Second;
  // A new session starts every counter from zero.
  EXPECT_EQ(trace::counter("trace_test.reset").value(), 0u);
  {
    trace::Span S("trace_test.one", "test");
    EXPECT_TRUE(S.active());
    S.note("key", "value");
  }
  ASSERT_FALSE(Second.finish().hasError());
  auto Spans = spansNamed(Second, "trace_test.one");
  ASSERT_EQ(Spans.size(), 1u);
  ASSERT_EQ(Spans[0].Args.size(), 1u);
  EXPECT_EQ(Spans[0].Args[0].first, "key");
  EXPECT_EQ(Spans[0].Args[0].second, "value");
}

TEST(TraceTest, NestedSpansStayEnclosedAndSortParentFirst) {
  trace::Session S;
  {
    trace::Span Outer("trace_test.outer", "test");
    {
      trace::Span Inner("trace_test.inner", "test");
    }
  }
  ASSERT_FALSE(S.finish().hasError());
  auto Outer = spansNamed(S, "trace_test.outer");
  auto Inner = spansNamed(S, "trace_test.inner");
  ASSERT_EQ(Outer.size(), 1u);
  ASSERT_EQ(Inner.size(), 1u);
  // Enclosure in rebased time, and flush order parent-before-child.
  EXPECT_LE(Outer[0].StartNs, Inner[0].StartNs);
  EXPECT_GE(Outer[0].StartNs + Outer[0].DurNs,
            Inner[0].StartNs + Inner[0].DurNs);
  size_t OuterAt = 0, InnerAt = 0;
  for (size_t I = 0; I != S.spans().size(); ++I) {
    if (S.spans()[I].Name == "trace_test.outer")
      OuterAt = I;
    if (S.spans()[I].Name == "trace_test.inner")
      InnerAt = I;
  }
  EXPECT_LT(OuterAt, InnerAt);
}

TEST(TraceTest, SpansCollectAcrossThreadPoolWorkers) {
  constexpr int Tasks = 64;
  trace::Session S;
  {
    ThreadPool Pool(4);
    for (int I = 0; I != Tasks; ++I)
      Pool.submit([] {
        trace::Span Task("trace_test.task", "test");
        trace::Span Nested("trace_test.nested", "test");
      });
    Pool.wait();
  } // Workers join before finish(): the Session thread discipline.
  ASSERT_FALSE(S.finish().hasError());
  EXPECT_EQ(spansNamed(S, "trace_test.task").size(),
            static_cast<size_t>(Tasks));
  EXPECT_EQ(spansNamed(S, "trace_test.nested").size(),
            static_cast<size_t>(Tasks));
  // Flush order is globally monotonic in start time whatever the
  // producing thread was.
  uint64_t LastStart = 0;
  std::set<uint32_t> Tids;
  for (const trace::SpanRecord &R : S.spans()) {
    EXPECT_GE(R.StartNs, LastStart);
    LastStart = R.StartNs;
    Tids.insert(R.Tid);
  }
  // Session-scoped tids are small and dense, not raw OS ids.
  for (uint32_t Tid : Tids)
    EXPECT_LT(Tid, 64u);
}

TEST(TraceTest, CountersExactUnderConcurrentHammering) {
  constexpr int Threads = 8;
  constexpr uint64_t PerThread = 20000;
  trace::Session S;
  trace::Counter &C = trace::counter("trace_test.hammer");
  trace::Histogram &H = trace::histogram("trace_test.hammer_us");
  {
    ThreadPool Pool(Threads);
    for (int T = 0; T != Threads; ++T)
      Pool.submit([&C, &H, T] {
        for (uint64_t I = 0; I != PerThread; ++I) {
          C.add();
          H.record(uint64_t(T) * PerThread + I);
        }
      });
    Pool.wait();
  }
  EXPECT_EQ(C.value(), Threads * PerThread);
  EXPECT_EQ(H.count(), Threads * PerThread);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), Threads * PerThread - 1);
  // Sum of 0..N-1.
  const uint64_t N = Threads * PerThread;
  EXPECT_EQ(H.sum(), N * (N - 1) / 2);
}

TEST(TraceTest, ChromeTraceFileIsValidJsonWithMonotonicTimestamps) {
  const std::string Path =
      testing::TempDir() + "/wiresort_trace_test.json";
  {
    trace::Session S(trace::SessionOptions{Path, true});
    for (int I = 0; I != 5; ++I) {
      trace::Span Sp("trace_test.file_span", "test");
      Sp.note("i", static_cast<uint64_t>(I));
    }
    trace::counter("trace_test.file_counter").add(3);
    ASSERT_FALSE(S.finish().hasError());
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream SS;
  SS << In.rdbuf();
  const std::string Doc = SS.str();
  std::remove(Path.c_str());

  // Structural spot checks a JSON parser would make (the jq stage of
  // tools/run_tests.sh does the full parse).
  EXPECT_EQ(Doc.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(Doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Doc.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(Doc.find("\"trace_test.file_counter\""), std::string::npos);
  EXPECT_NE(Doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Balanced braces => no truncated write.
  int Depth = 0;
  bool InString = false;
  for (size_t I = 0; I != Doc.size(); ++I) {
    char Ch = Doc[I];
    if (InString) {
      if (Ch == '\\')
        ++I;
      else if (Ch == '"')
        InString = false;
      continue;
    }
    if (Ch == '"')
      InString = true;
    else if (Ch == '{')
      ++Depth;
    else if (Ch == '}')
      --Depth;
    ASSERT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
}

TEST(TraceTest, TraceWriteFailureIsAStructuredDiag) {
  trace::Session S(
      trace::SessionOptions{"/no/such/dir/wiresort_trace.json", true});
  support::Status Result = S.finish();
  ASSERT_TRUE(Result.hasError());
  EXPECT_EQ(Result[0].code(), support::DiagCode::WS501_IO_ERROR);
}

TEST(TraceTest, MetricsOnlySessionCollectsNoSpans) {
  trace::Session S(trace::SessionOptions{"", /*CollectSpans=*/false});
  EXPECT_FALSE(trace::spansEnabled());
  EXPECT_TRUE(trace::countersEnabled());
  {
    trace::Span Sp("trace_test.metrics_only", "test");
    EXPECT_FALSE(Sp.active());
  }
  trace::counter("trace_test.metrics_only").add(5);
  ASSERT_FALSE(S.finish().hasError());
  EXPECT_TRUE(S.spans().empty());
  EXPECT_EQ(trace::counter("trace_test.metrics_only").value(), 5u);
}

TEST(TraceTest, StatsRenderingsAreSortedAndSingleLineJson) {
  trace::Session S;
  trace::counter("trace_test.b").add(2);
  trace::counter("trace_test.a").add(1);
  trace::histogram("trace_test.h_us").record(10);
  ASSERT_FALSE(S.finish().hasError());

  const std::string Text = S.statsText();
  EXPECT_LT(Text.find("trace_test.a = 1"), Text.find("trace_test.b = 2"));
  EXPECT_NE(Text.find("trace_test.h_us: count=1"), std::string::npos);

  const std::string Json = S.statsJson();
  EXPECT_EQ(Json.find('\n'), std::string::npos);
  EXPECT_EQ(Json.rfind("{\"type\":\"stats\"", 0), 0u);
  EXPECT_NE(Json.find("\"trace_test.a\":1"), std::string::npos);
  EXPECT_NE(
      Json.find(
          "\"trace_test.h_us\":{\"count\":1,\"sum\":10,\"min\":10,\"max\":10}"),
      std::string::npos);
}

} // namespace
