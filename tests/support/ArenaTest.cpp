//===- tests/support/ArenaTest.cpp - Bump arena + interner tests ----------===//
//
// Part of the wiresort project. Pins the support/Arena.h contract the
// arena-backed IR construction paths rely on: bump allocation with
// alignment, NUL-terminated copyString views that stay stable across
// chunk growth, reset() recycling, and StringInterner deduplication.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace wiresort::support;

TEST(ArenaTest, AllocateRespectsAlignment) {
  Arena A;
  // Deliberately misalign the cursor with a 1-byte allocation first.
  A.allocate(1, 1);
  for (size_t Align : {1u, 2u, 8u, 64u, 256u}) {
    void *P = A.allocate(3, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u) << "align " << Align;
  }
  EXPECT_GE(A.bytesUsed(), 1u + 5 * 3);
  EXPECT_GE(A.bytesReserved(), A.bytesUsed());
}

TEST(ArenaTest, AllocateArrayIsTypedAndWritable) {
  Arena A;
  uint64_t *Words = A.allocateArray<uint64_t>(1000);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Words) % alignof(uint64_t), 0u);
  for (size_t I = 0; I != 1000; ++I)
    Words[I] = I * I;
  for (size_t I = 0; I != 1000; ++I)
    EXPECT_EQ(Words[I], I * I);
}

TEST(ArenaTest, CopyStringIsNulTerminatedAndStableAcrossGrowth) {
  Arena A;
  std::string_view First = A.copyString("rx.data_i");
  EXPECT_EQ(First, "rx.data_i");
  EXPECT_EQ(First.data()[First.size()], '\0'); // usable as a C string
  // Force many chunk retirements; the early view must not move.
  const char *FirstData = First.data();
  std::vector<std::string_view> Views;
  for (int I = 0; I != 5000; ++I)
    Views.push_back(A.copyString(std::string(100, 'a' + I % 26)));
  EXPECT_EQ(First.data(), FirstData);
  EXPECT_EQ(First, "rx.data_i");
  for (int I = 0; I != 5000; ++I)
    EXPECT_EQ(Views[I], std::string(100, 'a' + I % 26)) << I;
  EXPECT_GT(A.bytesReserved(), Arena::MinChunkBytes);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena A;
  // Larger than MaxChunkBytes: must still succeed, in one piece.
  const size_t Big = Arena::MaxChunkBytes + 4096;
  char *P = A.allocateArray<char>(Big);
  std::memset(P, 0x5a, Big);
  EXPECT_EQ(P[0], 0x5a);
  EXPECT_EQ(P[Big - 1], 0x5a);
  // The bump cursor still works for small follow-ups.
  std::string_view After = A.copyString("after");
  EXPECT_EQ(After, "after");
}

TEST(ArenaTest, ResetRecyclesFirstChunk) {
  Arena A;
  A.copyString("warm");
  const size_t ReservedWarm = A.bytesReserved();
  for (int I = 0; I != 3000; ++I)
    A.copyString(std::string(200, 'x'));
  EXPECT_GT(A.bytesReserved(), ReservedWarm);
  A.reset();
  EXPECT_EQ(A.bytesUsed(), 0u);
  EXPECT_EQ(A.bytesReserved(), ReservedWarm); // back to one chunk
  // Allocation works again from the recycled chunk.
  EXPECT_EQ(A.copyString("again"), "again");
  EXPECT_EQ(A.bytesUsed(), 6u); // five chars + NUL
}

TEST(StringInternerTest, InternDeduplicatesToOneStableView) {
  Arena A;
  StringInterner Names(A);
  std::string_view V1 = Names.intern("data_o");
  std::string_view V2 = Names.intern(std::string("data_") + "o");
  EXPECT_EQ(V1, "data_o");
  EXPECT_EQ(V1.data(), V2.data()); // same arena bytes, not just equal
  EXPECT_EQ(Names.size(), 1u);
  std::string_view Other = Names.intern("ready_o");
  EXPECT_NE(Other.data(), V1.data());
  EXPECT_EQ(Names.size(), 2u);
  const size_t UsedAfterTwo = A.bytesUsed();
  for (int I = 0; I != 1000; ++I)
    Names.intern("data_o"); // repeats must not copy again
  EXPECT_EQ(A.bytesUsed(), UsedAfterTwo);
}

TEST(StringInternerTest, ViewsStableAcrossManyInterns) {
  Arena A;
  StringInterner Names(A);
  std::string_view Early = Names.intern("v_i");
  const char *EarlyData = Early.data();
  for (int I = 0; I != 20000; ++I)
    Names.intern("port$" + std::to_string(I));
  EXPECT_EQ(Names.intern("v_i").data(), EarlyData);
  EXPECT_EQ(Names.size(), 20001u);
}

TEST(StringInternerTest, ClearForgetsWithArenaReset) {
  Arena A;
  StringInterner Names(A);
  Names.intern("yumi_i");
  Names.clear();
  A.reset();
  EXPECT_EQ(Names.size(), 0u);
  // Reuse after the paired clear+reset is clean.
  EXPECT_EQ(Names.intern("yumi_i"), "yumi_i");
  EXPECT_EQ(Names.size(), 1u);
}
