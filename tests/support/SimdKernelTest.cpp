//===- tests/support/SimdKernelTest.cpp - Cross-ISA kernel differential ---===//
//
// Part of the wiresort project. The reachability kernel's OR-sweep inner
// loops exist in up to three ISA variants (scalar / AVX2 / AVX-512,
// runtime-dispatched via support/Simd.h); this suite pins every variant
// available on the host to the exact same bitsets. 200 seeded graphs are
// swept under each ISA and compared word for word against the scalar
// reference, the wide-lane decode is anchored to the per-source BFS
// oracle, and the lane-chunking boundaries around 1/2/8-word rows
// (63/64/65/127/128/129/511/512/513 sources) are exercised explicitly.
//
// tools/run_tests.sh reruns this binary with WIRESORT_KERNEL_ISA=scalar
// forced and again under sanitizers, so keep it self-contained.
//
//===----------------------------------------------------------------------===//

#include "support/CsrGraph.h"
#include "support/Simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

using namespace wiresort;

namespace {

/// Restores the process-wide ISA/lane overrides on scope exit so a
/// failing assertion cannot leak a forced ISA into later tests.
struct DispatchGuard {
  simd::KernelIsa SavedIsa = simd::activeIsa();
  uint32_t SavedLanes = simd::maxLaneWords();
  ~DispatchGuard() {
    simd::setActiveIsa(SavedIsa);
    simd::setMaxLaneWords(SavedLanes);
  }
};

std::vector<simd::KernelIsa> availableIsas() {
  std::vector<simd::KernelIsa> Isas;
  for (simd::KernelIsa Isa : {simd::KernelIsa::Scalar, simd::KernelIsa::Avx2,
                              simd::KernelIsa::Avx512})
    if (simd::isaSupported(Isa))
      Isas.push_back(Isa);
  return Isas;
}

/// Sweeps \p Sources in laneCount()-sized chunks under the currently
/// active ISA and flattens every node's row from every chunk into one
/// vector — a canonical form two ISA runs can be compared on verbatim.
std::vector<uint64_t> sweepBitset(const CsrGraph &Csr,
                                  const std::vector<uint32_t> &Sources,
                                  uint32_t LaneWords) {
  ReachabilityKernel Kernel(Csr, LaneWords);
  std::vector<uint64_t> Out;
  for (size_t Base = 0; Base < Sources.size(); Base += Kernel.laneCount()) {
    const uint32_t Count = static_cast<uint32_t>(
        std::min<size_t>(Kernel.laneCount(), Sources.size() - Base));
    EXPECT_TRUE(Kernel.sweep(Sources.data() + Base, Count));
    for (uint32_t Node = 0; Node != Csr.numNodes(); ++Node) {
      const uint64_t *Row = Kernel.row(Node);
      Out.insert(Out.end(), Row, Row + Kernel.laneWords());
    }
  }
  return Out;
}

Graph randomGraph(std::mt19937 &Rng, bool Dag) {
  std::uniform_int_distribution<uint32_t> NodeCount(1, 120);
  const uint32_t N = NodeCount(Rng);
  Graph G(N);
  std::uniform_int_distribution<uint32_t> Node(0, N - 1);
  std::uniform_int_distribution<uint32_t> EdgeCount(0, 3 * N);
  std::vector<uint32_t> Pos(N);
  std::iota(Pos.begin(), Pos.end(), 0);
  std::shuffle(Pos.begin(), Pos.end(), Rng);
  for (uint32_t I = 0, E = EdgeCount(Rng); I != E; ++I) {
    uint32_t From = Node(Rng), To = Node(Rng);
    if (Dag) {
      if (Pos[From] == Pos[To])
        continue;
      if (Pos[From] > Pos[To])
        std::swap(From, To);
    }
    G.addEdge(From, To);
  }
  return G;
}

std::vector<uint32_t> allNodes(const Graph &G) {
  std::vector<uint32_t> Nodes(G.numNodes());
  std::iota(Nodes.begin(), Nodes.end(), 0);
  return Nodes;
}

} // namespace

TEST(SimdKernelTest, DispatchReportsScalarAlwaysSupported) {
  EXPECT_TRUE(simd::isaSupported(simd::KernelIsa::Scalar));
  // The best ISA is itself supported and at least as wide as scalar.
  EXPECT_TRUE(simd::isaSupported(simd::bestSupportedIsa()));
  EXPECT_GE(static_cast<int>(simd::bestSupportedIsa()),
            static_cast<int>(simd::KernelIsa::Scalar));
  // Names are the stable spellings WIRESORT_KERNEL_ISA accepts.
  EXPECT_STREQ(simd::isaName(simd::KernelIsa::Scalar), "scalar");
  EXPECT_STREQ(simd::isaName(simd::KernelIsa::Avx2), "avx2");
  EXPECT_STREQ(simd::isaName(simd::KernelIsa::Avx512), "avx512");
}

TEST(SimdKernelTest, SetActiveIsaRejectsUnsupportedAndRoundTrips) {
  DispatchGuard Guard;
  for (simd::KernelIsa Isa : availableIsas()) {
    ASSERT_TRUE(simd::setActiveIsa(Isa));
    EXPECT_EQ(simd::activeIsa(), Isa);
  }
  if (!simd::isaSupported(simd::KernelIsa::Avx512)) {
    simd::KernelIsa Before = simd::activeIsa();
    EXPECT_FALSE(simd::setActiveIsa(simd::KernelIsa::Avx512));
    EXPECT_EQ(simd::activeIsa(), Before);
  }
}

TEST(SimdKernelTest, SetMaxLaneWordsRejectsNonPowerRows) {
  DispatchGuard Guard;
  for (uint32_t Bad : {0u, 3u, 5u, 6u, 7u, 9u, 16u})
    EXPECT_FALSE(simd::setMaxLaneWords(Bad));
  for (uint32_t Good : {1u, 2u, 4u, 8u}) {
    ASSERT_TRUE(simd::setMaxLaneWords(Good));
    EXPECT_EQ(simd::maxLaneWords(), Good);
  }
}

TEST(SimdKernelTest, LaneWordsForRespectsCap) {
  DispatchGuard Guard;
  ASSERT_TRUE(simd::setMaxLaneWords(8));
  EXPECT_EQ(ReachabilityKernel::laneWordsFor(1), 1u);
  EXPECT_EQ(ReachabilityKernel::laneWordsFor(64), 1u);
  EXPECT_EQ(ReachabilityKernel::laneWordsFor(65), 2u);
  EXPECT_EQ(ReachabilityKernel::laneWordsFor(128), 2u);
  EXPECT_EQ(ReachabilityKernel::laneWordsFor(129), 4u);
  EXPECT_EQ(ReachabilityKernel::laneWordsFor(256), 4u);
  EXPECT_EQ(ReachabilityKernel::laneWordsFor(257), 8u);
  EXPECT_EQ(ReachabilityKernel::laneWordsFor(512), 8u);
  EXPECT_EQ(ReachabilityKernel::laneWordsFor(100000), 8u);
  ASSERT_TRUE(simd::setMaxLaneWords(2));
  EXPECT_EQ(ReachabilityKernel::laneWordsFor(513), 2u);
  EXPECT_EQ(ReachabilityKernel::laneWordsFor(65), 2u);
  EXPECT_EQ(ReachabilityKernel::laneWordsFor(64), 1u);
}

TEST(SimdKernelTest, CrossIsaIdenticalBitsets) {
  // 200 seeded graphs (alternating DAG / cyclic), each swept with the
  // widest row its node count warrants under every available ISA. Every
  // variant must produce the scalar bitset bit for bit — the acceptance
  // gate that lets bench_kernel trust the vectorized loops.
  DispatchGuard Guard;
  const std::vector<simd::KernelIsa> Isas = availableIsas();
  std::mt19937 Rng(7001);
  for (int Trial = 0; Trial != 200; ++Trial) {
    Graph G = randomGraph(Rng, Trial % 2 == 0);
    const CsrGraph Csr = CsrGraph::freeze(G);
    const std::vector<uint32_t> Sources = allNodes(G);
    const uint32_t LaneWords = ReachabilityKernel::laneWordsFor(Sources.size());

    ASSERT_TRUE(simd::setActiveIsa(simd::KernelIsa::Scalar));
    const std::vector<uint64_t> Reference =
        sweepBitset(Csr, Sources, LaneWords);
    for (simd::KernelIsa Isa : Isas) {
      if (Isa == simd::KernelIsa::Scalar)
        continue;
      ASSERT_TRUE(simd::setActiveIsa(Isa));
      EXPECT_EQ(sweepBitset(Csr, Sources, LaneWords), Reference)
          << "trial " << Trial << " isa " << simd::isaName(Isa);
    }
  }
}

TEST(SimdKernelTest, WideLanesMatchPerSourceBfs) {
  // Anchor the multi-word decode itself (not just cross-ISA identity):
  // with >64 sources in one sweep, bit(Node, Lane) must equal the BFS
  // oracle for every (source, node) pair, under every available ISA.
  DispatchGuard Guard;
  std::mt19937 Rng(7002);
  for (int Trial = 0; Trial != 8; ++Trial) {
    Graph G(100);
    std::uniform_int_distribution<uint32_t> Node(0, 99);
    for (int E = 0; E != 250; ++E)
      G.addEdge(Node(Rng), Node(Rng));
    const CsrGraph Csr = CsrGraph::freeze(G);
    const std::vector<uint32_t> Sources = allNodes(G);
    const uint32_t LaneWords = ReachabilityKernel::laneWordsFor(Sources.size());
    ASSERT_GT(LaneWords, 1u);
    for (simd::KernelIsa Isa : availableIsas()) {
      ASSERT_TRUE(simd::setActiveIsa(Isa));
      ReachabilityKernel Kernel(Csr, LaneWords);
      ASSERT_GE(Kernel.laneCount(), Sources.size());
      ASSERT_TRUE(Kernel.sweep(Sources.data(),
                               static_cast<uint32_t>(Sources.size())));
      for (uint32_t Lane = 0; Lane != Sources.size(); ++Lane) {
        const std::vector<bool> Oracle = G.reachableFrom(Sources[Lane]);
        for (uint32_t N = 0; N != G.numNodes(); ++N)
          EXPECT_EQ(Kernel.bit(N, Lane), Oracle[N])
              << "isa " << simd::isaName(Isa) << " lane " << Lane << " node "
              << N;
      }
    }
  }
}

TEST(SimdKernelTest, ChunkBoundarySourceCountsAllIsas) {
  // Source counts straddling every row-width boundary: 63/64/65 (one
  // word), 127/128/129 (two words -> four), and 511/512/513 (the
  // 8-word, 512-lane ceiling — 513 forces a second chunked sweep).
  // Layered fan graphs give every source a distinct closure so lane
  // mix-ups cannot cancel. Scalar is BFS-anchored; wider ISAs must be
  // bitset-identical to scalar.
  DispatchGuard Guard;
  for (uint32_t NumSources :
       {63u, 64u, 65u, 127u, 128u, 129u, 511u, 512u, 513u}) {
    const uint32_t N = NumSources + 40;
    Graph G(N);
    std::mt19937 Rng(NumSources);
    std::uniform_int_distribution<uint32_t> Sink(NumSources, N - 1);
    for (uint32_t S = 0; S != NumSources; ++S) {
      G.addEdge(S, Sink(Rng));
      G.addEdge(S, Sink(Rng));
    }
    for (uint32_t Node = NumSources; Node + 1 != N; ++Node)
      if (Rng() % 2)
        G.addEdge(Node, Node + 1);
    const CsrGraph Csr = CsrGraph::freeze(G);
    std::vector<uint32_t> Sources(NumSources);
    std::iota(Sources.begin(), Sources.end(), 0);
    const uint32_t LaneWords = ReachabilityKernel::laneWordsFor(NumSources);

    ASSERT_TRUE(simd::setActiveIsa(simd::KernelIsa::Scalar));
    const std::vector<uint64_t> Reference =
        sweepBitset(Csr, Sources, LaneWords);

    // BFS-anchor a sample of lanes in the scalar reference: first, last,
    // and the word-boundary lanes of the final sweep.
    {
      ReachabilityKernel Kernel(Csr, LaneWords);
      const uint32_t LastBase =
          (NumSources - 1) / Kernel.laneCount() * Kernel.laneCount();
      const uint32_t Count = NumSources - LastBase;
      ASSERT_TRUE(Kernel.sweep(Sources.data() + LastBase, Count));
      for (uint32_t Lane : {0u, Count / 2, Count - 1}) {
        const std::vector<bool> Oracle =
            G.reachableFrom(Sources[LastBase + Lane]);
        for (uint32_t Node = 0; Node != N; ++Node)
          EXPECT_EQ(Kernel.bit(Node, Lane), Oracle[Node])
              << NumSources << " sources, lane " << Lane << " node " << Node;
      }
    }

    for (simd::KernelIsa Isa : availableIsas()) {
      ASSERT_TRUE(simd::setActiveIsa(Isa));
      EXPECT_EQ(sweepBitset(Csr, Sources, LaneWords), Reference)
          << NumSources << " sources under " << simd::isaName(Isa);
    }
  }
}

TEST(SimdKernelTest, NarrowRowsUnderEveryIsa) {
  // L in {1,2,4,8} crossed with every ISA on one fixed graph: the
  // dispatch switch in the sweep variants has a case per row width, and
  // each must agree with the others about lanes they share.
  DispatchGuard Guard;
  std::mt19937 Rng(7003);
  Graph G = randomGraph(Rng, false);
  const CsrGraph Csr = CsrGraph::freeze(G);
  const std::vector<uint32_t> Sources = allNodes(G);
  const size_t Lanes = std::min<size_t>(Sources.size(), 64);

  ASSERT_TRUE(simd::setActiveIsa(simd::KernelIsa::Scalar));
  ReachabilityKernel Ref(Csr, 1);
  ASSERT_TRUE(Ref.sweep(Sources.data(), static_cast<uint32_t>(Lanes)));
  for (uint32_t LaneWords : {1u, 2u, 4u, 8u})
    for (simd::KernelIsa Isa : availableIsas()) {
      ASSERT_TRUE(simd::setActiveIsa(Isa));
      ReachabilityKernel Kernel(Csr, LaneWords);
      ASSERT_TRUE(Kernel.sweep(Sources.data(), static_cast<uint32_t>(Lanes)));
      for (uint32_t Node = 0; Node != G.numNodes(); ++Node)
        EXPECT_EQ(Kernel.mask(Node), Ref.mask(Node))
            << "L=" << LaneWords << " isa " << simd::isaName(Isa) << " node "
            << Node;
    }
}
