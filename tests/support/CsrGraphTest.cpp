//===- tests/support/CsrGraphTest.cpp - CSR freeze + kernel tests ---------===//
//
// Part of the wiresort project. Pins the bit-parallel reachability kernel
// (support/CsrGraph.h) to the per-source BFS oracle Graph::reachableFrom:
// on every graph, for every source, the kernel's lane must equal the BFS
// set bit for bit. Randomized coverage spans 200+ seeded DAGs and cyclic
// graphs; directed cases cover the empty graph, self-loops, and the
// 63/64/65-source chunk boundaries.
//
//===----------------------------------------------------------------------===//

#include "support/CsrGraph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

using namespace wiresort;

namespace {

/// Sweeps \p Sources through the kernel in 64-wide chunks and checks each
/// lane against a fresh Graph::reachableFrom of its source.
void expectKernelMatchesBfs(const Graph &G,
                            const std::vector<uint32_t> &Sources,
                            CsrGraph::Edges Dirs = CsrGraph::ForwardAndReverse) {
  const CsrGraph Csr = CsrGraph::freeze(G, Dirs);
  ReachabilityKernel Kernel(Csr);
  for (size_t Base = 0; Base < Sources.size();
       Base += ReachabilityKernel::WordBits) {
    const uint32_t Count = static_cast<uint32_t>(std::min<size_t>(
        ReachabilityKernel::WordBits, Sources.size() - Base));
    Kernel.sweep(Sources.data() + Base, Count);
    for (uint32_t K = 0; K != Count; ++K) {
      const uint32_t Src = Sources[Base + K];
      const std::vector<bool> Oracle = G.reachableFrom(Src);
      for (uint32_t Node = 0; Node != G.numNodes(); ++Node)
        EXPECT_EQ((Kernel.mask(Node) >> K) & 1, Oracle[Node] ? 1u : 0u)
            << "source " << Src << " node " << Node << " lane " << K;
    }
  }
}

/// All nodes of \p G as sources.
std::vector<uint32_t> allNodes(const Graph &G) {
  std::vector<uint32_t> Nodes(G.numNodes());
  std::iota(Nodes.begin(), Nodes.end(), 0);
  return Nodes;
}

Graph randomGraph(std::mt19937 &Rng, bool Dag) {
  std::uniform_int_distribution<uint32_t> NodeCount(1, 70);
  const uint32_t N = NodeCount(Rng);
  Graph G(N);
  std::uniform_int_distribution<uint32_t> Node(0, N - 1);
  std::uniform_int_distribution<uint32_t> EdgeCount(0, 3 * N);
  // DAG mode orients edges along a random node permutation, not along
  // node ids: acyclic by construction yet full of descending-id edges,
  // so the freeze cannot take its ascending-ids shortcut and the repair
  // ordering gets exercised with a large repair set.
  std::vector<uint32_t> Pos(N);
  std::iota(Pos.begin(), Pos.end(), 0);
  std::shuffle(Pos.begin(), Pos.end(), Rng);
  for (uint32_t I = 0, E = EdgeCount(Rng); I != E; ++I) {
    uint32_t From = Node(Rng), To = Node(Rng);
    if (Dag) {
      if (Pos[From] == Pos[To])
        continue;
      if (Pos[From] > Pos[To])
        std::swap(From, To);
    }
    G.addEdge(From, To);
  }
  return G;
}

} // namespace

TEST(CsrGraphTest, EmptyGraphFreezes) {
  Graph G(0);
  CsrGraph Csr = CsrGraph::freeze(G);
  EXPECT_EQ(Csr.numNodes(), 0u);
  EXPECT_EQ(Csr.numEdges(), 0u);
  EXPECT_EQ(Csr.numComponents(), 0u);
  // A kernel over the empty graph accepts an empty sweep.
  ReachabilityKernel Kernel(Csr);
  Kernel.sweep(nullptr, 0);
}

TEST(CsrGraphTest, CsrMirrorsAdjacencyAndCachesEdgeCount) {
  Graph G(5);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 2); // Cycle.
  G.addEdge(4, 4); // Self-loop.
  G.addEdge(0, 1); // Parallel edge survives the freeze.
  CsrGraph Csr = CsrGraph::freeze(G);
  EXPECT_EQ(Csr.numNodes(), 5u);
  EXPECT_EQ(Csr.numEdges(), G.numEdges());

  for (uint32_t Node = 0; Node != 5; ++Node) {
    std::vector<uint32_t> Succs(Csr.successors(Node).begin(),
                                Csr.successors(Node).end());
    EXPECT_EQ(Succs, G.successors(Node)) << "node " << Node;
  }
  // Reverse CSR: predecessors of each node, as a multiset.
  std::vector<uint32_t> PredsOf1(Csr.predecessors(1).begin(),
                                 Csr.predecessors(1).end());
  EXPECT_EQ(PredsOf1, (std::vector<uint32_t>{0, 0}));
  std::vector<uint32_t> PredsOf2(Csr.predecessors(2).begin(),
                                 Csr.predecessors(2).end());
  std::sort(PredsOf2.begin(), PredsOf2.end());
  EXPECT_EQ(PredsOf2, (std::vector<uint32_t>{0, 3}));
  EXPECT_TRUE(Csr.predecessors(0).empty());
}

TEST(CsrGraphTest, AcyclicGraphsHaveIdentityCondensation) {
  // Acyclic freezes never run Tarjan: every node is its own component —
  // both on the ascending-ids shortcut and on the Kahn path.
  Graph Ascending(4);
  Ascending.addEdge(0, 1);
  Ascending.addEdge(1, 2);
  Ascending.addEdge(0, 3);
  Graph Shuffled(4); // Descending-id edges force the repair ordering.
  Shuffled.addEdge(3, 1);
  Shuffled.addEdge(1, 0);
  Shuffled.addEdge(3, 2);
  for (const Graph *G : {&Ascending, &Shuffled}) {
    CsrGraph Csr = CsrGraph::freeze(*G);
    EXPECT_TRUE(Csr.isAcyclic());
    EXPECT_EQ(Csr.numComponents(), 4u);
    for (uint32_t Node = 0; Node != 4; ++Node)
      EXPECT_EQ(Csr.componentOf(Node), Node);
    expectKernelMatchesBfs(*G, allNodes(*G));
  }
}

TEST(CsrGraphTest, NearSortedGraphRepairsDescendingTail) {
  // Mostly-ascending netlist shape: a long ascending chain plus a couple
  // of descending edges whose targets have further successors, so the
  // repair set is a small non-trivial region rather than the whole graph.
  Graph G(8);
  for (uint32_t Node = 0; Node != 5; ++Node)
    G.addEdge(Node, Node + 1);
  G.addEdge(6, 2); // Descending; 2's downstream chain joins the repair set.
  G.addEdge(7, 0); // Descending onto the chain head.
  G.addEdge(5, 7); // Ascending feed into a descending-edge source.
  CsrGraph Csr = CsrGraph::freeze(G);
  EXPECT_FALSE(Csr.isAcyclic()); // 0..5 -> 7 -> 0 closes a cycle.

  Graph H(8);
  for (uint32_t Node = 0; Node != 5; ++Node)
    H.addEdge(Node, Node + 1);
  H.addEdge(6, 2); // Descending but acyclic: 2 never reaches 6.
  H.addEdge(6, 7);
  CsrGraph HCsr = CsrGraph::freeze(H);
  EXPECT_TRUE(HCsr.isAcyclic());
  expectKernelMatchesBfs(H, allNodes(H));
}

TEST(CsrGraphTest, ForwardOnlyFreezeMatchesBfs) {
  // Skipping the reverse column fill must not change any closure result,
  // acyclic or cyclic.
  std::mt19937 Rng(303);
  for (int Trial = 0; Trial != 20; ++Trial) {
    Graph G = randomGraph(Rng, Trial % 2 == 0);
    expectKernelMatchesBfs(G, allNodes(G), CsrGraph::ForwardOnly);
  }
}

TEST(CsrGraphTest, ComponentsGroupTheCycle) {
  Graph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 1);
  G.addEdge(2, 3);
  CsrGraph Csr = CsrGraph::freeze(G);
  EXPECT_FALSE(Csr.isAcyclic());
  EXPECT_EQ(Csr.numComponents(), 3u);
  EXPECT_EQ(Csr.componentOf(1), Csr.componentOf(2));
  EXPECT_NE(Csr.componentOf(0), Csr.componentOf(1));
  // Tarjan ids are reverse-topological: successors get smaller ids.
  EXPECT_LT(Csr.componentOf(3), Csr.componentOf(1));
  EXPECT_LT(Csr.componentOf(1), Csr.componentOf(0));
  EXPECT_EQ(Csr.componentNodes(Csr.componentOf(1)).size(), 2u);
}

TEST(CsrGraphTest, SelfLoopGraphMatchesBfs) {
  Graph G(3);
  G.addEdge(0, 0);
  G.addEdge(0, 1);
  expectKernelMatchesBfs(G, allNodes(G));
}

TEST(CsrGraphTest, SingleNodeNoEdgesReachesOnlyItself) {
  Graph G(1);
  expectKernelMatchesBfs(G, allNodes(G));
}

TEST(CsrGraphTest, ChunkBoundarySourceCounts) {
  // 63, 64, and 65 sources: one partial word, one exactly full word, and
  // a full word plus a one-lane second sweep. A layered fan graph gives
  // every source a distinct closure so lane mix-ups cannot cancel out.
  for (uint32_t NumSources : {63u, 64u, 65u}) {
    const uint32_t N = NumSources + 40;
    Graph G(N);
    std::mt19937 Rng(NumSources);
    std::uniform_int_distribution<uint32_t> Sink(NumSources, N - 1);
    for (uint32_t S = 0; S != NumSources; ++S) {
      G.addEdge(S, Sink(Rng));
      G.addEdge(S, Sink(Rng));
    }
    for (uint32_t Node = NumSources; Node + 1 != N; ++Node)
      if (Rng() % 2)
        G.addEdge(Node, Node + 1);
    std::vector<uint32_t> Sources(NumSources);
    std::iota(Sources.begin(), Sources.end(), 0);
    expectKernelMatchesBfs(G, Sources);
  }
}

TEST(CsrGraphTest, ScratchReuseAcrossSweepsIsClean) {
  // A second sweep over disjoint sources must not inherit lanes from the
  // first: sweep once from a node reaching everything, then from an
  // isolated node, and demand an empty lane everywhere else.
  Graph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  CsrGraph Csr = CsrGraph::freeze(G);
  ReachabilityKernel Kernel(Csr);
  const uint32_t First[] = {0};
  Kernel.sweep(First, 1);
  EXPECT_EQ(Kernel.mask(2), 1u);
  const uint32_t Second[] = {3};
  Kernel.sweep(Second, 1);
  EXPECT_EQ(Kernel.mask(0), 0u);
  EXPECT_EQ(Kernel.mask(2), 0u);
  EXPECT_EQ(Kernel.mask(3), 1u);
}

TEST(CsrGraphTest, RandomDagsMatchPerSourceBfs) {
  std::mt19937 Rng(101);
  for (int Trial = 0; Trial != 100; ++Trial) {
    Graph G = randomGraph(Rng, /*Dag=*/true);
    expectKernelMatchesBfs(G, allNodes(G));
  }
}

TEST(CsrGraphTest, RandomCyclicGraphsMatchPerSourceBfs) {
  std::mt19937 Rng(202);
  for (int Trial = 0; Trial != 100; ++Trial) {
    Graph G = randomGraph(Rng, /*Dag=*/false);
    expectKernelMatchesBfs(G, allNodes(G));
  }
}

TEST(CsrGraphTest, DenseStronglyConnectedGraphSharesClosure) {
  // One big SCC: every node reaches every node, so after any sweep every
  // node's mask must carry every seeded lane.
  const uint32_t N = 80;
  Graph G(N);
  for (uint32_t I = 0; I != N; ++I)
    G.addEdge(I, (I + 1) % N);
  CsrGraph Csr = CsrGraph::freeze(G);
  EXPECT_EQ(Csr.numComponents(), 1u);
  ReachabilityKernel Kernel(Csr);
  std::vector<uint32_t> Sources(ReachabilityKernel::WordBits);
  std::iota(Sources.begin(), Sources.end(), 0);
  Kernel.sweep(Sources.data(), ReachabilityKernel::WordBits);
  for (uint32_t Node = 0; Node != N; ++Node)
    EXPECT_EQ(Kernel.mask(Node), ~uint64_t{0});
}
