//===- tests/support/WireTest.cpp - Wire framing unit tests ---------------===//
//
// Part of the wiresort project. The wire format (support/Wire.h,
// docs/FORMATS.md) carries summaries across three boundaries — sidecar
// files, the summary cache, and the shard pipe — so this suite pins the
// framing contract itself: varint edges, string interning under
// incremental flushing, per-record checksum enforcement, truncation
// detection, forward-compat skipping, and the Diag payload codec.
//
//===----------------------------------------------------------------------===//

#include "support/Wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace wiresort::support;
using namespace wiresort::support::wire;

namespace {

/// A fresh single-record stream around \p Fill, returned whole.
template <typename FillFn> std::string oneRecord(RecordKind K, FillFn Fill) {
  Writer W;
  W.beginStream(StreamKind::Summaries, 1);
  W.beginRecord(K);
  Fill(W);
  W.endRecord();
  W.finish();
  return W.take();
}

/// Reads the header and skips the StreamBegin record, leaving \p R
/// positioned on the first payload record.
void skipPreamble(Reader &R) {
  ASSERT_TRUE(R.readHeader());
  Reader::Record Rec;
  ASSERT_EQ(R.next(Rec), Reader::Item::Record);
  ASSERT_EQ(Rec.Kind, RecordKind::StreamBegin);
}

} // namespace

TEST(WireTest, HeaderRoundTripsAndRejectsDamage) {
  Writer W;
  W.finish();
  std::string Bytes = W.take();
  ASSERT_GE(Bytes.size(), 5u);
  EXPECT_EQ(static_cast<unsigned char>(Bytes[0]), SniffByte);
  EXPECT_EQ(Bytes.compare(1, 3, "WSB"), 0);

  {
    Reader R(Bytes);
    EXPECT_TRUE(R.readHeader());
  }
  { // Too short.
    Reader R(std::string_view(Bytes).substr(0, 3));
    std::string Why;
    EXPECT_FALSE(R.readHeader(&Why));
    EXPECT_FALSE(Why.empty());
  }
  { // Wrong magic.
    std::string Bad = Bytes;
    Bad[1] = 'X';
    Reader R(Bad);
    std::string Why;
    EXPECT_FALSE(R.readHeader(&Why));
    EXPECT_NE(Why.find("magic"), std::string::npos);
  }
  { // Future container version.
    std::string Bad = Bytes;
    Bad[4] = static_cast<char>(FormatVersion + 1);
    Reader R(Bad);
    std::string Why;
    EXPECT_FALSE(R.readHeader(&Why));
    EXPECT_NE(Why.find("version"), std::string::npos);
  }
}

TEST(WireTest, VarintEdgeValuesRoundTrip) {
  const uint64_t Values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             0x7fffffffull,
                             0x80000000ull,
                             0xffffffffffffffffull,
                             0x8000000000000000ull};
  std::string Bytes = oneRecord(RecordKind::ModuleSummary, [&](Writer &W) {
    for (uint64_t V : Values)
      W.putVarint(V);
    W.putFixed64(0x0123456789abcdefull);
  });

  Reader R(Bytes);
  skipPreamble(R);
  Reader::Record Rec;
  ASSERT_EQ(R.next(Rec), Reader::Item::Record);
  Reader::Cursor C(Rec, R);
  for (uint64_t V : Values) {
    uint64_t Got = 0;
    ASSERT_TRUE(C.getVarint(Got));
    EXPECT_EQ(Got, V);
  }
  uint64_t F = 0;
  ASSERT_TRUE(C.getFixed64(F));
  EXPECT_EQ(F, 0x0123456789abcdefull);
  EXPECT_TRUE(C.atEnd());
  EXPECT_EQ(R.next(Rec), Reader::Item::End);
}

TEST(WireTest, StringsAreInternedOncePerStream) {
  Writer W;
  W.beginStream(StreamKind::Summaries, 1);
  for (int I = 0; I != 3; ++I) {
    W.beginRecord(RecordKind::ModuleSummary);
    W.putString("repeated_name");
    W.putString("other");
    W.endRecord();
  }
  W.finish();
  std::string Bytes = W.take();

  // The same id comes back every time, and the stream carries each
  // distinct string exactly once.
  EXPECT_EQ(Bytes.find("repeated_name"), Bytes.rfind("repeated_name"));

  Reader R(Bytes);
  skipPreamble(R);
  Reader::Record Rec;
  for (int I = 0; I != 3; ++I) {
    ASSERT_EQ(R.next(Rec), Reader::Item::Record);
    Reader::Cursor C(Rec, R);
    std::string_view A, B;
    ASSERT_TRUE(C.getString(A));
    ASSERT_TRUE(C.getString(B));
    EXPECT_EQ(A, "repeated_name");
    EXPECT_EQ(B, "other");
  }
  EXPECT_EQ(R.next(Rec), Reader::Item::End);
}

TEST(WireTest, IncrementalTakeProducesOneValidStream) {
  // The shard workers drain the writer record by record into a pipe;
  // the concatenation of the takes must equal a stream built in one
  // piece, string table flushes landing before the records that use
  // them.
  Writer W;
  W.beginStream(StreamKind::Shard, 1);
  std::string Joined = W.take();
  for (int I = 0; I != 4; ++I) {
    W.beginRecord(RecordKind::ShardModule);
    W.putVarint(static_cast<uint64_t>(I));
    W.putString(I % 2 ? "odd" : "even");
    W.endRecord();
    Joined += W.take();
  }
  W.finish();
  Joined += W.take();

  Reader R(Joined);
  skipPreamble(R);
  Reader::Record Rec;
  for (int I = 0; I != 4; ++I) {
    ASSERT_EQ(R.next(Rec), Reader::Item::Record) << "record " << I;
    ASSERT_EQ(Rec.Kind, RecordKind::ShardModule);
    Reader::Cursor C(Rec, R);
    uint64_t Id = 0;
    std::string_view S;
    ASSERT_TRUE(C.getVarint(Id));
    ASSERT_TRUE(C.getString(S));
    EXPECT_EQ(Id, static_cast<uint64_t>(I));
    EXPECT_EQ(S, I % 2 ? "odd" : "even");
  }
  EXPECT_EQ(R.next(Rec), Reader::Item::End);
}

TEST(WireTest, EveryFlippedBitIsCaught) {
  std::string Bytes = oneRecord(RecordKind::ModuleSummary, [](Writer &W) {
    W.putVarint(42);
    W.putString("victim");
    W.putFixed64(7);
  });

  // Flip every bit of every byte past the 5-byte header: the reader
  // must never hand back an intact-looking record with wrong content —
  // each mutation yields Corrupt/Truncated/End-of-something, or decodes
  // to the original values (a flip confined to, e.g., the StreamEnd
  // count that still checksums is impossible; CRC covers everything).
  for (size_t I = 5; I != Bytes.size(); ++I) {
    for (int Bit = 0; Bit != 8; ++Bit) {
      std::string Mutant = Bytes;
      Mutant[I] = static_cast<char>(Mutant[I] ^ (1u << Bit));
      Reader R(Mutant);
      if (!R.readHeader())
        continue;
      Reader::Record Rec;
      bool SawDamage = false;
      for (int Steps = 0; Steps != 8; ++Steps) {
        Reader::Item It = R.next(Rec);
        if (It == Reader::Item::End)
          break;
        if (It != Reader::Item::Record) {
          SawDamage = true;
          break;
        }
      }
      // Either the damage was detected, or the stream still ended
      // cleanly — which the CRC makes astronomically unlikely for a
      // single-bit flip, and never silently alters a payload.
      if (!SawDamage) {
        Reader R2(Mutant);
        skipPreamble(R2);
        ASSERT_EQ(R2.next(Rec), Reader::Item::Record);
        Reader::Cursor C(Rec, R2);
        uint64_t V = 0, F = 0;
        std::string_view S;
        ASSERT_TRUE(C.getVarint(V) && C.getString(S) && C.getFixed64(F))
            << "byte " << I << " bit " << Bit;
        EXPECT_EQ(V, 42u);
        EXPECT_EQ(S, "victim");
        EXPECT_EQ(F, 7u);
      }
    }
  }
}

TEST(WireTest, TruncationIsDetectedAtEveryPrefix) {
  std::string Bytes = oneRecord(RecordKind::ModuleSummary, [](Writer &W) {
    W.putString("abc");
    W.putVarint(999);
  });
  for (size_t N = 5; N != Bytes.size(); ++N) {
    Reader R(std::string_view(Bytes).substr(0, N));
    ASSERT_TRUE(R.readHeader()) << N;
    Reader::Record Rec;
    Reader::Item Last = Reader::Item::Record;
    while (Last == Reader::Item::Record)
      Last = R.next(Rec);
    EXPECT_TRUE(Last == Reader::Item::Truncated ||
                Last == Reader::Item::Exhausted)
        << "prefix " << N << " ended with item "
        << static_cast<int>(Last);
  }
}

TEST(WireTest, UnknownRecordKindsAreReturnedIntactForSkipping) {
  // Forward compat: a reader meeting a record kind from the future must
  // be able to verify its frame and step over it.
  Writer W;
  W.beginStream(StreamKind::Summaries, 1);
  W.beginRecord(static_cast<RecordKind>(200));
  W.putVarint(123);
  W.endRecord();
  W.beginRecord(RecordKind::ModuleSummary);
  W.putVarint(7);
  W.endRecord();
  W.finish();
  std::string Bytes = W.take();

  Reader R(Bytes);
  skipPreamble(R);
  Reader::Record Rec;
  ASSERT_EQ(R.next(Rec), Reader::Item::Record);
  EXPECT_EQ(static_cast<uint8_t>(Rec.Kind), 200);
  ASSERT_EQ(R.next(Rec), Reader::Item::Record);
  EXPECT_EQ(Rec.Kind, RecordKind::ModuleSummary);
  Reader::Cursor C(Rec, R);
  uint64_t V = 0;
  ASSERT_TRUE(C.getVarint(V));
  EXPECT_EQ(V, 7u);
  EXPECT_EQ(R.next(Rec), Reader::Item::End);
}

TEST(WireTest, CursorFailsStickilyOnOverrun) {
  std::string Bytes = oneRecord(RecordKind::ModuleSummary, [](Writer &W) {
    W.putVarint(5);
  });
  Reader R(Bytes);
  skipPreamble(R);
  Reader::Record Rec;
  ASSERT_EQ(R.next(Rec), Reader::Item::Record);
  Reader::Cursor C(Rec, R);
  uint64_t V = 0;
  ASSERT_TRUE(C.getVarint(V));
  EXPECT_TRUE(C.atEnd());
  EXPECT_FALSE(C.getVarint(V)); // Past the end.
  EXPECT_TRUE(C.failed());
  EXPECT_FALSE(C.atEnd()); // Failed is not a clean end.
  uint8_t B = 0;
  EXPECT_FALSE(C.getByte(B)); // Sticky.
}

TEST(WireTest, OutOfRangeStringIdsFailTheCursor) {
  // A record referencing a string id never interned (a misordered or
  // hand-forged stream) must fail the cursor, not fabricate a string.
  Writer W;
  W.beginStream(StreamKind::Summaries, 1);
  W.beginRecord(RecordKind::ModuleSummary);
  W.putVarint(999); // Forged "string id" with no StringTable behind it.
  W.endRecord();
  W.finish();
  std::string Bytes = W.take();

  Reader R(Bytes);
  skipPreamble(R);
  Reader::Record Rec;
  ASSERT_EQ(R.next(Rec), Reader::Item::Record);
  Reader::Cursor C(Rec, R);
  std::string_view S;
  EXPECT_FALSE(C.getString(S));
  EXPECT_TRUE(C.failed());
}

TEST(WireTest, FnvIsSeedChainedFnv1a) {
  // The empty string hashes to the seed (the project-wide basis cache
  // format v2 already used), and hashing is seed-chained — which is
  // what lets the framing fold the kind byte into the payload checksum.
  EXPECT_EQ(fnv1a(""), 1469598103934665603ull);
  EXPECT_EQ(fnv1a("ab"), fnv1a("b", fnv1a("a")));
  EXPECT_EQ(fnv1a("a"), (1469598103934665603ull ^ 'a') * 1099511628211ull);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));    // Sensitivity.
  EXPECT_NE(fnv1a("ab"), fnv1a("ba")); // Order (FNV-1a, not a sum).
}

TEST(WireTest, DiagCodecRoundTripsEveryField) {
  Diag D(DiagCode::WS101_COMB_LOOP, "loop through fifo", Severity::Error);
  D = std::move(D)
          .withLoc(SrcLoc{"top.blif", 42, 7})
          .withHop("u_fifo", "ready_o")
          .withHop("u_alu", "a")
          .withNote("module", "top")
          .withNote("detail", "witness cycle");

  Writer W;
  W.beginStream(StreamKind::Shard, 1);
  W.beginRecord(RecordKind::Diag);
  putDiag(W, D);
  W.endRecord();
  W.finish();
  std::string Bytes = W.take();

  Reader R(Bytes);
  skipPreamble(R);
  Reader::Record Rec;
  ASSERT_EQ(R.next(Rec), Reader::Item::Record);
  ASSERT_EQ(Rec.Kind, RecordKind::Diag);
  Reader::Cursor C(Rec, R);
  Diag Out;
  ASSERT_TRUE(getDiag(C, Out));
  EXPECT_TRUE(C.atEnd());
  EXPECT_EQ(Out, D);
  EXPECT_EQ(renderJson(Out), renderJson(D));
}

TEST(WireTest, DiagCodecRoundTripsHostileStrings) {
  Diag D(DiagCode::WS604_WORKER_PANIC,
         std::string("newline\nquote\"backslash\\tab\tnull\0end", 36),
         Severity::Warning);
  D = std::move(D).withNote("key with spaces", "value=with=equals");

  Writer W;
  W.beginStream(StreamKind::Shard, 1);
  W.beginRecord(RecordKind::Diag);
  putDiag(W, D);
  W.endRecord();
  W.finish();
  std::string Bytes = W.take();

  Reader R(Bytes);
  skipPreamble(R);
  Reader::Record Rec;
  ASSERT_EQ(R.next(Rec), Reader::Item::Record);
  Reader::Cursor C(Rec, R);
  Diag Out;
  ASSERT_TRUE(getDiag(C, Out));
  EXPECT_EQ(Out, D);
}

TEST(WireTest, DiagCodecRejectsMalformedPayloads) {
  // A frame that passes its checksum but holds a bogus diag body (fuzzed
  // or version-skewed) must fail getDiag, never yield a partial diag.
  Writer W;
  W.beginStream(StreamKind::Shard, 1);
  W.beginRecord(RecordKind::Diag);
  W.putVarint(70000); // Diag code out of the WSxxx range.
  W.endRecord();
  W.finish();
  std::string Bytes = W.take();

  Reader R(Bytes);
  skipPreamble(R);
  Reader::Record Rec;
  ASSERT_EQ(R.next(Rec), Reader::Item::Record);
  Reader::Cursor C(Rec, R);
  Diag Out;
  EXPECT_FALSE(getDiag(C, Out));
}

TEST(WireTest, CountersAccumulateAcrossWriteAndRead) {
  internCounters();
  std::string Bytes = oneRecord(RecordKind::ModuleSummary, [](Writer &W) {
    W.putString("counted");
  });
  Reader R(Bytes);
  ASSERT_TRUE(R.readHeader());
  Reader::Record Rec;
  size_t Seen = 0;
  while (R.next(Rec) == Reader::Item::Record)
    ++Seen;
  EXPECT_EQ(Seen, 2u); // StreamBegin + the module record.
  EXPECT_GE(R.recordsRead(), Seen);
}
