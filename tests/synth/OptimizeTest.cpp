//===- tests/synth/OptimizeTest.cpp - Netlist optimization tests ----------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "synth/Optimize.h"

#include "gen/Fifo.h"
#include "gen/LoopInjector.h"
#include "ir/Builder.h"
#include "sim/Simulator.h"
#include "synth/CycleDetect.h"
#include "synth/Lower.h"

#include <gtest/gtest.h>

#include <random>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::synth;

TEST(OptimizeTest, ConstantsFoldThroughGates) {
  Builder B("constfold");
  V A = B.input("a", 1);
  // y = (a & 0) | 1 == 1 regardless of a.
  B.output("y", B.orv(B.andv(A, B.lit(0, 1)), B.lit(1, 1)));
  Module M = B.finish();
  Module Gates = [&] {
    Design D;
    ModuleId Id = D.addModule(std::move(M));
    return lower(D, Id);
  }();

  OptimizeStats Stats = optimize(Gates);
  EXPECT_GT(Stats.GatesFolded, 0u);
  ASSERT_FALSE(Gates.validate().has_value());

  auto S = sim::Simulator::create(Gates);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  S->setInput("a[0]", 0);
  S->evaluate();
  EXPECT_EQ(S->value("y[0]"), 1u);
  S->setInput("a[0]", 1);
  S->evaluate();
  EXPECT_EQ(S->value("y[0]"), 1u);
}

TEST(OptimizeTest, DeadGatesRemoved) {
  Builder B("dead");
  V A = B.input("a", 8);
  V Unused = B.add(A, B.lit(5, 8)); // Feeds nothing.
  (void)Unused;
  B.output("y", B.notv(A));
  Module M = B.finish();
  Module Gates = [&] {
    Design D;
    ModuleId Id = D.addModule(std::move(M));
    return lower(D, Id);
  }();

  size_t Before = Gates.Nets.size();
  OptimizeStats Stats = optimize(Gates);
  EXPECT_GT(Stats.GatesRemoved, 0u);
  EXPECT_LT(Gates.Nets.size(), Before);
  ASSERT_FALSE(Gates.validate().has_value());
}

TEST(OptimizeTest, OptimizationPreservesBehavior) {
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo({8, 2, true}));
  Module Reference = lower(D, Id);
  Module Optimized = Reference;
  optimize(Optimized);
  ASSERT_FALSE(Optimized.validate().has_value());

  auto RefSim = sim::Simulator::create(Reference);
  ASSERT_TRUE(RefSim.hasValue()) << RefSim.describe();
  auto OptSim = sim::Simulator::create(Optimized);
  ASSERT_TRUE(OptSim.hasValue()) << OptSim.describe();

  std::mt19937 Rng(42);
  for (int Cycle = 0; Cycle != 100; ++Cycle) {
    for (WireId In : Reference.Inputs) {
      uint64_t Bit = Rng() & 1;
      RefSim->setInput(Reference.wire(In).Name, Bit);
      OptSim->setInput(Reference.wire(In).Name, Bit);
    }
    RefSim->step();
    OptSim->step();
    for (WireId Out : Reference.Outputs)
      EXPECT_EQ(RefSim->value(Reference.wire(Out).Name),
                OptSim->value(Reference.wire(Out).Name))
          << Reference.wire(Out).Name << " cycle " << Cycle;
  }
}

TEST(OptimizeTest, BreakLoopsSilentlyHidesTheBug) {
  // The Section 2 hazard reproduced: a looped design "successfully"
  // optimizes into a clean netlist, and post-optimization cycle
  // detection reports nothing.
  Design D;
  ModuleId F = D.addModule(gen::makeFifo({8, 2, true}));
  Circuit Circ = gen::buildLoopedRing(D, {F, F}, "ring");
  ModuleId Top = Circ.seal();
  Module Gates = lower(D, Top);
  ASSERT_TRUE(detectCycles(Gates).HasLoop);

  OptimizeOptions Opts;
  Opts.BreakLoops = true;
  OptimizeStats Stats = optimize(Gates, Opts);
  EXPECT_GT(Stats.LoopsBroken, 0u);
  EXPECT_FALSE(detectCycles(Gates).HasLoop); // The bug is now invisible.
  ASSERT_FALSE(Gates.validate().has_value());
}

TEST(OptimizeTest, MuxWithKnownSelectFolds) {
  Builder B("muxfold");
  V A = B.input("a", 1);
  V Bv = B.input("b", 1);
  B.output("y", B.mux(B.lit(1, 1), A, Bv)); // Always a.
  Module Gates = [&] {
    Design D;
    ModuleId Id = D.addModule(B.finish());
    return lower(D, Id);
  }();
  // Mux with constant select does not fold to a constant, but behavior
  // must be preserved regardless.
  optimize(Gates);
  auto S = sim::Simulator::create(Gates);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  S->setInput("a[0]", 1);
  S->setInput("b[0]", 0);
  S->evaluate();
  EXPECT_EQ(S->value("y[0]"), 1u);
}
