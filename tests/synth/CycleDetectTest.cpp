//===- tests/synth/CycleDetectTest.cpp - Netlist cycle detection ----------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "synth/CycleDetect.h"

#include "gen/Fifo.h"
#include "gen/LoopInjector.h"
#include "ir/Builder.h"
#include "synth/Lower.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::ir;

TEST(CycleDetectTest, CleanFifoHasNoLoop) {
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo({8, 2, true}));
  Module Gates = synth::lower(D, Id);
  auto R = synth::detectCycles(Gates);
  EXPECT_FALSE(R.HasLoop);
  EXPECT_GT(R.NumGates, 0u);
}

TEST(CycleDetectTest, DirectCombLoopFound) {
  Module M("loopy");
  WireId A = M.addWire("a", WireKind::Basic, 1);
  WireId B = M.addWire("b", WireKind::Basic, 1);
  WireId In = M.addInput("x", 1);
  WireId Out = M.addOutput("y", 1);
  M.addNet(Op::And, {B, In}, A);
  M.addNet(Op::Buf, {A}, B);
  M.addNet(Op::Buf, {A}, Out);
  auto R = synth::detectCycles(M);
  EXPECT_TRUE(R.HasLoop);
  ASSERT_TRUE(R.Diags.hasError());
  EXPECT_EQ(R.Diags[0].witness().size(), 2u);
}

TEST(CycleDetectTest, RegisterBreaksLoop) {
  Module M("regloop");
  WireId A = M.addWire("a", WireKind::Basic, 1);
  WireId Q = M.addWire("q", WireKind::Reg, 1);
  WireId In = M.addInput("x", 1);
  WireId Out = M.addOutput("y", 1);
  M.addNet(Op::And, {Q, In}, A);
  M.addRegister(A, Q);
  M.addNet(Op::Buf, {A}, Out);
  EXPECT_FALSE(synth::detectCycles(M).HasLoop);
}

TEST(CycleDetectTest, AsyncMemoryEdgeParticipates) {
  // raddr <- f(rdata) is a combinational loop through an async memory.
  Module M("memloop");
  WireId RAddr = M.addWire("raddr", WireKind::Basic, 4);
  WireId RData = M.addWire("rdata", WireKind::Basic, 4);
  WireId WAddr = M.addInput("waddr", 4);
  WireId WData = M.addInput("wdata", 4);
  WireId Wen = M.addInput("wen", 1);
  WireId Out = M.addOutput("y", 4);
  Memory Mem;
  Mem.Name = "m";
  Mem.SyncRead = false;
  Mem.AddrWidth = 4;
  Mem.DataWidth = 4;
  Mem.RAddr = RAddr;
  Mem.RData = RData;
  Mem.WAddr = WAddr;
  Mem.WData = WData;
  Mem.WEnable = Wen;
  M.addMemory(Mem);
  M.addNet(Op::Not, {RData}, RAddr);
  M.addNet(Op::Buf, {RData}, Out);
  EXPECT_TRUE(synth::detectCycles(M).HasLoop);
}

TEST(CycleDetectTest, InjectedRingLoopSurvivesLowering) {
  // The Table 3 pipeline: inject a loop at module level, seal, lower,
  // and the baseline finds it at gate level.
  Design D;
  ModuleId F1 = D.addModule(gen::makeFifo({8, 2, false}));
  ModuleId F2 = D.addModule(gen::makeFifo({8, 2, true}));
  Circuit Circ = gen::buildLoopedRing(D, {F1, F2}, "ring2");
  ModuleId Top = Circ.seal();
  Module Gates = synth::lower(D, Top);
  auto R = synth::detectCycles(Gates);
  EXPECT_TRUE(R.HasLoop);
}

TEST(CycleDetectTest, OpenChainHasNoLoop) {
  Design D;
  ModuleId F1 = D.addModule(gen::makeFifo({8, 2, false}));
  ModuleId F2 = D.addModule(gen::makeFifo({8, 2, true}));
  Circuit Circ = gen::buildOpenChain(D, {F1, F2}, "chain2");
  ModuleId Top = Circ.seal();
  Module Gates = synth::lower(D, Top);
  EXPECT_FALSE(synth::detectCycles(Gates).HasLoop);
}
