//===- tests/synth/LowerTest.cpp - Lowering correctness tests -------------===//
//
// Part of the wiresort project. The lowered netlist must compute exactly
// what the RTL computes; these tests co-simulate both forms.
//
//===----------------------------------------------------------------------===//

#include "synth/Lower.h"

#include "gen/Fifo.h"
#include "ir/Builder.h"
#include "sim/Simulator.h"
#include "analysis/SortInference.h"
#include "gen/LoopInjector.h"
#include "synth/Flatten.h"

#include <gtest/gtest.h>

#include <random>

using namespace wiresort;
using namespace wiresort::ir;

namespace {

/// Simulates \p M (RTL) and its lowering side by side on random inputs
/// for several evaluation rounds and cycles, comparing every output.
void coSimulate(Design &D, ModuleId Id, unsigned Cycles, uint32_t Seed) {
  Module Rtl = synth::inlineInstances(D, Id);
  Module Gates = synth::lower(D, Id);
  ASSERT_FALSE(Gates.validate().has_value());

  auto RtlSim = sim::Simulator::create(Rtl);
  ASSERT_TRUE(RtlSim.hasValue()) << RtlSim.describe();
  auto GateSim = sim::Simulator::create(Gates);
  ASSERT_TRUE(GateSim.hasValue()) << GateSim.describe();

  std::mt19937 Rng(Seed);
  for (unsigned Cycle = 0; Cycle != Cycles; ++Cycle) {
    for (WireId In : Rtl.Inputs) {
      const Wire &W = Rtl.wire(In);
      uint64_t Mask = W.Width >= 64 ? ~0ull : ((1ull << W.Width) - 1);
      uint64_t Value = Rng() & Mask;
      RtlSim->setInput(W.Name, Value);
      for (uint16_t Bit = 0; Bit != W.Width; ++Bit)
        GateSim->setInput(W.Name + "[" + std::to_string(Bit) + "]",
                          (Value >> Bit) & 1);
    }
    RtlSim->evaluate();
    GateSim->evaluate();
    for (WireId Out : Rtl.Outputs) {
      const Wire &W = Rtl.wire(Out);
      uint64_t Bits = 0;
      for (uint16_t Bit = 0; Bit != W.Width; ++Bit)
        Bits |= GateSim->value(W.Name + "[" + std::to_string(Bit) + "]")
                << Bit;
      EXPECT_EQ(RtlSim->value(W.Name), Bits)
          << "output " << W.Name << " at cycle " << Cycle;
    }
    RtlSim->step();
    GateSim->step();
  }
}

ModuleId addBuilt(Design &D, Module M) { return D.addModule(std::move(M)); }

} // namespace

TEST(LowerTest, ArithmeticDatapathEquivalence) {
  Design D;
  Builder B("datapath");
  V A = B.input("a", 16);
  V Bv = B.input("b", 16);
  V Sel = B.input("sel", 1);
  V Sum = B.add(A, Bv);
  V Diff = B.sub(A, Bv);
  B.output("y", B.mux(Sel, Sum, Diff));
  B.output("flags", B.concat({B.eq(A, Bv), B.lt(A, Bv), B.xorr(A)}));
  ModuleId Id = addBuilt(D, B.finish());
  coSimulate(D, Id, 50, 1);
}

TEST(LowerTest, RegisterPipelineEquivalence) {
  Design D;
  Builder B("pipe");
  V A = B.input("a", 8);
  V R1 = B.reg(A, "r1");
  V R2 = B.reg(B.inc(R1), "r2");
  B.output("y", R2);
  ModuleId Id = addBuilt(D, B.finish());
  coSimulate(D, Id, 30, 2);
}

TEST(LowerTest, AsyncMemoryEquivalence) {
  Design D;
  Builder B("ram");
  V RAddr = B.input("raddr", 3);
  V WAddr = B.input("waddr", 3);
  V WData = B.input("wdata", 8);
  V Wen = B.input("wen", 1);
  B.output("y", B.memory("m", /*SyncRead=*/false, RAddr, WAddr, WData,
                         Wen));
  ModuleId Id = addBuilt(D, B.finish());
  coSimulate(D, Id, 100, 3);
}

TEST(LowerTest, SyncMemoryEquivalence) {
  Design D;
  Builder B("sram");
  V RAddr = B.input("raddr", 3);
  V WAddr = B.input("waddr", 3);
  V WData = B.input("wdata", 8);
  V Wen = B.input("wen", 1);
  B.output("y", B.memory("m", /*SyncRead=*/true, RAddr, WAddr, WData,
                         Wen));
  ModuleId Id = addBuilt(D, B.finish());
  coSimulate(D, Id, 100, 4);
}

TEST(LowerTest, FifoEquivalence) {
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo({8, 2, /*Forwarding=*/true}));
  coSimulate(D, Id, 200, 5);
}

TEST(LowerTest, HierarchyInlined) {
  Design D;
  Builder Sub("sub");
  V A = Sub.input("a", 4);
  Sub.output("y", Sub.notv(A));
  ModuleId SubId = D.addModule(Sub.finish());

  Builder Top("top");
  V X = Top.input("x", 4);
  auto O1 = Top.instantiate(D, SubId, "u0", {{"a", X}});
  auto O2 = Top.instantiate(D, SubId, "u1", {{"a", O1.at("y")}});
  Top.output("y", O2.at("y"));
  ModuleId TopId = D.addModule(Top.finish());

  Module Gates = synth::lower(D, TopId);
  EXPECT_TRUE(Gates.Instances.empty());
  coSimulate(D, TopId, 20, 6);
}

TEST(LowerTest, OnlyPrimitiveOpsSurvive) {
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo({16, 3, false}));
  Module Gates = synth::lower(D, Id);
  for (const Net &N : Gates.Nets)
    EXPECT_TRUE(isPrimitiveOp(N.Operation)) << opName(N.Operation);
  for (const Wire &W : Gates.Wires)
    EXPECT_EQ(W.Width, 1);
  EXPECT_TRUE(Gates.Memories.empty());
}

TEST(LowerTest, GateCountGrowsWithWidth) {
  // The Table 3 premise: netlists blow up relative to RTL.
  Design D;
  gen::FifoParams Small{8, 2, false};
  gen::FifoParams Big{32, 4, false};
  ModuleId SmallId = D.addModule(gen::makeFifo(Small));
  ModuleId BigId = D.addModule(gen::makeFifo(Big));
  size_t SmallGates = synth::primitiveGateCount(D, SmallId);
  size_t BigGates = synth::primitiveGateCount(D, BigId);
  EXPECT_GT(BigGates, 4 * SmallGates);
  // And dwarfs the RTL net count.
  EXPECT_GT(SmallGates, D.module(SmallId).Nets.size() * 4);
}

TEST(LowerTest, HierarchicalGateCountCountsUniqueDefsOnce) {
  Design D;
  Builder Sub("leaf");
  V A = Sub.input("a", 8);
  Sub.output("y", Sub.add(A, Sub.lit(1, 8)));
  ModuleId SubId = D.addModule(Sub.finish());

  Builder Top("top2");
  V X = Top.input("x", 8);
  auto O1 = Top.instantiate(D, SubId, "u0", {{"a", X}});
  auto O2 = Top.instantiate(D, SubId, "u1", {{"a", O1.at("y")}});
  Top.output("y", O2.at("y"));
  ModuleId TopId = D.addModule(Top.finish());

  size_t Flat = synth::primitiveGateCount(D, TopId);
  size_t Hier = synth::hierarchicalGateCount(D, TopId);
  // Flat counts the adder twice; hierarchical once.
  EXPECT_GT(Flat, Hier);
}

TEST(LowerTest, HierarchicalLoweringPreservesBehavior) {
  // lowerHierarchical + inline must equal flat lowering behaviorally.
  Design D;
  Builder Leaf("leafh");
  V A = Leaf.input("a", 8);
  V Bv = Leaf.input("b", 8);
  Leaf.output("y", Leaf.add(A, Bv));
  ModuleId LeafId = D.addModule(Leaf.finish());

  Builder Top("toph");
  V X = Top.input("x", 8);
  auto O1 = Top.instantiate(D, LeafId, "u0", {{"a", X}, {"b", Top.lit(3, 8)}});
  auto O2 = Top.instantiate(D, LeafId, "u1",
                            {{"a", O1.at("y")}, {"b", X}});
  Top.output("y", Top.reg(O2.at("y"), "r"));
  ModuleId TopId = D.addModule(Top.finish());

  synth::HierLowered Hier = synth::lowerHierarchical(D, TopId);
  ASSERT_FALSE(Hier.Design.validate().has_value());
  // Hierarchy preserved: two instances of one lowered definition.
  EXPECT_EQ(Hier.Design.module(Hier.Top).Instances.size(), 2u);

  Module HierFlat = synth::inlineInstances(Hier.Design, Hier.Top);
  Module Flat = synth::lower(D, TopId);

  auto S1 = sim::Simulator::create(HierFlat);
  ASSERT_TRUE(S1.hasValue()) << S1.describe();
  auto S2 = sim::Simulator::create(Flat);
  ASSERT_TRUE(S2.hasValue()) << S2.describe();
  for (int Cycle = 0; Cycle != 32; ++Cycle) {
    for (int Bit = 0; Bit != 8; ++Bit) {
      uint64_t Value = (Cycle * 37 >> Bit) & 1;
      S1->setInput("x[" + std::to_string(Bit) + "]", Value);
      S2->setInput("x[" + std::to_string(Bit) + "]", Value);
    }
    S1->step();
    S2->step();
    for (int Bit = 0; Bit != 8; ++Bit)
      EXPECT_EQ(S1->value("y[" + std::to_string(Bit) + "]"),
                S2->value("y[" + std::to_string(Bit) + "]"))
          << "bit " << Bit << " cycle " << Cycle;
  }
}

TEST(LowerTest, HierarchicalLoweringAnalyzable) {
  // Summaries over the hierarchically lowered design find injected
  // loops exactly like the flat baseline (the Table 3 equivalence).
  Design D;
  ModuleId F1 = D.addModule(gen::makeFifo({8, 2, false}));
  ModuleId F2 = D.addModule(gen::makeFifo({8, 2, true}));

  // Loop-free composition first.
  {
    Design DChain = D;
    ir::Circuit Chain =
        gen::buildOpenChain(DChain, {F1, F2}, "chainh");
    ModuleId Top = Chain.seal();
    synth::HierLowered Hier = synth::lowerHierarchical(DChain, Top);
    std::map<ModuleId, analysis::ModuleSummary> Out;
    EXPECT_FALSE(analysis::analyzeDesign(Hier.Design, Out).hasError());
  }
  // Looped composition must be rejected during summary computation.
  {
    Design DRing = D;
    ir::Circuit Ring = gen::buildLoopedRing(DRing, {F1, F2}, "ringh");
    ModuleId Top = Ring.seal();
    synth::HierLowered Hier = synth::lowerHierarchical(DRing, Top);
    std::map<ModuleId, analysis::ModuleSummary> Out;
    support::Status Loop = analysis::analyzeDesign(Hier.Design, Out);
    EXPECT_TRUE(Loop.hasError());
  }
}

TEST(LowerTest, InstanceCounting) {
  Design D;
  ModuleId Leaf = [&] {
    Builder B("leafc");
    V A = B.input("a", 1);
    B.output("y", B.notv(A));
    return D.addModule(B.finish());
  }();
  ModuleId Mid = [&] {
    Builder B("midc");
    V A = B.input("a", 1);
    auto O1 = B.instantiate(D, Leaf, "l0", {{"a", A}});
    auto O2 = B.instantiate(D, Leaf, "l1", {{"a", O1.at("y")}});
    B.output("y", O2.at("y"));
    return D.addModule(B.finish());
  }();
  ModuleId Top = [&] {
    Builder B("topc");
    V A = B.input("a", 1);
    auto O1 = B.instantiate(D, Mid, "m0", {{"a", A}});
    auto O2 = B.instantiate(D, Mid, "m1", {{"a", O1.at("y")}});
    B.output("y", O2.at("y"));
    return D.addModule(B.finish());
  }();
  // 2 mids + 2*2 leaves = 6 total instances; 2 unique defs below top.
  EXPECT_EQ(synth::totalInstanceCount(D, Top), 6u);
  EXPECT_EQ(synth::uniqueModuleCount(D, Top), 2u);
}
