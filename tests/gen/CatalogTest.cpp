//===- tests/gen/CatalogTest.cpp - Corpus-wide sanity tests ---------------===//
//
// Part of the wiresort project. Parameterized over the whole catalog:
// every corpus module must validate, simulate (be loop-free), and
// summarize. This is the Section 5.1 sweep in miniature.
//
//===----------------------------------------------------------------------===//

#include "gen/Catalog.h"

#include "analysis/SortInference.h"
#include "sim/Simulator.h"
#include "synth/CycleDetect.h"
#include "synth/Lower.h"

#include <gtest/gtest.h>

#include <set>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

class CatalogParamTest : public ::testing::TestWithParam<size_t> {
protected:
  static const std::vector<CatalogEntry> &entries() {
    static const std::vector<CatalogEntry> Entries = catalog();
    return Entries;
  }
  const CatalogEntry &entry() const { return entries()[GetParam()]; }
};

std::string paramName(const ::testing::TestParamInfo<size_t> &Info) {
  std::string Name = catalog()[Info.param].Name;
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

} // namespace

TEST_P(CatalogParamTest, ValidatesAndSummarizes) {
  Design D;
  ModuleId Id = D.addModule(entry().Build());
  ASSERT_FALSE(D.validate().has_value());
  std::map<ModuleId, ModuleSummary> Out;
  wiresort::support::Status Loop = analyzeDesign(D, Out);
  ASSERT_FALSE(Loop.hasError()) << Loop.describe();
  // Every port is covered by the summary.
  const Module &M = D.module(Id);
  EXPECT_EQ(Out.at(Id).OutputPortSets.size(), M.Inputs.size());
  EXPECT_EQ(Out.at(Id).InputPortSets.size(), M.Outputs.size());
}

TEST_P(CatalogParamTest, IsSimulatableAndLoopFreeAtGateLevel) {
  Design D;
  ModuleId Id = D.addModule(entry().Build());
  Module Gates = synth::lower(D, Id);
  EXPECT_FALSE(synth::detectCycles(Gates).HasLoop);
  auto S = sim::Simulator::create(Gates);
  EXPECT_TRUE(S.hasValue()) << S.describe();
}

INSTANTIATE_TEST_SUITE_P(Corpus, CatalogParamTest,
                         ::testing::Range<size_t>(0, catalog().size()),
                         paramName);

TEST(CatalogTest, CorpusIsLargeAndUnique) {
  const std::vector<CatalogEntry> Entries = catalog();
  EXPECT_GE(Entries.size(), 100u);
  std::set<std::string> Names;
  for (const CatalogEntry &E : Entries)
    EXPECT_TRUE(Names.insert(E.Name).second)
        << "duplicate corpus module " << E.Name;
}

TEST(CatalogTest, SortDistributionCoversTheTaxonomy) {
  // Table 4's premise: real corpora exercise all four sorts.
  size_t Counts[4] = {0, 0, 0, 0};
  for (const CatalogEntry &E : catalog()) {
    Design D;
    ModuleId Id = D.addModule(E.Build());
    std::map<ModuleId, ModuleSummary> Out;
    ASSERT_FALSE(analyzeDesign(D, Out).hasError());
    const Module &M = D.module(Id);
    for (WireId In : M.Inputs)
      ++Counts[static_cast<int>(Out.at(Id).sortOf(In))];
    for (WireId O : M.Outputs)
      ++Counts[static_cast<int>(Out.at(Id).sortOf(O))];
  }
  EXPECT_GT(Counts[static_cast<int>(Sort::ToSync)], 0u);
  EXPECT_GT(Counts[static_cast<int>(Sort::ToPort)], 0u);
  EXPECT_GT(Counts[static_cast<int>(Sort::FromSync)], 0u);
  EXPECT_GT(Counts[static_cast<int>(Sort::FromPort)], 0u);
}
