//===- tests/gen/GenDeterminismTest.cpp - Same seed, same design ----------===//
//
// Part of the wiresort project. The mega-scale generator's determinism
// contract (gen/MegaScale.h, docs/SCALE.md): generation is a pure
// function of MegaScaleParams. Two builds from the same params — in the
// same process or in two separate wiresort-mega processes — must agree
// on the fingerprint digest, the flat instance count, and the module
// count; a different seed must move the fingerprint. Everything sharding
// proves (byte-identical verdicts across workers) presupposes this:
// fork-mode children regenerate nothing, but the cross-process CLI slice
// mode (`wiresort-check --shard I/N`) and the determinism suites all
// rebuild the design from params and rely on landing on the same bytes.
//
// The cross-process half shells out to the wiresort-mega binary named by
// $WIRESORT_MEGA (wired up by tests/CMakeLists.txt); it skips, not
// fails, when the variable is absent (e.g. running the binary by hand).
//
//===----------------------------------------------------------------------===//

#include "gen/MegaScale.h"

#include "ir/Design.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace wiresort;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

/// Runs \p Cmd and returns its stdout (empty on failure to spawn).
std::string runAndCapture(const std::string &Cmd) {
  std::string Out;
  FILE *Pipe = ::popen(Cmd.c_str(), "r");
  if (!Pipe)
    return Out;
  char Buf[512];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Out.append(Buf, N);
  ::pclose(Pipe);
  return Out;
}

} // namespace

TEST(GenDeterminism, SameParamsSameDesignInProcess) {
  for (const char *Name : {"ci", "ci-loop", "ci-noc", "ci-fabric"}) {
    auto Preset = megaScalePreset(Name);
    ASSERT_TRUE(Preset.has_value()) << Name;
    for (uint64_t Seed : {0ull, 7ull, 0xdeadbeefull}) {
      MegaScaleParams P = *Preset;
      P.Seed = Seed;

      Design A, B;
      MegaScaleDesign RA = buildMegaScale(A, P);
      MegaScaleDesign RB = buildMegaScale(B, P);

      EXPECT_EQ(RA.FlatInstances, RB.FlatInstances)
          << Name << " seed " << Seed;
      EXPECT_EQ(RA.UniqueModules, RB.UniqueModules)
          << Name << " seed " << Seed;
      EXPECT_EQ(A.numModules(), B.numModules())
          << Name << " seed " << Seed;
      EXPECT_EQ(fingerprint(A, RA.Top), fingerprint(B, RB.Top))
          << Name << " seed " << Seed;
    }
  }
}

TEST(GenDeterminism, DifferentSeedDifferentFingerprint) {
  auto Preset = megaScalePreset("ci");
  ASSERT_TRUE(Preset.has_value());
  MegaScaleParams P = *Preset;

  P.Seed = 1;
  Design A;
  MegaScaleDesign RA = buildMegaScale(A, P);
  P.Seed = 2;
  Design B;
  MegaScaleDesign RB = buildMegaScale(B, P);
  EXPECT_NE(fingerprint(A, RA.Top), fingerprint(B, RB.Top));
}

TEST(GenDeterminism, SameParamsSameFingerprintAcrossProcesses) {
  const char *Mega = std::getenv("WIRESORT_MEGA");
  if (!Mega || !*Mega)
    GTEST_SKIP() << "WIRESORT_MEGA not set; run under ctest";

  for (const char *Name : {"ci", "ci-noc", "ci-fabric"}) {
    const std::string Cmd =
        std::string(Mega) + " " + Name + " --seed 42 --fingerprint";
    const std::string First = runAndCapture(Cmd);
    const std::string Second = runAndCapture(Cmd);
    ASSERT_FALSE(First.empty()) << Cmd;
    EXPECT_EQ(First, Second) << Cmd;

    // And the separate process agrees with this process's own build.
    auto Preset = megaScalePreset(Name);
    ASSERT_TRUE(Preset.has_value()) << Name;
    MegaScaleParams P = *Preset;
    P.Seed = 42;
    Design D;
    MegaScaleDesign R = buildMegaScale(D, P);
    char Expect[256];
    std::snprintf(Expect, sizeof(Expect), "%s %llu %zu\n",
                  fingerprint(D, R.Top).c_str(),
                  static_cast<unsigned long long>(R.FlatInstances),
                  static_cast<size_t>(D.numModules()));
    EXPECT_EQ(First, std::string(Expect)) << Cmd;
  }
}
