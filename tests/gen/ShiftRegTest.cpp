//===- tests/gen/ShiftRegTest.cpp - PISO/SIPO behavioral tests ------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "gen/ShiftReg.h"

#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::gen;
using namespace wiresort::ir;
using namespace wiresort::sim;

TEST(PisoTest, DeserializesOneWord) {
  Module M = makePiso({4, 8, /*Fixed=*/false});
  auto S = Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();

  // Idle: ready, not valid.
  S->setInput("valid_i", 0);
  S->setInput("yumi_i", 0);
  S->evaluate();
  EXPECT_EQ(S->value("ready_o"), 1u);
  EXPECT_EQ(S->value("valid_o"), 0u);

  // Load 0xDDCCBBAA: slots come out LSB-first (AA, BB, CC, DD).
  S->setInput("valid_i", 1);
  S->setInput("data_i", 0xDDCCBBAAull);
  S->step();
  S->setInput("valid_i", 0);

  const uint64_t Expected[] = {0xAA, 0xBB, 0xCC, 0xDD};
  for (int Slot = 0; Slot != 4; ++Slot) {
    S->setInput("yumi_i", 0);
    S->evaluate();
    EXPECT_EQ(S->value("valid_o"), 1u) << "slot " << Slot;
    EXPECT_EQ(S->value("data_o"), Expected[Slot]) << "slot " << Slot;
    S->setInput("yumi_i", 1);
    S->step();
  }
  S->setInput("yumi_i", 0);
  S->evaluate();
  EXPECT_EQ(S->value("valid_o"), 0u);
  EXPECT_EQ(S->value("ready_o"), 1u);
}

TEST(PisoTest, PrefixReadyAssertsCombinationallyOnLastYumi) {
  // The Section 5.1 logic: during the final transmit slot, ready_o rises
  // within the same cycle that yumi_i arrives.
  Module M = makePiso({2, 8, /*Fixed=*/false});
  auto S = Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();

  S->setInput("valid_i", 1);
  S->setInput("data_i", 0xBBAA);
  S->setInput("yumi_i", 0);
  S->step();
  S->setInput("valid_i", 0);
  S->setInput("yumi_i", 1);
  S->step(); // Consume slot 0.
  // Now in the last slot: ready_o tracks yumi_i combinationally.
  S->setInput("yumi_i", 0);
  S->evaluate();
  EXPECT_EQ(S->value("ready_o"), 0u);
  S->setInput("yumi_i", 1);
  S->evaluate();
  EXPECT_EQ(S->value("ready_o"), 1u); // Same cycle!
}

TEST(PisoTest, FixedReadyWaitsForTheNextCycle) {
  Module M = makePiso({2, 8, /*Fixed=*/true});
  auto S = Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();

  S->setInput("valid_i", 1);
  S->setInput("data_i", 0xBBAA);
  S->setInput("yumi_i", 0);
  S->step();
  S->setInput("valid_i", 0);
  S->setInput("yumi_i", 1);
  S->step();
  // Last slot, yumi high: the fixed module keeps ready low this cycle.
  S->evaluate();
  EXPECT_EQ(S->value("ready_o"), 0u);
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("ready_o"), 1u); // Only after the edge.
}

TEST(SipoTest, AccumulatesWordsAndPresentsThem) {
  Module M = makeSipo({4, 8});
  auto S = Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();

  const uint64_t Words[] = {0xAA, 0xBB, 0xCC, 0xDD};
  S->setInput("yumi_cnt_i", 0);
  for (int I = 0; I != 3; ++I) {
    S->setInput("valid_i", 1);
    S->setInput("data_i", Words[I]);
    S->evaluate();
    EXPECT_EQ(S->value("valid_o"), 0u) << "word " << I;
    S->step();
  }
  // Fourth word completes the batch combinationally (data_i is to-port).
  S->setInput("data_i", Words[3]);
  S->evaluate();
  EXPECT_EQ(S->value("valid_o"), 1u);
  EXPECT_EQ(S->value("data_o"), 0xDDCCBBAAull);

  // Consumer takes all four: count resets through yumi_cnt_i.
  S->setInput("yumi_cnt_i", 4);
  S->step();
  S->setInput("valid_i", 0);
  S->setInput("yumi_cnt_i", 0);
  S->evaluate();
  EXPECT_EQ(S->value("valid_o"), 0u);
  EXPECT_EQ(S->value("ready_o"), 1u);
}

TEST(SipoTest, ReadyDropsWhenFull) {
  Module M = makeSipo({2, 4});
  auto S = Simulator::create(M);
  ASSERT_TRUE(S.hasValue()) << S.describe();
  S->setInput("yumi_cnt_i", 0);
  S->setInput("valid_i", 1);
  S->setInput("data_i", 1);
  S->step();
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("ready_o"), 0u); // Two words in a 2-slot SIPO.
}
