//===- tests/gen/FifoTest.cpp - FIFO behavioral tests ---------------------===//
//
// Part of the wiresort project. The FIFOs are the paper's running
// example; these tests pin down their cycle-level behavior so the sort
// results rest on hardware that actually works.
//
//===----------------------------------------------------------------------===//

#include "gen/Fifo.h"

#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <deque>
#include <random>

using namespace wiresort;
using namespace wiresort::gen;
using namespace wiresort::ir;
using namespace wiresort::sim;

namespace {

struct FifoHarness {
  Module M;
  support::Expected<Simulator> S;

  explicit FifoHarness(const FifoParams &P)
      : M(makeFifo(P)), S(Simulator::create(M)) {
    EXPECT_TRUE(S.hasValue()) << S.describe();
  }
};

} // namespace

TEST(FifoTest, PushThenPop) {
  FifoHarness H({8, 2, false});
  Simulator &S = *H.S;
  S.setInput("v_i", 1);
  S.setInput("data_i", 0xAB);
  S.setInput("yumi_i", 0);
  S.evaluate();
  EXPECT_EQ(S.value("v_o"), 0u); // Normal FIFO: nothing same-cycle.
  EXPECT_EQ(S.value("ready_o"), 1u);
  S.step();

  S.setInput("v_i", 0);
  S.evaluate();
  EXPECT_EQ(S.value("v_o"), 1u);
  EXPECT_EQ(S.value("data_o"), 0xABu);
  S.setInput("yumi_i", 1);
  S.step();
  S.setInput("yumi_i", 0);
  S.evaluate();
  EXPECT_EQ(S.value("v_o"), 0u); // Drained.
}

TEST(FifoTest, FillsToCapacityThenStalls) {
  FifoHarness H({8, 2, false}); // Capacity 4.
  Simulator &S = *H.S;
  S.setInput("yumi_i", 0);
  for (int I = 0; I != 4; ++I) {
    S.setInput("v_i", 1);
    S.setInput("data_i", I);
    S.evaluate();
    EXPECT_EQ(S.value("ready_o"), 1u) << "push " << I;
    S.step();
  }
  S.evaluate();
  EXPECT_EQ(S.value("ready_o"), 0u); // Full.
  // Pop everything in order.
  S.setInput("v_i", 0);
  for (int I = 0; I != 4; ++I) {
    S.evaluate();
    EXPECT_EQ(S.value("v_o"), 1u);
    EXPECT_EQ(S.value("data_o"), static_cast<uint64_t>(I));
    S.setInput("yumi_i", 1);
    S.step();
  }
  S.setInput("yumi_i", 0);
  S.evaluate();
  EXPECT_EQ(S.value("v_o"), 0u);
}

TEST(FifoTest, ForwardingFifoPassesThroughEmpty) {
  FifoHarness H({8, 2, true});
  Simulator &S = *H.S;
  // Empty queue, data arrives: visible the same cycle (Figure 2).
  S.setInput("v_i", 1);
  S.setInput("data_i", 0x5A);
  S.setInput("yumi_i", 1);
  S.evaluate();
  EXPECT_EQ(S.value("v_o"), 1u);
  EXPECT_EQ(S.value("data_o"), 0x5Au);
  S.step();
  // Consumed in flight: the queue stays empty.
  S.setInput("v_i", 0);
  S.setInput("yumi_i", 0);
  S.evaluate();
  EXPECT_EQ(S.value("v_o"), 0u);
}

TEST(FifoTest, ForwardingFifoBuffersWhenNotTaken) {
  FifoHarness H({8, 2, true});
  Simulator &S = *H.S;
  // Data arrives but downstream is not ready: it must be enqueued.
  S.setInput("v_i", 1);
  S.setInput("data_i", 0x77);
  S.setInput("yumi_i", 0);
  S.evaluate();
  EXPECT_EQ(S.value("v_o"), 1u); // Offered...
  S.step();
  S.setInput("v_i", 0);
  S.evaluate();
  EXPECT_EQ(S.value("v_o"), 1u); // ...and still there next cycle.
  EXPECT_EQ(S.value("data_o"), 0x77u);
}

namespace {

/// Randomized conformance against a std::deque reference model.
void fuzzFifo(const FifoParams &P, uint32_t Seed, int Cycles) {
  FifoHarness H(P);
  Simulator &S = *H.S;
  std::deque<uint64_t> Model;
  const size_t Capacity = size_t(1) << P.DepthLog2;
  std::mt19937 Rng(Seed);

  for (int Cycle = 0; Cycle != Cycles; ++Cycle) {
    uint64_t Push = Rng() & 1;
    uint64_t Pop = Rng() & 1;
    uint64_t Data = Rng() & ((1ull << P.Width) - 1);
    S.setInput("v_i", Push);
    S.setInput("yumi_i", Pop);
    S.setInput("data_i", Data);
    S.evaluate();

    bool Ready = Model.size() < Capacity;
    EXPECT_EQ(S.value("ready_o"), Ready) << "cycle " << Cycle;

    // Expected same-cycle visibility.
    bool Offered;
    uint64_t Offer = 0;
    if (P.Forwarding && Model.empty()) {
      Offered = Push;
      Offer = Data;
    } else {
      Offered = !Model.empty();
      if (Offered)
        Offer = Model.front();
    }
    EXPECT_EQ(S.value("v_o"), Offered) << "cycle " << Cycle;
    if (Offered) {
      EXPECT_EQ(S.value("data_o"), Offer) << "cycle " << Cycle;
    }

    // Commit the reference model with the same rules as the hardware.
    bool Taken = Pop && Offered;
    bool Enq = Push && Ready;
    if (P.Forwarding && Model.empty()) {
      if (Enq && !Taken)
        Model.push_back(Data);
    } else {
      if (Taken)
        Model.pop_front();
      if (Enq)
        Model.push_back(Data);
    }
    S.step();
  }
}

} // namespace

TEST(FifoTest, RandomizedAgainstReferenceModel) {
  fuzzFifo({8, 2, false}, 100, 2000);
  fuzzFifo({8, 2, true}, 101, 2000);
  fuzzFifo({16, 4, false}, 102, 1000);
  fuzzFifo({16, 4, true}, 103, 1000);
  fuzzFifo({1, 1, true}, 104, 1000);
}
