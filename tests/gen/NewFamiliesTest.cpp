//===- tests/gen/NewFamiliesTest.cpp - Newer corpus families --------------===//
//
// Part of the wiresort project. Behavioral and sort checks for the
// catalog families beyond the paper's Table 1 subset.
//
//===----------------------------------------------------------------------===//

#include "gen/Catalog.h"

#include "analysis/SortInference.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

support::Expected<sim::Simulator> simOf(const Module &M) {
  auto S = sim::Simulator::create(M);
  EXPECT_TRUE(S.hasValue()) << S.describe();
  return S;
}

ModuleSummary summarize(const Design &D, ModuleId Id) {
  std::map<ModuleId, ModuleSummary> Out;
  wiresort::support::Status Loop = analyzeDesign(D, Out);
  EXPECT_FALSE(Loop.hasError());
  return Out.at(Id);
}

} // namespace

TEST(SyncFifoTest, TwoCycleReadLatency) {
  // Synchronous read: the word lands in the array at the enqueue edge
  // and in the output register one edge later.
  Module M = makeSyncFifo(8, 2);
  auto S = simOf(M);
  S->setInput("v_i", 1);
  S->setInput("data_i", 0x5C);
  S->setInput("yumi_i", 0);
  S->evaluate();
  EXPECT_EQ(S->value("v_o"), 0u); // Nothing same-cycle.
  S->step();
  S->setInput("v_i", 0);
  S->evaluate();
  EXPECT_EQ(S->value("v_o"), 0u); // Still propagating.
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("v_o"), 1u);
  EXPECT_EQ(S->value("data_o"), 0x5Cu);
  S->setInput("yumi_i", 1);
  S->step();
  S->setInput("yumi_i", 0);
  S->evaluate();
  EXPECT_EQ(S->value("v_o"), 0u); // No stale beat after the last word.
}

TEST(SyncFifoTest, FifoOrderAcrossRefills) {
  Module M = makeSyncFifo(8, 2);
  auto S = simOf(M);
  S->setInput("yumi_i", 0);
  for (uint64_t W : {1, 2, 3}) {
    S->setInput("v_i", 1);
    S->setInput("data_i", W);
    S->step();
  }
  S->setInput("v_i", 0);
  for (uint64_t W : {1, 2, 3}) {
    S->evaluate();
    ASSERT_EQ(S->value("v_o"), 1u);
    EXPECT_EQ(S->value("data_o"), W);
    S->setInput("yumi_i", 1);
    S->step();
    S->setInput("yumi_i", 0);
  }
}

TEST(SyncFifoTest, EveryPortIsSyncSorted) {
  // The whole point of the sync-RAM variant: a universal interface even
  // though a RAM sits on the data path.
  Design D;
  ModuleId Id = D.addModule(makeSyncFifo(8, 2));
  ModuleSummary S = summarize(D, Id);
  const Module &M = D.module(Id);
  for (WireId In : M.Inputs)
    EXPECT_EQ(S.sortOf(In), Sort::ToSync) << M.wire(In).Name;
  for (WireId Out : M.Outputs)
    EXPECT_EQ(S.sortOf(Out), Sort::FromSync) << M.wire(Out).Name;
}

TEST(RegSliceTest, BuffersOneBeat) {
  Module M = makeRegSlice(8);
  auto S = simOf(M);
  S->setInput("v_i", 1);
  S->setInput("data_i", 0x42);
  S->setInput("yumi_i", 0);
  S->evaluate();
  EXPECT_EQ(S->value("ready_o"), 1u);
  EXPECT_EQ(S->value("v_o"), 0u);
  S->step();
  S->setInput("v_i", 0);
  S->evaluate();
  EXPECT_EQ(S->value("v_o"), 1u);
  EXPECT_EQ(S->value("data_o"), 0x42u);
  EXPECT_EQ(S->value("ready_o"), 0u); // Occupied.
  S->setInput("yumi_i", 1);
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("v_o"), 0u);
}

TEST(FunnelTest, EmitsLowThenHighHalf) {
  Module M = makeFunnel(8);
  auto S = simOf(M);
  S->setInput("v_i", 1);
  S->setInput("data_i", 0xBEEF);
  S->setInput("yumi_i", 0);
  S->step();
  S->setInput("v_i", 0);
  S->evaluate();
  EXPECT_EQ(S->value("v_o"), 1u);
  EXPECT_EQ(S->value("data_o"), 0xEFu);
  S->setInput("yumi_i", 1);
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("data_o"), 0xBEu);
  S->step();
  S->setInput("yumi_i", 0);
  S->evaluate();
  EXPECT_EQ(S->value("v_o"), 0u);
}

TEST(EdgeDetectTest, FiresOnRisingEdgeOnly) {
  Module M = makeEdgeDetect();
  auto S = simOf(M);
  S->setInput("d_i", 0);
  S->step();
  S->setInput("d_i", 1);
  S->evaluate();
  EXPECT_EQ(S->value("rise_o"), 1u); // Edge visible combinationally.
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("rise_o"), 0u); // Level, not edge.
  S->setInput("d_i", 0);
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("rise_o"), 0u); // Falling edge ignored.
}

TEST(EdgeDetectTest, InputIsToPortDespiteFeedingState) {
  Design D;
  ModuleId Id = D.addModule(makeEdgeDetect());
  ModuleSummary S = summarize(D, Id);
  const Module &M = D.module(Id);
  EXPECT_EQ(S.sortOf(M.findPort("d_i")), Sort::ToPort);
  EXPECT_EQ(S.sortOf(M.findPort("rise_o")), Sort::FromPort);
}

TEST(OneHotTest, EncodesEverySelect) {
  Module M = makeOneHot(3);
  auto S = simOf(M);
  for (uint64_t Sel = 0; Sel != 8; ++Sel) {
    S->setInput("sel_i", Sel);
    S->evaluate();
    EXPECT_EQ(S->value("onehot_o"), 1ull << Sel) << Sel;
  }
}

TEST(PopcountTest, CountsBits) {
  Module M = makePopcount(16);
  auto S = simOf(M);
  const uint64_t Cases[] = {0x0000, 0xFFFF, 0x8001, 0x1234};
  for (uint64_t Value : Cases) {
    S->setInput("data_i", Value);
    S->evaluate();
    EXPECT_EQ(S->value("count_o"),
              static_cast<uint64_t>(__builtin_popcountll(Value)))
        << Value;
  }
}

TEST(MajorityTest, VotesBitwise) {
  Module M = makeMajority(4);
  auto S = simOf(M);
  S->setInput("a_i", 0b1100);
  S->setInput("b_i", 0b1010);
  S->setInput("c_i", 0b1001);
  S->evaluate();
  EXPECT_EQ(S->value("vote_o"), 0b1000u);
}

TEST(TimerTest, CountsDownAndExpires) {
  Module M = makeTimer(8);
  auto S = simOf(M);
  S->setInput("load_i", 3);
  S->setInput("load_v_i", 1);
  S->step();
  S->setInput("load_v_i", 0);
  for (int I = 0; I != 3; ++I)
    S->step();
  S->step(); // expired_o is registered, one cycle behind count==0.
  S->evaluate();
  EXPECT_EQ(S->value("expired_o"), 1u);
  EXPECT_EQ(S->value("count_o"), 0u);
}

TEST(ChecksumTest, AccumulatesAndClears) {
  Module M = makeChecksum(8);
  auto S = simOf(M);
  S->setInput("clear_i", 0);
  S->setInput("v_i", 1);
  for (uint64_t W : {10, 20, 30}) {
    S->setInput("data_i", W);
    S->step();
  }
  S->evaluate();
  EXPECT_EQ(S->value("sum_o"), 60u);
  S->setInput("clear_i", 1);
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("sum_o"), 0u);
}

TEST(PulseSyncTest, TwoCycleDelay) {
  Module M = makePulseSync();
  auto S = simOf(M);
  S->setInput("d_i", 1);
  S->evaluate();
  EXPECT_EQ(S->value("d_o"), 0u);
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("d_o"), 0u);
  S->step();
  S->evaluate();
  EXPECT_EQ(S->value("d_o"), 1u);
}
