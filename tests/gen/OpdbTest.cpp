//===- tests/gen/OpdbTest.cpp - OPDB stand-in tests -----------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "gen/Opdb.h"

#include "analysis/SortInference.h"
#include "gen/LoopInjector.h"
#include "analysis/WellConnected.h"
#include "sim/Simulator.h"
#include "synth/CycleDetect.h"
#include "synth/Lower.h"

#include <gtest/gtest.h>

#include <set>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::gen;
using namespace wiresort::ir;

TEST(OpdbTest, AllSeventeenBuildAndValidate) {
  Design D;
  std::vector<OpdbEntry> Entries = buildOpdb(D, {/*ShrinkAddrBits=*/6});
  EXPECT_EQ(Entries.size(), 17u);
  ASSERT_FALSE(D.validate().has_value());
  std::set<std::string> Names;
  for (const OpdbEntry &E : Entries)
    EXPECT_TRUE(Names.insert(E.Name).second) << E.Name;
}

TEST(OpdbTest, AllAnalyzeWithoutLoops) {
  Design D;
  std::vector<OpdbEntry> Entries = buildOpdb(D, {/*ShrinkAddrBits=*/6});
  std::map<ModuleId, ModuleSummary> Out;
  wiresort::support::Status Loop = analyzeDesign(D, Out);
  ASSERT_FALSE(Loop.hasError()) << Loop.describe();
  for (const OpdbEntry &E : Entries)
    EXPECT_TRUE(Out.count(E.Top)) << E.Name;
}

TEST(OpdbTest, SharedBankDefinitionsAreReused) {
  // The Table 3 reuse premise: l2 and l15 share sram bank definitions;
  // summaries are computed once per unique definition.
  Design D;
  buildL2(D, {});
  size_t AfterL2 = D.numModules();
  buildL15(D, {});
  // l15 adds itself plus at most the banks l2 did not already create.
  EXPECT_LE(D.numModules(), AfterL2 + 3);
}

TEST(OpdbTest, GateCountsLandInPaperBallpark) {
  // Only the small modules at full scale (the big caches are checked at
  // reduced scale elsewhere; their geometry is exact, 2^12-word banks).
  Design D;
  ModuleId Counter = buildIfuEslCounter(D);
  ModuleId Lfsr = buildIfuEslLfsr(D);
  ModuleId Rtsm = buildIfuEslRtsm(D);
  size_t CounterGates = synth::primitiveGateCount(D, Counter);
  size_t LfsrGates = synth::primitiveGateCount(D, Lfsr);
  size_t RtsmGates = synth::primitiveGateCount(D, Rtsm);
  // Table 2: 310 / 213 / 170 gates. Same order of magnitude.
  EXPECT_GT(CounterGates, 50u);
  EXPECT_LT(CounterGates, 2000u);
  EXPECT_GT(LfsrGates, 20u);
  EXPECT_LT(LfsrGates, 1500u);
  EXPECT_GT(RtsmGates, 50u);
  EXPECT_LT(RtsmGates, 3000u);
}

TEST(OpdbTest, IfuEslIsHierarchical) {
  Design D;
  ModuleId Top = buildIfuEsl(D, {/*ShrinkAddrBits=*/3});
  const Module &M = D.module(Top);
  EXPECT_GE(M.Instances.size(), 8u); // Counter, lfsr, shiftreg, 4 FSMs...
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
}

TEST(OpdbTest, ShrunkDesignsLowerAndStayLoopFree) {
  Design D;
  std::vector<OpdbEntry> Entries = buildOpdb(D, {/*ShrinkAddrBits=*/7});
  for (const OpdbEntry &E : Entries) {
    Module Gates = synth::lower(D, E.Top);
    EXPECT_FALSE(synth::detectCycles(Gates).HasLoop) << E.Name;
  }
}

TEST(OpdbTest, PortCountsScaleLikeTable2) {
  Design D;
  std::vector<OpdbEntry> Entries = buildOpdb(D, {/*ShrinkAddrBits=*/6});
  std::map<std::string, size_t> Ports;
  for (const OpdbEntry &E : Entries)
    Ports[E.Name] = D.module(E.Top).numPorts();
  // sparc_tlu has by far the most ports; the small FSM helpers few.
  EXPECT_GT(Ports["sparc_tlu"], 100u);
  EXPECT_GT(Ports["l15"], 30u);
  EXPECT_LT(Ports["ifu_esl_shiftreg"], 10u);
  EXPECT_LT(Ports["ifu_esl_counter"], 10u);
}

TEST(OpdbTest, LoopInjectionIntoOpdbDetectedModularly) {
  // The full Table 3 flow at reduced scale: inject a ring across several
  // OPDB stand-ins and find it with summaries only.
  Design D;
  OpdbOptions O{/*ShrinkAddrBits=*/7};
  ModuleId Fpu = buildFpu(D, O);
  ModuleId Ffu = buildSparcFfu(D, O);
  ModuleId Exu = buildSparcExu(D, O);
  Circuit Circ = buildLoopedRing(D, {Fpu, Ffu, Exu}, "t3ring");

  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  CircuitCheckResult R = checkCircuit(Circ, Out);
  EXPECT_FALSE(R.WellConnected);

  // And the gate-level baseline agrees.
  ModuleId Top = Circ.seal();
  Module Gates = synth::lower(D, Top);
  EXPECT_TRUE(synth::detectCycles(Gates).HasLoop);
}

// --- Parameterized per-module sweep (reduced scale) -------------------------

class OpdbModuleSweep : public ::testing::TestWithParam<size_t> {
protected:
  static const std::vector<std::string> &names() {
    static const std::vector<std::string> Names = [] {
      Design D;
      std::vector<std::string> Out;
      for (const OpdbEntry &E : buildOpdb(D, {/*ShrinkAddrBits=*/7}))
        Out.push_back(E.Name);
      return Out;
    }();
    return Names;
  }
};

TEST_P(OpdbModuleSweep, LowersSimulatesAndSummarizes) {
  Design D;
  std::vector<OpdbEntry> Entries = buildOpdb(D, {/*ShrinkAddrBits=*/7});
  const OpdbEntry &E = Entries[GetParam()];

  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const Module &M = D.module(E.Top);
  EXPECT_EQ(Out.at(E.Top).OutputPortSets.size(), M.Inputs.size());
  EXPECT_EQ(Out.at(E.Top).InputPortSets.size(), M.Outputs.size());

  Module Gates = synth::lower(D, E.Top);
  EXPECT_FALSE(synth::detectCycles(Gates).HasLoop);
  auto S = sim::Simulator::create(Gates);
  EXPECT_TRUE(S.hasValue()) << S.describe();
}

INSTANTIATE_TEST_SUITE_P(
    AllSeventeen, OpdbModuleSweep,
    ::testing::Range<size_t>(0, 17),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      Design D;
      return gen::buildOpdb(D, {7})[Info.param].Name;
    });
