//===- tests/driver/ServedRobustnessTest.cpp - Overload-safety suite ------===//
//
// Part of the wiresort project. The overload-safety acceptance bar for
// the serving layer (docs/SERVING.md degradation matrix): transport
// deadlines reclaim workers from stalled peers, the byte cap bounds
// what an oversize request can make the daemon buffer, admission
// control sheds with retryable Busy instead of queueing without bound,
// graceful drain finishes inside its deadline while health keeps
// answering, and the retrying client converges on every transient
// schedule. Ends in a 200-seed overload soak mixing all of it.
//
//===----------------------------------------------------------------------===//

#include "driver/Check.h"
#include "driver/Serve.h"

#include "support/FailPoint.h"
#include "support/Socket.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <sys/socket.h>
#include <sys/stat.h>
#include <thread>
#include <vector>

using namespace wiresort;
using namespace wiresort::driver;
using support::Deadline;
namespace sock = support::sock;

namespace {

const char *LoopFree = ".model passthrough\n"
                       ".inputs a\n"
                       ".outputs y\n"
                       ".names a y\n"
                       "1 1\n"
                       ".end\n";

CheckRequest inlineRequest(const char *Text, const std::string &Name) {
  CheckRequest R;
  R.DesignText = Text;
  R.HasInlineText = true;
  R.DesignName = Name;
  R.Req.OutputFormat = analysis::Format::Json;
  return R;
}

/// Arms a spec and guarantees disarm on scope exit (the registry is
/// process-global; a leaked schedule poisons later tests).
struct ArmedSchedule {
  explicit ArmedSchedule(const std::string &Spec, uint64_t Seed = 0) {
    EXPECT_FALSE(support::failpoint::configure(Spec, Seed).hasError());
  }
  ~ArmedSchedule() { support::failpoint::disarmAll(); }
};

} // namespace

// --- Transport-level: the byte cap and the deadlines ------------------------

TEST(ServedRobustness, ReadAllBuffersAtMostCapPlusOneByte) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  // A 10x-oversize message: the reader must stop at cap + 1 buffered
  // bytes — the one extra byte is the oversize witness — instead of
  // swallowing all of it (the oversize-request memory hole).
  constexpr uint64_t Cap = 4096;
  std::string Big(10 * Cap, 'x');
  std::thread Writer([&] {
    ASSERT_FALSE(sock::writeAll(Fds[1], Big).hasError());
    sock::shutdownWrite(Fds[1]);
  });
  auto Got = sock::readAll(Fds[0], nullptr, Cap);
  ASSERT_TRUE(Got.hasValue()) << Got.describe();
  EXPECT_EQ(Got->size(), Cap + 1);
  Writer.join();
  sock::closeFd(Fds[0]);
  sock::closeFd(Fds[1]);
}

TEST(ServedRobustness, ReadAllUnboundedCapDoesNotWrapToZero) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  // MaxBytes == UINT64_MAX (--max-request-bytes at the type maximum):
  // the cap + 1 witness budget must saturate, not wrap to 0 — a wrapped
  // budget returns an instant empty "success" and every request decodes
  // as malformed.
  std::thread Writer([&] {
    ASSERT_FALSE(sock::writeAll(Fds[1], "hello").hasError());
    sock::shutdownWrite(Fds[1]);
  });
  auto Got = sock::readAll(Fds[0], nullptr, UINT64_MAX);
  ASSERT_TRUE(Got.hasValue()) << Got.describe();
  EXPECT_EQ(*Got, "hello");
  Writer.join();
  sock::closeFd(Fds[0]);
  sock::closeFd(Fds[1]);
}

TEST(ServedRobustness, ReadAllDeadlineExpiresOnStalledPeer) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  // Half a message, then silence: the slow-loris shape. The read must
  // come back WS606 with the bytes buffered so far, not hang.
  ASSERT_FALSE(sock::writeAll(Fds[1], "half").hasError());
  Deadline DL = Deadline::afterMs(150);
  auto Got = sock::readAll(Fds[0], &DL);
  ASSERT_FALSE(Got.hasValue());
  const support::Diag &D = Got.diags().firstError();
  EXPECT_EQ(D.code(), support::DiagCode::WS606_TRANSPORT_TIMEOUT);
  EXPECT_EQ(D.note("bytes"), "4");
  sock::closeFd(Fds[0]);
  sock::closeFd(Fds[1]);
}

TEST(ServedRobustness, BackoffIsDeterministicAndBounded) {
  sock::RetryPolicy P;
  P.BaseMs = 10;
  P.CapMs = 200;
  P.Seed = 42;
  uint64_t Prev = 0;
  std::vector<uint64_t> First;
  for (unsigned A = 0; A < 16; ++A) {
    Prev = sock::nextBackoffMs(P, Prev, A);
    EXPECT_GE(Prev, P.BaseMs);
    EXPECT_LE(Prev, P.CapMs);
    First.push_back(Prev);
  }
  // Same (seed, attempt, prev) stream → same schedule, byte for byte.
  Prev = 0;
  for (unsigned A = 0; A < 16; ++A) {
    Prev = sock::nextBackoffMs(P, Prev, A);
    EXPECT_EQ(Prev, First[A]);
  }
  // A different seed draws a different schedule somewhere.
  P.Seed = 43;
  Prev = 0;
  bool Differs = false;
  for (unsigned A = 0; A < 16; ++A) {
    Prev = sock::nextBackoffMs(P, Prev, A);
    Differs |= Prev != First[A];
  }
  EXPECT_TRUE(Differs);
}

TEST(ServedRobustness, ConnectErrnosAreMachineReadable) {
  // Stale socket path: ENOENT, immediately fatal through dialWithRetry
  // is wrong — it's the daemon-restart window — so it retries, then
  // reports the errno and the attempt count.
  sock::RetryPolicy P;
  P.MaxAttempts = 3;
  P.BaseMs = 1;
  P.CapMs = 2;
  auto NoEnt =
      sock::dialWithRetry(::testing::TempDir() + "/no_such_daemon.sock", P);
  ASSERT_FALSE(NoEnt.hasValue());
  EXPECT_EQ(NoEnt.diags().firstError().note("errno"), "ENOENT");
  EXPECT_EQ(NoEnt.diags().firstError().note("attempts"), "3");

  // Refused connect (simulated by the client.connect.refuse site so no
  // half-bound socket is needed): distinct errno, same retry behavior.
  ArmedSchedule Arm("client.connect.refuse=always");
  auto Refused = sock::dialWithRetry("/tmp/irrelevant.sock", P);
  ASSERT_FALSE(Refused.hasValue());
  EXPECT_EQ(Refused.diags().firstError().note("errno"), "ECONNREFUSED");
  EXPECT_EQ(Refused.diags().firstError().note("attempts"), "3");
}

TEST(ServedRobustness, DialWithRetryRecoversFromTransientRefusal) {
  ServeOptions Opts;
  Opts.SocketPath = ::testing::TempDir() + "/robust_dial.sock";
  Server S(Opts);
  ASSERT_FALSE(S.start().hasError());
  // First attempt refused (simulated), second reaches the live daemon.
  ArmedSchedule Arm("client.connect.refuse=nth(1)");
  sock::RetryPolicy P;
  P.MaxAttempts = 3;
  P.BaseMs = 1;
  P.CapMs = 2;
  auto Fd = sock::dialWithRetry(Opts.SocketPath, P);
  ASSERT_TRUE(Fd.hasValue()) << Fd.describe();
  sock::closeFd(*Fd);
  S.stop();
  S.wait();
}

// --- Server-side: oversize, stalls, admission, drain ------------------------

TEST(ServedRobustness, OversizeRequestRejectedWithBoundedBuffering) {
  ServeOptions Opts;
  Opts.SocketPath = ::testing::TempDir() + "/robust_oversize.sock";
  Opts.MaxRequestBytes = 4096;
  Server S(Opts);
  ASSERT_FALSE(S.start().hasError());

  // A request ~10x over the cap: the server stops reading at cap + 1,
  // rejects with the same byte-stable message as ever, and the client
  // still gets that verdict even though its write broke early.
  CheckRequest R = inlineRequest(LoopFree, "oversize.blif");
  R.DesignText = std::string(10 * Opts.MaxRequestBytes, 'x');
  Response Res = requestOnce(Opts.SocketPath, Method::Check, R);
  ASSERT_TRUE(Res.Ok) << support::renderText(Res.Transport);
  EXPECT_TRUE(Res.Rejected);
  EXPECT_FALSE(Res.Busy);
  EXPECT_EQ(Res.ExitCode, 2);
  EXPECT_NE(Res.Err.find("request exceeds 4096 bytes"), std::string::npos)
      << Res.Err;

  // The daemon is unharmed: a normal request on the same socket works.
  Response Again = requestOnce(Opts.SocketPath, Method::Check,
                               inlineRequest(LoopFree, "ok.blif"));
  ASSERT_TRUE(Again.Ok) << support::renderText(Again.Transport);
  EXPECT_EQ(Again.ExitCode, 0);
  S.stop();
  S.wait();
}

TEST(ServedRobustness, StalledReaderIsReclaimedAndCounted) {
  ServeOptions Opts;
  Opts.SocketPath = ::testing::TempDir() + "/robust_stall.sock";
  Opts.ReadTimeoutMs = 200;
  Opts.Workers = 2;
  Server S(Opts);
  ASSERT_FALSE(S.start().hasError());

  // Half a frame, then stall without half-closing: the worker must be
  // reclaimed at the read deadline — and it answers TimedOut, because a
  // slow writer may still be a live reader.
  auto Fd = sock::connectTo(Opts.SocketPath);
  ASSERT_TRUE(Fd.hasValue()) << Fd.describe();
  std::string Frame = encodeRequest(Method::Check,
                                    inlineRequest(LoopFree, "stall.blif"));
  ASSERT_FALSE(
      sock::writeAll(*Fd, std::string_view(Frame).substr(0, Frame.size() / 2))
          .hasError());
  auto Answer = sock::readAll(*Fd); // Blocks until the server times us out.
  sock::closeFd(*Fd);
  ASSERT_TRUE(Answer.hasValue()) << Answer.describe();
  Response Res;
  std::string Why;
  ASSERT_TRUE(decodeResponse(*Answer, Res, Why)) << Why;
  EXPECT_TRUE(Res.TimedOut);
  EXPECT_EQ(Res.ExitCode, 2);
  EXPECT_EQ(S.timedOutCount(), 1u);

  // Subsequent requests are unaffected: the worker came back.
  Response After = requestOnce(Opts.SocketPath, Method::Check,
                               inlineRequest(LoopFree, "after.blif"));
  ASSERT_TRUE(After.Ok) << support::renderText(After.Transport);
  EXPECT_EQ(After.ExitCode, 0);
  EXPECT_EQ(S.timedOutCount(), 1u);
  S.stop();
  S.wait();
}

TEST(ServedRobustness, AdmissionShedsBusyAndRetryConverges) {
  ServeOptions Opts;
  Opts.SocketPath = ::testing::TempDir() + "/robust_shed.sock";
  Server S(Opts);
  ASSERT_FALSE(S.start().hasError());

  CheckRequest R = inlineRequest(LoopFree, "shed.blif");
  {
    // Queue "full" (simulated): the request is shed before a byte of it
    // is read — Busy, retryable, counted.
    ArmedSchedule Arm("serve.admit.full=nth(1)");
    Response Shed = requestOnce(Opts.SocketPath, Method::Check, R);
    ASSERT_TRUE(Shed.Ok) << support::renderText(Shed.Transport);
    EXPECT_TRUE(Shed.Busy);
    EXPECT_FALSE(Shed.Rejected);
    EXPECT_EQ(Shed.ExitCode, 2);
    EXPECT_NE(Shed.Err.find("busy"), std::string::npos);
  }
  EXPECT_EQ(S.shedCount(), 1u);

  {
    // Same schedule through the retrying client: attempt 1 is shed,
    // attempt 2 lands — the Busy path converges without operator help.
    ArmedSchedule Arm("serve.admit.full=nth(1)");
    sock::RetryPolicy P;
    P.MaxAttempts = 4;
    P.BaseMs = 1;
    P.CapMs = 4;
    Response Res = requestWithRetry(Opts.SocketPath, Method::Check, R, P);
    ASSERT_TRUE(Res.Ok) << support::renderText(Res.Transport);
    EXPECT_FALSE(Res.Busy);
    EXPECT_EQ(Res.ExitCode, 0);
  }
  EXPECT_EQ(S.shedCount(), 2u);
  EXPECT_GE(S.admittedCount(), 1u);
  S.stop();
  S.wait();
}

TEST(ServedRobustness, GracefulDrainBoundedWithHealthAnswering) {
  ServeOptions Opts;
  Opts.SocketPath = ::testing::TempDir() + "/robust_drain.sock";
  Opts.Workers = 3;
  Opts.DrainDeadlineMs = 600;
  Server S(Opts);
  ASSERT_FALSE(S.start().hasError());

  // Health before any trouble: ready.
  Response Ready = requestOnce(Opts.SocketPath, Method::Health);
  ASSERT_TRUE(Ready.Ok) << support::renderText(Ready.Transport);
  EXPECT_NE(Ready.Out.find("\"state\":\"ready\""), std::string::npos);

  // One worker wedges after its work (the serve.drain.hang site) so the
  // drain cannot finish politely; the kill token must reclaim it.
  support::failpoint::disarmAll();
  ASSERT_FALSE(
      support::failpoint::configure("serve.drain.hang=nth(1)", 0).hasError());
  std::thread Hung([&] {
    Response Res = requestOnce(Opts.SocketPath, Method::Check,
                               inlineRequest(LoopFree, "hang.blif"));
    // The response is written once the drain releases the worker; the
    // request itself ran to completion before the hang.
    EXPECT_TRUE(Res.Ok) << support::renderText(Res.Transport);
  });
  // Give the hung request time to be admitted and parked.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  auto T0 = std::chrono::steady_clock::now();
  std::thread Drainer([&] { S.drain(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Mid-drain: health still answers, and says so; work is shed Busy.
  EXPECT_TRUE(S.draining());
  Response Mid = requestOnce(Opts.SocketPath, Method::Health);
  ASSERT_TRUE(Mid.Ok) << support::renderText(Mid.Transport);
  EXPECT_NE(Mid.Out.find("\"state\":\"draining\""), std::string::npos);
  Response Work = requestOnce(Opts.SocketPath, Method::Check,
                              inlineRequest(LoopFree, "late.blif"));
  ASSERT_TRUE(Work.Ok) << support::renderText(Work.Transport);
  EXPECT_TRUE(Work.Busy);

  Drainer.join();
  Hung.join();
  auto DrainMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
  // Bounded: polite deadline + grace, never a wedge.
  EXPECT_LT(DrainMs, 3 * 600);
  EXPECT_TRUE(S.stopRequested());
  support::failpoint::disarmAll();
  S.wait();
  struct stat St;
  EXPECT_NE(::stat(Opts.SocketPath.c_str(), &St), 0);
}

TEST(ServedRobustness, SlowComputeStillGetsItsResponseWritten) {
  ServeOptions Opts;
  Opts.SocketPath = ::testing::TempDir() + "/robust_slow_write.sock";
  Opts.WriteTimeoutMs = 100;
  Server S(Opts);
  ASSERT_FALSE(S.start().hasError());

  // Park the worker *after* its handle() finishes, for longer than the
  // write budget (the serve.drain.hang site, released by stop()). The
  // write deadline must start when the response is ready, not when the
  // request arrived — otherwise any compute that outlasts
  // WriteTimeoutMs reaches writeAll already expired, the response is
  // silently discarded, and the client sees a non-retryable empty read.
  ArmedSchedule Arm("serve.drain.hang=nth(1)");
  std::thread Client([&] {
    Response Res = requestOnce(Opts.SocketPath, Method::Check,
                               inlineRequest(LoopFree, "slow.blif"));
    EXPECT_TRUE(Res.Ok) << support::renderText(Res.Transport);
    EXPECT_EQ(Res.ExitCode, 0);
  });
  // Let the request be admitted, handled, and parked well past the
  // 100ms write budget before releasing it.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  S.stop();
  Client.join();
  S.wait();
}

TEST(ServedRobustness, ShutdownAcknowledgedDuringDrain) {
  ServeOptions Opts;
  Opts.SocketPath = ::testing::TempDir() + "/robust_drain_shutdown.sock";
  Opts.Workers = 2;
  Opts.DrainDeadlineMs = 2000;
  Server S(Opts);
  ASSERT_FALSE(S.start().hasError());

  // Park one worker so the drain stays in its polite phase while we
  // probe it.
  ArmedSchedule Arm("serve.drain.hang=nth(1)");
  std::thread Hung([&] {
    Response Res = requestOnce(Opts.SocketPath, Method::Check,
                               inlineRequest(LoopFree, "hang.blif"));
    EXPECT_TRUE(Res.Ok) << support::renderText(Res.Transport);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread Drainer([&] { S.drain(); });
  while (!S.draining())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Shutdown against a draining daemon is acknowledged Ok, not shed
  // Busy: the daemon *is* stopping, and a Busy answer would send
  // `wiresort-client --shutdown` into retries and a lying exit 7.
  Response Sd = requestOnce(Opts.SocketPath, Method::Shutdown);
  ASSERT_TRUE(Sd.Ok) << support::renderText(Sd.Transport);
  EXPECT_FALSE(Sd.Busy);
  EXPECT_EQ(Sd.ExitCode, 0);
  EXPECT_NE(Sd.Out.find("shutting down"), std::string::npos);

  Drainer.join();
  Hung.join();
  EXPECT_TRUE(S.stopRequested());
  S.wait();
}

// --- The 200-schedule overload soak -----------------------------------------

TEST(ServedRobustness, OverloadSoak200Schedules) {
  // Cold CLI baseline once: the byte-identity bar every surviving
  // daemon answer is held to after its storm.
  CheckRequest Golden = inlineRequest(LoopFree, "soak_ok.blif");
  CheckResult Cold = runCheck(Golden);
  ASSERT_EQ(Cold.ExitCode, 0);

  constexpr unsigned Threads = 3, PerThread = 5;
  for (uint64_t Seed = 0; Seed < 200; ++Seed) {
    ServeOptions Opts;
    Opts.SocketPath = ::testing::TempDir() + "/robust_soak.sock";
    Opts.Workers = 3;
    Opts.MaxPending = 2;
    Opts.ReadTimeoutMs = 2000;
    Opts.WriteTimeoutMs = 2000;
    Opts.DrainDeadlineMs = 100;
    Server S(Opts);
    ASSERT_FALSE(S.start().hasError()) << "seed " << Seed;

    // Five schedule families, every fault site in the serving matrix;
    // prob() streams replay per (spec, seed).
    const char *Specs[] = {
        "serve.admit.full=prob(0.4)",
        "serve.read.stall=prob(0.3)",
        "serve.response.drop=prob(0.2),serve.admit.full=prob(0.2)",
        "client.connect.refuse=prob(0.4)",
        "serve.response.truncate=prob(0.2),engine.cancel=prob(0.3)",
    };
    ASSERT_FALSE(
        support::failpoint::configure(Specs[Seed % 5], Seed).hasError());
    const bool MidDrain = Seed % 7 == 3;

    std::atomic<size_t> BadShape{0};
    auto client = [&](unsigned Tid) {
      for (unsigned I = 0; I < PerThread; ++I) {
        sock::RetryPolicy P;
        P.MaxAttempts = 4;
        P.BaseMs = 1;
        P.CapMs = 4;
        P.Seed = Seed * 31 + Tid * 7 + I;
        Response Res = requestWithRetry(
            Opts.SocketPath, Method::Check,
            inlineRequest(LoopFree, "soak_ok.blif"), P,
            /*TransportTimeoutMs=*/500);
        if (!Res.Ok) {
          // Only acceptable as transport damage with evidence attached
          // (dropped/truncated responses, a drained socket, a client-
          // side timeout) — never a silent nothing.
          if (!Res.Transport.hasError())
            BadShape.fetch_add(1);
          continue;
        }
        if (Res.ExitCode < 0 || Res.ExitCode > 3) {
          BadShape.fetch_add(1);
          continue;
        }
        // Busy / TimedOut / Rejected are documented retryable-or-
        // fail-closed dispositions; a ran-to-verdict response must
        // carry the verdict line.
        if (!Res.Busy && !Res.TimedOut && !Res.Rejected &&
            Res.ExitCode != 2 && Res.ExitCode != 3 &&
            Res.Out.find("\"verdict\":") == std::string::npos)
          BadShape.fetch_add(1);
      }
    };
    std::vector<std::thread> Clients;
    for (unsigned T = 0; T < Threads; ++T)
      Clients.emplace_back(client, T);
    std::thread Drainer;
    if (MidDrain)
      Drainer = std::thread([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        S.drain();
        S.wait();
      });
    for (std::thread &T : Clients)
      T.join();
    support::failpoint::disarmAll();
    EXPECT_EQ(BadShape.load(), 0u) << "seed " << Seed;

    if (!MidDrain) {
      // The daemon is never wedged: after the storm, a disarmed request
      // converges and its bytes are identical to the solo CLI.
      sock::RetryPolicy P;
      P.MaxAttempts = 5;
      P.BaseMs = 1;
      P.CapMs = 4;
      P.Seed = Seed;
      Response Warm = requestWithRetry(Opts.SocketPath, Method::Check,
                                       Golden, P, 2000);
      ASSERT_TRUE(Warm.Ok)
          << "seed " << Seed << ": " << support::renderText(Warm.Transport);
      EXPECT_EQ(Warm.ExitCode, Cold.ExitCode) << "seed " << Seed;
      EXPECT_EQ(Warm.Out, Cold.Out) << "seed " << Seed;
      EXPECT_EQ(Warm.Err, Cold.Err) << "seed " << Seed;
      S.stop();
      S.wait();
    } else {
      Drainer.join();
      EXPECT_TRUE(S.stopRequested()) << "seed " << Seed;
    }
    // Every exit path unlinks the socket: no droppings, ever.
    struct stat St;
    EXPECT_NE(::stat(Opts.SocketPath.c_str(), &St), 0) << "seed " << Seed;
  }
}
