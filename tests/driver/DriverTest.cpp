//===- tests/driver/DriverTest.cpp - The check facade + serving layer -----===//
//
// Part of the wiresort project. The driver acceptance bar
// (docs/SERVING.md):
//
//  * resident (CheckService) and one-shot (runCheck) serve byte-identical
//    Out/Err for the same request — the CLI/daemon identity is a library
//    property, not a process-level accident;
//  * a warm re-check of an edited design re-infers only the modules whose
//    structural content (or sub-summary keys) changed;
//  * caret echoes are keyed per request/file: concurrent residents never
//    echo one request's source under another request's diagnostic;
//  * the serve codecs round-trip every request field and fail *closed* on
//    any framing damage — a torn or bit-flipped message is never
//    half-decoded into a verdict;
//  * an in-process Server speaks the full protocol end to end: golden
//    check bytes, stats, rejection of garbage, response-drop/truncate
//    fault sites, clean shutdown with the socket file unlinked.
//
//===----------------------------------------------------------------------===//

#include "driver/Check.h"
#include "driver/Serve.h"

#include "support/FailPoint.h"
#include "support/Socket.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <sys/stat.h>

using namespace wiresort;
using namespace wiresort::driver;

namespace {

const char *LoopFree = ".model passthrough\n"
                       ".inputs a\n"
                       ".outputs y\n"
                       ".names a y\n"
                       "1 1\n"
                       ".end\n";

const char *Loopy = ".model loopy\n"
                    ".inputs a\n"
                    ".outputs y\n"
                    ".names a x w\n"
                    "11 1\n"
                    ".names w x\n"
                    "1 1\n"
                    ".names w y\n"
                    "1 1\n"
                    ".end\n";

/// Three-module hierarchy for the warm-re-check test: top composes two
/// *structurally distinct* leaves (identical bodies would share one
/// cache key), so editing leaf2 dirties exactly {leaf2, top} (top's
/// cache key folds its children's keys) while leaf1 stays a cache hit.
std::string hierarchy(const char *Leaf2Body) {
  return std::string(".model top\n"
                     ".inputs a\n.outputs y\n"
                     ".subckt leaf1 a=a y=t\n"
                     ".subckt leaf2 a=t y=y\n"
                     ".end\n"
                     ".model leaf1\n"
                     ".inputs a\n.outputs y\n"
                     ".names a y\n1 1\n.end\n"
                     ".model leaf2\n"
                     ".inputs a\n.outputs y\n") +
         Leaf2Body + ".end\n";
}

CheckRequest inlineRequest(const char *Text, const std::string &Name,
                           analysis::Format Fmt = analysis::Format::Json) {
  CheckRequest R;
  R.DesignText = Text;
  R.HasInlineText = true;
  R.DesignName = Name;
  R.Req.OutputFormat = Fmt;
  return R;
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary);
  Out << Text;
  ASSERT_TRUE(Out.good()) << Path;
}

TEST(Driver, ResidentMatchesOneShotByteForByte) {
  for (const char *Text : {LoopFree, Loopy}) {
    CheckRequest R = inlineRequest(Text, "design.blif");
    CheckResult Cold = runCheck(R);
    CheckService Resident;
    CheckResult First = Resident.run(R);
    CheckResult Second = Resident.run(R);
    EXPECT_EQ(Cold.ExitCode, First.ExitCode);
    EXPECT_EQ(Cold.Out, First.Out);
    EXPECT_EQ(Cold.Err, First.Err);
    // The warm repeat serves every summary from the resident cache and
    // still produces the same bytes (docs/ENGINE.md determinism).
    EXPECT_EQ(Cold.Out, Second.Out);
    EXPECT_EQ(Cold.Err, Second.Err);
    if (Second.ExitCode == 0) {
      EXPECT_EQ(Second.Stats.CacheHits, Second.Stats.Modules);
      EXPECT_EQ(Second.Stats.Inferred, 0u);
    }
  }
}

TEST(Driver, WarmRecheckReinfersOnlyDirtyModules) {
  CheckService Resident;
  std::string V1 = hierarchy(".names a t\n0 1\n.names t y\n0 1\n");
  CheckResult First = Resident.run(
      inlineRequest(V1.c_str(), "hier.blif"));
  ASSERT_EQ(First.ExitCode, 0) << First.Out << First.Err;
  EXPECT_EQ(First.Stats.Inferred, 3u);

  // Collapse leaf2's double inverter to a single one: leaf2's body hash
  // moves, so top's key (which folds leaf2's summary key) moves too;
  // leaf1 is untouched.
  std::string V2 = hierarchy(".names a y\n0 1\n");
  CheckResult Edited = Resident.run(
      inlineRequest(V2.c_str(), "hier.blif"));
  ASSERT_EQ(Edited.ExitCode, 0) << Edited.Out << Edited.Err;
  EXPECT_EQ(Edited.Stats.CacheHits, 1u);
  EXPECT_EQ(Edited.Stats.Inferred, 2u);
}

TEST(Driver, ParseResidencySkipsUnchangedChunks) {
  // The parse half of the residency contract (docs/SERVING.md): a warm
  // re-check of an edited file re-tokenizes only the edited `.model`
  // chunk, everything else replays from the content-keyed parse cache —
  // and the bytes out still match a cold one-shot exactly.
  CheckService Resident;
  std::string V1 = hierarchy(".names a t\n0 1\n.names t y\n0 1\n");
  ASSERT_EQ(Resident.run(inlineRequest(V1.c_str(), "hier.blif")).ExitCode,
            0);
  EXPECT_EQ(Resident.parseCache().hits(), 0u);
  EXPECT_EQ(Resident.parseCache().misses(), 3u); // top, leaf1, leaf2

  std::string V2 = hierarchy(".names a y\n0 1\n");
  CheckResult Edited =
      Resident.run(inlineRequest(V2.c_str(), "hier.blif"));
  ASSERT_EQ(Edited.ExitCode, 0) << Edited.Out << Edited.Err;
  EXPECT_EQ(Resident.parseCache().hits(), 2u);  // top + leaf1 replay
  EXPECT_EQ(Resident.parseCache().misses(), 4u); // + edited leaf2

  CheckResult Cold = runCheck(inlineRequest(V2.c_str(), "hier.blif"));
  EXPECT_EQ(Cold.ExitCode, Edited.ExitCode);
  EXPECT_EQ(Cold.Out, Edited.Out);
  EXPECT_EQ(Cold.Err, Edited.Err);
}

TEST(Driver, CaretEchoKeyedPerRequestFile) {
  // Two different malformed sources through one resident service: each
  // text-mode render must echo *its own* line under the caret. (The old
  // CLI kept one process-global source string, which a resident service
  // would have echoed under every request's diagnostics.)
  CheckService Resident;
  CheckResult A = Resident.run(inlineRequest(
      ".model a\n.inputs a a\n.end\n", "a.blif", analysis::Format::Text));
  CheckResult B = Resident.run(inlineRequest(
      ".model b\n.inputs q q\n.end\n", "b.blif", analysis::Format::Text));
  EXPECT_EQ(A.ExitCode, 1);
  EXPECT_EQ(B.ExitCode, 1);
  EXPECT_NE(A.Err.find("a.blif:2"), std::string::npos) << A.Err;
  EXPECT_NE(A.Err.find(".inputs a a"), std::string::npos) << A.Err;
  EXPECT_EQ(A.Err.find(".inputs q q"), std::string::npos) << A.Err;
  EXPECT_NE(B.Err.find("b.blif:2"), std::string::npos) << B.Err;
  EXPECT_NE(B.Err.find(".inputs q q"), std::string::npos) << B.Err;
  EXPECT_EQ(B.Err.find(".inputs a a"), std::string::npos) << B.Err;
}

TEST(Driver, InlineAscriptionSidecarMatchesDiskSidecar) {
  // The daemon's `ascribe` method ships the declared-summary sidecar
  // inline; the CLI reads it from disk. Same bytes both ways.
  const char *Sidecar = "module passthrough\n"
                        "  input a to-sync\n"
                        "  output y from-sync\n"
                        "end\n";
  std::string Dir = ::testing::TempDir();
  writeFile(Dir + "/decl.wsort", Sidecar);

  CheckRequest Disk = inlineRequest(LoopFree, "design.blif");
  Disk.CheckPath = Dir + "/decl.wsort";
  CheckResult FromDisk = runCheck(Disk);

  CheckRequest Inline = Disk;
  Inline.CheckText = Sidecar;
  Inline.HasInlineCheckText = true;
  CheckResult FromInline = runCheck(Inline);

  EXPECT_EQ(FromDisk.ExitCode, 1);
  EXPECT_EQ(FromDisk.ExitCode, FromInline.ExitCode);
  EXPECT_EQ(FromDisk.Out, FromInline.Out);
  EXPECT_EQ(FromDisk.Err, FromInline.Err);
  EXPECT_NE(FromDisk.Out.find("WS102_ASCRIPTION_MISMATCH"),
            std::string::npos)
      << FromDisk.Out;
}

TEST(Serve, CodecRoundTripsEveryRequestField) {
  CheckRequest R;
  R.DesignPath = "designs/top.blif";
  R.DesignText = std::string("raw\0bytes\n", 10); // NUL-safe transport.
  R.HasInlineText = true;
  R.DesignName = "top.blif";
  R.Req.CachePath = "warm.wscache";
  R.Req.OutputFormat = analysis::Format::Json;
  R.Req.TraceOutPath = "trace.json";
  R.Req.Stats = true;
  R.Req.TimeoutMs = 1234;
  R.Req.FailpointSpec = "engine.cancel=nth(3)";
  R.Req.FaultSeed = 99;
  R.SummariesOut = "out.wsort";
  R.CheckPath = "decl.wsort";
  R.DotPath = "top.dot";
  R.ConvertIn = "old.wsort";
  R.BinarySummaries = true;
  R.CheckText = "module top\nend\n";
  R.HasInlineCheckText = true;
  R.Quiet = true;
  R.ShowDepth = true;
  R.Shards = 4;
  R.SliceShard = 1;
  R.SliceOf = 8;

  std::string Bytes = encodeRequest(Method::Ascribe, R);
  Method M = Method::Check;
  CheckRequest D;
  std::string Why;
  ASSERT_TRUE(decodeRequest(Bytes, M, D, Why)) << Why;
  EXPECT_EQ(M, Method::Ascribe);
  EXPECT_EQ(D.DesignPath, R.DesignPath);
  EXPECT_EQ(D.DesignText, R.DesignText);
  EXPECT_EQ(D.HasInlineText, R.HasInlineText);
  EXPECT_EQ(D.DesignName, R.DesignName);
  EXPECT_EQ(D.Req.CachePath, R.Req.CachePath);
  EXPECT_EQ(D.Req.OutputFormat, R.Req.OutputFormat);
  EXPECT_EQ(D.Req.TraceOutPath, R.Req.TraceOutPath);
  EXPECT_EQ(D.Req.Stats, R.Req.Stats);
  EXPECT_EQ(D.Req.TimeoutMs, R.Req.TimeoutMs);
  EXPECT_EQ(D.Req.FailpointSpec, R.Req.FailpointSpec);
  EXPECT_EQ(D.Req.FaultSeed, R.Req.FaultSeed);
  EXPECT_EQ(D.SummariesOut, R.SummariesOut);
  EXPECT_EQ(D.CheckPath, R.CheckPath);
  EXPECT_EQ(D.DotPath, R.DotPath);
  EXPECT_EQ(D.ConvertIn, R.ConvertIn);
  EXPECT_EQ(D.BinarySummaries, R.BinarySummaries);
  EXPECT_EQ(D.CheckText, R.CheckText);
  EXPECT_EQ(D.HasInlineCheckText, R.HasInlineCheckText);
  EXPECT_EQ(D.Quiet, R.Quiet);
  EXPECT_EQ(D.ShowDepth, R.ShowDepth);
  EXPECT_EQ(D.Shards, R.Shards);
  EXPECT_EQ(D.SliceShard, R.SliceShard);
  EXPECT_EQ(D.SliceOf, R.SliceOf);
  // The daemon decides fork policy; it never travels on the wire.
  EXPECT_TRUE(D.AllowFork);
}

TEST(Serve, CodecFailsClosedOnFramingDamage) {
  CheckRequest R = inlineRequest(LoopFree, "design.blif");
  std::string Bytes = encodeRequest(Method::Check, R);
  Method M;
  CheckRequest D;
  std::string Why;

  // Truncation at every prefix length: never a successful decode.
  for (size_t Len : {size_t(0), size_t(3), Bytes.size() / 2,
                     Bytes.size() - 1})
    EXPECT_FALSE(decodeRequest(Bytes.substr(0, Len), M, D, Why))
        << "decoded a " << Len << "-byte prefix";

  // A flipped byte anywhere in the payload region trips the record
  // checksum (the first 5 bytes are magic+version, which readHeader
  // rejects on its own).
  std::string Flipped = Bytes;
  Flipped[Bytes.size() / 2] ^= 0x40;
  EXPECT_FALSE(decodeRequest(Flipped, M, D, Why));

  // Same discipline on the response side.
  CheckResult Res;
  Res.ExitCode = 1;
  Res.Out = "{\"verdict\":\"error\",\"errors\":1}\n";
  std::string RespBytes = encodeResponse(Res, RespStatus::Ok);
  Response Resp;
  EXPECT_FALSE(decodeResponse(RespBytes.substr(0, RespBytes.size() - 2),
                              Resp, Why));
  std::string RespFlipped = RespBytes;
  RespFlipped[RespBytes.size() / 2] ^= 0x01;
  EXPECT_FALSE(decodeResponse(RespFlipped, Resp, Why));
  // And the two directions don't cross-decode.
  EXPECT_FALSE(decodeResponse(Bytes, Resp, Why));
  EXPECT_FALSE(decodeRequest(RespBytes, M, D, Why));

  ASSERT_TRUE(decodeResponse(RespBytes, Resp, Why)) << Why;
  EXPECT_EQ(Resp.ExitCode, 1);
  EXPECT_EQ(Resp.Out, Res.Out);
}

TEST(Serve, ServerEndToEndGoldenStatsShutdown) {
  ServeOptions Opts;
  Opts.SocketPath = ::testing::TempDir() + "/served_e2e.sock";
  Opts.Workers = 2;
  Server S(Opts);
  ASSERT_FALSE(S.start().hasError());

  CheckRequest R = inlineRequest(LoopFree, "design.blif");
  Response Check = requestOnce(Opts.SocketPath, Method::Check, R);
  ASSERT_TRUE(Check.Ok) << support::renderText(Check.Transport);
  CheckResult Cli = runCheck(R);
  EXPECT_EQ(Check.ExitCode, Cli.ExitCode);
  EXPECT_EQ(Check.Out, Cli.Out);
  EXPECT_EQ(Check.Err, Cli.Err);

  Response Stats = requestOnce(Opts.SocketPath, Method::Stats);
  ASSERT_TRUE(Stats.Ok) << support::renderText(Stats.Transport);
  EXPECT_EQ(Stats.ExitCode, 0);
  EXPECT_NE(Stats.Out.find("\"type\":\"served-stats\""), std::string::npos)
      << Stats.Out;
  EXPECT_NE(Stats.Out.find("\"requests\":1"), std::string::npos)
      << Stats.Out;

  // Raw garbage on the socket: rejected (status byte 1, exit 2), the
  // connection is answered, the server stays up.
  {
    auto Fd = support::sock::connectTo(Opts.SocketPath);
    ASSERT_TRUE(bool(Fd));
    ASSERT_FALSE(support::sock::writeAll(*Fd, "not a wire stream")
                     .hasError());
    support::sock::shutdownWrite(*Fd);
    auto Raw = support::sock::readAll(*Fd);
    support::sock::closeFd(*Fd);
    ASSERT_TRUE(bool(Raw));
    Response Rej;
    std::string Why;
    ASSERT_TRUE(decodeResponse(*Raw, Rej, Why)) << Why;
    EXPECT_TRUE(Rej.Rejected);
    EXPECT_EQ(Rej.ExitCode, 2);
    EXPECT_NE(Rej.Err.find("request rejected"), std::string::npos)
        << Rej.Err;
  }

  Response Bye = requestOnce(Opts.SocketPath, Method::Shutdown);
  ASSERT_TRUE(Bye.Ok) << support::renderText(Bye.Transport);
  S.wait();
  // Clean shutdown leaves no socket file (tools/run_tests.sh stage 9
  // asserts the same from the outside).
  struct stat St;
  EXPECT_NE(::stat(Opts.SocketPath.c_str(), &St), 0);
}

TEST(Serve, ResponseDropAndTruncateFaultsFailClosed) {
  ServeOptions Opts;
  Opts.SocketPath = ::testing::TempDir() + "/served_fault.sock";
  Server S(Opts);
  ASSERT_FALSE(S.start().hasError());
  CheckRequest R = inlineRequest(LoopFree, "design.blif");

  // Dropped response: the client reads EOF, decodes nothing, and
  // reports transport damage — exit-2 territory, never a verdict.
  ASSERT_FALSE(support::failpoint::configure("serve.response.drop=nth(1)", 0)
                   .hasError());
  Response Dropped = requestOnce(Opts.SocketPath, Method::Check, R);
  EXPECT_FALSE(Dropped.Ok);
  EXPECT_TRUE(Dropped.Transport.hasError());

  // Truncated response: half a wire stream trips the framing checksum.
  ASSERT_FALSE(
      support::failpoint::configure("serve.response.truncate=nth(1)", 0)
          .hasError());
  Response Torn = requestOnce(Opts.SocketPath, Method::Check, R);
  EXPECT_FALSE(Torn.Ok);
  EXPECT_TRUE(Torn.Transport.hasError());

  support::failpoint::disarmAll();
  Response Fine = requestOnce(Opts.SocketPath, Method::Check, R);
  EXPECT_TRUE(Fine.Ok) << support::renderText(Fine.Transport);
  EXPECT_EQ(Fine.ExitCode, 0);
  S.stop();
  S.wait();
}

} // namespace
