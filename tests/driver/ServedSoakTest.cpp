//===- tests/driver/ServedSoakTest.cpp - Concurrent serving soak ----------===//
//
// Part of the wiresort project. The request-level concurrency
// acceptance bar (docs/SERVING.md), extending the FaultSoakTest pattern
// from one engine to a whole resident service: many client threads
// hammer one in-process Server with a deterministic mix of clean
// checks, error designs, per-request deadlines, and failpoint
// schedules (including the serving layer's own response-drop/truncate
// sites). The invariants, by running rather than argument:
//
//  * every response either decodes cleanly with a contract exit code
//    (0/1/2/3) or surfaces as transport damage (the drop/truncate
//    faults) — never a half-decoded verdict;
//  * the failpoint registry being process-global degrades *visibly*
//    (a neighbor's schedule may cancel your request: WS601, exit 3 —
//    fail closed) but never corrupts: no crash, no hang, no wrong-shape
//    output;
//  * after the storm, a disarmed golden request is byte-identical to a
//    cold wiresort-check run, and shutdown drains in-flight requests
//    and unlinks the socket.
//
// Runs under TSan in tools/run_tests.sh stage 9 — the resident cache,
// telemetry mutex, and connection pool are concurrency claims.
//
//===----------------------------------------------------------------------===//

#include "driver/Check.h"
#include "driver/Serve.h"

#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

using namespace wiresort;
using namespace wiresort::driver;

namespace {

const char *LoopFree = ".model passthrough\n"
                       ".inputs a\n"
                       ".outputs y\n"
                       ".names a y\n"
                       "1 1\n"
                       ".end\n";

const char *Loopy = ".model loopy\n"
                    ".inputs a\n"
                    ".outputs y\n"
                    ".names a x w\n"
                    "11 1\n"
                    ".names w x\n"
                    "1 1\n"
                    ".names w y\n"
                    "1 1\n"
                    ".end\n";

const char *Malformed = ".model broken\n"
                        ".inputs a a\n"
                        ".end\n";

CheckRequest inlineRequest(const char *Text, const std::string &Name) {
  CheckRequest R;
  R.DesignText = Text;
  R.HasInlineText = true;
  R.DesignName = Name;
  R.Req.OutputFormat = analysis::Format::Json;
  return R;
}

TEST(ServedSoak, ConcurrentHammerWithFaultSchedules) {
  ServeOptions Opts;
  Opts.SocketPath = ::testing::TempDir() + "/served_soak.sock";
  Opts.Workers = 4;
  Server S(Opts);
  ASSERT_FALSE(S.start().hasError());

  constexpr unsigned Threads = 6;
  constexpr unsigned PerThread = 24;
  std::atomic<size_t> Decoded{0}, Transport{0}, BadShape{0};
  std::atomic<size_t> ExitSeen[4] = {{0}, {0}, {0}, {0}};

  auto client = [&](unsigned Tid) {
    for (unsigned I = 0; I < PerThread; ++I) {
      unsigned Variant = (Tid * 7 + I) % 6;
      CheckRequest R;
      switch (Variant) {
      case 0:
      case 1:
        R = inlineRequest(LoopFree, "soak_ok.blif");
        break;
      case 2:
        R = inlineRequest(Loopy, "soak_loopy.blif");
        break;
      case 3:
        R = inlineRequest(Malformed, "soak_broken.blif");
        break;
      case 4:
        // A deadline plus a one-shot cancel fault: this request — or,
        // the registry being process-global, a concurrent neighbor —
        // fails closed with WS601/exit 3.
        R = inlineRequest(LoopFree, "soak_cancel.blif");
        R.Req.TimeoutMs = 10000;
        R.Req.FailpointSpec = "engine.cancel=nth(2)";
        R.Req.FaultSeed = Tid * 1000 + I;
        break;
      case 5:
        // Serving-layer fault: one response gets dropped or torn; the
        // *client* side must fail closed (transport damage, no verdict).
        R = inlineRequest(LoopFree, "soak_drop.blif");
        R.Req.FailpointSpec = (I % 2) ? "serve.response.drop=nth(1)"
                                      : "serve.response.truncate=nth(1)";
        break;
      }
      Response Res = requestOnce(Opts.SocketPath, Method::Check, R);
      if (!Res.Ok) {
        // Only acceptable as transport damage with evidence attached.
        if (!Res.Transport.hasError())
          BadShape.fetch_add(1);
        Transport.fetch_add(1);
        continue;
      }
      Decoded.fetch_add(1);
      if (Res.ExitCode < 0 || Res.ExitCode > 3) {
        BadShape.fetch_add(1);
        continue;
      }
      ExitSeen[Res.ExitCode].fetch_add(1);
      // Shape invariant: every decoded JSON-mode response that ran ends
      // in exactly one verdict line; rejected ones carry Err instead.
      if (!Res.Rejected &&
          Res.Out.find("\"verdict\":") == std::string::npos &&
          Res.ExitCode != 2)
        BadShape.fetch_add(1);
    }
  };

  std::vector<std::thread> Clients;
  for (unsigned T = 0; T < Threads; ++T)
    Clients.emplace_back(client, T);
  for (std::thread &T : Clients)
    T.join();

  EXPECT_EQ(BadShape.load(), 0u);
  EXPECT_GT(Decoded.load(), 0u);
  // The clean variants dominate the mix, so well-connected and
  // error-diagnosed runs must both have happened.
  EXPECT_GT(ExitSeen[0].load(), 0u);
  EXPECT_GT(ExitSeen[1].load(), 0u);
  EXPECT_EQ(Decoded.load() + Transport.load(),
            size_t(Threads) * PerThread);

  // After the storm: disarm the (process-global, and therefore still
  // armed) schedules and demand byte-identity with a cold CLI-style run.
  support::failpoint::disarmAll();
  CheckRequest Golden = inlineRequest(LoopFree, "soak_ok.blif");
  Response Warm = requestOnce(Opts.SocketPath, Method::Check, Golden);
  ASSERT_TRUE(Warm.Ok) << support::renderText(Warm.Transport);
  CheckResult Cold = runCheck(Golden);
  EXPECT_EQ(Warm.ExitCode, Cold.ExitCode);
  EXPECT_EQ(Warm.Out, Cold.Out);
  EXPECT_EQ(Warm.Err, Cold.Err);

  Response Stats = requestOnce(Opts.SocketPath, Method::Stats);
  ASSERT_TRUE(Stats.Ok);
  EXPECT_NE(Stats.Out.find("\"type\":\"served-stats\""), std::string::npos);

  Response Bye = requestOnce(Opts.SocketPath, Method::Shutdown);
  ASSERT_TRUE(Bye.Ok) << support::renderText(Bye.Transport);
  S.wait();
  struct stat St;
  EXPECT_NE(::stat(Opts.SocketPath.c_str(), &St), 0);
}

TEST(ServedSoak, ResidentCacheStaysWarmAcrossConcurrentClients) {
  ServeOptions Opts;
  Opts.SocketPath = ::testing::TempDir() + "/served_warm.sock";
  Opts.Workers = 4;
  Server S(Opts);
  ASSERT_FALSE(S.start().hasError());

  // Prime, then hammer the same design from many threads: every
  // follow-up is a full cache hit, and all responses are byte-equal.
  CheckRequest R = inlineRequest(LoopFree, "warm.blif");
  Response First = requestOnce(Opts.SocketPath, Method::Check, R);
  ASSERT_TRUE(First.Ok) << support::renderText(First.Transport);
  ASSERT_EQ(First.ExitCode, 0);

  std::atomic<size_t> Mismatches{0};
  std::vector<std::thread> Clients;
  for (unsigned T = 0; T < 4; ++T)
    Clients.emplace_back([&] {
      for (unsigned I = 0; I < 16; ++I) {
        Response Res = requestOnce(Opts.SocketPath, Method::Check, R);
        if (!Res.Ok || Res.Out != First.Out || Res.Err != First.Err ||
            Res.ExitCode != 0)
          Mismatches.fetch_add(1);
      }
    });
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0u);

  // The service saw every request; the engine inferred the design once.
  EXPECT_EQ(S.service().requestsServed(), 1u + 4 * 16);
  EXPECT_EQ(S.service().engine().cache().size(), 1u);

  S.stop();
  S.wait();
}

} // namespace
