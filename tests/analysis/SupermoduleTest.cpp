//===- tests/analysis/SupermoduleTest.cpp - Composition ad infinitum ------===//
//
// Part of the wiresort project. Section 3.1: "a circuit ... can
// essentially define a larger module composed of submodules. A circuit
// composed of many of these supermodules connected together in turn
// makes an even larger module, ad infinitum." These tests seal circuits
// into modules, summarize them through their instance summaries alone,
// and keep composing.
//
//===----------------------------------------------------------------------===//

#include "analysis/SortInference.h"
#include "analysis/WellConnected.h"
#include "analysis/Dot.h"
#include "gen/Catalog.h"
#include "gen/Fifo.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

using Summaries = std::map<ModuleId, ModuleSummary>;

Summaries analyzeOrDie(const Design &D) {
  Summaries Out;
  wiresort::support::Status Loop = analyzeDesign(D, Out);
  EXPECT_FALSE(Loop.hasError()) << Loop.describe();
  return Out;
}

} // namespace

TEST(SupermoduleTest, SealedCircuitInheritsPortSorts) {
  // A two-queue supermodule: forwarding FIFO feeding a normal FIFO.
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  ModuleId Normal = D.addModule(gen::makeFifo({8, 2, false}));
  Circuit Circ(D, "super");
  InstId A = Circ.addInstance(Fwd, "front");
  InstId B = Circ.addInstance(Normal, "back");
  Circ.connect(A, "v_o", B, "v_i");
  Circ.connect(A, "data_o", B, "data_i");
  Circ.connect(B, "ready_o", A, "yumi_i");
  ModuleId Super = Circ.seal();

  Summaries S = analyzeOrDie(D);
  const Module &M = D.module(Super);
  // The forwarding FIFO's coupling is absorbed: its v_i reaches only the
  // internal connection (now severed from the interface by the normal
  // FIFO's state), so the supermodule is a universal interface again.
  EXPECT_EQ(S.at(Super).sortOf(M.findPort("front.v_i")), Sort::ToSync);
  EXPECT_EQ(S.at(Super).sortOf(M.findPort("front.data_i")), Sort::ToSync);
  EXPECT_EQ(S.at(Super).sortOf(M.findPort("back.v_o")), Sort::FromSync);
  EXPECT_EQ(S.at(Super).sortOf(M.findPort("back.ready_o")),
            Sort::FromSync);
  EXPECT_EQ(S.at(Super).sortOf(M.findPort("back.yumi_i")), Sort::ToSync);
}

TEST(SupermoduleTest, SealedForwardingPairStaysCoupled) {
  // Two forwarding FIFOs back to back: the coupling survives sealing.
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  Circuit Circ(D, "super_fwd");
  InstId A = Circ.addInstance(Fwd, "front");
  InstId B = Circ.addInstance(Fwd, "back");
  Circ.connect(A, "v_o", B, "v_i");
  Circ.connect(A, "data_o", B, "data_i");
  ModuleId Super = Circ.seal();

  Summaries S = analyzeOrDie(D);
  const Module &M = D.module(Super);
  EXPECT_EQ(S.at(Super).sortOf(M.findPort("front.v_i")), Sort::ToPort);
  EXPECT_EQ(S.at(Super).sortOf(M.findPort("back.v_o")), Sort::FromPort);
  // The combinational path tunnels through both queues.
  auto Set = S.at(Super).outputPortSet(M.findPort("front.v_i"));
  bool ReachesVo = false;
  for (WireId Out : Set)
    ReachesVo |= M.wire(Out).Name == "back.v_o";
  EXPECT_TRUE(ReachesVo);
}

TEST(SupermoduleTest, ThreeLevelsOfComposition) {
  // supermodule -> circuit of supermodules -> sealed again; a loop
  // created at the outermost level is still caught, and the diagnostic
  // names outermost ports.
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));

  // Level 1: pair of forwarding FIFOs (still coupled).
  Circuit Pair(D, "pair");
  InstId P0 = Pair.addInstance(Fwd, "q0");
  InstId P1 = Pair.addInstance(Fwd, "q1");
  Pair.connect(P0, "v_o", P1, "v_i");
  ModuleId PairId = Pair.seal();

  // Level 2: ring of two pairs.
  Circuit Ring(D, "ring_of_pairs");
  InstId R0 = Ring.addInstance(PairId, "left");
  InstId R1 = Ring.addInstance(PairId, "right");
  const Module &PairM = D.module(PairId);
  WireId In = PairM.findPort("q0.v_i");
  WireId Out = PairM.findPort("q1.v_o");
  ASSERT_NE(In, InvalidId);
  ASSERT_NE(Out, InvalidId);
  Ring.connectPorts(PortRef{R0, Out}, PortRef{R1, In});
  Ring.connectPorts(PortRef{R1, Out}, PortRef{R0, In});

  Summaries S = analyzeOrDie(D);
  CircuitCheckResult Result = checkCircuit(Ring, S);
  EXPECT_FALSE(Result.WellConnected);
  ASSERT_TRUE(Result.Diags.hasError());
  EXPECT_NE(Result.Diags.describe().find("left.q"), std::string::npos)
      << Result.Diags.describe();

  // Level 3: sealing the looped ring and summarizing reports the loop.
  ModuleId Sealed = Ring.seal();
  Summaries S2;
  wiresort::support::Status Loop = analyzeDesign(D, S2);
  ASSERT_TRUE(Loop.hasError());
  (void)Sealed;
}

TEST(SupermoduleTest, DotExportsRender) {
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  ModuleId Pass = D.addModule(gen::makePassthrough(1));
  Summaries S = analyzeOrDie(D);

  std::string ModDot = moduleDot(D.module(Fwd), S.at(Fwd));
  EXPECT_NE(ModDot.find("digraph"), std::string::npos);
  EXPECT_NE(ModDot.find("v_i"), std::string::npos);
  EXPECT_NE(ModDot.find("state"), std::string::npos);

  Circuit Circ(D, "dotring");
  InstId A = Circ.addInstance(Fwd, "a");
  InstId G = Circ.addInstance(Pass, "glue");
  Circ.connect(A, "v_o", G, "data_i");
  Circ.connect(G, "data_o", A, "v_i");
  CircuitCheckResult Result = checkCircuit(Circ, S);
  ASSERT_TRUE(Result.Diags.hasError());
  std::string CircDot =
      circuitDot(Circ, S, Result.Diags[0].witnessLabels());
  EXPECT_NE(CircDot.find("cluster_0"), std::string::npos);
  EXPECT_NE(CircDot.find("#e31a1c"), std::string::npos); // Loop red.
  EXPECT_NE(CircDot.find("style=dashed"), std::string::npos);
}
