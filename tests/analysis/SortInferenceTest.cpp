//===- tests/analysis/SortInferenceTest.cpp - Stage-1 inference tests -----===//
//
// Part of the wiresort project. Validates the paper's worked examples:
// Figure 4's output-port-set/input-port-set computation and the Table 1
// sorts of the FIFO, PISO, SIPO, and cache DMA generators.
//
//===----------------------------------------------------------------------===//

#include "analysis/SortInference.h"

#include "gen/CacheDma.h"
#include "gen/Catalog.h"
#include "gen/Fifo.h"
#include "gen/ShiftReg.h"
#include "ir/Builder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

/// Infers the summary of a standalone module.
ModuleSummary summarize(Module M) {
  Design D;
  ModuleId Id = D.addModule(std::move(M));
  std::map<ModuleId, ModuleSummary> Out;
  support::Status Loop = analyzeDesign(D, Out);
  EXPECT_FALSE(Loop.hasError()) << Loop.describe();
  return Out.at(Id);
}

/// Builds Figure 4's module: w1..w3 feed registers; w4 combinationally
/// reaches w2out; w1out comes straight from a register.
Module figure4() {
  Builder B("fig4");
  V W1 = B.input("w1", 1);
  V W2 = B.input("w2", 1);
  V W3 = B.input("w3", 1);
  V W4 = B.input("w4", 1);
  // Register absorbing w1..w3 through a gate.
  V G = B.andv(B.andv(W1, W2), W3);
  V R1 = B.reg(G, "r1");
  V R2 = B.reg(R1, "r2");
  // w1out: fed directly from a register (from-sync-direct).
  B.output("w1out", R2);
  // w2out: combinational in w4 and the register.
  B.output("w2out", B.orv(W4, R1));
  return B.finish();
}

std::vector<std::string> names(const Module &M,
                               const std::vector<WireId> &Ports) {
  std::vector<std::string> Out;
  for (WireId W : Ports)
    Out.push_back(M.wire(W).Name);
  return Out;
}

} // namespace

TEST(SortInferenceTest, Figure4PortSets) {
  Module M = figure4();
  Design D;
  ModuleId Id = D.addModule(M);
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const ModuleSummary &S = Out.at(Id);
  const Module &Def = D.module(Id);

  // "The output-port-set of input w4in is {w2out} and the empty set for
  // the other inputs."
  EXPECT_EQ(names(Def, S.outputPortSet(Def.findPort("w4"))),
            std::vector<std::string>{"w2out"});
  for (const char *In : {"w1", "w2", "w3"})
    EXPECT_TRUE(S.outputPortSet(Def.findPort(In)).empty()) << In;

  // "The input-port-set of w2out is {w4in} and the empty set for w1out."
  EXPECT_EQ(names(Def, S.inputPortSet(Def.findPort("w2out"))),
            std::vector<std::string>{"w4"});
  EXPECT_TRUE(S.inputPortSet(Def.findPort("w1out")).empty());

  // Sorts follow: w1..w3 to-sync, w4 to-port, w1out from-sync, w2out
  // from-port.
  EXPECT_EQ(S.sortOf(Def.findPort("w1")), Sort::ToSync);
  EXPECT_EQ(S.sortOf(Def.findPort("w4")), Sort::ToPort);
  EXPECT_EQ(S.sortOf(Def.findPort("w1out")), Sort::FromSync);
  EXPECT_EQ(S.sortOf(Def.findPort("w2out")), Sort::FromPort);

  // Section 3.7: "wire w1out could thus be labelled from-sync-direct".
  EXPECT_EQ(S.subSortOf(Def.findPort("w1out")), SubSort::Direct);
  // w2out is from-port, so no subsort.
  EXPECT_EQ(S.subSortOf(Def.findPort("w2out")), SubSort::None);
}

TEST(SortInferenceTest, NormalFifoIsAllSync) {
  // Table 1 first row: every FIFO port is TS/FS with empty sets.
  Module M = gen::makeFifo({32, 3, /*Forwarding=*/false});
  ModuleSummary S = summarize(M);
  Design D;
  ModuleId Id = D.addModule(std::move(M));
  const Module &Def = D.module(Id);
  for (const char *In : {"data_i", "v_i", "yumi_i"})
    EXPECT_EQ(S.sortOf(Def.findPort(In)), Sort::ToSync) << In;
  for (const char *Out : {"data_o", "v_o", "ready_o"})
    EXPECT_EQ(S.sortOf(Def.findPort(Out)), Sort::FromSync) << Out;
}

TEST(SortInferenceTest, ForwardingFifoCouplesEndpoints) {
  // Figure 2: valid_o = (count > 0) or (valid_i and ready_o).
  Module M = gen::makeFifo({32, 3, /*Forwarding=*/true});
  Design D;
  ModuleId Id = D.addModule(std::move(M));
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const ModuleSummary &S = Out.at(Id);
  const Module &Def = D.module(Id);

  EXPECT_EQ(S.sortOf(Def.findPort("v_i")), Sort::ToPort);
  EXPECT_EQ(S.sortOf(Def.findPort("data_i")), Sort::ToPort);
  EXPECT_EQ(S.sortOf(Def.findPort("v_o")), Sort::FromPort);
  EXPECT_EQ(S.sortOf(Def.findPort("data_o")), Sort::FromPort);
  // ready_o still comes only from the count register.
  EXPECT_EQ(S.sortOf(Def.findPort("ready_o")), Sort::FromSync);
  // yumi_i only moves pointers (state).
  EXPECT_EQ(S.sortOf(Def.findPort("yumi_i")), Sort::ToSync);

  // v_i combinationally reaches v_o.
  auto VSet = names(Def, S.outputPortSet(Def.findPort("v_i")));
  EXPECT_NE(std::find(VSet.begin(), VSet.end(), "v_o"), VSet.end());
}

TEST(SortInferenceTest, PisoMatchesTable1) {
  // Table 1: valid_i TS, data_i TS, yumi_i TP {ready_o}; valid_o FS,
  // data_o FS, ready_o FP {yumi_i}.
  Module M = gen::makePiso({4, 8, /*Fixed=*/false});
  Design D;
  ModuleId Id = D.addModule(std::move(M));
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const ModuleSummary &S = Out.at(Id);
  const Module &Def = D.module(Id);

  EXPECT_EQ(S.sortOf(Def.findPort("valid_i")), Sort::ToSync);
  EXPECT_EQ(S.sortOf(Def.findPort("data_i")), Sort::ToSync);
  EXPECT_EQ(S.sortOf(Def.findPort("yumi_i")), Sort::ToPort);
  EXPECT_EQ(names(Def, S.outputPortSet(Def.findPort("yumi_i"))),
            std::vector<std::string>{"ready_o"});
  EXPECT_EQ(S.sortOf(Def.findPort("valid_o")), Sort::FromSync);
  EXPECT_EQ(S.sortOf(Def.findPort("data_o")), Sort::FromSync);
  EXPECT_EQ(S.sortOf(Def.findPort("ready_o")), Sort::FromPort);
  EXPECT_EQ(names(Def, S.inputPortSet(Def.findPort("ready_o"))),
            std::vector<std::string>{"yumi_i"});
}

TEST(SortInferenceTest, FixedPisoIsAllSync) {
  // The post-fix PISO (Section 5.1's upstream repair): yumi_i is now
  // to-sync and ready_o from-sync.
  Module M = gen::makePiso({4, 8, /*Fixed=*/true});
  Design D;
  ModuleId Id = D.addModule(std::move(M));
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const ModuleSummary &S = Out.at(Id);
  const Module &Def = D.module(Id);
  EXPECT_EQ(S.sortOf(Def.findPort("yumi_i")), Sort::ToSync);
  EXPECT_EQ(S.sortOf(Def.findPort("ready_o")), Sort::FromSync);
}

TEST(SortInferenceTest, SipoMatchesTable1) {
  // Table 1: yumi_cnt_i TS; valid_i TP {valid_o}; data_i TP {data_o};
  // ready_o FS; valid_o FP {valid_i}; data_o FP {data_i}.
  Module M = gen::makeSipo({4, 8});
  Design D;
  ModuleId Id = D.addModule(std::move(M));
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const ModuleSummary &S = Out.at(Id);
  const Module &Def = D.module(Id);

  EXPECT_EQ(S.sortOf(Def.findPort("yumi_cnt_i")), Sort::ToSync);
  EXPECT_EQ(S.sortOf(Def.findPort("valid_i")), Sort::ToPort);
  EXPECT_EQ(names(Def, S.outputPortSet(Def.findPort("valid_i"))),
            std::vector<std::string>{"valid_o"});
  EXPECT_EQ(S.sortOf(Def.findPort("data_i")), Sort::ToPort);
  EXPECT_EQ(names(Def, S.outputPortSet(Def.findPort("data_i"))),
            std::vector<std::string>{"data_o"});
  EXPECT_EQ(S.sortOf(Def.findPort("ready_o")), Sort::FromSync);
  EXPECT_EQ(names(Def, S.inputPortSet(Def.findPort("valid_o"))),
            std::vector<std::string>{"valid_i"});
  EXPECT_EQ(names(Def, S.inputPortSet(Def.findPort("data_o"))),
            std::vector<std::string>{"data_i"});
}

TEST(SortInferenceTest, CacheDmaMatchesTable1) {
  Module M = gen::makeCacheDma({32, 16, 4, 3});
  Design D;
  ModuleId Id = D.addModule(std::move(M));
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const ModuleSummary &S = Out.at(Id);
  const Module &Def = D.module(Id);

  auto expectSort = [&](const char *Port, Sort Expected) {
    EXPECT_EQ(S.sortOf(Def.findPort(Port)), Expected) << Port;
  };
  // Inputs (Table 1).
  expectSort("data_mem_data_i", Sort::ToSync);
  expectSort("dma_data_i", Sort::ToSync);
  expectSort("dma_data_v_i", Sort::ToSync);
  expectSort("dma_data_yumi_i", Sort::ToSync);
  expectSort("dma_pkt_yumi_i", Sort::ToPort);
  expectSort("dma_way_i", Sort::ToPort);
  expectSort("dma_addr_i", Sort::ToPort);
  expectSort("dma_cmd_i", Sort::ToPort);
  // Outputs (Table 1).
  expectSort("data_mem_data_o", Sort::FromSync);
  expectSort("dma_data_o", Sort::FromSync);
  expectSort("dma_data_v_o", Sort::FromSync);
  expectSort("dma_data_ready_o", Sort::FromSync);
  expectSort("dma_pkt_v_o", Sort::FromPort);
  expectSort("data_mem_addr_o", Sort::FromPort);
  expectSort("data_mem_v_o", Sort::FromPort);
  expectSort("data_mem_w_mask_o", Sort::FromPort);
  expectSort("dma_pkt_o", Sort::FromPort);
  expectSort("done_o", Sort::FromPort);
  expectSort("data_mem_w_o", Sort::FromSync);
  expectSort("dma_evict_o", Sort::FromSync);
  expectSort("snoop_word_o", Sort::FromSync);

  // Spot-check the port sets quoted in Table 1.
  EXPECT_EQ(names(Def, S.outputPortSet(Def.findPort("dma_pkt_yumi_i"))),
            std::vector<std::string>{"done_o"});
  EXPECT_EQ(names(Def, S.outputPortSet(Def.findPort("dma_way_i"))),
            std::vector<std::string>{"data_mem_w_mask_o"});
  auto AddrSet = names(Def, S.outputPortSet(Def.findPort("dma_addr_i")));
  EXPECT_EQ(AddrSet,
            (std::vector<std::string>{"data_mem_addr_o", "dma_pkt_o"}));
  auto CmdSet = names(Def, S.outputPortSet(Def.findPort("dma_cmd_i")));
  std::sort(CmdSet.begin(), CmdSet.end());
  EXPECT_EQ(CmdSet, (std::vector<std::string>{"data_mem_v_o", "dma_pkt_o",
                                              "dma_pkt_v_o", "done_o"}));
  auto DoneSet = names(Def, S.inputPortSet(Def.findPort("done_o")));
  std::sort(DoneSet.begin(), DoneSet.end());
  EXPECT_EQ(DoneSet,
            (std::vector<std::string>{"dma_cmd_i", "dma_pkt_yumi_i"}));
}

TEST(SortInferenceTest, SubsortsDirectVsIndirect) {
  // addr_stage: raddr_o is from-sync-direct (straight from a register).
  {
    Module M = gen::makeAddrStage(8);
    Design D;
    ModuleId Id = D.addModule(std::move(M));
    std::map<ModuleId, ModuleSummary> Out;
    ASSERT_FALSE(analyzeDesign(D, Out).hasError());
    const Module &Def = D.module(Id);
    EXPECT_EQ(Out.at(Id).subSortOf(Def.findPort("raddr_o")),
              SubSort::Direct);
    // next_i feeds the register through a mux: to-sync-indirect.
    EXPECT_EQ(Out.at(Id).subSortOf(Def.findPort("next_i")),
              SubSort::Indirect);
  }
  // A module with logic after the register is from-sync-indirect.
  {
    Builder B("after_logic");
    V A = B.input("a", 8);
    V R = B.reg(A, "r");
    B.output("y", B.notv(R));
    Design D;
    ModuleId Id = D.addModule(B.finish());
    std::map<ModuleId, ModuleSummary> Out;
    ASSERT_FALSE(analyzeDesign(D, Out).hasError());
    const Module &Def = D.module(Id);
    EXPECT_EQ(Out.at(Id).sortOf(Def.findPort("y")), Sort::FromSync);
    EXPECT_EQ(Out.at(Id).subSortOf(Def.findPort("y")), SubSort::Indirect);
    // a feeds the register directly (no gate): to-sync-direct.
    EXPECT_EQ(Out.at(Id).subSortOf(Def.findPort("a")), SubSort::Direct);
  }
}

TEST(SortInferenceTest, ConstantOutputIsFromSyncDirect) {
  Builder B("const_out");
  B.output("y", B.lit(5, 8));
  Design D;
  ModuleId Id = D.addModule(B.finish());
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const Module &Def = D.module(Id);
  EXPECT_EQ(Out.at(Id).sortOf(Def.findPort("y")), Sort::FromSync);
  EXPECT_EQ(Out.at(Id).subSortOf(Def.findPort("y")), SubSort::Direct);
}

TEST(SortInferenceTest, UnusedInputIsToSyncDirect) {
  Builder B("unused_in");
  B.input("a", 4);
  B.output("y", B.lit(0, 1));
  Design D;
  ModuleId Id = D.addModule(B.finish());
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const Module &Def = D.module(Id);
  EXPECT_EQ(Out.at(Id).sortOf(Def.findPort("a")), Sort::ToSync);
  EXPECT_EQ(Out.at(Id).subSortOf(Def.findPort("a")), SubSort::Direct);
}

TEST(SortInferenceTest, AsyncMemoryIsACombinationalPath) {
  Builder B("async_path");
  V RAddr = B.input("raddr", 4);
  V WAddr = B.input("waddr", 4);
  V WData = B.input("wdata", 8);
  V Wen = B.input("wen", 1);
  B.output("rdata", B.memory("m", /*SyncRead=*/false, RAddr, WAddr, WData,
                             Wen));
  Design D;
  ModuleId Id = D.addModule(B.finish());
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const Module &Def = D.module(Id);
  EXPECT_EQ(Out.at(Id).sortOf(Def.findPort("raddr")), Sort::ToPort);
  EXPECT_EQ(Out.at(Id).sortOf(Def.findPort("waddr")), Sort::ToSync);
  EXPECT_EQ(Out.at(Id).sortOf(Def.findPort("rdata")), Sort::FromPort);
}

TEST(SortInferenceTest, SyncMemoryBreaksThePath) {
  Builder B("sync_path");
  V RAddr = B.input("raddr", 4);
  V WAddr = B.input("waddr", 4);
  V WData = B.input("wdata", 8);
  V Wen = B.input("wen", 1);
  B.output("rdata", B.memory("m", /*SyncRead=*/true, RAddr, WAddr, WData,
                             Wen));
  Design D;
  ModuleId Id = D.addModule(B.finish());
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const Module &Def = D.module(Id);
  EXPECT_EQ(Out.at(Id).sortOf(Def.findPort("raddr")), Sort::ToSync);
  EXPECT_EQ(Out.at(Id).sortOf(Def.findPort("rdata")), Sort::FromSync);
  // Read data straight out of the array: from-sync-direct.
  EXPECT_EQ(Out.at(Id).subSortOf(Def.findPort("rdata")), SubSort::Direct);
}

TEST(SortInferenceTest, HierarchicalSummaryUsesInstanceSummaries) {
  // Wrap the forwarding FIFO in a parent; the parent's ports inherit the
  // coupling through the instance summary without re-analyzing the
  // child's internals.
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, /*Forwarding=*/true}));

  Builder B("wrapper");
  V DataIn = B.input("in_data", 8);
  V VIn = B.input("in_v", 1);
  V Yumi = B.input("in_yumi", 1);
  auto Outs = B.instantiate(D, Fwd, "q",
                            {{"data_i", DataIn},
                             {"v_i", VIn},
                             {"yumi_i", Yumi}});
  B.output("out_data", Outs.at("data_o"));
  B.output("out_v", Outs.at("v_o"));
  B.output("out_ready", Outs.at("ready_o"));
  ModuleId Wrap = D.addModule(B.finish());

  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const Module &Def = D.module(Wrap);
  const ModuleSummary &S = Out.at(Wrap);
  EXPECT_EQ(S.sortOf(Def.findPort("in_v")), Sort::ToPort);
  EXPECT_EQ(S.sortOf(Def.findPort("out_v")), Sort::FromPort);
  EXPECT_EQ(S.sortOf(Def.findPort("in_yumi")), Sort::ToSync);
  EXPECT_EQ(S.sortOf(Def.findPort("out_ready")), Sort::FromSync);
}

TEST(SortInferenceTest, InternalCombLoopReported) {
  // a = a & b is a one-net combinational loop.
  Module M("selfloop");
  WireId A = M.addWire("a", WireKind::Basic, 1);
  WireId B = M.addInput("b", 1);
  WireId Y = M.addOutput("y", 1);
  M.addNet(Op::And, {A, B}, A);
  M.addNet(Op::Buf, {A}, Y);
  Design D;
  D.addModule(std::move(M));
  std::map<ModuleId, ModuleSummary> Out;
  support::Status Loop = analyzeDesign(D, Out);
  ASSERT_TRUE(Loop.hasError());
  EXPECT_NE(Loop.describe().find("selfloop.a"), std::string::npos);
}
