//===- tests/analysis/WellConnectedTest.cpp - Circuit check tests ---------===//
//
// Part of the wiresort project. Exercises the paper's figures: the
// Figure 3 three-module loop, the always-safe connections of Figure 5,
// and the it-depends connections of Figure 6.
//
//===----------------------------------------------------------------------===//

#include "analysis/WellConnected.h"

#include "analysis/SortInference.h"
#include "gen/Catalog.h"
#include "gen/Fifo.h"
#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

using Summaries = std::map<ModuleId, ModuleSummary>;

Summaries analyzeOrDie(const Design &D) {
  Summaries Out;
  wiresort::support::Status Loop = analyzeDesign(D, Out);
  EXPECT_FALSE(Loop.hasError()) << Loop.describe();
  return Out;
}

/// Builds the Figure 3 circuit: a normal FIFO, a forwarding FIFO, and a
/// combinational module X closing the triangle on the valid wires.
/// fifo.v_o? No — the paper routes: normal FIFO's readyout path is not
/// involved; the loop is: fwd.v_o -> normal.v_i -> (X taps normal's
/// v_i-derived signal) ... our rendering: normal FIFO exposes v_i; module
/// X computes a function of a signal combinationally derived from
/// normal's v_i. Since our normal FIFO is fully sync, we add a tiny
/// "monitor" module that forwards v combinationally (standing in for the
/// paper's "some combinational function of its valid_i" inside the
/// normal FIFO).
struct Figure3 {
  Design D;
  Circuit Circ{D, "fig3"};
  InstId Normal = 0, Fwd = 0, X = 0, Monitor = 0;

  Figure3() {
    ModuleId NormalId = D.addModule(gen::makeFifo({8, 2, false}));
    ModuleId FwdId = D.addModule(gen::makeFifo({8, 2, true}));
    ModuleId XId = D.addModule(gen::makePassthrough(1));
    // The monitor taps the wire driving normal.v_i combinationally —
    // exactly the role the normal FIFO's internal combinational fanout
    // of valid_i plays in the paper's Figure 3.
    ModuleId MonId = D.addModule(gen::makePassthrough(1));

    Normal = Circ.addInstance(NormalId, "fifo_normal");
    Fwd = Circ.addInstance(FwdId, "fifo_fwd");
    X = Circ.addInstance(XId, "module_x");
    Monitor = Circ.addInstance(MonId, "monitor");

    // fwd.v_o -> normal.v_i (the direct connection)...
    Circ.connect(Fwd, "v_o", Normal, "v_i");
    // ...and in parallel into the monitor...
    Circ.connect(Fwd, "v_o", Monitor, "data_i");
    // ...whose combinational output goes through module X...
    Circ.connect(Monitor, "data_o", X, "data_i");
    // ...and back into the forwarding FIFO's v_i: the loop.
    Circ.connect(X, "data_o", Fwd, "v_i");
  }
};

} // namespace

TEST(WellConnectedTest, Figure3LoopDetected) {
  Figure3 F;
  Summaries S = analyzeOrDie(F.D);
  CircuitCheckResult R = checkCircuit(F.Circ, S);
  EXPECT_FALSE(R.WellConnected);
  ASSERT_TRUE(R.Diags.hasError());
  std::string Desc = R.Diags.describe();
  EXPECT_NE(Desc.find("fifo_fwd"), std::string::npos) << Desc;
  EXPECT_NE(Desc.find("module_x"), std::string::npos) << Desc;
}

TEST(WellConnectedTest, Figure3PairwiseAgrees) {
  Figure3 F;
  Summaries S = analyzeOrDie(F.D);
  CircuitCheckResult R = checkCircuitPairwise(F.Circ, S);
  EXPECT_FALSE(R.WellConnected);
}

TEST(WellConnectedTest, Figure3WithNormalFifoIsFine) {
  // "If the forwarding FIFO were instead a normal FIFO ... then this
  // would be fine."
  Design D;
  ModuleId NormalId = D.addModule(gen::makeFifo({8, 2, false}));
  ModuleId XId = D.addModule(gen::makePassthrough(1));
  ModuleId MonId = D.addModule(gen::makePassthrough(1));

  Circuit Circ(D, "fig3_fixed");
  InstId N1 = Circ.addInstance(NormalId, "fifo1");
  InstId N2 = Circ.addInstance(NormalId, "fifo2");
  InstId X = Circ.addInstance(XId, "module_x");
  InstId Mon = Circ.addInstance(MonId, "monitor");
  Circ.connect(N2, "v_o", N1, "v_i");
  Circ.connect(N2, "v_o", Mon, "data_i");
  Circ.connect(Mon, "data_o", X, "data_i");
  Circ.connect(X, "data_o", N2, "v_i");

  Summaries S = analyzeOrDie(D);
  EXPECT_TRUE(checkCircuit(Circ, S).WellConnected);
  EXPECT_TRUE(checkCircuitPairwise(Circ, S).WellConnected);
}

TEST(WellConnectedTest, Figure5SyncConnectionsAlwaysSafe) {
  // from-sync -> to-port, from-port -> to-sync, from-sync -> to-sync:
  // all classified safe by sorts alone (Property 1).
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  ModuleId Normal = D.addModule(gen::makeFifo({8, 2, false}));

  Circuit Circ(D, "fig5");
  InstId A = Circ.addInstance(Fwd, "a");
  InstId B = Circ.addInstance(Normal, "b");
  // a.ready_o (from-sync) -> b.v_i (to-sync): doubly safe.
  Circ.connect(A, "ready_o", B, "v_i");
  // b.v_o (from-sync) -> a.v_i (to-port): safe by Property 1.
  Circ.connect(B, "v_o", A, "v_i");

  Summaries S = analyzeOrDie(D);
  CircuitCheckResult R = checkCircuit(Circ, S);
  EXPECT_TRUE(R.WellConnected);
  EXPECT_EQ(R.SafeBySort, 2u);
  EXPECT_EQ(R.NeedsCheck, 0u);
}

TEST(WellConnectedTest, Figure6PortPortSafeWhenNoCycleCloses) {
  // Figure 6a: from-port -> to-port with the downstream module's
  // affected outputs dangling — well-connected.
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  Circuit Circ(D, "fig6a");
  InstId A = Circ.addInstance(Fwd, "a");
  InstId B = Circ.addInstance(Fwd, "b");
  Circ.connect(A, "v_o", B, "v_i"); // from-port -> to-port.
  Summaries S = analyzeOrDie(D);
  CircuitCheckResult R = checkCircuit(Circ, S);
  EXPECT_TRUE(R.WellConnected);
  EXPECT_EQ(R.NeedsCheck, 1u);

  PortGraph PG = PortGraph::build(Circ, S);
  EXPECT_TRUE(isWellConnectedPair(PG, Circ, S, Circ.connections()[0]));
}

TEST(WellConnectedTest, Figure6PortPortLoopWhenCycleCloses) {
  // Figure 6b: close the cycle back through the second module.
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  ModuleId X = D.addModule(gen::makePassthrough(1));
  Circuit Circ(D, "fig6b");
  InstId A = Circ.addInstance(Fwd, "a");
  InstId B = Circ.addInstance(Fwd, "b");
  InstId Glue = Circ.addInstance(X, "glue");
  Circ.connect(A, "v_o", B, "v_i");
  Circ.connect(B, "v_o", Glue, "data_i");
  Circ.connect(Glue, "data_o", A, "v_i");
  Summaries S = analyzeOrDie(D);
  CircuitCheckResult R = checkCircuit(Circ, S);
  EXPECT_FALSE(R.WellConnected);
  ASSERT_TRUE(R.Diags.hasError());

  PortGraph PG = PortGraph::build(Circ, S);
  EXPECT_FALSE(isWellConnectedPair(PG, Circ, S, Circ.connections()[0]));
}

TEST(WellConnectedTest, SelfLoopThroughOneModule) {
  // A module whose own output feeds its own to-port input.
  Design D;
  ModuleId AndId = D.addModule(gen::makeCombAnd(1));
  Circuit Circ(D, "selfconn");
  InstId U = Circ.addInstance(AndId, "u");
  Circ.connect(U, "data_o", U, "a_i");
  Summaries S = analyzeOrDie(D);
  EXPECT_FALSE(checkCircuit(Circ, S).WellConnected);
  EXPECT_FALSE(checkCircuitPairwise(Circ, S).WellConnected);
}

TEST(WellConnectedTest, LongChainOfForwardingFifosIsSafe) {
  // Forwarding FIFOs in a pipeline (no back edge): fine, even though
  // every connection is from-port -> to-port.
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  Circuit Circ(D, "chain");
  std::vector<InstId> Insts;
  for (int I = 0; I != 10; ++I)
    Insts.push_back(Circ.addInstance(Fwd, "q" + std::to_string(I)));
  for (int I = 0; I + 1 != 10; ++I) {
    Circ.connect(Insts[I], "v_o", Insts[I + 1], "v_i");
    Circ.connect(Insts[I], "data_o", Insts[I + 1], "data_i");
  }
  Summaries S = analyzeOrDie(D);
  CircuitCheckResult R = checkCircuit(Circ, S);
  EXPECT_TRUE(R.WellConnected);
  EXPECT_EQ(R.NeedsCheck, 18u);
}

TEST(WellConnectedTest, RingOfForwardingFifosLoops) {
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  Circuit Circ(D, "ring");
  std::vector<InstId> Insts;
  for (int I = 0; I != 4; ++I)
    Insts.push_back(Circ.addInstance(Fwd, "q" + std::to_string(I)));
  for (int I = 0; I != 4; ++I)
    Circ.connect(Insts[I], "v_o", Insts[(I + 1) % 4], "v_i");
  Summaries S = analyzeOrDie(D);
  EXPECT_FALSE(checkCircuit(Circ, S).WellConnected);
}

TEST(WellConnectedTest, RingOfNormalFifosIsSafe) {
  Design D;
  ModuleId Normal = D.addModule(gen::makeFifo({8, 2, false}));
  Circuit Circ(D, "ring_ok");
  std::vector<InstId> Insts;
  for (int I = 0; I != 4; ++I)
    Insts.push_back(Circ.addInstance(Normal, "q" + std::to_string(I)));
  for (int I = 0; I != 4; ++I) {
    Circ.connect(Insts[I], "v_o", Insts[(I + 1) % 4], "v_i");
    Circ.connect(Insts[I], "data_o", Insts[(I + 1) % 4], "data_i");
    Circ.connect(Insts[I], "ready_o", Insts[(I + 1) % 4], "yumi_i");
  }
  Summaries S = analyzeOrDie(D);
  CircuitCheckResult R = checkCircuit(Circ, S);
  EXPECT_TRUE(R.WellConnected);
  // Everything safe by sorts: the universal interface.
  EXPECT_EQ(R.NeedsCheck, 0u);
}

TEST(WellConnectedTest, TransitivelyAffectsMatchesDefinition) {
  Figure3 F;
  Summaries S = analyzeOrDie(F.D);
  PortGraph PG = PortGraph::build(F.Circ, S);
  const Module &FwdDef = F.Circ.defOf(F.Fwd);
  // fwd.v_i ~> fwd.v_o via the summary edge.
  EXPECT_TRUE(PG.transitivelyAffects(
      PortRef{F.Fwd, FwdDef.findPort("v_i")},
      PortRef{F.Fwd, FwdDef.findPort("v_o")}));
  // fwd.yumi_i affects nothing combinationally.
  EXPECT_FALSE(PG.transitivelyAffects(
      PortRef{F.Fwd, FwdDef.findPort("yumi_i")},
      PortRef{F.Fwd, FwdDef.findPort("v_o")}));
}
