//===- tests/analysis/SummaryIOTest.cpp - Summary sidecar tests -----------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/SummaryIO.h"

#include "analysis/SortInference.h"
#include "analysis/WellConnected.h"
#include "gen/Catalog.h"
#include "gen/Fifo.h"
#include "gen/Random.h"
#include "gen/ShiftReg.h"

#include <gtest/gtest.h>

#include <random>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

using Summaries = std::map<ModuleId, ModuleSummary>;

Summaries analyzeOrDie(const Design &D) {
  Summaries Out;
  wiresort::support::Status Loop = analyzeDesign(D, Out);
  EXPECT_FALSE(Loop.hasError());
  return Out;
}

void expectEquivalent(const Design &D, const Summaries &A,
                      const Summaries &B) {
  ASSERT_EQ(A.size(), B.size());
  for (const auto &[Id, SA] : A) {
    const ModuleSummary &SB = B.at(Id);
    const Module &M = D.module(Id);
    for (WireId In : M.Inputs) {
      EXPECT_EQ(SA.sortOf(In), SB.sortOf(In)) << M.wire(In).Name;
      EXPECT_EQ(SA.outputPortSet(In), SB.outputPortSet(In))
          << M.wire(In).Name;
    }
    for (WireId Out : M.Outputs) {
      EXPECT_EQ(SA.sortOf(Out), SB.sortOf(Out)) << M.wire(Out).Name;
      EXPECT_EQ(SA.inputPortSet(Out), SB.inputPortSet(Out))
          << M.wire(Out).Name;
    }
  }
}

} // namespace

TEST(SummaryIOTest, RoundTripFifoAndPiso) {
  Design D;
  D.addModule(gen::makeFifo({8, 2, false}));
  D.addModule(gen::makeFifo({8, 2, true}));
  D.addModule(gen::makePiso({4, 8, false}));
  Summaries Original = analyzeOrDie(D);

  std::string Text = writeSummaries(D, Original);
  auto Parsed = parseSummaries(Text, D);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.describe();
  expectEquivalent(D, Original, *Parsed);
}

TEST(SummaryIOTest, SubsortsSurviveTheTrip) {
  Design D;
  ModuleId Id = D.addModule(gen::makeAddrStage(8));
  Summaries Original = analyzeOrDie(D);
  std::string Text = writeSummaries(D, Original);
  EXPECT_NE(Text.find("from-sync direct"), std::string::npos) << Text;

  auto Parsed = parseSummaries(Text, D);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.describe();
  const Module &M = D.module(Id);
  EXPECT_EQ(Parsed->at(Id).subSortOf(M.findPort("raddr_o")),
            SubSort::Direct);
}

TEST(SummaryIOTest, ParsedSummariesDriveTheChecker) {
  // The whole point: shipping a .wsort next to opaque IP is enough to
  // check compositions.
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  Summaries Original = analyzeOrDie(D);
  std::string Text = writeSummaries(D, Original);
  auto Parsed = parseSummaries(Text, D);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.describe();

  Circuit Circ(D, "ring");
  InstId A = Circ.addInstance(Fwd, "a");
  InstId B = Circ.addInstance(Fwd, "b");
  Circ.connect(A, "v_o", B, "v_i");
  Circ.connect(B, "v_o", A, "v_i");
  EXPECT_FALSE(checkCircuit(Circ, *Parsed).WellConnected);
}

TEST(SummaryIOTest, InconsistentDeclarationsRejected) {
  Design D;
  D.addModule(gen::makeFifo({8, 2, true}));

  // v_o claims no dependencies while v_i claims to reach it.
  const char *Bad = R"(module fifo_fwd_w8_d4
  input data_i to-sync
  input v_i to-port {v_o}
  input yumi_i to-sync
  output data_o from-sync
  output v_o from-sync
  output ready_o from-sync
end
)";
  auto Parsed = parseSummaries(Bad, D);
  EXPECT_FALSE(Parsed.hasValue());
  EXPECT_NE(Parsed.describe().find("inconsistent"), std::string::npos)
      << Parsed.describe();
}

TEST(SummaryIOTest, ErrorsNameLinesAndPorts) {
  Design D;
  D.addModule(gen::makeFifo({8, 2, false}));

  // Each rejection carries a WS221 diag locating the offending line of
  // the named sidecar.
  auto expectRejected = [&](const std::string &Text, const char *Needle,
                            size_t Line) {
    auto Parsed = parseSummaries(Text, D, "decl.wsort");
    ASSERT_FALSE(Parsed.hasValue()) << Text;
    const support::Diag &Diag = Parsed.diags().firstError();
    EXPECT_EQ(Diag.code(), support::DiagCode::WS221_SUMMARY_SYNTAX);
    EXPECT_NE(Diag.message().find(Needle), std::string::npos)
        << Diag.describe();
    ASSERT_TRUE(Diag.loc().has_value());
    EXPECT_EQ(Diag.loc()->File, "decl.wsort");
    EXPECT_EQ(Diag.loc()->Line, Line);
  };
  expectRejected("module nope\nend\n", "unknown module", 1);
  expectRejected("module fifo_w8_d4\n  input bogus to-sync\nend\n",
                 "no port", 2);
  expectRejected("module fifo_w8_d4\n  input v_i to-port\nend\n",
                 "nonempty", 2);
  expectRejected("module fifo_w8_d4\n", "missing final", 1);
}

TEST(SummaryIOTest, MissingPortRejected) {
  Design D;
  D.addModule(gen::makeFifo({8, 2, false}));
  const char *Partial = R"(module fifo_w8_d4
  input data_i to-sync
  output data_o from-sync
  output v_o from-sync
  output ready_o from-sync
end
)";
  auto Parsed = parseSummaries(Partial, D);
  EXPECT_FALSE(Parsed.hasValue());
  EXPECT_NE(Parsed.describe().find("missing"), std::string::npos);
}

TEST(SummaryIOTest, RandomModulesRoundTrip) {
  std::mt19937 Rng(2024);
  for (int Trial = 0; Trial != 25; ++Trial) {
    Design D;
    gen::RandomModuleParams P;
    P.NInputs = 3 + Trial % 5;
    P.NOutputs = 2 + Trial % 4;
    P.NGates = 10 + Trial;
    D.addModule(
        gen::randomModule(Rng, P, "rt" + std::to_string(Trial)));
    Summaries Original = analyzeOrDie(D);
    std::string Text = writeSummaries(D, Original);
    auto Parsed = parseSummaries(Text, D);
    ASSERT_TRUE(Parsed.hasValue()) << Parsed.describe() << "\n" << Text;
    expectEquivalent(D, Original, *Parsed);
  }
}
