//===- tests/analysis/IncrementalTest.cpp - Section 4 trigger tests -------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"

#include "analysis/SortInference.h"
#include "analysis/WellConnected.h"
#include "gen/Catalog.h"
#include "gen/Fifo.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

using Summaries = std::map<ModuleId, ModuleSummary>;

Summaries analyzeOrDie(const Design &D) {
  Summaries Out;
  wiresort::support::Status Loop = analyzeDesign(D, Out);
  EXPECT_FALSE(Loop.hasError());
  return Out;
}

} // namespace

TEST(IncrementalTest, SyncConnectionsNeverTrigger) {
  // Wiring normal FIFOs: all ports sync, so the Section 4 condition
  // ("forward reach includes a to-port input AND backward reach includes
  // a from-port output") never fires.
  Design D;
  ModuleId Normal = D.addModule(gen::makeFifo({8, 2, false}));
  Circuit Circ(D, "pipe");
  std::vector<InstId> Insts;
  for (int I = 0; I != 5; ++I)
    Insts.push_back(Circ.addInstance(Normal, "q" + std::to_string(I)));
  Summaries S = analyzeOrDie(D);

  IncrementalChecker Checker(Circ, S);
  for (int I = 0; I + 1 != 5; ++I) {
    Circ.connect(Insts[I], "v_o", Insts[I + 1], "v_i");
    auto Step = Checker.addConnection(Circ.connections().back());
    EXPECT_FALSE(Step.CheckTriggered);
    EXPECT_FALSE(Step.Diags.hasError());
  }
  EXPECT_EQ(Checker.numChecksTriggered(), 0u);
  EXPECT_EQ(Checker.numChecksSkipped(), 4u);
}

TEST(IncrementalTest, LoopFoundTheMomentItExists) {
  // Ring of forwarding FIFOs: the first three connections trigger checks
  // (port sorts on both sides) but find nothing; the closing connection
  // reports the loop immediately.
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  Circuit Circ(D, "ring");
  std::vector<InstId> Insts;
  for (int I = 0; I != 4; ++I)
    Insts.push_back(Circ.addInstance(Fwd, "q" + std::to_string(I)));
  Summaries S = analyzeOrDie(D);

  IncrementalChecker Checker(Circ, S);
  for (int I = 0; I != 3; ++I) {
    Circ.connect(Insts[I], "v_o", Insts[I + 1], "v_i");
    auto Step = Checker.addConnection(Circ.connections().back());
    EXPECT_FALSE(Step.Diags.hasError()) << "premature loop at " << I;
  }
  Circ.connect(Insts[3], "v_o", Insts[0], "v_i");
  auto Step = Checker.addConnection(Circ.connections().back());
  EXPECT_TRUE(Step.CheckTriggered);
  ASSERT_TRUE(Step.Diags.hasError());
  EXPECT_NE(Step.Diags.describe().find("q0"), std::string::npos);

  // The incremental verdict agrees with the whole-circuit checker.
  EXPECT_FALSE(checkCircuit(Circ, S).WellConnected);
}

TEST(IncrementalTest, TriggerRequiresBothDirections) {
  // from-port output into a to-sync input: backward condition holds but
  // forward does not; no check.
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  Circuit Circ(D, "mixed");
  InstId A = Circ.addInstance(Fwd, "a");
  InstId B = Circ.addInstance(Fwd, "b");
  Summaries S = analyzeOrDie(D);
  IncrementalChecker Checker(Circ, S);

  // a.v_o (from-port) -> b.yumi_i (to-sync): no forward to-port.
  Circ.connect(A, "v_o", B, "yumi_i");
  auto Step1 = Checker.addConnection(Circ.connections().back());
  EXPECT_FALSE(Step1.CheckTriggered);

  // a.ready_o (from-sync) -> b.v_i (to-port): no backward from-port.
  Circ.connect(A, "ready_o", B, "v_i");
  auto Step2 = Checker.addConnection(Circ.connections().back());
  EXPECT_FALSE(Step2.CheckTriggered);

  // b.v_o (from-port) -> a.v_i (to-port): both conditions; check runs,
  // no loop yet.
  Circ.connect(B, "v_o", A, "v_i");
  auto Step3 = Checker.addConnection(Circ.connections().back());
  EXPECT_TRUE(Step3.CheckTriggered);
  EXPECT_FALSE(Step3.Diags.hasError());
}

TEST(IncrementalTest, TransitiveTriggerAcrossModules) {
  // The trigger walks through module summaries: a from-port output
  // reaches a to-port input through an intermediate passthrough.
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  ModuleId Pass = D.addModule(gen::makePassthrough(1));
  Circuit Circ(D, "transitive");
  InstId A = Circ.addInstance(Fwd, "a");
  InstId P = Circ.addInstance(Pass, "p");
  Summaries S = analyzeOrDie(D);
  IncrementalChecker Checker(Circ, S);

  Circ.connect(A, "v_o", P, "data_i");
  auto Step1 = Checker.addConnection(Circ.connections().back());
  // p.data_i is to-port (combinational passthrough) — triggers.
  EXPECT_TRUE(Step1.CheckTriggered);
  EXPECT_FALSE(Step1.Diags.hasError());

  Circ.connect(P, "data_o", A, "v_i");
  auto Step2 = Checker.addConnection(Circ.connections().back());
  EXPECT_TRUE(Step2.CheckTriggered);
  ASSERT_TRUE(Step2.Diags.hasError());
}
