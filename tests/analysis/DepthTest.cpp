//===- tests/analysis/DepthTest.cpp - Timing extension tests --------------===//
//
// Part of the wiresort project. The future-work extension (combinational
// depth through module summaries) validated against exhaustive longest
// paths on the lowered netlist.
//
//===----------------------------------------------------------------------===//

#include "analysis/Depth.h"

#include "analysis/SortInference.h"
#include "gen/Catalog.h"
#include "gen/Fifo.h"
#include "gen/Random.h"
#include "ir/Builder.h"
#include "synth/Lower.h"

#include <gtest/gtest.h>

#include <random>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

struct Analyzed {
  std::map<ModuleId, ModuleSummary> Summaries;
  std::map<ModuleId, DepthSummary> Depths;
};

Analyzed analyzeOrDie(const Design &D) {
  Analyzed A;
  EXPECT_FALSE(analyzeDesign(D, A.Summaries).hasError());
  auto Depths = inferAllDepths(D, A.Summaries);
  EXPECT_TRUE(Depths.has_value());
  A.Depths = std::move(*Depths);
  return A;
}

/// Exhaustive longest path over the lowered 1-bit netlist (unit weight
/// per non-Buf gate), from bit 0 of \p FromName to bit 0 of \p ToName.
int64_t gateLevelDepth(const Design &D, ModuleId Id,
                       const std::string &FromName,
                       const std::string &ToName) {
  Module Gates = synth::lower(D, Id);
  Graph G(Gates.numWires());
  std::vector<uint32_t> Weight;
  std::vector<std::pair<WireId, WireId>> Edges;
  for (const Net &N : Gates.Nets)
    for (WireId In : N.Inputs) {
      G.addEdge(In, N.Output);
      Edges.emplace_back(In, N.Output);
      Weight.push_back(N.Operation == Op::Buf ? 0 : 1);
    }
  auto Topo = G.topoSort();
  EXPECT_TRUE(Topo.has_value());
  std::vector<int64_t> Dist(Gates.numWires(), -1);
  WireId From = Gates.findWire(FromName + "[0]");
  WireId To = Gates.findWire(ToName + "[0]");
  EXPECT_NE(From, InvalidId);
  EXPECT_NE(To, InvalidId);
  Dist[From] = 0;
  std::vector<std::vector<std::pair<WireId, uint32_t>>> BySource(
      Gates.numWires());
  for (size_t I = 0; I != Edges.size(); ++I)
    BySource[Edges[I].first].emplace_back(Edges[I].second, Weight[I]);
  for (WireId W : *Topo) {
    if (Dist[W] < 0)
      continue;
    for (const auto &[Next, Wt] : BySource[W])
      Dist[Next] = std::max(Dist[Next], Dist[W] + Wt);
  }
  return Dist[To];
}

} // namespace

TEST(DepthTest, PureWiringIsDepthZero) {
  Design D;
  ModuleId Id = D.addModule(gen::makePassthrough(8));
  Analyzed A = analyzeOrDie(D);
  const Module &M = D.module(Id);
  EXPECT_EQ(A.Depths.at(Id).pairDepth(M.findPort("data_i"),
                                      M.findPort("data_o")),
            0u);
}

TEST(DepthTest, SingleGateIsDepthOne) {
  Design D;
  ModuleId Id = D.addModule(gen::makeCombAnd(4));
  Analyzed A = analyzeOrDie(D);
  const Module &M = D.module(Id);
  EXPECT_EQ(A.Depths.at(Id).pairDepth(M.findPort("a_i"),
                                      M.findPort("data_o")),
            1u);
}

TEST(DepthTest, ChainsAccumulate) {
  Builder B("chain");
  V A = B.input("a", 1);
  V Acc = A;
  for (int I = 0; I != 7; ++I)
    Acc = B.notv(Acc);
  B.output("y", Acc);
  Design D;
  ModuleId Id = D.addModule(B.finish());
  Analyzed An = analyzeOrDie(D);
  const Module &M = D.module(Id);
  EXPECT_EQ(An.Depths.at(Id).pairDepth(M.findPort("a"), M.findPort("y")),
            7u);
}

TEST(DepthTest, RegistersResetTheClock) {
  Builder B("regsplit");
  V A = B.input("a", 1);
  V Pre = B.notv(B.notv(A));       // 2 levels into the register.
  V Q = B.reg(Pre, "q");
  V Post = B.notv(Q);              // 1 level out of it.
  B.output("y", Post);
  Design D;
  ModuleId Id = D.addModule(B.finish());
  Analyzed An = analyzeOrDie(D);
  const Module &M = D.module(Id);
  const DepthSummary &S = An.Depths.at(Id);
  EXPECT_EQ(S.ToStateDepth.at(M.findPort("a")), 2u);
  EXPECT_EQ(S.FromStateDepth.at(M.findPort("y")), 1u);
  EXPECT_TRUE(S.PairDepth.empty()); // No comb in-to-out path at all.
}

TEST(DepthTest, InternalDepthSeesRegToRegPaths) {
  Builder B("internal");
  V A = B.input("a", 1);
  V Q1 = B.reg(A, "q1");
  V Deep = Q1;
  for (int I = 0; I != 5; ++I)
    Deep = B.notv(Deep);
  V Q2 = B.reg(Deep, "q2");
  B.output("y", Q2);
  Design D;
  ModuleId Id = D.addModule(B.finish());
  Analyzed An = analyzeOrDie(D);
  EXPECT_EQ(An.Depths.at(Id).InternalDepth, 5u);
}

TEST(DepthTest, HierarchyComposesDepths) {
  Design D;
  Builder Leaf("leaf3");
  {
    V A = Leaf.input("a", 1);
    V Acc = A;
    for (int I = 0; I != 3; ++I)
      Acc = Leaf.notv(Acc);
    Leaf.output("y", Acc);
  }
  ModuleId LeafId = D.addModule(Leaf.finish());

  Builder Top("top3");
  V X = Top.input("x", 1);
  auto O1 = Top.instantiate(D, LeafId, "u0", {{"a", X}});
  auto O2 = Top.instantiate(D, LeafId, "u1", {{"a", O1.at("y")}});
  Top.output("y", O2.at("y"));
  ModuleId TopId = D.addModule(Top.finish());

  Analyzed An = analyzeOrDie(D);
  const Module &M = D.module(TopId);
  EXPECT_EQ(An.Depths.at(TopId).pairDepth(M.findPort("x"),
                                          M.findPort("y")),
            6u);
}

TEST(DepthTest, MatchesGateLevelOnOneBitRandomModules) {
  // On 1-bit random modules every RTL op weighs exactly 1, so the
  // modular depth must equal the exhaustive gate-level longest path.
  std::mt19937 Rng(555);
  for (int Trial = 0; Trial != 25; ++Trial) {
    Design D;
    gen::RandomModuleParams P;
    P.NInputs = 3;
    P.NOutputs = 3;
    P.NGates = 20 + Trial;
    P.PReg = 0.2;
    ModuleId Id = D.addModule(
        gen::randomModule(Rng, P, "d" + std::to_string(Trial)));
    Analyzed An = analyzeOrDie(D);
    const Module &M = D.module(Id);
    const ModuleSummary &Summary = An.Summaries.at(Id);
    for (WireId In : M.Inputs)
      for (WireId Out : Summary.outputPortSet(In)) {
        int64_t Gate = gateLevelDepth(D, Id, M.wire(In).Name,
                                      M.wire(Out).Name);
        EXPECT_EQ(int64_t(An.Depths.at(Id).pairDepth(In, Out)), Gate)
            << "trial " << Trial << ": " << M.wire(In).Name << " -> "
            << M.wire(Out).Name;
      }
  }
}

TEST(DepthTest, CircuitCriticalDepthCrossesBoundaries) {
  // Three combinational 2-level modules between registers: the critical
  // path is endDepth + sum of pair depths + startDepth.
  Design D;
  ModuleId TwoLevel = [&] {
    Builder B("two_level");
    V A = B.input("a", 1);
    B.output("y", B.notv(B.notv(A)));
    return D.addModule(B.finish());
  }();
  ModuleId Source = [&] {
    Builder B("source");
    V A = B.input("a", 1);
    B.output("y", B.notv(B.reg(A, "q"))); // 1 level from state.
    return D.addModule(B.finish());
  }();
  ModuleId Sink = [&] {
    Builder B("sink");
    V A = B.input("a", 1);
    B.output("y", B.reg(B.notv(B.notv(B.notv(A))), "q")); // 3 into state.
    return D.addModule(B.finish());
  }();

  Circuit Circ(D, "path");
  InstId S = Circ.addInstance(Source, "src");
  InstId M1 = Circ.addInstance(TwoLevel, "m1");
  InstId M2 = Circ.addInstance(TwoLevel, "m2");
  InstId K = Circ.addInstance(Sink, "sink");
  Circ.connect(S, "y", M1, "a");
  Circ.connect(M1, "y", M2, "a");
  Circ.connect(M2, "y", K, "a");

  Analyzed An = analyzeOrDie(D);
  // 1 (from state) + 2 + 2 (two modules) + 3 (into state) = 8.
  EXPECT_EQ(circuitCriticalDepth(Circ, An.Summaries, An.Depths), 8u);
}

TEST(DepthTest, AdderDepthScalesWithWidth) {
  Design D;
  ModuleId Narrow = [&] {
    Builder B("add8");
    B.output("y", B.add(B.input("a", 8), B.input("b", 8)));
    return D.addModule(B.finish());
  }();
  ModuleId Wide = [&] {
    Builder B("add32");
    B.output("y", B.add(B.input("a", 32), B.input("b", 32)));
    return D.addModule(B.finish());
  }();
  Analyzed An = analyzeOrDie(D);
  const Module &NM = D.module(Narrow);
  const Module &WM = D.module(Wide);
  uint32_t DN = An.Depths.at(Narrow).pairDepth(NM.findPort("a"),
                                               NM.findPort("y"));
  uint32_t DW = An.Depths.at(Wide).pairDepth(WM.findPort("a"),
                                             WM.findPort("y"));
  EXPECT_GT(DW, 3 * DN); // Ripple carry: ~2W levels.
}

TEST(DepthTest, FifoDepthsAreFinite) {
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo({8, 3, true}));
  Analyzed An = analyzeOrDie(D);
  const Module &M = D.module(Id);
  const DepthSummary &S = An.Depths.at(Id);
  // The forwarding path v_i -> v_o exists and has nonzero depth.
  EXPECT_GT(S.pairDepth(M.findPort("v_i"), M.findPort("v_o")), 0u);
  EXPECT_GT(S.InternalDepth, 0u);
}
