//===- tests/analysis/AscriptionTest.cpp - Annotation check tests ---------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Ascription.h"

#include "analysis/SortInference.h"
#include "analysis/WellConnected.h"
#include "gen/Fifo.h"
#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

TEST(AscriptionTest, MatchingDeclarationsAccepted) {
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo({8, 2, true}));
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const Module &M = D.module(Id);

  std::vector<Ascription> Decl;
  Decl.push_back({M.findPort("yumi_i"), Sort::ToSync, {}, SubSort::None});
  Decl.push_back({M.findPort("v_i"), Sort::ToPort,
                  Out.at(Id).outputPortSet(M.findPort("v_i")),
                  SubSort::None});
  Decl.push_back(
      {M.findPort("ready_o"), Sort::FromSync, {}, SubSort::None});
  EXPECT_TRUE(checkAscriptions(M, Out.at(Id), Decl).empty());
}

TEST(AscriptionTest, WrongSortReported) {
  // A designer believing the forwarding FIFO's v_i is to-sync — exactly
  // the misunderstanding wire sorts exist to catch.
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo({8, 2, true}));
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const Module &M = D.module(Id);

  std::vector<Ascription> Decl;
  Decl.push_back({M.findPort("v_i"), Sort::ToSync, {}, SubSort::None});
  auto Mismatches = checkAscriptions(M, Out.at(Id), Decl);
  ASSERT_EQ(Mismatches.size(), 1u);
  EXPECT_NE(Mismatches[0].message().find("declared to-sync"),
            std::string::npos);
  EXPECT_NE(Mismatches[0].message().find("computed to-port"),
            std::string::npos);
}

TEST(AscriptionTest, WrongPortSetReported) {
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo({8, 2, true}));
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const Module &M = D.module(Id);

  std::vector<Ascription> Decl;
  // Claim v_i only reaches v_o when it actually also reaches data_o.
  Decl.push_back({M.findPort("v_i"), Sort::ToPort,
                  {M.findPort("v_o")}, SubSort::None});
  auto Mismatches = checkAscriptions(M, Out.at(Id), Decl);
  ASSERT_EQ(Mismatches.size(), 1u);
  EXPECT_NE(Mismatches[0].message().find("port set"), std::string::npos);
}

TEST(AscriptionTest, WrongSubsortReported) {
  Builder B("after_logic");
  V A = B.input("a", 8);
  B.output("y", B.notv(B.reg(A, "r")));
  Design D;
  ModuleId Id = D.addModule(B.finish());
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const Module &M = D.module(Id);

  std::vector<Ascription> Decl;
  Decl.push_back(
      {M.findPort("y"), Sort::FromSync, {}, SubSort::Direct});
  auto Mismatches = checkAscriptions(M, Out.at(Id), Decl);
  ASSERT_EQ(Mismatches.size(), 1u);
  EXPECT_NE(Mismatches[0].message().find("subsort"), std::string::npos);
}

namespace {

/// An opaque (empty-body) module shaped like the forwarding FIFO's
/// interface, as encrypted IP would appear.
Module opaqueFifoInterface() {
  Module M("opaque_fwd_fifo");
  M.addInput("data_i", 8);
  M.addInput("v_i", 1);
  M.addInput("yumi_i", 1);
  M.addOutput("data_o", 8);
  M.addOutput("v_o", 1);
  M.addOutput("ready_o", 1);
  return M;
}

} // namespace

TEST(AscriptionTest, OpaqueModuleSummaryFromFullAscriptions) {
  Module M = opaqueFifoInterface();
  std::vector<Ascription> Decl;
  Decl.push_back({M.findPort("data_i"), Sort::ToPort,
                  {M.findPort("data_o")}, SubSort::None});
  Decl.push_back({M.findPort("v_i"), Sort::ToPort,
                  {M.findPort("v_o"), M.findPort("data_o")},
                  SubSort::None});
  Decl.push_back({M.findPort("yumi_i"), Sort::ToSync, {}, SubSort::None});
  Decl.push_back({M.findPort("data_o"), Sort::FromPort, {},
                  SubSort::None});
  Decl.push_back({M.findPort("v_o"), Sort::FromPort, {}, SubSort::None});
  Decl.push_back(
      {M.findPort("ready_o"), Sort::FromSync, {}, SubSort::None});

  auto Summary = summaryFromAscriptions(M, 0, Decl);
  ASSERT_TRUE(Summary.hasValue()) << Summary.describe();
  EXPECT_EQ(Summary->sortOf(M.findPort("v_i")), Sort::ToPort);
  EXPECT_EQ(Summary->sortOf(M.findPort("v_o")), Sort::FromPort);
  // input-port-sets derived by inversion.
  EXPECT_EQ(Summary->inputPortSet(M.findPort("v_o")),
            std::vector<WireId>{M.findPort("v_i")});

  // The opaque summary plugs into the circuit checker like any other:
  // a ring of two opaque forwarding FIFOs still reports the loop.
  Design D;
  ModuleId Id = D.addModule(M);
  Circuit Circ(D, "opaque_ring");
  InstId U0 = Circ.addInstance(Id, "u0");
  InstId U1 = Circ.addInstance(Id, "u1");
  Circ.connect(U0, "v_o", U1, "v_i");
  Circ.connect(U1, "v_o", U0, "v_i");
  std::map<ModuleId, ModuleSummary> S{{Id, *Summary}};
  EXPECT_FALSE(checkCircuit(Circ, S).WellConnected);
}

TEST(AscriptionTest, OpaqueModuleMissingAscriptionRejected) {
  Module M = opaqueFifoInterface();
  std::vector<Ascription> Decl; // Nothing declared.
  auto Summary = summaryFromAscriptions(M, 0, Decl);
  EXPECT_FALSE(Summary.hasValue());
  EXPECT_NE(Summary.describe().find("lacks an ascription"),
            std::string::npos);
}

TEST(AscriptionTest, OpaqueToPortWithoutSetRejected) {
  Module M = opaqueFifoInterface();
  std::vector<Ascription> Decl;
  Decl.push_back({M.findPort("data_i"), Sort::ToPort, {}, SubSort::None});
  auto Summary = summaryFromAscriptions(M, 0, Decl);
  EXPECT_FALSE(Summary.hasValue());
  EXPECT_NE(Summary.describe().find("output-port-set"),
            std::string::npos);
}

TEST(AscriptionTest, OpaqueInconsistentOutputSortRejected) {
  Module M = opaqueFifoInterface();
  std::vector<Ascription> Decl;
  Decl.push_back({M.findPort("data_i"), Sort::ToSync, {}, SubSort::None});
  Decl.push_back({M.findPort("v_i"), Sort::ToSync, {}, SubSort::None});
  Decl.push_back({M.findPort("yumi_i"), Sort::ToSync, {}, SubSort::None});
  // Declares v_o from-port although no input reaches it.
  Decl.push_back({M.findPort("data_o"), Sort::FromSync, {},
                  SubSort::None});
  Decl.push_back({M.findPort("v_o"), Sort::FromPort, {}, SubSort::None});
  Decl.push_back(
      {M.findPort("ready_o"), Sort::FromSync, {}, SubSort::None});
  auto Summary = summaryFromAscriptions(M, 0, Decl);
  EXPECT_FALSE(Summary.hasValue());
  EXPECT_NE(Summary.describe().find("imply"), std::string::npos);
}
