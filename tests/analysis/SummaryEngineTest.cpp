//===- tests/analysis/SummaryEngineTest.cpp - Engine unit tests -----------===//
//
// Part of the wiresort project. Unit coverage for the parallel cached
// Stage-1 driver: DAG scheduling over diamond hierarchies, cache hit and
// miss accounting, content-addressed keys (design-independent, renaming-
// insensitive, sub-summary-sensitive), ascription, and the disk sidecar.
// The cross-cutting guarantees (verdict equals the flattened oracle,
// determinism across thread counts) live in tests/property/.
//
//===----------------------------------------------------------------------===//

#include "analysis/SummaryEngine.h"

#include "analysis/SortInference.h"
#include "analysis/SummaryIO.h"
#include "gen/Fifo.h"
#include "gen/LoopInjector.h"
#include "ir/Builder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

using Summaries = std::map<ModuleId, ModuleSummary>;

/// leaf <- mid_a, leaf <- mid_b, {mid_a, mid_b} <- top: the classic
/// diamond. \returns {leaf, mid_a, mid_b, top}.
std::vector<ModuleId> buildDiamond(Design &D) {
  ModuleId Leaf = D.addModule(gen::makeFifo({8, 2, /*Forwarding=*/true}));

  std::vector<ModuleId> Ids = {Leaf};
  for (const char *Name : {"mid_a", "mid_b"}) {
    Circuit Mid(D, Name);
    InstId Front = Mid.addInstance(Leaf, "front");
    InstId Back = Mid.addInstance(Leaf, "back");
    Mid.connect(Front, "v_o", Back, "v_i");
    Ids.push_back(Mid.seal());
  }

  Circuit Top(D, "top");
  InstId A = Top.addInstance(Ids[1], "a");
  InstId B = Top.addInstance(Ids[2], "b");
  Top.connect(A, "back.v_o", B, "front.v_i");
  Ids.push_back(Top.seal());
  return Ids;
}

Summaries engineAnalyzeOrDie(SummaryEngine &Engine, const Design &D) {
  Summaries Out;
  auto Loop = Engine.analyze(D, Out);
  EXPECT_FALSE(Loop.hasError()) << Loop.describe();
  return Out;
}

void expectAllEqual(const Summaries &A, const Summaries &B) {
  ASSERT_EQ(A.size(), B.size());
  for (const auto &[Id, S] : A)
    EXPECT_TRUE(structurallyEqual(S, B.at(Id))) << "module id " << Id;
}

/// A tiny module with a fixed shape; \p Twist changes the body, \p Name
/// only the label.
Module makeCone(const std::string &Name, bool Twist) {
  Builder B(Name);
  V X = B.input("x", 1);
  V Y = B.input("y", 1);
  V T = Twist ? B.andv(X, Y) : B.xorv(X, Y);
  B.output("z", B.notv(T));
  return B.finish();
}

} // namespace

TEST(SummaryEngineTest, DiamondMatchesSerialAnalyzeDesign) {
  for (unsigned Threads : {1u, 4u}) {
    Design D;
    buildDiamond(D);

    Summaries Reference;
    ASSERT_FALSE(analyzeDesign(D, Reference).hasError());

    CheckOptions Opts;
    Opts.Threads = Threads;
    SummaryEngine Engine(Opts);
    Summaries Out = engineAnalyzeOrDie(Engine, D);
    expectAllEqual(Reference, Out);
    EXPECT_EQ(Engine.stats().Modules, D.numModules());
  }
}

TEST(SummaryEngineTest, DiamondSchedulesDependenciesBeforeDependents) {
  // The engine must summarize leaf before mids before top; since
  // inferSummary asserts its sub-summaries exist, a wrong order dies
  // loudly. Verify the observable part: every module got a summary and
  // the sub-summary-dependent keys differ across levels.
  Design D;
  std::vector<ModuleId> Ids = buildDiamond(D);
  SummaryEngine Engine;
  Summaries Out = engineAnalyzeOrDie(Engine, D);
  ASSERT_EQ(Out.size(), D.numModules());
  // mid_a and mid_b are separate seals with identical shape: same key.
  EXPECT_EQ(Engine.keyOf(Ids[1]), Engine.keyOf(Ids[2]));
  EXPECT_NE(Engine.keyOf(Ids[0]), Engine.keyOf(Ids[1]));
  EXPECT_NE(Engine.keyOf(Ids[1]), Engine.keyOf(Ids[3]));
}

TEST(SummaryEngineTest, CacheAccountingColdAndWarm) {
  Design D;
  buildDiamond(D);
  SummaryEngine Engine;

  engineAnalyzeOrDie(Engine, D);
  const EngineStats &Cold = Engine.stats();
  EXPECT_EQ(Cold.Modules, D.numModules());
  // mid_b is content-identical to mid_a, so even the cold pass serves it
  // from the cache.
  EXPECT_EQ(Cold.Inferred, D.numModules() - 1);
  EXPECT_EQ(Cold.CacheHits, 1u);

  engineAnalyzeOrDie(Engine, D);
  const EngineStats &Warm = Engine.stats();
  EXPECT_EQ(Warm.Inferred, 0u);
  EXPECT_EQ(Warm.CacheHits, D.numModules());
  // The cache holds one entry per distinct content.
  EXPECT_EQ(Engine.cache().size(), D.numModules() - 1);
}

TEST(SummaryEngineTest, RenamingIsKeyNeutralBodyEditIsNot) {
  Design D;
  ModuleId A = D.addModule(makeCone("cone_a", false));
  ModuleId B = D.addModule(makeCone("cone_b", false)); // Renamed only.
  ModuleId C = D.addModule(makeCone("cone_c", true));  // Different body.
  SummaryEngine Engine;
  Summaries Out = engineAnalyzeOrDie(Engine, D);

  EXPECT_EQ(Engine.keyOf(A), Engine.keyOf(B));
  EXPECT_NE(Engine.keyOf(A), Engine.keyOf(C));
  // The shared entry still reports each module's own identity.
  EXPECT_EQ(Out.at(B).ModuleName, "cone_b");
  EXPECT_EQ(Out.at(B).Id, B);
}

TEST(SummaryEngineTest, LeafEditInvalidatesTransitiveInstantiators) {
  Design D;
  std::vector<ModuleId> Ids = buildDiamond(D);
  SummaryEngine Engine;
  engineAnalyzeOrDie(Engine, D);
  std::vector<uint64_t> Before;
  for (ModuleId Id : Ids)
    Before.push_back(Engine.keyOf(Id));

  // Edit the leaf: a summary-neutral pair of inverters off a constant.
  Module &Leaf = D.module(Ids[0]);
  WireId C0 = Leaf.addWire("edit_c", WireKind::Const, 1, 0);
  WireId W = Leaf.addWire("edit_w", WireKind::Basic, 1);
  Leaf.addNet(Op::Not, {C0}, W);

  engineAnalyzeOrDie(Engine, D);
  // Everything re-keys (leaf body changed; the rest via sub-summary
  // keys), so everything re-infers even though the summaries are
  // unchanged.
  for (size_t I = 0; I != Ids.size(); ++I)
    EXPECT_NE(Engine.keyOf(Ids[I]), Before[I]) << "module " << I;
  EXPECT_EQ(Engine.stats().CacheHits, 1u); // mid_b off fresh mid_a again.
  EXPECT_EQ(Engine.stats().Inferred, D.numModules() - 1);
}

TEST(SummaryEngineTest, KeysAreDesignIndependent) {
  // Same content at different module ids (a dummy shifts everything)
  // must produce the same keys — the "content-addressed" in the name.
  Design D1;
  ModuleId L1 = D1.addModule(gen::makeFifo({8, 2, true}));
  Circuit C1(D1, "wrap");
  C1.addInstance(L1, "inner");
  ModuleId W1 = C1.seal();

  Design D2;
  D2.addModule(makeCone("dummy", false));
  ModuleId L2 = D2.addModule(gen::makeFifo({8, 2, true}));
  Circuit C2(D2, "wrap");
  C2.addInstance(L2, "inner");
  ModuleId W2 = C2.seal();

  SummaryEngine Engine;
  engineAnalyzeOrDie(Engine, D1);
  uint64_t KeyL = Engine.keyOf(L1), KeyW = Engine.keyOf(W1);

  engineAnalyzeOrDie(Engine, D2);
  EXPECT_EQ(Engine.keyOf(L2), KeyL);
  EXPECT_EQ(Engine.keyOf(W2), KeyW);
  // And the shared cache served both across the design boundary.
  EXPECT_GE(Engine.stats().CacheHits, 2u);
}

TEST(SummaryEngineTest, DisabledCacheNeverHits) {
  Design D;
  buildDiamond(D);
  CheckOptions Opts;
  Opts.UseCache = false;
  SummaryEngine Engine(Opts);
  Summaries First = engineAnalyzeOrDie(Engine, D);
  Summaries Second = engineAnalyzeOrDie(Engine, D);
  EXPECT_EQ(Engine.stats().CacheHits, 0u);
  EXPECT_EQ(Engine.stats().Inferred, D.numModules());
  EXPECT_EQ(Engine.cache().size(), 0u);
  expectAllEqual(First, Second);
}

TEST(SummaryEngineTest, AscribedModulesAreTakenAsIs) {
  Design D;
  ModuleId Leaf = D.addModule(gen::makeFifo({8, 2, true}));
  Circuit C(D, "wrap");
  C.addInstance(Leaf, "inner");
  C.seal();

  Summaries Reference;
  ASSERT_FALSE(analyzeDesign(D, Reference).hasError());
  Summaries Ascribed = {{Leaf, Reference.at(Leaf)}};

  SummaryEngine Engine;
  Summaries Out;
  ASSERT_FALSE(Engine.analyze(D, Out, Ascribed).hasError());
  EXPECT_EQ(Engine.stats().Ascribed, 1u);
  expectAllEqual(Reference, Out);
}

TEST(SummaryEngineTest, LoopVerdictMatchesSerialDiagnostic) {
  for (unsigned Threads : {1u, 4u}) {
    Design D;
    ModuleId A = D.addModule(gen::makeFifo({8, 2, true}));
    Circuit Ring = gen::buildLoopedRing(D, {A, A}, "ring");
    Ring.seal();

    Summaries Reference;
    wiresort::support::Status Serial = analyzeDesign(D, Reference);
    ASSERT_TRUE(Serial.hasError());

    CheckOptions Opts;
    Opts.Threads = Threads;
    SummaryEngine Engine(Opts);
    Summaries Out;
    support::Status Verdict = Engine.analyze(D, Out);
    ASSERT_TRUE(Verdict.hasError());
    EXPECT_EQ(Verdict.describe(), Serial.describe());
  }
}

TEST(SummaryEngineTest, SidecarRoundTripWarmsAFreshEngine) {
  Design D;
  buildDiamond(D);
  std::string Path =
      ::testing::TempDir() + "/summary_engine_roundtrip.wsort";

  SummaryEngine Writer;
  Summaries Out = engineAnalyzeOrDie(Writer, D);
  ASSERT_TRUE(Writer.saveCache(Path, D, Out).empty());

  SummaryEngine Reader;
  auto Loaded = Reader.loadCache(Path, D);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.describe();
  EXPECT_GT(Loaded->Loaded, 0u);
  EXPECT_EQ(Loaded->Quarantined, 0u);
  EXPECT_TRUE(Loaded->Warnings.empty());

  Summaries Warm = engineAnalyzeOrDie(Reader, D);
  EXPECT_EQ(Reader.stats().Inferred, 0u);
  EXPECT_EQ(Reader.stats().CacheHits, D.numModules());
  expectAllEqual(Out, Warm);
  std::remove(Path.c_str());
}

TEST(SummaryEngineTest, MissingAndStaleSidecarsAreHarmless) {
  Design D;
  buildDiamond(D);
  SummaryEngine Engine;

  auto Missing = Engine.loadCache(
      ::testing::TempDir() + "/does_not_exist.wsort", D);
  ASSERT_TRUE(Missing.hasValue()) << Missing.describe();
  EXPECT_EQ(Missing->Loaded, 0u);

  // A sidecar written for an older body: keys no longer match, so the
  // entries load but never hit.
  std::string Path = ::testing::TempDir() + "/summary_engine_stale.wsort";
  Summaries Out = engineAnalyzeOrDie(Engine, D);
  ASSERT_TRUE(Engine.saveCache(Path, D, Out).empty());

  Design Edited;
  std::vector<ModuleId> Ids = buildDiamond(Edited);
  Module &Leaf = Edited.module(Ids[0]);
  WireId C0 = Leaf.addWire("edit_c", WireKind::Const, 1, 0);
  WireId W = Leaf.addWire("edit_w", WireKind::Basic, 1);
  Leaf.addNet(Op::Not, {C0}, W);

  SummaryEngine Fresh;
  auto Loaded = Fresh.loadCache(Path, Edited);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.describe();
  engineAnalyzeOrDie(Fresh, Edited);
  EXPECT_EQ(Fresh.stats().CacheHits, 1u); // Only the mid_a/mid_b share.
  std::remove(Path.c_str());
}

TEST(SummaryEngineTest, SidecarBlocksForOtherDesignsAreSkipped) {
  // A cache shared across projects (or surviving a module rename) holds
  // records this design cannot resolve; they are stale entries to skip,
  // never a reason to fail the check. Exercised in the legacy text
  // format — a foreign block spliced into a v2 file — since a v2 cache
  // can reach loadCache from any older build.
  Design D;
  buildDiamond(D);
  SummaryEngine Writer;
  Summaries Out = engineAnalyzeOrDie(Writer, D);
  std::string Path = ::testing::TempDir() + "/summary_engine_mixed.wsort";
  {
    std::ofstream V2(Path);
    V2 << "# wiresort summary cache v2\n";
    for (const auto &[Id, S] : Out)
      V2 << "# key " << D.module(Id).Name << ' ' << std::hex
         << Writer.keyOf(Id) << std::dec << '\n';
    V2 << "# key no_such_module 1234abcd\n";
    for (const auto &[Id, S] : Out)
      V2 << writeSummaries(D, {{Id, S}});
    V2 << "module no_such_module\n"
       << "  input ghost to-sync\n"
       << "end\n";
  }

  SummaryEngine Reader;
  auto Loaded = Reader.loadCache(Path, D);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.describe();
  EXPECT_EQ(Loaded->Loaded, Out.size());
  EXPECT_EQ(Loaded->Quarantined, 0u);
  Summaries Warm = engineAnalyzeOrDie(Reader, D);
  EXPECT_EQ(Reader.stats().Inferred, 0u);
  expectAllEqual(Out, Warm);
  std::remove(Path.c_str());
}

TEST(SummaryEngineTest, StaleBinaryCacheEntriesAreSkippedSilently) {
  // The v3 equivalent of cross-design staleness: a cache saved against
  // one design, loaded against a design missing those modules. Every
  // record passes its framing checksum but fails to resolve — provably
  // stale, skipped without a warning.
  Design A;
  buildDiamond(A);
  SummaryEngine Writer;
  Summaries Out = engineAnalyzeOrDie(Writer, A);
  std::string Path = ::testing::TempDir() + "/summary_engine_stale.wsort";
  ASSERT_TRUE(Writer.saveCache(Path, A, Out).empty());

  Design B; // Same leaf, no diamond: only the fifo records resolve.
  B.addModule(gen::makeFifo({8, 2, /*Forwarding=*/true}));
  SummaryEngine Reader;
  auto Loaded = Reader.loadCache(Path, B);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.describe();
  EXPECT_EQ(Loaded->Loaded, 1u); // The shared fifo module.
  EXPECT_EQ(Loaded->Quarantined, 0u);
  EXPECT_TRUE(Loaded->Warnings.empty()) << Loaded->Warnings.describe();
  std::remove(Path.c_str());
}

TEST(SummaryEngineTest, SavedCacheIsAWireStreamAndReloadsWarm) {
  // The disk round trip in the current (v3) format: saveCache writes a
  // sniffable wire stream, a fresh engine reloads every record with no
  // warnings, and the warm run re-infers nothing.
  Design D;
  buildDiamond(D);
  SummaryEngine Writer;
  Summaries Out = engineAnalyzeOrDie(Writer, D);
  std::string Path = ::testing::TempDir() + "/summary_engine_v3.wsort";
  ASSERT_TRUE(Writer.saveCache(Path, D, Out).empty());
  {
    std::ifstream In(Path, std::ios::binary);
    char First = 0;
    ASSERT_TRUE(In.get(First));
    EXPECT_EQ(static_cast<unsigned char>(First), 0xD7u);
  }

  SummaryEngine Reader;
  auto Loaded = Reader.loadCache(Path, D);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.describe();
  EXPECT_EQ(Loaded->Loaded, Out.size());
  EXPECT_TRUE(Loaded->Warnings.empty()) << Loaded->Warnings.describe();
  Summaries Warm = engineAnalyzeOrDie(Reader, D);
  EXPECT_EQ(Reader.stats().Inferred, 0u);
  EXPECT_EQ(Reader.stats().CacheHits, D.numModules());
  expectAllEqual(Out, Warm);
  std::remove(Path.c_str());
}

TEST(SummaryEngineTest, NonSidecarFilesAreRejectedByLoadCache) {
  Design D;
  buildDiamond(D);
  SummaryEngine Engine;
  std::string Path = ::testing::TempDir() + "/summary_engine_bogus.wsort";

  std::ofstream(Path) << "this is not a sidecar\n";
  auto Bogus = Engine.loadCache(Path, D);
  ASSERT_FALSE(Bogus.hasValue());
  EXPECT_EQ(Bogus.diags().firstError().code(),
            support::DiagCode::WS502_CACHE_FORMAT);
  EXPECT_NE(Bogus.describe().find("expected 'module'"), std::string::npos)
      << Bogus.describe();

  std::ofstream(Path) << "module truncated\n  input a to-sync\n";
  auto Trunc = Engine.loadCache(Path, D);
  ASSERT_FALSE(Trunc.hasValue());
  EXPECT_NE(Trunc.describe().find("unterminated"), std::string::npos)
      << Trunc.describe();
  std::remove(Path.c_str());
}
