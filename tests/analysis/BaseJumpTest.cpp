//===- tests/analysis/BaseJumpTest.cpp - Helpful/demanding baseline -------===//
//
// Part of the wiresort project. Validates the Section 3.6 formalization
// of BaseJump STL's endpoint taxonomy and demonstrates the unsoundness
// the paper identifies: a helpful-helpful connection that still loops.
//
//===----------------------------------------------------------------------===//

#include "analysis/BaseJump.h"

#include "analysis/SortInference.h"
#include "analysis/WellConnected.h"
#include "gen/Catalog.h"
#include "gen/Fifo.h"
#include "gen/ShiftReg.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

ModuleSummary summarize(const Design &D, ModuleId Id) {
  std::map<ModuleId, ModuleSummary> Out;
  wiresort::support::Status Loop = analyzeDesign(D, Out);
  EXPECT_FALSE(Loop.hasError());
  return Out.at(Id);
}

} // namespace

TEST(BaseJumpTest, NormalFifoBothEndpointsHelpful) {
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo({8, 2, false}));
  ModuleSummary S = summarize(D, Id);
  const Module &M = D.module(Id);

  ProducerEndpoint Prod{M.findPort("yumi_i"), M.findPort("v_o"),
                        M.findPort("data_o")};
  ConsumerEndpoint Cons{M.findPort("ready_o"), M.findPort("v_i"),
                        M.findPort("data_i")};
  EXPECT_EQ(classifyProducer(S, Prod), Temperament::Helpful);
  EXPECT_EQ(classifyConsumer(S, Cons), Temperament::Helpful);
}

TEST(BaseJumpTest, ForwardingFifoStillLooksHelpful) {
  // The crux of Section 3.6: the forwarding FIFO's producer endpoint is
  // "helpful" (valid_o does not await readyin/yumi_i) even though
  // valid_o is from-port via the *consumer-side* valid_i.
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo({8, 2, true}));
  ModuleSummary S = summarize(D, Id);
  const Module &M = D.module(Id);

  ProducerEndpoint Prod{M.findPort("yumi_i"), M.findPort("v_o"),
                        M.findPort("data_o")};
  ConsumerEndpoint Cons{M.findPort("ready_o"), M.findPort("v_i"),
                        M.findPort("data_i")};
  EXPECT_EQ(classifyProducer(S, Prod), Temperament::Helpful);
  EXPECT_EQ(classifyConsumer(S, Cons), Temperament::Helpful);
  // And yet:
  EXPECT_EQ(S.sortOf(M.findPort("v_o")), Sort::FromPort);
}

TEST(BaseJumpTest, PrefixPisoConsumerHelpfulButUnsafe) {
  // Section 5.1: the PISO's consumer endpoint is helpful by BaseJump's
  // rules (ready_o does not depend on valid_i), but ready_o awaits
  // yumi_i from the *producer* endpoint, which BaseJump cannot express.
  Design D;
  ModuleId Id = D.addModule(gen::makePiso({4, 8, /*Fixed=*/false}));
  ModuleSummary S = summarize(D, Id);
  const Module &M = D.module(Id);

  ConsumerEndpoint Cons{M.findPort("ready_o"), M.findPort("valid_i"),
                        M.findPort("data_i")};
  EXPECT_EQ(classifyConsumer(S, Cons), Temperament::Helpful);
  EXPECT_EQ(S.sortOf(M.findPort("ready_o")), Sort::FromPort);
  EXPECT_EQ(S.outputPortSet(M.findPort("yumi_i")),
            std::vector<WireId>{M.findPort("ready_o")});
}

TEST(BaseJumpTest, DemandingProducerDetected) {
  // The iterative multiplier's ready_o awaits yumi_i: demanding.
  Design D;
  ModuleId Id = D.addModule(gen::makeIterMul(8));
  ModuleSummary S = summarize(D, Id);
  const Module &M = D.module(Id);
  ProducerEndpoint Prod{M.findPort("yumi_i"), M.findPort("v_o"),
                        M.findPort("result_o")};
  // v_o itself is registered, so the producer is helpful; ready_o is the
  // wire that depends on yumi. Model ready as the consumer-ish signal:
  EXPECT_EQ(classifyProducer(S, Prod), Temperament::Helpful);
  EXPECT_EQ(S.sortOf(M.findPort("ready_o")), Sort::FromPort);
}

TEST(BaseJumpTest, HelpfulHelpfulConnectionStillLoops) {
  // The paper's headline counterexample, end to end: both FIFO endpoints
  // in the Figure 3 circuit are helpful, BaseJump allows the connection,
  // and the circuit contains a combinational loop our checker finds.
  Design D;
  ModuleId Normal = D.addModule(gen::makeFifo({8, 2, false}));
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  ModuleId Pass = D.addModule(gen::makePassthrough(1));

  std::map<ModuleId, ModuleSummary> Summaries;
  ASSERT_FALSE(analyzeDesign(D, Summaries).hasError());

  const Module &FwdM = D.module(Fwd);
  const Module &NormalM = D.module(Normal);
  ProducerEndpoint FwdProd{FwdM.findPort("yumi_i"), FwdM.findPort("v_o"),
                           FwdM.findPort("data_o")};
  ConsumerEndpoint NormalCons{NormalM.findPort("ready_o"),
                              NormalM.findPort("v_i"),
                              NormalM.findPort("data_i")};
  Temperament P = classifyProducer(Summaries.at(Fwd), FwdProd);
  Temperament C = classifyConsumer(Summaries.at(Normal), NormalCons);
  EXPECT_EQ(P, Temperament::Helpful);
  EXPECT_EQ(C, Temperament::Helpful);
  EXPECT_TRUE(baseJumpAllowsConnection(P, C)); // BaseJump says fine.

  Circuit Circ(D, "fig3");
  InstId NormalInst = Circ.addInstance(Normal, "fifo_normal");
  InstId FwdInst = Circ.addInstance(Fwd, "fifo_fwd");
  InstId Mon = Circ.addInstance(Pass, "monitor");
  InstId X = Circ.addInstance(Pass, "module_x");
  Circ.connect(FwdInst, "v_o", NormalInst, "v_i");
  Circ.connect(FwdInst, "v_o", Mon, "data_i");
  Circ.connect(Mon, "data_o", X, "data_i");
  Circ.connect(X, "data_o", FwdInst, "v_i");
  EXPECT_FALSE(checkCircuit(Circ, Summaries).WellConnected); // We say no.
}

TEST(BaseJumpTest, DemandingDemandingIsTheOnlyPairBaseJumpRejects) {
  EXPECT_TRUE(baseJumpAllowsConnection(Temperament::Helpful,
                                       Temperament::Helpful));
  EXPECT_TRUE(baseJumpAllowsConnection(Temperament::Helpful,
                                       Temperament::Demanding));
  EXPECT_TRUE(baseJumpAllowsConnection(Temperament::Demanding,
                                       Temperament::Helpful));
  EXPECT_FALSE(baseJumpAllowsConnection(Temperament::Demanding,
                                        Temperament::Demanding));
}
