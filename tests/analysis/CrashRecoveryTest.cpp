//===- tests/analysis/CrashRecoveryTest.cpp - Crash-safe cache ------------===//
//
// Part of the wiresort project. The saveCache atomicity claim
// (docs/ROBUSTNESS.md), tested for real: a child process is killed — via
// the cache.save.partial failpoint — after writing half the payload and
// before the rename, and the parent then proves the target path still
// holds exactly the previous cache, a fresh process loads it cleanly,
// and the warm verdict is unchanged. Torn bytes only ever live in the
// .tmp staging file.
//
//===----------------------------------------------------------------------===//

#include "analysis/SummaryEngine.h"

#include "analysis/SummaryIO.h"
#include "gen/Fifo.h"
#include "ir/Builder.h"
#include "ir/Circuit.h"
#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

using Summaries = std::map<ModuleId, ModuleSummary>;

/// leaf + two instances: small but multi-record, so a torn write has
/// something to tear between.
std::vector<ModuleId> buildPair(Design &D) {
  ModuleId Leaf = D.addModule(gen::makeFifo({8, 2, /*Forwarding=*/true}));
  Circuit Top(D, "top");
  InstId Front = Top.addInstance(Leaf, "front");
  InstId Back = Top.addInstance(Leaf, "back");
  Top.connect(Front, "v_o", Back, "v_i");
  return {Leaf, Top.seal()};
}

std::optional<std::string> slurp(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Runs saveCache in a forked child with cache.save.partial armed; the
/// failpoint writes half the payload into Path+".tmp" and _exit(125)s
/// before the rename. \returns the child's exit status.
int crashMidSave(const std::string &Path, const Design &D,
                 const Summaries &Out) {
  pid_t Pid = ::fork();
  if (Pid == 0) {
    support::failpoint::disarmAll();
    if (support::failpoint::configure("cache.save.partial=always")
            .hasError())
      ::_exit(110);
    SummaryEngine Child;
    (void)Child.saveCache(Path, D, Out); // _exit(125)s inside.
    ::_exit(111); // The failpoint did not fire: fail the test.
  }
  int Status = 0;
  ::waitpid(Pid, &Status, 0);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

} // namespace

TEST(CrashRecoveryTest, InterruptedSaveLeavesThePreviousCacheIntact) {
  Design D;
  buildPair(D);
  std::string Path = ::testing::TempDir() + "/crash_recovery.wscache";
  std::string Tmp = Path + ".tmp";
  std::remove(Path.c_str());
  std::remove(Tmp.c_str());

  // A healthy first save: this is the "previous cache" the crash must
  // not damage.
  CheckOptions Serial;
  Serial.Threads = 1;
  SummaryEngine Engine(Serial);
  Summaries Out;
  ASSERT_FALSE(Engine.analyze(D, Out).hasError());
  ASSERT_TRUE(Engine.saveCache(Path, D, Out).empty());
  std::optional<std::string> Old = slurp(Path);
  ASSERT_TRUE(Old.has_value());

  ASSERT_EQ(crashMidSave(Path, D, Out), 125);

  // The target is byte-identical to before the crash; the torn prefix
  // landed in .tmp (and is strictly shorter than a full record set).
  std::optional<std::string> After = slurp(Path);
  ASSERT_TRUE(After.has_value());
  EXPECT_EQ(*After, *Old);
  std::optional<std::string> Torn = slurp(Tmp);
  ASSERT_TRUE(Torn.has_value()) << "crash did not happen mid-write";
  EXPECT_LT(Torn->size(), Old->size());
  std::remove(Tmp.c_str());

  // A fresh process (modeled by a fresh engine) recovers: every record
  // loads, nothing is quarantined, and the warm run re-infers nothing
  // and reaches the same verdict.
  SummaryEngine Fresh(Serial);
  auto Loaded = Fresh.loadCache(Path, D);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.describe();
  EXPECT_EQ(Loaded->Loaded, Out.size());
  EXPECT_EQ(Loaded->Quarantined, 0u);
  EXPECT_TRUE(Loaded->Warnings.empty());
  Summaries Warm;
  EXPECT_FALSE(Fresh.analyze(D, Warm).hasError());
  EXPECT_EQ(Fresh.stats().Inferred, 0u);
  EXPECT_EQ(Fresh.stats().CacheHits, D.numModules());
  ASSERT_EQ(Warm.size(), Out.size());
  for (const auto &[Id, S] : Out)
    EXPECT_TRUE(structurallyEqual(S, Warm.at(Id))) << "module " << Id;
  std::remove(Path.c_str());
}

namespace {

/// A legacy text cache (format v2) for \p Out, keyed by \p Engine's
/// computed keys — what a pre-v3 build would have left on disk.
std::string composeV2Cache(const SummaryEngine &Engine, const Design &D,
                           const Summaries &Out) {
  std::ostringstream OS;
  OS << "# wiresort summary cache v2\n";
  std::string Body;
  for (const auto &[Id, S] : Out) {
    OS << "# key " << D.module(Id).Name << ' ' << std::hex
       << Engine.keyOf(Id) << std::dec << '\n';
    Body += writeSummaries(D, {{Id, S}});
  }
  return OS.str() + Body;
}

/// Runs loadCache in a forked child with cache.migrate.partial armed:
/// the v2 text loads, then the in-place upgrade tears mid-write and
/// _exit(125)s before the rename. \returns the child's exit status.
int crashMidMigrate(const std::string &Path, const Design &D) {
  pid_t Pid = ::fork();
  if (Pid == 0) {
    support::failpoint::disarmAll();
    if (support::failpoint::configure("cache.migrate.partial=always")
            .hasError())
      ::_exit(110);
    SummaryEngine Child;
    (void)Child.loadCache(Path, D); // _exit(125)s inside.
    ::_exit(111); // The failpoint did not fire: fail the test.
  }
  int Status = 0;
  ::waitpid(Pid, &Status, 0);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

} // namespace

TEST(CrashRecoveryTest, InterruptedMigrationLeavesTheV2CacheUntouched) {
  // v2 -> v3 migration shares saveCache's atomicity: a crash mid-upgrade
  // (cache.migrate.partial) must leave the legacy text file
  // byte-identical — the next run loads it again, migrates again, and
  // heals.
  Design D;
  buildPair(D);
  std::string Path = ::testing::TempDir() + "/crash_migrate.wscache";
  std::string Tmp = Path + ".tmp";
  std::remove(Path.c_str());
  std::remove(Tmp.c_str());

  CheckOptions Serial;
  Serial.Threads = 1;
  SummaryEngine Engine(Serial);
  Summaries Out;
  ASSERT_FALSE(Engine.analyze(D, Out).hasError());
  const std::string V2 = composeV2Cache(Engine, D, Out);
  {
    std::ofstream OutFile(Path);
    OutFile << V2;
  }

  ASSERT_EQ(crashMidMigrate(Path, D), 125);

  // The v2 file survived the crash byte for byte; the torn half-stream
  // only ever lived in .tmp.
  std::optional<std::string> After = slurp(Path);
  ASSERT_TRUE(After.has_value());
  EXPECT_EQ(*After, V2);
  std::optional<std::string> Torn = slurp(Tmp);
  ASSERT_TRUE(Torn.has_value()) << "crash did not happen mid-write";
  std::remove(Tmp.c_str());

  // The next run heals: the text loads in full, the migration succeeds
  // (WS605 note), and the file on disk is now a v3 wire stream.
  SummaryEngine Healer(Serial);
  auto Loaded = Healer.loadCache(Path, D);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.describe();
  EXPECT_EQ(Loaded->Loaded, Out.size());
  EXPECT_EQ(Loaded->Quarantined, 0u);
  bool SawMigrated = false;
  for (const support::Diag &Dg : Loaded->Warnings)
    SawMigrated |=
        Dg.code() == support::DiagCode::WS605_CACHE_MIGRATED;
  EXPECT_TRUE(SawMigrated) << Loaded->Warnings.describe();
  std::optional<std::string> Healed = slurp(Path);
  ASSERT_TRUE(Healed.has_value());
  ASSERT_FALSE(Healed->empty());
  EXPECT_EQ(static_cast<unsigned char>((*Healed)[0]), 0xD7u);

  // And the migrated cache is as warm as the original: a fresh engine
  // loads it (no migration note this time) and re-infers nothing.
  SummaryEngine Fresh(Serial);
  auto Reloaded = Fresh.loadCache(Path, D);
  ASSERT_TRUE(Reloaded.hasValue()) << Reloaded.describe();
  EXPECT_EQ(Reloaded->Loaded, Out.size());
  EXPECT_TRUE(Reloaded->Warnings.empty())
      << Reloaded->Warnings.describe();
  Summaries Warm;
  EXPECT_FALSE(Fresh.analyze(D, Warm).hasError());
  EXPECT_EQ(Fresh.stats().Inferred, 0u);
  EXPECT_EQ(Fresh.stats().CacheHits, D.numModules());
  for (const auto &[Id, S] : Out)
    EXPECT_TRUE(structurallyEqual(S, Warm.at(Id))) << "module " << Id;
  std::remove(Path.c_str());
}

TEST(CrashRecoveryTest, InterruptedFirstSaveLeavesNoCacheAtAll) {
  // No previous cache: after the crash the target must simply not
  // exist — a later run starts cold, it does not trip over torn bytes.
  Design D;
  buildPair(D);
  std::string Path =
      ::testing::TempDir() + "/crash_recovery_first.wscache";
  std::string Tmp = Path + ".tmp";
  std::remove(Path.c_str());
  std::remove(Tmp.c_str());

  CheckOptions Serial;
  Serial.Threads = 1;
  SummaryEngine Engine(Serial);
  Summaries Out;
  ASSERT_FALSE(Engine.analyze(D, Out).hasError());

  ASSERT_EQ(crashMidSave(Path, D, Out), 125);
  EXPECT_FALSE(slurp(Path).has_value());
  std::remove(Tmp.c_str());

  SummaryEngine Fresh(Serial);
  auto Loaded = Fresh.loadCache(Path, D);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.describe();
  EXPECT_EQ(Loaded->Loaded, 0u);
}
