//===- tests/analysis/MemoryChecksTest.cpp - Section 3.7 contract tests ---===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/MemoryChecks.h"

#include "analysis/SortInference.h"
#include "gen/Catalog.h"
#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

using Summaries = std::map<ModuleId, ModuleSummary>;

Summaries analyzeOrDie(const Design &D) {
  Summaries Out;
  wiresort::support::Status Loop = analyzeDesign(D, Out);
  EXPECT_FALSE(Loop.hasError());
  return Out;
}

/// A producer whose addr_o goes through an adder: from-sync-indirect.
ModuleId indirectAddrStage(Design &D, uint16_t AW) {
  Builder B("indirect_addr");
  V En = B.input("en_i", 1);
  V Addr = B.regLoop("addr_r", AW);
  B.drive(Addr, B.mux(En, B.inc(Addr), Addr));
  // The increment on the output path makes it indirect (Figure 8's
  // violation: combinational logic between register and raddr).
  B.output("raddr_o", B.inc(Addr));
  return D.addModule(B.finish());
}

} // namespace

TEST(MemoryChecksTest, DirectDriverAccepted) {
  // Figure 8's good case: a register-direct address into the sync RAM.
  Design D;
  ModuleId Ram = D.addModule(gen::makeSyncRam(8, 16));
  ModuleId Stage = D.addModule(gen::makeAddrStage(8));
  Circuit Circ(D, "good");
  InstId S = Circ.addInstance(Stage, "stage");
  InstId R = Circ.addInstance(Ram, "ram");
  Circ.connect(S, "raddr_o", R, "raddr_i");
  Summaries Sum = analyzeOrDie(D);
  EXPECT_TRUE(checkMemoryContracts(Circ, Sum).empty());
}

TEST(MemoryChecksTest, IndirectDriverRejected) {
  Design D;
  ModuleId Ram = D.addModule(gen::makeSyncRam(8, 16));
  ModuleId Stage = indirectAddrStage(D, 8);
  Circuit Circ(D, "bad");
  InstId S = Circ.addInstance(Stage, "stage");
  InstId R = Circ.addInstance(Ram, "ram");
  Circ.connect(S, "raddr_o", R, "raddr_i");
  Summaries Sum = analyzeOrDie(D);
  auto Violations = checkMemoryContracts(Circ, Sum);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_NE(Violations[0].message().find("from-sync-direct"),
            std::string::npos);
}

TEST(MemoryChecksTest, FromPortDriverRejected) {
  // A combinational passthrough driving the read address is even worse.
  Design D;
  ModuleId Ram = D.addModule(gen::makeSyncRam(8, 16));
  ModuleId Pass = D.addModule(gen::makePassthrough(8));
  Circuit Circ(D, "worse");
  InstId P = Circ.addInstance(Pass, "glue");
  InstId R = Circ.addInstance(Ram, "ram");
  Circ.connect(P, "data_o", R, "raddr_i");
  Summaries Sum = analyzeOrDie(D);
  EXPECT_EQ(checkMemoryContracts(Circ, Sum).size(), 1u);
}

TEST(MemoryChecksTest, SinkContractChecked) {
  // A memory requiring its read data to land directly in a register.
  Design D;
  Builder MemB("latched_rom");
  {
    V RAddr = MemB.input("raddr_i", 4);
    V WAddr = MemB.input("waddr_i", 4);
    V WData = MemB.input("wdata_i", 8);
    V Wen = MemB.input("wen_i", 1);
    V Out = MemB.output(
        "rdata_o", MemB.memory("rom", true, RAddr, WAddr, WData, Wen));
    MemB.requireSinkToSyncDirect(Out);
  }
  ModuleId Rom = D.addModule(MemB.finish());

  // Good sink: data_i feeds a register directly (no enable mux).
  Builder SinkB("direct_sink");
  {
    V In = SinkB.input("data_i", 8);
    SinkB.output("data_o", SinkB.reg(In, "r"));
  }
  ModuleId GoodSink = D.addModule(SinkB.finish());
  // Bad sink: combinational passthrough.
  ModuleId BadSink = D.addModule(gen::makePassthrough(8));

  {
    Circuit Circ(D, "good_sink");
    InstId R = Circ.addInstance(Rom, "rom");
    InstId S = Circ.addInstance(GoodSink, "sink");
    Circ.connect(R, "rdata_o", S, "data_i");
    Summaries Sum = analyzeOrDie(D);
    EXPECT_TRUE(checkMemoryContracts(Circ, Sum).empty());
  }
  {
    Circuit Circ(D, "bad_sink");
    InstId R = Circ.addInstance(Rom, "rom");
    InstId S = Circ.addInstance(BadSink, "sink");
    Circ.connect(R, "rdata_o", S, "data_i");
    Summaries Sum = analyzeOrDie(D);
    auto Violations = checkMemoryContracts(Circ, Sum);
    ASSERT_EQ(Violations.size(), 1u);
    EXPECT_NE(Violations[0].message().find("to-sync-direct"),
              std::string::npos);
  }
}

TEST(MemoryChecksTest, UncontractedPortsUnchecked) {
  // Connecting anything to an async RAM (no contract) is fine as far as
  // the Section 3.7 pass is concerned.
  Design D;
  ModuleId Ram = D.addModule(gen::makeAsyncRam(8, 16));
  ModuleId Pass = D.addModule(gen::makePassthrough(8));
  Circuit Circ(D, "nocontract");
  InstId P = Circ.addInstance(Pass, "glue");
  InstId R = Circ.addInstance(Ram, "ram");
  Circ.connect(P, "data_o", R, "raddr_i");
  Summaries Sum = analyzeOrDie(D);
  EXPECT_TRUE(checkMemoryContracts(Circ, Sum).empty());
}
