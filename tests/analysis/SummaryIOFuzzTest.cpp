//===- tests/analysis/SummaryIOFuzzTest.cpp - Sidecar parser fuzzing ------===//
//
// Part of the wiresort project. SummaryIOTest covers the happy path and
// hand-written rejections; this suite drives parseSummaries through
// seeded random mutations of valid sidecars — truncations, dropped and
// duplicated lines, token corruption, byte noise — and demands a total
// parser: every input either yields summaries or a diagnostic, never a
// crash, and whatever parses must serialize back to a fixpoint. The
// SummaryEngine trusts this parser for loadCache, so a crash here is a
// crash on any stale cache file.
//
//===----------------------------------------------------------------------===//

#include "analysis/SummaryIO.h"

#include "analysis/SortInference.h"
#include "gen/Fifo.h"
#include "gen/Random.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

using Summaries = std::map<ModuleId, ModuleSummary>;

/// A small design with interesting summaries (coupled, sync, subsorted
/// ports) plus a random module, and its valid serialization.
struct Corpus {
  Design D;
  Summaries Original;
  std::string Text;
};

Corpus makeCorpus(uint32_t Seed) {
  Corpus C;
  C.D.addModule(gen::makeFifo({8, 2, /*Forwarding=*/true}));
  std::mt19937 Rng(Seed);
  gen::RandomModuleParams P;
  P.NInputs = 3 + Seed % 4;
  P.NOutputs = 2 + Seed % 3;
  P.NGates = 12 + Seed % 16;
  C.D.addModule(gen::randomModule(Rng, P, "fuzz"));
  EXPECT_FALSE(analyzeDesign(C.D, C.Original).hasError());
  C.Text = writeSummaries(C.D, C.Original);
  return C;
}

std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  std::istringstream In(Text);
  std::string L;
  while (std::getline(In, L))
    Lines.push_back(L);
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

/// One of several structured mutations of \p Text, chosen by \p Rng.
std::string mutate(const std::string &Text, std::mt19937 &Rng) {
  std::vector<std::string> Lines = splitLines(Text);
  auto lineIndex = [&] {
    return std::uniform_int_distribution<size_t>(0, Lines.size() - 1)(Rng);
  };
  switch (Rng() % 6) {
  case 0: // Truncate mid-file (possibly mid-block).
    return Text.substr(
        0, std::uniform_int_distribution<size_t>(0, Text.size())(Rng));
  case 1: // Drop a line.
    Lines.erase(Lines.begin() + lineIndex());
    return joinLines(Lines);
  case 2: // Duplicate a line.
    Lines.insert(Lines.begin() + lineIndex(), Lines[lineIndex()]);
    return joinLines(Lines);
  case 3: { // Corrupt one byte of a line.
    std::string &L = Lines[lineIndex()];
    if (!L.empty())
      L[Rng() % L.size()] =
          static_cast<char>(' ' + Rng() % 95); // Printable noise.
    return joinLines(Lines);
  }
  case 4: { // Swap two lines (can move `end`/`module` boundaries).
    size_t A = lineIndex(), B = lineIndex();
    std::swap(Lines[A], Lines[B]);
    return joinLines(Lines);
  }
  default: { // Splice random garbage tokens into a line.
    static const char *Garbage[] = {"to-port", "from-sync", "{", "}",
                                    "module", "end", "direct", "%%%"};
    std::string &L = Lines[lineIndex()];
    L += ' ';
    L += Garbage[Rng() % (sizeof(Garbage) / sizeof(Garbage[0]))];
    return joinLines(Lines);
  }
  }
}

class SidecarFuzzTrial : public ::testing::TestWithParam<uint32_t> {};

} // namespace

TEST_P(SidecarFuzzTrial, MutatedSidecarsParseOrDiagnoseButNeverCrash) {
  const uint32_t Seed = GetParam();
  Corpus C = makeCorpus(Seed);
  std::mt19937 Rng(0xf00d + Seed);

  for (int Round = 0; Round != 40; ++Round) {
    std::string Mutant = mutate(C.Text, Rng);
    // Pile a second mutation on half the time.
    if (Rng() % 2)
      Mutant = mutate(Mutant, Rng);

    auto Parsed = parseSummaries(Mutant, C.D);
    if (!Parsed.hasValue()) {
      EXPECT_TRUE(Parsed.diags().hasError())
          << "rejection without a diagnostic (seed " << Seed << " round "
          << Round << "):\n"
          << Mutant;
      continue;
    }
    // Accepted mutants must be internally consistent: re-serializing and
    // re-parsing is a fixpoint.
    std::string Text2 = writeSummaries(C.D, *Parsed);
    auto Reparsed = parseSummaries(Text2, C.D);
    ASSERT_TRUE(Reparsed.hasValue())
        << "accepted mutant failed to round-trip (seed " << Seed
        << " round " << Round << "): " << Reparsed.describe() << "\n"
        << Mutant;
    EXPECT_EQ(writeSummaries(C.D, *Reparsed), Text2)
        << "seed " << Seed << " round " << Round;
  }
}

INSTANTIATE_TEST_SUITE_P(MutationSoak, SidecarFuzzTrial,
                         ::testing::Range<uint32_t>(0, 25));

TEST(SummaryIOFuzzTest, RandomSummariesRoundTripExactly) {
  // Unlike SummaryIOTest's equivalence check, demand byte-for-byte
  // serialization stability: write -> parse -> write is the identity on
  // the text, across 40 random modules.
  std::mt19937 Rng(99);
  for (int Trial = 0; Trial != 40; ++Trial) {
    Design D;
    gen::RandomModuleParams P;
    P.NInputs = 2 + Trial % 6;
    P.NOutputs = 2 + Trial % 5;
    P.NGates = 8 + Trial;
    P.PReg = (Trial % 10) / 10.0;
    D.addModule(gen::randomModule(Rng, P, "x" + std::to_string(Trial)));
    Summaries Original;
    ASSERT_FALSE(analyzeDesign(D, Original).hasError());

    std::string Text = writeSummaries(D, Original);
    auto Parsed = parseSummaries(Text, D);
    ASSERT_TRUE(Parsed.hasValue()) << Parsed.describe() << "\n" << Text;
    EXPECT_EQ(writeSummaries(D, *Parsed), Text) << "trial " << Trial;
  }
}

// --- Binary format soak -----------------------------------------------------
//
// The same total-reader demand for the wire stream (docs/FORMATS.md):
// bit flips, truncations, and version skew must yield a clean WS221
// diagnostic — never a crash, and never a silently-wrong summary (the
// per-record checksum is what turns a flipped bit into a rejection).

namespace {

/// One of several structured mutations of the byte stream \p Bytes.
std::string mutateBinary(const std::string &Bytes, std::mt19937 &Rng) {
  std::string Out = Bytes;
  auto byteIndex = [&] {
    return std::uniform_int_distribution<size_t>(0, Out.size() - 1)(Rng);
  };
  switch (Rng() % 5) {
  case 0: // Truncate anywhere (mid-frame, mid-varint, mid-checksum).
    return Out.substr(
        0, std::uniform_int_distribution<size_t>(0, Out.size())(Rng));
  case 1: { // Flip one bit.
    size_t I = byteIndex();
    Out[I] = static_cast<char>(Out[I] ^ (1u << (Rng() % 8)));
    return Out;
  }
  case 2: // Replace one byte with noise.
    Out[byteIndex()] = static_cast<char>(Rng() % 256);
    return Out;
  case 3: // Container version skew: claim a future framing version.
    if (Out.size() > 4)
      Out[4] = static_cast<char>(1 + Rng() % 250);
    return Out;
  default: { // Splice a chunk of the stream over another spot.
    size_t Src = byteIndex(), Dst = byteIndex();
    size_t N = std::min<size_t>(1 + Rng() % 16,
                                Out.size() - std::max(Src, Dst));
    Out.replace(Dst, N, Bytes, Src, N);
    return Out;
  }
  }
}

} // namespace

class BinarySidecarFuzzTrial : public ::testing::TestWithParam<uint32_t> {
};

TEST_P(BinarySidecarFuzzTrial, MutatedStreamsDecodeOrDiagnoseButNeverCrash) {
  const uint32_t Seed = GetParam();
  Corpus C = makeCorpus(Seed);
  const std::string Bytes = writeSummariesBinary(C.D, C.Original);
  std::mt19937 Rng(0xbead + Seed);

  for (int Round = 0; Round != 40; ++Round) {
    std::string Mutant = mutateBinary(Bytes, Rng);
    if (Rng() % 2)
      Mutant = mutateBinary(Mutant, Rng);

    // readSummariesAny so a flipped sniff byte exercises the text
    // parser's view of binary noise as well.
    auto Decoded = readSummariesAny(Mutant, C.D);
    if (!Decoded.hasValue()) {
      EXPECT_TRUE(Decoded.diags().hasError())
          << "rejection without a diagnostic (seed " << Seed << " round "
          << Round << ")";
      continue;
    }
    // Accepted mutants must decode to internally consistent summaries:
    // re-encoding and re-decoding is a fixpoint.
    std::string Bytes2 = writeSummariesBinary(C.D, *Decoded);
    auto Redecoded = readSummariesBinary(Bytes2, C.D);
    ASSERT_TRUE(Redecoded.hasValue())
        << "accepted mutant failed to round-trip (seed " << Seed
        << " round " << Round << "): " << Redecoded.describe();
    EXPECT_EQ(writeSummariesBinary(C.D, *Redecoded), Bytes2)
        << "seed " << Seed << " round " << Round;
    // And never silently-wrong: whatever decoded must match the
    // original summary for every module it claims to cover.
    for (const auto &[Id, S] : *Decoded) {
      auto It = C.Original.find(Id);
      ASSERT_NE(It, C.Original.end());
      EXPECT_TRUE(structurallyEqual(S, It->second))
          << "seed " << Seed << " round " << Round << " module " << Id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BinaryMutationSoak, BinarySidecarFuzzTrial,
                         ::testing::Range<uint32_t>(0, 25));

TEST(SummaryIOFuzzTest, BinaryRoundTripsExactlyAndMatchesText) {
  // Byte-stability of the binary encoder plus cross-format agreement:
  // the binary reader reconstructs exactly what the text parser reads.
  std::mt19937 Rng(77);
  for (int Trial = 0; Trial != 40; ++Trial) {
    Design D;
    gen::RandomModuleParams P;
    P.NInputs = 2 + Trial % 6;
    P.NOutputs = 2 + Trial % 5;
    P.NGates = 8 + Trial;
    P.PReg = (Trial % 10) / 10.0;
    D.addModule(gen::randomModule(Rng, P, "b" + std::to_string(Trial)));
    Summaries Original;
    ASSERT_FALSE(analyzeDesign(D, Original).hasError());

    std::string Bytes = writeSummariesBinary(D, Original);
    ASSERT_TRUE(isWireData(Bytes));
    auto Decoded = readSummariesBinary(Bytes, D);
    ASSERT_TRUE(Decoded.hasValue()) << Decoded.describe();
    EXPECT_EQ(writeSummariesBinary(D, *Decoded), Bytes) << "trial "
                                                        << Trial;
    // text -> binary -> text is the identity on the text.
    std::string Text = writeSummaries(D, Original);
    auto FromText = parseSummaries(Text, D);
    ASSERT_TRUE(FromText.hasValue());
    auto Back = readSummariesBinary(writeSummariesBinary(D, *FromText), D);
    ASSERT_TRUE(Back.hasValue()) << Back.describe();
    EXPECT_EQ(writeSummaries(D, *Back), Text) << "trial " << Trial;
  }
}

TEST(SummaryIOFuzzTest, TruncatedBinaryStreamsAreAlwaysRejected) {
  // Every proper prefix of a binary stream must be rejected (the text
  // format cannot promise this — a truncation at a block boundary is
  // valid text — but StreamEnd makes it airtight for the wire format).
  Design D;
  D.addModule(gen::makeFifo({8, 2, true}));
  Summaries Original;
  ASSERT_FALSE(analyzeDesign(D, Original).hasError());
  std::string Bytes = writeSummariesBinary(D, Original);
  for (size_t N = 0; N != Bytes.size(); ++N) {
    auto Decoded = readSummariesBinary(Bytes.substr(0, N), D);
    EXPECT_FALSE(Decoded.hasValue()) << "prefix of " << N << " bytes";
    EXPECT_TRUE(Decoded.diags().hasError()) << "prefix of " << N;
  }
}

TEST(SummaryIOFuzzTest, EngineKeyCommentsAreIgnoredByTheParser) {
  // SummaryEngine::saveCache prepends `# key <name> <hex>` lines; the
  // parser must treat any comment soup as whitespace.
  Design D;
  D.addModule(gen::makeFifo({8, 2, true}));
  Summaries Original;
  ASSERT_FALSE(analyzeDesign(D, Original).hasError());
  std::string Text = writeSummaries(D, Original);

  std::string Annotated = "# key fifo_fwd_w8_d4 deadbeefcafef00d\n"
                          "# not a key line at all\n#\n";
  std::vector<std::string> Lines = splitLines(Text);
  for (const std::string &L : Lines) {
    Annotated += L;
    Annotated += "\n# interleaved comment\n";
  }

  auto Parsed = parseSummaries(Annotated, D);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.describe();
  EXPECT_EQ(writeSummaries(D, *Parsed), Text);
}
