//===- tests/property/ShardDifferentialTest.cpp - Shards vs serial --------===//
//
// Part of the wiresort project. The sharding determinism contract
// (analysis/Sharded.h, docs/SCALE.md), enforced over 120 seeded
// mega-scale designs — loop-free and loop-injected, all three
// topologies, both execution modes:
//
//  * Stage 1 — ShardedEngine::analyze at every shard count in
//    {1, 2, 4, 8}, in-process threads and fork+pipe children alike,
//    produces byte-identical verdict NDJSON, structurallyEqual summary
//    maps, and byte-identical saveCache sidecars — and byte-identical
//    binary summary sidecars — to the serial SummaryEngine reference.
//    Loop-injected trials push WS101 diagnostics (witness hops
//    included) through the fork pipe's framed wire records
//    (support/Wire.h putDiag/getDiag), so the byte claim covers the
//    diag codec too.
//  * Warm cache — a second analyze on the same ShardedEngine serves
//    every module from cache and must not move a byte.
//  * Stage 3 — checkCircuitSharded at every shard count emits verdicts
//    and diagnostics byte-identical to checkCircuitPairwise, and agrees
//    with the SCC production checker's verdict.
//
// A 1-shard run and an 8-shard fork run share nothing but the
// coordinator logic, so byte equality here is evidence the partitioning
// itself — not scheduling luck — determines the output.
//
//===----------------------------------------------------------------------===//

#include "analysis/Sharded.h"

#include "analysis/SummaryEngine.h"
#include "analysis/SummaryIO.h"
#include "analysis/WellConnected.h"
#include "gen/MegaScale.h"
#include "support/Diag.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

using Summaries = std::map<ModuleId, ModuleSummary>;

/// Seed -> mega-scale parameters: rotates topology, CI-sized grids, a
/// quarter of the trials loop-injected (their WS101 diags must survive
/// the fork pipe byte-for-byte).
MegaScaleParams paramsFor(uint32_t Seed) {
  MegaScaleParams P;
  P.Topo = Seed % 3 == 0   ? MegaScaleParams::Topology::TileGrid
           : Seed % 3 == 1 ? MegaScaleParams::Topology::NocMesh
                           : MegaScaleParams::Topology::FifoFabric;
  P.GridX = 1 + Seed % 3;
  P.GridY = 1 + (Seed / 3) % 2;
  P.TilesPerCluster = 1 + Seed % 4;
  P.PayloadPerTile = 2 + Seed % 5;
  P.TileVariants = 1 + Seed % 3;
  P.ClusterVariants = 1 + Seed % 2;
  P.Width = static_cast<uint16_t>(4 + 4 * (Seed % 3));
  P.Seed = 0x5eed0000ull + Seed;
  P.InjectLoop = Seed % 4 == 3;
  P.LoopRingLength = 2 + Seed % 4;
  return P;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

void expectSameSummaries(const Summaries &Ref, const Summaries &Got,
                         const std::string &Trial) {
  ASSERT_EQ(Ref.size(), Got.size()) << Trial;
  for (const auto &[Id, S] : Ref) {
    auto It = Got.find(Id);
    ASSERT_TRUE(It != Got.end()) << Trial << " module " << Id;
    EXPECT_TRUE(structurallyEqual(S, It->second))
        << Trial << " module " << Id;
  }
}

class ShardTrial : public ::testing::TestWithParam<uint32_t> {};
class ShardCheckTrial : public ::testing::TestWithParam<uint32_t> {};

} // namespace

TEST_P(ShardTrial, EveryShardCountAndModeMatchesSerialByteForByte) {
  const uint32_t Seed = GetParam();
  const MegaScaleParams P = paramsFor(Seed);

  Design D;
  buildMegaScale(D, P);

  // Serial reference: the SummaryEngine (cache on, one thread), its
  // verdict bytes, and its sidecar bytes.
  CheckOptions RefOpts;
  RefOpts.Threads = 1;
  SummaryEngine Ref(RefOpts);
  Summaries RefOut;
  support::Status RefVerdict = Ref.analyze(D, RefOut);
  const std::string RefJson = support::renderJson(RefVerdict);
  EXPECT_EQ(RefVerdict.hasError(), P.InjectLoop)
      << "seed " << Seed << "\n"
      << RefVerdict.describe();

  const std::string RefCachePath = ::testing::TempDir() +
                                   "/shard_diff_ref_" +
                                   std::to_string(Seed) + ".wscache";
  std::remove(RefCachePath.c_str());
  ASSERT_TRUE(Ref.saveCache(RefCachePath, D, RefOut).empty())
      << "seed " << Seed;
  const std::string RefCacheBytes = slurp(RefCachePath);
  ASSERT_FALSE(RefCacheBytes.empty()) << "seed " << Seed;

  // Binary-roundtrip differential: the wire-format sidecar of the
  // serial summaries decodes back to the same summaries, and its bytes
  // are the reference every sharded run must reproduce below.
  const std::string RefBinary = writeSummariesBinary(D, RefOut);
  {
    auto Decoded = readSummariesBinary(RefBinary, D);
    ASSERT_TRUE(Decoded.hasValue())
        << "seed " << Seed << "\n"
        << Decoded.describe();
    expectSameSummaries(RefOut, *Decoded,
                        "seed " + std::to_string(Seed) + " binary");
    EXPECT_EQ(writeSummaries(D, *Decoded), writeSummaries(D, RefOut))
        << "seed " << Seed;
  }

  const std::string ShardCachePath = ::testing::TempDir() +
                                     "/shard_diff_" +
                                     std::to_string(Seed) + ".wscache";
  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    for (ShardOptions::Mode Mode : {ShardOptions::Mode::InProcess,
                                    ShardOptions::Mode::Fork}) {
      const std::string Trial =
          "seed " + std::to_string(Seed) + " shards " +
          std::to_string(Shards) +
          (Mode == ShardOptions::Mode::Fork ? " fork" : " threads");
      ShardOptions SOpts;
      SOpts.Shards = Shards;
      SOpts.ExecMode = Mode;
      ShardedEngine Sharded(SOpts);
      Summaries Out;
      support::Status Verdict = Sharded.analyze(D, Out);
      EXPECT_EQ(support::renderJson(Verdict), RefJson) << Trial;
      expectSameSummaries(RefOut, Out, Trial);

      // The sidecar a sharded run persists is the one the serial run
      // persists — same keys (primeKeys), same records, same bytes.
      std::remove(ShardCachePath.c_str());
      ASSERT_TRUE(
          Sharded.engine().saveCache(ShardCachePath, D, Out).empty())
          << Trial;
      EXPECT_EQ(slurp(ShardCachePath), RefCacheBytes) << Trial;

      // Same byte-identity for the binary summary sidecar: shard
      // count and mode must not move a byte of the wire stream.
      EXPECT_EQ(writeSummariesBinary(D, Out), RefBinary) << Trial;

      // Warm re-run on the same engine: all cache hits, zero drift.
      if (Shards == 4 && Mode == ShardOptions::Mode::InProcess) {
        Summaries Warm;
        support::Status WarmVerdict = Sharded.analyze(D, Warm);
        EXPECT_EQ(support::renderJson(WarmVerdict), RefJson)
            << Trial << " warm";
        expectSameSummaries(RefOut, Warm, Trial + " warm");
        if (!RefVerdict.hasError()) {
          EXPECT_EQ(Sharded.stats().CacheHits, RefOut.size())
              << Trial << " warm";
        }
      }
    }
  }
  std::remove(RefCachePath.c_str());
  std::remove(ShardCachePath.c_str());
}

// The acceptance bar: >= 100 seeded designs. 120 seeds x 3 topologies
// rotation, 30 of them loop-injected. Labeled `slow`/`scale` in
// tests/CMakeLists.txt.
INSTANTIATE_TEST_SUITE_P(MegaScaleDesigns, ShardTrial,
                         ::testing::Range<uint32_t>(0, 120));

TEST_P(ShardCheckTrial, ShardedStage3MatchesPairwiseByteForByte) {
  const uint32_t Seed = 9000 + GetParam();
  MegaScaleParams P = paramsFor(GetParam());
  P.Seed = Seed;
  // Half the trials ring-injected so Stage 3 has real from-port ->
  // to-port work (clean mega designs discharge everything by sort).
  P.InjectLoop = GetParam() % 2 == 1;

  Design D;
  Circuit Circ = buildMegaScaleCircuit(D, P);
  SummaryEngine Engine;
  Summaries Out;
  ASSERT_FALSE(Engine.analyze(D, Out).hasError()) << "seed " << Seed;

  CircuitCheckResult Pairwise = checkCircuitPairwise(Circ, Out);
  CircuitCheckResult Scc = checkCircuit(Circ, Out);
  EXPECT_EQ(Pairwise.WellConnected, Scc.WellConnected) << "seed " << Seed;
  EXPECT_EQ(Pairwise.WellConnected, !P.InjectLoop) << "seed " << Seed;

  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    CircuitCheckResult Sharded = checkCircuitSharded(Circ, Out, Shards);
    EXPECT_EQ(Sharded.WellConnected, Pairwise.WellConnected)
        << "seed " << Seed << " shards " << Shards;
    EXPECT_EQ(support::renderJson(Sharded.Diags),
              support::renderJson(Pairwise.Diags))
        << "seed " << Seed << " shards " << Shards;
    EXPECT_EQ(Sharded.SafeBySort, Pairwise.SafeBySort)
        << "seed " << Seed << " shards " << Shards;
    EXPECT_EQ(Sharded.NeedsCheck, Pairwise.NeedsCheck)
        << "seed " << Seed << " shards " << Shards;
  }
}

INSTANTIATE_TEST_SUITE_P(MegaScaleCircuits, ShardCheckTrial,
                         ::testing::Range<uint32_t>(0, 40));
