//===- tests/property/FaultSoakTest.cpp - Randomized fault soak -----------===//
//
// Part of the wiresort project. The robustness acceptance bar
// (docs/ROBUSTNESS.md): 200 seeded trials, each running the full
// load-cache / analyze / save-cache pipeline over a random design with a
// randomized failpoint schedule armed, must satisfy
//
//  * cache-fault-only schedules leave the verdict byte-identical to the
//    fault-free run (the cache can only ever cost warm starts);
//  * cancel/panic schedules either match the fault-free verdict or fail
//    *closed*: only WS601/WS604 (plus the fault-free run's own loop
//    diags) appear, and every summary actually delivered is structurally
//    identical to its fault-free counterpart — partial, never wrong;
//  * the on-disk cache is never torn: after every trial a disarmed
//    process loads it back with zero quarantined records.
//
// No crash, no hang, no corrupt file, no wrong verdict — by running,
// not by argument. (The process-killing cache.save.partial fault is
// exercised separately by CrashRecoveryTest; everything else is armed
// here.)
//
//===----------------------------------------------------------------------===//

#include "analysis/SummaryEngine.h"

#include "analysis/Sharded.h"
#include "gen/Random.h"
#include "ir/Builder.h"
#include "support/Deadline.h"
#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>
#include <random>
#include <set>
#include <string>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

using Summaries = std::map<ModuleId, ModuleSummary>;

RandomCircuitParams paramsFor(uint32_t Seed) {
  RandomCircuitParams P;
  P.NModuleDefs = 2 + Seed % 4;
  P.NInstances = 3 + Seed % 9;
  P.PConnect = 0.5 + 0.4 * ((Seed % 5) / 5.0);
  P.ModuleShape.NInputs = 2 + Seed % 4;
  P.ModuleShape.NOutputs = 2 + Seed % 3;
  P.ModuleShape.NGates = 8 + Seed % 20;
  P.ModuleShape.PReg = 0.1 + 0.6 * ((Seed % 7) / 7.0);
  return P;
}

/// Faults that only touch cache persistence: the verdict must not move.
const char *const CacheSites[] = {
    "cache.save.open", "cache.save.write",  "cache.save.fsync",
    "cache.save.rename", "cache.load.read", "cache.load.corrupt",
};
/// Faults that abandon or kill work mid-run: fail closed, never wrong.
const char *const CancelSites[] = {
    "engine.cancel",
    "engine.module.throw",
    "kernel.cancel",
};

/// One randomized schedule: 1-3 sites drawn from \p Pool (and, for mixed
/// trials, a second pool), each with a random trigger.
std::string randomSchedule(std::mt19937 &Rng, bool UseCache,
                           bool UseCancel) {
  auto mode = [&]() -> std::string {
    switch (Rng() % 3) {
    case 0:
      return "always";
    case 1:
      return "nth(" + std::to_string(1 + Rng() % 8) + ")";
    default:
      return "prob(0." + std::to_string(2 + Rng() % 7) + ")";
    }
  };
  std::set<std::string> Picked;
  unsigned N = 1 + Rng() % 3;
  for (unsigned I = 0; I != N; ++I) {
    bool FromCache = UseCache && (!UseCancel || Rng() % 2 == 0);
    const char *const *Pool = FromCache ? CacheSites : CancelSites;
    size_t Size = FromCache ? std::size(CacheSites) : std::size(CancelSites);
    Picked.insert(std::string(Pool[Rng() % Size]) + "=" + mode());
  }
  std::string Spec;
  for (const std::string &Clause : Picked)
    Spec += (Spec.empty() ? "" : ",") + Clause;
  return Spec;
}

class FaultSoakTrial : public ::testing::TestWithParam<uint32_t> {
protected:
  void SetUp() override { support::failpoint::disarmAll(); }
  void TearDown() override { support::failpoint::disarmAll(); }
};

} // namespace

TEST_P(FaultSoakTrial, FaultsNeverCorruptCacheOrVerdict) {
  const uint32_t Seed = GetParam();
  std::mt19937 Rng(Seed ^ 0xfa517050u);
  // Trial class rotates: cache-only, cancel-only, mixed.
  const bool UseCache = Seed % 3 != 1;
  const bool UseCancel = Seed % 3 != 0;
  const std::string Spec = randomSchedule(Rng, UseCache, UseCancel);
  const unsigned Threads = Seed % 2 ? 1 : 4;
  const std::string Trial = "seed " + std::to_string(Seed) + " threads " +
                            std::to_string(Threads) + " spec '" + Spec +
                            "'";

  Design D;
  {
    std::mt19937 DesignRng(Seed);
    randomCircuit(DesignRng, D, paramsFor(Seed), "soak").seal();
  }

  CheckOptions Opts;
  Opts.Threads = Threads;
  std::string Path = ::testing::TempDir() + "/fault_soak_" +
                     std::to_string(Seed) + ".wscache";
  std::remove(Path.c_str());
  std::remove((Path + ".tmp").c_str());

  // --- Fault-free reference: verdict bytes, summaries, and the cache
  // --- file the faulty run starts from.
  SummaryEngine Ref(Opts);
  Summaries RefOut;
  support::Status RefVerdict = Ref.analyze(D, RefOut);
  const std::string RefJson = support::renderJson(RefVerdict);
  ASSERT_TRUE(Ref.saveCache(Path, D, RefOut).empty()) << Trial;

  // --- The faulty run: same pipeline, schedule armed, a live (but
  // --- never naturally expiring) deadline so the DL-gated kernel
  // --- cancel site is reachable.
  ASSERT_TRUE(
      support::failpoint::configure(Spec, /*Seed=*/Seed).empty())
      << Trial;
  SummaryEngine Faulty(Opts);
  auto Loaded = Faulty.loadCache(Path, D);
  ASSERT_TRUE(Loaded.hasValue())
      << Trial << ": intact cache rejected\n" << Loaded.describe();
  Summaries FaultyOut;
  support::Status FaultyVerdict =
      Faulty.analyze(D, FaultyOut, {}, support::Deadline::afterMs(60000));
  support::Status SaveStatus = Faulty.saveCache(Path, D, FaultyOut);
  EXPECT_FALSE(SaveStatus.hasError())
      << Trial << ": cache faults must degrade to warnings\n"
      << SaveStatus.describe();
  support::failpoint::disarmAll();

  // --- Partial progress is never wrong progress: every delivered
  // --- summary matches its fault-free counterpart exactly.
  for (const auto &[Id, S] : FaultyOut) {
    ASSERT_TRUE(RefOut.count(Id))
        << Trial << ": module " << Id
        << " summarized under faults but not fault-free";
    EXPECT_TRUE(structurallyEqual(S, RefOut.at(Id)))
        << Trial << ": module " << Id << " summary diverged";
  }

  const std::string FaultyJson = support::renderJson(FaultyVerdict);
  if (!UseCancel) {
    // Cache faults must be invisible to the verdict, byte for byte.
    EXPECT_EQ(FaultyJson, RefJson) << Trial;
    EXPECT_EQ(FaultyOut.size(), RefOut.size()) << Trial;
  } else if (FaultyJson != RefJson) {
    // A moved verdict must have declared itself: cancellation (WS601)
    // or a contained panic (WS604) — and nothing else beyond the
    // fault-free run's own loop diagnostics.
    std::set<std::string> RefDiags;
    for (const support::Diag &Dg : RefVerdict)
      RefDiags.insert(Dg.describe());
    bool FailedClosed = false;
    for (const support::Diag &Dg : FaultyVerdict) {
      switch (Dg.code()) {
      case support::DiagCode::WS601_CANCELLED:
      case support::DiagCode::WS604_WORKER_PANIC:
        FailedClosed = true;
        break;
      default:
        EXPECT_TRUE(RefDiags.count(Dg.describe()))
            << Trial << ": novel non-fault diagnostic\n" << Dg.describe();
        break;
      }
    }
    EXPECT_TRUE(FailedClosed)
        << Trial << ": verdict moved without WS601/WS604\nfaulty:\n"
        << FaultyVerdict.describe() << "\nreference:\n"
        << RefVerdict.describe();
  }

  // --- The file at Path is a complete, checksum-clean cache no matter
  // --- which save/load faults fired: either the faulty save landed
  // --- atomically (FaultyOut records) or the reference file survived
  // --- untouched (RefOut records). Never torn, never quarantined.
  SummaryEngine Reload(Opts);
  auto Final = Reload.loadCache(Path, D);
  ASSERT_TRUE(Final.hasValue())
      << Trial << ": torn cache after faults\n" << Final.describe();
  EXPECT_EQ(Final->Quarantined, 0u) << Trial << "\n"
                                    << Final->Warnings.describe();
  EXPECT_TRUE(Final->Loaded == RefOut.size() ||
              Final->Loaded == FaultyOut.size())
      << Trial << ": loaded " << Final->Loaded << ", expected "
      << RefOut.size() << " or " << FaultyOut.size();

  std::remove(Path.c_str());
  std::remove((Path + ".tmp").c_str());
}

// The acceptance bar: >= 200 seeded schedules, zero crashes, hangs,
// torn caches, or wrong verdicts. Carries the ctest label "soak" so the
// sanitizer stage of tools/run_tests.sh can rerun exactly this suite.
INSTANTIATE_TEST_SUITE_P(RandomSchedules, FaultSoakTrial,
                         ::testing::Range<uint32_t>(0, 200));

namespace {

class ShardFaultSoakTrial : public ::testing::TestWithParam<uint32_t> {
protected:
  void SetUp() override { support::failpoint::disarmAll(); }
  void TearDown() override { support::failpoint::disarmAll(); }
};

} // namespace

// The same contract, one layer up: fork-mode shard workers killed
// mid-protocol (the "shard.worker.kill" site dies like an OOM-killed
// child, possibly mid-pipe-write) — and, on a third of the seeds, an
// "engine.cancel" firing *inside* the surviving children. The
// coordinator must fail closed: every module a dead worker left
// unaccounted gets WS604, cancelled children surface WS601, delivered
// summaries are partial-never-wrong, and the cache sidecar is never
// torn (docs/SCALE.md).
TEST_P(ShardFaultSoakTrial, WorkerDeathsFailClosedAndNeverTearCache) {
  const uint32_t Seed = GetParam();
  std::mt19937 Rng(Seed ^ 0x54a6d050u);
  const unsigned Shards = 2 + Seed % 3;

  auto mode = [&]() -> std::string {
    switch (Rng() % 3) {
    case 0:
      return "always";
    case 1:
      return "nth(" + std::to_string(1 + Rng() % 4) + ")";
    default:
      return "prob(0." + std::to_string(2 + Rng() % 7) + ")";
    }
  };
  std::string Spec = "shard.worker.kill=" + mode();
  if (Seed % 3 == 0)
    Spec += ",engine.cancel=" + mode();
  const std::string Trial = "seed " + std::to_string(Seed) + " shards " +
                            std::to_string(Shards) + " spec '" + Spec +
                            "'";

  Design D;
  {
    std::mt19937 DesignRng(Seed);
    randomCircuit(DesignRng, D, paramsFor(Seed), "shardsoak").seal();
  }

  const std::string Path = ::testing::TempDir() + "/shard_soak_" +
                           std::to_string(Seed) + ".wscache";
  std::remove(Path.c_str());
  std::remove((Path + ".tmp").c_str());

  // Fault-free serial reference, and the cache file the faulty run
  // starts from.
  CheckOptions RefOpts;
  RefOpts.Threads = 1;
  SummaryEngine Ref(RefOpts);
  Summaries RefOut;
  support::Status RefVerdict = Ref.analyze(D, RefOut);
  const std::string RefJson = support::renderJson(RefVerdict);
  ASSERT_TRUE(Ref.saveCache(Path, D, RefOut).empty()) << Trial;

  ASSERT_TRUE(
      support::failpoint::configure(Spec, /*Seed=*/Seed).empty())
      << Trial;
  ShardOptions SOpts;
  SOpts.Shards = Shards;
  SOpts.ExecMode = ShardOptions::Mode::Fork;
  ShardedEngine Faulty(SOpts);
  // Cold cache on purpose: a warm engine would satisfy every module
  // before any worker forks, never reaching the kill site.
  Summaries FaultyOut;
  support::Status FaultyVerdict = Faulty.analyze(
      D, FaultyOut, {}, support::Deadline::afterMs(60000));
  support::Status SaveStatus = Faulty.engine().saveCache(Path, D, FaultyOut);
  support::failpoint::disarmAll();
  EXPECT_FALSE(SaveStatus.hasError())
      << Trial << ": cache faults must degrade to warnings\n"
      << SaveStatus.describe();

  // Partial progress is never wrong progress.
  for (const auto &[Id, S] : FaultyOut) {
    ASSERT_TRUE(RefOut.count(Id))
        << Trial << ": module " << Id
        << " summarized under faults but not fault-free";
    EXPECT_TRUE(structurallyEqual(S, RefOut.at(Id)))
        << Trial << ": module " << Id << " summary diverged";
  }

  const std::string FaultyJson = support::renderJson(FaultyVerdict);
  if (FaultyJson != RefJson) {
    // A moved verdict must have declared itself: WS604 for every module
    // a dead worker left unaccounted, WS601 for cancellation — nothing
    // novel beyond the fault-free run's own loop diagnostics.
    std::set<std::string> RefDiags;
    for (const support::Diag &Dg : RefVerdict)
      RefDiags.insert(Dg.describe());
    bool FailedClosed = false;
    for (const support::Diag &Dg : FaultyVerdict) {
      switch (Dg.code()) {
      case support::DiagCode::WS601_CANCELLED:
      case support::DiagCode::WS604_WORKER_PANIC:
        FailedClosed = true;
        break;
      default:
        EXPECT_TRUE(RefDiags.count(Dg.describe()))
            << Trial << ": novel non-fault diagnostic\n" << Dg.describe();
        break;
      }
    }
    EXPECT_TRUE(FailedClosed)
        << Trial << ": verdict moved without WS601/WS604\nfaulty:\n"
        << FaultyVerdict.describe() << "\nreference:\n"
        << RefVerdict.describe();
    EXPECT_TRUE(FaultyVerdict.hasError())
        << Trial << ": unaccounted modules without an error verdict";
  }

  // Never a torn sidecar: a disarmed engine loads whatever file the
  // trial left behind with zero quarantined records.
  SummaryEngine Reload(RefOpts);
  auto Final = Reload.loadCache(Path, D);
  ASSERT_TRUE(Final.hasValue())
      << Trial << ": torn cache after shard faults\n" << Final.describe();
  EXPECT_EQ(Final->Quarantined, 0u) << Trial << "\n"
                                    << Final->Warnings.describe();
  EXPECT_TRUE(Final->Loaded == RefOut.size() ||
              Final->Loaded == FaultyOut.size())
      << Trial << ": loaded " << Final->Loaded << ", expected "
      << RefOut.size() << " or " << FaultyOut.size();

  std::remove(Path.c_str());
  std::remove((Path + ".tmp").c_str());
}

INSTANTIATE_TEST_SUITE_P(ShardSchedules, ShardFaultSoakTrial,
                         ::testing::Range<uint32_t>(0, 60));
