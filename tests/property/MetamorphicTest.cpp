//===- tests/property/MetamorphicTest.cpp - Naming/order invariance -------===//
//
// Part of the wiresort project. Metamorphic counterpart to the shard
// differential suite (docs/SCALE.md): applies semantics-preserving
// transformations to generated designs and hand-built circuits and pins
// down exactly which observables each one may not move.
//
//  * Renaming (modules, wires, instances): cache keys are content-
//    addressed and ir::structuralHash deliberately hashes no names, so a
//    wholesale rename leaves every per-module key, every port-set map,
//    and the verdict shape (hasError + diagnostic-code multiset)
//    untouched — and a cache warmed on the original design serves the
//    renamed design entirely from cache. Diagnostic *message bytes* do
//    change (they quote names); the claims here are deliberately the
//    name-free ones.
//  * Instance insertion order: a circuit's verdict and its pairwise
//    per-connection diagnostics depend on what is connected to what, not
//    on the order addInstance was called in.
//  * Connection insertion order: the verdict is order-free; the pairwise
//    diagnostic *multiset* is order-free (emission order follows
//    connection order by contract, so byte order may legitimately move).
//  * Module declaration order: cache keys are content-addressed, so the
//    key *multiset* of a library is independent of the ModuleIds its
//    modules happen to get; summaries matched by name carry identical
//    port sets either way.
//
//===----------------------------------------------------------------------===//

#include "analysis/SummaryEngine.h"
#include "analysis/WellConnected.h"
#include "gen/Catalog.h"
#include "gen/LoopInjector.h"
#include "gen/MegaScale.h"
#include "support/Diag.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <string>
#include <vector>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

using Summaries = std::map<ModuleId, ModuleSummary>;

/// CI-sized mega-scale params; a quarter of the seeds loop-injected so
/// the invariants are also checked on designs whose verdict is WS101.
MegaScaleParams ciParams(uint32_t Seed) {
  MegaScaleParams P;
  P.Topo = Seed % 3 == 0   ? MegaScaleParams::Topology::TileGrid
           : Seed % 3 == 1 ? MegaScaleParams::Topology::NocMesh
                           : MegaScaleParams::Topology::FifoFabric;
  P.GridX = 1 + Seed % 3;
  P.GridY = 1 + (Seed / 3) % 2;
  P.TilesPerCluster = 1 + Seed % 3;
  P.PayloadPerTile = 2 + Seed % 4;
  P.TileVariants = 1 + Seed % 3;
  P.ClusterVariants = 1 + Seed % 2;
  P.Width = static_cast<uint16_t>(4 + 4 * (Seed % 3));
  P.Seed = 0x3e7a0000ull + Seed;
  P.InjectLoop = Seed % 4 == 3;
  P.LoopRingLength = 2 + Seed % 3;
  return P;
}

/// Deterministic in-place shuffle (no std::random devices — test must be
/// repeatable byte-for-byte).
void lcgShuffle(std::vector<uint32_t> &V, uint64_t Seed) {
  uint64_t S = Seed * 6364136223846793005ull + 1442695040888963407ull;
  for (size_t I = V.size(); I > 1; --I) {
    S = S * 6364136223846793005ull + 1442695040888963407ull;
    std::swap(V[I - 1], V[(S >> 33) % I]);
  }
}

/// Gives every module, wire, and sub-instance of \p D a fresh name the
/// original never used. Structure (kinds, widths, nets, bindings) is
/// untouched, so this is the paper-level "alpha renaming" of a design.
void renameEverything(Design &D) {
  for (ModuleId Id = 0; Id != D.numModules(); ++Id) {
    Module &M = D.module(Id);
    M.Name = "renamed_mod_" + std::to_string(Id);
    for (size_t W = 0; W != M.Wires.size(); ++W)
      M.Wires[W].Name = "rw" + std::to_string(W);
    for (size_t I = 0; I != M.Instances.size(); ++I)
      M.Instances[I].Name = "ri" + std::to_string(I);
  }
}

/// The name-free shape of a verdict: which diagnostic codes fired, how
/// often. Messages quote module names, so byte comparison is out of
/// bounds for rename trials; the code multiset is the honest invariant.
std::vector<support::DiagCode> codeMultiset(const support::Status &S) {
  std::vector<support::DiagCode> Codes;
  for (const support::Diag &Dg : S)
    Codes.push_back(Dg.code());
  std::sort(Codes.begin(), Codes.end());
  return Codes;
}

/// Sorted renderJson lines of a diag list — the multiset view for
/// order-permutation trials.
std::vector<std::string> diagMultiset(const support::DiagList &Ds) {
  std::vector<std::string> Lines;
  for (const support::Diag &Dg : Ds)
    Lines.push_back(support::renderJson(Dg));
  std::sort(Lines.begin(), Lines.end());
  return Lines;
}

void expectSamePortSets(const Summaries &Ref, const Summaries &Got,
                        const std::string &Trial) {
  ASSERT_EQ(Ref.size(), Got.size()) << Trial;
  for (const auto &[Id, S] : Ref) {
    auto It = Got.find(Id);
    ASSERT_TRUE(It != Got.end()) << Trial << " module " << Id;
    EXPECT_EQ(S.OutputPortSets, It->second.OutputPortSets)
        << Trial << " module " << Id;
    EXPECT_EQ(S.InputPortSets, It->second.InputPortSets)
        << Trial << " module " << Id;
    EXPECT_EQ(S.SubSorts, It->second.SubSorts)
        << Trial << " module " << Id;
  }
}

class RenameTrial : public ::testing::TestWithParam<uint32_t> {};
class OrderTrial : public ::testing::TestWithParam<uint32_t> {};

/// Feed-through clones of four catalog modules — the instance pool for
/// the permutation trials. Connecting loop_o -> loop_i in a closed ring
/// is a combinational loop; leaving the ring open is the clean control.
std::vector<ModuleId> feedthroughPool(Design &D) {
  std::vector<ModuleId> Pool;
  Pool.push_back(addFeedthrough(D, D.addModule(makeCounter(8))));
  Pool.push_back(addFeedthrough(D, D.addModule(makeLfsr(8))));
  Pool.push_back(addFeedthrough(D, D.addModule(makeParity(8))));
  Pool.push_back(addFeedthrough(D, D.addModule(makeShiftChain(8, 3))));
  return Pool;
}

} // namespace

TEST_P(RenameTrial, RenamingMovesNoKeyNoPortSetNoVerdictShape) {
  const uint32_t Seed = GetParam();
  const MegaScaleParams P = ciParams(Seed);

  Design Orig;
  buildMegaScale(Orig, P);
  Design Renamed;
  buildMegaScale(Renamed, P);
  renameEverything(Renamed);

  CheckOptions Opts;
  Opts.Threads = 1;
  SummaryEngine OrigEngine(Opts);
  Summaries OrigOut;
  support::Status OrigVerdict = OrigEngine.analyze(Orig, OrigOut);

  SummaryEngine RenamedEngine(Opts);
  Summaries RenamedOut;
  support::Status RenamedVerdict =
      RenamedEngine.analyze(Renamed, RenamedOut);

  ASSERT_EQ(Orig.numModules(), Renamed.numModules()) << "seed " << Seed;
  for (ModuleId Id = 0; Id != Orig.numModules(); ++Id)
    EXPECT_EQ(OrigEngine.keyOf(Id), RenamedEngine.keyOf(Id))
        << "seed " << Seed << " module " << Id;

  EXPECT_EQ(OrigVerdict.hasError(), P.InjectLoop) << "seed " << Seed;
  EXPECT_EQ(RenamedVerdict.hasError(), OrigVerdict.hasError())
      << "seed " << Seed;
  EXPECT_EQ(codeMultiset(OrigVerdict), codeMultiset(RenamedVerdict))
      << "seed " << Seed;
  expectSamePortSets(OrigOut, RenamedOut,
                     "seed " + std::to_string(Seed) + " rename");

  // The sharpest form of key-neutrality: the engine that analyzed the
  // original serves the renamed design entirely from its warm cache (the
  // rebind on lookup restores the new names, so the summaries still
  // match a fresh analysis of the renamed design exactly).
  Summaries WarmOut;
  support::Status WarmVerdict = OrigEngine.analyze(Renamed, WarmOut);
  EXPECT_EQ(OrigEngine.stats().CacheHits, OrigOut.size())
      << "seed " << Seed;
  EXPECT_EQ(OrigEngine.stats().Inferred, 0u) << "seed " << Seed;
  EXPECT_EQ(codeMultiset(WarmVerdict), codeMultiset(RenamedVerdict))
      << "seed " << Seed;
  ASSERT_EQ(WarmOut.size(), RenamedOut.size()) << "seed " << Seed;
  for (const auto &[Id, S] : RenamedOut)
    EXPECT_TRUE(structurallyEqual(S, WarmOut.at(Id)))
        << "seed " << Seed << " module " << Id;
}

INSTANTIATE_TEST_SUITE_P(MegaScaleDesigns, RenameTrial,
                         ::testing::Range<uint32_t>(0, 24));

TEST_P(OrderTrial, InstanceInsertionOrderMovesNoVerdictNoDiag) {
  const uint32_t Seed = GetParam();
  const bool Ring = Seed % 2 == 1; // closed ring <=> loop expected
  const uint32_t K = 4 + Seed % 5;

  Design D;
  std::vector<ModuleId> Pool = feedthroughPool(D);

  std::vector<uint32_t> Order(K);
  std::iota(Order.begin(), Order.end(), 0u);
  lcgShuffle(Order, 0xabcd0000ull + Seed);

  // Identity-order and permuted-order builds of the same logical
  // circuit: instance names and connections are tied to the *logical*
  // index, only the addInstance call order differs.
  Circuit Ident(D, "perm_ident");
  Circuit Perm(D, "perm_shuffled");
  std::vector<InstId> IdentInst(K), PermInst(K);
  for (uint32_t I = 0; I != K; ++I)
    IdentInst[I] =
        Ident.addInstance(Pool[I % Pool.size()], "n" + std::to_string(I));
  for (uint32_t J = 0; J != K; ++J) {
    const uint32_t I = Order[J];
    PermInst[I] =
        Perm.addInstance(Pool[I % Pool.size()], "n" + std::to_string(I));
  }
  const uint32_t Edges = Ring ? K : K - 1;
  for (uint32_t I = 0; I != Edges; ++I) {
    Ident.connect(IdentInst[I], "loop_o", IdentInst[(I + 1) % K],
                  "loop_i");
    Perm.connect(PermInst[I], "loop_o", PermInst[(I + 1) % K], "loop_i");
  }

  SummaryEngine Engine;
  Summaries Out;
  ASSERT_FALSE(Engine.analyze(D, Out).hasError()) << "seed " << Seed;

  CircuitCheckResult IdentScc = checkCircuit(Ident, Out);
  CircuitCheckResult PermScc = checkCircuit(Perm, Out);
  EXPECT_EQ(IdentScc.WellConnected, !Ring) << "seed " << Seed;
  EXPECT_EQ(PermScc.WellConnected, IdentScc.WellConnected)
      << "seed " << Seed;

  CircuitCheckResult IdentPw = checkCircuitPairwise(Ident, Out);
  CircuitCheckResult PermPw = checkCircuitPairwise(Perm, Out);
  EXPECT_EQ(PermPw.WellConnected, IdentPw.WellConnected)
      << "seed " << Seed;
  EXPECT_EQ(diagMultiset(PermPw.Diags), diagMultiset(IdentPw.Diags))
      << "seed " << Seed;
  EXPECT_EQ(PermPw.SafeBySort, IdentPw.SafeBySort) << "seed " << Seed;
  EXPECT_EQ(PermPw.NeedsCheck, IdentPw.NeedsCheck) << "seed " << Seed;
}

TEST_P(OrderTrial, ConnectionInsertionOrderMovesNoVerdictNoDiagMultiset) {
  const uint32_t Seed = GetParam();
  const bool Ring = Seed % 2 == 0;
  const uint32_t K = 4 + Seed % 5;

  Design D;
  std::vector<ModuleId> Pool = feedthroughPool(D);

  Circuit Ident(D, "conn_ident");
  Circuit Perm(D, "conn_shuffled");
  std::vector<InstId> IdentInst(K), PermInst(K);
  for (uint32_t I = 0; I != K; ++I) {
    IdentInst[I] =
        Ident.addInstance(Pool[I % Pool.size()], "n" + std::to_string(I));
    PermInst[I] =
        Perm.addInstance(Pool[I % Pool.size()], "n" + std::to_string(I));
  }
  const uint32_t Edges = Ring ? K : K - 1;
  std::vector<uint32_t> Order(Edges);
  std::iota(Order.begin(), Order.end(), 0u);
  lcgShuffle(Order, 0xc033c0de00ull + Seed);
  for (uint32_t I = 0; I != Edges; ++I)
    Ident.connect(IdentInst[I], "loop_o", IdentInst[(I + 1) % K],
                  "loop_i");
  for (uint32_t J = 0; J != Edges; ++J) {
    const uint32_t I = Order[J];
    Perm.connect(PermInst[I], "loop_o", PermInst[(I + 1) % K], "loop_i");
  }

  SummaryEngine Engine;
  Summaries Out;
  ASSERT_FALSE(Engine.analyze(D, Out).hasError()) << "seed " << Seed;

  CircuitCheckResult IdentScc = checkCircuit(Ident, Out);
  CircuitCheckResult PermScc = checkCircuit(Perm, Out);
  EXPECT_EQ(IdentScc.WellConnected, !Ring) << "seed " << Seed;
  EXPECT_EQ(PermScc.WellConnected, IdentScc.WellConnected)
      << "seed " << Seed;

  CircuitCheckResult IdentPw = checkCircuitPairwise(Ident, Out);
  CircuitCheckResult PermPw = checkCircuitPairwise(Perm, Out);
  EXPECT_EQ(PermPw.WellConnected, IdentPw.WellConnected)
      << "seed " << Seed;
  EXPECT_EQ(diagMultiset(PermPw.Diags), diagMultiset(IdentPw.Diags))
      << "seed " << Seed;
  EXPECT_EQ(PermPw.SafeBySort, IdentPw.SafeBySort) << "seed " << Seed;
  EXPECT_EQ(PermPw.NeedsCheck, IdentPw.NeedsCheck) << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(HandBuiltCircuits, OrderTrial,
                         ::testing::Range<uint32_t>(0, 16));

// Declaring the same module library in a different order hands out
// different ModuleIds, but the content-addressed key *multiset* and the
// per-name port sets cannot move.
TEST(MetamorphicDeclarationOrder, KeyMultisetAndPortSetsInvariant) {
  auto makeLibrary = [] {
    std::vector<Module> Lib;
    Lib.push_back(makeCounter(8));
    Lib.push_back(makeLfsr(16));
    Lib.push_back(makeParity(8));
    Lib.push_back(makeMuxReg(8, 4));
    Lib.push_back(makeTwoFifo(8));
    Lib.push_back(makeGrayCoder(8, false));
    return Lib;
  };

  Design Fwd, Rev;
  {
    std::vector<Module> Lib = makeLibrary();
    for (auto &M : Lib)
      Fwd.addModule(std::move(M));
  }
  {
    std::vector<Module> Lib = makeLibrary();
    for (auto It = Lib.rbegin(); It != Lib.rend(); ++It)
      Rev.addModule(std::move(*It));
  }

  SummaryEngine FwdEngine, RevEngine;
  Summaries FwdOut, RevOut;
  ASSERT_FALSE(FwdEngine.analyze(Fwd, FwdOut).hasError());
  ASSERT_FALSE(RevEngine.analyze(Rev, RevOut).hasError());

  std::vector<uint64_t> FwdKeys = FwdEngine.primeKeys(Fwd);
  std::vector<uint64_t> RevKeys = RevEngine.primeKeys(Rev);
  std::sort(FwdKeys.begin(), FwdKeys.end());
  std::sort(RevKeys.begin(), RevKeys.end());
  EXPECT_EQ(FwdKeys, RevKeys);

  std::map<std::string, const ModuleSummary *> ByName;
  for (const auto &[Id, S] : FwdOut)
    ByName[S.ModuleName] = &S;
  ASSERT_EQ(ByName.size(), FwdOut.size());
  for (const auto &[Id, S] : RevOut) {
    auto It = ByName.find(S.ModuleName);
    ASSERT_TRUE(It != ByName.end()) << S.ModuleName;
    EXPECT_EQ(S.OutputPortSets, It->second->OutputPortSets)
        << S.ModuleName;
    EXPECT_EQ(S.InputPortSets, It->second->InputPortSets) << S.ModuleName;
    EXPECT_EQ(S.SubSorts, It->second->SubSorts) << S.ModuleName;
  }
}
