//===- tests/property/SoundnessTest.cpp - Empirical soundness -------------===//
//
// Part of the wiresort project. The paper's central theorem, executed:
// on arbitrary circuits, the modular wire-sort checker (which never looks
// inside a module after Stage 1) must agree exactly with flat gate-level
// cycle detection. Also cross-checks the SCC-based checker against the
// literal Definition 3.1 pairwise checker, and the incremental checker
// against both.
//
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"
#include "analysis/SortInference.h"
#include "analysis/WellConnected.h"
#include "gen/Random.h"
#include "sim/Simulator.h"
#include "synth/CycleDetect.h"
#include "synth/Lower.h"

#include <gtest/gtest.h>

#include <random>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

struct TrialShape {
  uint32_t Seed;
  RandomCircuitParams Params;
};

class SoundnessTrial : public ::testing::TestWithParam<uint32_t> {};

} // namespace

TEST_P(SoundnessTrial, ModularCheckerAgreesWithNetlistBaseline) {
  std::mt19937 Rng(GetParam());
  RandomCircuitParams P;
  P.NModuleDefs = 2 + GetParam() % 4;
  P.NInstances = 3 + GetParam() % 8;
  P.ModuleShape.NInputs = 2 + GetParam() % 4;
  P.ModuleShape.NOutputs = 2 + GetParam() % 3;
  P.ModuleShape.NGates = 8 + GetParam() % 24;
  P.ModuleShape.PReg = 0.15 + 0.5 * ((GetParam() % 7) / 7.0);

  Design D;
  Circuit Circ = randomCircuit(Rng, D, P, "rand");
  ASSERT_FALSE(D.validate().has_value());

  std::map<ModuleId, ModuleSummary> Summaries;
  wiresort::support::Status InternalLoop = analyzeDesign(D, Summaries);
  ASSERT_FALSE(InternalLoop.hasError())
      << "random modules are DAGs by construction";

  // Modular verdicts (SCC and pairwise must agree with each other).
  CircuitCheckResult Scc = checkCircuit(Circ, Summaries);
  CircuitCheckResult Pairwise = checkCircuitPairwise(Circ, Summaries);
  EXPECT_EQ(Scc.WellConnected, Pairwise.WellConnected);

  // Incremental replay: the first loop must surface on some connection,
  // and only if the circuit is actually looped.
  {
    Circuit Replay(D, "replay");
    for (const auto &Inst : Circ.instances())
      Replay.addInstance(Inst.Def, Inst.Name);
    IncrementalChecker Checker(Replay, Summaries);
    bool SawLoop = false;
    for (const Connection &C : Circ.connections()) {
      Replay.connectPorts(C.From, C.To);
      auto Step = Checker.addConnection(C);
      if (Step.Diags.hasError()) {
        SawLoop = true;
        break;
      }
    }
    EXPECT_EQ(SawLoop, !Scc.WellConnected);
  }

  // Gate-level ground truth on the sealed, lowered circuit.
  ModuleId Top = Circ.seal();
  Module Gates = synth::lower(D, Top);
  bool NetlistLoop = synth::detectCycles(Gates).HasLoop;
  EXPECT_EQ(!Scc.WellConnected, NetlistLoop)
      << "modular and netlist verdicts diverge (seed " << GetParam()
      << ")";

  // And the simulator levelizer is a third witness.
  bool Simulable = sim::Simulator::create(Gates).hasValue();
  EXPECT_EQ(Simulable, !NetlistLoop);
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, SoundnessTrial,
                         ::testing::Range<uint32_t>(0, 120));

namespace {

class ModuleLevelTrial : public ::testing::TestWithParam<uint32_t> {};

} // namespace

TEST_P(ModuleLevelTrial, SummaryMatchesExhaustiveGateReachability) {
  // Stage-1 soundness and precision: an input is in an output's
  // input-port-set iff some gate-level path connects them.
  std::mt19937 Rng(1000 + GetParam());
  RandomModuleParams P;
  P.NInputs = 3 + GetParam() % 4;
  P.NOutputs = 2 + GetParam() % 4;
  P.NGates = 10 + GetParam() % 30;
  P.PReg = 0.1 + 0.6 * ((GetParam() % 5) / 5.0);

  Design D;
  ModuleId Id = D.addModule(
      randomModule(Rng, P, "m" + std::to_string(GetParam())));
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  const ModuleSummary &S = Out.at(Id);
  const Module &M = D.module(Id);

  // Ground truth: reachability over the lowered gate netlist.
  Module Gates = synth::lower(D, Id);
  Graph G(Gates.numWires());
  for (const Net &N : Gates.Nets)
    for (WireId In : N.Inputs)
      G.addEdge(In, N.Output);
  auto bitOf = [&](const std::string &Name) {
    return Gates.findWire(Name + "[0]");
  };

  for (WireId In : M.Inputs) {
    std::vector<bool> Reach = G.reachableFrom(bitOf(M.wire(In).Name));
    for (WireId O : M.Outputs) {
      bool GateLevel = Reach[bitOf(M.wire(O).Name)];
      const auto &Set = S.outputPortSet(In);
      bool Summarized = std::binary_search(Set.begin(), Set.end(), O);
      EXPECT_EQ(GateLevel, Summarized)
          << M.wire(In).Name << " -> " << M.wire(O).Name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModules, ModuleLevelTrial,
                         ::testing::Range<uint32_t>(0, 60));

TEST(SoundnessTest, SyncSortedPortsNeverOnALoop) {
  // Property 1 as a property test: delete every connection touching a
  // to-port input or from-port output; the rest can never form a loop.
  std::mt19937 Rng(99);
  for (int Trial = 0; Trial != 40; ++Trial) {
    Design D;
    RandomCircuitParams P;
    P.NInstances = 6;
    P.PConnect = 0.9;
    Circuit Full = randomCircuit(Rng, D, P, "full");
    std::map<ModuleId, ModuleSummary> Summaries;
    ASSERT_FALSE(analyzeDesign(D, Summaries).hasError());

    Circuit SyncOnly(D, "sync_only");
    for (const auto &Inst : Full.instances())
      SyncOnly.addInstance(Inst.Def, Inst.Name);
    for (const Connection &C : Full.connections())
      if (classifyConnection(Full, Summaries, C) ==
          ConnectionSafety::SafeBySort)
        SyncOnly.connectPorts(C.From, C.To);

    EXPECT_TRUE(checkCircuit(SyncOnly, Summaries).WellConnected);
  }
}

#include "parse/Blif.h"
#include "synth/Optimize.h"

TEST(SoundnessTest, OptimizerPreservesRandomModuleBehavior) {
  // The optimizer must be a semantic no-op on loop-free netlists.
  std::mt19937 Rng(4242);
  for (int Trial = 0; Trial != 20; ++Trial) {
    Design D;
    RandomModuleParams P;
    P.NInputs = 4;
    P.NOutputs = 4;
    P.NGates = 30 + Trial;
    P.PReg = 0.25;
    ModuleId Id = D.addModule(
        randomModule(Rng, P, "opt" + std::to_string(Trial)));
    Module Reference = synth::lower(D, Id);
    Module Optimized = Reference;
    synth::optimize(Optimized);
    ASSERT_FALSE(Optimized.validate().has_value());

    auto S1 = sim::Simulator::create(Reference);
    ASSERT_TRUE(S1.hasValue()) << S1.describe();
    auto S2 = sim::Simulator::create(Optimized);
    ASSERT_TRUE(S2.hasValue()) << S2.describe();
    for (int Cycle = 0; Cycle != 50; ++Cycle) {
      for (WireId In : Reference.Inputs) {
        uint64_t Bit = Rng() & 1;
        S1->setInput(Reference.wire(In).Name, Bit);
        S2->setInput(Reference.wire(In).Name, Bit);
      }
      S1->step();
      S2->step();
      for (WireId Out : Reference.Outputs)
        ASSERT_EQ(S1->value(Reference.wire(Out).Name),
                  S2->value(Reference.wire(Out).Name))
            << "trial " << Trial << " cycle " << Cycle;
    }
  }
}

TEST(SoundnessTest, BlifRoundTripPreservesSortsOnRandomModules) {
  // Lower a random module, write BLIF, reparse: the reimported module's
  // bit-level sorts must match those of the lowered original.
  std::mt19937 Rng(777);
  for (int Trial = 0; Trial != 15; ++Trial) {
    Design D;
    RandomModuleParams P;
    P.NInputs = 3 + Trial % 3;
    P.NOutputs = 3;
    P.NGates = 20 + Trial;
    P.PReg = 0.3;
    ModuleId Id = D.addModule(
        randomModule(Rng, P, "blif" + std::to_string(Trial)));
    Design Flat;
    ModuleId FlatId = Flat.addModule(synth::lower(D, Id));
    std::map<ModuleId, ModuleSummary> Before;
    ASSERT_FALSE(analyzeDesign(Flat, Before).hasError());

    std::string Text = parse::writeBlif(Flat, FlatId);
    auto File = parse::parseBlif(Text);
    ASSERT_TRUE(File.hasValue()) << File.describe();
    std::map<ModuleId, ModuleSummary> After;
    ASSERT_FALSE(analyzeDesign(File->Design, After).hasError());

    const Module &FM = Flat.module(FlatId);
    const Module &RM = File->Design.module(File->Top);
    for (WireId In : FM.Inputs) {
      WireId RIn = RM.findPort(FM.wire(In).Name);
      ASSERT_NE(RIn, InvalidId);
      EXPECT_EQ(Before.at(FlatId).sortOf(In),
                After.at(File->Top).sortOf(RIn))
          << FM.wire(In).Name;
    }
    for (WireId Out : FM.Outputs) {
      WireId ROut = RM.findPort(FM.wire(Out).Name);
      ASSERT_NE(ROut, InvalidId);
      EXPECT_EQ(Before.at(FlatId).sortOf(Out),
                After.at(File->Top).sortOf(ROut))
          << FM.wire(Out).Name;
    }
  }
}

TEST(SoundnessTest, IncrementalVerdictIndependentOfWiringOrder) {
  // Shuffle the order in which a looped circuit's connections are made:
  // some connection must always surface the loop.
  std::mt19937 Rng(31337);
  for (int Trial = 0; Trial != 30; ++Trial) {
    Design D;
    RandomCircuitParams P;
    P.NInstances = 6;
    P.PConnect = 0.7;
    Circuit Circ = randomCircuit(Rng, D, P, "shuffle");
    std::map<ModuleId, ModuleSummary> Summaries;
    ASSERT_FALSE(analyzeDesign(D, Summaries).hasError());
    bool Looped = !checkCircuit(Circ, Summaries).WellConnected;

    std::vector<Connection> Conns = Circ.connections();
    for (int Perm = 0; Perm != 4; ++Perm) {
      std::shuffle(Conns.begin(), Conns.end(), Rng);
      Circuit Replay(D, "replay");
      for (const auto &Inst : Circ.instances())
        Replay.addInstance(Inst.Def, Inst.Name);
      IncrementalChecker Checker(Replay, Summaries);
      bool SawLoop = false;
      for (const Connection &C : Conns) {
        Replay.connectPorts(C.From, C.To);
        if (Checker.addConnection(C).Diags.hasError()) {
          SawLoop = true;
          break;
        }
      }
      EXPECT_EQ(SawLoop, Looped) << "trial " << Trial << " perm " << Perm;
    }
  }
}

TEST(SoundnessTest, SummaryReuseAcrossInstantiationsIsSound) {
  // One definition instantiated many times must behave identically to
  // many copies of the same definition analyzed separately.
  std::mt19937 Rng(9090);
  for (int Trial = 0; Trial != 10; ++Trial) {
    RandomModuleParams P;
    P.NInputs = 3;
    P.NOutputs = 3;
    P.NGates = 25;
    P.PReg = 0.2;
    std::mt19937 Clone = Rng; // Same stream for both builds.
    Design DShared;
    ModuleId Shared = DShared.addModule(
        randomModule(Clone, P, "shared" + std::to_string(Trial)));
    Design DCopies;
    std::vector<ModuleId> Copies;
    for (int I = 0; I != 4; ++I) {
      std::mt19937 Again = Rng;
      Copies.push_back(DCopies.addModule(randomModule(
          Again, P, "copy" + std::to_string(Trial))));
    }
    Rng = Clone; // Advance the outer stream once.

    // Same ring topology over shared-def instances vs per-copy defs.
    auto buildRing = [&](Design &D, const std::vector<ModuleId> &Defs) {
      Circuit Circ(D, "ring");
      std::vector<InstId> Insts;
      for (int I = 0; I != 4; ++I)
        Insts.push_back(Circ.addInstance(Defs[I % Defs.size()],
                                         "u" + std::to_string(I)));
      for (int I = 0; I != 4; ++I) {
        const Module &Def = Circ.defOf(Insts[I]);
        Circ.connectPorts(PortRef{Insts[size_t(I)], Def.Outputs[0]},
                          PortRef{Insts[(I + 1) % 4], Def.Inputs[0]});
      }
      return Circ;
    };
    Circuit RingShared = buildRing(DShared, {Shared});
    Circuit RingCopies = buildRing(DCopies, Copies);

    std::map<ModuleId, ModuleSummary> SShared, SCopies;
    ASSERT_FALSE(analyzeDesign(DShared, SShared).hasError());
    ASSERT_FALSE(analyzeDesign(DCopies, SCopies).hasError());
    EXPECT_EQ(checkCircuit(RingShared, SShared).WellConnected,
              checkCircuit(RingCopies, SCopies).WellConnected)
        << "trial " << Trial;
  }
}
