//===- tests/property/DifferentialTest.cpp - Engine vs flat oracle --------===//
//
// Part of the wiresort project. The SummaryEngine's two contracts, each
// checked over 200 seeded random designs:
//
//  * Differential — the engine's loop verdict on a sealed circuit equals
//    flat synthesis (synth::lower) followed by netlist cycle detection,
//    on naturally-looping random circuits and on LoopInjector-mutated
//    rings (always looped) and open chains (never looped).
//  * Determinism — parallel inference is structurally identical to
//    serial, and cache hits (warm re-runs, disabled cache, cross-run
//    sharing) never change a summary or a verdict.
//
// A failing trial re-runs itself on shrunken copies of the circuit
// (instances dropped from the tail) and reports the smallest
// still-failing instance count in the assertion message, so a 200-seed
// soak failure arrives pre-reduced.
//
//===----------------------------------------------------------------------===//

#include "analysis/SummaryEngine.h"

#include "analysis/Reachability.h"
#include "analysis/SortInference.h"
#include "gen/LoopInjector.h"
#include "gen/Random.h"
#include "ir/Builder.h"
#include "support/Diag.h"
#include "synth/CycleDetect.h"
#include "synth/Lower.h"

#include <gtest/gtest.h>

#include <random>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

using Summaries = std::map<ModuleId, ModuleSummary>;

RandomCircuitParams paramsFor(uint32_t Seed) {
  RandomCircuitParams P;
  P.NModuleDefs = 2 + Seed % 4;
  P.NInstances = 3 + Seed % 9;
  P.PConnect = 0.5 + 0.4 * ((Seed % 5) / 5.0);
  P.ModuleShape.NInputs = 2 + Seed % 4;
  P.ModuleShape.NOutputs = 2 + Seed % 3;
  P.ModuleShape.NGates = 8 + Seed % 20;
  P.ModuleShape.PReg = 0.1 + 0.6 * ((Seed % 7) / 7.0);
  return P;
}

/// Materializes seed -> design deterministically so a shrink can rebuild
/// the same circuit with fewer instances.
Circuit buildTrial(Design &D, uint32_t Seed, uint16_t InstanceCap) {
  std::mt19937 Rng(Seed);
  RandomCircuitParams P = paramsFor(Seed);
  if (InstanceCap < P.NInstances)
    P.NInstances = InstanceCap;
  return randomCircuit(Rng, D, P, "trial");
}

/// One verdict comparison: engine (at \p Threads) on the hierarchical
/// design vs flatten + netlist cycle detection. \returns true when the
/// verdicts agree.
bool verdictsAgree(uint32_t Seed, uint16_t InstanceCap, unsigned Threads) {
  Design D;
  Circuit Circ = buildTrial(D, Seed, InstanceCap);
  ModuleId Top = Circ.seal();

  CheckOptions Opts;
  Opts.Threads = Threads;
  SummaryEngine Engine(Opts);
  Summaries Out;
  bool EngineLoop = Engine.analyze(D, Out).hasError();
  bool OracleLoop = synth::detectCycles(synth::lower(D, Top)).HasLoop;
  return EngineLoop == OracleLoop;
}

/// Shrinks a failing seed by capping the instance count from below;
/// \returns the smallest cap that still fails.
uint16_t shrinkInstanceCap(uint32_t Seed, unsigned Threads) {
  uint16_t Cap = paramsFor(Seed).NInstances;
  for (uint16_t Try = 1; Try < Cap; ++Try)
    if (!verdictsAgree(Seed, Try, Threads))
      return Try;
  return Cap;
}

class DifferentialTrial : public ::testing::TestWithParam<uint32_t> {};
class MutationTrial : public ::testing::TestWithParam<uint32_t> {};
class DeterminismTrial : public ::testing::TestWithParam<uint32_t> {};
class KernelOracleTrial : public ::testing::TestWithParam<uint32_t> {};

} // namespace

TEST_P(DifferentialTrial, EngineVerdictEqualsFlattenedCycleDetect) {
  const uint32_t Seed = GetParam();
  for (unsigned Threads : {1u, 4u}) {
    if (verdictsAgree(Seed, /*InstanceCap=*/0xffff, Threads))
      continue;
    uint16_t MinCap = shrinkInstanceCap(Seed, Threads);
    FAIL() << "engine and netlist verdicts diverge: seed " << Seed
           << ", threads " << Threads
           << "; shrunk reproducer: buildTrial(D, " << Seed << ", "
           << MinCap << ")";
  }
}

// 200 seeds, as the acceptance bar demands. The suite carries the ctest
// label "slow"; tests/CMakeLists.txt keeps it out of quick iterations
// via `ctest -LE slow`.
INSTANTIATE_TEST_SUITE_P(RandomDesigns, DifferentialTrial,
                         ::testing::Range<uint32_t>(0, 200));

TEST_P(MutationTrial, InjectedRingsLoopAndOpenChainsDoNot) {
  // LoopInjector mutation of random module libraries: a feed-through
  // ring must be reported combinationally looped by both the engine and
  // the flat oracle; the broken ring must be clean in both.
  const uint32_t Seed = 5000 + GetParam();
  std::mt19937 Rng(Seed);
  RandomModuleParams P = paramsFor(GetParam()).ModuleShape;

  for (bool Looped : {true, false}) {
    Design D;
    std::vector<ModuleId> Defs;
    for (uint16_t I = 0; I != 3; ++I)
      Defs.push_back(D.addModule(
          randomModule(Rng, P, "m" + std::to_string(I))));
    Circuit Circ = Looped ? buildLoopedRing(D, Defs, "ring")
                          : buildOpenChain(D, Defs, "chain");
    ModuleId Top = Circ.seal();

    SummaryEngine Engine;
    Summaries Out;
    bool EngineLoop = Engine.analyze(D, Out).hasError();
    bool OracleLoop = synth::detectCycles(synth::lower(D, Top)).HasLoop;
    EXPECT_EQ(EngineLoop, OracleLoop) << "seed " << Seed;
    EXPECT_EQ(EngineLoop, Looped) << "seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(MutatedLibraries, MutationTrial,
                         ::testing::Range<uint32_t>(0, 40));

TEST_P(DeterminismTrial, ParallelAndCachedRunsAreStructurallyIdentical) {
  const uint32_t Seed = GetParam();
  Design D;
  Circuit Circ = buildTrial(D, Seed, 0xffff);
  Circ.seal();

  // Baseline: serial engine, cache off — pure repeated inference.
  CheckOptions SerialOpts;
  SerialOpts.Threads = 1;
  SerialOpts.UseCache = false;
  SummaryEngine Serial(SerialOpts);
  Summaries Reference;
  auto SerialVerdict = Serial.analyze(D, Reference);

  // The serial engine must in turn match the original analyzeDesign.
  // (On loops the maps legitimately differ — analyzeDesign stops at the
  // first loop while the engine finishes every loop-independent module —
  // so only the diagnostics are compared there.)
  {
    Summaries Legacy;
    wiresort::support::Status LegacyVerdict = analyzeDesign(D, Legacy);
    ASSERT_EQ(SerialVerdict.hasError(), LegacyVerdict.hasError())
        << "seed " << Seed;
    if (SerialVerdict.hasError()) {
      EXPECT_EQ(SerialVerdict.describe(), LegacyVerdict.describe());
    } else {
      ASSERT_EQ(Reference.size(), Legacy.size()) << "seed " << Seed;
      for (const auto &[Id, S] : Legacy)
        EXPECT_TRUE(structurallyEqual(S, Reference.at(Id)))
            << "seed " << Seed << " module " << Id;
    }
  }

  // Parallel cold, then warm (all cache hits), then a fresh engine warmed
  // through a shared cache run: all must be structurally identical to the
  // serial reference, verdict included.
  CheckOptions ParallelOpts;
  ParallelOpts.Threads = 4;
  SummaryEngine Parallel(ParallelOpts);
  for (const char *Phase : {"parallel cold", "parallel warm"}) {
    Summaries Out;
    support::Status Verdict = Parallel.analyze(D, Out);
    ASSERT_EQ(Verdict.hasError(), SerialVerdict.hasError())
        << "seed " << Seed << " " << Phase;
    EXPECT_EQ(Verdict, SerialVerdict)
        << "seed " << Seed << " " << Phase << "\nparallel:\n"
        << Verdict.describe() << "\nserial:\n" << SerialVerdict.describe();
    // Structural equality is necessary; the CLI contract needs more —
    // the rendered NDJSON must be byte-identical across schedules.
    EXPECT_EQ(support::renderJson(Verdict),
              support::renderJson(SerialVerdict))
        << "seed " << Seed << " " << Phase;
    ASSERT_EQ(Out.size(), Reference.size())
        << "seed " << Seed << " " << Phase;
    for (const auto &[Id, S] : Reference)
      EXPECT_TRUE(structurallyEqual(S, Out.at(Id)))
          << "seed " << Seed << " " << Phase << " module " << Id;
  }
  if (!SerialVerdict.hasError()) {
    EXPECT_EQ(Parallel.stats().CacheHits, Reference.size())
        << "warm re-run must be all hits (seed " << Seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDesigns, DeterminismTrial,
                         ::testing::Range<uint32_t>(0, 60));

TEST(DeterminismTest, EveryLoopedModuleReportedOnceSortedByModuleId) {
  // The engine's diagnostic contract (docs/ENGINE.md): all module-level
  // loop diags are collected — not just the first — ordered by module
  // id, and serial, parallel, and cache-warm runs render byte-identical
  // NDJSON. Three independent modules, two with internal self-loops.
  Design D;
  std::vector<ModuleId> Ids;
  for (int I = 0; I != 3; ++I) {
    Builder B("m" + std::to_string(I));
    V A = B.input("a", 1);
    B.output("y", B.notv(A));
    Ids.push_back(D.addModule(B.finish()));
    if (I != 1) {
      Module &M = D.module(Ids.back());
      WireId W = M.addWire("self", WireKind::Basic, 1);
      M.addNet(Op::Not, {W}, W);
    }
  }

  CheckOptions SerialOpts;
  SerialOpts.Threads = 1;
  SummaryEngine Serial(SerialOpts);
  Summaries SerialOut;
  support::Status Reference = Serial.analyze(D, SerialOut);

  ASSERT_EQ(Reference.size(), 2u) << Reference.describe();
  EXPECT_EQ(Reference[0].code(), support::DiagCode::WS101_COMB_LOOP);
  EXPECT_NE(Reference[0].describe().find("m0"), std::string::npos)
      << Reference.describe();
  EXPECT_NE(Reference[1].describe().find("m2"), std::string::npos)
      << Reference.describe();
  // The loop-free module still got its summary.
  EXPECT_TRUE(SerialOut.count(Ids[1]));

  CheckOptions ParallelOpts;
  ParallelOpts.Threads = 4;
  SummaryEngine Parallel(ParallelOpts);
  for (const char *Phase : {"parallel cold", "parallel warm"}) {
    Summaries Out;
    support::Status Verdict = Parallel.analyze(D, Out);
    EXPECT_EQ(Verdict, Reference) << Phase;
    EXPECT_EQ(support::renderJson(Verdict), support::renderJson(Reference))
        << Phase;
  }
}

TEST_P(KernelOracleTrial, BatchedClosureMatchesPerSourceBfs) {
  // Stage-1 inference now routes output-port-sets through the
  // bit-parallel CSR kernel (docs/KERNEL.md); the per-source BFS
  // CombGraph::reachableOutputPorts stays in the tree exactly so this
  // trial can demand bit-identical summaries on every seed.
  const uint32_t Seed = GetParam();
  Design D;
  Circuit Circ = buildTrial(D, Seed, 0xffff);
  Circ.seal();

  Summaries Out;
  if (analyzeDesign(D, Out).hasError())
    return; // Looped design: inference stops at the diagnostic.

  for (const auto &[Id, Summary] : Out) {
    CombGraph CG = CombGraph::build(D.module(Id), Out);
    for (WireId In : D.module(Id).Inputs)
      EXPECT_EQ(Summary.OutputPortSets.at(In), CG.reachableOutputPorts(In))
          << "seed " << Seed << " module " << Id << " input " << In;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDesigns, KernelOracleTrial,
                         ::testing::Range<uint32_t>(0, 200));
