//===- tests/riscv/CpuTest.cpp - RV32I CPU case-study tests ---------------===//
//
// Part of the wiresort project. Behavioral ISA tests for the Section 5.3
// CPU plus the wire-sort results the case study reports.
//
//===----------------------------------------------------------------------===//

#include "riscv/Cpu.h"

#include "ir/Builder.h"

#include "analysis/SortInference.h"
#include "analysis/WellConnected.h"
#include "riscv/Encoding.h"
#include "sim/Simulator.h"
#include "synth/CycleDetect.h"
#include "synth/Flatten.h"
#include "synth/Lower.h"

#include <gtest/gtest.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;
using namespace wiresort::riscv;

namespace {

/// Builds, seals, flattens, and simulates the CPU with a program image.
class CpuHarness {
public:
  explicit CpuHarness(const std::vector<uint32_t> &Program,
                      uint16_t NumThreads = 5) {
    CpuConfig Config;
    Config.NumThreads = NumThreads;
    Cpu C = buildCpu(D, Config);
    ModuleId Top = sealCpu(C);
    Flat = synth::inlineInstances(D, Top);
    auto S = sim::Simulator::create(Flat);
    EXPECT_TRUE(S.hasValue()) << S.describe();
    if (S)
      Sim.emplace(std::move(*S));

    IMem = findMem("fetch.imem");
    Bank0 = findMem("regfile.bank0");
    DMem = findMem("lsu.dmem");
    Instret = findMem("csr.instret");

    std::vector<uint64_t> Image(Program.begin(), Program.end());
    Sim->loadMemory(IMem, Image);
    Sim->setInput("sched.run_i", 1);
    Sim->setInput("fetch.imem_wen_i", 0);
    Sim->setInput("fetch.imem_waddr_i", 0);
    Sim->setInput("fetch.imem_wdata_i", 0);
  }

  void run(size_t Cycles) {
    for (size_t I = 0; I != Cycles; ++I)
      Sim->step();
  }

  /// Architectural register \p Reg of hardware thread \p Thread.
  uint32_t reg(uint16_t Thread, uint16_t Reg) const {
    return static_cast<uint32_t>(
        Sim->memoryWord(Bank0, (uint64_t(Thread) << 5) | Reg));
  }

  uint32_t dataWord(uint32_t WordAddr) const {
    return static_cast<uint32_t>(Sim->memoryWord(DMem, WordAddr));
  }

  uint32_t instret(uint16_t Thread) const {
    return static_cast<uint32_t>(Sim->memoryWord(Instret, Thread));
  }

  Design D;
  Module Flat;
  std::optional<sim::Simulator> Sim;
  MemId IMem = 0, Bank0 = 0, DMem = 0, Instret = 0;

private:
  MemId findMem(const std::string &Name) {
    for (MemId M = 0; M != Flat.Memories.size(); ++M)
      if (Flat.Memories[M].Name == Name)
        return M;
    ADD_FAILURE() << "memory " << Name << " not found";
    return 0;
  }
};

/// Halt: spin on a self-jump.
uint32_t halt() { return jal(0, 0); }

/// Enough cycles for every thread to run \p PerThread instructions.
size_t cyclesFor(size_t PerThread, uint16_t Threads = 5) {
  return (PerThread + 4) * Threads + Threads;
}

} // namespace

TEST(CpuTest, AddiAndRegisterZero) {
  CpuHarness H({
      addi(1, 0, 42),   // x1 = 42
      addi(2, 1, -2),   // x2 = 40
      addi(0, 0, 99),   // x0 stays 0
      halt(),
  });
  H.run(cyclesFor(4));
  for (uint16_t T = 0; T != 5; ++T) {
    EXPECT_EQ(H.reg(T, 1), 42u) << "thread " << T;
    EXPECT_EQ(H.reg(T, 2), 40u) << "thread " << T;
    EXPECT_EQ(H.reg(T, 0), 0u) << "thread " << T;
  }
}

TEST(CpuTest, ArithmeticRType) {
  CpuHarness H({
      addi(1, 0, 21),
      addi(2, 0, 2),
      add(3, 1, 2),    // 23
      sub(4, 1, 2),    // 19
      and_(5, 1, 2),   // 21 & 2 = 0
      or_(6, 1, 2),    // 23
      xor_(7, 1, 2),   // 23
      halt(),
  });
  H.run(cyclesFor(8));
  EXPECT_EQ(H.reg(0, 3), 23u);
  EXPECT_EQ(H.reg(0, 4), 19u);
  EXPECT_EQ(H.reg(0, 5), 0u);
  EXPECT_EQ(H.reg(0, 6), 23u);
  EXPECT_EQ(H.reg(0, 7), 23u);
}

TEST(CpuTest, ShiftsIncludingArithmetic) {
  CpuHarness H({
      addi(1, 0, -8),      // 0xFFFFFFF8
      addi(2, 0, 2),
      sll(3, 1, 2),        // 0xFFFFFFE0
      srl(4, 1, 2),        // 0x3FFFFFFE
      sra(5, 1, 2),        // 0xFFFFFFFE
      slli(6, 2, 4),       // 32
      srai(7, 1, 1),       // 0xFFFFFFFC
      halt(),
  });
  H.run(cyclesFor(8));
  EXPECT_EQ(H.reg(0, 3), 0xFFFFFFE0u);
  EXPECT_EQ(H.reg(0, 4), 0x3FFFFFFEu);
  EXPECT_EQ(H.reg(0, 5), 0xFFFFFFFEu);
  EXPECT_EQ(H.reg(0, 6), 32u);
  EXPECT_EQ(H.reg(0, 7), 0xFFFFFFFCu);
}

TEST(CpuTest, ComparisonsSignedAndUnsigned) {
  CpuHarness H({
      addi(1, 0, -1),       // Signed -1 / unsigned max.
      addi(2, 0, 1),
      slt(3, 1, 2),         // -1 < 1: 1.
      sltu(4, 1, 2),        // max < 1: 0.
      slti(5, 1, 0),        // -1 < 0: 1.
      sltiu(6, 2, 2),       // 1 < 2: 1.
      halt(),
  });
  H.run(cyclesFor(7));
  EXPECT_EQ(H.reg(0, 3), 1u);
  EXPECT_EQ(H.reg(0, 4), 0u);
  EXPECT_EQ(H.reg(0, 5), 1u);
  EXPECT_EQ(H.reg(0, 6), 1u);
}

TEST(CpuTest, LuiAuipcJalLinkage) {
  CpuHarness H({
      lui(1, 0x12345000),   // x1 = 0x12345000.
      auipc(2, 0x1000),     // x2 = 4 + 0x1000.
      jal(3, 8),            // x3 = 12; skip next.
      addi(4, 0, 111),      // Skipped.
      addi(5, 0, 7),
      halt(),
  });
  H.run(cyclesFor(6));
  EXPECT_EQ(H.reg(0, 1), 0x12345000u);
  EXPECT_EQ(H.reg(0, 2), 0x1004u);
  EXPECT_EQ(H.reg(0, 3), 12u);
  EXPECT_EQ(H.reg(0, 4), 0u); // Never executed.
  EXPECT_EQ(H.reg(0, 5), 7u);
}

TEST(CpuTest, JalrComputedTarget) {
  CpuHarness H({
      addi(1, 0, 16),       // Target = 16.
      jalr(2, 1, 0),        // Jump to 16, x2 = 8.
      addi(3, 0, 1),        // Skipped.
      addi(3, 0, 2),        // Skipped.
      addi(4, 0, 9),        // At 16.
      halt(),
  });
  H.run(cyclesFor(6));
  EXPECT_EQ(H.reg(0, 2), 8u);
  EXPECT_EQ(H.reg(0, 3), 0u);
  EXPECT_EQ(H.reg(0, 4), 9u);
}

TEST(CpuTest, BranchesTakenAndNot) {
  CpuHarness H({
      addi(1, 0, 5),
      addi(2, 0, 5),
      beq(1, 2, 8),         // Taken: skip poison.
      addi(3, 0, 111),      // Skipped.
      bne(1, 2, 8),         // Not taken.
      addi(4, 0, 22),       // Executed.
      blt(1, 2, 8),         // Not taken (5 < 5 false).
      addi(5, 0, 33),       // Executed.
      bge(1, 2, 8),         // Taken.
      addi(6, 0, 111),      // Skipped.
      addi(7, 0, 44),
      halt(),
  });
  H.run(cyclesFor(12));
  EXPECT_EQ(H.reg(0, 3), 0u);
  EXPECT_EQ(H.reg(0, 4), 22u);
  EXPECT_EQ(H.reg(0, 5), 33u);
  EXPECT_EQ(H.reg(0, 6), 0u);
  EXPECT_EQ(H.reg(0, 7), 44u);
}

TEST(CpuTest, UnsignedBranches) {
  CpuHarness H({
      addi(1, 0, -1),       // Unsigned max.
      addi(2, 0, 1),
      bltu(2, 1, 8),        // 1 < max: taken.
      addi(3, 0, 111),      // Skipped.
      bgeu(2, 1, 8),        // Not taken.
      addi(4, 0, 55),       // Executed.
      halt(),
  });
  H.run(cyclesFor(7));
  EXPECT_EQ(H.reg(0, 3), 0u);
  EXPECT_EQ(H.reg(0, 4), 55u);
}

TEST(CpuTest, WordLoadsAndStores) {
  CpuHarness H({
      addi(1, 0, 0x123),
      sw(1, 0, 16),         // mem[16] = 0x123.
      lw(2, 0, 16),         // x2 = 0x123.
      addi(3, 2, 1),
      halt(),
  });
  H.run(cyclesFor(5));
  EXPECT_EQ(H.dataWord(4), 0x123u);
  EXPECT_EQ(H.reg(0, 2), 0x123u);
  EXPECT_EQ(H.reg(0, 3), 0x124u);
}

TEST(CpuTest, SubWordLoadsSignAndZeroExtend) {
  CpuHarness H({
      lui(1, static_cast<int32_t>(0x8F6E4000)),
      addi(1, 1, 0x4D2),    // x1 = 0x8F6E44D2.
      sw(1, 0, 0),
      lb(2, 0, 0),
      lbu(3, 0, 0),
      lh(4, 0, 0),
      lhu(5, 0, 0),
      lb(6, 0, 1),
      halt(),
  });
  H.run(cyclesFor(9));
  // x1 = 0x8F6E5000 + (0x4D2 - 0x1000) = 0x8F6E44D2.
  EXPECT_EQ(H.reg(0, 1), 0x8F6E44D2u);
  EXPECT_EQ(H.reg(0, 2), 0xFFFFFFD2u); // LB sign-extends 0xD2.
  EXPECT_EQ(H.reg(0, 3), 0xD2u);       // LBU.
  EXPECT_EQ(H.reg(0, 4), 0x44D2u);     // LH of 0x44D2 (positive).
  EXPECT_EQ(H.reg(0, 5), 0x44D2u);     // LHU.
  EXPECT_EQ(H.reg(0, 6), 0x44u);       // Byte 1.
}

TEST(CpuTest, SubWordStoresMergeIntoWord) {
  CpuHarness H({
      addi(1, 0, 0x7F),     // Pattern bytes.
      sw(0, 0, 0),          // Clear word 0.
      sb(1, 0, 2),          // Byte 2 = 0x7F.
      addi(2, 0, 0x5A),
      sb(2, 0, 0),          // Byte 0 = 0x5A.
      addi(3, 0, 0x666),
      sh(3, 0, 4),          // Halfword at word 1, offset 0.
      halt(),
  });
  H.run(cyclesFor(8));
  EXPECT_EQ(H.dataWord(0), 0x007F005Au);
  EXPECT_EQ(H.dataWord(1), 0x0666u);
}

TEST(CpuTest, FibonacciLoop) {
  // fib(10) = 55 via an iterative loop.
  CpuHarness H({
      addi(1, 0, 0),        // a = 0.
      addi(2, 0, 1),        // b = 1.
      addi(3, 0, 10),       // i = 10.
      // loop:
      beq(3, 0, 24),        // While i != 0... exit to halt.
      add(4, 1, 2),         // t = a + b.
      addi(1, 2, 0),        // a = b.
      addi(2, 4, 0),        // b = t.
      addi(3, 3, -1),       // --i.
      jal(0, -20),          // Back to loop head.
      halt(),
  });
  H.run(cyclesFor(80));
  for (uint16_t T = 0; T != 5; ++T)
    EXPECT_EQ(H.reg(T, 1), 55u) << "thread " << T;
}

TEST(CpuTest, ThreadsProgressIndependently) {
  // Every thread increments a private counter; a shared memory cell is
  // bumped by whoever reaches it, demonstrating interleaving.
  CpuHarness H({
      addi(1, 1, 1),        // Private counter (regs are per thread).
      lw(2, 0, 0),
      addi(2, 2, 1),
      sw(2, 0, 0),          // Shared cell.
      jal(0, -16),
  });
  H.run(500);
  uint32_t Total = 0;
  uint32_t PerThread[5];
  for (uint16_t T = 0; T != 5; ++T) {
    PerThread[T] = H.reg(T, 1);
    EXPECT_GT(PerThread[T], 10u) << "thread " << T;
    Total += PerThread[T];
  }
  // Fair round-robin: lap counts stay within a small window.
  for (uint16_t T = 1; T != 5; ++T)
    EXPECT_LE(std::max(PerThread[T], PerThread[0]) -
                  std::min(PerThread[T], PerThread[0]),
              2u);
  // The shared cell saw updates, but fine-grained interleaving loses
  // some increments (each thread's load and store are 10 cycles apart):
  // a classic data race the CPU must exhibit faithfully.
  EXPECT_GT(H.dataWord(0), 0u);
  EXPECT_LE(H.dataWord(0), Total);
  // Retired-instruction counters advance with the laps (5 per lap).
  EXPECT_GT(H.instret(0), PerThread[0]);
}

TEST(CpuTest, CircuitIsWellConnected) {
  // The Section 5.3 headline: all 11 modules summarized, the circuit
  // checks clean, and the flat netlist agrees.
  Design D;
  Cpu C = buildCpu(D);
  std::map<ModuleId, ModuleSummary> Out;
  wiresort::support::Status Loop = analyzeDesign(D, Out);
  ASSERT_FALSE(Loop.hasError()) << Loop.describe();
  EXPECT_EQ(C.Modules.size(), 11u);

  CircuitCheckResult R = checkCircuit(C.Circ, Out);
  EXPECT_TRUE(R.WellConnected);
  EXPECT_TRUE(checkCircuitPairwise(C.Circ, Out).WellConnected);

  ModuleId Top = sealCpu(C);
  Module Gates = synth::lower(D, Top);
  EXPECT_FALSE(synth::detectCycles(Gates).HasLoop);
}

TEST(CpuTest, SingleCycleSortsAreMostlyPortSorts) {
  // Table 4's RISC-V row: a single-cycle CPU's module interfaces are
  // dominated by to-port/from-port wires.
  Design D;
  Cpu C = buildCpu(D);
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());

  size_t PortSorted = 0, Total = 0;
  for (ModuleId Id : C.Modules) {
    const Module &M = D.module(Id);
    for (WireId In : M.Inputs) {
      ++Total;
      PortSorted += Out.at(Id).sortOf(In) == Sort::ToPort;
    }
    for (WireId O : M.Outputs) {
      ++Total;
      PortSorted += Out.at(Id).sortOf(O) == Sort::FromPort;
    }
  }
  EXPECT_GT(PortSorted * 2, Total); // More than half are port sorts.
}

TEST(CpuTest, MisWiringIsCaughtBeforeSynthesis) {
  // Wire the ALU result back into the LSU *and* the LSU's load data into
  // the writeback whose output loops into the regfile is fine — but
  // short-circuiting branch.next_pc into the pc_unit is safe while
  // feeding alu.result into its own imm port would loop. Construct the
  // buggy variant explicitly.
  Design D;
  CpuConfig Config;
  Module AluM = makeAlu();
  ModuleId AluId = D.addModule(std::move(AluM));
  ModuleId Pass = [&] {
    Builder B("glue");
    V In = B.input("data_i", 32);
    B.output("data_o", B.notv(In));
    return D.addModule(B.finish());
  }();

  Circuit Circ(D, "buggy");
  InstId A = Circ.addInstance(AluId, "alu");
  InstId G = Circ.addInstance(Pass, "glue");
  Circ.connect(A, "result_o", G, "data_i");
  Circ.connect(G, "data_o", A, "imm_i"); // Combinational loop.

  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  CircuitCheckResult R = checkCircuit(Circ, Out);
  EXPECT_FALSE(R.WellConnected);
  ASSERT_TRUE(R.Diags.hasError());
  EXPECT_NE(R.Diags.describe().find("alu"), std::string::npos);
}

// --- Parameterized thread-count sweep --------------------------------------

class CpuThreadSweep : public ::testing::TestWithParam<uint16_t> {};

TEST_P(CpuThreadSweep, FibonacciOnEveryThread) {
  const uint16_t Threads = GetParam();
  CpuHarness H(
      {
          addi(1, 0, 0), addi(2, 0, 1), addi(3, 0, 9),
          beq(3, 0, 24), add(4, 1, 2), addi(1, 2, 0),
          addi(2, 4, 0), addi(3, 3, -1), jal(0, -20),
          halt(),
      },
      Threads);
  H.run((9 * 6 + 10 + 4) * Threads + Threads);
  for (uint16_t T = 0; T != Threads; ++T)
    EXPECT_EQ(H.reg(T, 1), 34u) << "thread " << T; // fib(9).
}

TEST_P(CpuThreadSweep, WellConnectedAtEveryThreadCount) {
  Design D;
  CpuConfig Config;
  Config.NumThreads = GetParam();
  Cpu C = buildCpu(D, Config);
  std::map<ModuleId, ModuleSummary> Out;
  ASSERT_FALSE(analyzeDesign(D, Out).hasError());
  EXPECT_TRUE(checkCircuit(C.Circ, Out).WellConnected);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, CpuThreadSweep,
                         ::testing::Values<uint16_t>(1, 2, 3, 4, 5, 8),
                         [](const ::testing::TestParamInfo<uint16_t> &I) {
                           return "t" + std::to_string(I.param);
                         });
