//===- wiresort.h - The wiresort public facade ------------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one header downstream code includes. Everything under examples/
/// and tools/ builds against this facade alone, which is what keeps it
/// honest: any type or function a user-facing program needs must be
/// reachable from here, and internal headers are free to move as long
/// as this surface keeps compiling.
///
/// The export set, by namespace:
///
///  * \c wiresort::support — diagnostics (Diag/DiagList/Expected),
///    graphs (Graph, frozen CsrGraph + ReachabilityKernel), Timer,
///    ThreadPool, ASCII Table, Deadline/CancellationToken and the
///    failpoint fault-injection registry (docs/ROBUSTNESS.md).
///  * \c wiresort::trace — the observability layer: RAII Span timing,
///    the Counter/Histogram registry, and Session, the collection
///    window that writes Chrome trace-event JSON
///    (docs/OBSERVABILITY.md).
///  * \c wiresort::ir — wires/nets/modules, Design, Builder, Circuit,
///    structural hashing.
///  * \c wiresort::analysis — Stage-1 sort inference and summaries, the
///    parallel cached SummaryEngine behind CheckOptions (the single
///    options struct), Stage-2/3 circuit checking, ascription,
///    incremental re-checking, sidecar I/O, depth/memory extensions,
///    Graphviz export.
///  * \c wiresort::driver — the CheckRequest/CheckResult check facade
///    (CheckService) and the resident serving layer (Server,
///    requestOnce — docs/SERVING.md).
///  * \c wiresort::parse — BLIF and structural-Verilog front ends.
///  * \c wiresort::synth — hierarchical lowering, flattening, cycle
///    detection, peephole cleanup.
///  * \c wiresort::sim — the cycle-accurate simulator and VCD writer.
///  * \c wiresort::gen — netlist generators (FIFOs, shift registers,
///    cache/DMA fabrics, the randomized design factory).
///  * \c wiresort::riscv — the RV32I core generator and instruction
///    encoders.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_WIRESORT_H
#define WIRESORT_WIRESORT_H

// Support: diagnostics, graphs, timing, threads, tables, tracing,
// robustness (deadlines/cancellation + fault injection).
#include "support/CsrGraph.h"
#include "support/Deadline.h"
#include "support/Diag.h"
#include "support/FailPoint.h"
#include "support/Graph.h"
#include "support/Process.h"
#include "support/Socket.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include "support/Wire.h"

// IR: the netlist object model.
#include "ir/Builder.h"
#include "ir/Circuit.h"
#include "ir/Design.h"
#include "ir/StructuralHash.h"

// Analysis: the paper's three stages plus extensions.
#include "analysis/Ascription.h"
#include "analysis/BaseJump.h"
#include "analysis/CheckOptions.h"
#include "analysis/Depth.h"
#include "analysis/Dot.h"
#include "analysis/Incremental.h"
#include "analysis/MemoryChecks.h"
#include "analysis/Sharded.h"
#include "analysis/SortInference.h"
#include "analysis/SummaryEngine.h"
#include "analysis/SummaryIO.h"
#include "analysis/WellConnected.h"

// Driver: the CheckRequest -> CheckResult facade every client (CLI,
// daemon, benches) runs checks through, and the serving layer that
// keeps one CheckService resident behind a Unix-domain socket
// (docs/SERVING.md).
#include "driver/Check.h"
#include "driver/Serve.h"

// Front ends (and the matching exporters).
#include "parse/Blif.h"
#include "parse/Verilog.h"
#include "parse/VerilogReader.h"

// Synthesis-style transforms.
#include "synth/CycleDetect.h"
#include "synth/Flatten.h"
#include "synth/Lower.h"
#include "synth/Optimize.h"

// Simulation.
#include "sim/Simulator.h"
#include "sim/Vcd.h"

// Generators.
#include "gen/CacheDma.h"
#include "gen/Catalog.h"
#include "gen/Fifo.h"
#include "gen/LoopInjector.h"
#include "gen/MegaScale.h"
#include "gen/Opdb.h"
#include "gen/Random.h"
#include "gen/ShiftReg.h"

// RISC-V demo core.
#include "riscv/Cpu.h"
#include "riscv/Encoding.h"

#endif // WIRESORT_WIRESORT_H
