//===- sim/Vcd.cpp - Value-change-dump tracing ----------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "sim/Vcd.h"

#include <sstream>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::sim;

VcdTrace::VcdTrace(const Module &M, std::vector<WireId> Signals)
    : M(&M), Signals(std::move(Signals)) {
  if (this->Signals.empty()) {
    for (WireId In : M.Inputs)
      this->Signals.push_back(In);
    for (WireId Out : M.Outputs)
      this->Signals.push_back(Out);
  }
  Last.assign(this->Signals.size(), 0);
  Seen.assign(this->Signals.size(), false);
}

std::string VcdTrace::idFor(size_t Index) {
  // Printable identifier alphabet per the VCD spec: '!' (33) to '~'
  // (126), little-endian multi-character for large indices.
  std::string Id;
  do {
    Id.push_back(static_cast<char>(33 + Index % 94));
    Index /= 94;
  } while (Index != 0);
  return Id;
}

void VcdTrace::sample(const Simulator &S, uint64_t Time) {
  std::ostringstream OS;
  bool AnyChange = false;
  for (size_t I = 0; I != Signals.size(); ++I) {
    uint64_t Value = S.value(Signals[I]);
    if (Seen[I] && Value == Last[I])
      continue;
    if (!AnyChange) {
      OS << '#' << Time << '\n';
      AnyChange = true;
    }
    const Wire &W = M->wire(Signals[I]);
    if (W.Width == 1) {
      OS << (Value & 1) << idFor(I) << '\n';
    } else {
      OS << 'b';
      for (uint16_t Bit = W.Width; Bit-- > 0;)
        OS << ((Value >> Bit) & 1);
      OS << ' ' << idFor(I) << '\n';
    }
    Last[I] = Value;
    Seen[I] = true;
  }
  Body += OS.str();
}

std::string VcdTrace::str() const {
  std::ostringstream OS;
  OS << "$timescale 1ns $end\n$scope module " << M->Name << " $end\n";
  for (size_t I = 0; I != Signals.size(); ++I) {
    const Wire &W = M->wire(Signals[I]);
    // VCD identifiers must not contain spaces; wire names may contain
    // '[]' which viewers accept.
    OS << "$var wire " << W.Width << ' ' << idFor(I) << ' ' << W.Name
       << " $end\n";
  }
  OS << "$upscope $end\n$enddefinitions $end\n" << Body;
  return OS.str();
}
