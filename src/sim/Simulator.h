//===- sim/Simulator.h - Cycle-accurate netlist simulation ------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A levelized two-valued simulator for instance-free modules (flatten
/// hierarchical designs with synth::inlineInstances first). It plays the
/// role PyRTL's simulator plays in the paper's artifact: validating that
/// the generated designs — FIFOs, shift registers, the RV32I CPU — really
/// compute what they claim, so the sort analyses are exercised on
/// meaningful hardware rather than stub netlists.
///
/// Combinational evaluation follows one topological order computed at
/// construction; a design with a combinational cycle cannot be levelized,
/// which the constructor reports (the dynamic counterpart of the paper's
/// static checks).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SIM_SIMULATOR_H
#define WIRESORT_SIM_SIMULATOR_H

#include "ir/Module.h"
#include "support/Diag.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wiresort::sim {

/// Cycle-accurate simulator over a flat module.
class Simulator {
public:
  /// Builds a simulator. Failure carries a WS301_SIM_BUILD diagnostic
  /// when the module still contains instances, or WS302_SIM_COMB_LOOP
  /// when a combinational cycle prevents levelization.
  static support::Expected<Simulator> create(const ir::Module &Flat);

  /// Drives input port \p In for subsequent evaluations.
  void setInput(ir::WireId In, uint64_t Value);
  /// Name-resolving convenience; asserts the port exists.
  void setInput(const std::string &Name, uint64_t Value);

  /// Recomputes all combinational values from the current inputs and
  /// state; does not advance the clock.
  void evaluate();

  /// evaluate(), then one rising clock edge: registers latch D, memories
  /// commit writes, synchronous reads latch (reads see pre-write
  /// contents).
  void step();

  /// Current value of any wire (after the last evaluate/step).
  uint64_t value(ir::WireId W) const { return Values[W]; }
  /// Name-resolving convenience; asserts the wire exists.
  uint64_t value(const std::string &Name) const;

  /// Preloads memory \p Mem word-by-word starting at address 0.
  void loadMemory(ir::MemId Mem, const std::vector<uint64_t> &Words);
  /// Reads one memory word (for checking stores).
  uint64_t memoryWord(ir::MemId Mem, uint64_t Addr) const;

  size_t cycles() const { return Cycles; }

private:
  explicit Simulator(const ir::Module &Flat) : M(&Flat) {}

  uint64_t mask(uint16_t Width) const {
    return Width >= 64 ? ~0ull : ((1ull << Width) - 1);
  }
  void evalNet(const ir::Net &N);

  const ir::Module *M;
  std::vector<uint64_t> Values;
  /// Net evaluation order (levelized once at construction).
  std::vector<ir::NetId> Order;
  /// Memory contents, indexed [MemId][Addr].
  std::vector<std::vector<uint64_t>> MemWords;
  size_t Cycles = 0;
};

} // namespace wiresort::sim

#endif // WIRESORT_SIM_SIMULATOR_H
