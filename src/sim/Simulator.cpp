//===- sim/Simulator.cpp - Cycle-accurate netlist simulation --------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "support/Graph.h"
#include "support/Trace.h"

#include <cassert>
#include <map>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::sim;

support::Expected<Simulator> Simulator::create(const Module &Flat) {
  trace::Span CreateSpan("sim.create", "sim");
  CreateSpan.note("module", Flat.Name)
      .note("wires", static_cast<uint64_t>(Flat.numWires()));
  if (!Flat.Instances.empty()) {
    return support::Diag(
        support::DiagCode::WS301_SIM_BUILD,
        "simulator requires an instance-free module (flatten first)");
  }

  Simulator S(Flat);
  S.Values.assign(Flat.numWires(), 0);

  // Levelize: topological order over the combinational wire graph.
  Graph G(Flat.numWires());
  for (const Net &N : Flat.Nets)
    for (WireId In : N.Inputs)
      G.addEdge(In, N.Output);
  for (const Memory &Mem : Flat.Memories)
    if (!Mem.SyncRead)
      G.addEdge(Mem.RAddr, Mem.RData);
  std::optional<std::vector<uint32_t>> WireOrder = G.topoSort();
  if (!WireOrder) {
    return support::Diag(support::DiagCode::WS302_SIM_COMB_LOOP,
                         "module '" + Flat.Name +
                             "' has a combinational loop and cannot be "
                             "levelized");
  }

  // Order net evaluations by the topological position of their outputs;
  // asynchronous reads are folded into evaluate() via a sentinel NetId.
  std::map<WireId, NetId> NetByOutput;
  for (NetId N = 0; N != Flat.Nets.size(); ++N)
    NetByOutput[Flat.Nets[N].Output] = N;
  std::map<WireId, MemId> AsyncByOutput;
  for (MemId MI = 0; MI != Flat.Memories.size(); ++MI)
    if (!Flat.Memories[MI].SyncRead)
      AsyncByOutput[Flat.Memories[MI].RData] = MI;

  for (WireId W : *WireOrder) {
    auto NetIt = NetByOutput.find(W);
    if (NetIt != NetByOutput.end()) {
      S.Order.push_back(NetIt->second);
      continue;
    }
    auto MemIt = AsyncByOutput.find(W);
    if (MemIt != AsyncByOutput.end())
      S.Order.push_back(static_cast<NetId>(Flat.Nets.size() + MemIt->second));
  }

  // Initial state.
  for (WireId W = 0; W != Flat.numWires(); ++W)
    if (Flat.wire(W).Kind == WireKind::Const)
      S.Values[W] = Flat.wire(W).ConstValue & S.mask(Flat.wire(W).Width);
  for (const Register &R : Flat.Registers)
    S.Values[R.Q] = R.Init & S.mask(Flat.wire(R.Q).Width);
  S.MemWords.resize(Flat.Memories.size());
  for (MemId MI = 0; MI != Flat.Memories.size(); ++MI)
    S.MemWords[MI].assign(size_t(1) << Flat.Memories[MI].AddrWidth, 0);
  return S;
}

void Simulator::setInput(WireId In, uint64_t Value) {
  assert(M->wire(In).Kind == WireKind::Input && "not an input port");
  Values[In] = Value & mask(M->wire(In).Width);
}

void Simulator::setInput(const std::string &Name, uint64_t Value) {
  WireId W = M->findPort(Name);
  assert(W != InvalidId && "unknown input port name");
  setInput(W, Value);
}

uint64_t Simulator::value(const std::string &Name) const {
  WireId W = M->findWire(Name);
  assert(W != InvalidId && "unknown wire name");
  return value(W);
}

void Simulator::evalNet(const Net &N) {
  auto in = [&](size_t I) { return Values[N.Inputs[I]]; };
  const Wire &OutWire = M->wire(N.Output);
  uint64_t Result = 0;
  switch (N.Operation) {
  case Op::And:
    Result = in(0) & in(1);
    break;
  case Op::Or:
    Result = in(0) | in(1);
    break;
  case Op::Xor:
    Result = in(0) ^ in(1);
    break;
  case Op::Nand:
    Result = ~(in(0) & in(1));
    break;
  case Op::Nor:
    Result = ~(in(0) | in(1));
    break;
  case Op::Xnor:
    Result = ~(in(0) ^ in(1));
    break;
  case Op::Not:
    Result = ~in(0);
    break;
  case Op::Buf:
    Result = in(0);
    break;
  case Op::Mux:
    Result = in(0) ? in(1) : in(2);
    break;
  case Op::Lut: {
    Result = 0;
    for (const std::string &Row : N.Cover) {
      bool Match = true;
      for (size_t I = 0; I + 1 < Row.size(); ++I) {
        char C = Row[I];
        if (C == '-')
          continue;
        if ((C == '1') != (in(I) != 0)) {
          Match = false;
          break;
        }
      }
      if (Match) {
        Result = Row.back() == '1';
        break;
      }
    }
    break;
  }
  case Op::Add:
    Result = in(0) + in(1);
    break;
  case Op::Sub:
    Result = in(0) - in(1);
    break;
  case Op::Eq:
    Result = in(0) == in(1);
    break;
  case Op::Lt:
    Result = in(0) < in(1);
    break;
  case Op::Concat: {
    for (size_t I = 0; I != N.Inputs.size(); ++I) {
      uint16_t W = M->wire(N.Inputs[I]).Width;
      Result = (W >= 64 ? 0 : (Result << W)) | in(I);
    }
    break;
  }
  case Op::Select:
    Result = in(0) >> N.Aux;
    break;
  case Op::AndR:
    Result = in(0) == mask(M->wire(N.Inputs[0]).Width);
    break;
  case Op::OrR:
    Result = in(0) != 0;
    break;
  case Op::XorR:
    Result = __builtin_popcountll(in(0)) & 1;
    break;
  }
  Values[N.Output] = Result & mask(OutWire.Width);
}

void Simulator::evaluate() {
  static trace::Counter &NetEvals = trace::counter("sim.net_evals");
  NetEvals.add(Order.size());
  const size_t NumNets = M->Nets.size();
  for (NetId Item : Order) {
    if (Item < NumNets) {
      evalNet(M->Nets[Item]);
      continue;
    }
    const Memory &Mem = M->Memories[Item - NumNets];
    Values[Mem.RData] =
        MemWords[Item - NumNets][Values[Mem.RAddr]] & mask(Mem.DataWidth);
  }
}

void Simulator::step() {
  static trace::Counter &Steps = trace::counter("sim.steps");
  Steps.add();
  evaluate();

  // Capture next-state values before mutating anything so every latch
  // sees pre-edge values (read-before-write memory semantics).
  std::vector<std::pair<WireId, uint64_t>> NextQ;
  NextQ.reserve(M->Registers.size() + M->Memories.size());
  for (const Register &R : M->Registers)
    NextQ.emplace_back(R.Q, Values[R.D] & mask(M->wire(R.Q).Width));
  for (MemId MI = 0; MI != M->Memories.size(); ++MI) {
    const Memory &Mem = M->Memories[MI];
    if (Mem.SyncRead)
      NextQ.emplace_back(Mem.RData,
                         MemWords[MI][Values[Mem.RAddr]] &
                             mask(Mem.DataWidth));
  }
  for (MemId MI = 0; MI != M->Memories.size(); ++MI) {
    const Memory &Mem = M->Memories[MI];
    if (Values[Mem.WEnable] & 1)
      MemWords[MI][Values[Mem.WAddr]] = Values[Mem.WData] &
                                        mask(Mem.DataWidth);
  }
  for (const auto &[Q, V] : NextQ)
    Values[Q] = V;
  ++Cycles;
}

void Simulator::loadMemory(MemId Mem, const std::vector<uint64_t> &Words) {
  assert(Mem < MemWords.size() && "no such memory");
  assert(Words.size() <= MemWords[Mem].size() && "memory image too large");
  for (size_t I = 0; I != Words.size(); ++I)
    MemWords[Mem][I] = Words[I] & mask(M->Memories[Mem].DataWidth);
}

uint64_t Simulator::memoryWord(MemId Mem, uint64_t Addr) const {
  return MemWords[Mem][Addr];
}
