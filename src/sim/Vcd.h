//===- sim/Vcd.h - Value-change-dump tracing --------------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VCD (IEEE 1364 value change dump) tracing for the simulator, so
/// simulations of the generated designs can be inspected in standard
/// waveform viewers (GTKWave etc.). Attach a trace to a set of wires,
/// call \ref sample once per cycle after evaluation, and serialize.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SIM_VCD_H
#define WIRESORT_SIM_VCD_H

#include "ir/Module.h"
#include "sim/Simulator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wiresort::sim {

/// Accumulates value changes for a chosen set of wires.
class VcdTrace {
public:
  /// Traces \p Signals of \p M (empty means: all ports).
  VcdTrace(const ir::Module &M, std::vector<ir::WireId> Signals = {});

  /// Records the current values at time step \p Time (typically the
  /// simulator's cycle count). Only changed signals are emitted.
  void sample(const Simulator &S, uint64_t Time);

  /// Renders the complete VCD document.
  std::string str() const;

private:
  /// Short printable VCD identifier for signal \p Index.
  static std::string idFor(size_t Index);

  const ir::Module *M;
  std::vector<ir::WireId> Signals;
  std::vector<uint64_t> Last;
  std::vector<bool> Seen;
  std::string Body;
};

} // namespace wiresort::sim

#endif // WIRESORT_SIM_VCD_H
