//===- gen/ShiftReg.cpp - PISO / SIPO shift registers ---------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "gen/ShiftReg.h"

#include "ir/Builder.h"

#include <cassert>
#include <string>
#include <vector>

using namespace wiresort;
using namespace wiresort::gen;
using namespace wiresort::ir;

Module gen::makePiso(const PisoParams &P) {
  assert(P.NSlots >= 2 && P.NSlots * P.SlotWidth <= 64 &&
         "PISO input word must fit in 64 bits");
  std::string Name = std::string("piso") + (P.Fixed ? "_fixed" : "") +
                     "_n" + std::to_string(P.NSlots) + "_w" +
                     std::to_string(P.SlotWidth);
  Builder B(Name);

  uint16_t InW = static_cast<uint16_t>(P.NSlots * P.SlotWidth);
  uint16_t CtrW = 1;
  while ((1u << CtrW) < P.NSlots)
    ++CtrW;

  V ValidIn = B.input("valid_i", 1);
  V DataIn = B.input("data_i", InW);
  V YumiIn = B.input("yumi_i", 1);

  // state: 0 = stateRcv (accepting a word), 1 = stateTsmt (draining).
  V State = B.regLoop("state", 1);
  V Ctr = B.regLoop("shiftCtr", CtrW);
  std::vector<V> Slots;
  for (uint16_t S = 0; S != P.NSlots; ++S)
    Slots.push_back(B.regLoop("slot" + std::to_string(S), P.SlotWidth));

  V InRcv = B.eqConst(State, 0);
  V InTsmt = B.eqConst(State, 1);
  V LastSlot = B.eqConst(Ctr, P.NSlots - 1);
  V DrainDone = B.andv(B.andv(InTsmt, LastSlot), YumiIn);

  // The quoted Section 5.1 logic — the pre-fix module computes ready_o
  // combinationally from yumi_i; the fixed one offers it from state only.
  V ReadyOut = P.Fixed ? InRcv : B.orv(InRcv, DrainDone);

  V Load = B.andv(InRcv, ValidIn);
  for (uint16_t S = 0; S != P.NSlots; ++S) {
    V Incoming = B.slice(DataIn, static_cast<uint16_t>((S + 1) * P.SlotWidth - 1),
                         static_cast<uint16_t>(S * P.SlotWidth));
    B.drive(Slots[S], B.mux(Load, Incoming, Slots[S]));
  }

  V NextCtr = B.mux(Load, B.lit(0, CtrW),
                    B.mux(B.andv(InTsmt, YumiIn), B.inc(Ctr), Ctr));
  B.drive(Ctr, B.mux(DrainDone, B.lit(0, CtrW), NextCtr));
  // rcv -> tsmt on load; tsmt -> rcv when the last slot is taken.
  B.drive(State, B.mux(Load, B.lit(1, 1),
                       B.mux(DrainDone, B.lit(0, 1), State)));

  V ValidOut = InTsmt;
  V DataOut = B.muxN(Ctr, Slots);

  B.output("valid_o", ValidOut);
  B.output("data_o", DataOut);
  B.output("ready_o", ReadyOut);
  return B.finish();
}

Module gen::makeSipo(const SipoParams &P) {
  assert(P.NSlots >= 2 && P.NSlots * P.SlotWidth <= 64 &&
         "SIPO output word must fit in 64 bits");
  std::string Name = "sipo_n" + std::to_string(P.NSlots) + "_w" +
                     std::to_string(P.SlotWidth);
  Builder B(Name);

  uint16_t CntW = 1;
  while ((1u << CntW) < static_cast<unsigned>(P.NSlots + 1))
    ++CntW;

  V ValidIn = B.input("valid_i", 1);
  V DataIn = B.input("data_i", P.SlotWidth);
  V YumiCnt = B.input("yumi_cnt_i", CntW);

  V Count = B.regLoop("count", CntW);
  std::vector<V> Slots; // Older words, slot0 oldest.
  for (uint16_t S = 0; S + 1 < P.NSlots; ++S)
    Slots.push_back(B.regLoop("slot" + std::to_string(S), P.SlotWidth));

  V NotFull = B.lt(Count, B.lit(P.NSlots, CntW));
  V ReadyOut = NotFull; // From state only: from-sync (Table 1).
  V Enq = B.andv(ValidIn, ReadyOut);

  // Shift the incoming word into the register chain on enqueue.
  V Prev = DataIn;
  for (size_t S = Slots.size(); S-- > 0;) {
    B.drive(Slots[S], B.mux(Enq, Prev, Slots[S]));
    Prev = Slots[S];
  }

  // Occupancy: add the enqueue, subtract however many words the consumer
  // reports taking (yumi_cnt_i affects state only: to-sync).
  V NextCount = B.sub(B.add(Count, B.zext(Enq, CntW)), YumiCnt);
  B.drive(Count, NextCount);

  // The freshly arriving word completes the parallel output
  // combinationally — this is what makes data_o from-port {data_i} and
  // valid_o from-port {valid_i}.
  std::vector<V> OutParts{DataIn}; // Most-significant: newest word.
  for (size_t S = Slots.size(); S-- > 0;)
    OutParts.push_back(Slots[S]);
  V DataOut = B.concat(OutParts);
  V AlmostFull = B.eqConst(Count, P.NSlots - 1);
  V ValidOut = B.andv(AlmostFull, ValidIn);

  B.output("ready_o", ReadyOut);
  B.output("valid_o", ValidOut);
  B.output("data_o", DataOut);
  return B.finish();
}
