//===- gen/Random.cpp - Seeded random designs -----------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "gen/Random.h"

#include "ir/Builder.h"

#include <vector>

using namespace wiresort;
using namespace wiresort::gen;
using namespace wiresort::ir;

Module gen::randomModule(std::mt19937 &Rng, const RandomModuleParams &P,
                         const std::string &Name) {
  Builder B(Name);
  std::uniform_real_distribution<double> Coin(0.0, 1.0);

  std::vector<V> Pool;
  for (uint16_t I = 0; I != P.NInputs; ++I)
    Pool.push_back(B.input("in" + std::to_string(I), 1));
  Pool.push_back(B.lit(0, 1));
  Pool.push_back(B.lit(1, 1));

  auto pick = [&]() {
    std::uniform_int_distribution<size_t> Idx(0, Pool.size() - 1);
    return Pool[Idx(Rng)];
  };

  for (uint16_t G = 0; G != P.NGates; ++G) {
    std::uniform_int_distribution<int> OpPick(0, 5);
    V Out;
    switch (OpPick(Rng)) {
    case 0:
      Out = B.andv(pick(), pick());
      break;
    case 1:
      Out = B.orv(pick(), pick());
      break;
    case 2:
      Out = B.xorv(pick(), pick());
      break;
    case 3:
      Out = B.notv(pick());
      break;
    case 4:
      Out = B.mux(pick(), pick(), pick());
      break;
    default:
      Out = B.nandv(pick(), pick());
      break;
    }
    if (Coin(Rng) < P.PReg)
      Out = B.reg(Out, "r" + std::to_string(G));
    Pool.push_back(Out);
  }

  for (uint16_t O = 0; O != P.NOutputs; ++O)
    B.output("out" + std::to_string(O), pick());
  return B.finish();
}

Circuit gen::randomCircuit(std::mt19937 &Rng, Design &D,
                           const RandomCircuitParams &P,
                           const std::string &Name) {
  std::uniform_real_distribution<double> Coin(0.0, 1.0);
  std::vector<ModuleId> Defs;
  for (uint16_t M = 0; M != P.NModuleDefs; ++M)
    Defs.push_back(D.addModule(randomModule(
        Rng, P.ModuleShape, Name + "_def" + std::to_string(M))));

  Circuit Circ(D, Name);
  std::vector<InstId> Insts;
  std::uniform_int_distribution<size_t> DefPick(0, Defs.size() - 1);
  for (uint16_t I = 0; I != P.NInstances; ++I)
    Insts.push_back(Circ.addInstance(Defs[DefPick(Rng)],
                                     "u" + std::to_string(I)));

  // Enumerate all output ports once so connections draw uniformly.
  std::vector<PortRef> AllOutputs;
  for (InstId Inst = 0; Inst != Insts.size(); ++Inst)
    for (WireId Out : Circ.defOf(Inst).Outputs)
      AllOutputs.push_back(PortRef{Inst, Out});
  std::uniform_int_distribution<size_t> OutPick(0, AllOutputs.size() - 1);

  for (InstId Inst = 0; Inst != Insts.size(); ++Inst) {
    for (WireId In : Circ.defOf(Inst).Inputs) {
      if (Coin(Rng) >= P.PConnect)
        continue;
      Circ.connectPorts(AllOutputs[OutPick(Rng)], PortRef{Inst, In});
    }
  }
  return Circ;
}
