//===- gen/LoopInjector.cpp - Multi-module loop injection -----------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "gen/LoopInjector.h"

#include <cassert>

using namespace wiresort;
using namespace wiresort::gen;
using namespace wiresort::ir;

ModuleId gen::addFeedthrough(Design &D, ModuleId Def) {
  Module Copy = D.module(Def);
  assert(!Copy.Outputs.empty() && "feed-through target needs an output");
  Copy.Name += "_looped";

  WireId LoopIn = Copy.addInput("loop_i", 1);
  // Tap bit 0 of the first output so the new path is entangled with the
  // module's existing combinational cone.
  WireId Tap = Copy.addWire("loop_tap", WireKind::Basic, 1);
  Copy.addNet(Op::Select, {Copy.Outputs.front()}, Tap, /*Aux=*/0);
  WireId Mixed = Copy.addWire("loop_mix", WireKind::Basic, 1);
  Copy.addNet(Op::Xor, {LoopIn, Tap}, Mixed);
  WireId LoopOut = Copy.addOutput("loop_o", 1);
  Copy.addNet(Op::Buf, {Mixed}, LoopOut);
  // An observer output keeps the injected path live through synthesis
  // optimization (otherwise dead-gate removal would silently delete the
  // ring — the very hazard Section 2 warns about).
  WireId Observer = Copy.addOutput("loop_obs_o", 1);
  Copy.addNet(Op::Not, {Mixed}, Observer);
  return D.addModule(std::move(Copy));
}

static Circuit buildChain(Design &D, const std::vector<ModuleId> &Defs,
                          const std::string &Name, bool CloseRing) {
  assert(!Defs.empty());
  Circuit Circ(D, Name);
  std::vector<InstId> Insts;
  for (size_t I = 0; I != Defs.size(); ++I) {
    ModuleId Looped = addFeedthrough(D, Defs[I]);
    Insts.push_back(
        Circ.addInstance(Looped, "u" + std::to_string(I) + "_" +
                                     D.module(Defs[I]).Name));
  }
  size_t Last = Insts.size() - 1;
  for (size_t I = 0; I != Insts.size(); ++I) {
    if (I == Last && !CloseRing)
      break;
    Circ.connect(Insts[I], "loop_o", Insts[(I + 1) % Insts.size()],
                 "loop_i");
  }
  return Circ;
}

Circuit gen::buildLoopedRing(Design &D, const std::vector<ModuleId> &Defs,
                             const std::string &Name) {
  return buildChain(D, Defs, Name, /*CloseRing=*/true);
}

Circuit gen::buildOpenChain(Design &D, const std::vector<ModuleId> &Defs,
                            const std::string &Name) {
  return buildChain(D, Defs, Name, /*CloseRing=*/false);
}
