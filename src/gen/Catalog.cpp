//===- gen/Catalog.cpp - The module corpus --------------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "gen/Catalog.h"

#include "gen/CacheDma.h"
#include "gen/Fifo.h"
#include "gen/ShiftReg.h"
#include "ir/Builder.h"

#include <cassert>

using namespace wiresort;
using namespace wiresort::gen;
using namespace wiresort::ir;

Module gen::makeCounter(uint16_t Width) {
  Builder B("counter_w" + std::to_string(Width));
  V En = B.input("en_i", 1);
  V Clear = B.input("clear_i", 1);
  V Count = B.regLoop("count", Width);
  V Next = B.mux(Clear, B.lit(0, Width), B.mux(En, B.inc(Count), Count));
  B.drive(Count, Next);
  B.output("count_o", Count);
  B.output("overflow_o", B.reg(B.andv(En, B.eqConst(Count, (Width >= 64 ? ~0ull : (1ull << Width) - 1))), "ovf"));
  return B.finish();
}

Module gen::makeLfsr(uint16_t Width) {
  assert(Width >= 4 && "LFSR needs at least 4 bits");
  Builder B("lfsr_w" + std::to_string(Width));
  V En = B.input("en_i", 1);
  V State = B.regLoop("lfsr", Width, 1);
  // Fibonacci feedback from the two top taps (not maximal for every
  // width, but structurally representative).
  V Tap = B.xorv(B.bit(State, Width - 1), B.bit(State, Width - 3));
  V Shifted = B.concat({B.slice(State, Width - 2, 0), Tap});
  B.drive(State, B.mux(En, Shifted, State));
  B.output("value_o", State);
  return B.finish();
}

Module gen::makeShiftChain(uint16_t Width, uint16_t Depth) {
  Builder B("shift_chain_w" + std::to_string(Width) + "_d" +
            std::to_string(Depth));
  V Data = B.input("data_i", Width);
  V En = B.input("en_i", 1);
  V Cur = Data;
  for (uint16_t S = 0; S != Depth; ++S) {
    V Stage = B.regLoop("stage" + std::to_string(S), Width);
    B.drive(Stage, B.mux(En, Cur, Stage));
    Cur = Stage;
  }
  B.output("data_o", Cur);
  return B.finish();
}

Module gen::makeRoundRobinArb(uint16_t NRequesters) {
  Builder B("rr_arb_n" + std::to_string(NRequesters));
  uint16_t PtrW = 1;
  while ((1u << PtrW) < NRequesters)
    ++PtrW;
  V Reqs = B.input("reqs_i", NRequesters);
  V Ptr = B.regLoop("rr_ptr", PtrW);

  // Grant the first requester at or after the pointer: rotate, priority
  // encode, rotate back — all combinational from reqs_i (to-port).
  std::vector<V> GrantBits(NRequesters);
  // grant[i] = req[i] & none of the (rotationally) earlier reqs.
  for (uint16_t I = 0; I != NRequesters; ++I) {
    V Take = B.bit(Reqs, I);
    // Earlier-in-rotation requesters, a chain of at most N-1 terms.
    V Blocked = B.lit(0, 1);
    for (uint16_t J = 0; J != NRequesters; ++J) {
      if (J == I)
        continue;
      // J precedes I in rotation order iff (J - Ptr) mod N < (I - Ptr).
      V JOff = B.sub(B.lit(J, PtrW), Ptr);
      V IOff = B.sub(B.lit(I, PtrW), Ptr);
      V JFirst = B.lt(JOff, IOff);
      Blocked = B.orv(Blocked, B.andv(JFirst, B.bit(Reqs, J)));
    }
    GrantBits[I] = B.andv(Take, B.notv(Blocked));
  }
  std::vector<V> Rev(GrantBits.rbegin(), GrantBits.rend());
  V Grants = B.concat(Rev);
  V AnyGrant = B.orr(Reqs);
  B.drive(Ptr, B.mux(AnyGrant, B.inc(Ptr), Ptr));
  B.output("grants_o", Grants);
  B.output("v_o", AnyGrant);
  return B.finish();
}

Module gen::makePriorityEncoder(uint16_t NRequesters) {
  Builder B("prio_enc_n" + std::to_string(NRequesters));
  V Reqs = B.input("reqs_i", NRequesters);
  std::vector<V> GrantBits(NRequesters);
  V Blocked = B.lit(0, 1);
  for (uint16_t I = 0; I != NRequesters; ++I) {
    V Req = B.bit(Reqs, I);
    GrantBits[I] = B.andv(Req, B.notv(Blocked));
    Blocked = B.orv(Blocked, Req);
  }
  std::vector<V> Rev(GrantBits.rbegin(), GrantBits.rend());
  B.output("grants_o", B.concat(Rev));
  B.output("v_o", B.orr(Reqs));
  return B.finish();
}

Module gen::makeMuxReg(uint16_t Width, uint16_t NInputs) {
  Builder B("mux_reg_w" + std::to_string(Width) + "_n" +
            std::to_string(NInputs));
  uint16_t SelW = 1;
  while ((1u << SelW) < NInputs)
    ++SelW;
  std::vector<V> Ins;
  for (uint16_t I = 0; I != NInputs; ++I)
    Ins.push_back(B.input("data" + std::to_string(I) + "_i", Width));
  V Sel = B.input("sel_i", SelW);
  B.output("data_o", B.reg(B.muxN(Sel, Ins), "out_r"));
  return B.finish();
}

Module gen::makeMuxComb(uint16_t Width, uint16_t NInputs) {
  Builder B("mux_comb_w" + std::to_string(Width) + "_n" +
            std::to_string(NInputs));
  uint16_t SelW = 1;
  while ((1u << SelW) < NInputs)
    ++SelW;
  std::vector<V> Ins;
  for (uint16_t I = 0; I != NInputs; ++I)
    Ins.push_back(B.input("data" + std::to_string(I) + "_i", Width));
  V Sel = B.input("sel_i", SelW);
  B.output("data_o", B.muxN(Sel, Ins));
  return B.finish();
}

Module gen::makeDemux(uint16_t Width, uint16_t NOutputs) {
  Builder B("demux_w" + std::to_string(Width) + "_n" +
            std::to_string(NOutputs));
  uint16_t SelW = 1;
  while ((1u << SelW) < NOutputs)
    ++SelW;
  V Data = B.input("data_i", Width);
  V Sel = B.input("sel_i", SelW);
  V Zero = B.lit(0, Width);
  for (uint16_t O = 0; O != NOutputs; ++O)
    B.output("data" + std::to_string(O) + "_o",
             B.mux(B.eqConst(Sel, O), Data, Zero));
  return B.finish();
}

Module gen::makeCrossbar(uint16_t Width, uint16_t NPorts) {
  Builder B("xbar_w" + std::to_string(Width) + "_n" +
            std::to_string(NPorts));
  uint16_t SelW = 1;
  while ((1u << SelW) < NPorts)
    ++SelW;
  std::vector<V> Ins;
  for (uint16_t I = 0; I != NPorts; ++I)
    Ins.push_back(B.input("in" + std::to_string(I) + "_i", Width));
  for (uint16_t O = 0; O != NPorts; ++O) {
    V Sel = B.input("sel" + std::to_string(O) + "_i", SelW);
    B.output("out" + std::to_string(O) + "_o", B.muxN(Sel, Ins));
  }
  return B.finish();
}

Module gen::makeAdderPipe(uint16_t Width, uint16_t Stages) {
  Builder B("adder_pipe_w" + std::to_string(Width) + "_s" +
            std::to_string(Stages));
  V A = B.input("a_i", Width);
  V Bv = B.input("b_i", Width);
  V VIn = B.input("v_i", 1);
  V Sum = B.reg(B.add(A, Bv), "sum0");
  V Valid = B.reg(VIn, "v0");
  for (uint16_t S = 1; S != Stages; ++S) {
    Sum = B.reg(B.add(Sum, B.lit(0, Width)), "sum" + std::to_string(S));
    Valid = B.reg(Valid, "v" + std::to_string(S));
  }
  B.output("sum_o", Sum);
  B.output("v_o", Valid);
  return B.finish();
}

Module gen::makeIterMul(uint16_t Width) {
  Builder B("iter_mul_w" + std::to_string(Width));
  uint16_t CtrW = 1;
  while ((1u << CtrW) < Width)
    ++CtrW;
  V A = B.input("a_i", Width);
  V Bv = B.input("b_i", Width);
  V VIn = B.input("v_i", 1);
  V Yumi = B.input("yumi_i", 1);

  V Busy = B.regLoop("busy", 1);
  V Done = B.regLoop("done", 1);
  V Ctr = B.regLoop("ctr", CtrW);
  V Acc = B.regLoop("acc", Width);
  V Multiplicand = B.regLoop("mcand", Width);
  V Multiplier = B.regLoop("mplier", Width);

  V Idle = B.notv(B.orv(Busy, Done));
  V Start = B.andv(Idle, VIn);
  // A demanding producer: ready for the next operand pair only once the
  // result is being taken — ready_o depends combinationally on yumi_i.
  V ReadyOut = B.orv(Idle, B.andv(Done, Yumi));

  V StepAdd = B.mux(B.bit(Multiplier, 0), Multiplicand, B.lit(0, Width));
  V AccNext = B.add(Acc, StepAdd);
  V LastStep = B.eqConst(Ctr, Width - 1);

  B.drive(Acc, B.mux(Start, B.lit(0, Width),
                     B.mux(Busy, AccNext, Acc)));
  B.drive(Multiplicand,
          B.mux(Start, A, B.mux(Busy, B.shlConst(Multiplicand, 1),
                                Multiplicand)));
  B.drive(Multiplier,
          B.mux(Start, Bv, B.mux(Busy, B.shrConst(Multiplier, 1),
                                 Multiplier)));
  B.drive(Ctr, B.mux(Start, B.lit(0, CtrW),
                     B.mux(Busy, B.inc(Ctr), Ctr)));
  B.drive(Busy, B.mux(Start, B.lit(1, 1),
                      B.mux(B.andv(Busy, LastStep), B.lit(0, 1), Busy)));
  B.drive(Done, B.mux(B.andv(Busy, LastStep), B.lit(1, 1),
                      B.mux(Yumi, B.lit(0, 1), Done)));

  B.output("result_o", Acc);
  B.output("v_o", Done);
  B.output("ready_o", ReadyOut);
  return B.finish();
}

Module gen::makeTwoFifo(uint16_t Width) {
  Builder B("two_fifo_w" + std::to_string(Width));
  V DataIn = B.input("data_i", Width);
  V VIn = B.input("v_i", 1);
  V Yumi = B.input("yumi_i", 1);

  V Slot0 = B.regLoop("slot0", Width);
  V Slot1 = B.regLoop("slot1", Width);
  V Count = B.regLoop("count", 2);

  V Empty = B.eqConst(Count, 0);
  V Full = B.eqConst(Count, 2);
  V ReadyOut = B.notv(Full);
  V Enq = B.andv(VIn, ReadyOut);
  // Bypass: an empty two-fifo forwards combinationally, like the
  // forwarding FIFO of Figure 2.
  V Bypass = B.andv(Empty, VIn);
  V VOut = B.orv(B.notv(Empty), VIn);
  V DataOut = B.mux(Bypass, DataIn, Slot0);
  V Deq = B.andv(Yumi, B.notv(Empty));
  V BypassTaken = B.andv(Bypass, Yumi);
  V EnqKeep = B.andv(Enq, B.notv(BypassTaken));

  B.drive(Slot0, B.mux(Deq, Slot1,
                       B.mux(B.andv(EnqKeep, Empty), DataIn, Slot0)));
  B.drive(Slot1, B.mux(B.andv(EnqKeep, B.eqConst(Count, 1)), DataIn,
                       Slot1));
  V Up = B.zext(EnqKeep, 2);
  V Down = B.zext(Deq, 2);
  B.drive(Count, B.sub(B.add(Count, Up), Down));

  B.output("data_o", DataOut);
  B.output("v_o", VOut);
  B.output("ready_o", ReadyOut);
  return B.finish();
}

Module gen::makeGrayCoder(uint16_t Width, bool Decode) {
  Builder B(std::string(Decode ? "gray_dec" : "gray_enc") + "_w" +
            std::to_string(Width));
  V In = B.input("data_i", Width);
  V Out;
  if (!Decode) {
    Out = B.xorv(In, B.shrConst(In, 1));
  } else {
    // Binary from Gray: prefix XOR from the top bit down.
    std::vector<V> Bits(Width);
    V Acc = B.bit(In, Width - 1);
    Bits[Width - 1] = Acc;
    for (uint16_t I = Width - 1; I-- > 0;) {
      Acc = B.xorv(Acc, B.bit(In, I));
      Bits[I] = Acc;
    }
    std::vector<V> Rev(Bits.rbegin(), Bits.rend());
    Out = B.concat(Rev);
  }
  B.output("data_o", Out);
  return B.finish();
}

Module gen::makeParity(uint16_t Width) {
  Builder B("parity_w" + std::to_string(Width));
  V In = B.input("data_i", Width);
  B.output("parity_o", B.xorr(In));
  return B.finish();
}

Module gen::makeSyncRam(uint16_t AddrWidth, uint16_t DataWidth) {
  Builder B("sync_ram_a" + std::to_string(AddrWidth) + "_w" +
            std::to_string(DataWidth));
  V RAddr = B.input("raddr_i", AddrWidth);
  V WAddr = B.input("waddr_i", AddrWidth);
  V WData = B.input("wdata_i", DataWidth);
  V WEn = B.input("wen_i", 1);
  V RData = B.memory("ram", /*SyncRead=*/true, RAddr, WAddr, WData, WEn);
  B.output("rdata_o", RData);
  // Section 3.7: the synchronous read address must come straight from a
  // register in the producing module.
  B.requireDriverFromSyncDirect(RAddr);
  return B.finish();
}

Module gen::makeAsyncRam(uint16_t AddrWidth, uint16_t DataWidth) {
  Builder B("async_ram_a" + std::to_string(AddrWidth) + "_w" +
            std::to_string(DataWidth));
  V RAddr = B.input("raddr_i", AddrWidth);
  V WAddr = B.input("waddr_i", AddrWidth);
  V WData = B.input("wdata_i", DataWidth);
  V WEn = B.input("wen_i", 1);
  V RData = B.memory("ram", /*SyncRead=*/false, RAddr, WAddr, WData, WEn);
  B.output("rdata_o", RData);
  return B.finish();
}

Module gen::makeAddrStage(uint16_t AddrWidth) {
  Builder B("addr_stage_a" + std::to_string(AddrWidth));
  V Next = B.input("next_i", AddrWidth);
  V En = B.input("en_i", 1);
  V Addr = B.regLoop("addr_r", AddrWidth);
  B.drive(Addr, B.mux(En, Next, Addr));
  // Fed straight from the register: from-sync-direct.
  B.output("raddr_o", Addr);
  return B.finish();
}

Module gen::makeCreditSender(uint16_t Width, uint16_t MaxCredit) {
  Builder B("credit_sender_w" + std::to_string(Width) + "_c" +
            std::to_string(MaxCredit));
  uint16_t CW = 1;
  while ((1u << CW) < static_cast<unsigned>(MaxCredit + 1))
    ++CW;
  V Data = B.input("data_i", Width);
  V VIn = B.input("v_i", 1);
  V CreditRet = B.input("credit_i", 1);

  V Credits = B.regLoop("credits", CW, MaxCredit);
  V HaveCredit = B.lt(B.lit(0, CW), Credits);
  V Send = B.reg(B.andv(VIn, HaveCredit), "send_r");
  V DataR = B.reg(Data, "data_r");
  V Spent = B.andv(VIn, HaveCredit);
  V Up = B.zext(CreditRet, CW);
  V Down = B.zext(Spent, CW);
  B.drive(Credits, B.sub(B.add(Credits, Up), Down));

  B.output("data_o", DataR);
  B.output("v_o", Send);
  B.output("ready_o", B.reg(HaveCredit, "ready_r"));
  return B.finish();
}

Module gen::makeSkidBuffer(uint16_t Width) {
  Builder B("skid_buffer_w" + std::to_string(Width));
  V DataIn = B.input("data_i", Width);
  V VIn = B.input("v_i", 1);
  V ReadyIn = B.input("ready_i", 1);

  V Full = B.regLoop("full", 1);
  V Buf = B.regLoop("buf", Width);

  // Registered ready (helpful consumer), bypassing data path: when the
  // skid slot is empty the input flows straight through (from-port).
  V ReadyOut = B.notv(Full);
  V VOut = B.orv(Full, VIn);
  V DataOut = B.mux(Full, Buf, DataIn);

  V Stall = B.andv(VOut, B.notv(ReadyIn));
  V Capture = B.andv(B.andv(VIn, ReadyOut), Stall);
  V Drain = B.andv(Full, ReadyIn);
  B.drive(Full, B.mux(Capture, B.lit(1, 1),
                      B.mux(Drain, B.lit(0, 1), Full)));
  B.drive(Buf, B.mux(Capture, DataIn, Buf));

  B.output("data_o", DataOut);
  B.output("v_o", VOut);
  B.output("ready_o", ReadyOut);
  return B.finish();
}

Module gen::makePassthrough(uint16_t Width) {
  Builder B("passthrough_w" + std::to_string(Width));
  V In = B.input("data_i", Width);
  B.output("data_o", B.buf(In));
  return B.finish();
}

Module gen::makeCombAnd(uint16_t Width) {
  Builder B("comb_and_w" + std::to_string(Width));
  V A = B.input("a_i", Width);
  V Bv = B.input("b_i", Width);
  B.output("data_o", B.andv(A, Bv));
  return B.finish();
}

Module gen::makeOneHot(uint16_t SelWidth) {
  Builder B("onehot_s" + std::to_string(SelWidth));
  V Sel = B.input("sel_i", SelWidth);
  uint16_t OutW = static_cast<uint16_t>(1u << SelWidth);
  B.output("onehot_o", B.shl(B.zext(B.lit(1, 1), OutW), Sel));
  return B.finish();
}

Module gen::makeRegSlice(uint16_t Width) {
  Builder B("reg_slice_w" + std::to_string(Width));
  V DataIn = B.input("data_i", Width);
  V VIn = B.input("v_i", 1);
  V Yumi = B.input("yumi_i", 1);

  V Full = B.regLoop("full", 1);
  V Buf = B.regLoop("buf", Width);
  V ReadyOut = B.notv(Full);
  V Take = B.andv(VIn, ReadyOut);
  B.drive(Buf, B.mux(Take, DataIn, Buf));
  B.drive(Full, B.mux(Take, B.lit(1, 1),
                      B.mux(Yumi, B.lit(0, 1), Full)));
  B.output("data_o", Buf);
  B.output("v_o", Full);
  B.output("ready_o", ReadyOut);
  return B.finish();
}

Module gen::makeFunnel(uint16_t HalfWidth) {
  Builder B("funnel_w" + std::to_string(HalfWidth));
  uint16_t InW = static_cast<uint16_t>(2 * HalfWidth);
  V DataIn = B.input("data_i", InW);
  V VIn = B.input("v_i", 1);
  V Yumi = B.input("yumi_i", 1);

  V Phase = B.regLoop("phase", 1); // 0: empty/low half, 1: high half.
  V Word = B.regLoop("word", InW);
  V Valid = B.regLoop("valid", 1);

  V ReadyOut = B.notv(Valid);
  V Load = B.andv(VIn, ReadyOut);
  B.drive(Word, B.mux(Load, DataIn, Word));
  V LastBeat = B.andv(Phase, Yumi);
  B.drive(Valid, B.mux(Load, B.lit(1, 1),
                       B.mux(LastBeat, B.lit(0, 1), Valid)));
  B.drive(Phase, B.mux(Load, B.lit(0, 1),
                       B.mux(Yumi, B.notv(Phase), Phase)));
  V Low = B.slice(Word, HalfWidth - 1, 0);
  V High = B.slice(Word, InW - 1, HalfWidth);
  B.output("data_o", B.mux(Phase, High, Low));
  B.output("v_o", Valid);
  B.output("ready_o", ReadyOut);
  return B.finish();
}

Module gen::makeChecksum(uint16_t Width) {
  Builder B("checksum_w" + std::to_string(Width));
  V DataIn = B.input("data_i", Width);
  V VIn = B.input("v_i", 1);
  V Clear = B.input("clear_i", 1);
  V Sum = B.regLoop("sum", Width);
  V Next = B.mux(Clear, B.lit(0, Width),
                 B.mux(VIn, B.add(Sum, DataIn), Sum));
  B.drive(Sum, Next);
  B.output("sum_o", Sum);
  return B.finish();
}

Module gen::makeTimer(uint16_t Width) {
  Builder B("timer_w" + std::to_string(Width));
  V LoadVal = B.input("load_i", Width);
  V LoadEn = B.input("load_v_i", 1);
  V Count = B.regLoop("count", Width);
  V Expired = B.eqConst(Count, 0);
  V Next = B.mux(LoadEn, LoadVal,
                 B.mux(Expired, Count, B.sub(Count, B.lit(1, Width))));
  B.drive(Count, Next);
  B.output("expired_o", B.reg(Expired, "expired_r"));
  B.output("count_o", Count);
  return B.finish();
}

Module gen::makeSyncFifo(uint16_t Width, uint16_t DepthLog2) {
  Builder B("sync_fifo_w" + std::to_string(Width) + "_d" +
            std::to_string(1u << DepthLog2));
  V DataIn = B.input("data_i", Width);
  V VIn = B.input("v_i", 1);
  V Yumi = B.input("yumi_i", 1);

  uint16_t PtrW = DepthLog2;
  uint16_t CntW = static_cast<uint16_t>(DepthLog2 + 1);
  V Count = B.regLoop("count", CntW);
  V RPtr = B.regLoop("rptr", PtrW);
  V WPtr = B.regLoop("wptr", PtrW);

  V NotFull = B.lt(Count, B.lit(1u << DepthLog2, CntW));
  // v_o tracks whether the rdata register holds a live word: an entry
  // existed before this edge and was not consumed at it. This gives the
  // two-cycle enqueue-to-visible latency inherent to synchronous reads
  // and drops v_o the same edge the last word is taken (no stale beat).
  V VOut = B.regLoop("v_o_r", 1);
  V ReadyOut = NotFull;
  V Enq = B.andv(VIn, ReadyOut);
  V Deq = B.andv(Yumi, VOut);
  B.drive(VOut, B.lt(B.zext(Deq, CntW), Count));

  V RPtrNext = B.mux(Deq, B.inc(RPtr), RPtr);
  B.drive(RPtr, RPtrNext);
  B.drive(WPtr, B.mux(Enq, B.inc(WPtr), WPtr));
  B.drive(Count, B.sub(B.add(Count, B.zext(Enq, CntW)),
                       B.zext(Deq, CntW)));

  // Synchronous-read store addressed by the *next* read pointer so the
  // head word is available the cycle after it is claimed.
  V DataOut =
      B.memory("store", /*SyncRead=*/true, RPtrNext, WPtr, DataIn, Enq);
  B.output("data_o", DataOut);
  B.output("v_o", VOut);
  B.output("ready_o", ReadyOut);
  return B.finish();
}

Module gen::makeMajority(uint16_t Width) {
  Builder B("majority_w" + std::to_string(Width));
  V A = B.input("a_i", Width);
  V Bv = B.input("b_i", Width);
  V C = B.input("c_i", Width);
  V AB = B.andv(A, Bv);
  V AC = B.andv(A, C);
  V BC = B.andv(Bv, C);
  B.output("vote_o", B.orv(B.orv(AB, AC), BC));
  return B.finish();
}

Module gen::makePopcount(uint16_t Width) {
  Builder B("popcount_w" + std::to_string(Width));
  V In = B.input("data_i", Width);
  uint16_t OutW = 1;
  while ((1u << OutW) < static_cast<unsigned>(Width + 1))
    ++OutW;
  V Sum = B.lit(0, OutW);
  for (uint16_t I = 0; I != Width; ++I)
    Sum = B.add(Sum, B.zext(B.bit(In, I), OutW));
  B.output("count_o", Sum);
  return B.finish();
}

Module gen::makeEdgeDetect() {
  Builder B("edge_detect");
  V In = B.input("d_i", 1);
  V Prev = B.reg(In, "prev");
  B.output("rise_o", B.andv(In, B.notv(Prev)));
  return B.finish();
}

Module gen::makePulseSync() {
  Builder B("pulse_sync");
  V In = B.input("d_i", 1);
  V S1 = B.reg(In, "sync1");
  V S2 = B.reg(S1, "sync2");
  B.output("d_o", S2);
  return B.finish();
}

std::vector<CatalogEntry> gen::catalog() {
  std::vector<CatalogEntry> Entries;
  auto add = [&](std::string Family, std::function<Module()> Build) {
    Module Probe = Build();
    Entries.push_back(
        CatalogEntry{std::move(Family), Probe.Name, std::move(Build)});
  };

  for (uint16_t W : {8, 16, 32, 64})
    for (uint16_t D : {2, 4, 6}) {
      add("fifo", [=] { return makeFifo({W, D, false}); });
      add("fifo_fwd", [=] { return makeFifo({W, D, true}); });
    }
  for (uint16_t N : {2, 4, 8})
    for (uint16_t SW : {4, 8}) {
      add("piso", [=] { return makePiso({N, SW, false}); });
      add("piso_fixed", [=] { return makePiso({N, SW, true}); });
      add("sipo", [=] { return makeSipo({N, SW}); });
    }
  for (uint16_t W : {16, 32})
    for (uint16_t A : {12, 16})
      add("cache_dma", [=] { return makeCacheDma({W, A, 4, 3}); });
  for (uint16_t W : {8, 16, 32, 64})
    add("counter", [=] { return makeCounter(W); });
  for (uint16_t W : {8, 16, 32})
    add("lfsr", [=] { return makeLfsr(W); });
  for (uint16_t W : {8, 32})
    for (uint16_t D : {2, 8})
      add("shift_chain", [=] { return makeShiftChain(W, D); });
  for (uint16_t N : {2, 4, 8})
    add("rr_arb", [=] { return makeRoundRobinArb(N); });
  for (uint16_t N : {4, 8, 16})
    add("prio_enc", [=] { return makePriorityEncoder(N); });
  for (uint16_t W : {8, 32})
    for (uint16_t N : {2, 4}) {
      add("mux_reg", [=] { return makeMuxReg(W, N); });
      add("mux_comb", [=] { return makeMuxComb(W, N); });
      add("demux", [=] { return makeDemux(W, N); });
    }
  for (uint16_t W : {8, 16})
    for (uint16_t N : {2, 4})
      add("xbar", [=] { return makeCrossbar(W, N); });
  for (uint16_t W : {16, 32})
    for (uint16_t S : {2, 4})
      add("adder_pipe", [=] { return makeAdderPipe(W, S); });
  for (uint16_t W : {8, 16, 32})
    add("iter_mul", [=] { return makeIterMul(W); });
  for (uint16_t W : {8, 16, 32, 64})
    add("two_fifo", [=] { return makeTwoFifo(W); });
  for (uint16_t W : {8, 16})
    for (bool Dec : {false, true})
      add("gray", [=] { return makeGrayCoder(W, Dec); });
  for (uint16_t W : {8, 16, 32, 64})
    add("parity", [=] { return makeParity(W); });
  for (uint16_t A : {4, 6, 8})
    add("sync_ram", [=] { return makeSyncRam(A, 16); });
  for (uint16_t A : {4, 6})
    add("async_ram", [=] { return makeAsyncRam(A, 16); });
  for (uint16_t A : {4, 8, 12})
    add("addr_stage", [=] { return makeAddrStage(A); });
  for (uint16_t W : {8, 32})
    for (uint16_t C : {2, 4})
      add("credit_sender", [=] { return makeCreditSender(W, C); });
  for (uint16_t W : {8, 16, 32, 64})
    add("skid_buffer", [=] { return makeSkidBuffer(W); });
  for (uint16_t W : {1, 8, 32})
    add("passthrough", [=] { return makePassthrough(W); });
  for (uint16_t W : {1, 8})
    add("comb_and", [=] { return makeCombAnd(W); });
  for (uint16_t S : {2, 3, 4})
    add("onehot", [=] { return makeOneHot(S); });
  for (uint16_t W : {8, 16, 32, 64})
    add("reg_slice", [=] { return makeRegSlice(W); });
  for (uint16_t W : {8, 16, 32})
    add("funnel", [=] { return makeFunnel(W); });
  for (uint16_t W : {8, 16, 32})
    add("checksum", [=] { return makeChecksum(W); });
  for (uint16_t W : {8, 16, 32})
    add("timer", [=] { return makeTimer(W); });
  for (uint16_t W : {8, 32})
    for (uint16_t D : {2, 4})
      add("sync_fifo", [=] { return makeSyncFifo(W, D); });
  for (uint16_t W : {1, 8, 32})
    add("majority", [=] { return makeMajority(W); });
  for (uint16_t W : {8, 16, 32})
    add("popcount", [=] { return makePopcount(W); });
  add("edge_detect", [] { return makeEdgeDetect(); });
  add("pulse_sync", [] { return makePulseSync(); });

  return Entries;
}
