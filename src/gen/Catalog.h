//===- gen/Catalog.h - The module corpus ------------------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A corpus of parameterized module generators standing in for the
/// BaseJump STL sweep of Section 5.1 (144 unique modules / 533
/// instantiations in the paper). Each family mirrors a common hardware
/// library shape — FIFOs, shift registers, arbiters, crossbars, encoders,
/// pipelines — with interface styles spanning the whole sort taxonomy so
/// the Table 4 distribution is meaningfully exercised.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_GEN_CATALOG_H
#define WIRESORT_GEN_CATALOG_H

#include "ir/Module.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace wiresort::gen {

// --- Individual families --------------------------------------------------

/// Up-counter with enable and clear; all outputs registered.
ir::Module makeCounter(uint16_t Width);

/// Fibonacci LFSR; enable in, value out (from-sync).
ir::Module makeLfsr(uint16_t Width);

/// Plain shift register chain of the given depth.
ir::Module makeShiftChain(uint16_t Width, uint16_t Depth);

/// Round-robin arbiter: grants are a combinational function of the
/// request vector (reqs_i to-port, grants_o from-port) with registered
/// rotation state.
ir::Module makeRoundRobinArb(uint16_t NRequesters);

/// Fixed-priority encoder: valid/one-hot grant combinationally from
/// requests (purely to-port/from-port).
ir::Module makePriorityEncoder(uint16_t NRequesters);

/// N-to-1 mux with registered output (to-sync inputs, from-sync output).
ir::Module makeMuxReg(uint16_t Width, uint16_t NInputs);

/// N-to-1 mux, purely combinational (to-port inputs, from-port output).
ir::Module makeMuxComb(uint16_t Width, uint16_t NInputs);

/// 1-to-N demux, combinational.
ir::Module makeDemux(uint16_t Width, uint16_t NOutputs);

/// Full crossbar: NPorts data inputs, per-output select inputs,
/// combinational outputs.
ir::Module makeCrossbar(uint16_t Width, uint16_t NPorts);

/// K-stage registered adder pipeline (to-sync / from-sync everywhere).
ir::Module makeAdderPipe(uint16_t Width, uint16_t Stages);

/// Iterative shift-and-add multiplier FSM with ready/valid handshakes;
/// ready_o waits on yumi_i combinationally (a "demanding" producer).
ir::Module makeIterMul(uint16_t Width);

/// Two-element bypassing FIFO ("two-fifo"): like the forwarding FIFO but
/// register-based, with the same to-port/from-port endpoint coupling.
ir::Module makeTwoFifo(uint16_t Width);

/// Gray-code encoder (combinational) or decoder.
ir::Module makeGrayCoder(uint16_t Width, bool Decode);

/// Parity generator over a word, combinational.
ir::Module makeParity(uint16_t Width);

/// Synchronous-read RAM wrapper that publishes the Section 3.7 contract:
/// its raddr_i input requires a from-sync-direct driver.
ir::Module makeSyncRam(uint16_t AddrWidth, uint16_t DataWidth);

/// Asynchronous-read register file (combinational read path).
ir::Module makeAsyncRam(uint16_t AddrWidth, uint16_t DataWidth);

/// Address-stage module whose raddr_o output is fed straight from a
/// register — a from-sync-direct producer suitable for makeSyncRam.
ir::Module makeAddrStage(uint16_t AddrWidth);

/// Credit-based flow-control sender: credits counted in registers,
/// valid_o offered from state (helpful producer, all-sync interface).
ir::Module makeCreditSender(uint16_t Width, uint16_t MaxCredit);

/// Skid buffer: registered ready with a bypass path making data_o
/// from-port.
ir::Module makeSkidBuffer(uint16_t Width);

/// Pure combinational glue: out = f(in) one-liner modules used as the
/// "module X" of Figure 3.
ir::Module makePassthrough(uint16_t Width);

/// Combinational AND-gate glue with two inputs.
ir::Module makeCombAnd(uint16_t Width);

/// Binary-to-one-hot encoder, combinational.
ir::Module makeOneHot(uint16_t SelWidth);

/// Ready/valid register slice: both directions fully registered (the
/// classic timing-closure helper; an all-sync universal interface).
ir::Module makeRegSlice(uint16_t Width);

/// 2:1 width funnel: accepts a double-width word, emits halves.
ir::Module makeFunnel(uint16_t HalfWidth);

/// Accumulating checksum over a valid-qualified stream (all-sync).
ir::Module makeChecksum(uint16_t Width);

/// Countdown timer with load; expired_o is registered.
ir::Module makeTimer(uint16_t Width);

/// FIFO built on a synchronous-read RAM: one-cycle read latency, all
/// ports sync (contrast with makeFifo's asynchronous-read store).
ir::Module makeSyncFifo(uint16_t Width, uint16_t DepthLog2);

/// Majority voter over three words, combinational.
ir::Module makeMajority(uint16_t Width);

/// Population count, combinational.
ir::Module makePopcount(uint16_t Width);

/// Rising-edge detector: out = in & ~delayed(in) — a module whose input
/// is simultaneously to-port (combinational AND) and state-feeding.
ir::Module makeEdgeDetect();

/// Two-flop pulse synchronizer (all-sync).
ir::Module makePulseSync();

// --- Corpus enumeration ----------------------------------------------------

/// One generator instantiation in the corpus sweep.
struct CatalogEntry {
  std::string Family;
  std::string Name;
  std::function<ir::Module()> Build;
};

/// The full sweep: every family at several parameter points. Mirrors the
/// paper's "each module was instantiated one to four times to test
/// various combinations of its parameters".
std::vector<CatalogEntry> catalog();

} // namespace wiresort::gen

#endif // WIRESORT_GEN_CATALOG_H
