//===- gen/CacheDma.cpp - Cache DMA engine --------------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "gen/CacheDma.h"

#include "ir/Builder.h"

#include <cassert>
#include <string>

using namespace wiresort;
using namespace wiresort::gen;
using namespace wiresort::ir;

Module gen::makeCacheDma(const CacheDmaParams &P) {
  assert(P.Ways >= 2 && P.Ways <= 16 && "way count out of range");
  std::string Name = "cache_dma_w" + std::to_string(P.DataWidth) + "_a" +
                     std::to_string(P.AddrWidth);
  Builder B(Name);

  uint16_t WayW = 1;
  while ((1u << WayW) < P.Ways)
    ++WayW;

  // Command side (from the cache controller).
  V DmaCmd = B.input("dma_cmd_i", 2);   // 0 idle, 1 fill, 2 evict.
  V DmaAddr = B.input("dma_addr_i", P.AddrWidth);
  V DmaWay = B.input("dma_way_i", WayW);
  V DmaPktYumi = B.input("dma_pkt_yumi_i", 1);
  // Data streams.
  V DmaDataIn = B.input("dma_data_i", P.DataWidth);
  V DmaDataV = B.input("dma_data_v_i", 1);
  V DmaDataYumi = B.input("dma_data_yumi_i", 1);
  V MemDataIn = B.input("data_mem_data_i", P.DataWidth);

  // FSM: 0 idle, 1 filling, 2 evicting, 3 done.
  V State = B.regLoop("state", 2);
  V Counter = B.regLoop("burst_ctr", P.LineLog2);
  V FillActive = B.regLoop("fill_active", 1);
  V EvictActive = B.regLoop("evict_active", 1);

  V Idle = B.eqConst(State, 0);
  V DoneState = B.eqConst(State, 3);
  V CmdValid = B.notv(B.eqConst(DmaCmd, 0));
  V CmdIsEvict = B.eqConst(DmaCmd, 2);

  // --- Outputs whose Table 1 sets are {dma_cmd_i, ...} ------------------
  // The DMA packet is offered the same cycle the command arrives.
  V PktVOut = B.andv(CmdValid, Idle);
  V PktOut = B.concat({CmdIsEvict, DmaAddr});
  // Acceptance of the final packet completes the command combinationally.
  V DoneOut = B.orv(DoneState, B.andv(B.andv(CmdValid, Idle), DmaPktYumi));

  // --- Cache data-memory command side -----------------------------------
  uint16_t LineAddrHi = static_cast<uint16_t>(P.AddrWidth - 1);
  V LineBase = B.slice(DmaAddr, LineAddrHi, P.LineLog2);
  V MemAddrOut = B.concat({LineBase, Counter}); // {dma_addr_i} only.
  V MemVOut = B.andv(CmdValid, B.orv(Idle, B.notv(Idle)));
  // The mask decodes the requested way, qualified by registered state.
  V OneHot = B.shl(B.zext(B.lit(1, 1), P.Ways), DmaWay);
  V FillMaskGate = B.concat(std::vector<V>(P.Ways, FillActive));
  V MemWMaskOut = B.andv(OneHot, FillMaskGate);
  V MemWOut = FillActive;

  // --- Fully registered streaming paths (from-sync side) ----------------
  // Fill: DMA data is buffered one cycle, then written to the data memory.
  V FillBuf = B.reg(DmaDataIn, "fill_buf");
  V MemDataOut = FillBuf;
  // Evict: cache data is buffered one cycle, then offered on the DMA bus.
  V EvictBuf = B.reg(MemDataIn, "evict_buf");
  V DmaDataOut = EvictBuf;
  V DmaDataVOut = B.reg(B.andv(EvictActive, B.notv(DmaDataYumi)),
                        "dma_data_v_r");
  V DmaDataReadyOut = B.reg(B.andv(FillActive, DmaDataV),
                            "dma_data_ready_r");
  V EvictOut = EvictActive;
  V SnoopWord = B.reg(MemDataIn, "snoop_word_r");

  // --- Next-state logic (uses inputs freely; they stay to-sync because
  // --- every path ends in a register D pin) ------------------------------
  V Accept = B.andv(B.andv(Idle, CmdValid), DmaPktYumi);
  V CtrLast = B.eqConst(Counter, (1u << P.LineLog2) - 1);
  V StreamBeat = B.orv(B.andv(FillActive, DmaDataV),
                       B.andv(EvictActive, DmaDataYumi));
  V CtrNext = B.mux(Accept, B.lit(0, P.LineLog2),
                    B.mux(StreamBeat, B.inc(Counter), Counter));
  B.drive(Counter, CtrNext);

  V BurstDone = B.andv(StreamBeat, CtrLast);
  V StateAfterRun = B.mux(BurstDone, B.lit(3, 2), State);
  V StateNext =
      B.mux(Accept, B.mux(CmdIsEvict, B.lit(2, 2), B.lit(1, 2)),
            B.mux(DoneState, B.lit(0, 2), StateAfterRun));
  B.drive(State, StateNext);
  B.drive(FillActive, B.andv(B.eqConst(StateNext, 1), B.lit(1, 1)));
  B.drive(EvictActive, B.andv(B.eqConst(StateNext, 2), B.lit(1, 1)));

  // --- Port list in Table 1 order ----------------------------------------
  B.output("data_mem_data_o", MemDataOut);
  B.output("dma_data_o", DmaDataOut);
  B.output("dma_data_v_o", DmaDataVOut);
  B.output("dma_data_ready_o", DmaDataReadyOut);
  B.output("dma_pkt_v_o", PktVOut);
  B.output("data_mem_addr_o", MemAddrOut);
  B.output("data_mem_v_o", MemVOut);
  B.output("data_mem_w_mask_o", MemWMaskOut);
  B.output("dma_pkt_o", PktOut);
  B.output("done_o", DoneOut);
  B.output("data_mem_w_o", MemWOut);
  B.output("dma_evict_o", EvictOut);
  B.output("snoop_word_o", SnoopWord);
  return B.finish();
}
