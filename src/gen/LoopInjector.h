//===- gen/LoopInjector.h - Multi-module loop injection ---------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 5.4 methodology: "finding broken designs in the wild is
/// difficult because most designers don't publish broken designs. So
/// instead, we altered the ... designs slightly by introducing
/// multi-module loops". Each target module gains a combinational
/// feed-through (loop_i -> loop_o, entangled with existing output logic),
/// and the modified modules are wired in a ring, producing a
/// combinational loop that spans every module in the chain — the kind of
/// bug that requires the composition of many modules to exist at all.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_GEN_LOOPINJECTOR_H
#define WIRESORT_GEN_LOOPINJECTOR_H

#include "ir/Circuit.h"
#include "ir/Design.h"

#include <string>
#include <vector>

namespace wiresort::gen {

/// Clones \p Def adding a 1-bit combinational feed-through: a new input
/// loop_i and output loop_o with loop_o = loop_i xor (bit 0 of the first
/// existing output), so the new path runs through the module's real
/// logic cone. \returns the id of the "<name>_looped" clone.
ir::ModuleId addFeedthrough(ir::Design &D, ir::ModuleId Def);

/// Instantiates one feed-through clone of each definition in \p Defs and
/// connects their loop ports in a ring — a combinational loop spanning
/// Defs.size() modules. Other ports are left open (the checkers treat
/// them as the circuit's external interface).
ir::Circuit buildLoopedRing(ir::Design &D,
                            const std::vector<ir::ModuleId> &Defs,
                            const std::string &Name);

/// The loop-free control: same instances, ring broken between the last
/// and first instance.
ir::Circuit buildOpenChain(ir::Design &D,
                           const std::vector<ir::ModuleId> &Defs,
                           const std::string &Name);

} // namespace wiresort::gen

#endif // WIRESORT_GEN_LOOPINJECTOR_H
