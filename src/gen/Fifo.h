//===- gen/Fifo.h - FIFO queue generators -----------------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example (Section 2): ready-valid FIFO queues.
///
/// The \b normal FIFO's endpoints are combinationally independent — every
/// path between them is interrupted by state — which makes it a
/// "universal interface": all inputs are to-sync and all outputs
/// from-sync (Table 1, first row).
///
/// The \b forwarding FIFO passes data arriving into an empty queue
/// straight through within the same cycle, introducing the combinational
/// endpoint-to-endpoint paths of Figure 2:
///
///   valid_o = (count > 0) or (valid_i and ready_o)
///
/// so valid_i/data_i become to-port and valid_o/data_o from-port. The two
/// FIFOs share an identical interface; only the sorts tell them apart —
/// which is exactly the paper's motivation.
///
/// Port names follow BaseJump conventions: consumer endpoint
/// (data_i, v_i, ready_o), producer endpoint (data_o, v_o, yumi_i).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_GEN_FIFO_H
#define WIRESORT_GEN_FIFO_H

#include "ir/Module.h"

#include <cstdint>

namespace wiresort::gen {

/// FIFO shape parameters.
struct FifoParams {
  uint16_t Width = 32;
  /// Capacity is 2^DepthLog2 entries.
  uint16_t DepthLog2 = 4;
  /// Enables same-cycle forwarding through an empty queue (Figure 2).
  bool Forwarding = false;
};

/// Builds a ready-valid FIFO queue module named
/// "fifo[_fwd]_w<W>_d<2^D>".
ir::Module makeFifo(const FifoParams &P);

} // namespace wiresort::gen

#endif // WIRESORT_GEN_FIFO_H
