//===- gen/Random.h - Seeded random designs ---------------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random module and circuit generation, used by the property test
/// suites to validate the paper's soundness theorem empirically: on any
/// circuit, the modular wire-sort checker and flat gate-level cycle
/// detection must agree about the existence of combinational loops.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_GEN_RANDOM_H
#define WIRESORT_GEN_RANDOM_H

#include "ir/Circuit.h"
#include "ir/Design.h"

#include <cstdint>
#include <random>
#include <string>

namespace wiresort::gen {

/// Shape of a random module.
struct RandomModuleParams {
  uint16_t NInputs = 4;
  uint16_t NOutputs = 4;
  uint16_t NGates = 24;
  /// Probability that a gate's output is registered (raising it pushes
  /// the interface toward the sync sorts).
  double PReg = 0.3;
};

/// Generates a random 1-bit-wire module: a gate DAG over the inputs,
/// constants, and register outputs, with outputs tapped from random
/// wires. Always acyclic internally (gates only consume existing wires).
ir::Module randomModule(std::mt19937 &Rng, const RandomModuleParams &P,
                        const std::string &Name);

/// Shape of a random circuit.
struct RandomCircuitParams {
  uint16_t NModuleDefs = 4;
  uint16_t NInstances = 8;
  /// Probability that any given instance input gets connected to some
  /// instance output (unconnected ports stay open).
  double PConnect = 0.8;
  RandomModuleParams ModuleShape;
};

/// Generates defs into \p D and wires up a random circuit over them.
/// Connections are unconstrained, so combinational loops arise naturally
/// with substantial probability — which is the point.
ir::Circuit randomCircuit(std::mt19937 &Rng, ir::Design &D,
                          const RandomCircuitParams &P,
                          const std::string &Name);

} // namespace wiresort::gen

#endif // WIRESORT_GEN_RANDOM_H
