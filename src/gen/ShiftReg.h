//===- gen/ShiftReg.h - PISO / SIPO shift registers -------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel-in serial-out (PISO) and serial-in parallel-out (SIPO)
/// shift registers of Table 1 and Section 5.1.
///
/// The PISO is the paper's star witness: its consumer endpoint is
/// "helpful" under BaseJump's classification (ready_o does not depend on
/// valid_i), yet ready_o *does* combinationally depend on yumi_i from the
/// producer endpoint:
///
///   ready_o = (state == stateRcv) or
///             ((state == stateTsmt) and (shiftCtr == nSlots-1) and yumi_i)
///
/// making yumi_i to-port and ready_o from-port — a hazard BaseJump's
/// model cannot see. After the paper's authors reported it, the upstream
/// module was changed so yumi_i is to-sync; \c PisoParams::Fixed selects
/// that repaired variant.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_GEN_SHIFTREG_H
#define WIRESORT_GEN_SHIFTREG_H

#include "ir/Module.h"

#include <cstdint>

namespace wiresort::gen {

/// PISO shape parameters.
struct PisoParams {
  /// Number of output words per input word.
  uint16_t NSlots = 4;
  /// Width of each output word; input width is NSlots * SlotWidth (<=64).
  uint16_t SlotWidth = 8;
  /// Use the post-fix logic where ready_o no longer awaits yumi_i.
  bool Fixed = false;
};

/// Builds "piso[_fixed]_n<N>_w<W>" with ports valid_i, data_i, yumi_i /
/// valid_o, data_o, ready_o.
ir::Module makePiso(const PisoParams &P);

/// SIPO shape parameters.
struct SipoParams {
  /// Number of input words per output word.
  uint16_t NSlots = 4;
  /// Width of each input word; output width is NSlots * SlotWidth (<=64).
  uint16_t SlotWidth = 8;
};

/// Builds "sipo_n<N>_w<W>" with ports valid_i, data_i, yumi_cnt_i /
/// valid_o, data_o, ready_o. The incoming word is forwarded into the
/// parallel output combinationally, giving the Table 1 sorts
/// (valid_i/data_i to-port, valid_o/data_o from-port).
ir::Module makeSipo(const SipoParams &P);

} // namespace wiresort::gen

#endif // WIRESORT_GEN_SHIFTREG_H
