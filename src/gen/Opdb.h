//===- gen/Opdb.h - OpenPiton Design Benchmark stand-ins --------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the 17 OpenPiton Design Benchmark modules of
/// Table 2. We cannot ship OpenPiton's Verilog, so each stand-in
/// reproduces the *shape* that drives the paper's measurements: the same
/// role (NoC router, FPU, caches, thread FSMs, SPARC units), hierarchical
/// structure (submodule instances reused across the design, the source of
/// Table 3's unique-module speedups), interface-port scale, and a
/// primitive-gate count in the same ballpark (dominated, as in real
/// designs, by memory macros expanded to registers + decoders + mux
/// trees).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_GEN_OPDB_H
#define WIRESORT_GEN_OPDB_H

#include "ir/Design.h"

#include <string>
#include <vector>

namespace wiresort::gen {

/// One OPDB stand-in added to a design.
struct OpdbEntry {
  std::string Name;
  ir::ModuleId Top = ir::InvalidId;
};

/// Scale factor for the memory-heavy designs; 1.0 targets the paper's
/// gate counts, smaller values make CI-friendly corpora.
struct OpdbOptions {
  /// Shrinks memory address widths by this many bits (0 = paper scale).
  uint16_t ShrinkAddrBits = 0;
};

// Individual builders (each may add submodule definitions to \p D).
ir::ModuleId buildDynamicNode(ir::Design &D, const OpdbOptions &O = {});
ir::ModuleId buildFpu(ir::Design &D, const OpdbOptions &O = {});
ir::ModuleId buildIfuEsl(ir::Design &D, const OpdbOptions &O = {});
ir::ModuleId buildIfuEslCounter(ir::Design &D);
ir::ModuleId buildIfuEslFsm(ir::Design &D);
ir::ModuleId buildIfuEslHtsm(ir::Design &D);
ir::ModuleId buildIfuEslLfsr(ir::Design &D);
ir::ModuleId buildIfuEslRtsm(ir::Design &D);
ir::ModuleId buildIfuEslShiftreg(ir::Design &D);
ir::ModuleId buildIfuEslStsm(ir::Design &D);
ir::ModuleId buildL2(ir::Design &D, const OpdbOptions &O = {});
ir::ModuleId buildL15(ir::Design &D, const OpdbOptions &O = {});
ir::ModuleId buildPico(ir::Design &D, const OpdbOptions &O = {});
ir::ModuleId buildSparcFfu(ir::Design &D, const OpdbOptions &O = {});
ir::ModuleId buildSparcMul(ir::Design &D, const OpdbOptions &O = {});
ir::ModuleId buildSparcExu(ir::Design &D, const OpdbOptions &O = {});
ir::ModuleId buildSparcTlu(ir::Design &D, const OpdbOptions &O = {});

/// Builds all 17 stand-ins (in Table 2 order) into \p D.
std::vector<OpdbEntry> buildOpdb(ir::Design &D, const OpdbOptions &O = {});

} // namespace wiresort::gen

#endif // WIRESORT_GEN_OPDB_H
