//===- gen/MegaScale.cpp - 100k..1M-instance composed designs -------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "gen/MegaScale.h"

#include "gen/Catalog.h"
#include "gen/Fifo.h"
#include "gen/LoopInjector.h"
#include "ir/StructuralHash.h"

#include <algorithm>
#include <cassert>
#include <random>
#include <vector>

using namespace wiresort;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

/// The definitions one mega design draws from: a topology-specific
/// payload pool plus the two boundary shapes every level is stitched
/// with. Module names inside one pool are distinct by construction (the
/// boundary FIFO uses a depth no payload FIFO uses).
struct DefPool {
  std::vector<ModuleId> Payload;
  ModuleId BoundaryFifo = InvalidId;
  ModuleId BoundarySlice = InvalidId;
};

DefPool buildPool(Design &D, const MegaScaleParams &P) {
  DefPool Pool;
  auto add = [&](Module M) {
    Pool.Payload.push_back(D.addModule(std::move(M)));
  };
  switch (P.Topo) {
  case MegaScaleParams::Topology::FifoFabric:
    add(makeFifo({P.Width, 2, false}));
    add(makeFifo({P.Width, 4, false}));
    add(makeFifo({P.Width, 2, true}));
    add(makeSyncFifo(P.Width, 4));
    add(makeTwoFifo(P.Width));
    add(makeSkidBuffer(P.Width));
    add(makeCreditSender(P.Width, 7));
    break;
  case MegaScaleParams::Topology::NocMesh:
    add(makeRoundRobinArb(4));
    add(makePriorityEncoder(8));
    add(makeCrossbar(P.Width, 4));
    add(makeMuxComb(P.Width, 4));
    add(makeMuxReg(P.Width, 4));
    add(makeDemux(P.Width, 4));
    add(makeOneHot(3));
    add(makeSkidBuffer(P.Width));
    break;
  case MegaScaleParams::Topology::TileGrid:
    add(makeCounter(P.Width));
    add(makeLfsr(16));
    add(makeShiftChain(P.Width, 4));
    add(makeAdderPipe(P.Width, 3));
    add(makeChecksum(P.Width));
    add(makeGrayCoder(P.Width, false));
    add(makeParity(P.Width));
    add(makePopcount(P.Width));
    add(makeTimer(P.Width));
    add(makeEdgeDetect());
    break;
  }
  Pool.BoundaryFifo = D.addModule(makeFifo({P.Width, 3, false}));
  Pool.BoundarySlice = D.addModule(makeRegSlice(P.Width));
  return Pool;
}

/// Connects the producer endpoint of \p From (ports FromPfx+data_o/v_o/
/// yumi_i) to the consumer endpoint of \p To (ToPfx+data_i/v_i/ready_o).
/// The prefixes name through sealed-module promotion: a tile's FIFO
/// consumer is "rx.data_i" one level up, "t0.rx.data_i" two levels up.
void link(Circuit &C, InstId From, const std::string &FromPfx, InstId To,
          const std::string &ToPfx) {
  // Reused buffers: the top-level stitch of a 1M-instance grid runs this
  // thousands of times, and operator+ temporaries were visible in the
  // construction profile next to Circuit's (now hash-indexed) lookups.
  thread_local std::string A, B;
  auto port = [](std::string &Buf, const std::string &Pfx,
                 const char *Suffix) -> const std::string & {
    Buf.assign(Pfx);
    Buf += Suffix;
    return Buf;
  };
  C.connect(From, port(A, FromPfx, "data_o"), To, port(B, ToPfx, "data_i"));
  C.connect(From, port(A, FromPfx, "v_o"), To, port(B, ToPfx, "v_i"));
  C.connect(To, port(A, ToPfx, "ready_o"), From, port(B, FromPfx, "yumi_i"));
}

/// tile = rx FIFO -> tx reg-slice through-path + K open payload
/// instances (their ports bubble up through seal() as the open
/// supermodule idiom; only the rx/tx endpoints are ever wired above).
ModuleId buildTile(Design &D, const DefPool &Pool, const MegaScaleParams &P,
                   std::mt19937_64 &Rng, unsigned Variant) {
  Circuit C(D, P.TopName + "_tile_v" + std::to_string(Variant));
  InstId Rx = C.addInstance(Pool.BoundaryFifo, "rx");
  InstId Tx = C.addInstance(Pool.BoundarySlice, "tx");
  link(C, Rx, "", Tx, "");
  for (unsigned I = 0; I != P.PayloadPerTile; ++I)
    C.addInstance(Pool.Payload[Rng() % Pool.Payload.size()],
                  "u" + std::to_string(I));
  return C.seal();
}

/// cluster = boundary FIFO(s) + chain of tiles. NocMesh clusters carry a
/// second, independent boundary pair so the torus can wire two planes.
ModuleId buildCluster(Design &D, const DefPool &Pool,
                      const MegaScaleParams &P, std::mt19937_64 &Rng,
                      const std::vector<ModuleId> &Tiles, unsigned Variant) {
  bool Mesh = P.Topo == MegaScaleParams::Topology::NocMesh;
  Circuit C(D, P.TopName + "_cluster_v" + std::to_string(Variant));
  InstId Crx = C.addInstance(Pool.BoundaryFifo, Mesh ? "crx_w" : "crx");
  InstId Ctx = C.addInstance(Pool.BoundaryFifo, Mesh ? "ctx_e" : "ctx");

  std::vector<InstId> Ts;
  Ts.reserve(P.TilesPerCluster);
  for (unsigned I = 0; I != P.TilesPerCluster; ++I)
    Ts.push_back(C.addInstance(Tiles[Rng() % Tiles.size()],
                               "t" + std::to_string(I)));
  if (Ts.empty()) {
    link(C, Crx, "", Ctx, "");
  } else {
    link(C, Crx, "", Ts.front(), "rx.");
    for (size_t I = 0; I + 1 < Ts.size(); ++I)
      link(C, Ts[I], "tx.", Ts[I + 1], "rx.");
    link(C, Ts.back(), "tx.", Ctx, "");
  }
  if (Mesh) {
    InstId CrxN = C.addInstance(Pool.BoundaryFifo, "crx_n");
    InstId CtxS = C.addInstance(Pool.BoundaryFifo, "ctx_s");
    link(C, CrxN, "", CtxS, "");
  }
  return C.seal();
}

} // namespace

ir::Circuit gen::buildMegaScaleCircuit(Design &D, const MegaScaleParams &P) {
  // Split the seed into independent streams so tile composition does not
  // shift when, say, only the grid size changes.
  std::mt19937_64 TileRng(P.Seed ^ 0x9e3779b97f4a7c15ull);
  std::mt19937_64 ClusterRng(P.Seed ^ 0xbf58476d1ce4e5b9ull);
  std::mt19937_64 TopRng(P.Seed ^ 0x94d049bb133111ebull);

  DefPool Pool = buildPool(D, P);

  std::vector<ModuleId> Tiles;
  for (unsigned V = 0; V != std::max(1u, P.TileVariants); ++V)
    Tiles.push_back(buildTile(D, Pool, P, TileRng, V));
  std::vector<ModuleId> Clusters;
  for (unsigned V = 0; V != std::max(1u, P.ClusterVariants); ++V)
    Clusters.push_back(buildCluster(D, Pool, P, ClusterRng, Tiles, V));

  Circuit Top(D, P.TopName);
  uint32_t GX = std::max(1u, P.GridX), GY = std::max(1u, P.GridY);
  std::vector<InstId> Grid(static_cast<size_t>(GX) * GY);
  for (uint32_t Y = 0; Y != GY; ++Y)
    for (uint32_t X = 0; X != GX; ++X)
      Grid[static_cast<size_t>(Y) * GX + X] = Top.addInstance(
          Clusters[TopRng() % Clusters.size()],
          "c" + std::to_string(X) + "_" + std::to_string(Y));

  auto at = [&](uint32_t X, uint32_t Y) {
    return Grid[static_cast<size_t>(Y) * GX + X];
  };

  switch (P.Topo) {
  case MegaScaleParams::Topology::TileGrid: {
    // Snake the grid row-major and close the ring: every cluster's crx
    // has exactly one driver, and the cycle is FIFO-interrupted.
    std::vector<InstId> Order;
    Order.reserve(Grid.size());
    for (uint32_t Y = 0; Y != GY; ++Y) {
      if (Y % 2 == 0)
        for (uint32_t X = 0; X != GX; ++X)
          Order.push_back(at(X, Y));
      else
        for (uint32_t X = GX; X != 0; --X)
          Order.push_back(at(X - 1, Y));
    }
    for (size_t I = 0; I != Order.size(); ++I)
      link(Top, Order[I], "ctx.", Order[(I + 1) % Order.size()], "crx.");
    break;
  }
  case MegaScaleParams::Topology::NocMesh:
    // 2-D torus: east links along rows, south links along columns.
    for (uint32_t Y = 0; Y != GY; ++Y)
      for (uint32_t X = 0; X != GX; ++X) {
        if (GX > 1 || GY > 1) {
          link(Top, at(X, Y), "ctx_e.", at((X + 1) % GX, Y), "crx_w.");
          link(Top, at(X, Y), "ctx_s.", at(X, (Y + 1) % GY), "crx_n.");
        }
      }
    break;
  case MegaScaleParams::Topology::FifoFabric:
    // Open chain: the fabric's ends stay external ports.
    for (size_t I = 0; I + 1 < Grid.size(); ++I)
      link(Top, Grid[I], "ctx.", Grid[I + 1], "crx.");
    break;
  }

  if (P.InjectLoop && !Pool.Payload.empty()) {
    // §5.4 mutation: a ring of feed-through clones whose loop_o -> loop_i
    // cycle is combinational end to end. Clones are of *distinct* payload
    // defs so module names stay unique.
    size_t Len = std::max<size_t>(
        1, std::min<size_t>(P.LoopRingLength, Pool.Payload.size()));
    std::vector<InstId> Ring;
    for (size_t I = 0; I != Len; ++I) {
      ModuleId Clone = addFeedthrough(D, Pool.Payload[I]);
      Ring.push_back(Top.addInstance(Clone, "loopmut" + std::to_string(I)));
    }
    for (size_t I = 0; I != Ring.size(); ++I)
      Top.connect(Ring[I], "loop_o", Ring[(I + 1) % Ring.size()], "loop_i");
  }
  return Top;
}

MegaScaleDesign gen::buildMegaScale(Design &D, const MegaScaleParams &P) {
  Circuit Top = buildMegaScaleCircuit(D, P);
  MegaScaleDesign R;
  R.Top = Top.seal();
  R.FlatInstances = flatInstanceCount(D, R.Top);
  uint64_t Reachable = 0;
  {
    std::vector<bool> Seen(D.numModules(), false);
    std::vector<ModuleId> Work{R.Top};
    Seen[R.Top] = true;
    while (!Work.empty()) {
      ModuleId Id = Work.back();
      Work.pop_back();
      ++Reachable;
      for (const SubInstance &Inst : D.module(Id).Instances)
        if (!Seen[Inst.Def]) {
          Seen[Inst.Def] = true;
          Work.push_back(Inst.Def);
        }
    }
  }
  R.UniqueModules = Reachable;
  return R;
}

uint64_t gen::flatInstanceCount(const Design &D, ModuleId Top) {
  std::vector<int64_t> Memo(D.numModules(), -1);
  // The hierarchy is a DAG a few levels deep; plain recursion is fine.
  struct Rec {
    const Design &D;
    std::vector<int64_t> &Memo;
    uint64_t operator()(ModuleId Id) const {
      if (Memo[Id] >= 0)
        return static_cast<uint64_t>(Memo[Id]);
      uint64_t N = 0;
      for (const SubInstance &Inst : D.module(Id).Instances)
        N += 1 + (*this)(Inst.Def);
      Memo[Id] = static_cast<int64_t>(N);
      return N;
    }
  };
  return Rec{D, Memo}(Top);
}

std::string gen::fingerprint(const Design &D, ModuleId Top) {
  std::vector<bool> Seen(D.numModules(), false);
  std::vector<ModuleId> Work{Top}, Reach;
  Seen[Top] = true;
  while (!Work.empty()) {
    ModuleId Id = Work.back();
    Work.pop_back();
    Reach.push_back(Id);
    for (const SubInstance &Inst : D.module(Id).Instances)
      if (!Seen[Inst.Def]) {
        Seen[Inst.Def] = true;
        Work.push_back(Inst.Def);
      }
  }
  std::sort(Reach.begin(), Reach.end());

  uint64_t H = 0x57495245534f5254ull; // "WIRESORT"
  for (ModuleId Id : Reach) {
    const Module &M = D.module(Id);
    uint64_t NameH = 1469598103934665603ull; // FNV-1a over the name.
    for (unsigned char C : M.Name)
      NameH = (NameH ^ C) * 1099511628211ull;
    H = hashCombine(H, NameH);
    H = hashCombine(H, structuralHash(M));
  }
  static const char *Hex = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[static_cast<size_t>(I)] = Hex[H & 0xf];
    H >>= 4;
  }
  return Out;
}

std::optional<MegaScaleParams> gen::megaScalePreset(const std::string &Name) {
  MegaScaleParams P;
  if (Name == "ci") {
    return P; // the defaults: ~60 flat instances, trials-friendly.
  }
  if (Name == "ci-loop") {
    P.InjectLoop = true;
    P.LoopRingLength = 3;
    return P;
  }
  if (Name == "ci-noc") {
    P.Topo = MegaScaleParams::Topology::NocMesh;
    return P;
  }
  if (Name == "ci-fabric") {
    P.Topo = MegaScaleParams::Topology::FifoFabric;
    P.GridX = 4;
    P.GridY = 1;
    return P;
  }
  if (Name == "10k") {
    P.GridX = P.GridY = 9;
    P.TilesPerCluster = 12;
    P.PayloadPerTile = 8;
    P.TileVariants = 3;
    P.ClusterVariants = 2;
    P.Width = 16;
    return P; // 81 * (12*11 + 2 + 1) = 10,935 flat instances.
  }
  if (Name == "100k") {
    P.GridX = P.GridY = 24;
    P.TilesPerCluster = 16;
    P.PayloadPerTile = 8;
    P.TileVariants = 4;
    P.ClusterVariants = 2;
    P.Width = 16;
    return P; // 576 * (16*11 + 2 + 1) = 103,104 flat instances.
  }
  if (Name == "100k-noc") {
    P.Topo = MegaScaleParams::Topology::NocMesh;
    P.GridX = P.GridY = 24;
    P.TilesPerCluster = 16;
    P.PayloadPerTile = 8;
    P.TileVariants = 4;
    P.ClusterVariants = 2;
    P.Width = 16;
    return P; // 576 * (16*11 + 4 + 1) = 104,256 flat instances.
  }
  if (Name == "100k-fabric") {
    P.Topo = MegaScaleParams::Topology::FifoFabric;
    P.GridX = 361;
    P.GridY = 1;
    P.TilesPerCluster = 32;
    P.PayloadPerTile = 6;
    P.TileVariants = 4;
    P.ClusterVariants = 2;
    P.Width = 16;
    return P; // 361 * (32*9 + 2 + 1) = 105,051 flat instances.
  }
  if (Name == "1m") {
    P.GridX = P.GridY = 75;
    P.TilesPerCluster = 16;
    P.PayloadPerTile = 8;
    P.TileVariants = 4;
    P.ClusterVariants = 2;
    P.Width = 16;
    return P; // 5625 * (16*11 + 2 + 1) = 1,006,875 flat instances.
  }
  return std::nullopt;
}
