//===- gen/Opdb.cpp - OpenPiton Design Benchmark stand-ins ----------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "gen/Opdb.h"

#include "ir/Builder.h"

#include <cassert>

using namespace wiresort;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

/// Clamped address width: the paper-scale geometry minus the shrink knob.
uint16_t effAddr(uint16_t Base, const OpdbOptions &O) {
  return Base > O.ShrinkAddrBits + 2 ? Base - O.ShrinkAddrBits : 2;
}

/// Adds \p N one-bit configuration inputs that only feed registers
/// (to-sync), returning the registered values OR-reduced for reuse.
V addConfigPorts(Builder &B, uint16_t N, const std::string &Prefix) {
  V Acc = B.lit(0, 1);
  for (uint16_t I = 0; I != N; ++I) {
    V Cfg = B.input(Prefix + std::to_string(I) + "_i", 1);
    Acc = B.orv(Acc, B.reg(Cfg, Prefix + std::to_string(I) + "_r"));
  }
  return Acc;
}

/// Adds \p N one-bit status outputs fed from a register chain seeded by
/// \p Seed (all from-sync).
void addStatusPorts(Builder &B, uint16_t N, V Seed,
                    const std::string &Prefix) {
  V Cur = Seed;
  for (uint16_t I = 0; I != N; ++I) {
    Cur = B.reg(Cur, Prefix + std::to_string(I) + "_r");
    B.output(Prefix + std::to_string(I) + "_o", Cur);
  }
}

/// A reusable synchronous SRAM bank definition ("sram_a<A>_w<W>"); banks
/// dominate the gate counts of the cache-like designs, exactly as array
/// macros do in the real OPDB netlists. Returns the id, creating the
/// definition on first use.
ModuleId sramBank(Design &D, uint16_t AddrW, uint16_t DataW) {
  std::string Name =
      "sram_a" + std::to_string(AddrW) + "_w" + std::to_string(DataW);
  ModuleId Existing = D.findModule(Name);
  if (Existing != InvalidId)
    return Existing;
  Builder B(Name);
  V RAddr = B.input("raddr_i", AddrW);
  V WAddr = B.input("waddr_i", AddrW);
  V WData = B.input("wdata_i", DataW);
  V WEn = B.input("wen_i", 1);
  V RData = B.memory("mem", /*SyncRead=*/true, RAddr, WAddr, WData, WEn);
  B.output("rdata_o", RData);
  return D.addModule(B.finish());
}

/// A width-64 shift-and-add multiplier producing the low 64 product bits;
/// shared by fpu, sparc_mul, and sparc_ffu.
ModuleId mulArray(Design &D, uint16_t Width) {
  std::string Name = "mul_array_w" + std::to_string(Width);
  ModuleId Existing = D.findModule(Name);
  if (Existing != InvalidId)
    return Existing;
  Builder B(Name);
  V A = B.input("a_i", Width);
  V Bv = B.input("b_i", Width);
  V Acc = B.lit(0, Width);
  for (uint16_t I = 0; I != Width; ++I) {
    V Partial = B.mux(B.bit(Bv, I), B.shlConst(A, I), B.lit(0, Width));
    Acc = B.add(Acc, Partial);
  }
  B.output("p_o", Acc);
  return D.addModule(B.finish());
}

} // namespace

ModuleId gen::buildDynamicNode(Design &D, const OpdbOptions &O) {
  // A 5-port cut-through NoC router: per-port buffer instances, a
  // combinational route computation from the incoming header, and a
  // crossbar. The cut-through path is what gives it to-port inputs.
  const uint16_t Flit = 64;
  const uint16_t NPorts = 5;
  uint16_t BufA = effAddr(5, O);

  ModuleId Buf = sramBank(D, BufA, Flit);

  Builder B("dynamic_node");
  std::vector<V> DataIn, ValidIn, YumiIn;
  for (uint16_t P = 0; P != NPorts; ++P) {
    DataIn.push_back(B.input("data" + std::to_string(P) + "_i", Flit));
    ValidIn.push_back(B.input("v" + std::to_string(P) + "_i", 1));
    YumiIn.push_back(B.input("yumi" + std::to_string(P) + "_i", 1));
  }

  // Buffer occupancy pointers per port.
  std::vector<V> RPtr, WPtr;
  std::vector<V> BufData;
  for (uint16_t P = 0; P != NPorts; ++P) {
    V RP = B.regLoop("rptr" + std::to_string(P), BufA);
    V WP = B.regLoop("wptr" + std::to_string(P), BufA);
    auto Outs = B.instantiate(D, Buf, "buf" + std::to_string(P),
                              {{"raddr_i", RP},
                               {"waddr_i", WP},
                               {"wdata_i", DataIn[P]},
                               {"wen_i", ValidIn[P]}});
    BufData.push_back(Outs.at("rdata_o"));
    B.drive(WP, B.mux(ValidIn[P], B.inc(WP), WP));
    B.drive(RP, B.mux(YumiIn[P], B.inc(RP), RP));
    RPtr.push_back(RP);
    WPtr.push_back(WP);
  }

  // Route: destination port from the flit header (cut-through, so the
  // output valid depends combinationally on the input valid).
  for (uint16_t P = 0; P != NPorts; ++P) {
    V Dest = B.slice(DataIn[P], 2, 0);
    V CutThrough = B.andv(ValidIn[P], B.eqConst(Dest, P));
    V Stored = BufData[P];
    V DataOut = B.mux(CutThrough, DataIn[P], Stored);
    V Occupied = B.notv(B.eq(RPtr[P], WPtr[P]));
    V ValidOut = B.orv(Occupied, CutThrough);
    B.output("data" + std::to_string(P) + "_o", DataOut);
    B.output("v" + std::to_string(P) + "_o", ValidOut);
  }
  addStatusPorts(B, 5, B.orr(DataIn[0]), "router_status");
  return D.addModule(B.finish());
}

ModuleId gen::buildFpu(Design &D, const OpdbOptions &O) {
  // Iterative FPU: the 64x64 mantissa product is decomposed into four
  // 32x32 lane multipliers sharing one definition (real FPUs share
  // datapath macros the same way), plus coefficient/rounding ROMs.
  ModuleId Mul = mulArray(D, 32);
  uint16_t RomAW = effAddr(9, O);
  ModuleId Rom = sramBank(D, RomAW, 64);

  Builder B("fpu");
  V A = B.input("a_i", 64);
  V Bv = B.input("b_i", 64);
  V OpIn = B.input("op_i", 2);
  V VIn = B.input("v_i", 1);
  V Yumi = B.input("yumi_i", 1);

  V Busy = B.regLoop("busy", 1);
  V ARk = B.reg(A, "a_r");
  V BRk = B.reg(Bv, "b_r");
  V OpR = B.reg(OpIn, "op_r");

  // Low 64 bits of the full product: ll + ((lh + hl) << 32).
  V ALo = B.slice(ARk, 31, 0), AHi = B.slice(ARk, 63, 32);
  V BLo = B.slice(BRk, 31, 0), BHi = B.slice(BRk, 63, 32);
  auto LL = B.instantiate(D, Mul, "lane_ll", {{"a_i", ALo}, {"b_i", BLo}});
  auto LH = B.instantiate(D, Mul, "lane_lh", {{"a_i", ALo}, {"b_i", BHi}});
  auto HL = B.instantiate(D, Mul, "lane_hl", {{"a_i", AHi}, {"b_i", BLo}});
  auto HH = B.instantiate(D, Mul, "lane_hh", {{"a_i", AHi}, {"b_i", BHi}});
  V Cross = B.add(LH.at("p_o"), HL.at("p_o"));
  V Product = B.add(B.zext(LL.at("p_o"), 64),
                    B.concat({Cross, B.lit(0, 32)}));
  // The hh lane feeds the sticky/overflow logic.
  V Sticky = B.reg(B.orr(HH.at("p_o")), "sticky_r");

  V RomAddr = B.reg(B.slice(ARk, RomAW - 1, 0), "rom_addr_r");
  V Zero64 = B.lit(0, 64);
  auto Coeff = B.instantiate(D, Rom, "coeff_rom",
                             {{"raddr_i", RomAddr},
                              {"waddr_i", B.reg(B.slice(BRk, RomAW - 1, 0),
                                                "rom_wa_r")},
                              {"wdata_i", Zero64},
                              {"wen_i", B.lit(0, 1)}});
  auto Round = B.instantiate(D, Rom, "round_rom",
                             {{"raddr_i", RomAddr},
                              {"waddr_i", RomAddr},
                              {"wdata_i", Zero64},
                              {"wen_i", B.lit(0, 1)}});

  V Sum = B.add(ARk, BRk);
  V IsMul = B.eqConst(OpR, 1);
  V IsDiv = B.eqConst(OpR, 2);
  V Datapath = B.mux(IsMul, Product,
                     B.mux(IsDiv, B.xorv(Coeff.at("rdata_o"),
                                         Round.at("rdata_o")),
                           Sum));
  V Result = B.reg(Datapath, "result_r");

  B.drive(Busy, B.mux(VIn, B.lit(1, 1),
                      B.mux(Yumi, B.lit(0, 1), Busy)));
  B.output("result_o", Result);
  B.output("v_o", Busy);
  B.output("ready_o", B.notv(Busy));
  B.output("exc_o", B.reg(B.orv(B.orr(Result), Sticky), "exc_r"));
  addStatusPorts(B, 4, B.xorr(Result), "fpu_flag");
  return D.addModule(B.finish());
}

ModuleId gen::buildIfuEslCounter(Design &D) {
  Builder B("ifu_esl_counter");
  V En = B.input("en_i", 1);
  V Clr = B.input("clr_i", 1);
  V Count = B.regLoop("count", 32);
  B.drive(Count, B.mux(Clr, B.lit(0, 32),
                       B.mux(En, B.inc(Count), Count)));
  B.output("count_o", Count);
  B.output("wrapped_o", B.reg(B.andr(Count), "wrap_r"));
  return D.addModule(B.finish());
}

ModuleId gen::buildIfuEslLfsr(Design &D) {
  Builder B("ifu_esl_lfsr");
  V En = B.input("en_i", 1);
  V SeedV = B.input("seed_i", 16);
  V Ld = B.input("seed_v_i", 1);
  V State = B.regLoop("lfsr", 16, 0xACE1);
  V Tap = B.xorv(B.xorv(B.bit(State, 15), B.bit(State, 13)),
                 B.xorv(B.bit(State, 12), B.bit(State, 10)));
  V Next = B.concat({B.slice(State, 14, 0), Tap});
  B.drive(State, B.mux(Ld, SeedV, B.mux(En, Next, State)));
  B.output("value_o", State);
  return D.addModule(B.finish());
}

ModuleId gen::buildIfuEslShiftreg(Design &D) {
  Builder B("ifu_esl_shiftreg");
  V Data = B.input("d_i", 1);
  V En = B.input("en_i", 1);
  V Cur = Data;
  for (uint16_t S = 0; S != 16; ++S) {
    V Stage = B.regLoop("bit" + std::to_string(S), 1);
    B.drive(Stage, B.mux(En, Cur, Stage));
    Cur = Stage;
  }
  B.output("d_o", Cur);
  return D.addModule(B.finish());
}

namespace {

/// Common scaffold for the ifu_esl_* thread-selection FSMs: a state
/// register, per-thread ready inputs, one-hot thread-select outputs, and
/// a configurable amount of decision logic.
ModuleId buildThreadFsm(Design &D, const std::string &Name,
                        uint16_t NThreads, uint16_t StateBits,
                        uint16_t ExtraCfg, uint16_t HistWidth = 0) {
  Builder B(Name);
  std::vector<V> Ready;
  for (uint16_t T = 0; T != NThreads; ++T)
    Ready.push_back(B.input("thr" + std::to_string(T) + "_ready_i", 1));
  V Stall = B.input("stall_i", 1);
  V Replay = B.input("replay_i", 1);
  V Cfg = addConfigPorts(B, ExtraCfg, Name + "_cfg");

  V State = B.regLoop("state", StateBits);
  V Rotate = B.regLoop("rotate", 2);

  // Pick the first ready thread at or after the rotation pointer.
  std::vector<V> Sel(NThreads);
  V Any = B.lit(0, 1);
  for (uint16_t T = 0; T != NThreads; ++T) {
    V Before = B.lit(0, 1);
    for (uint16_t U = 0; U != NThreads; ++U) {
      if (U == T)
        continue;
      V UOff = B.sub(B.lit(U, 2), Rotate);
      V TOff = B.sub(B.lit(T, 2), Rotate);
      Before = B.orv(Before, B.andv(B.lt(UOff, TOff), Ready[U]));
    }
    Sel[T] = B.andv(Ready[T], B.notv(Before));
    Any = B.orv(Any, Ready[T]);
  }

  V Go = B.andv(Any, B.notv(Stall));
  B.drive(Rotate, B.mux(Go, B.inc(Rotate), Rotate));
  // Optional per-thread history datapath (the larger FSMs keep
  // per-thread fetch-history counters).
  V HistParity = B.lit(0, 1);
  if (HistWidth) {
    for (uint16_t T = 0; T != NThreads; ++T) {
      V Hist = B.regLoop("hist" + std::to_string(T), HistWidth);
      V Bump = B.andv(Sel[T], Go);
      B.drive(Hist, B.mux(Bump, B.add(Hist, B.zext(Ready[T], HistWidth)),
                          Hist));
      HistParity = B.xorv(HistParity, B.xorr(Hist));
      B.output("thr" + std::to_string(T) + "_hist_o", Hist);
    }
  }
  V StateNext =
      B.mux(Replay, B.lit(0, StateBits),
            B.mux(Go, B.inc(State), State));
  B.drive(State, StateNext);

  for (uint16_t T = 0; T != NThreads; ++T) {
    // Registered grant (from-sync) plus a combinational preview
    // (from-port) — both styles appear in the real thread FSMs.
    B.output("thr" + std::to_string(T) + "_sel_o",
             B.reg(Sel[T], "sel" + std::to_string(T) + "_r"));
    B.output("thr" + std::to_string(T) + "_preview_o",
             B.andv(Sel[T], B.notv(Stall)));
  }
  B.output("active_o", B.reg(B.orv(B.orv(Go, Cfg), HistParity),
                             "active_r"));
  B.output("state_o", State);
  return D.addModule(B.finish());
}

} // namespace

ModuleId gen::buildIfuEslFsm(Design &D) {
  return buildThreadFsm(D, "ifu_esl_fsm", 4, 6, 8, 16);
}
ModuleId gen::buildIfuEslHtsm(Design &D) {
  return buildThreadFsm(D, "ifu_esl_htsm", 4, 3, 6, 2);
}
ModuleId gen::buildIfuEslRtsm(Design &D) {
  return buildThreadFsm(D, "ifu_esl_rtsm", 4, 2, 2);
}
ModuleId gen::buildIfuEslStsm(Design &D) {
  return buildThreadFsm(D, "ifu_esl_stsm", 4, 2, 4, 1);
}

ModuleId gen::buildIfuEsl(Design &D, const OpdbOptions &O) {
  // The enhanced-security thread selector: instantiates the counter,
  // LFSR, shift register, and all four selection FSMs, plus a history
  // table.
  ModuleId Counter = buildIfuEslCounter(D);
  ModuleId Lfsr = buildIfuEslLfsr(D);
  ModuleId ShiftReg = buildIfuEslShiftreg(D);
  ModuleId Fsm = buildIfuEslFsm(D);
  ModuleId Htsm = buildIfuEslHtsm(D);
  ModuleId Rtsm = buildIfuEslRtsm(D);
  ModuleId Stsm = buildIfuEslStsm(D);
  ModuleId History = sramBank(D, effAddr(7, O), 32);

  Builder B("ifu_esl");
  std::vector<V> Ready;
  for (uint16_t T = 0; T != 4; ++T)
    Ready.push_back(B.input("thr" + std::to_string(T) + "_ready_i", 1));
  V Stall = B.input("stall_i", 1);
  V Replay = B.input("replay_i", 1);
  V Mode = B.input("mode_i", 2);
  V Cfg = addConfigPorts(B, 8, "esl_cfg");

  auto Cnt = B.instantiate(D, Counter, "cnt",
                           {{"en_i", B.notv(Stall)}, {"clr_i", Replay}});
  auto Rnd = B.instantiate(D, Lfsr, "rng",
                           {{"en_i", B.lit(1, 1)},
                            {"seed_i", B.slice(Cnt.at("count_o"), 15, 0)},
                            {"seed_v_i", Replay}});
  auto Shf = B.instantiate(D, ShiftReg, "shadow",
                           {{"d_i", B.bit(Rnd.at("value_o"), 0)},
                            {"en_i", B.lit(1, 1)}});

  std::map<std::string, V> FsmIns;
  for (uint16_t T = 0; T != 4; ++T)
    FsmIns["thr" + std::to_string(T) + "_ready_i"] = Ready[T];
  FsmIns["stall_i"] = Stall;
  FsmIns["replay_i"] = Replay;
  auto bindFsm = [&](ModuleId Id, const std::string &Name,
                     uint16_t NCfg) {
    std::map<std::string, V> Ins = FsmIns;
    for (uint16_t I = 0; I != NCfg; ++I)
      Ins[D.module(Id).wire(D.module(Id).Inputs[6 + I]).Name] =
          B.bit(Rnd.at("value_o"), I);
    return B.instantiate(D, Id, Name, Ins);
  };
  auto F0 = bindFsm(Fsm, "fsm", 8);
  auto F1 = bindFsm(Htsm, "htsm", 6);
  auto F2 = bindFsm(Rtsm, "rtsm", 2);
  auto F3 = bindFsm(Stsm, "stsm", 4);

  V HAddr = B.reg(B.slice(Cnt.at("count_o"), effAddr(7, O) - 1, 0),
                  "haddr_r");
  auto Hist = B.instantiate(D, History, "history",
                            {{"raddr_i", HAddr},
                             {"waddr_i", HAddr},
                             {"wdata_i", Cnt.at("count_o")},
                             {"wen_i", B.notv(Stall)}});

  for (uint16_t T = 0; T != 4; ++T) {
    std::string Port = "thr" + std::to_string(T) + "_sel_o";
    V Pick = B.muxN(Mode, {F0.at(Port), F1.at(Port), F2.at(Port),
                           F3.at(Port)});
    B.output(Port, Pick);
  }
  B.output("entropy_o", B.reg(B.xorv(B.bit(Shf.at("d_o"), 0),
                                     B.xorr(Hist.at("rdata_o"))),
                              "entropy_r"));
  B.output("active_o", B.reg(B.orv(F0.at("active_o"), Cfg), "act_r"));
  addStatusPorts(B, 6, B.xorr(Rnd.at("value_o")), "esl_status");
  return D.addModule(B.finish());
}

ModuleId gen::buildL2(Design &D, const OpdbOptions &O) {
  // Four shared-definition data banks plus a tag bank; the standard
  // cache-pipeline FSM. Bank sharing is what gives the wire-sort path
  // its unique-module reuse in Table 3.
  ModuleId DataBank = sramBank(D, effAddr(11, O), 64);
  ModuleId TagBank = sramBank(D, effAddr(11, O), 24);

  Builder B("l2");
  V ReqAddr = B.input("req_addr_i", 40);
  V ReqData = B.input("req_data_i", 64);
  V ReqV = B.input("req_v_i", 1);
  V ReqRw = B.input("req_rw_i", 1);
  V RespYumi = B.input("resp_yumi_i", 1);
  V Cfg = addConfigPorts(B, 3, "l2_cfg");

  uint16_t AW = effAddr(11, O);
  V Index = B.reg(B.slice(ReqAddr, AW - 1, 0), "index_r");
  V TagIn = B.reg(B.slice(ReqAddr, 39, 16), "tag_r");
  V DataR = B.reg(ReqData, "wdata_r");
  V VR = B.reg(ReqV, "v_r");
  V RwR = B.reg(ReqRw, "rw_r");

  auto Tag = B.instantiate(D, TagBank, "tags",
                           {{"raddr_i", Index},
                            {"waddr_i", Index},
                            {"wdata_i", TagIn},
                            {"wen_i", B.andv(VR, RwR)}});
  V Hit = B.reg(B.eq(Tag.at("rdata_o"), TagIn), "hit_r");

  // Four ways share one bank definition.
  V Way = B.slice(Index, 1, 0);
  std::vector<V> WayData;
  for (uint16_t W = 0; W != 4; ++W) {
    V Wen = B.andv(B.andv(VR, RwR), B.eqConst(Way, W));
    auto Bank = B.instantiate(D, DataBank, "data" + std::to_string(W),
                              {{"raddr_i", Index},
                               {"waddr_i", Index},
                               {"wdata_i", DataR},
                               {"wen_i", Wen}});
    WayData.push_back(Bank.at("rdata_o"));
  }
  V ReadData = B.muxN(Way, WayData);

  V RespV = B.regLoop("resp_v", 1);
  B.drive(RespV, B.mux(VR, B.lit(1, 1),
                       B.mux(RespYumi, B.lit(0, 1), RespV)));

  B.output("resp_data_o", B.reg(ReadData, "resp_data_r"));
  B.output("resp_v_o", RespV);
  B.output("hit_o", B.andv(Hit, B.orv(VR, Cfg)));
  B.output("ready_o", B.notv(RespV));
  return D.addModule(B.finish());
}

ModuleId gen::buildL15(Design &D, const OpdbOptions &O) {
  // The L1.5: four data banks, two tag banks, a directory bank, and both
  // a core-side and a NoC-side interface (hence the port count).
  ModuleId DataBank = sramBank(D, effAddr(11, O), 64);
  ModuleId TagBank = sramBank(D, effAddr(11, O), 24);
  ModuleId DirBank = sramBank(D, effAddr(10, O), 64);

  Builder B("l15");
  V CoreAddr = B.input("core_addr_i", 40);
  V CoreData = B.input("core_data_i", 64);
  V CoreV = B.input("core_v_i", 1);
  V CoreRw = B.input("core_rw_i", 1);
  V CoreYumi = B.input("core_yumi_i", 1);
  V NocData = B.input("noc_data_i", 64);
  V NocV = B.input("noc_v_i", 1);
  V NocYumi = B.input("noc_yumi_i", 1);
  V Inval = B.input("inval_i", 1);
  V InvalAddr = B.input("inval_addr_i", 40);
  V Cfg = addConfigPorts(B, 20, "l15_csr");

  uint16_t AW = effAddr(11, O);
  V Index = B.reg(B.slice(CoreAddr, AW - 1, 0), "index_r");
  V InvIndex = B.reg(B.slice(InvalAddr, AW - 1, 0), "inv_index_r");
  V TagIn = B.reg(B.slice(CoreAddr, 39, 16), "tag_r");
  V DataR = B.reg(CoreData, "wdata_r");
  V VR = B.reg(CoreV, "v_r");
  V RwR = B.reg(CoreRw, "rw_r");
  V InvR = B.reg(Inval, "inv_r");

  auto T0 = B.instantiate(D, TagBank, "tag0",
                          {{"raddr_i", Index},
                           {"waddr_i", B.mux(InvR, InvIndex, Index)},
                           {"wdata_i", TagIn},
                           {"wen_i", B.orv(InvR, B.andv(VR, RwR))}});
  auto T1 = B.instantiate(D, TagBank, "tag1",
                          {{"raddr_i", Index},
                           {"waddr_i", InvIndex},
                           {"wdata_i", TagIn},
                           {"wen_i", InvR}});
  V Hit0 = B.eq(T0.at("rdata_o"), TagIn);
  V Hit1 = B.eq(T1.at("rdata_o"), TagIn);
  V Hit = B.reg(B.orv(Hit0, Hit1), "hit_r");

  // Four ways share one data-bank definition.
  V Way = B.slice(Index, 1, 0);
  std::vector<V> WayData;
  for (uint16_t W = 0; W != 4; ++W) {
    V WData = W == 3 ? B.mux(NocV, NocData, DataR) : DataR;
    V Wen = B.andv(B.andv(VR, RwR), B.eqConst(Way, W));
    auto Bank = B.instantiate(D, DataBank, "data" + std::to_string(W),
                              {{"raddr_i", Index},
                               {"waddr_i", Index},
                               {"wdata_i", WData},
                               {"wen_i", Wen}});
    WayData.push_back(Bank.at("rdata_o"));
  }
  V DirAddr = B.reg(B.slice(CoreAddr, effAddr(10, O) - 1, 0), "dir_r");
  auto Dir = B.instantiate(D, DirBank, "dir",
                           {{"raddr_i", DirAddr},
                            {"waddr_i", DirAddr},
                            {"wdata_i", NocData},
                            {"wen_i", B.reg(NocV, "noc_v_r")}});

  V RespV = B.regLoop("resp_v", 1);
  B.drive(RespV, B.mux(VR, B.lit(1, 1),
                       B.mux(CoreYumi, B.lit(0, 1), RespV)));
  V NocReqV = B.regLoop("noc_req_v", 1);
  B.drive(NocReqV, B.mux(B.andv(VR, B.notv(Hit)), B.lit(1, 1),
                         B.mux(NocYumi, B.lit(0, 1), NocReqV)));

  V ReadData = B.muxN(Way, WayData);
  B.output("core_data_o", B.reg(ReadData, "core_data_r"));
  B.output("core_v_o", RespV);
  B.output("core_ready_o", B.notv(RespV));
  B.output("noc_data_o", B.reg(B.xorv(ReadData, Dir.at("rdata_o")),
                               "noc_data_r"));
  B.output("noc_v_o", NocReqV);
  B.output("hit_o", B.andv(Hit, B.orv(VR, Cfg)));
  addStatusPorts(B, 30, B.xorr(Dir.at("rdata_o")), "l15_status");
  return D.addModule(B.finish());
}

ModuleId gen::buildPico(Design &D, const OpdbOptions &O) {
  // A minimal in-order core stand-in: instruction and data memories plus
  // a register file and a small ALU.
  ModuleId IMem = sramBank(D, effAddr(8, O), 32);
  ModuleId DMem = sramBank(D, effAddr(8, O), 32);
  ModuleId RegFile = sramBank(D, 5, 32);

  Builder B("pico");
  V IrqIn = B.input("irq_i", 1);
  V MemStall = B.input("mem_stall_i", 1);
  V ExtData = B.input("ext_data_i", 32);
  V ExtV = B.input("ext_v_i", 1);
  V Cfg = addConfigPorts(B, 6, "pico_cfg");

  uint16_t AW = effAddr(8, O);
  V Pc = B.regLoop("pc", AW);
  auto Fetch = B.instantiate(D, IMem, "imem",
                             {{"raddr_i", Pc},
                              {"waddr_i", Pc},
                              {"wdata_i", ExtData},
                              {"wen_i", ExtV}});
  V Inst = Fetch.at("rdata_o");
  V Rs = B.reg(B.slice(Inst, 4, 0), "rs_r");
  auto Rf = B.instantiate(D, RegFile, "rf",
                          {{"raddr_i", Rs},
                           {"waddr_i", B.reg(B.slice(Inst, 9, 5), "rd_r")},
                           {"wdata_i", B.reg(Inst, "wb_r")},
                           {"wen_i", B.reg(B.bit(Inst, 31), "wen_r")}});
  V Operand = Rf.at("rdata_o");
  V Alu = B.add(Operand, B.sext(B.slice(Inst, 20, 10), 32));
  V MemAddr = B.reg(B.slice(Alu, AW - 1, 0), "maddr_r");
  auto Mem = B.instantiate(D, DMem, "dmem",
                           {{"raddr_i", MemAddr},
                            {"waddr_i", MemAddr},
                            {"wdata_i", Operand},
                            {"wen_i", B.reg(B.bit(Inst, 30), "st_r")}});
  V Advance = B.notv(B.orv(MemStall, IrqIn));
  B.drive(Pc, B.mux(Advance, B.inc(Pc), Pc));

  B.output("result_o", B.reg(B.xorv(Alu, Mem.at("rdata_o")), "res_r"));
  B.output("trap_o", B.reg(B.andv(IrqIn, Cfg), "trap_r"));
  B.output("pc_o", Pc);
  addStatusPorts(B, 8, B.xorr(Inst), "pico_status");
  return D.addModule(B.finish());
}

ModuleId gen::buildSparcMul(Design &D, const OpdbOptions &) {
  ModuleId Mul = mulArray(D, 64);
  Builder B("sparc_mul");
  V Rs1 = B.input("rs1_data_i", 64);
  V Rs2 = B.input("rs2_data_i", 64);
  V VIn = B.input("valid_i", 1);
  auto P = B.instantiate(D, Mul, "array", {{"a_i", Rs1}, {"b_i", Rs2}});
  B.output("out_data_o", B.reg(P.at("p_o"), "out_r"));
  B.output("out_v_o", B.reg(VIn, "v_r"));
  // The bypass result is offered combinationally — a from-port path.
  B.output("bypass_o", B.slice(P.at("p_o"), 31, 0));
  B.output("parity_o", B.reg(B.xorr(P.at("p_o")), "par_r"));
  return D.addModule(B.finish());
}

ModuleId gen::buildSparcFfu(Design &D, const OpdbOptions &O) {
  // Floating-point frontend unit: two FP register-file banks (even/odd
  // doubles) sharing one definition + two 32-bit multiplier lanes.
  ModuleId Frf = sramBank(D, effAddr(9, O), 32);
  ModuleId Mul = mulArray(D, 32);

  Builder B("sparc_ffu");
  V OpIn = B.input("op_i", 4);
  V Rs1 = B.input("rs1_i", 32);
  V Rs2 = B.input("rs2_i", 32);
  V VIn = B.input("v_i", 1);
  V Kill = B.input("kill_i", 1);
  V Cfg = addConfigPorts(B, 30, "ffu_csr");

  V OpR = B.reg(OpIn, "op_r");
  V R1 = B.reg(Rs1, "rs1_r");
  V R2 = B.reg(Rs2, "rs2_r");
  auto P = B.instantiate(D, Mul, "fmul_lo", {{"a_i", R1}, {"b_i", R2}});
  auto PHi = B.instantiate(D, Mul, "fmul_hi",
                           {{"a_i", R2}, {"b_i", B.notv(R1)}});
  uint16_t AW = effAddr(9, O);
  V FAddr = B.reg(B.slice(R1, AW - 1, 0), "faddr_r");
  V Wen = B.reg(B.andv(VIn, B.notv(Kill)), "fwen_r");
  auto RegEven = B.instantiate(D, Frf, "frf_even",
                               {{"raddr_i", FAddr},
                                {"waddr_i", FAddr},
                                {"wdata_i", P.at("p_o")},
                                {"wen_i", Wen}});
  auto RegOdd = B.instantiate(D, Frf, "frf_odd",
                              {{"raddr_i", FAddr},
                               {"waddr_i", FAddr},
                               {"wdata_i", PHi.at("p_o")},
                               {"wen_i", Wen}});
  V IsMul = B.eqConst(OpR, 1);
  V RegPair = B.xorv(RegEven.at("rdata_o"), RegOdd.at("rdata_o"));
  V Result = B.mux(IsMul, P.at("p_o"), B.add(RegPair, R2));

  B.output("result_o", B.reg(Result, "result_r"));
  B.output("v_o", B.reg(B.andv(B.reg(VIn, "v1_r"), B.notv(Kill)), "v2_r"));
  B.output("cc_o", B.reg(B.concat({B.eqConst(Result, 0), B.bit(Result, 31)}),
                         "cc_r"));
  B.output("busy_o", B.reg(Cfg, "busy_r"));
  addStatusPorts(B, 34, B.xorr(Result), "ffu_status");
  return D.addModule(B.finish());
}

ModuleId gen::buildSparcExu(Design &D, const OpdbOptions &O) {
  // Execution unit: four register-window banks sharing one definition
  // dominate; an ALU, a barrel shifter, and bypass muxing provide
  // combinational breadth.
  ModuleId Windows = sramBank(D, effAddr(9, O), 64);

  Builder B("sparc_exu");
  V Rs1Addr = B.input("rs1_addr_i", 11);
  V Rs2Addr = B.input("rs2_addr_i", 11);
  V RdAddr = B.input("rd_addr_i", 11);
  V Imm = B.input("imm_i", 32);
  V UseImm = B.input("use_imm_i", 1);
  V AluOp = B.input("alu_op_i", 3);
  V VIn = B.input("v_i", 1);
  V BypassData = B.input("bypass_data_i", 64);
  V UseBypass = B.input("use_bypass_i", 1);
  V Cfg = addConfigPorts(B, 50, "exu_csr");

  uint16_t AW = effAddr(9, O);
  V R1Addr = B.reg(B.slice(Rs1Addr, AW - 1, 0), "r1a_r");
  V RdR = B.reg(B.slice(RdAddr, AW - 1, 0), "rd_r");
  V WinSel = B.reg(B.slice(Rs1Addr, 10, 9), "win_r");
  std::vector<V> WinData;
  for (uint16_t W = 0; W != 4; ++W) {
    V Wen = B.andv(B.reg(VIn, "wen" + std::to_string(W) + "_r"),
                   B.eqConst(WinSel, W));
    auto Bank = B.instantiate(D, Windows, "regwin" + std::to_string(W),
                              {{"raddr_i", R1Addr},
                               {"waddr_i", RdR},
                               {"wdata_i", BypassData},
                               {"wen_i", Wen}});
    WinData.push_back(Bank.at("rdata_o"));
  }
  V Op1 = B.mux(UseBypass, BypassData, B.muxN(WinSel, WinData));
  V Op2 = B.mux(UseImm, B.sext(Imm, 64), B.reg(B.zext(Rs2Addr, 64),
                                               "rs2_r"));
  V Sum = B.add(Op1, Op2);
  V Diff = B.sub(Op1, Op2);
  V AndV = B.andv(Op1, Op2);
  V OrV = B.orv(Op1, Op2);
  V XorV = B.xorv(Op1, Op2);
  V Shl = B.shl(Op1, B.slice(Op2, 5, 0));
  V Shr = B.shr(Op1, B.slice(Op2, 5, 0), /*Arithmetic=*/true);
  V Result = B.muxN(AluOp, {Sum, Diff, AndV, OrV, XorV, Shl, Shr, Op1});

  B.output("result_o", Result); // Bypass network: combinational.
  B.output("result_r_o", B.reg(Result, "result_r"));
  B.output("zero_o", B.eqConst(Result, 0));
  B.output("v_o", B.reg(B.andv(VIn, B.notv(Cfg)), "v_r"));
  addStatusPorts(B, 60, B.xorr(Result), "exu_status");
  return D.addModule(B.finish());
}

ModuleId gen::buildSparcTlu(Design &D, const OpdbOptions &O) {
  // Trap logic unit: per-thread trap-stack banks plus wide trap-vector
  // decoding; its 214-port interface is mostly per-thread 1-bit wires.
  ModuleId TrapStack = sramBank(D, effAddr(10, O), 64);

  Builder B("sparc_tlu");
  std::vector<V> TrapReq, TrapType;
  for (uint16_t T = 0; T != 4; ++T) {
    TrapReq.push_back(B.input("thr" + std::to_string(T) + "_trap_i", 1));
    TrapType.push_back(
        B.input("thr" + std::to_string(T) + "_ttype_i", 9));
  }
  V Pc = B.input("pc_i", 48);
  V Npc = B.input("npc_i", 48);
  V Cfg = addConfigPorts(B, 60, "tlu_csr");

  uint16_t AW = effAddr(10, O);
  V SavedPc = B.reg(B.slice(Pc, 47, 0), "pc_r");
  V SavedNpc = B.reg(B.slice(Npc, 47, 0), "npc_r");
  V AnyTrap = B.lit(0, 1);
  for (uint16_t T = 0; T != 4; ++T) {
    V Sp = B.regLoop("tsp" + std::to_string(T), AW);
    V Take = B.reg(TrapReq[T], "take" + std::to_string(T) + "_r");
    V Entry = B.concat({B.slice(SavedPc, 47, 41),
                        B.reg(TrapType[T],
                              "ttype" + std::to_string(T) + "_r"),
                        B.slice(SavedNpc, 47, 0)});
    auto Stack = B.instantiate(D, TrapStack, "tstack" + std::to_string(T),
                               {{"raddr_i", Sp},
                                {"waddr_i", Sp},
                                {"wdata_i", Entry},
                                {"wen_i", Take}});
    B.drive(Sp, B.mux(Take, B.inc(Sp), Sp));
    AnyTrap = B.orv(AnyTrap, TrapReq[T]);

    // Per-thread outputs: registered trap state (from-sync) plus a
    // combinational taken preview (from-port, depends on the request).
    B.output("thr" + std::to_string(T) + "_trap_pc_o",
             B.reg(B.slice(Stack.at("rdata_o"), 47, 0),
                   "tpc" + std::to_string(T) + "_r"));
    B.output("thr" + std::to_string(T) + "_trap_taken_o",
             B.andv(TrapReq[T], B.notv(Cfg)));
    B.output("thr" + std::to_string(T) + "_tl_o",
             B.slice(Sp, 2, 0));
  }
  // A wide block of per-vector status ports (registered).
  addStatusPorts(B, 170, AnyTrap, "tlu_int");
  B.output("any_trap_o", B.reg(AnyTrap, "any_trap_r"));
  return D.addModule(B.finish());
}

std::vector<OpdbEntry> gen::buildOpdb(Design &D, const OpdbOptions &O) {
  std::vector<OpdbEntry> Entries;
  auto add = [&](const std::string &Name, ModuleId Id) {
    Entries.push_back(OpdbEntry{Name, Id});
  };
  add("dynamic_node", buildDynamicNode(D, O));
  add("fpu", buildFpu(D, O));
  add("ifu_esl", buildIfuEsl(D, O));
  add("ifu_esl_counter", buildIfuEslCounter(D));
  add("ifu_esl_fsm", buildIfuEslFsm(D));
  add("ifu_esl_htsm", buildIfuEslHtsm(D));
  add("ifu_esl_lfsr", buildIfuEslLfsr(D));
  add("ifu_esl_rtsm", buildIfuEslRtsm(D));
  add("ifu_esl_shiftreg", buildIfuEslShiftreg(D));
  add("ifu_esl_stsm", buildIfuEslStsm(D));
  add("l2", buildL2(D, O));
  add("l15", buildL15(D, O));
  add("pico", buildPico(D, O));
  add("sparc_ffu", buildSparcFfu(D, O));
  add("sparc_mul", buildSparcMul(D, O));
  add("sparc_exu", buildSparcExu(D, O));
  add("sparc_tlu", buildSparcTlu(D, O));
  return Entries;
}
