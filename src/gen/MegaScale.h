//===- gen/MegaScale.h - 100k..1M-instance composed designs -----*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mega-scale workload generator (docs/SCALE.md): composes the existing
/// catalog/Fifo/LoopInjector generators into tiled manycore-style designs
/// of 100k to 1M+ flattened instances, the workload shape the paper's §4
/// composition argument was designed for (OpenPiton-style tile grids and
/// NoC-of-NoCs). The construction exploits the one property that makes
/// such sizes checkable at all — per-module summaries mean the analysis
/// cost scales with *unique* modules plus hierarchy nodes, not flattened
/// gates — while the *flat instance count* (what a monolithic checker
/// would face) multiplies through the hierarchy:
///
///   tile     = boundary FIFO + reg-slice + K payload instances
///   cluster  = boundary FIFOs + chain/grid of T tile instances
///   top      = GX x GY cluster instances, ring / torus / chain wired
///
/// Every cross-instance connection lands on a normal-FIFO or reg-slice
/// boundary port (to-sync in, from-sync out — the paper's "universal
/// interface", Table 1), so arbitrary wiring topologies, including the
/// closed ring and the torus, are loop-free by construction. The optional
/// LoopInjector mutation threads a combinational feed-through ring
/// through the top circuit, reproducing the §5.4 multi-module-loop
/// experiment at mega scale.
///
/// Generation is a pure function of MegaScaleParams: the same params
/// (including Seed) produce a structurally byte-identical Design in any
/// process, which the shard-differential and generator-determinism suites
/// rely on (fingerprint() is the cheap cross-process witness).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_GEN_MEGASCALE_H
#define WIRESORT_GEN_MEGASCALE_H

#include "ir/Circuit.h"
#include "ir/Design.h"

#include <cstdint>
#include <optional>
#include <string>

namespace wiresort::gen {

/// Parameter space of the mega-scale generator. Flat instance count is
/// roughly GridX*GridY * TilesPerCluster * (PayloadPerTile + 3); see
/// docs/SCALE.md for the presets' exact arithmetic.
struct MegaScaleParams {
  enum class Topology : uint8_t {
    /// Clusters in a grid, snake-ordered into a closed ring.
    TileGrid,
    /// Four-boundary-port clusters, 2-D torus wiring (east + south).
    NocMesh,
    /// FIFO-only payloads in deep open chains (hierarchical fabric).
    FifoFabric,
  };

  Topology Topo = Topology::TileGrid;
  /// Cluster grid at the top level (FifoFabric treats GridX*GridY as a
  /// chain length).
  uint32_t GridX = 2;
  uint32_t GridY = 2;
  /// Tile instances chained inside each cluster definition.
  uint32_t TilesPerCluster = 2;
  /// Catalog payload instances per tile definition.
  uint32_t PayloadPerTile = 3;
  /// Distinct tile definitions (seeded payload mixes).
  uint32_t TileVariants = 2;
  /// Distinct cluster definitions (seeded tile mixes).
  uint32_t ClusterVariants = 1;
  /// Boundary FIFO / reg-slice data width.
  uint16_t Width = 8;
  /// Drives every random choice; same seed, same design, any process.
  uint64_t Seed = 0;
  /// Thread a combinational feed-through ring (LoopInjector clones)
  /// through the top circuit — the design then has a multi-module
  /// combinational loop and must be diagnosed WS101 at the top module.
  bool InjectLoop = false;
  /// Instances in the injected ring (clamped to the payload pool size).
  uint32_t LoopRingLength = 4;
  /// Name of the sealed top module; also prefixes tile/cluster names so
  /// several mega designs can share one Design.
  std::string TopName = "mega_top";
};

/// What buildMegaScale produced.
struct MegaScaleDesign {
  ir::ModuleId Top = ir::InvalidId;
  /// Flattened instance count under Top (what a monolithic checker would
  /// have to expand): sum over the hierarchy of (1 + flat(def)).
  uint64_t FlatInstances = 0;
  /// Modules reachable from Top, Top included — the Stage-1 work list.
  uint64_t UniqueModules = 0;
};

/// Builds the design into \p D and seals the top circuit.
MegaScaleDesign buildMegaScale(ir::Design &D, const MegaScaleParams &P);

/// Same construction, but the top level is returned as an *unsealed*
/// Circuit for callers that drive the Stage-3 circuit check directly
/// (bench_scalability's pairwise-vs-SCC sweeps).
ir::Circuit buildMegaScaleCircuit(ir::Design &D, const MegaScaleParams &P);

/// Flattened instance count under \p Top (memoized recursion).
uint64_t flatInstanceCount(const ir::Design &D, ir::ModuleId Top);

/// Order-independent 16-hex-digit digest of every module reachable from
/// \p Top (structuralHash + name hash, folded in module-id order). Two
/// processes generating from the same params must agree byte-for-byte —
/// the generator-determinism suite's cross-process witness.
std::string fingerprint(const ir::Design &D, ir::ModuleId Top);

/// Named parameter presets ("ci", "ci-loop", "ci-noc", "ci-fabric",
/// "10k", "100k", "100k-noc", "100k-fabric", "1m"); std::nullopt for an
/// unknown name. The CI presets are small enough for 100-seed property
/// trials; the named sizes state their flat-instance floor.
std::optional<MegaScaleParams> megaScalePreset(const std::string &Name);

} // namespace wiresort::gen

#endif // WIRESORT_GEN_MEGASCALE_H
