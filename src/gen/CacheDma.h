//===- gen/CacheDma.h - Cache DMA engine ------------------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cache DMA engine with the interface and combinational dependence
/// structure of Table 1's fourth row (BaseJump's bsg_cache_dma): a
/// command-driven engine moving lines between the cache data memory and a
/// DMA packet channel. Its to-port/from-port structure is rich —
/// dma_cmd_i fans out combinationally to done_o, dma_pkt_o, dma_pkt_v_o,
/// and data_mem_v_o, while the streaming data paths are fully registered
/// (from-sync).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_GEN_CACHEDMA_H
#define WIRESORT_GEN_CACHEDMA_H

#include "ir/Module.h"

#include <cstdint>

namespace wiresort::gen {

/// Cache DMA shape parameters.
struct CacheDmaParams {
  uint16_t DataWidth = 32;
  uint16_t AddrWidth = 16;
  /// Number of cache ways; sets the width of dma_way_i / the write mask.
  uint16_t Ways = 4;
  /// log2 of the words per cache line (burst counter width).
  uint16_t LineLog2 = 3;
};

/// Builds "cache_dma_w<W>_a<A>" with the Table 1 port list.
ir::Module makeCacheDma(const CacheDmaParams &P);

} // namespace wiresort::gen

#endif // WIRESORT_GEN_CACHEDMA_H
