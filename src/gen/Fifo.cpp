//===- gen/Fifo.cpp - FIFO queue generators -------------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "gen/Fifo.h"

#include "ir/Builder.h"

#include <string>

using namespace wiresort;
using namespace wiresort::gen;
using namespace wiresort::ir;

Module gen::makeFifo(const FifoParams &P) {
  std::string Name = std::string("fifo") + (P.Forwarding ? "_fwd" : "") +
                     "_w" + std::to_string(P.Width) + "_d" +
                     std::to_string(1u << P.DepthLog2);
  Builder B(Name);

  // Consumer endpoint: the upstream module pushes data in.
  V DataIn = B.input("data_i", P.Width);
  V ValidIn = B.input("v_i", 1);
  // Producer endpoint: the downstream module pulls data out; yumi_i
  // acknowledges that the presented word was consumed this cycle.
  V YumiIn = B.input("yumi_i", 1);

  uint16_t PtrW = P.DepthLog2;
  uint16_t CntW = static_cast<uint16_t>(P.DepthLog2 + 1);
  V Count = B.regLoop("count", CntW);
  V RPtr = B.regLoop("rptr", PtrW);
  V WPtr = B.regLoop("wptr", PtrW);

  V Depth = B.lit(1u << P.DepthLog2, CntW);
  V NotFull = B.lt(Count, Depth);
  V NotEmpty = B.lt(B.lit(0, CntW), Count);
  V Empty = B.eqConst(Count, 0);

  V ReadyOut = NotFull;
  V Enq = B.andv(ValidIn, ReadyOut);

  // Control first, storage after, so the write enable is final before the
  // memory is created.
  V ValidOut, EnqMem, Deq, Fwd;
  if (P.Forwarding) {
    // Figure 2: an empty queue presents incoming data the same cycle.
    Fwd = B.andv(Empty, ValidIn);
    ValidOut = B.orv(NotEmpty, B.andv(ValidIn, ReadyOut));
    // A word forwarded and consumed in the same cycle never lands in the
    // queue store.
    V FwdTaken = B.andv(Fwd, YumiIn);
    EnqMem = B.andv(Enq, B.notv(FwdTaken));
    Deq = B.andv(YumiIn, NotEmpty);
  } else {
    ValidOut = NotEmpty;
    EnqMem = Enq;
    Deq = B.andv(YumiIn, NotEmpty);
  }

  V StoredData =
      B.memory("store", /*SyncRead=*/false, RPtr, WPtr, DataIn, EnqMem);
  V DataOut =
      P.Forwarding ? B.mux(Fwd, DataIn, StoredData) : StoredData;

  // Pointer and occupancy updates.
  B.drive(WPtr, B.mux(EnqMem, B.inc(WPtr), WPtr));
  B.drive(RPtr, B.mux(Deq, B.inc(RPtr), RPtr));
  V CountUp = B.zext(EnqMem, CntW);
  V CountDown = B.zext(Deq, CntW);
  B.drive(Count, B.sub(B.add(Count, CountUp), CountDown));

  B.output("data_o", DataOut);
  B.output("v_o", ValidOut);
  B.output("ready_o", ReadyOut);
  return B.finish();
}
