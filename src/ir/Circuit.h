//===- ir/Circuit.h - Circuits of connected module instances ----*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's circuit domain: a set of module instances plus direct
/// output-to-input connections (Section 3.1). Per the paper's footnote 2,
/// extra-modular glue logic can always be wrapped into its own module, so
/// direct connections lose no generality; the Builder's instantiate()
/// support covers the glue-module idiom, and seal() turns a Circuit into
/// an ordinary (hierarchical) Module so that circuits compose into
/// "supermodules" ad infinitum, as Section 3.1 describes.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_IR_CIRCUIT_H
#define WIRESORT_IR_CIRCUIT_H

#include "ir/Design.h"
#include "support/Arena.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace wiresort::ir {

/// A reference to one port of one instance in a Circuit.
struct PortRef {
  InstId Inst = InvalidId;
  /// WireId of the port within the instance's defining module.
  WireId Port = InvalidId;

  bool operator==(const PortRef &O) const {
    return Inst == O.Inst && Port == O.Port;
  }
};

/// A directed connection from an instance output port to an instance
/// input port (wout ->C win in the paper's notation).
struct Connection {
  PortRef From;
  PortRef To;
};

/// A circuit under construction: instances of modules from a Design, plus
/// connections. Query helpers resolve ports by name; \ref seal lowers the
/// circuit to a hierarchical Module added to the Design.
class Circuit {
public:
  struct Instance {
    ModuleId Def = InvalidId;
    std::string Name;
  };

  Circuit(Design &D, std::string Name) : D(&D), Name(std::move(Name)) {}

  /// Adds an instance of \p Def named \p InstName.
  InstId addInstance(ModuleId Def, std::string InstName);

  /// Connects an output port to an input port, resolving names against
  /// the instances' defining modules. Asserts if a name does not resolve,
  /// the direction is wrong, widths differ, or the input is already
  /// driven.
  void connect(InstId From, const std::string &OutPort, InstId To,
               const std::string &InPort);

  /// Port-id flavored connect for callers that already hold WireIds.
  void connectPorts(PortRef From, PortRef To);

  // --- Queries ---------------------------------------------------------------

  const Design &design() const { return *D; }
  const std::vector<Instance> &instances() const { return Insts; }
  const std::vector<Connection> &connections() const { return Conns; }
  const std::string &name() const { return Name; }

  const Module &defOf(InstId Inst) const {
    return D->module(Insts[Inst].Def);
  }

  /// True iff every port of every instance participates in a connection —
  /// the paper's "complete circuit" precondition for Property 3.
  bool isComplete() const;

  /// Human-readable "inst.port" label, for diagnostics.
  std::string portLabel(PortRef Ref) const;

  /// Lowers to a hierarchical Module in the Design: each connection
  /// becomes a shared local wire; unconnected instance inputs/outputs are
  /// promoted to ports of the sealed module (named "inst.port"), so
  /// incomplete circuits become open supermodules. \returns the new
  /// module's id.
  ModuleId seal();

private:
  /// Lazy per-definition port-name index: one hash lookup per \ref
  /// connect instead of a linear findPort scan of the definition's
  /// ports. Keys are interned into the circuit's arena — NOT views into
  /// Module wire names, whose SSO buffers move when the Design's module
  /// vector grows (seal() grows it) — so they stay stable for the
  /// index's lifetime.
  struct PortIndex {
    support::Arena Arena;
    support::StringInterner Names{Arena};
    std::unordered_map<ModuleId, std::unordered_map<std::string_view, WireId>>
        ByDef;
  };
  const std::unordered_map<std::string_view, WireId> &portsOf(ModuleId Def);

  static uint64_t portKey(PortRef Ref) {
    return (uint64_t(Ref.Inst) << 32) | Ref.Port;
  }

  Design *D;
  std::string Name;
  std::vector<Instance> Insts;
  std::vector<Connection> Conns;
  std::unique_ptr<PortIndex> Ports;
  /// Input ports already driven by a connection — O(1) duplicate-driver
  /// rejection (the old per-connect scan of Conns made debug builds of
  /// million-connection circuits quadratic) and the fast half of
  /// \ref isComplete.
  std::unordered_set<uint64_t> DrivenInputs;
};

} // namespace wiresort::ir

#endif // WIRESORT_IR_CIRCUIT_H
