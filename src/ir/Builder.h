//===- ir/Builder.h - PyRTL-style construction EDSL -------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fluent embedded DSL for building Module definitions, mirroring the
/// PyRTL host language the paper's artifact extends: multi-bit wire
/// vectors, operator-style combinational logic, registers with feedback,
/// and memories. Every helper asserts its width discipline so malformed
/// designs fail at construction time rather than at analysis time.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_IR_BUILDER_H
#define WIRESORT_IR_BUILDER_H

#include "ir/Design.h"
#include "ir/Module.h"

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wiresort::ir {

/// A handle to a wire under construction; cheap to copy.
struct V {
  WireId Id = InvalidId;
  uint16_t Width = 0;

  bool valid() const { return Id != InvalidId; }
};

/// Builds one Module. Typical use:
/// \code
///   Builder B("counter");
///   V En = B.input("en", 1);
///   V Q = B.regLoop("count", 8);
///   B.drive(Q, B.mux(En, B.add(Q, B.lit(1, 8)), Q));
///   B.output("count_o", Q);
///   Module M = B.finish();
/// \endcode
class Builder {
public:
  explicit Builder(std::string Name) : M(std::move(Name)) {}

  // --- Ports and literals -------------------------------------------------

  V input(const std::string &Name, uint16_t Width);
  /// Creates an output port driven by \p Src (via a transparent Buf).
  V output(const std::string &Name, V Src);
  V lit(uint64_t Value, uint16_t Width);

  // --- State ----------------------------------------------------------------

  /// Register with a known D: returns the Q wire.
  V reg(V D, const std::string &Name, uint64_t Init = 0);

  /// Declares a register whose D is supplied later with \ref drive —
  /// required for feedback (counters, FSM state). Returns the Q wire.
  V regLoop(const std::string &Name, uint16_t Width, uint64_t Init = 0);

  /// Supplies the D input of a register declared with \ref regLoop.
  void drive(V Q, V D);

  /// Adds a memory; \returns the read-data wire. Synchronous-read
  /// memories (\p SyncRead) produce reg-kind read data with no
  /// combinational RAddr dependency (paper Section 3.7).
  V memory(const std::string &Name, bool SyncRead, V RAddr, V WAddr, V WData,
           V WEnable);

  // --- Combinational operators ---------------------------------------------

  V andv(V A, V B);
  V orv(V A, V B);
  V xorv(V A, V B);
  V nandv(V A, V B);
  V norv(V A, V B);
  V xnorv(V A, V B);
  V notv(V A);
  V buf(V A);
  /// sel ? A : B; \p Sel must be 1 bit.
  V mux(V Sel, V A, V B);
  V add(V A, V B);
  V sub(V A, V B);
  V eq(V A, V B);
  V lt(V A, V B);
  /// Signed less-than over equal-width operands.
  V slt(V A, V B);
  /// Concatenation, most-significant part first.
  V concat(std::initializer_list<V> Parts);
  V concat(const std::vector<V> &Parts);
  /// Bits [Hi:Lo] of \p A.
  V slice(V A, uint16_t Hi, uint16_t Lo);
  /// Single bit \p Index of \p A.
  V bit(V A, uint16_t Index);
  V andr(V A);
  V orr(V A);
  V xorr(V A);

  // --- Width adjustment ------------------------------------------------------

  /// Zero-extends (or truncates) \p A to \p Width.
  V zext(V A, uint16_t Width);
  /// Sign-extends \p A to \p Width (>= A.Width).
  V sext(V A, uint16_t Width);

  // --- Derived combinational helpers ----------------------------------------

  /// Equality against a constant.
  V eqConst(V A, uint64_t Value);
  /// Logical shift left by a constant amount (bits shifted out dropped).
  V shlConst(V A, uint16_t Amount);
  /// Logical shift right by a constant amount.
  V shrConst(V A, uint16_t Amount);
  /// Barrel shifter: logical shift left by a variable amount.
  V shl(V A, V Amount);
  /// Barrel shifter: logical shift right; \p Arithmetic replicates the
  /// sign bit.
  V shr(V A, V Amount, bool Arithmetic = false);
  /// N-way mux: selects Cases[Sel], clamping out-of-range selects to the
  /// last case. All cases share a width; \p Sel is ceil(log2(N)) wide or
  /// wider.
  V muxN(V Sel, const std::vector<V> &Cases);
  /// Unsigned increment that wraps, a common idiom for pointers/counters.
  V inc(V A) { return add(A, lit(1, A.Width)); }

  // --- Hierarchy --------------------------------------------------------------

  /// Instantiates \p Def (which must live in the same Design the finished
  /// module will join) binding each named input port to a local wire.
  /// \returns a map from output port name to the local wire it drives.
  std::map<std::string, V>
  instantiate(const Design &D, ModuleId Def, const std::string &InstName,
              const std::map<std::string, V> &InputBindings);

  // --- Contracts (Section 3.7) -------------------------------------------------

  /// Marks an input port: its external driver must be from-sync-direct.
  void requireDriverFromSyncDirect(V Port);
  /// Marks an output port: its external sink must be to-sync-direct.
  void requireSinkToSyncDirect(V Port);

  // --- Finalization -------------------------------------------------------------

  /// Validates and returns the module. Asserts on invariant violations
  /// (construction bugs are programmer errors, per the coding standard).
  Module finish();

  /// Access to the module under construction (for advanced callers).
  Module &raw() { return M; }

private:
  V fresh(uint16_t Width, const char *Hint);
  /// "hint$N" composed into \ref NameBuf (reused across calls).
  std::string freshName(std::string_view Hint);
  V binary(Op Operation, V A, V B, uint16_t OutWidth);

  Module M;
  uint64_t NextTmp = 0;
  std::string NameBuf;
};

} // namespace wiresort::ir

#endif // WIRESORT_IR_BUILDER_H
