//===- ir/Module.cpp - Hardware module definitions ------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include <cassert>
#include <sstream>

using namespace wiresort;
using namespace wiresort::ir;

const char *ir::wireKindName(WireKind Kind) {
  switch (Kind) {
  case WireKind::Const:
    return "const";
  case WireKind::Reg:
    return "reg";
  case WireKind::Input:
    return "in";
  case WireKind::Output:
    return "out";
  case WireKind::Basic:
    return "basic";
  }
  return "?";
}

const char *ir::opName(Op Operation) {
  switch (Operation) {
  case Op::And:
    return "and";
  case Op::Or:
    return "or";
  case Op::Xor:
    return "xor";
  case Op::Nand:
    return "nand";
  case Op::Nor:
    return "nor";
  case Op::Xnor:
    return "xnor";
  case Op::Not:
    return "not";
  case Op::Buf:
    return "buf";
  case Op::Mux:
    return "mux";
  case Op::Lut:
    return "lut";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Eq:
    return "eq";
  case Op::Lt:
    return "lt";
  case Op::Concat:
    return "concat";
  case Op::Select:
    return "select";
  case Op::AndR:
    return "andr";
  case Op::OrR:
    return "orr";
  case Op::XorR:
    return "xorr";
  }
  return "?";
}

bool ir::isPrimitiveOp(Op Operation) {
  switch (Operation) {
  case Op::And:
  case Op::Or:
  case Op::Xor:
  case Op::Nand:
  case Op::Nor:
  case Op::Xnor:
  case Op::Not:
  case Op::Buf:
  case Op::Mux:
  case Op::Lut:
    return true;
  default:
    return false;
  }
}

WireId Module::addWire(std::string Name, WireKind Kind, uint16_t Width,
                       uint64_t ConstValue) {
  assert(Width >= 1 && Width <= 64 && "wire width must be in [1, 64]");
  Wires.push_back(Wire{std::move(Name), Kind, Width, ConstValue});
  return static_cast<WireId>(Wires.size() - 1);
}

WireId Module::addInput(std::string Name, uint16_t Width) {
  WireId Id = addWire(std::move(Name), WireKind::Input, Width);
  Inputs.push_back(Id);
  return Id;
}

WireId Module::addOutput(std::string Name, uint16_t Width) {
  WireId Id = addWire(std::move(Name), WireKind::Output, Width);
  Outputs.push_back(Id);
  return Id;
}

NetId Module::addNet(Op Operation, std::vector<WireId> Inputs, WireId Output,
                     uint32_t Aux, std::vector<std::string> Cover) {
  Nets.push_back(
      Net{Operation, std::move(Inputs), Output, Aux, std::move(Cover)});
  return static_cast<NetId>(Nets.size() - 1);
}

RegId Module::addRegister(WireId D, WireId Q, uint64_t Init) {
  assert(Wires[Q].Kind == WireKind::Reg && "register Q must be a reg wire");
  Registers.push_back(Register{D, Q, Init});
  return static_cast<RegId>(Registers.size() - 1);
}

MemId Module::addMemory(Memory Mem) {
  Memories.push_back(std::move(Mem));
  return static_cast<MemId>(Memories.size() - 1);
}

InstId Module::addInstance(SubInstance Inst) {
  Instances.push_back(std::move(Inst));
  return static_cast<InstId>(Instances.size() - 1);
}

WireId Module::findPort(const std::string &Name) const {
  for (WireId Id : Inputs)
    if (Wires[Id].Name == Name)
      return Id;
  for (WireId Id : Outputs)
    if (Wires[Id].Name == Name)
      return Id;
  return InvalidId;
}

WireId Module::findWire(const std::string &Name) const {
  for (WireId Id = 0; Id != Wires.size(); ++Id)
    if (Wires[Id].Name == Name)
      return Id;
  return InvalidId;
}

std::optional<uint16_t>
Module::resultWidth(Op Operation, const std::vector<uint16_t> &Widths,
                    uint32_t Aux, uint16_t OutWidth) {
  auto allEqual = [&]() {
    for (uint16_t W : Widths)
      if (W != Widths.front())
        return false;
    return true;
  };
  switch (Operation) {
  case Op::And:
  case Op::Or:
  case Op::Xor:
  case Op::Nand:
  case Op::Nor:
  case Op::Xnor:
    if (Widths.size() != 2 || !allEqual())
      return std::nullopt;
    return Widths.front();
  case Op::Not:
  case Op::Buf:
    if (Widths.size() != 1)
      return std::nullopt;
    return Widths.front();
  case Op::Mux:
    if (Widths.size() != 3 || Widths[0] != 1 || Widths[1] != Widths[2])
      return std::nullopt;
    return Widths[1];
  case Op::Lut:
    for (uint16_t W : Widths)
      if (W != 1)
        return std::nullopt;
    return 1;
  case Op::Add:
  case Op::Sub:
    if (Widths.size() != 2 || !allEqual())
      return std::nullopt;
    return Widths.front();
  case Op::Eq:
  case Op::Lt:
    if (Widths.size() != 2 || !allEqual())
      return std::nullopt;
    return 1;
  case Op::Concat: {
    if (Widths.empty())
      return std::nullopt;
    uint32_t Sum = 0;
    for (uint16_t W : Widths)
      Sum += W;
    if (Sum > 64)
      return std::nullopt;
    return static_cast<uint16_t>(Sum);
  }
  case Op::Select:
    if (Widths.size() != 1 || OutWidth == 0 ||
        Aux + OutWidth > Widths.front())
      return std::nullopt;
    return OutWidth;
  case Op::AndR:
  case Op::OrR:
  case Op::XorR:
    if (Widths.size() != 1)
      return std::nullopt;
    return 1;
  }
  return std::nullopt;
}

std::optional<std::string> Module::validate() const {
  auto fail = [&](const std::string &Msg) {
    return std::optional<std::string>("module '" + Name + "': " + Msg);
  };

  // Count drivers per wire.
  std::vector<uint32_t> Drivers(Wires.size(), 0);
  for (const Net &N : Nets) {
    if (N.Output >= Wires.size())
      return fail("net output wire id out of range");
    for (WireId In : N.Inputs)
      if (In >= Wires.size())
        return fail("net input wire id out of range");
    ++Drivers[N.Output];

    std::vector<uint16_t> Widths;
    Widths.reserve(N.Inputs.size());
    for (WireId In : N.Inputs)
      Widths.push_back(Wires[In].Width);
    std::optional<uint16_t> Result =
        resultWidth(N.Operation, Widths, N.Aux, Wires[N.Output].Width);
    if (!Result)
      return fail(std::string("ill-typed ") + opName(N.Operation) +
                  " net driving '" + Wires[N.Output].Name + "'");
    if (*Result != Wires[N.Output].Width)
      return fail(std::string("width mismatch on ") + opName(N.Operation) +
                  " net driving '" + Wires[N.Output].Name + "'");
  }
  for (const Register &R : Registers) {
    if (R.D >= Wires.size() || R.Q >= Wires.size())
      return fail("register pin out of range");
    if (Wires[R.Q].Kind != WireKind::Reg)
      return fail("register Q wire '" + Wires[R.Q].Name + "' is not reg-kind");
    if (Wires[R.D].Width != Wires[R.Q].Width)
      return fail("register width mismatch on '" + Wires[R.Q].Name + "'");
    ++Drivers[R.Q];
  }
  for (const Memory &M : Memories) {
    for (WireId Pin : {M.RAddr, M.RData, M.WAddr, M.WData, M.WEnable})
      if (Pin >= Wires.size())
        return fail("memory '" + M.Name + "' pin out of range");
    if (Wires[M.RAddr].Width != M.AddrWidth ||
        Wires[M.WAddr].Width != M.AddrWidth)
      return fail("memory '" + M.Name + "' address width mismatch");
    if (Wires[M.RData].Width != M.DataWidth ||
        Wires[M.WData].Width != M.DataWidth)
      return fail("memory '" + M.Name + "' data width mismatch");
    if (Wires[M.WEnable].Width != 1)
      return fail("memory '" + M.Name + "' write enable must be 1 bit");
    if (M.SyncRead && Wires[M.RData].Kind != WireKind::Reg)
      return fail("sync memory '" + M.Name + "' RData must be reg-kind");
    ++Drivers[M.RData];
  }
  // Instance output bindings drive local wires; widths are validated by
  // Design::validate which can see the instantiated definitions.
  for (const SubInstance &Inst : Instances)
    for (const auto &[DefPort, Local] : Inst.Bindings)
      if (Local >= Wires.size())
        return fail("instance '" + Inst.Name + "' binds out-of-range wire");

  for (WireId Id = 0; Id != Wires.size(); ++Id) {
    const Wire &W = Wires[Id];
    bool MayBeUndriven =
        W.Kind == WireKind::Input || W.Kind == WireKind::Const;
    if (MayBeUndriven && Drivers[Id] != 0)
      return fail("wire '" + W.Name + "' of kind " + wireKindName(W.Kind) +
                  " must not be driven");
    // Non-port basic wires may be driven by instance outputs, which this
    // local pass cannot count; Design::validate finishes the job. Here we
    // only reject multiple drivers.
    if (Drivers[Id] > 1)
      return fail("wire '" + W.Name + "' has multiple drivers");
  }

  for (WireId Id : Inputs)
    if (Wires[Id].Kind != WireKind::Input)
      return fail("input list contains non-input wire '" + Wires[Id].Name +
                  "'");
  for (WireId Id : Outputs)
    if (Wires[Id].Kind != WireKind::Output)
      return fail("output list contains non-output wire '" + Wires[Id].Name +
                  "'");
  return std::nullopt;
}
