//===- ir/StructuralHash.h - Content hashing of module bodies ---*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 64-bit content hash of a module definition, used by the
/// analysis::SummaryEngine to address its summary cache: two modules with
/// equal structural hashes (and equal sub-summary keys) have identical
/// interface summaries, because Stage-1 inference consumes nothing else
/// (Section 3.5's modularity argument, operationalized).
///
/// The hash covers everything inferSummary reads from the body — wires
/// (kinds, widths, constants), nets (op, operands, aux, LUT covers),
/// registers, memories, instances (bindings and order), port lists, and
/// contracts. It deliberately excludes two things a summary cannot depend
/// on. Names (module, wire, memory, instance): summaries are expressed
/// purely in WireIds, so renames are hash-neutral and identically-shaped
/// bodies share a cache entry. Instance \c Def module ids: those are
/// indices into a particular Design, so including them would break
/// content addressing across designs (and across sessions). Instance
/// definitions instead contribute through their own summary keys, which
/// the SummaryEngine mixes in per instance, in instance order.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_IR_STRUCTURALHASH_H
#define WIRESORT_IR_STRUCTURALHASH_H

#include <cstdint>

namespace wiresort::ir {

class Module;

/// FNV-1a-based 64-bit hash of \p M's body. Deterministic across runs and
/// platforms; independent of the Design the module lives in.
uint64_t structuralHash(const Module &M);

/// Order-dependent combiner for chaining hashes (e.g. a body hash with
/// per-instance sub-summary keys). Not commutative.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  // 64-bit splitmix-style mixing of Value into Seed.
  Value += 0x9e3779b97f4a7c15ULL;
  Value = (Value ^ (Value >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Value = (Value ^ (Value >> 27)) * 0x94d049bb133111ebULL;
  Value ^= Value >> 31;
  return (Seed ^ Value) * 0x2545f4914f6cdd1dULL;
}

} // namespace wiresort::ir

#endif // WIRESORT_IR_STRUCTURALHASH_H
