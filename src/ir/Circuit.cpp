//===- ir/Circuit.cpp - Circuits of connected module instances ------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "ir/Circuit.h"

#include <cassert>
#include <map>

using namespace wiresort;
using namespace wiresort::ir;

InstId Circuit::addInstance(ModuleId Def, std::string InstName) {
  assert(Def < D->numModules() && "unknown module definition");
  Insts.push_back(Instance{Def, std::move(InstName)});
  return static_cast<InstId>(Insts.size() - 1);
}

void Circuit::connect(InstId From, const std::string &OutPort, InstId To,
                      const std::string &InPort) {
  WireId Out = defOf(From).findPort(OutPort);
  WireId In = defOf(To).findPort(InPort);
  assert(Out != InvalidId && "unknown output port name");
  assert(In != InvalidId && "unknown input port name");
  connectPorts(PortRef{From, Out}, PortRef{To, In});
}

void Circuit::connectPorts(PortRef From, PortRef To) {
  assert(From.Inst < Insts.size() && To.Inst < Insts.size());
  const Module &FromDef = defOf(From.Inst);
  const Module &ToDef = defOf(To.Inst);
  assert(FromDef.isOutput(From.Port) && "connection source must be output");
  assert(ToDef.isInput(To.Port) && "connection target must be input");
  assert(FromDef.wire(From.Port).Width == ToDef.wire(To.Port).Width &&
         "connection width mismatch");
  for (const Connection &C : Conns)
    assert(!(C.To == To) && "input port already driven");
  Conns.push_back(Connection{From, To});
}

bool Circuit::isComplete() const {
  for (InstId Inst = 0; Inst != Insts.size(); ++Inst) {
    const Module &Def = defOf(Inst);
    for (WireId Port : Def.Inputs) {
      bool Found = false;
      for (const Connection &C : Conns)
        Found |= C.To == PortRef{Inst, Port};
      if (!Found)
        return false;
    }
    for (WireId Port : Def.Outputs) {
      bool Found = false;
      for (const Connection &C : Conns)
        Found |= C.From == PortRef{Inst, Port};
      if (!Found)
        return false;
    }
  }
  return true;
}

std::string Circuit::portLabel(PortRef Ref) const {
  return Insts[Ref.Inst].Name + "." + defOf(Ref.Inst).wire(Ref.Port).Name;
}

ModuleId Circuit::seal() {
  Module Top(Name);

  // One local wire per driving output port (fan-out shares the wire).
  std::map<std::pair<InstId, WireId>, WireId> OutWire;
  for (const Connection &C : Conns) {
    auto Key = std::make_pair(C.From.Inst, C.From.Port);
    if (!OutWire.count(Key)) {
      const Wire &PortWire = defOf(C.From.Inst).wire(C.From.Port);
      OutWire[Key] = Top.addWire(portLabel(C.From), WireKind::Basic,
                                 PortWire.Width);
    }
  }

  std::map<std::pair<InstId, WireId>, WireId> InWire;
  for (const Connection &C : Conns)
    InWire[{C.To.Inst, C.To.Port}] = OutWire[{C.From.Inst, C.From.Port}];

  for (InstId Inst = 0; Inst != Insts.size(); ++Inst) {
    const Module &Def = defOf(Inst);
    SubInstance Sub;
    Sub.Def = Insts[Inst].Def;
    Sub.Name = Insts[Inst].Name;
    for (WireId Port : Def.Inputs) {
      auto It = InWire.find({Inst, Port});
      WireId Local;
      if (It != InWire.end()) {
        Local = It->second;
      } else {
        // Unconnected input: promote to a top-level input port.
        Local = Top.addInput(portLabel({Inst, Port}), Def.wire(Port).Width);
      }
      Sub.Bindings.emplace_back(Port, Local);
    }
    for (WireId Port : Def.Outputs) {
      auto It = OutWire.find({Inst, Port});
      WireId Local;
      if (It != OutWire.end()) {
        Local = It->second;
      } else {
        // Unconnected output: promote to a top-level output port.
        Local = Top.addOutput(portLabel({Inst, Port}), Def.wire(Port).Width);
      }
      Sub.Bindings.emplace_back(Port, Local);
    }
    Top.addInstance(std::move(Sub));
  }

  return D->addModule(std::move(Top));
}
