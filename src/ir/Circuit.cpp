//===- ir/Circuit.cpp - Circuits of connected module instances ------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "ir/Circuit.h"

#include <cassert>

using namespace wiresort;
using namespace wiresort::ir;

InstId Circuit::addInstance(ModuleId Def, std::string InstName) {
  assert(Def < D->numModules() && "unknown module definition");
  Insts.push_back(Instance{Def, std::move(InstName)});
  return static_cast<InstId>(Insts.size() - 1);
}

const std::unordered_map<std::string_view, WireId> &
Circuit::portsOf(ModuleId Def) {
  if (!Ports)
    Ports = std::make_unique<PortIndex>();
  auto [It, Fresh] = Ports->ByDef.try_emplace(Def);
  if (Fresh) {
    const Module &DefM = D->module(Def);
    It->second.reserve(DefM.numPorts());
    for (WireId Port : DefM.Inputs)
      It->second.emplace(Ports->Names.intern(DefM.wire(Port).Name), Port);
    for (WireId Port : DefM.Outputs)
      It->second.emplace(Ports->Names.intern(DefM.wire(Port).Name), Port);
  }
  return It->second;
}

void Circuit::connect(InstId From, const std::string &OutPort, InstId To,
                      const std::string &InPort) {
  assert(From < Insts.size() && To < Insts.size());
  // MegaScale generators resolve millions of port names through here:
  // the interned per-definition index makes each one a hash probe, and
  // definitions repeat across instances so the index amortizes to a few
  // entries per distinct module.
  const auto &FromPorts = portsOf(Insts[From].Def);
  const auto &ToPorts = portsOf(Insts[To].Def);
  auto OutIt = FromPorts.find(std::string_view(OutPort));
  auto InIt = ToPorts.find(std::string_view(InPort));
  assert(OutIt != FromPorts.end() && "unknown output port name");
  assert(InIt != ToPorts.end() && "unknown input port name");
  WireId Out = OutIt == FromPorts.end() ? InvalidId : OutIt->second;
  WireId In = InIt == ToPorts.end() ? InvalidId : InIt->second;
  connectPorts(PortRef{From, Out}, PortRef{To, In});
}

void Circuit::connectPorts(PortRef From, PortRef To) {
  assert(From.Inst < Insts.size() && To.Inst < Insts.size());
  const Module &FromDef = defOf(From.Inst);
  const Module &ToDef = defOf(To.Inst);
  assert(FromDef.isOutput(From.Port) && "connection source must be output");
  assert(ToDef.isInput(To.Port) && "connection target must be input");
  assert(FromDef.wire(From.Port).Width == ToDef.wire(To.Port).Width &&
         "connection width mismatch");
  (void)FromDef;
  (void)ToDef;
  const bool Fresh = DrivenInputs.insert(portKey(To)).second;
  assert(Fresh && "input port already driven");
  (void)Fresh;
  Conns.push_back(Connection{From, To});
}

bool Circuit::isComplete() const {
  // One pass over the connections (output endpoints into a set; input
  // endpoints are already tracked by DrivenInputs), then one pass over
  // the ports — instead of rescanning Conns per port.
  std::unordered_set<uint64_t> DrivingOutputs;
  DrivingOutputs.reserve(Conns.size());
  for (const Connection &C : Conns)
    DrivingOutputs.insert(portKey(C.From));
  for (InstId Inst = 0; Inst != Insts.size(); ++Inst) {
    const Module &Def = defOf(Inst);
    for (WireId Port : Def.Inputs)
      if (!DrivenInputs.count(portKey(PortRef{Inst, Port})))
        return false;
    for (WireId Port : Def.Outputs)
      if (!DrivingOutputs.count(portKey(PortRef{Inst, Port})))
        return false;
  }
  return true;
}

std::string Circuit::portLabel(PortRef Ref) const {
  const std::string &Inst = Insts[Ref.Inst].Name;
  const std::string &Port = defOf(Ref.Inst).wire(Ref.Port).Name;
  std::string Label;
  Label.reserve(Inst.size() + 1 + Port.size());
  Label += Inst;
  Label += '.';
  Label += Port;
  return Label;
}

ModuleId Circuit::seal() {
  Module Top(Name);

  // One local wire per driving output port (fan-out shares the wire).
  // Flat-keyed hash maps: the old std::map paid a node allocation plus
  // O(log n) pointer chases per endpoint, which dominated sealing
  // mega-scale circuits.
  std::unordered_map<uint64_t, WireId> OutWire;
  OutWire.reserve(Conns.size());
  for (const Connection &C : Conns) {
    const uint64_t Key = portKey(C.From);
    if (!OutWire.count(Key)) {
      const Wire &PortWire = defOf(C.From.Inst).wire(C.From.Port);
      OutWire.emplace(Key, Top.addWire(portLabel(C.From), WireKind::Basic,
                                       PortWire.Width));
    }
  }

  std::unordered_map<uint64_t, WireId> InWire;
  InWire.reserve(Conns.size());
  for (const Connection &C : Conns)
    InWire.emplace(portKey(C.To), OutWire.find(portKey(C.From))->second);

  for (InstId Inst = 0; Inst != Insts.size(); ++Inst) {
    const Module &Def = defOf(Inst);
    SubInstance Sub;
    Sub.Def = Insts[Inst].Def;
    Sub.Name = Insts[Inst].Name;
    Sub.Bindings.reserve(Def.numPorts());
    for (WireId Port : Def.Inputs) {
      auto It = InWire.find(portKey(PortRef{Inst, Port}));
      WireId Local;
      if (It != InWire.end()) {
        Local = It->second;
      } else {
        // Unconnected input: promote to a top-level input port.
        Local = Top.addInput(portLabel({Inst, Port}), Def.wire(Port).Width);
      }
      Sub.Bindings.emplace_back(Port, Local);
    }
    for (WireId Port : Def.Outputs) {
      auto It = OutWire.find(portKey(PortRef{Inst, Port}));
      WireId Local;
      if (It != OutWire.end()) {
        Local = It->second;
      } else {
        // Unconnected output: promote to a top-level output port.
        Local = Top.addOutput(portLabel({Inst, Port}), Def.wire(Port).Width);
      }
      Sub.Bindings.emplace_back(Port, Local);
    }
    Top.addInstance(std::move(Sub));
  }

  return D->addModule(std::move(Top));
}
