//===- ir/Ids.h - Dense identifier types for the netlist IR -----*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense integer identifier types used throughout the IR. Wires, nets,
/// registers, memories, and instances are stored in per-module vectors and
/// referenced by index, which keeps the analyses cache-friendly on
/// million-gate designs (the paper's largest design, l15, has 1.5M gates).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_IR_IDS_H
#define WIRESORT_IR_IDS_H

#include <cstdint>
#include <limits>

namespace wiresort::ir {

/// Index of a wire within its owning Module.
using WireId = uint32_t;
/// Index of a net (gate) within its owning Module.
using NetId = uint32_t;
/// Index of a register within its owning Module.
using RegId = uint32_t;
/// Index of a memory within its owning Module.
using MemId = uint32_t;
/// Index of a submodule instance within its owning Module.
using InstId = uint32_t;
/// Index of a module definition within its owning Design.
using ModuleId = uint32_t;

/// Sentinel for "no wire" / "no module".
inline constexpr uint32_t InvalidId = std::numeric_limits<uint32_t>::max();

} // namespace wiresort::ir

#endif // WIRESORT_IR_IDS_H
