//===- ir/Design.h - A library of module definitions ------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Design owns a set of module definitions that may instantiate each
/// other (acyclically). The per-module analyses of the paper are computed
/// once per definition and shared by every instantiation, which is the
/// source of the reuse speedups in Table 3 ("each unique module type only
/// needs to be analyzed once").
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_IR_DESIGN_H
#define WIRESORT_IR_DESIGN_H

#include "ir/Module.h"

#include <optional>
#include <string>
#include <vector>

namespace wiresort::ir {

/// An ordered collection of module definitions.
class Design {
public:
  /// Adds \p M and returns its id. Names should be unique; \ref findModule
  /// returns the first match.
  ModuleId addModule(Module M);

  Module &module(ModuleId Id) { return Modules[Id]; }
  const Module &module(ModuleId Id) const { return Modules[Id]; }
  size_t numModules() const { return Modules.size(); }

  /// Finds a module by name; InvalidId when absent.
  ModuleId findModule(const std::string &Name) const;

  /// Validates every module plus the cross-module properties local
  /// validation cannot see: instance definitions exist, instantiation is
  /// acyclic, bindings name real ports with matching widths, every
  /// instance input port is bound, and every local wire has exactly one
  /// driver once instance outputs are counted.
  std::optional<std::string> validate() const;

  /// \returns module ids in dependency order (instantiated definitions
  /// before their instantiators), or std::nullopt if instantiation is
  /// cyclic.
  std::optional<std::vector<ModuleId>> topologicalModuleOrder() const;

private:
  std::vector<Module> Modules;
};

} // namespace wiresort::ir

#endif // WIRESORT_IR_DESIGN_H
