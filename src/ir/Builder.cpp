//===- ir/Builder.cpp - PyRTL-style construction EDSL ---------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace wiresort;
using namespace wiresort::ir;

V Builder::fresh(uint16_t Width, const char *Hint) {
  return V{M.addWire(freshName(Hint), WireKind::Basic, Width), Width};
}

std::string Builder::freshName(std::string_view Hint) {
  // Composed in a reused member buffer: one allocation (the copy into
  // the Wire) per wire instead of a chain of concatenation temporaries
  // — Builder::fresh runs once per net, millions of times for
  // generator-scale designs.
  NameBuf.assign(Hint);
  NameBuf += '$';
  char Digits[20];
  char *End = Digits + sizeof(Digits);
  char *At = End;
  uint64_t N = NextTmp++;
  do {
    *--At = static_cast<char>('0' + N % 10);
    N /= 10;
  } while (N != 0);
  NameBuf.append(At, End);
  return NameBuf;
}

V Builder::input(const std::string &Name, uint16_t Width) {
  return V{M.addInput(Name, Width), Width};
}

V Builder::output(const std::string &Name, V Src) {
  assert(Src.valid() && "output source must exist");
  WireId Out = M.addOutput(Name, Src.Width);
  M.addNet(Op::Buf, {Src.Id}, Out);
  return V{Out, Src.Width};
}

V Builder::lit(uint64_t Value, uint16_t Width) {
  assert(Width >= 1 && Width <= 64 && "literal width out of range");
  uint64_t Mask = Width == 64 ? ~0ull : ((1ull << Width) - 1);
  WireId Id =
      M.addWire(freshName("const"), WireKind::Const, Width, Value & Mask);
  return V{Id, Width};
}

V Builder::reg(V D, const std::string &Name, uint64_t Init) {
  WireId Q = M.addWire(Name, WireKind::Reg, D.Width);
  M.addRegister(D.Id, Q, Init);
  return V{Q, D.Width};
}

V Builder::regLoop(const std::string &Name, uint16_t Width, uint64_t Init) {
  WireId Q = M.addWire(Name, WireKind::Reg, Width);
  M.addRegister(InvalidId, Q, Init);
  return V{Q, Width};
}

void Builder::drive(V Q, V D) {
  assert(Q.Width == D.Width && "register drive width mismatch");
  for (Register &R : M.Registers) {
    if (R.Q == Q.Id) {
      assert(R.D == InvalidId && "register already driven");
      R.D = D.Id;
      return;
    }
  }
  assert(false && "drive() target is not a regLoop wire");
}

V Builder::memory(const std::string &Name, bool SyncRead, V RAddr, V WAddr,
                  V WData, V WEnable) {
  assert(RAddr.Width == WAddr.Width && "memory address width mismatch");
  assert(WEnable.Width == 1 && "memory write enable must be 1 bit");
  WireId RData = M.addWire(Name + "$rdata",
                           SyncRead ? WireKind::Reg : WireKind::Basic,
                           WData.Width);
  Memory Mem;
  Mem.Name = Name;
  Mem.SyncRead = SyncRead;
  Mem.AddrWidth = RAddr.Width;
  Mem.DataWidth = WData.Width;
  Mem.RAddr = RAddr.Id;
  Mem.RData = RData;
  Mem.WAddr = WAddr.Id;
  Mem.WData = WData.Id;
  Mem.WEnable = WEnable.Id;
  M.addMemory(std::move(Mem));
  return V{RData, WData.Width};
}

V Builder::binary(Op Operation, V A, V B, uint16_t OutWidth) {
  V Out = fresh(OutWidth, opName(Operation));
  M.addNet(Operation, {A.Id, B.Id}, Out.Id);
  return Out;
}

V Builder::andv(V A, V B) {
  assert(A.Width == B.Width);
  return binary(Op::And, A, B, A.Width);
}
V Builder::orv(V A, V B) {
  assert(A.Width == B.Width);
  return binary(Op::Or, A, B, A.Width);
}
V Builder::xorv(V A, V B) {
  assert(A.Width == B.Width);
  return binary(Op::Xor, A, B, A.Width);
}
V Builder::nandv(V A, V B) {
  assert(A.Width == B.Width);
  return binary(Op::Nand, A, B, A.Width);
}
V Builder::norv(V A, V B) {
  assert(A.Width == B.Width);
  return binary(Op::Nor, A, B, A.Width);
}
V Builder::xnorv(V A, V B) {
  assert(A.Width == B.Width);
  return binary(Op::Xnor, A, B, A.Width);
}

V Builder::notv(V A) {
  V Out = fresh(A.Width, "not");
  M.addNet(Op::Not, {A.Id}, Out.Id);
  return Out;
}

V Builder::buf(V A) {
  V Out = fresh(A.Width, "buf");
  M.addNet(Op::Buf, {A.Id}, Out.Id);
  return Out;
}

V Builder::mux(V Sel, V A, V B) {
  assert(Sel.Width == 1 && "mux select must be 1 bit");
  assert(A.Width == B.Width && "mux arm width mismatch");
  V Out = fresh(A.Width, "mux");
  M.addNet(Op::Mux, {Sel.Id, A.Id, B.Id}, Out.Id);
  return Out;
}

V Builder::add(V A, V B) {
  assert(A.Width == B.Width);
  return binary(Op::Add, A, B, A.Width);
}
V Builder::sub(V A, V B) {
  assert(A.Width == B.Width);
  return binary(Op::Sub, A, B, A.Width);
}
V Builder::eq(V A, V B) {
  assert(A.Width == B.Width);
  return binary(Op::Eq, A, B, 1);
}
V Builder::lt(V A, V B) {
  assert(A.Width == B.Width);
  return binary(Op::Lt, A, B, 1);
}

V Builder::slt(V A, V B) {
  assert(A.Width == B.Width && A.Width >= 2 && "slt needs signed operands");
  // Signed compare via sign-bit case split: if signs differ the negative
  // operand is smaller; otherwise unsigned compare decides.
  V SignA = bit(A, A.Width - 1);
  V SignB = bit(B, B.Width - 1);
  V Unsigned = lt(A, B);
  return mux(xorv(SignA, SignB), SignA, Unsigned);
}

V Builder::concat(std::initializer_list<V> Parts) {
  return concat(std::vector<V>(Parts));
}

V Builder::concat(const std::vector<V> &Parts) {
  assert(!Parts.empty() && "concat of nothing");
  uint32_t Total = 0;
  std::vector<WireId> Ids;
  Ids.reserve(Parts.size());
  for (const V &Part : Parts) {
    Total += Part.Width;
    Ids.push_back(Part.Id);
  }
  assert(Total <= 64 && "concat result too wide");
  V Out = fresh(static_cast<uint16_t>(Total), "concat");
  M.addNet(Op::Concat, std::move(Ids), Out.Id);
  return Out;
}

V Builder::slice(V A, uint16_t Hi, uint16_t Lo) {
  assert(Lo <= Hi && Hi < A.Width && "slice out of range");
  uint16_t Width = static_cast<uint16_t>(Hi - Lo + 1);
  V Out = fresh(Width, "slice");
  M.addNet(Op::Select, {A.Id}, Out.Id, Lo);
  return Out;
}

V Builder::bit(V A, uint16_t Index) { return slice(A, Index, Index); }

V Builder::andr(V A) {
  V Out = fresh(1, "andr");
  M.addNet(Op::AndR, {A.Id}, Out.Id);
  return Out;
}
V Builder::orr(V A) {
  V Out = fresh(1, "orr");
  M.addNet(Op::OrR, {A.Id}, Out.Id);
  return Out;
}
V Builder::xorr(V A) {
  V Out = fresh(1, "xorr");
  M.addNet(Op::XorR, {A.Id}, Out.Id);
  return Out;
}

V Builder::zext(V A, uint16_t Width) {
  if (Width == A.Width)
    return A;
  if (Width < A.Width)
    return slice(A, Width - 1, 0);
  return concat({lit(0, static_cast<uint16_t>(Width - A.Width)), A});
}

V Builder::sext(V A, uint16_t Width) {
  assert(Width >= A.Width && "sext cannot shrink");
  if (Width == A.Width)
    return A;
  V Sign = bit(A, A.Width - 1);
  std::vector<V> Parts;
  for (uint16_t I = A.Width; I != Width; ++I)
    Parts.push_back(Sign);
  Parts.push_back(A);
  return concat(Parts);
}

V Builder::eqConst(V A, uint64_t Value) { return eq(A, lit(Value, A.Width)); }

V Builder::shlConst(V A, uint16_t Amount) {
  if (Amount == 0)
    return A;
  if (Amount >= A.Width)
    return lit(0, A.Width);
  return concat({slice(A, static_cast<uint16_t>(A.Width - Amount - 1), 0),
                 lit(0, Amount)});
}

V Builder::shrConst(V A, uint16_t Amount) {
  if (Amount == 0)
    return A;
  if (Amount >= A.Width)
    return lit(0, A.Width);
  return zext(slice(A, A.Width - 1, Amount), A.Width);
}

V Builder::shl(V A, V Amount) {
  // Log-depth barrel shifter: stage i conditionally shifts by 2^i.
  V Acc = A;
  for (uint16_t Stage = 0; (1u << Stage) < A.Width && Stage < Amount.Width;
       ++Stage)
    Acc = mux(bit(Amount, Stage), shlConst(Acc, static_cast<uint16_t>(1u << Stage)),
              Acc);
  return Acc;
}

V Builder::shr(V A, V Amount, bool Arithmetic) {
  V Sign = Arithmetic ? bit(A, A.Width - 1) : lit(0, 1);
  V Acc = A;
  for (uint16_t Stage = 0; (1u << Stage) < A.Width && Stage < Amount.Width;
       ++Stage) {
    uint16_t Shift = static_cast<uint16_t>(1u << Stage);
    // Shift right by Shift, filling with the sign bit.
    std::vector<V> Fill;
    for (uint16_t I = 0; I != Shift; ++I)
      Fill.push_back(Sign);
    Fill.push_back(slice(Acc, Acc.Width - 1, Shift));
    V Shifted = concat(Fill);
    Acc = mux(bit(Amount, Stage), Shifted, Acc);
  }
  return Acc;
}

V Builder::muxN(V Sel, const std::vector<V> &Cases) {
  assert(!Cases.empty() && "muxN needs at least one case");
  // Build a balanced mux tree over the select bits, clamping past-the-end
  // selects to the final case.
  V Result = Cases.back();
  for (size_t I = Cases.size(); I-- > 1;) {
    uint64_t Index = I - 1;
    Result = mux(eqConst(Sel, Index), Cases[Index], Result);
  }
  return Result;
}

std::map<std::string, V>
Builder::instantiate(const Design &D, ModuleId Def,
                     const std::string &InstName,
                     const std::map<std::string, V> &InputBindings) {
  const Module &DefM = D.module(Def);
  SubInstance Inst;
  Inst.Def = Def;
  Inst.Name = InstName;
  for (WireId In : DefM.Inputs) {
    auto It = InputBindings.find(DefM.Wires[In].Name);
    assert(It != InputBindings.end() && "instance input left unbound");
    assert(It->second.Width == DefM.Wires[In].Width &&
           "instance input width mismatch");
    Inst.Bindings.emplace_back(In, It->second.Id);
  }
  std::map<std::string, V> Outs;
  std::string HintBuf;
  HintBuf.reserve(InstName.size() + 16);
  for (WireId Out : DefM.Outputs) {
    HintBuf = InstName;
    HintBuf += '.';
    HintBuf += DefM.Wires[Out].Name;
    V Local = fresh(DefM.Wires[Out].Width, HintBuf.c_str());
    Inst.Bindings.emplace_back(Out, Local.Id);
    Outs.emplace(DefM.Wires[Out].Name, Local);
  }
  M.addInstance(std::move(Inst));
  return Outs;
}

void Builder::requireDriverFromSyncDirect(V Port) {
  PortContract C;
  C.Port = Port.Id;
  C.RequireDriverFromSyncDirect = true;
  M.Contracts.push_back(C);
}

void Builder::requireSinkToSyncDirect(V Port) {
  PortContract C;
  C.Port = Port.Id;
  C.RequireSinkToSyncDirect = true;
  M.Contracts.push_back(C);
}

Module Builder::finish() {
  for (const Register &R : M.Registers) {
    if (R.D == InvalidId) {
      std::fprintf(stderr,
                   "wiresort: register '%s' in module '%s' left undriven\n",
                   M.Wires[R.Q].Name.c_str(), M.Name.c_str());
      std::abort();
    }
  }
  if (auto Err = M.validate()) {
    std::fprintf(stderr, "wiresort: %s\n", Err->c_str());
    std::abort();
  }
  return std::move(M);
}
