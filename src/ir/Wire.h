//===- ir/Wire.h - Wires and wire kinds -------------------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Wire record and its kind taxonomy. Section 3.1 of the paper denotes
/// a wire w_sigma with sigma in {const, reg, in, out, basic}; WireKind is
/// the direct encoding of that set.
///
/// Wires carry a width so that designs can be described at the RTL level
/// with multi-bit "wire vectors" (as in PyRTL); see synth::lower for the
/// expansion to 1-bit primitive gates. Following Section 4 of the paper,
/// the analyses treat an N-bit wire as one unit, which over-approximates
/// per-bit dependencies but remains sound.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_IR_WIRE_H
#define WIRESORT_IR_WIRE_H

#include "ir/Ids.h"

#include <cstdint>
#include <string>

namespace wiresort::ir {

/// The sigma tag of a wire (paper Section 3.1).
enum class WireKind : uint8_t {
  Const, ///< Produces a constant value.
  Reg,   ///< The latched output (Q pin) of a register.
  Input, ///< A module input port.
  Output,///< A module output port.
  Basic, ///< An internal wire connecting nets together.
};

/// Returns a short printable name for \p Kind ("const", "reg", ...).
const char *wireKindName(WireKind Kind);

/// A (possibly multi-bit) wire inside a module.
struct Wire {
  std::string Name;
  WireKind Kind = WireKind::Basic;
  /// Bit width; the Builder enforces 1 <= Width <= 64.
  uint16_t Width = 1;
  /// Value produced when Kind == Const; low Width bits are significant.
  uint64_t ConstValue = 0;
};

} // namespace wiresort::ir

#endif // WIRESORT_IR_WIRE_H
