//===- ir/Design.cpp - A library of module definitions --------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "ir/Design.h"

#include "support/Graph.h"

#include <cassert>

using namespace wiresort;
using namespace wiresort::ir;

ModuleId Design::addModule(Module M) {
  Modules.push_back(std::move(M));
  return static_cast<ModuleId>(Modules.size() - 1);
}

ModuleId Design::findModule(const std::string &Name) const {
  for (ModuleId Id = 0; Id != Modules.size(); ++Id)
    if (Modules[Id].Name == Name)
      return Id;
  return InvalidId;
}

std::optional<std::vector<ModuleId>> Design::topologicalModuleOrder() const {
  Graph G(Modules.size());
  for (ModuleId Id = 0; Id != Modules.size(); ++Id)
    for (const SubInstance &Inst : Modules[Id].Instances)
      if (Inst.Def < Modules.size())
        G.addEdge(Inst.Def, Id);
  return G.topoSort();
}

std::optional<std::string> Design::validate() const {
  for (const Module &M : Modules)
    if (auto Err = M.validate())
      return Err;

  if (!topologicalModuleOrder())
    return std::string("design: module instantiation is cyclic");

  for (const Module &M : Modules) {
    auto fail = [&](const std::string &Msg) {
      return std::optional<std::string>("module '" + M.Name + "': " + Msg);
    };

    // Count drivers again, now including instance outputs, and check that
    // each instance input is bound exactly once.
    std::vector<uint32_t> Drivers(M.Wires.size(), 0);
    for (const Net &N : M.Nets)
      ++Drivers[N.Output];
    for (const Register &R : M.Registers)
      ++Drivers[R.Q];
    for (const Memory &Mem : M.Memories)
      ++Drivers[Mem.RData];

    for (const SubInstance &Inst : M.Instances) {
      if (Inst.Def >= Modules.size())
        return fail("instance '" + Inst.Name + "' has no definition");
      const Module &Def = Modules[Inst.Def];
      std::vector<bool> InputBound(Def.Wires.size(), false);
      for (const auto &[DefPort, Local] : Inst.Bindings) {
        if (DefPort >= Def.Wires.size())
          return fail("instance '" + Inst.Name + "' binds unknown port");
        const Wire &PortWire = Def.Wires[DefPort];
        if (PortWire.Kind != WireKind::Input &&
            PortWire.Kind != WireKind::Output)
          return fail("instance '" + Inst.Name + "' binds non-port wire '" +
                      PortWire.Name + "'");
        if (PortWire.Width != M.Wires[Local].Width)
          return fail("instance '" + Inst.Name + "' width mismatch on '" +
                      PortWire.Name + "'");
        if (PortWire.Kind == WireKind::Output) {
          ++Drivers[Local];
        } else {
          if (InputBound[DefPort])
            return fail("instance '" + Inst.Name + "' binds input '" +
                        PortWire.Name + "' twice");
          InputBound[DefPort] = true;
        }
      }
      for (WireId In : Def.Inputs)
        if (!InputBound[In])
          return fail("instance '" + Inst.Name + "' leaves input '" +
                      Def.Wires[In].Name + "' unbound");
    }

    for (WireId Id = 0; Id != M.Wires.size(); ++Id) {
      const Wire &W = M.Wires[Id];
      bool MayBeUndriven =
          W.Kind == WireKind::Input || W.Kind == WireKind::Const;
      if (MayBeUndriven)
        continue;
      if (Drivers[Id] == 0)
        return fail("wire '" + W.Name + "' has no driver");
      if (Drivers[Id] > 1)
        return fail("wire '" + W.Name + "' has multiple drivers");
    }
  }
  return std::nullopt;
}
