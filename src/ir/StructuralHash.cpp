//===- ir/StructuralHash.cpp - Content hashing of module bodies -----------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "ir/StructuralHash.h"

#include "ir/Module.h"

using namespace wiresort;
using namespace wiresort::ir;

namespace {

/// Streaming hasher with domain-separation tags between record kinds, so
/// that e.g. "one wire, zero nets" never collides with "zero wires, one
/// net" by concatenation. Word-sized fields fold in via one splitmix-style
/// mix per word (gate-level bodies stream millions of them, so this path
/// must not loop per byte); strings use byte-wise FNV-1a.
class Hasher {
public:
  void u64(uint64_t V) { H = hashCombine(H, V); }
  void str(const std::string &S) {
    uint64_t F = 0xcbf29ce484222325ULL; // FNV offset basis.
    for (char C : S) {
      F ^= static_cast<unsigned char>(C);
      F *= 0x100000001b3ULL;
    }
    u64(S.size());
    u64(F);
  }
  void tag(uint64_t T) { u64(0xabcd0000 + T); }
  uint64_t result() const { return H; }

private:
  uint64_t H = 0xcbf29ce484222325ULL;
};

} // namespace

uint64_t ir::structuralHash(const Module &M) {
  // Names (module, wire, memory, instance) are deliberately NOT hashed:
  // a ModuleSummary is expressed purely in WireIds, so renaming cannot
  // change it — and a cache hit patches Id/ModuleName for the requesting
  // design anyway. Leaving names out both lets identically-shaped bodies
  // share one cache entry and keeps the hash pass cheap on gate-level
  // modules with hundreds of thousands of generated wire names.
  Hasher H;

  H.tag(1);
  H.u64(M.Wires.size());
  for (const Wire &W : M.Wires) {
    H.u64(static_cast<uint64_t>(W.Kind));
    H.u64(W.Width);
    H.u64(W.Kind == WireKind::Const ? W.ConstValue : 0);
  }

  H.tag(2);
  H.u64(M.Nets.size());
  for (const Net &N : M.Nets) {
    H.u64(static_cast<uint64_t>(N.Operation));
    H.u64(N.Inputs.size());
    for (WireId In : N.Inputs)
      H.u64(In);
    H.u64(N.Output);
    H.u64(N.Aux);
    H.u64(N.Cover.size());
    for (const std::string &Row : N.Cover)
      H.str(Row);
  }

  H.tag(3);
  H.u64(M.Registers.size());
  for (const Register &R : M.Registers) {
    H.u64(R.D);
    H.u64(R.Q);
    H.u64(R.Init);
  }

  H.tag(4);
  H.u64(M.Memories.size());
  for (const Memory &Mem : M.Memories) {
    H.u64(Mem.SyncRead);
    H.u64(Mem.AddrWidth);
    H.u64(Mem.DataWidth);
    H.u64(Mem.RAddr);
    H.u64(Mem.RData);
    H.u64(Mem.WAddr);
    H.u64(Mem.WData);
    H.u64(Mem.WEnable);
  }

  // Instances: bindings and order, but NOT Def (design-relative; see the
  // header). The SummaryEngine mixes each instance's summary key in
  // separately.
  H.tag(5);
  H.u64(M.Instances.size());
  for (const SubInstance &Inst : M.Instances) {
    H.u64(Inst.Bindings.size());
    for (const auto &[DefPort, Local] : Inst.Bindings) {
      H.u64(DefPort);
      H.u64(Local);
    }
  }

  H.tag(6);
  H.u64(M.Inputs.size());
  for (WireId In : M.Inputs)
    H.u64(In);
  H.u64(M.Outputs.size());
  for (WireId Out : M.Outputs)
    H.u64(Out);

  H.tag(7);
  H.u64(M.Contracts.size());
  for (const PortContract &C : M.Contracts) {
    H.u64(C.Port);
    H.u64(C.RequireDriverFromSyncDirect);
    H.u64(C.RequireSinkToSyncDirect);
  }

  return H.result();
}
