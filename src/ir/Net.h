//===- ir/Net.h - Nets (gates) and operations -------------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A net is the paper's gate tuple (inputs, output, op): multiple wires in,
/// a single wire out, and a combinational operation. The operation set has
/// two strata: 1-bit primitive gates (the only ops that survive
/// synth::lower, and the ops BLIF import produces) and multi-bit RTL ops
/// produced by the Builder EDSL.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_IR_NET_H
#define WIRESORT_IR_NET_H

#include "ir/Ids.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wiresort::ir {

/// Combinational operation computed by a net.
enum class Op : uint8_t {
  // --- Primitive gates (1-bit operands after lowering; the Builder also
  // --- applies them bitwise to equal-width vectors).
  And,
  Or,
  Xor,
  Nand,
  Nor,
  Xnor,
  Not,
  /// Identity. Used for port bindings and aliases; treated as transparent
  /// (zero combinational logic) by the -direct subsort classification.
  Buf,
  /// 2:1 multiplexer; inputs are [sel, a, b], computing sel ? a : b.
  Mux,
  /// Generic truth-table gate imported from BLIF .names; inputs are 1-bit,
  /// the single-output cover rows live in Net::Cover.
  Lut,

  // --- Multi-bit RTL operations (removed by synth::lower).
  /// Unsigned addition; operands and result share a width (carry-out is
  /// dropped).
  Add,
  /// Unsigned subtraction (two's complement; borrow dropped).
  Sub,
  /// Equality compare; result is 1 bit.
  Eq,
  /// Unsigned less-than; result is 1 bit.
  Lt,
  /// Concatenation; inputs listed most-significant first, result width is
  /// the sum of input widths.
  Concat,
  /// Bit slice [Aux + resultWidth - 1 : Aux] of the single input.
  Select,
  /// AND-reduce a vector to 1 bit.
  AndR,
  /// OR-reduce a vector to 1 bit.
  OrR,
  /// XOR-reduce a vector to 1 bit.
  XorR,
};

/// \returns a short mnemonic ("and", "mux", ...) for \p Operation.
const char *opName(Op Operation);

/// \returns true for operations that survive lowering to primitive gates.
bool isPrimitiveOp(Op Operation);

/// A gate: Output = Operation(Inputs).
struct Net {
  Op Operation;
  std::vector<WireId> Inputs;
  WireId Output = InvalidId;
  /// Operation-specific immediate: for Select, the low bit index.
  uint32_t Aux = 0;
  /// For Lut: single-output cover rows in BLIF syntax, e.g. "1-0 1". Each
  /// row is "<input-plane> <output-bit>" with the space removed at parse
  /// time; see parse/Blif.h for the exact encoding.
  std::vector<std::string> Cover;
};

} // namespace wiresort::ir

#endif // WIRESORT_IR_NET_H
