//===- ir/Module.h - Hardware module definitions ----------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Module class: the paper's tuple (inputs, outputs, nets) extended
/// with the stateful elements the formalism abstracts (registers,
/// memories) and with submodule instances, which Section 3.1 argues the
/// analysis generalizes to ("a circuit ... can essentially define a larger
/// module composed of submodules").
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_IR_MODULE_H
#define WIRESORT_IR_MODULE_H

#include "ir/Net.h"
#include "ir/Wire.h"

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace wiresort::ir {

/// A D flip-flop: Q is latched from D on each rising clock edge. All
/// registers share the single implicit design clock (paper Section 3.1
/// assumes a single clock driving all stateful elements).
struct Register {
  WireId D = InvalidId;
  /// The latched output; must be a wire of kind WireKind::Reg.
  WireId Q = InvalidId;
  uint64_t Init = 0;
};

/// A word-addressed memory with one read and one write port.
///
/// The write port is always synchronous. The read port is combinational
/// (\c SyncRead == false, giving a combinational RAddr -> RData
/// dependency) or synchronous (\c SyncRead == true, in which case RData
/// behaves like a register output and RAddr like a register input; this is
/// the class of memories Section 3.7 is concerned with).
struct Memory {
  std::string Name;
  bool SyncRead = false;
  uint16_t AddrWidth = 0;
  uint16_t DataWidth = 0;
  WireId RAddr = InvalidId;
  /// Read data; must be of kind WireKind::Reg when SyncRead, else Basic.
  WireId RData = InvalidId;
  WireId WAddr = InvalidId;
  WireId WData = InvalidId;
  WireId WEnable = InvalidId;
};

/// An instantiation of another module definition inside this one.
///
/// Bindings pair a port wire of the instantiated definition with a local
/// wire of the enclosing module. Input ports read the local wire; output
/// ports drive it.
struct SubInstance {
  ModuleId Def = InvalidId;
  std::string Name;
  /// (definition port WireId, local WireId) pairs.
  std::vector<std::pair<WireId, WireId>> Bindings;
};

/// A composition requirement a module places on one of its ports, used by
/// the synchronous-memory extension of Section 3.7.
struct PortContract {
  WireId Port = InvalidId;
  /// For an input port: whatever drives this port must be
  /// from-sync-direct (e.g. a synchronous memory's read address).
  bool RequireDriverFromSyncDirect = false;
  /// For an output port: whatever consumes this port must be
  /// to-sync-direct (e.g. a memory whose read data must feed a register).
  bool RequireSinkToSyncDirect = false;
};

/// A hardware module: ports, internal wires, gates, state, and submodule
/// instances.
///
/// Invariants (checked by \ref validate):
///  * every non-input, non-const wire has exactly one driver (a net
///    output, a register Q, a memory RData, or an instance output
///    binding);
///  * input and const wires have no driver;
///  * widths agree with each operation's typing rules;
///  * instance bindings refer to ports of the instantiated definition
///    with matching widths (validated by Design::validate, which can see
///    other modules).
class Module {
public:
  std::string Name;

  std::vector<Wire> Wires;
  std::vector<Net> Nets;
  std::vector<Register> Registers;
  std::vector<Memory> Memories;
  std::vector<SubInstance> Instances;
  std::vector<PortContract> Contracts;

  /// Interface ports, in declaration order.
  std::vector<WireId> Inputs;
  std::vector<WireId> Outputs;

  Module() = default;
  explicit Module(std::string Name) : Name(std::move(Name)) {}

  // --- Construction -----------------------------------------------------

  /// Creates a wire and returns its id.
  WireId addWire(std::string Name, WireKind Kind, uint16_t Width = 1,
                 uint64_t ConstValue = 0);

  /// Creates an input port of the given width.
  WireId addInput(std::string Name, uint16_t Width = 1);

  /// Creates an output port of the given width. The port must later be
  /// driven (typically via \ref addNet with Op::Buf).
  WireId addOutput(std::string Name, uint16_t Width = 1);

  /// Creates a net; \returns the id of the new net.
  NetId addNet(Op Operation, std::vector<WireId> Inputs, WireId Output,
               uint32_t Aux = 0, std::vector<std::string> Cover = {});

  /// Creates a register latching \p D into \p Q.
  RegId addRegister(WireId D, WireId Q, uint64_t Init = 0);

  /// Creates a memory; wires for its pins must already exist.
  MemId addMemory(Memory Mem);

  /// Creates a submodule instance.
  InstId addInstance(SubInstance Inst);

  // --- Queries ------------------------------------------------------------

  const Wire &wire(WireId Id) const { return Wires[Id]; }
  size_t numWires() const { return Wires.size(); }

  bool isInput(WireId Id) const { return Wires[Id].Kind == WireKind::Input; }
  bool isOutput(WireId Id) const { return Wires[Id].Kind == WireKind::Output; }

  /// Looks up a port (input or output) by name. \returns InvalidId when no
  /// such port exists.
  WireId findPort(const std::string &Name) const;

  /// Looks up any wire by name (linear scan; intended for tests and
  /// import tooling, not hot paths). \returns InvalidId when absent.
  WireId findWire(const std::string &Name) const;

  /// Total interface port count (paper Table 2's "Ports" column).
  size_t numPorts() const { return Inputs.size() + Outputs.size(); }

  /// Checks local structural invariants. \returns std::nullopt on success
  /// or a human-readable description of the first violation.
  std::optional<std::string> validate() const;

  /// \returns the expected result width of \p Operation applied to wires
  /// of the given widths, or std::nullopt if the operand widths are
  /// ill-typed. \p Aux and \p OutWidth are consulted for Op::Select.
  static std::optional<uint16_t>
  resultWidth(Op Operation, const std::vector<uint16_t> &Widths, uint32_t Aux,
              uint16_t OutWidth);
};

} // namespace wiresort::ir

#endif // WIRESORT_IR_MODULE_H
