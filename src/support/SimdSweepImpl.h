//===- support/SimdSweepImpl.h - Shared OR-sweep loop bodies ----*- C++ -*-===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//
//
// The one definition of the dense and sparse OR-sweep loops, included
// by each per-ISA translation unit under its own namespace:
//
//   #define WS_SIMD_NAMESPACE avx2
//   #define WS_SIMD_ISA_NAME "avx2"
//   #include "support/SimdSweepImpl.h"
//
// The including TU is compiled with that ISA's target flags, so the
// compiler's __AVX2__/__AVX512F__ predefines select the widest OR-store
// the flags allow — the same source specializes differently per TU, and
// the distinct namespaces keep the three instantiations ODR-separate.
// No header guard: this file is designed to be included once per TU,
// and never by anything except the SimdSweep*.cpp variants.
//
//===----------------------------------------------------------------------===//

#if !defined(WS_SIMD_NAMESPACE) || !defined(WS_SIMD_ISA_NAME)
#error "SimdSweepImpl.h must be included with WS_SIMD_NAMESPACE/WS_SIMD_ISA_NAME defined"
#endif

#include "support/SimdSweep.h"

#include <bit>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace wiresort::simd {
namespace WS_SIMD_NAMESPACE {
namespace {

/// OR position P's lane row into each of its successors' rows. The
/// source row is loaded into registers once; kernel CSR guarantees
/// every successor position is strictly greater than P, so the source
/// row is never one of the destinations and the loads can be hoisted.
template <unsigned L>
inline void propagateBlock(uint64_t *Mask, const uint32_t *Row,
                           const uint32_t *Col, uint32_t P) {
  const uint64_t *Src = Mask + std::size_t(P) * L;
  const uint32_t Begin = Row[P], End = Row[P + 1];
  if (Begin == End)
    return;
#if defined(__AVX512F__)
  if constexpr (L == 8) {
    const __m512i S = _mm512_loadu_si512(static_cast<const void *>(Src));
    for (uint32_t Idx = Begin; Idx != End; ++Idx) {
      uint64_t *D = Mask + std::size_t(Col[Idx]) * L;
      _mm512_storeu_si512(
          static_cast<void *>(D),
          _mm512_or_si512(_mm512_loadu_si512(static_cast<const void *>(D)),
                          S));
    }
    return;
  }
#endif
#if defined(__AVX2__)
  if constexpr (L >= 4) {
    const __m256i S0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src));
    __m256i S1{};
    if constexpr (L == 8)
      S1 = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + 4));
    for (uint32_t Idx = Begin; Idx != End; ++Idx) {
      uint64_t *D = Mask + std::size_t(Col[Idx]) * L;
      __m256i *D0 = reinterpret_cast<__m256i *>(D);
      _mm256_storeu_si256(D0, _mm256_or_si256(_mm256_loadu_si256(D0), S0));
      if constexpr (L == 8) {
        __m256i *D1 = reinterpret_cast<__m256i *>(D + 4);
        _mm256_storeu_si256(D1, _mm256_or_si256(_mm256_loadu_si256(D1), S1));
      }
    }
    return;
  }
#endif
  uint64_t S[L];
  for (unsigned I = 0; I != L; ++I)
    S[I] = Src[I];
  for (uint32_t Idx = Begin; Idx != End; ++Idx) {
    uint64_t *D = Mask + std::size_t(Col[Idx]) * L;
    for (unsigned I = 0; I != L; ++I)
      D[I] |= S[I];
  }
}

/// Dense pass: walk the frontier bitmap word by word, peeling set bits
/// with countr_zero. Bitmap order IS topological order (kernel
/// positions ascend topologically), so one pass settles the closure.
template <unsigned L> bool denseSweep(const SweepArgs &A) {
  uint32_t Budget = SweepArgs::PollGrain;
  const uint32_t NumWords = (A.NumBlocks + 63) / 64;
  for (uint32_t W = 0; W != NumWords; ++W) {
    uint64_t Bits = A.Frontier[W];
    while (Bits != 0) {
      const uint32_t P = W * 64 + static_cast<uint32_t>(std::countr_zero(Bits));
      Bits &= Bits - 1;
      if (A.Poll && --Budget == 0) {
        Budget = SweepArgs::PollGrain;
        if (A.Poll(A.PollCtx))
          return false;
      }
      propagateBlock<L>(A.Mask, A.Row, A.Col, P);
    }
  }
  return true;
}

/// Sparse pass: the discovered positions, pre-sorted ascending (=
/// topologically) by the kernel.
template <unsigned L> bool sparseSweep(const SweepArgs &A) {
  uint32_t Budget = SweepArgs::PollGrain;
  for (uint32_t At = 0; At != A.DirtyCount; ++At) {
    if (A.Poll && --Budget == 0) {
      Budget = SweepArgs::PollGrain;
      if (A.Poll(A.PollCtx))
        return false;
    }
    propagateBlock<L>(A.Mask, A.Row, A.Col, A.Dirty[At]);
  }
  return true;
}

bool dense(const SweepArgs &A) {
  switch (A.LaneWords) {
  case 1:
    return denseSweep<1>(A);
  case 2:
    return denseSweep<2>(A);
  case 4:
    return denseSweep<4>(A);
  default:
    return denseSweep<8>(A);
  }
}

bool sparse(const SweepArgs &A) {
  switch (A.LaneWords) {
  case 1:
    return sparseSweep<1>(A);
  case 2:
    return sparseSweep<2>(A);
  case 4:
    return sparseSweep<4>(A);
  default:
    return sparseSweep<8>(A);
  }
}

const SweepOps Ops = {&dense, &sparse, WS_SIMD_ISA_NAME};

} // namespace
} // namespace WS_SIMD_NAMESPACE
} // namespace wiresort::simd

#undef WS_SIMD_NAMESPACE
#undef WS_SIMD_ISA_NAME
