//===- support/Graph.h - Directed-graph algorithms --------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An index-based directed graph with the algorithms the analyses need:
/// Tarjan strongly-connected components (for cycle detection over port
/// graphs and gate netlists), topological ordering (for levelized
/// simulation), and shortest cycle extraction (for loop diagnostics).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_GRAPH_H
#define WIRESORT_SUPPORT_GRAPH_H

#include <cstdint>
#include <optional>
#include <vector>

namespace wiresort {

/// A directed graph over node indices [0, numNodes).
///
/// Nodes are dense integers so callers map their own entities (wires,
/// ports, gates) to indices. Edges are stored in adjacency lists; parallel
/// edges are permitted and harmless for the algorithms provided.
class Graph {
public:
  explicit Graph(size_t NumNodes = 0) : Succs(NumNodes) {}

  size_t numNodes() const { return Succs.size(); }

  /// Appends \p Count fresh nodes and returns the index of the first one.
  size_t addNodes(size_t Count) {
    size_t First = Succs.size();
    Succs.resize(First + Count);
    return First;
  }

  void addEdge(uint32_t From, uint32_t To) { Succs[From].push_back(To); }

  const std::vector<uint32_t> &successors(uint32_t Node) const {
    return Succs[Node];
  }

  size_t numEdges() const {
    size_t N = 0;
    for (const auto &S : Succs)
      N += S.size();
    return N;
  }

  /// Computes strongly connected components with Tarjan's algorithm
  /// (iterative; safe on million-node graphs).
  ///
  /// \returns a vector mapping node -> component id; component ids are
  /// assigned in reverse topological order of the condensation.
  std::vector<uint32_t> tarjanScc(uint32_t &NumComponents) const;

  /// \returns true iff the graph contains a cycle (an SCC of size > 1, or
  /// a self-edge).
  bool hasCycle() const;

  /// Finds one cycle and returns it as a node sequence (first node is
  /// repeated logically, not physically). \returns std::nullopt when the
  /// graph is acyclic.
  std::optional<std::vector<uint32_t>> findCycle() const;

  /// Topological order of an acyclic graph. \returns std::nullopt if the
  /// graph has a cycle.
  std::optional<std::vector<uint32_t>> topoSort() const;

  /// Forward-reachable node set from \p Start (including \p Start),
  /// returned as a dense boolean mask.
  std::vector<bool> reachableFrom(uint32_t Start) const;

  /// Single membership query: does \p From reach \p To? Equivalent to
  /// reachableFrom(From)[To] (so reaches(X, X) is always true) but exits
  /// as soon as \p To is found instead of materializing the full set.
  bool reaches(uint32_t From, uint32_t To) const;

private:
  std::vector<std::vector<uint32_t>> Succs;
};

} // namespace wiresort

#endif // WIRESORT_SUPPORT_GRAPH_H
