//===- support/Wire.h - Versioned binary record streams ---------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one binary serialization layer (wire format v1 — docs/FORMATS.md).
/// Summaries cross three boundaries: the `.wsort` sidecar a vendor ships
/// with opaque IP (Section 4), the on-disk summary cache, and the
/// fork+pipe shard transport. Before this layer each had its own ad-hoc
/// text encoding; all three now read and write length-prefixed, versioned,
/// per-record-checksummed binary records through \ref Writer / \ref
/// Reader, so a summary stream is one format whether it lives in a file,
/// a cache, or a pipe — and can later move onto a socket unchanged.
///
/// Stream shape:
///
///   magic "\xD7WSB" | format version byte | record...
///
/// Every record is `kind(1) | payload-length(varint) | payload |
/// fnv1a64(kind+payload, 8 bytes LE)` — the same FNV-1a checksum cache
/// format v2 used per record, now enforced by the framing itself. Ints
/// travel as LEB128-style varints; strings are interned: the writer
/// assigns each distinct string an id (backed by \ref StringInterner on a
/// \ref Arena) and flushes newly seen strings in StringTable records
/// ahead of the record that references them, so streams stay valid under
/// incremental flushing (the shard pipe writes record by record).
///
/// The first payload byte of a stream is \ref SniffByte (0xD7): no text
/// sidecar can start with it (they begin '#', 'm', or whitespace), so
/// readers sniff one byte to dispatch text vs binary.
///
/// Failure model: the reader never throws and never trusts a damaged
/// frame. Truncation, checksum mismatch, bogus varints, and out-of-range
/// string ids all surface as \ref Reader::Item::Truncated / Corrupt;
/// callers fail closed (quarantine the record, drop the worker's tail,
/// re-infer). Unknown record kinds with intact frames are returned to the
/// caller, which may skip them — that is the forward-compat rule.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_WIRE_H
#define WIRESORT_SUPPORT_WIRE_H

#include "support/Arena.h"
#include "support/Diag.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wiresort::support::wire {

/// First byte of every wire stream; >= 0x80 so no ASCII text file can
/// collide. Readers sniff this byte to dispatch text vs binary.
constexpr unsigned char SniffByte = 0xD7;
/// Full magic: SniffByte then "WSB".
constexpr char Magic[4] = {char(0xD7), 'W', 'S', 'B'};
/// Container format version written after the magic. Bumped only when
/// the *framing* changes; payload schemas version via StreamBegin.
constexpr uint8_t FormatVersion = 1;

/// Typed record kinds. Values are part of the on-disk/on-pipe contract
/// (docs/FORMATS.md); never renumber.
enum class RecordKind : uint8_t {
  StringTable = 1,   ///< Newly interned strings (id order).
  StreamBegin = 2,   ///< Stream kind + payload schema version.
  ModuleSummary = 3, ///< Name-based module summary (sidecars).
  Diag = 4,          ///< One standalone diagnostic.
  CacheEntry = 5,    ///< Cache key + name-based module summary.
  StreamEnd = 6,     ///< Record count; a stream without one is truncated.
  ShardModule = 7,   ///< Shard transport per-module outcome (id-based).
  ServeRequest = 8,  ///< One daemon request (docs/SERVING.md).
  ServeResponse = 9, ///< One daemon response (docs/SERVING.md).
};

/// StreamBegin payload: what producer wrote this stream. Lets a cache
/// reader reject a summary sidecar handed to --cache and vice versa.
enum class StreamKind : uint8_t {
  Summaries = 1, ///< `.wsort` binary sidecar (SummaryIO).
  Cache = 2,     ///< Summary-cache sidecar (cache format v3).
  Shard = 3,     ///< Fork-worker pipe stream (docs/SCALE.md).
  Serve = 4,     ///< Check-service socket stream (docs/SERVING.md).
};

/// FNV-1a 64 over \p Data folded into \p Seed — the per-record checksum
/// (same constants as cache format v2, which this framing supersedes).
uint64_t fnv1a(std::string_view Data,
               uint64_t Seed = 1469598103934665603ull);

/// Interns the `wire.*` trace counters so they are visible — at zero —
/// in every stats report (the same startup contract as the `fault.*`
/// counters; docs/OBSERVABILITY.md).
void internCounters();

/// Builds a wire stream incrementally. beginRecord/put*/endRecord per
/// record; take() drains the bytes framed so far (the shard workers
/// write the pipe record by record), finish() closes the stream with a
/// StreamEnd carrying the record count.
class Writer {
public:
  Writer();

  /// Interns \p S for this stream, assigning an id on first sight. New
  /// strings are flushed in a StringTable record by the enclosing
  /// endRecord(), always ahead of the record that references them.
  uint32_t intern(std::string_view S);

  void beginRecord(RecordKind K);
  void putVarint(uint64_t V);
  void putByte(uint8_t B);
  void putFixed64(uint64_t V);
  /// putVarint(intern(S)).
  void putString(std::string_view S);
  /// Length-prefixed raw bytes, *not* interned: the transport for bulk
  /// one-off payloads (a request's design text, a response's stdout
  /// stream) where interning would only copy them a second time.
  void putBytes(std::string_view Bytes);
  void endRecord();

  /// Convenience: StreamBegin record announcing \p K at \p Version.
  void beginStream(StreamKind K, uint64_t Version);
  /// Closes the stream: one StreamEnd record carrying the count of
  /// records framed before it.
  void finish();

  /// Drains and returns everything framed so far (header included on
  /// first call). The writer remains usable; interning state persists.
  std::string take();
  /// All framed bytes when the stream is built in one piece.
  const std::string &bytes() const { return Out; }

  size_t recordsWritten() const { return Records; }

private:
  void frame(RecordKind K, const std::string &Payload);
  void flushStrings();

  std::string Out;
  std::string Payload;
  Arena StringArena;
  StringInterner Interner{StringArena};
  std::unordered_map<std::string_view, uint32_t> IdOf;
  std::vector<std::string_view> Pending;
  RecordKind CurKind = RecordKind::StringTable;
  bool InRecord = false;
  size_t Records = 0;
};

/// Iterates the records of a wire stream without ever trusting a
/// damaged frame. Zero-copy: payload and string views point into the
/// caller's buffer, which must outlive the reader.
class Reader {
public:
  explicit Reader(std::string_view Bytes) : Data(Bytes) {}

  /// Validates magic + container version. On failure \p Why (when
  /// non-null) names the problem ("bad magic", "unsupported wire format
  /// version N").
  bool readHeader(std::string *Why = nullptr);

  struct Record {
    RecordKind Kind = RecordKind::StringTable;
    std::string_view Payload;
    /// Byte offset of the record's kind byte, for quarantine reports.
    size_t Offset = 0;
  };

  enum class Item : uint8_t {
    Record,    ///< \p R holds the next non-bookkeeping record.
    End,       ///< StreamEnd seen (clean end of stream).
    Exhausted, ///< Bytes ran out exactly between records (no StreamEnd).
    Truncated, ///< Bytes ran out inside a frame.
    Corrupt,   ///< Checksum mismatch or malformed frame.
  };

  /// Advances to the next record, consuming StringTable records
  /// internally (extending the string table). Anything but Item::Record
  /// ends iteration; Truncated/Corrupt mean the rest of the stream is
  /// untrustworthy.
  Item next(Record &R);

  /// The string interned under \p Id, or std::nullopt when out of range
  /// (a damaged or misordered stream).
  std::string_view string(uint64_t Id) const {
    return Id < Strings.size() ? Strings[Id] : std::string_view();
  }
  bool hasString(uint64_t Id) const { return Id < Strings.size(); }

  size_t recordsRead() const { return Records; }

  /// Cursor over one record's payload. All get* return false on
  /// truncation or malformed data, after which the cursor stays failed.
  class Cursor {
  public:
    Cursor(const Record &R, const Reader &Owner)
        : Data(R.Payload), Owner(Owner) {}

    bool getVarint(uint64_t &V);
    bool getByte(uint8_t &B);
    bool getFixed64(uint64_t &V);
    /// Reads a varint string id and resolves it via the owner's table.
    bool getString(std::string_view &S);
    /// Reads length-prefixed raw bytes (inverse of Writer::putBytes);
    /// \p S views into the record payload.
    bool getBytes(std::string_view &S);
    bool atEnd() const { return Pos == Data.size() && !Failed; }
    bool failed() const { return Failed; }

  private:
    std::string_view Data;
    const Reader &Owner;
    size_t Pos = 0;
    bool Failed = false;
  };

private:
  std::string_view Data;
  size_t Pos = 0;
  std::vector<std::string_view> Strings;
  size_t Records = 0;
};

// --- Diag payload codec -----------------------------------------------------
//
// The lossless cross-process Diag transport (replacing the old
// encodeDiag/decodeDiag text lines): strings travel through the
// stream's intern table, everything else as varints. Used inline in
// ShardModule payloads and for standalone Diag records.

/// Appends \p D to the writer's current record payload.
void putDiag(Writer &W, const Diag &D);

/// Decodes one diag from \p C (inverse of putDiag). \returns false on
/// any malformed input — callers treat that as a failed worker, never
/// as a partial diagnostic.
bool getDiag(Reader::Cursor &C, Diag &D);

} // namespace wiresort::support::wire

#endif // WIRESORT_SUPPORT_WIRE_H
