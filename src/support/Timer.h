//===- support/Timer.h - Wall-clock timing utilities ------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight wall-clock timers used by the benchmark harnesses to report
/// analysis and synthesis times in the same units the paper uses (seconds
/// with millisecond precision).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_TIMER_H
#define WIRESORT_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace wiresort {

/// A stopwatch over std::chrono::steady_clock.
///
/// The timer starts running on construction; \ref seconds and friends read
/// the elapsed time without stopping it. Use \ref restart to reuse one
/// instance across benchmark phases.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Resets the start point to now.
  void restart() { Start = Clock::now(); }

  /// \returns elapsed wall-clock time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// \returns elapsed wall-clock time in milliseconds.
  double milliseconds() const { return seconds() * 1e3; }

  /// \returns elapsed wall-clock time in nanoseconds.
  double nanoseconds() const { return seconds() * 1e9; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Runs \p Fn once and returns the wall-clock seconds it took.
template <typename Callable> double timeSeconds(Callable &&Fn) {
  Timer T;
  Fn();
  return T.seconds();
}

} // namespace wiresort

#endif // WIRESORT_SUPPORT_TIMER_H
