//===- support/SimdSweepAvx512.cpp - AVX-512 OR-sweep variant -------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//
//
// AVX-512F instantiation of the sweep loops (an 8-word lane row is one
// zmm register). Compiled with -mavx512f per-file and only when the
// toolchain accepts that flag; reached only through simd::sweepOpsFor's
// CPUID gate.
//
//===----------------------------------------------------------------------===//

#define WS_SIMD_NAMESPACE avx512_impl
#define WS_SIMD_ISA_NAME "avx512"
#include "support/SimdSweepImpl.h"

const wiresort::simd::SweepOps &wiresort::simd::avx512SweepOps() {
  return avx512_impl::Ops;
}
