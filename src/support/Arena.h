//===- support/Arena.h - Bump allocator + string interning ------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump allocator and an arena-backed string interner for
/// construction-heavy paths (see docs/KERNEL.md, "Arena-backed IR
/// construction").
///
/// Building a million-instance `gen::MegaScale` design is dominated by
/// small, never-individually-freed allocations: port-name strings,
/// instance labels, per-connection temporaries. \ref Arena trades
/// individual deallocation away for pointer-bump allocation out of
/// geometrically growing chunks; everything dies together when the
/// arena does. \ref StringInterner layers name deduplication on top:
/// interning copies the bytes into the arena once and returns a
/// std::string_view that is STABLE FOR THE ARENA'S LIFETIME — unlike
/// views into `ir::Module` wire names, whose SSO buffers move when
/// module vectors grow.
///
/// Lifetime rules (the contract consumers must follow):
///  - Memory from \ref Arena::allocate is valid until the arena is
///    destroyed or \ref Arena::reset is called. There is no free().
///  - \ref Arena::reset recycles the first chunk and drops the rest; it
///    invalidates every outstanding pointer AND every interned view of
///    any StringInterner built on the arena (the interner must be
///    cleared with it — StringInterner::clear does both).
///  - Neither class is thread-safe; share per-thread or externally
///    synchronized.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_ARENA_H
#define WIRESORT_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <type_traits>
#include <unordered_set>
#include <vector>

namespace wiresort::support {

/// A chunked bump allocator. Allocation is a pointer bump in the common
/// case; exhausted chunks are retired and a new one (doubling up to
/// \ref MaxChunkBytes) is carved. Oversized requests get a dedicated
/// chunk without disturbing the current bump cursor.
class Arena {
public:
  static constexpr size_t MinChunkBytes = 1 << 16; // 64 KiB
  static constexpr size_t MaxChunkBytes = 1 << 20; // 1 MiB

  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Bump-allocates \p Size bytes at \p Align (a power of two).
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t)) {
    assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
    uintptr_t At = (Cursor + (Align - 1)) & ~uintptr_t(Align - 1);
    if (At + Size > End) {
      grow(Size, Align);
      At = (Cursor + (Align - 1)) & ~uintptr_t(Align - 1);
    }
    Cursor = At + Size;
    Used += Size;
    return reinterpret_cast<void *>(At);
  }

  /// Typed array allocation. T must be trivially destructible — the
  /// arena never runs destructors.
  template <typename T> T *allocateArray(size_t Count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T *>(allocate(Count * sizeof(T), alignof(T)));
  }

  /// Copies \p Text into the arena; the returned view is stable until
  /// destruction/reset. A terminating NUL is appended (not included in
  /// the view) so the result is also usable as a C string.
  std::string_view copyString(std::string_view Text) {
    char *Mem = allocateArray<char>(Text.size() + 1);
    std::memcpy(Mem, Text.data(), Text.size());
    Mem[Text.size()] = '\0';
    return {Mem, Text.size()};
  }

  /// Bytes handed out by \ref allocate since construction/reset
  /// (excludes alignment padding and chunk slack).
  size_t bytesUsed() const { return Used; }
  /// Bytes reserved from the system across all live chunks.
  size_t bytesReserved() const { return Reserved; }

  /// Invalidates ALL outstanding allocations. Keeps the first chunk for
  /// reuse (so a build-check-reset loop stops re-touching the system
  /// allocator) and releases the rest.
  void reset() {
    if (Chunks.size() > 1)
      Chunks.resize(1);
    if (!Chunks.empty()) {
      Cursor = reinterpret_cast<uintptr_t>(Chunks.front().Mem.get());
      End = Cursor + Chunks.front().Size;
      Reserved = Chunks.front().Size;
    } else {
      Cursor = End = 0;
      Reserved = 0;
    }
    Used = 0;
  }

private:
  struct Chunk {
    std::unique_ptr<char[]> Mem;
    size_t Size;
  };

  void grow(size_t Size, size_t Align) {
    size_t Next = Chunks.empty() ? MinChunkBytes : LastChunkBytes * 2;
    if (Next > MaxChunkBytes)
      Next = MaxChunkBytes;
    LastChunkBytes = Next;
    // Oversized requests get a chunk of their own size; the doubling
    // schedule above is unaffected. Remaining slack in the old chunk is
    // abandoned — bounded by one chunk per grow, which the geometric
    // schedule keeps a small fraction of total footprint.
    if (Next < Size + Align)
      Next = Size + Align;
    Chunks.push_back({std::make_unique<char[]>(Next), Next});
    Reserved += Next;
    Cursor = reinterpret_cast<uintptr_t>(Chunks.back().Mem.get());
    End = Cursor + Next;
  }

  std::vector<Chunk> Chunks;
  uintptr_t Cursor = 0, End = 0;
  size_t Used = 0, Reserved = 0;
  size_t LastChunkBytes = 0;
};

/// Arena-backed string deduplication. intern() returns one stable view
/// per distinct string; repeated interning of the same name (MegaScale
/// creates "data_o" a million times) costs a hash lookup, not a copy.
class StringInterner {
public:
  explicit StringInterner(Arena &A) : A(A) {}

  /// Returns the canonical arena-backed view for \p Text, copying it in
  /// on first sight. Stable until \ref clear or arena reset.
  std::string_view intern(std::string_view Text) {
    auto It = Table.find(Text);
    if (It != Table.end())
      return *It;
    std::string_view Stable = A.copyString(Text);
    Table.insert(Stable);
    return Stable;
  }

  size_t size() const { return Table.size(); }

  /// Forgets every interned string. Must accompany (and precede reuse
  /// after) Arena::reset — the views in the table dangle once the arena
  /// recycles its chunks.
  void clear() { Table.clear(); }

private:
  Arena &A;
  std::unordered_set<std::string_view> Table;
};

} // namespace wiresort::support

#endif // WIRESORT_SUPPORT_ARENA_H
