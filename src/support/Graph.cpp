//===- support/Graph.cpp - Directed-graph algorithms ----------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/Graph.h"

#include <cassert>
#include <deque>
#include <limits>

using namespace wiresort;

namespace {
constexpr uint32_t Unvisited = std::numeric_limits<uint32_t>::max();
} // namespace

std::vector<uint32_t> Graph::tarjanScc(uint32_t &NumComponents) const {
  const size_t N = numNodes();
  std::vector<uint32_t> Index(N, Unvisited);
  std::vector<uint32_t> LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<uint32_t> Component(N, Unvisited);
  std::vector<uint32_t> Stack;
  uint32_t NextIndex = 0;
  NumComponents = 0;

  // Iterative Tarjan: each frame records the node and the position within
  // its successor list so the DFS can resume after returning from a child.
  struct Frame {
    uint32_t Node;
    size_t SuccPos;
  };
  std::vector<Frame> CallStack;

  for (uint32_t Root = 0; Root != N; ++Root) {
    if (Index[Root] != Unvisited)
      continue;
    CallStack.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      const auto &Out = Succs[F.Node];
      if (F.SuccPos < Out.size()) {
        uint32_t Child = Out[F.SuccPos++];
        if (Index[Child] == Unvisited) {
          Index[Child] = LowLink[Child] = NextIndex++;
          Stack.push_back(Child);
          OnStack[Child] = true;
          CallStack.push_back({Child, 0});
        } else if (OnStack[Child] && Index[Child] < LowLink[F.Node]) {
          LowLink[F.Node] = Index[Child];
        }
        continue;
      }
      // All successors done: maybe pop an SCC, then return to parent.
      if (LowLink[F.Node] == Index[F.Node]) {
        uint32_t Member;
        do {
          Member = Stack.back();
          Stack.pop_back();
          OnStack[Member] = false;
          Component[Member] = NumComponents;
        } while (Member != F.Node);
        ++NumComponents;
      }
      uint32_t Done = F.Node;
      CallStack.pop_back();
      if (!CallStack.empty()) {
        uint32_t Parent = CallStack.back().Node;
        if (LowLink[Done] < LowLink[Parent])
          LowLink[Parent] = LowLink[Done];
      }
    }
  }
  return Component;
}

bool Graph::hasCycle() const {
  uint32_t NumComponents = 0;
  std::vector<uint32_t> Component = tarjanScc(NumComponents);
  std::vector<uint32_t> Size(NumComponents, 0);
  for (uint32_t C : Component)
    ++Size[C];
  for (uint32_t Node = 0; Node != numNodes(); ++Node) {
    if (Size[Component[Node]] > 1)
      return true;
    for (uint32_t Succ : Succs[Node])
      if (Succ == Node)
        return true;
  }
  return false;
}

std::optional<std::vector<uint32_t>> Graph::findCycle() const {
  uint32_t NumComponents = 0;
  std::vector<uint32_t> Component = tarjanScc(NumComponents);
  std::vector<uint32_t> Size(NumComponents, 0);
  for (uint32_t C : Component)
    ++Size[C];

  // Self-loop: the smallest possible cycle.
  for (uint32_t Node = 0; Node != numNodes(); ++Node)
    for (uint32_t Succ : Succs[Node])
      if (Succ == Node)
        return std::vector<uint32_t>{Node};

  // Otherwise find a node in a nontrivial SCC and walk within the SCC
  // until a node repeats; the walk can never escape an SCC if we only
  // follow intra-SCC edges.
  for (uint32_t Start = 0; Start != numNodes(); ++Start) {
    if (Size[Component[Start]] <= 1)
      continue;
    std::vector<uint32_t> Path;
    std::vector<uint32_t> PosInPath(numNodes(), Unvisited);
    uint32_t Cur = Start;
    while (true) {
      if (PosInPath[Cur] != Unvisited)
        return std::vector<uint32_t>(Path.begin() + PosInPath[Cur],
                                     Path.end());
      PosInPath[Cur] = static_cast<uint32_t>(Path.size());
      Path.push_back(Cur);
      uint32_t Next = Unvisited;
      for (uint32_t Succ : Succs[Cur]) {
        if (Component[Succ] == Component[Cur]) {
          Next = Succ;
          break;
        }
      }
      assert(Next != Unvisited && "nontrivial SCC node lacks intra-SCC edge");
      Cur = Next;
    }
  }
  return std::nullopt;
}

std::optional<std::vector<uint32_t>> Graph::topoSort() const {
  const size_t N = numNodes();
  std::vector<uint32_t> InDegree(N, 0);
  for (uint32_t Node = 0; Node != N; ++Node)
    for (uint32_t Succ : Succs[Node])
      ++InDegree[Succ];

  std::deque<uint32_t> Ready;
  for (uint32_t Node = 0; Node != N; ++Node)
    if (InDegree[Node] == 0)
      Ready.push_back(Node);

  std::vector<uint32_t> Order;
  Order.reserve(N);
  while (!Ready.empty()) {
    uint32_t Node = Ready.front();
    Ready.pop_front();
    Order.push_back(Node);
    for (uint32_t Succ : Succs[Node])
      if (--InDegree[Succ] == 0)
        Ready.push_back(Succ);
  }
  if (Order.size() != N)
    return std::nullopt;
  return Order;
}

bool Graph::reaches(uint32_t From, uint32_t To) const {
  if (From == To)
    return true;
  std::vector<bool> Seen(numNodes(), false);
  std::vector<uint32_t> Work{From};
  Seen[From] = true;
  while (!Work.empty()) {
    uint32_t Node = Work.back();
    Work.pop_back();
    for (uint32_t Succ : Succs[Node]) {
      if (Succ == To)
        return true;
      if (!Seen[Succ]) {
        Seen[Succ] = true;
        Work.push_back(Succ);
      }
    }
  }
  return false;
}

std::vector<bool> Graph::reachableFrom(uint32_t Start) const {
  std::vector<bool> Seen(numNodes(), false);
  std::vector<uint32_t> Work{Start};
  Seen[Start] = true;
  while (!Work.empty()) {
    uint32_t Node = Work.back();
    Work.pop_back();
    for (uint32_t Succ : Succs[Node]) {
      if (!Seen[Succ]) {
        Seen[Succ] = true;
        Work.push_back(Succ);
      }
    }
  }
  return Seen;
}
