//===- support/Diag.h - Structured diagnostics ------------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one diagnostic model every layer reports errors through. The
/// paper's core value proposition is *better error reports at module
/// granularity* (Sections 2, 5.5): a sort violation names interface
/// ports, not post-flatten gate loops. That promise only holds if the
/// tooling renders errors with precise, structured provenance, so every
/// error-producing layer — parse, analysis, synth, sim, the CLI —
/// produces support::Diag records instead of ad-hoc strings:
///
///  * a stable \ref DiagCode (WSxxx) machine contracts can key on;
///  * a \ref Severity;
///  * an optional \ref SrcLoc (file, 1-based line and column) for
///    anything rooted in input text;
///  * an optional witness path of (instance, port) hops — the paper's
///    loop evidence, rendered "fifo1.v_i -> fwd.v_o -> ... -> fifo1.v_i";
///  * ordered key/value notes for everything else worth machining.
///
/// Results travel as \ref Expected<T> (a value or diagnostics) or as a
/// plain \ref DiagList (advisory passes that report zero or more
/// findings). Two renderers are provided: human text (caret-style when
/// the source text is at hand) and newline-delimited JSON, the contract
/// `wiresort-check --format json` is golden-tested against
/// (docs/DIAGNOSTICS.md holds the code registry).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_DIAG_H
#define WIRESORT_SUPPORT_DIAG_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace wiresort::support {

/// Stable diagnostic codes. The numeric value is part of the tool's
/// machine contract (docs/DIAGNOSTICS.md): 1xx analysis, 2xx parse,
/// 3xx simulation, 4xx synthesis, 5xx CLI/IO. Never renumber; retire
/// codes by leaving a gap.
enum class DiagCode : uint16_t {
  // --- 1xx: analysis ---
  WS101_COMB_LOOP = 101,          ///< Combinational loop (module or circuit).
  WS102_ASCRIPTION_MISMATCH = 102,///< Computed sort differs from declared.
  WS103_ASCRIPTION_INCOMPLETE = 103, ///< Opaque module under-ascribed.
  WS104_CONTRACT_VIOLATION = 104, ///< Sync-memory contract violated.
  // --- 2xx: parse ---
  WS201_BLIF_SYNTAX = 201,        ///< Malformed BLIF line.
  WS202_BLIF_STRUCTURE = 202,     ///< Cross-model BLIF inconsistency.
  WS211_VERILOG_LEX = 211,        ///< Verilog lexical error.
  WS212_VERILOG_SYNTAX = 212,     ///< Verilog syntax/elaboration error.
  WS213_VERILOG_UNSUPPORTED = 213,///< Construct outside the subset.
  WS221_SUMMARY_SYNTAX = 221,     ///< Malformed .wsort summary sidecar.
  // --- 3xx: simulation ---
  WS301_SIM_BUILD = 301,          ///< Simulator construction failed.
  WS302_SIM_COMB_LOOP = 302,      ///< Module cannot be levelized.
  // --- 4xx: synthesis ---
  WS401_NETLIST_CYCLE = 401,      ///< Gate-level cycle in a flat netlist.
  // --- 5xx: CLI / IO ---
  WS501_IO_ERROR = 501,           ///< File unreadable/unwritable.
  WS502_CACHE_FORMAT = 502,       ///< --cache file is not a sidecar.
  WS503_USAGE = 503,              ///< Bad command line.
  // --- 6xx: robustness (docs/ROBUSTNESS.md) ---
  WS601_CANCELLED = 601,          ///< Run cancelled by deadline/token.
  WS602_CACHE_IO = 602,           ///< Cache save/load I/O degraded.
  WS603_CACHE_CORRUPT = 603,      ///< Corrupt cache record quarantined.
  WS604_WORKER_PANIC = 604,       ///< Worker task threw; contained.
  WS605_CACHE_MIGRATED = 605,     ///< Cache sidecar upgraded in place.
  WS606_TRANSPORT_TIMEOUT = 606,  ///< Socket read/write deadline expired.
  WS607_SERVER_BUSY = 607,        ///< Admission queue full; retryable.
};

/// The stable spelling ("WS101_COMB_LOOP") used in JSON output.
const char *diagCodeName(DiagCode Code);

enum class Severity : uint8_t { Note, Warning, Error };

const char *severityName(Severity S);

/// A position in input text; lines and columns are 1-based, 0 = unknown.
struct SrcLoc {
  std::string File;
  size_t Line = 0;
  size_t Col = 0;

  bool operator==(const SrcLoc &O) const {
    return File == O.File && Line == O.Line && Col == O.Col;
  }
};

/// One hop of a loop witness: an instance (or module) name plus the port
/// (or wire) it enters through. Rendered "instance.port".
struct WitnessHop {
  std::string Instance;
  std::string Port;

  std::string label() const { return Instance + "." + Port; }
  bool operator==(const WitnessHop &O) const {
    return Instance == O.Instance && Port == O.Port;
  }
};

/// One structured diagnostic record.
class Diag {
public:
  Diag() = default;
  Diag(DiagCode Code, std::string Message,
       Severity Sev = Severity::Error)
      : Code(Code), Sev(Sev), Message(std::move(Message)) {}

  // Fluent construction; each returns *this for chaining.
  Diag &&withLoc(SrcLoc Loc) && {
    this->Loc = std::move(Loc);
    return std::move(*this);
  }
  Diag &&withHop(std::string Instance, std::string Port) && {
    Witness.push_back({std::move(Instance), std::move(Port)});
    return std::move(*this);
  }
  Diag &&withNote(std::string Key, std::string Value) && {
    Notes.emplace_back(std::move(Key), std::move(Value));
    return std::move(*this);
  }

  DiagCode code() const { return Code; }
  Severity severity() const { return Sev; }
  const std::string &message() const { return Message; }
  const std::optional<SrcLoc> &loc() const { return Loc; }
  const std::vector<WitnessHop> &witness() const { return Witness; }
  const std::vector<std::pair<std::string, std::string>> &notes() const {
    return Notes;
  }
  /// First value recorded under \p Key, or "" when absent.
  std::string note(const std::string &Key) const;

  void addHop(std::string Instance, std::string Port) {
    Witness.push_back({std::move(Instance), std::move(Port)});
  }

  /// The witness as "instance.port" labels (the shape circuitDot and the
  /// older tests consume).
  std::vector<std::string> witnessLabels() const;

  /// One-line human rendering: "file:line:col: message: a.x -> b.y ->
  /// a.x". The witness repeats its first hop to show closure, matching
  /// the paper's cyclic-path presentation.
  std::string describe() const;

  /// Structural equality over every machine-visible field; what the
  /// determinism suites compare across serial/parallel/warm runs.
  bool operator==(const Diag &O) const {
    return Code == O.Code && Sev == O.Sev && Message == O.Message &&
           Loc == O.Loc && Witness == O.Witness && Notes == O.Notes;
  }

private:
  DiagCode Code = DiagCode::WS501_IO_ERROR;
  Severity Sev = Severity::Error;
  std::string Message;
  std::optional<SrcLoc> Loc;
  std::vector<WitnessHop> Witness;
  std::vector<std::pair<std::string, std::string>> Notes;
};

/// An ordered list of diagnostics. Deliberately *not* convertible to
/// bool: the pre-refactor APIs returned std::optional where truthy meant
/// failure, so an implicit conversion here would silently flip every
/// migrated call site's polarity. Ask hasError() explicitly.
class DiagList {
public:
  DiagList() = default;
  /*implicit*/ DiagList(Diag D) { Diags.push_back(std::move(D)); }

  void add(Diag D) { Diags.push_back(std::move(D)); }
  void append(const DiagList &Other) {
    Diags.insert(Diags.end(), Other.Diags.begin(), Other.Diags.end());
  }

  bool empty() const { return Diags.empty(); }
  size_t size() const { return Diags.size(); }
  const Diag &operator[](size_t I) const { return Diags[I]; }
  Diag &operator[](size_t I) { return Diags[I]; }
  auto begin() const { return Diags.begin(); }
  auto end() const { return Diags.end(); }

  /// Any diagnostic with severity >= Error?
  bool hasError() const {
    for (const Diag &D : Diags)
      if (D.severity() == Severity::Error)
        return true;
    return false;
  }
  /// The first error-severity diagnostic (must exist).
  const Diag &firstError() const;

  /// Human rendering, one line per diagnostic.
  std::string describe() const;

  bool operator==(const DiagList &O) const { return Diags == O.Diags; }

private:
  std::vector<Diag> Diags;
};

/// Result type for passes whose only output is diagnostics.
using Status = DiagList;

/// A value or the diagnostics explaining its absence. operator bool and
/// operator* keep the std::optional feel of the pre-refactor APIs:
/// truthy means "has a value".
template <typename T> class [[nodiscard]] Expected {
public:
  /*implicit*/ Expected(T Value) : Value(std::move(Value)) {}
  /*implicit*/ Expected(Diag D) { Diags.add(std::move(D)); }
  /*implicit*/ Expected(DiagList Ds) : Diags(std::move(Ds)) {
    assert(Diags.hasError() && "valueless Expected needs an error diag");
  }

  bool hasValue() const { return Value.has_value(); }
  explicit operator bool() const { return hasValue(); }

  T &operator*() & { return *Value; }
  const T &operator*() const & { return *Value; }
  T &&operator*() && { return *std::move(Value); }
  T *operator->() { return &*Value; }
  const T *operator->() const { return &*Value; }
  T &value() & { return *Value; }
  const T &value() const & { return *Value; }

  const DiagList &diags() const { return Diags; }
  DiagList &diags() { return Diags; }
  /// Human rendering of the diagnostics (empty string on success).
  std::string describe() const { return Diags.describe(); }

private:
  std::optional<T> Value;
  DiagList Diags;
};

// --- Renderers --------------------------------------------------------------

/// Human text rendering of \p D. When \p SourceText (the full text of
/// D.loc()->File) is supplied and the diag has a location, the offending
/// line is echoed with a caret under the column:
///
///   design.blif:3:1: error[WS201_BLIF_SYNTAX]: .model expects a name
///     .model
///     ^
std::string renderText(const Diag &D,
                       const std::string *SourceText = nullptr);
std::string renderText(const DiagList &Ds,
                       const std::string *SourceText = nullptr);

/// One JSON object, one line, no trailing newline. Field order is fixed
/// (severity, code, message, then loc/witness/notes when present) so the
/// output is byte-stable for golden tests.
std::string renderJson(const Diag &D);
/// Newline-delimited JSON: renderJson per diag, one per line.
std::string renderJson(const DiagList &Ds);

// Cross-process Diag transport lives in support/Wire.h (wire::putDiag /
// wire::getDiag): diagnostics travel as checksummed binary wire records
// on the shard pipe, not as ad-hoc escaped text lines.

} // namespace wiresort::support

#endif // WIRESORT_SUPPORT_DIAG_H
