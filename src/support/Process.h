//===- support/Process.h - Fork+pipe worker plumbing ------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal fork+pipe plumbing for process-isolated workers, used by the
/// analysis::ShardedEngine to run Stage-1 shards in separate address
/// spaces (docs/SCALE.md). A worker is a callback run in a forked child
/// with a write end of a pipe; the parent collects the child's entire
/// output and its exit status. The protocol on the pipe is the caller's
/// business — this layer only guarantees that
///
///  * a child that dies mid-write (crash, _exit, kill) is observed as a
///    truncated stream plus a non-zero/signalled exit, never a hang;
///  * the parent never deadlocks against pipe backpressure as long as it
///    joins children in the order their output is wanted (each join
///    drains its pipe completely before waiting on the pid);
///  * a worker never unwinds into the parent's stack: the callback runs
///    inside the child only, and the child always leaves via _exit.
///
/// Fork safety: spawn() must be called while the process is
/// single-threaded or at a point where no lock the child could need is
/// held by another thread. The ShardedEngine forks its wave workers
/// before creating any thread of its own, which is the intended usage.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_PROCESS_H
#define WIRESORT_SUPPORT_PROCESS_H

#include <functional>
#include <optional>
#include <string>

namespace wiresort::support {

/// What a joined child left behind.
struct ChildResult {
  /// Exit code when the child exited normally; -1 when signalled.
  int ExitCode = -1;
  /// True when the child was terminated by a signal (the signal number
  /// is in \ref Signal).
  bool Signalled = false;
  int Signal = 0;
  /// Everything the child wrote to its pipe before exiting. A child
  /// that died mid-protocol yields a truncated (possibly empty) string;
  /// the caller's protocol parser is expected to treat that as a failed
  /// worker, not trust partial output.
  std::string Output;

  bool cleanExit() const { return !Signalled && ExitCode == 0; }
};

/// A forked worker with a one-way pipe back to the parent.
class ChildProcess {
public:
  ChildProcess() = default;
  ChildProcess(ChildProcess &&O) noexcept;
  ChildProcess &operator=(ChildProcess &&O) noexcept;
  ChildProcess(const ChildProcess &) = delete;
  ChildProcess &operator=(const ChildProcess &) = delete;
  ~ChildProcess();

  /// Forks a child that runs \p Body(WriteFd) and then _exit(0)s. The
  /// callback must never return control to the caller's stack in the
  /// child: if Body throws, the child _exit(124)s. \returns std::nullopt
  /// when fork(2) itself fails (the caller degrades to in-process
  /// execution).
  static std::optional<ChildProcess>
  spawn(const std::function<void(int WriteFd)> &Body);

  /// Drains the pipe to EOF, then reaps the child. Safe to call once.
  ChildResult join();

  bool valid() const { return Pid > 0; }

private:
  long Pid = -1;
  int ReadFd = -1;
};

/// Writes all of \p Data to \p Fd, retrying on EINTR/short writes.
/// \returns false on any other error (e.g. the parent closed its end).
bool writeAll(int Fd, const std::string &Data);

} // namespace wiresort::support

#endif // WIRESORT_SUPPORT_PROCESS_H
