//===- support/Socket.cpp - Unix-domain socket plumbing -------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include "support/FailPoint.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace wiresort::support;
using namespace wiresort::support::sock;

namespace {

/// The symbolic spelling of \p Err for the handful of errnos callers key
/// behavior on (the client maps ECONNREFUSED vs ENOENT to distinct exit
/// codes). Everything else falls back to the number — strerror text is
/// locale-shaped and unfit for machine contracts.
std::string errnoName(int Err) {
  switch (Err) {
  case ECONNREFUSED:
    return "ECONNREFUSED";
  case ENOENT:
    return "ENOENT";
  case ENAMETOOLONG:
    return "ENAMETOOLONG";
  case EPIPE:
    return "EPIPE";
  case ECONNRESET:
    return "ECONNRESET";
  case EACCES:
    return "EACCES";
  case EAGAIN:
    return "EAGAIN";
  default:
    return "errno:" + std::to_string(Err);
  }
}

Diag ioFail(const char *Op, const std::string &Path) {
  int Err = errno;
  return Diag(DiagCode::WS501_IO_ERROR,
              std::string("socket ") + Op + " failed")
      .withNote("path", Path)
      .withNote("detail", std::strerror(Err))
      .withNote("errno", errnoName(Err));
}

Diag timeoutFail(const char *Op, size_t BytesSoFar) {
  return Diag(DiagCode::WS606_TRANSPORT_TIMEOUT,
              std::string("socket ") + Op + " deadline expired")
      .withNote("bytes", std::to_string(BytesSoFar));
}

/// Fills \p Addr for \p Path; false when the path overflows sun_path.
bool makeAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.size() >= sizeof(Addr.sun_path))
    return false;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

/// Blocks until \p Fd is ready for \p Events, the deadline fires, or an
/// unrecoverable poll error. Polls in <=100 ms ticks so a cancel() on
/// the deadline's token is honored promptly even under a long budget.
/// \returns 1 ready, 0 deadline expired, -1 poll error (errno set).
int pollUntil(int Fd, short Events, const Deadline *DL) {
  for (;;) {
    if (DL && DL->expired())
      return 0;
    pollfd P{Fd, Events, 0};
    int N = ::poll(&P, 1, /*timeout-ms=*/100);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N > 0)
      return 1;
  }
}

/// splitmix64: the same tiny deterministic mixer the failpoint machinery
/// uses, so a (Seed, Attempt) pair always draws the same jitter.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

} // namespace

Listener::Listener(Listener &&O) noexcept
    : Fd(std::exchange(O.Fd, -1)), Path(std::move(O.Path)) {
  O.Path.clear();
}

Listener &Listener::operator=(Listener &&O) noexcept {
  if (this != &O) {
    close();
    Fd = std::exchange(O.Fd, -1);
    Path = std::move(O.Path);
    O.Path.clear();
  }
  return *this;
}

Expected<Listener> Listener::open(const std::string &Path, int Backlog) {
  sockaddr_un Addr;
  if (!makeAddr(Path, Addr)) {
    errno = ENAMETOOLONG;
    return ioFail("bind", Path);
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return ioFail("socket", Path);
  // A stale socket file from a crashed previous daemon would fail the
  // bind with EADDRINUSE even though nobody is listening; restarting
  // over it is the expected recovery, so unlink first.
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Diag D = ioFail("bind", Path);
    ::close(Fd);
    return D;
  }
  if (::listen(Fd, Backlog) != 0) {
    Diag D = ioFail("listen", Path);
    ::close(Fd);
    ::unlink(Path.c_str());
    return D;
  }
  Listener L;
  L.Fd = Fd;
  L.Path = Path;
  return L;
}

int Listener::acceptOnce(const std::atomic<bool> &Stop) {
  while (Fd >= 0 && !Stop.load(std::memory_order_acquire)) {
    pollfd P{Fd, POLLIN, 0};
    int N = ::poll(&P, 1, /*timeout-ms=*/100);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      continue; // Poll tick: re-check Stop.
    int Conn = ::accept(Fd, nullptr, nullptr);
    if (Conn >= 0)
      return Conn;
    if (errno == EINTR || errno == ECONNABORTED)
      continue;
    return -1;
  }
  return -1;
}

void Listener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (!Path.empty()) {
    ::unlink(Path.c_str());
    Path.clear();
  }
}

Expected<int> sock::connectTo(const std::string &Path) {
  sockaddr_un Addr;
  if (!makeAddr(Path, Addr)) {
    errno = ENAMETOOLONG;
    return ioFail("connect", Path);
  }
  if (WS_FAILPOINT("client.connect.refuse")) {
    errno = ECONNREFUSED;
    return ioFail("connect", Path);
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return ioFail("socket", Path);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Diag D = ioFail("connect", Path);
    ::close(Fd);
    return D;
  }
  return Fd;
}

uint64_t sock::nextBackoffMs(const RetryPolicy &P, uint64_t PrevMs,
                             unsigned Attempt) {
  uint64_t Base = std::max<uint64_t>(P.BaseMs, 1);
  uint64_t Cap = std::max<uint64_t>(P.CapMs, Base);
  // Decorrelated jitter: uniform(Base, 3 * previous), clamped to the
  // cap. First retry (PrevMs == 0) starts from the base exactly.
  uint64_t Hi = std::max<uint64_t>(Base, 3 * std::min(PrevMs, Cap));
  uint64_t Span = Hi - Base + 1;
  uint64_t Draw = mix64(P.Seed ^ (0x5e'72'76'65ull + Attempt)) % Span;
  return std::min(Cap, Base + Draw);
}

Expected<int> sock::dialWithRetry(const std::string &Path,
                                  const RetryPolicy &P) {
  unsigned Attempts = std::max(P.MaxAttempts, 1u);
  uint64_t SleepMs = 0;
  for (unsigned A = 0;; ++A) {
    Expected<int> Fd = connectTo(Path);
    if (Fd)
      return Fd;
    // Only "daemon not there yet" is worth retrying; everything else
    // (permissions, oversize path) is permanent.
    std::string Err = Fd.diags().firstError().note("errno");
    bool Retryable = Err == "ECONNREFUSED" || Err == "ENOENT";
    if (!Retryable || A + 1 >= Attempts) {
      DiagList Out = Fd.diags();
      Diag Last = Out[0];
      Out[0] = std::move(Last).withNote("attempts", std::to_string(A + 1));
      return Out;
    }
    SleepMs = nextBackoffMs(P, SleepMs, A);
    std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
  }
}

Status sock::writeAll(int Fd, std::string_view Bytes, const Deadline *DL) {
  bool Bounded = DL && DL->active();
  size_t Off = 0;
  while (Off != Bytes.size()) {
    if (Bounded) {
      int Ready = pollUntil(Fd, POLLOUT, DL);
      if (Ready == 0)
        return timeoutFail("write", Off);
      if (Ready < 0)
        return ioFail("write", "<socket>");
    }
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return ioFail("write", "<socket>");
    }
    Off += static_cast<size_t>(N);
  }
  return {};
}

Expected<std::string> sock::readAll(int Fd, const Deadline *DL,
                                    uint64_t MaxBytes) {
  bool Bounded = DL && DL->active();
  std::string Out;
  char Buf[64 * 1024];
  for (;;) {
    // Never buffer more than MaxBytes + 1: the extra byte is the
    // oversize witness, and reading stops there — a 10 GiB request
    // costs the server cap + 1 bytes of memory, not 10 GiB. The + 1 is
    // saturating: MaxBytes == UINT64_MAX must not wrap the budget to 0
    // and turn every request into an instant empty read.
    size_t Want = sizeof(Buf);
    if (MaxBytes) {
      uint64_t Budget =
          MaxBytes < UINT64_MAX ? MaxBytes + 1 : UINT64_MAX;
      if (Out.size() >= Budget)
        return Out;
      Want = static_cast<size_t>(std::min<uint64_t>(Want, Budget - Out.size()));
    }
    if (Bounded) {
      int Ready = pollUntil(Fd, POLLIN, DL);
      if (Ready == 0)
        return timeoutFail("read", Out.size());
      if (Ready < 0)
        return ioFail("read", "<socket>");
    }
    ssize_t N = ::read(Fd, Buf, Want);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return ioFail("read", "<socket>");
    }
    if (N == 0)
      return Out;
    Out.append(Buf, static_cast<size_t>(N));
  }
}

void sock::shutdownWrite(int Fd) { ::shutdown(Fd, SHUT_WR); }

void sock::discardUntilEof(int Fd, const Deadline *DL) {
  bool Bounded = DL && DL->active();
  char Buf[64 * 1024];
  for (;;) {
    if (Bounded && pollUntil(Fd, POLLIN, DL) != 1)
      return; // Deadline expired or poll error: give up on lingering.
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return; // EOF or error: the peer is done (or gone) either way.
  }
}

void sock::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}
