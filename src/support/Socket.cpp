//===- support/Socket.cpp - Unix-domain socket plumbing -------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace wiresort::support;
using namespace wiresort::support::sock;

namespace {

Diag ioFail(const char *Op, const std::string &Path) {
  return Diag(DiagCode::WS501_IO_ERROR,
              std::string("socket ") + Op + " failed")
      .withNote("path", Path)
      .withNote("detail", std::strerror(errno));
}

/// Fills \p Addr for \p Path; false when the path overflows sun_path.
bool makeAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.size() >= sizeof(Addr.sun_path))
    return false;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

Listener::Listener(Listener &&O) noexcept
    : Fd(std::exchange(O.Fd, -1)), Path(std::move(O.Path)) {
  O.Path.clear();
}

Listener &Listener::operator=(Listener &&O) noexcept {
  if (this != &O) {
    close();
    Fd = std::exchange(O.Fd, -1);
    Path = std::move(O.Path);
    O.Path.clear();
  }
  return *this;
}

Expected<Listener> Listener::open(const std::string &Path, int Backlog) {
  sockaddr_un Addr;
  if (!makeAddr(Path, Addr)) {
    errno = ENAMETOOLONG;
    return ioFail("bind", Path);
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return ioFail("socket", Path);
  // A stale socket file from a crashed previous daemon would fail the
  // bind with EADDRINUSE even though nobody is listening; restarting
  // over it is the expected recovery, so unlink first.
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Diag D = ioFail("bind", Path);
    ::close(Fd);
    return D;
  }
  if (::listen(Fd, Backlog) != 0) {
    Diag D = ioFail("listen", Path);
    ::close(Fd);
    ::unlink(Path.c_str());
    return D;
  }
  Listener L;
  L.Fd = Fd;
  L.Path = Path;
  return L;
}

int Listener::acceptOnce(const std::atomic<bool> &Stop) {
  while (Fd >= 0 && !Stop.load(std::memory_order_acquire)) {
    pollfd P{Fd, POLLIN, 0};
    int N = ::poll(&P, 1, /*timeout-ms=*/100);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      continue; // Poll tick: re-check Stop.
    int Conn = ::accept(Fd, nullptr, nullptr);
    if (Conn >= 0)
      return Conn;
    if (errno == EINTR || errno == ECONNABORTED)
      continue;
    return -1;
  }
  return -1;
}

void Listener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (!Path.empty()) {
    ::unlink(Path.c_str());
    Path.clear();
  }
}

Expected<int> sock::connectTo(const std::string &Path) {
  sockaddr_un Addr;
  if (!makeAddr(Path, Addr)) {
    errno = ENAMETOOLONG;
    return ioFail("connect", Path);
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return ioFail("socket", Path);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Diag D = ioFail("connect", Path);
    ::close(Fd);
    return D;
  }
  return Fd;
}

Status sock::writeAll(int Fd, std::string_view Bytes) {
  size_t Off = 0;
  while (Off != Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return ioFail("write", "<socket>");
    }
    Off += static_cast<size_t>(N);
  }
  return {};
}

Expected<std::string> sock::readAll(int Fd) {
  std::string Out;
  char Buf[64 * 1024];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return ioFail("read", "<socket>");
    }
    if (N == 0)
      return Out;
    Out.append(Buf, static_cast<size_t>(N));
  }
}

void sock::shutdownWrite(int Fd) { ::shutdown(Fd, SHUT_WR); }

void sock::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}
