//===- support/Simd.h - Runtime kernel ISA dispatch -------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime ISA selection for the reachability kernel's OR-sweep inner
/// loops (see docs/KERNEL.md).
///
/// The sweep loops exist in up to three variants — portable scalar,
/// AVX2, and AVX-512 — compiled into dedicated translation units with
/// per-file target flags so the rest of the binary stays baseline-ISA.
/// The active variant is chosen once, at first use, from CPUID
/// (\ref bestSupportedIsa) unless overridden by the
/// `WIRESORT_KERNEL_ISA={scalar,avx2,avx512}` environment variable; an
/// unsupported override silently clamps down to the best supported ISA
/// so a pinned CI matrix never crashes on an older host. Tests and
/// benches switch variants in-process via \ref setActiveIsa.
///
/// Lane width is controlled independently: \ref maxLaneWords caps how
/// many 64-bit lane words a kernel row may carry (1/2/4/8, i.e. up to
/// 512 sources per sweep), defaulting to 8 and overridable with
/// `WIRESORT_KERNEL_LANES` or \ref setMaxLaneWords. ISA and lane width
/// are orthogonal: every ISA variant handles every lane width, so
/// forcing `scalar` still exercises multi-word rows.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_SIMD_H
#define WIRESORT_SUPPORT_SIMD_H

#include <cstdint>

namespace wiresort::simd {

/// The instruction-set variants the sweep loops are compiled for.
/// Ordering is meaningful: higher enumerators are wider ISAs, and an
/// unsupported request clamps downward.
enum class KernelIsa : uint8_t { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// Stable lowercase name ("scalar", "avx2", "avx512") — the same
/// spelling `WIRESORT_KERNEL_ISA` accepts and reports/benches print.
const char *isaName(KernelIsa Isa);

/// True iff \p Isa's sweep variant was both compiled in and is
/// executable on this CPU. Scalar is always supported.
bool isaSupported(KernelIsa Isa);

/// The widest supported ISA on this host (CPUID-probed once).
KernelIsa bestSupportedIsa();

/// The ISA the kernel dispatches to. Resolved once on first call:
/// `WIRESORT_KERNEL_ISA` if set (clamped to supported), else
/// \ref bestSupportedIsa. Thread-safe.
KernelIsa activeIsa();

/// Test/bench hook: force the active ISA in-process. \returns false
/// (and changes nothing) if \p Isa is not supported on this host.
bool setActiveIsa(KernelIsa Isa);

/// Upper bound on lane words per kernel row (1, 2, 4, or 8). Resolved
/// once on first call from `WIRESORT_KERNEL_LANES` (invalid values are
/// ignored), defaulting to 8.
uint32_t maxLaneWords();

/// Test/bench hook: cap lane words in-process. Values other than
/// 1/2/4/8 are rejected. \returns false if rejected.
bool setMaxLaneWords(uint32_t LaneWords);

} // namespace wiresort::simd

#endif // WIRESORT_SUPPORT_SIMD_H
