//===- support/Process.cpp - Fork+pipe worker plumbing --------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/Process.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace wiresort::support {

ChildProcess::ChildProcess(ChildProcess &&O) noexcept
    : Pid(O.Pid), ReadFd(O.ReadFd) {
  O.Pid = -1;
  O.ReadFd = -1;
}

ChildProcess &ChildProcess::operator=(ChildProcess &&O) noexcept {
  if (this != &O) {
    if (ReadFd >= 0)
      ::close(ReadFd);
    if (Pid > 0) {
      int Ignored = 0;
      ::waitpid(static_cast<pid_t>(Pid), &Ignored, 0);
    }
    Pid = O.Pid;
    ReadFd = O.ReadFd;
    O.Pid = -1;
    O.ReadFd = -1;
  }
  return *this;
}

ChildProcess::~ChildProcess() {
  if (ReadFd >= 0)
    ::close(ReadFd);
  if (Pid > 0) {
    int Ignored = 0;
    ::waitpid(static_cast<pid_t>(Pid), &Ignored, 0);
  }
}

std::optional<ChildProcess>
ChildProcess::spawn(const std::function<void(int WriteFd)> &Body) {
  int Fds[2];
  if (::pipe(Fds) != 0)
    return std::nullopt;

  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Fds[0]);
    ::close(Fds[1]);
    return std::nullopt;
  }

  if (Pid == 0) {
    // Child. A worker whose parent dies first would get SIGPIPE on its
    // next write; let writeAll observe EPIPE and the child _exit instead.
    ::signal(SIGPIPE, SIG_IGN);
    ::close(Fds[0]);
    int Code = 0;
    try {
      Body(Fds[1]);
    } catch (...) {
      Code = 124;
    }
    ::close(Fds[1]);
    ::_exit(Code);
  }

  // Parent.
  ::close(Fds[1]);
  ChildProcess C;
  C.Pid = Pid;
  C.ReadFd = Fds[0];
  return C;
}

ChildResult ChildProcess::join() {
  ChildResult R;
  if (Pid <= 0)
    return R;

  if (ReadFd >= 0) {
    char Buf[1 << 16];
    for (;;) {
      ssize_t N = ::read(ReadFd, Buf, sizeof(Buf));
      if (N > 0) {
        R.Output.append(Buf, static_cast<size_t>(N));
        continue;
      }
      if (N < 0 && errno == EINTR)
        continue;
      break; // EOF or hard error: the child is done writing either way.
    }
    ::close(ReadFd);
    ReadFd = -1;
  }

  int Wstatus = 0;
  pid_t Waited;
  do {
    Waited = ::waitpid(static_cast<pid_t>(Pid), &Wstatus, 0);
  } while (Waited < 0 && errno == EINTR);
  Pid = -1;

  if (Waited > 0) {
    if (WIFEXITED(Wstatus)) {
      R.ExitCode = WEXITSTATUS(Wstatus);
    } else if (WIFSIGNALED(Wstatus)) {
      R.Signalled = true;
      R.Signal = WTERMSIG(Wstatus);
    }
  }
  return R;
}

bool writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}

} // namespace wiresort::support
