//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the per-module analyses. The
/// paper's Stage-1 inference is embarrassingly modular (Section 5.5): a
/// summary depends only on the module body plus its sub-summaries, so
/// independent modules of the instantiation DAG can be inferred
/// concurrently. Tasks here are module-sized (microseconds to seconds), so
/// the design optimizes for simplicity and verifiable synchronization over
/// lock-free throughput: each worker owns a mutex-protected deque, pops
/// LIFO from its own deque for locality, and steals FIFO from a victim
/// when empty. submit() is safe from any thread, including from inside a
/// running task (the SummaryEngine schedules dependents exactly that way).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_THREADPOOL_H
#define WIRESORT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace wiresort {

/// Fixed-size pool of workers with per-worker deques and work stealing.
///
/// Lifetime: workers start in the constructor and join in the destructor.
/// wait() blocks until every submitted task (including tasks submitted by
/// running tasks) has finished; the pool is reusable after wait().
class ThreadPool {
public:
  /// Creates \p NumThreads workers; 0 picks hardware_concurrency (at
  /// least 1). A pool of size 1 still runs tasks on its single worker
  /// thread, preserving the submit/wait discipline of larger pools.
  explicit ThreadPool(unsigned NumThreads = 0) {
    if (NumThreads == 0) {
      NumThreads = std::thread::hardware_concurrency();
      if (NumThreads == 0)
        NumThreads = 1;
    }
    Queues.resize(NumThreads);
    Workers.reserve(NumThreads);
    for (unsigned I = 0; I != NumThreads; ++I)
      Workers.emplace_back([this, I] { workerLoop(I); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Stopping = true;
    }
    WorkAvailable.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues \p Task. Safe from any thread. Tasks submitted from a
  /// worker go to that worker's own deque (LIFO pop gives child-first
  /// execution, the classic work-stealing locality win); external
  /// submissions are spread round-robin.
  void submit(std::function<void()> Task) {
    size_t Target;
    int Self = currentWorker();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      ++Pending;
      Target = Self >= 0 ? static_cast<size_t>(Self)
                         : NextQueue++ % Queues.size();
      Queues[Target].push_back(std::move(Task));
    }
    WorkAvailable.notify_one();
  }

  /// Blocks until all submitted tasks have completed. Must not be called
  /// from inside a task (it would deadlock a single-threaded pool).
  void wait() {
    std::unique_lock<std::mutex> Lock(Mutex);
    AllDone.wait(Lock, [this] { return Pending == 0; });
  }

  /// Exceptions that escaped tasks since the last drain, in completion
  /// order. A throwing task on a plain std::thread would std::terminate
  /// the process; here the worker catches it, keeps serving the queue,
  /// and parks the std::exception_ptr for the owner to collect after
  /// wait() — the containment contract docs/ROBUSTNESS.md describes.
  /// (The SummaryEngine additionally catches per-module so a panic can
  /// be *attributed*; this is the backstop for everything else.)
  std::vector<std::exception_ptr> drainExceptions() {
    std::unique_lock<std::mutex> Lock(Mutex);
    return std::exchange(Escaped, {});
  }

private:
  /// Index of the calling thread within this pool, or -1 for external
  /// threads.
  int currentWorker() const {
    std::thread::id Me = std::this_thread::get_id();
    for (size_t I = 0; I != Workers.size(); ++I)
      if (Workers[I].get_id() == Me)
        return static_cast<int>(I);
    return -1;
  }

  /// Pops a task for worker \p Self: own deque back first, then steal
  /// from the front of the first non-empty victim. Caller holds Mutex.
  bool popTask(size_t Self, std::function<void()> &Out) {
    if (!Queues[Self].empty()) {
      Out = std::move(Queues[Self].back());
      Queues[Self].pop_back();
      return true;
    }
    for (size_t Off = 1; Off != Queues.size(); ++Off) {
      std::deque<std::function<void()>> &Victim =
          Queues[(Self + Off) % Queues.size()];
      if (!Victim.empty()) {
        Out = std::move(Victim.front());
        Victim.pop_front();
        return true;
      }
    }
    return false;
  }

  void workerLoop(size_t Self) {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        WorkAvailable.wait(Lock, [&] {
          return Stopping || popTask(Self, Task);
        });
        if (!Task && Stopping)
          return;
      }
      std::exception_ptr Thrown;
      try {
        Task();
      } catch (...) {
        Thrown = std::current_exception();
      }
      Task = nullptr; // Release captures before reporting completion.
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        if (Thrown)
          Escaped.push_back(std::move(Thrown));
        if (--Pending == 0)
          AllDone.notify_all();
      }
    }
  }

  std::vector<std::thread> Workers;
  /// One deque per worker; all guarded by Mutex (task granularity is
  /// module-sized, so one lock is not a bottleneck and is trivially
  /// TSan-clean).
  std::vector<std::deque<std::function<void()>>> Queues;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t Pending = 0;
  size_t NextQueue = 0;
  bool Stopping = false;
  /// Exceptions that escaped tasks, awaiting drainExceptions().
  std::vector<std::exception_ptr> Escaped;
};

} // namespace wiresort

#endif // WIRESORT_SUPPORT_THREADPOOL_H
