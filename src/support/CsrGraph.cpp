//===- support/CsrGraph.cpp - Frozen CSR graph + bit-parallel reach -------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/CsrGraph.h"

#include "support/FailPoint.h"
#include "support/Simd.h"
#include "support/SimdSweep.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace wiresort;

CsrGraph CsrGraph::freeze(const Graph &G, Edges Dirs, Layout L) {
  static trace::Counter &Freezes = trace::counter("kernel.freezes");
  static trace::Counter &Repairs =
      trace::counter("kernel.freeze_repairs");
  static trace::Histogram &FreezeUs = trace::histogram("kernel.freeze_us");
  trace::Span FreezeSpan("kernel.freeze", "kernel");
  const bool Timed = trace::countersEnabled();
  const uint64_t T0 = Timed ? trace::detail::nowNs() : 0;
  Freezes.add();
  CsrGraph C;
  const size_t N = G.numNodes();
  FreezeSpan.note("nodes", static_cast<uint64_t>(N));

  // Forward CSR: count, prefix-sum, fill. The fill pass doubles as the
  // reverse-edge count (in-degrees), saving one scan of the edge array.
  C.FwdRow.assign(N + 1, 0);
  for (uint32_t Node = 0; Node != N; ++Node)
    C.FwdRow[Node + 1] =
        C.FwdRow[Node] + static_cast<uint32_t>(G.successors(Node).size());
  C.FwdCol.resize(C.FwdRow[N]);
  C.RevRow.assign(N + 1, 0);
  std::vector<uint32_t> DescTargets;
  for (uint32_t Node = 0, At = 0; Node != N; ++Node)
    for (uint32_t Succ : G.successors(Node)) {
      C.FwdCol[At++] = Succ;
      ++C.RevRow[Succ + 1];
      if (Succ <= Node)
        DescTargets.push_back(Succ);
    }

  // Reverse row offsets (in-degrees) always — counted during the fill.
  // The reverse column fill is a full extra pass over the edges, so it
  // is materialized only when the caller asked for predecessors.
  for (uint32_t Node = 0; Node != N; ++Node)
    C.RevRow[Node + 1] += C.RevRow[Node];
  if (Dirs == ForwardAndReverse) {
    C.RevCol.resize(C.FwdCol.size());
    std::vector<uint32_t> Next(C.RevRow.begin(), C.RevRow.end() - 1);
    for (uint32_t Node = 0; Node != N; ++Node)
      for (uint32_t Idx = C.FwdRow[Node]; Idx != C.FwdRow[Node + 1]; ++Idx)
        C.RevCol[Next[C.FwdCol[Idx]]++] = Node;
  }

  // Synthesized netlists create wires in dependency order, so comb edges
  // usually ascend — node ids then ARE a topological order, the graph is
  // proven acyclic by the fill pass above, and the kernel layout is the
  // identity: the forward CSR doubles as the kernel CSR at zero cost.
  // Every cycle must contain a descending edge, so an all-ascending
  // graph needs no further proof.
  if (DescTargets.empty()) {
    if (Timed)
      FreezeUs.record((trace::detail::nowNs() - T0) / 1000);
    return C;
  }
  // Descending edges defeated the identity-order proof; every one is a
  // repair the near-sorted pass (or Tarjan fallback) must absorb.
  Repairs.add(DescTargets.size());

  // Near-sorted repair: only nodes downstream of a descending edge can
  // be mis-placed by the identity order. That repair set R (the forward
  // closure of the descending-edge targets) is successor-closed, so a
  // valid order is "non-R nodes by ascending id, then R topologically":
  // edges inside non-R ascend (a descending one would put its target in
  // R), edges leaving non-R land in R, and edges inside R never escape.
  // Any cycle lies entirely inside R, so ordering R alone also settles
  // acyclicity — on a netlist with a handful of late-bound output wires
  // this replaces a full Kahn pass with work proportional to |R|.
  bool Cyclic = false;
  std::vector<uint32_t> TopoOrder;
  {
    std::vector<uint8_t> InR(N, 0);
    std::vector<uint32_t> RNodes, Work;
    auto enter = [&](uint32_t Node) {
      if (!InR[Node]) {
        InR[Node] = 1;
        RNodes.push_back(Node);
        Work.push_back(Node);
      }
    };
    for (uint32_t Target : DescTargets)
      enter(Target);
    while (!Work.empty()) {
      const uint32_t Node = Work.back();
      Work.pop_back();
      for (uint32_t Idx = C.FwdRow[Node]; Idx != C.FwdRow[Node + 1]; ++Idx)
        enter(C.FwdCol[Idx]);
    }

    // In-R in-degrees: edges from outside R are satisfied by the time R
    // starts, so only R-internal edges (whose sources are all in R,
    // successor-closedness again) gate a node's readiness.
    std::vector<uint32_t> InDegR(N, 0);
    for (uint32_t Node : RNodes)
      for (uint32_t Idx = C.FwdRow[Node]; Idx != C.FwdRow[Node + 1]; ++Idx)
        ++InDegR[C.FwdCol[Idx]];
    std::vector<uint32_t> ROrder;
    ROrder.reserve(RNodes.size());
    for (uint32_t Node : RNodes)
      if (InDegR[Node] == 0)
        ROrder.push_back(Node);
    for (size_t At = 0; At != ROrder.size(); ++At) {
      const uint32_t Node = ROrder[At];
      for (uint32_t Idx = C.FwdRow[Node]; Idx != C.FwdRow[Node + 1]; ++Idx)
        if (--InDegR[C.FwdCol[Idx]] == 0)
          ROrder.push_back(C.FwdCol[Idx]);
    }
    Cyclic = ROrder.size() != RNodes.size();

    if (!Cyclic) {
      // A valid topological order, used below as the kernel layout's
      // level-computation schedule.
      TopoOrder.reserve(N);
      for (uint32_t Node = 0; Node != N; ++Node)
        if (!InR[Node])
          TopoOrder.push_back(Node);
      TopoOrder.insert(TopoOrder.end(), ROrder.begin(), ROrder.end());
    }
  }

  if (!Cyclic) {
    if (L == Plain) {
      C.KernelLayoutOk = false;
      if (Timed)
        FreezeUs.record((trace::detail::nowNs() - T0) / 1000);
      return C;
    }
    // Blocked kernel layout, acyclic repaired case. The repair order is
    // already a valid total order (every edge position-ascending): non-R
    // nodes keep ascending netlist ids — the order they were created in,
    // so row/col accesses stay as sequential as the identity case — and
    // the repair set is appended topologically. Using it directly keeps
    // the layout pass at one O(N + E) kernel-CSR fill; a longest-path
    // level sort buys nothing the sweep can measure and costs ~5x the
    // rest of freeze on register-dominated graphs.
    C.KernelPos.resize(N);
    for (uint32_t P = 0; P != N; ++P)
      C.KernelPos[TopoOrder[P]] = P;
    C.KernelRow.reserve(N + 1);
    C.KernelRow.push_back(0);
    C.KernelCol.resize(C.FwdCol.size());
    for (uint32_t P = 0, At = 0; P != N; ++P) {
      const uint32_t Node = TopoOrder[P];
      for (uint32_t Idx = C.FwdRow[Node]; Idx != C.FwdRow[Node + 1]; ++Idx)
        C.KernelCol[At++] = C.KernelPos[C.FwdCol[Idx]];
      C.KernelRow.push_back(At);
    }
    if (Timed)
      FreezeUs.record((trace::detail::nowNs() - T0) / 1000);
    return C;
  }

  // Cyclic: condense once with Tarjan. Component ids come out in reverse
  // topological order of the condensation, and the member nodes are
  // grouped for the kernel-layout pass and witness decoding.
  C.Acyclic = false;
  C.Comp = G.tarjanScc(C.NumComps);
  C.CompRow.assign(C.NumComps + 1, 0);
  for (uint32_t CompId : C.Comp)
    ++C.CompRow[CompId + 1];
  for (uint32_t CompId = 0; CompId != C.NumComps; ++CompId)
    C.CompRow[CompId + 1] += C.CompRow[CompId];
  C.CompNodes.resize(N);
  {
    std::vector<uint32_t> Next(C.CompRow.begin(), C.CompRow.end() - 1);
    for (uint32_t Node = 0; Node != N; ++Node)
      C.CompNodes[Next[C.Comp[Node]]++] = Node;
  }
  if (L == Plain) {
    C.KernelLayoutOk = false;
    if (Timed)
      FreezeUs.record((trace::detail::nowNs() - T0) / 1000);
    return C;
  }

  // Blocked kernel layout, cyclic case: position = reversed Tarjan id
  // (Tarjan ids are reverse-topological, so reversing makes every
  // cross-component edge position-ascending). The kernel CSR collapses
  // each SCC to one row — intra-block edges dropped, parallel
  // cross-block edges deduplicated with a stamp — so sweeps never
  // re-walk componentNodes or re-OR a successor per member edge.
  C.KernelPos.resize(C.NumComps);
  for (uint32_t CompId = 0; CompId != C.NumComps; ++CompId)
    C.KernelPos[CompId] = C.NumComps - 1 - CompId;
  C.KernelRow.reserve(C.NumComps + 1);
  C.KernelRow.push_back(0);
  std::vector<uint32_t> Stamp(C.NumComps, UINT32_MAX);
  for (uint32_t P = 0; P != C.NumComps; ++P) {
    const uint32_t CompId = C.NumComps - 1 - P;
    for (uint32_t Node : C.componentNodes(CompId))
      for (uint32_t Idx = C.FwdRow[Node]; Idx != C.FwdRow[Node + 1]; ++Idx) {
        const uint32_t Q = C.KernelPos[C.Comp[C.FwdCol[Idx]]];
        if (Q != P && Stamp[Q] != P) {
          Stamp[Q] = P;
          C.KernelCol.push_back(Q);
        }
      }
    C.KernelRow.push_back(static_cast<uint32_t>(C.KernelCol.size()));
  }
  if (Timed)
    FreezeUs.record((trace::detail::nowNs() - T0) / 1000);
  return C;
}

ReachabilityKernel::ReachabilityKernel(const CsrGraph &G, Scratch &S,
                                       uint32_t LaneWords)
    : G(&G), S(&S), L(LaneWords), NumBlocks(G.numComponents()) {
  assert(G.hasKernelLayout() &&
         "kernel requires a freeze with Layout::Kernel");
  assert((LaneWords == 1 || LaneWords == 2 || LaneWords == 4 ||
          LaneWords == 8) &&
         "lane rows are 1, 2, 4 or 8 words");
  // assign() reuses capacity: with a per-thread Scratch this is a
  // memset, not a malloc, for every module after the largest.
  S.Mask.assign(std::size_t(NumBlocks) * L, 0);
  S.Frontier.assign((NumBlocks + 63) / 64, 0);
  S.Dirty.clear();
  S.Work.clear();
}

uint32_t ReachabilityKernel::laneWordsFor(size_t SourceCount) {
  uint32_t Words = static_cast<uint32_t>((SourceCount + WordBits - 1) /
                                         WordBits);
  if (Words <= 1)
    Words = 1;
  else if (Words <= 2)
    Words = 2;
  else if (Words <= 4)
    Words = 4;
  else
    Words = 8;
  const uint32_t Cap = simd::maxLaneWords();
  return Words < Cap ? Words : Cap;
}

bool ReachabilityKernel::sweep(const uint32_t *Sources, uint32_t Count,
                               const support::Deadline *DL) {
  assert(Count <= laneCount() &&
         "a sweep carries at most laneWords()*64 source lanes");
  static trace::Counter &Sweeps = trace::counter("kernel.sweeps");
  static trace::Counter &WordsSwept =
      trace::counter("kernel.words_swept");
  static trace::Counter &FrontierBlocks =
      trace::counter("kernel.frontier_blocks");
  static trace::Counter &DensePasses =
      trace::counter("kernel.sweeps_dense");
  static trace::Counter &SparsePasses =
      trace::counter("kernel.sweeps_sparse");
  static trace::Histogram &FrontierUs =
      trace::histogram("kernel.frontier_us");
  static trace::Histogram &SweepUs = trace::histogram("kernel.sweep_us");
  Sweeps.add();
  const bool Timed = trace::countersEnabled();

  // Deadline poll, amortized: a time check per block would dominate the
  // sweep, so with an active deadline we pay one decrement per block and
  // read the clock (plus the kernel.cancel failpoint, which simulates
  // expiry deterministically) every PollGrain blocks. A null DL costs
  // one predicted branch.
  constexpr uint32_t PollGrain = simd::SweepArgs::PollGrain;
  struct PollState {
    const support::Deadline *DL;
    bool Aborted = false;
  } PS{DL};
  // Capture-free so it doubles as the SweepArgs::Poll function pointer.
  constexpr auto pollNow = [](void *Ctx) -> bool {
    auto *P = static_cast<PollState *>(Ctx);
    if (!P->Aborted && (P->DL->expired() || WS_FAILPOINT("kernel.cancel")))
      P->Aborted = true;
    return P->Aborted;
  };

  // Sparse reset of the previous sweep's footprint: between sweeps the
  // lane rows and the frontier bitmap are all-zero except at Dirty
  // positions.
  for (uint32_t P : S->Dirty) {
    uint64_t *Row = S->Mask.data() + std::size_t(P) * L;
    for (uint32_t I = 0; I != L; ++I)
      Row[I] = 0;
    S->Frontier[P / 64] &= ~(uint64_t{1} << (P % 64));
  }
  S->Dirty.clear();
  if (DL && (DL->expired() || WS_FAILPOINT("kernel.cancel")))
    return false;
  if (Count == 0)
    return true;

  // Phase 1 (frontier): seed the lane bits and discover every block
  // reachable from the sources, entirely in kernel position space over
  // the blocked CSR. Dirty doubles as the reset list for the next
  // sweep; the bitmap is the dense pass's iteration order.
  const uint64_t TF0 = Timed ? trace::detail::nowNs() : 0;
  const uint32_t *Row = G->kernelRowData();
  const uint32_t *Col = G->kernelColData();
  uint64_t *Mask = S->Mask.data();
  auto visit = [&](uint32_t P) {
    uint64_t &W = S->Frontier[P / 64];
    const uint64_t Bit = uint64_t{1} << (P % 64);
    if (!(W & Bit)) {
      W |= Bit;
      S->Dirty.push_back(P);
      S->Work.push_back(P);
    }
  };
  for (uint32_t K = 0; K != Count; ++K) {
    const uint32_t P = posOf(Sources[K]);
    Mask[std::size_t(P) * L + K / WordBits] |= uint64_t{1}
                                               << (K % WordBits);
    visit(P);
  }
  uint32_t Budget = PollGrain;
  while (!S->Work.empty()) {
    if (DL && --Budget == 0) {
      Budget = PollGrain;
      if (pollNow(&PS)) {
        S->Work.clear(); // The worklist is reused; leave it empty on abort.
        return false;
      }
    }
    const uint32_t P = S->Work.back();
    S->Work.pop_back();
    for (uint32_t Idx = Row[P]; Idx != Row[P + 1]; ++Idx)
      visit(Col[Idx]);
  }
  FrontierBlocks.add(S->Dirty.size());
  // One L-word lane row per discovered block is what phase 2 settles.
  WordsSwept.add(S->Dirty.size() * L);
  if (Timed) {
    const uint64_t TF1 = trace::detail::nowNs();
    FrontierUs.record((TF1 - TF0) / 1000);
  }

  // Phase 2 (sweep): propagate lane rows over exactly the discovered
  // positions in ascending (= topological) position order through the
  // runtime-dispatched ISA variant. When the sources reach most of the
  // graph, scanning the frontier bitmap beats sorting the discovery
  // list; when they reach a sliver, sorting the sliver wins.
  const uint64_t TS0 = Timed ? trace::detail::nowNs() : 0;
  simd::SweepArgs A;
  A.Row = Row;
  A.Col = Col;
  A.Mask = Mask;
  A.Frontier = S->Frontier.data();
  A.Dirty = S->Dirty.data();
  A.DirtyCount = static_cast<uint32_t>(S->Dirty.size());
  A.NumBlocks = NumBlocks;
  A.LaneWords = L;
  A.Poll = DL ? +pollNow : static_cast<bool (*)(void *)>(nullptr);
  A.PollCtx = &PS;
  const simd::SweepOps &Ops = simd::sweepOps();
  bool Ok;
  if (S->Dirty.size() >= NumBlocks / 8) {
    DensePasses.add();
    Ok = Ops.Dense(A);
  } else {
    SparsePasses.add();
    std::sort(S->Dirty.begin(), S->Dirty.end());
    Ok = Ops.Sparse(A);
  }
  if (Timed && Ok)
    SweepUs.record((trace::detail::nowNs() - TS0) / 1000);
  return Ok;
}
