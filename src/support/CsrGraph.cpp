//===- support/CsrGraph.cpp - Frozen CSR graph + bit-parallel reach -------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/CsrGraph.h"

#include "support/FailPoint.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace wiresort;

CsrGraph CsrGraph::freeze(const Graph &G, Edges Dirs) {
  static trace::Counter &Freezes = trace::counter("kernel.freezes");
  static trace::Counter &Repairs =
      trace::counter("kernel.freeze_repairs");
  trace::Span FreezeSpan("kernel.freeze", "kernel");
  Freezes.add();
  CsrGraph C;
  const size_t N = G.numNodes();
  FreezeSpan.note("nodes", static_cast<uint64_t>(N));

  // Forward CSR: count, prefix-sum, fill. The fill pass doubles as the
  // reverse-edge count (in-degrees), saving one scan of the edge array.
  C.FwdRow.assign(N + 1, 0);
  for (uint32_t Node = 0; Node != N; ++Node)
    C.FwdRow[Node + 1] =
        C.FwdRow[Node] + static_cast<uint32_t>(G.successors(Node).size());
  C.FwdCol.resize(C.FwdRow[N]);
  C.RevRow.assign(N + 1, 0);
  std::vector<uint32_t> DescTargets;
  for (uint32_t Node = 0, At = 0; Node != N; ++Node)
    for (uint32_t Succ : G.successors(Node)) {
      C.FwdCol[At++] = Succ;
      ++C.RevRow[Succ + 1];
      if (Succ <= Node)
        DescTargets.push_back(Succ);
    }

  // Reverse row offsets (in-degrees) always — counted during the fill.
  // The reverse column fill is a full extra pass over the edges, so it
  // is materialized only when the caller asked for predecessors.
  for (uint32_t Node = 0; Node != N; ++Node)
    C.RevRow[Node + 1] += C.RevRow[Node];
  if (Dirs == ForwardAndReverse) {
    C.RevCol.resize(C.FwdCol.size());
    std::vector<uint32_t> Next(C.RevRow.begin(), C.RevRow.end() - 1);
    for (uint32_t Node = 0; Node != N; ++Node)
      for (uint32_t Idx = C.FwdRow[Node]; Idx != C.FwdRow[Node + 1]; ++Idx)
        C.RevCol[Next[C.FwdCol[Idx]]++] = Node;
  }

  // Synthesized netlists create wires in dependency order, so comb edges
  // usually ascend — node ids then ARE a topological order, the graph is
  // proven acyclic by the fill pass above, and TopoOrder/TopoPos stay
  // empty (identity). Every cycle must contain a descending edge, so an
  // all-ascending graph needs no further proof.
  if (DescTargets.empty())
    return C;
  // Descending edges defeated the identity-order proof; every one is a
  // repair the near-sorted pass (or Tarjan fallback) must absorb.
  Repairs.add(DescTargets.size());

  // Near-sorted repair: only nodes downstream of a descending edge can
  // be mis-placed by the identity order. That repair set R (the forward
  // closure of the descending-edge targets) is successor-closed, so a
  // valid order is "non-R nodes by ascending id, then R topologically":
  // edges inside non-R ascend (a descending one would put its target in
  // R), edges leaving non-R land in R, and edges inside R never escape.
  // Any cycle lies entirely inside R, so ordering R alone also settles
  // acyclicity — on a netlist with a handful of late-bound output wires
  // this replaces a full Kahn pass with work proportional to |R|.
  bool Cyclic = false;
  {
    std::vector<uint8_t> InR(N, 0);
    std::vector<uint32_t> RNodes, Work;
    auto enter = [&](uint32_t Node) {
      if (!InR[Node]) {
        InR[Node] = 1;
        RNodes.push_back(Node);
        Work.push_back(Node);
      }
    };
    for (uint32_t Target : DescTargets)
      enter(Target);
    while (!Work.empty()) {
      const uint32_t Node = Work.back();
      Work.pop_back();
      for (uint32_t Idx = C.FwdRow[Node]; Idx != C.FwdRow[Node + 1]; ++Idx)
        enter(C.FwdCol[Idx]);
    }

    // In-R in-degrees: edges from outside R are satisfied by the time R
    // starts, so only R-internal edges (whose sources are all in R,
    // successor-closedness again) gate a node's readiness.
    std::vector<uint32_t> InDegR(N, 0);
    for (uint32_t Node : RNodes)
      for (uint32_t Idx = C.FwdRow[Node]; Idx != C.FwdRow[Node + 1]; ++Idx)
        ++InDegR[C.FwdCol[Idx]];
    std::vector<uint32_t> ROrder;
    ROrder.reserve(RNodes.size());
    for (uint32_t Node : RNodes)
      if (InDegR[Node] == 0)
        ROrder.push_back(Node);
    for (size_t At = 0; At != ROrder.size(); ++At) {
      const uint32_t Node = ROrder[At];
      for (uint32_t Idx = C.FwdRow[Node]; Idx != C.FwdRow[Node + 1]; ++Idx)
        if (--InDegR[C.FwdCol[Idx]] == 0)
          ROrder.push_back(C.FwdCol[Idx]);
    }
    Cyclic = ROrder.size() != RNodes.size();

    if (!Cyclic) {
      C.TopoOrder.reserve(N);
      for (uint32_t Node = 0; Node != N; ++Node)
        if (!InR[Node])
          C.TopoOrder.push_back(Node);
      C.TopoOrder.insert(C.TopoOrder.end(), ROrder.begin(), ROrder.end());
      C.TopoPos.resize(N);
      for (uint32_t At = 0; At != N; ++At)
        C.TopoPos[C.TopoOrder[At]] = At;
      return C;
    }
  }

  // Cyclic: condense once with Tarjan. Component ids come out in reverse
  // topological order of the condensation — exactly the sweep order —
  // and the member nodes are grouped for mask scatter.
  C.Acyclic = false;
  C.Comp = G.tarjanScc(C.NumComps);
  C.CompRow.assign(C.NumComps + 1, 0);
  for (uint32_t CompId : C.Comp)
    ++C.CompRow[CompId + 1];
  for (uint32_t CompId = 0; CompId != C.NumComps; ++CompId)
    C.CompRow[CompId + 1] += C.CompRow[CompId];
  C.CompNodes.resize(N);
  {
    std::vector<uint32_t> Next(C.CompRow.begin(), C.CompRow.end() - 1);
    for (uint32_t Node = 0; Node != N; ++Node)
      C.CompNodes[Next[C.Comp[Node]]++] = Node;
  }
  return C;
}

bool ReachabilityKernel::sweep(const uint32_t *Sources, uint32_t Count,
                               const support::Deadline *DL) {
  assert(Count <= WordBits && "a sweep carries at most 64 source lanes");
  static trace::Counter &Sweeps = trace::counter("kernel.sweeps");
  static trace::Counter &WordsSwept =
      trace::counter("kernel.words_swept");
  Sweeps.add();

  // Deadline poll, amortized: a time check per block would dominate the
  // sweep, so with an active deadline we pay one decrement per block and
  // read the clock (plus the kernel.cancel failpoint, which simulates
  // expiry deterministically) every PollInterval blocks. A null DL costs
  // one predicted branch.
  constexpr uint32_t PollInterval = 4096;
  uint32_t Budget = PollInterval;
  bool Aborted = false;
  auto poll = [&]() -> bool {
    if (!DL || Aborted)
      return Aborted;
    if (--Budget != 0)
      return false;
    Budget = PollInterval;
    if (DL->expired() || WS_FAILPOINT("kernel.cancel"))
      Aborted = true;
    return Aborted;
  };

  // Sparse reset of the previous sweep's footprint: between sweeps the
  // scratch arrays are all-zero except at Dirty positions.
  for (uint32_t B : Dirty) {
    BlockMask[B] = 0;
    Seen[B] = 0;
  }
  Dirty.clear();
  if (DL && (DL->expired() || WS_FAILPOINT("kernel.cancel")))
    return false;
  if (Count == 0)
    return true;

  // Blocks are condensation components: plain nodes on acyclic graphs
  // (identity condensation), Tarjan components otherwise.
  const bool Acyclic = G->isAcyclic();
  auto scatterFrom = [&](uint32_t Block, auto &&Touch) {
    if (Acyclic) {
      for (uint32_t Succ : G->successors(Block))
        Touch(Succ);
    } else {
      for (uint32_t Node : G->componentNodes(Block))
        for (uint32_t Succ : G->successors(Node))
          Touch(G->Comp[Succ]);
    }
  };

  // Phase 1: seed the lane bits and discover every block reachable from
  // the sources. Dirty doubles as the reset list for the next sweep.
  auto visit = [&](uint32_t B) {
    if (!Seen[B]) {
      Seen[B] = 1;
      Dirty.push_back(B);
      Work.push_back(B);
    }
  };
  for (uint32_t K = 0; K != Count; ++K) {
    const uint32_t B = G->componentOf(Sources[K]);
    BlockMask[B] |= uint64_t{1} << K;
    visit(B);
  }
  while (!Work.empty()) {
    if (poll()) {
      Work.clear(); // The worklist is reused; leave it empty on abort.
      return false;
    }
    const uint32_t B = Work.back();
    Work.pop_back();
    scatterFrom(B, visit);
  }
  // One 64-lane mask word per discovered block is what phase 2 settles.
  WordsSwept.add(Dirty.size());

  // Phase 2: propagate lane masks over exactly the discovered blocks in
  // topological order (predecessors first), so one scatter pass settles
  // the closure. When the sources reach most of the graph a linear scan
  // of the full order beats sorting the discovery list; when they reach
  // a sliver, sorting the sliver wins.
  const uint32_t NumBlocks = G->numComponents();
  auto propagate = [&](uint32_t B) {
    const uint64_t Mask = BlockMask[B];
    scatterFrom(B, [&](uint32_t Succ) { BlockMask[Succ] |= Mask; });
  };
  if (Dirty.size() >= NumBlocks / 8) {
    if (!Acyclic) {
      // Tarjan ids are reverse-topological: walk them downward.
      for (uint32_t B = NumBlocks; B-- > 0;)
        if (Seen[B]) {
          if (poll())
            return false;
          propagate(B);
        }
    } else if (G->TopoOrder.empty()) {
      // Identity order: node ids are already topological.
      for (uint32_t Node = 0; Node != NumBlocks; ++Node)
        if (Seen[Node]) {
          if (poll())
            return false;
          propagate(Node);
        }
    } else {
      for (uint32_t Node : G->TopoOrder)
        if (Seen[Node]) {
          if (poll())
            return false;
          propagate(Node);
        }
    }
  } else {
    if (!Acyclic)
      std::sort(Dirty.begin(), Dirty.end(), std::greater<uint32_t>());
    else if (G->TopoPos.empty())
      std::sort(Dirty.begin(), Dirty.end());
    else
      std::sort(Dirty.begin(), Dirty.end(), [&](uint32_t A, uint32_t B) {
        return G->TopoPos[A] < G->TopoPos[B];
      });
    for (uint32_t B : Dirty) {
      if (poll())
        return false;
      propagate(B);
    }
  }
  return true;
}
