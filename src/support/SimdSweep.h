//===- support/SimdSweep.h - Per-ISA OR-sweep entry points ------*- C++ -*-===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The function-pointer boundary between \ref ReachabilityKernel and
/// its per-ISA OR-sweep inner loops.
///
/// Dispatch granularity is a whole propagation phase, not an edge: the
/// kernel resolves one \ref SweepOps table per sweep (via \ref
/// sweepOps) and the chosen variant then runs the entire dense or
/// sparse pass with no further indirect calls, so the indirect-call
/// cost is amortized over the whole frontier. Each variant lives in its
/// own translation unit (SimdSweepScalar.cpp / SimdSweepAvx2.cpp /
/// SimdSweepAvx512.cpp) compiled with per-file target flags, all three
/// including SimdSweepImpl.h under a distinct namespace — the simdjson
/// pattern — so the binary carries every variant and picks at runtime.
///
/// The arguments describe the kernel-space view of a sweep (see
/// docs/KERNEL.md): a blocked CSR whose positions are already
/// topological (every edge goes from a lower position to a higher one),
/// a flat row-major lane-mask arena, and the discovery footprint as
/// both a bitmap (dense phase) and a sorted position list (sparse
/// phase). Implementations must preserve the kernel's cancellation
/// contract: call \ref SweepArgs::Poll every \ref SweepArgs::PollGrain
/// processed blocks and abandon the pass (returning false) when it
/// answers true.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_SIMDSWEEP_H
#define WIRESORT_SUPPORT_SIMDSWEEP_H

#include "support/Simd.h"

#include <cstdint>

namespace wiresort::simd {

/// One propagation pass, described in kernel position space.
struct SweepArgs {
  /// Blocked CSR: Row has NumBlocks+1 offsets into Col; row P lists the
  /// successor positions of position P, all strictly greater than P.
  const uint32_t *Row;
  const uint32_t *Col;
  /// Lane-mask arena: NumBlocks rows of LaneWords uint64_t each,
  /// row-major. Position P's row starts at Mask[P * LaneWords].
  uint64_t *Mask;
  /// Discovery bitmap, (NumBlocks+63)/64 words: bit P set iff position
  /// P was discovered. Read by the dense pass.
  const uint64_t *Frontier;
  /// Discovered positions sorted ascending (= topologically). Read by
  /// the sparse pass.
  const uint32_t *Dirty;
  uint32_t DirtyCount;
  uint32_t NumBlocks;
  /// Lane words per row: 1, 2, 4, or 8.
  uint32_t LaneWords;
  /// Cancellation poll; may be null. Called with \ref PollCtx every
  /// \ref PollGrain processed blocks; true means abort the pass.
  bool (*Poll)(void *Ctx);
  void *PollCtx;

  /// How many blocks a variant may process between Poll calls — the
  /// kernel's deadline granularity (docs/ROBUSTNESS.md).
  static constexpr uint32_t PollGrain = 4096;
};

/// One ISA variant's entry points. Both return false iff aborted by
/// Poll (masks are then meaningless; scratch stays reusable).
struct SweepOps {
  bool (*Dense)(const SweepArgs &Args);
  bool (*Sparse)(const SweepArgs &Args);
  /// \ref isaName of the variant, for reports.
  const char *Name;
};

/// The variant for \ref activeIsa().
const SweepOps &sweepOps();

/// The variant for a specific ISA; clamps down (avx512 -> avx2 ->
/// scalar) if \p Isa was not compiled in or is not executable here.
const SweepOps &sweepOpsFor(KernelIsa Isa);

/// Per-TU tables. scalarSweepOps always exists; the vector tables are
/// compiled only when the toolchain accepts the target flags (CMake
/// defines WIRESORT_HAVE_{AVX2,AVX512}_SWEEP accordingly).
const SweepOps &scalarSweepOps();
#ifdef WIRESORT_HAVE_AVX2_SWEEP
const SweepOps &avx2SweepOps();
#endif
#ifdef WIRESORT_HAVE_AVX512_SWEEP
const SweepOps &avx512SweepOps();
#endif

} // namespace wiresort::simd

#endif // WIRESORT_SUPPORT_SIMDSWEEP_H
