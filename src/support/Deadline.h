//===- support/Deadline.h - Deadlines and cancellation ----------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative time budget + cancellation flag for a whole check run
/// (docs/ROBUSTNESS.md). A production checker serving interactive or
/// CI traffic must be boundable: `wiresort-check --timeout-ms N` creates
/// one \ref Deadline covering parse, Stage-1 inference, and the kernel
/// sweeps, and every layer polls it at a granularity coarse enough to be
/// free and fine enough to stop a runaway input — per line in the
/// parsers, per module in the SummaryEngine, per node batch in
/// ReachabilityKernel sweeps. A run that hits its deadline fails closed:
/// a WS601_CANCELLED diagnostic reporting partial progress, exit code 3,
/// never a hung process or a half-written artifact.
///
/// Deadline is a value type: copies share the cancellation flag (a
/// shared atomic), so handing one to a worker thread and cancel()ing
/// from the outside is safe and immediate. A default-constructed
/// Deadline never expires and its polls cost one pointer test.
///
//======---------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_DEADLINE_H
#define WIRESORT_SUPPORT_DEADLINE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace wiresort::support {

/// A shared "stop now" flag. Copies observe (and raise) the same flag.
class CancellationToken {
public:
  CancellationToken() = default;

  /// A token that can actually be cancelled (default-constructed tokens
  /// are inert and never report cancelled).
  static CancellationToken create() {
    CancellationToken T;
    T.Flag = std::make_shared<std::atomic<bool>>(false);
    return T;
  }

  void cancel() const {
    if (Flag)
      Flag->store(true, std::memory_order_relaxed);
  }
  bool cancelled() const {
    return Flag && Flag->load(std::memory_order_relaxed);
  }
  /// True for tokens from create(): cancel() can actually raise the
  /// flag. Default-constructed tokens are inert and report false.
  bool cancellable() const { return Flag != nullptr; }

private:
  std::shared_ptr<std::atomic<bool>> Flag;
};

/// An optional wall-clock budget plus a cancellation token. expired()
/// is the one poll every cooperative layer uses; it is true once either
/// the budget has elapsed or the token was cancelled.
class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  /// Never expires; polls are nearly free.
  Deadline() = default;

  /// Expires \p Ms milliseconds from now (0 = never, but the returned
  /// deadline is still cancellable via its token).
  static Deadline afterMs(uint64_t Ms) {
    return afterMs(Ms, CancellationToken::create());
  }

  /// Same, but observing (and sharing) an external token — the serving
  /// layer's drain path hands every in-flight request the server-wide
  /// kill token this way, so a bounded drain can cancel stragglers. An
  /// inert \p T is upgraded to a live one.
  static Deadline afterMs(uint64_t Ms, CancellationToken T) {
    Deadline D;
    D.Token = T.cancellable() ? std::move(T) : CancellationToken::create();
    if (Ms != 0) {
      D.HasLimit = true;
      D.End = Clock::now() + std::chrono::milliseconds(Ms);
    }
    return D;
  }

  /// True when this deadline can ever expire (time limit or live
  /// token) — layers may skip bookkeeping entirely for inert deadlines.
  bool active() const { return HasLimit || Token.cancellable(); }

  bool expired() const {
    if (Token.cancelled())
      return true;
    return HasLimit && Clock::now() >= End;
  }

  /// The shared cancellation flag (inert for default-constructed
  /// deadlines).
  const CancellationToken &token() const { return Token; }
  void cancel() const { Token.cancel(); }

private:
  CancellationToken Token;
  Clock::time_point End{};
  bool HasLimit = false;
};

} // namespace wiresort::support

#endif // WIRESORT_SUPPORT_DEADLINE_H
