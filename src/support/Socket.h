//===- support/Socket.h - Unix-domain socket plumbing -----------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fd-level plumbing under the serving layer (docs/SERVING.md): a
/// Unix-domain stream listener with a stoppable accept loop, a client
/// connect, and the read-to-EOF / write-everything helpers both sides
/// frame wire streams over. The same lift support/Process.h gave
/// fork+pipe, applied to sockets — byte transport only; framing,
/// checksums, and trust live one layer up in support/Wire.h (a socket
/// peer is as untrusted as a half-dead fork worker, and the reader's
/// fail-closed rules already cover both).
///
/// Everything reports through support::Diag (WS501_IO_ERROR with the
/// failing syscall and errno text); nothing here throws or retries —
/// policy belongs to the caller.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_SOCKET_H
#define WIRESORT_SUPPORT_SOCKET_H

#include "support/Diag.h"

#include <atomic>
#include <string>
#include <string_view>

namespace wiresort::support::sock {

/// A bound, listening Unix-domain stream socket. Owns both the fd and
/// the filesystem name: close() (or destruction) closes the fd and
/// unlinks the socket path, so a cleanly shut down server leaves no
/// droppings (the run_tests serving stage asserts exactly that).
class Listener {
public:
  Listener() = default;
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;
  Listener(Listener &&O) noexcept;
  Listener &operator=(Listener &&O) noexcept;
  ~Listener() { close(); }

  /// Binds and listens on \p Path (an existing stale socket file is
  /// unlinked first — the daemon-restart case). Unix-domain socket
  /// paths are length-limited by sun_path (~107 bytes); longer paths
  /// fail with a diagnostic, not truncation.
  static Expected<Listener> open(const std::string &Path, int Backlog = 16);

  /// Waits for one connection, polling every ~100 ms so \p Stop is
  /// honored promptly. \returns the accepted fd, or -1 once \p Stop is
  /// set or the listener goes bad (the two cases a server loop treats
  /// identically: stop accepting).
  int acceptOnce(const std::atomic<bool> &Stop);

  /// Closes the fd and unlinks the socket path. Idempotent.
  void close();

  bool valid() const { return Fd >= 0; }
  const std::string &path() const { return Path; }

private:
  int Fd = -1;
  std::string Path;
};

/// Connects to the Unix-domain socket at \p Path. \returns the fd, or a
/// WS501 diagnostic (server not up, path too long, ...).
Expected<int> connectTo(const std::string &Path);

/// Writes all of \p Bytes to \p Fd, retrying short writes and EINTR.
/// \returns an empty status or one WS501 diagnostic. A peer that hangs
/// up mid-write surfaces as EPIPE here (callers must ignore SIGPIPE —
/// the daemon and client mains do).
Status writeAll(int Fd, std::string_view Bytes);

/// Reads \p Fd to EOF. Half-close is the request delimiter on both
/// sides of the serving protocol: the writer shutdownWrite()s when done
/// and the reader reads until EOF, so no length prefix is needed ahead
/// of the wire stream's own framing.
Expected<std::string> readAll(int Fd);

/// shutdown(SHUT_WR): signals end-of-message while leaving the read
/// half open for the response.
void shutdownWrite(int Fd);

/// close() wrapper (EINTR-safe, ignores errors — used on the way out).
void closeFd(int Fd);

} // namespace wiresort::support::sock

#endif // WIRESORT_SUPPORT_SOCKET_H
