//===- support/Socket.h - Unix-domain socket plumbing -----------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fd-level plumbing under the serving layer (docs/SERVING.md): a
/// Unix-domain stream listener with a stoppable accept loop, a client
/// connect (plus a backoff-retrying variant), and the read-to-EOF /
/// write-everything helpers both sides frame wire streams over. The
/// same lift support/Process.h gave fork+pipe, applied to sockets —
/// byte transport only; framing, checksums, and trust live one layer up
/// in support/Wire.h (a socket peer is as untrusted as a half-dead fork
/// worker, and the reader's fail-closed rules already cover both).
///
/// Overload safety is transport policy, so it lives here too
/// (docs/SERVING.md degradation matrix): readAll/writeAll take an
/// optional support::Deadline — polled, so a peer that stalls mid-frame
/// costs the configured budget, never a wedged thread — and readAll
/// takes a byte cap so an oversize message is cut off after cap+1
/// buffered bytes instead of being swallowed whole before anyone looks
/// at its size.
///
/// Everything reports through support::Diag (WS501_IO_ERROR with the
/// failing syscall, errno text, and a symbolic `errno` note callers can
/// key exit codes on; WS606_TRANSPORT_TIMEOUT when a deadline fires);
/// nothing here throws. The only retry policy in this file is the one
/// explicitly asked for via dialWithRetry — the plain helpers never
/// retry beyond EINTR.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_SOCKET_H
#define WIRESORT_SUPPORT_SOCKET_H

#include "support/Deadline.h"
#include "support/Diag.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace wiresort::support::sock {

/// A bound, listening Unix-domain stream socket. Owns both the fd and
/// the filesystem name: close() (or destruction) closes the fd and
/// unlinks the socket path, so a cleanly shut down server leaves no
/// droppings (the run_tests serving stage asserts exactly that).
class Listener {
public:
  Listener() = default;
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;
  Listener(Listener &&O) noexcept;
  Listener &operator=(Listener &&O) noexcept;
  ~Listener() { close(); }

  /// Binds and listens on \p Path (an existing stale socket file is
  /// unlinked first — the daemon-restart case). Unix-domain socket
  /// paths are length-limited by sun_path (~107 bytes); longer paths
  /// fail with a diagnostic, not truncation.
  static Expected<Listener> open(const std::string &Path, int Backlog = 16);

  /// Waits for one connection, polling every ~100 ms so \p Stop is
  /// honored promptly. \returns the accepted fd, or -1 once \p Stop is
  /// set or the listener goes bad (the two cases a server loop treats
  /// identically: stop accepting).
  int acceptOnce(const std::atomic<bool> &Stop);

  /// Closes the fd and unlinks the socket path. Idempotent.
  void close();

  bool valid() const { return Fd >= 0; }
  const std::string &path() const { return Path; }

private:
  int Fd = -1;
  std::string Path;
};

/// Connects to the Unix-domain socket at \p Path. \returns the fd, or a
/// WS501 diagnostic (server not up, path too long, ...) whose `errno`
/// note carries the symbolic name (ECONNREFUSED, ENOENT, ...) so
/// callers can tell a daemon that died from a socket path that never
/// existed.
Expected<int> connectTo(const std::string &Path);

/// Backoff policy for dialWithRetry (and the serving layer's
/// request-level retries): exponential growth with decorrelated jitter
/// — sleep = min(CapMs, uniform(BaseMs, 3 * previous sleep)) — which
/// spreads a thundering herd of restarting clients without
/// synchronizing them. \c Seed makes the jitter stream deterministic
/// (the soak tier seeds it from WIRESORT_FAILPOINT_SEED); two clients
/// with different seeds draw different schedules.
struct RetryPolicy {
  unsigned MaxAttempts = 5; ///< Total tries, including the first.
  uint64_t BaseMs = 10;     ///< Floor of every backoff sleep.
  uint64_t CapMs = 2000;    ///< Ceiling of every backoff sleep.
  uint64_t Seed = 0;        ///< Jitter stream seed (deterministic).
};

/// The next decorrelated-jitter delay: min(Cap, uniform(Base, 3 *
/// \p PrevMs)) drawn deterministically from (Seed, Attempt). \p PrevMs
/// of 0 (the first retry) yields BaseMs exactly. Exposed so the serving
/// layer's busy-retry loop shares one schedule shape with dialWithRetry.
uint64_t nextBackoffMs(const RetryPolicy &P, uint64_t PrevMs,
                       unsigned Attempt);

/// connectTo with retry: connection-refused and socket-file-not-found
/// (the daemon is restarting, or systemd has not re-created the path
/// yet) are retried per \p P; anything else — permission, path too long
/// — fails immediately, because retrying cannot fix it. The
/// `client.connect.refuse` failpoint simulates a refused connect ahead
/// of the syscall, so the retry path is testable against a healthy
/// daemon. \returns the fd, or the *last* attempt's diagnostic with an
/// `attempts` note appended.
Expected<int> dialWithRetry(const std::string &Path, const RetryPolicy &P);

/// Writes all of \p Bytes to \p Fd, retrying short writes and EINTR.
/// \returns an empty status or one diagnostic. A peer that hangs up
/// mid-write surfaces as EPIPE here (callers must ignore SIGPIPE — the
/// daemon and client mains do). An active \p DL bounds the whole write:
/// the fd is polled for writability in ~100 ms ticks and a deadline
/// that fires mid-write returns WS606_TRANSPORT_TIMEOUT with the byte
/// offset reached — the slow-reader twin of the slow-writer guard on
/// readAll.
Status writeAll(int Fd, std::string_view Bytes,
                const Deadline *DL = nullptr);

/// Reads \p Fd to EOF. Half-close is the request delimiter on both
/// sides of the serving protocol: the writer shutdownWrite()s when done
/// and the reader reads until EOF, so no length prefix is needed ahead
/// of the wire stream's own framing.
///
/// An active \p DL bounds the whole read (poll in ~100 ms ticks); a
/// stalled peer — the slow-loris case — gets WS606_TRANSPORT_TIMEOUT
/// with the bytes buffered so far, never a worker pinned forever.
///
/// A nonzero \p MaxBytes caps buffering: reading stops after at most
/// MaxBytes + 1 bytes (the +1 is the witness that the peer had more)
/// and returns them *successfully* — oversize is the caller's verdict
/// to make (`Out.size() > MaxBytes`), on a bounded buffer, not after
/// swallowing an arbitrarily large message whole.
Expected<std::string> readAll(int Fd, const Deadline *DL = nullptr,
                              uint64_t MaxBytes = 0);

/// shutdown(SHUT_WR): signals end-of-message while leaving the read
/// half open for the response.
void shutdownWrite(int Fd);

/// Reads and discards from \p Fd until EOF, a read error, or deadline
/// expiry — the lingering-close half of answering a request without
/// consuming it. AF_UNIX turns close-with-unread-bytes into ECONNRESET
/// on the peer, which destroys a response the peer had already
/// buffered; a server that sheds, rejects oversize, or times out a
/// request must drain the remainder (bounded by \p DL) before close so
/// the fail-closed verdict it wrote actually arrives.
void discardUntilEof(int Fd, const Deadline *DL = nullptr);

/// close() wrapper (EINTR-safe, ignores errors — used on the way out).
void closeFd(int Fd);

} // namespace wiresort::support::sock

#endif // WIRESORT_SUPPORT_SOCKET_H
