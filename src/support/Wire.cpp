//===- support/Wire.cpp - Versioned binary record streams -----------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/Wire.h"

#include "support/Trace.h"

using namespace wiresort;
using namespace wiresort::support;
using namespace wiresort::support::wire;

// --- Checksum and counters --------------------------------------------------

uint64_t wire::fnv1a(std::string_view Data, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : Data) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

namespace {

trace::Counter &recordsWrittenC() {
  static trace::Counter &C = trace::counter("wire.records_written");
  return C;
}
trace::Counter &recordsReadC() {
  static trace::Counter &C = trace::counter("wire.records_read");
  return C;
}
trace::Counter &bytesWrittenC() {
  static trace::Counter &C = trace::counter("wire.bytes_written");
  return C;
}
trace::Counter &bytesReadC() {
  static trace::Counter &C = trace::counter("wire.bytes_read");
  return C;
}
trace::Counter &checksumFailuresC() {
  static trace::Counter &C = trace::counter("wire.checksum_failures");
  return C;
}

void appendVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

void appendFixed64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

/// Reads a varint at \p Pos in \p Data; false on truncation or a
/// varint longer than 10 bytes (64 bits).
bool readVarint(std::string_view Data, size_t &Pos, uint64_t &V) {
  V = 0;
  unsigned Shift = 0;
  for (int I = 0; I != 10; ++I) {
    if (Pos >= Data.size())
      return false;
    uint8_t B = static_cast<uint8_t>(Data[Pos++]);
    if (Shift >= 64 ||
        (Shift == 63 && (B & 0x7f) > 1))
      return false; // Overflows uint64_t.
    V |= uint64_t(B & 0x7f) << Shift;
    if (!(B & 0x80))
      return true;
    Shift += 7;
  }
  return false;
}

} // namespace

void wire::internCounters() {
  recordsWrittenC();
  recordsReadC();
  bytesWrittenC();
  bytesReadC();
  checksumFailuresC();
}

// --- Writer -----------------------------------------------------------------

Writer::Writer() { Out.append(Magic, sizeof(Magic)); Out.push_back(
    static_cast<char>(FormatVersion)); }

uint32_t Writer::intern(std::string_view S) {
  std::string_view Stable = Interner.intern(S);
  auto It = IdOf.find(Stable);
  if (It != IdOf.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(IdOf.size());
  IdOf.emplace(Stable, Id);
  Pending.push_back(Stable);
  return Id;
}

void Writer::beginRecord(RecordKind K) {
  assert(!InRecord && "beginRecord without endRecord");
  InRecord = true;
  CurKind = K;
  Payload.clear();
}

void Writer::putVarint(uint64_t V) { appendVarint(Payload, V); }

void Writer::putByte(uint8_t B) {
  Payload.push_back(static_cast<char>(B));
}

void Writer::putFixed64(uint64_t V) { appendFixed64(Payload, V); }

void Writer::putString(std::string_view S) { putVarint(intern(S)); }

void Writer::putBytes(std::string_view Bytes) {
  putVarint(Bytes.size());
  Payload.append(Bytes.data(), Bytes.size());
}

void Writer::flushStrings() {
  if (Pending.empty())
    return;
  std::string Table;
  appendVarint(Table, Pending.size());
  for (std::string_view S : Pending) {
    appendVarint(Table, S.size());
    Table.append(S.data(), S.size());
  }
  Pending.clear();
  frame(RecordKind::StringTable, Table);
}

void Writer::frame(RecordKind K, const std::string &Body) {
  size_t Before = Out.size();
  Out.push_back(static_cast<char>(K));
  appendVarint(Out, Body.size());
  Out += Body;
  uint64_t Crc = fnv1a(Body, fnv1a({reinterpret_cast<const char *>(&K),
                                    1}));
  appendFixed64(Out, Crc);
  ++Records;
  recordsWrittenC().add();
  bytesWrittenC().add(Out.size() - Before);
}

void Writer::endRecord() {
  assert(InRecord && "endRecord without beginRecord");
  InRecord = false;
  // Strings referenced by this record must be defined before it.
  flushStrings();
  frame(CurKind, Payload);
}

void Writer::beginStream(StreamKind K, uint64_t Version) {
  beginRecord(RecordKind::StreamBegin);
  putByte(static_cast<uint8_t>(K));
  putVarint(Version);
  endRecord();
}

void Writer::finish() {
  beginRecord(RecordKind::StreamEnd);
  putVarint(Records);
  endRecord();
}

std::string Writer::take() {
  std::string Drained = std::move(Out);
  Out.clear();
  return Drained;
}

// --- Reader -----------------------------------------------------------------

bool Reader::readHeader(std::string *Why) {
  if (Data.size() < sizeof(Magic) + 1 ||
      Data.compare(0, sizeof(Magic),
                   std::string_view(Magic, sizeof(Magic))) != 0) {
    if (Why)
      *Why = "not a wire stream (bad magic)";
    return false;
  }
  uint8_t Version = static_cast<uint8_t>(Data[sizeof(Magic)]);
  if (Version != FormatVersion) {
    if (Why)
      *Why = "unsupported wire format version " + std::to_string(Version) +
             " (this build reads version " +
             std::to_string(FormatVersion) + ")";
    return false;
  }
  Pos = sizeof(Magic) + 1;
  bytesReadC().add(Pos);
  return true;
}

Reader::Item Reader::next(Record &R) {
  for (;;) {
    if (Pos == Data.size())
      return Item::Exhausted;
    size_t At = Pos;
    uint8_t KindByte = static_cast<uint8_t>(Data[Pos++]);
    uint64_t Len = 0;
    if (!readVarint(Data, Pos, Len))
      return Item::Truncated;
    if (Len > Data.size() - Pos)
      return Item::Truncated;
    std::string_view Payload = Data.substr(Pos, Len);
    Pos += Len;
    if (Data.size() - Pos < 8)
      return Item::Truncated;
    uint64_t Crc = 0;
    for (int I = 0; I != 8; ++I)
      Crc |= uint64_t(static_cast<uint8_t>(Data[Pos + I])) << (8 * I);
    Pos += 8;
    char KindChar = static_cast<char>(KindByte);
    if (fnv1a(Payload, fnv1a({&KindChar, 1})) != Crc) {
      checksumFailuresC().add();
      return Item::Corrupt;
    }
    ++Records;
    recordsReadC().add();
    bytesReadC().add(Pos - At);

    RecordKind Kind = static_cast<RecordKind>(KindByte);
    if (Kind == RecordKind::StringTable) {
      size_t P = 0;
      uint64_t Count = 0;
      if (!readVarint(Payload, P, Count))
        return Item::Corrupt;
      for (uint64_t I = 0; I != Count; ++I) {
        uint64_t SLen = 0;
        if (!readVarint(Payload, P, SLen) || SLen > Payload.size() - P)
          return Item::Corrupt;
        Strings.push_back(Payload.substr(P, SLen));
        P += SLen;
      }
      continue; // Bookkeeping record: keep scanning.
    }
    if (Kind == RecordKind::StreamEnd)
      return Item::End;
    R.Kind = Kind;
    R.Payload = Payload;
    R.Offset = At;
    return Item::Record;
  }
}

bool Reader::Cursor::getVarint(uint64_t &V) {
  if (Failed || !readVarint(Data, Pos, V)) {
    Failed = true;
    return false;
  }
  return true;
}

bool Reader::Cursor::getByte(uint8_t &B) {
  if (Failed || Pos >= Data.size()) {
    Failed = true;
    return false;
  }
  B = static_cast<uint8_t>(Data[Pos++]);
  return true;
}

bool Reader::Cursor::getFixed64(uint64_t &V) {
  if (Failed || Data.size() - Pos < 8) {
    Failed = true;
    return false;
  }
  V = 0;
  for (int I = 0; I != 8; ++I)
    V |= uint64_t(static_cast<uint8_t>(Data[Pos + I])) << (8 * I);
  Pos += 8;
  return true;
}

bool Reader::Cursor::getString(std::string_view &S) {
  uint64_t Id = 0;
  if (!getVarint(Id) || !Owner.hasString(Id)) {
    Failed = true;
    return false;
  }
  S = Owner.string(Id);
  return true;
}

bool Reader::Cursor::getBytes(std::string_view &S) {
  uint64_t Len = 0;
  if (!getVarint(Len) || Data.size() - Pos < Len) {
    Failed = true;
    return false;
  }
  S = Data.substr(Pos, Len);
  Pos += Len;
  return true;
}

// --- Diag payload codec -----------------------------------------------------
//
// code varint | severity byte | message str | has-loc byte
// [file str | line varint | col varint] | hop count | (inst str,
// port str)* | note count | (key str, value str)*

void wire::putDiag(Writer &W, const Diag &D) {
  W.putVarint(static_cast<uint64_t>(D.code()));
  W.putByte(static_cast<uint8_t>(D.severity()));
  W.putString(D.message());
  W.putByte(D.loc() ? 1 : 0);
  if (D.loc()) {
    W.putString(D.loc()->File);
    W.putVarint(D.loc()->Line);
    W.putVarint(D.loc()->Col);
  }
  W.putVarint(D.witness().size());
  for (const WitnessHop &H : D.witness()) {
    W.putString(H.Instance);
    W.putString(H.Port);
  }
  W.putVarint(D.notes().size());
  for (const auto &[Key, Value] : D.notes()) {
    W.putString(Key);
    W.putString(Value);
  }
}

bool wire::getDiag(Reader::Cursor &C, Diag &D) {
  uint64_t Code = 0, Sev = 0;
  uint8_t SevByte = 0, HasLoc = 0;
  std::string_view Message;
  if (!C.getVarint(Code) || Code > 0xffff || !C.getByte(SevByte) ||
      SevByte > 2 || !C.getString(Message) || !C.getByte(HasLoc) ||
      HasLoc > 1)
    return false;
  Sev = SevByte;
  D = Diag(static_cast<DiagCode>(Code), std::string(Message),
           static_cast<Severity>(Sev));
  if (HasLoc) {
    std::string_view File;
    uint64_t Line = 0, Col = 0;
    if (!C.getString(File) || !C.getVarint(Line) || !C.getVarint(Col))
      return false;
    SrcLoc Loc;
    Loc.File = std::string(File);
    Loc.Line = Line;
    Loc.Col = Col;
    D = std::move(D).withLoc(std::move(Loc));
  }
  uint64_t Hops = 0;
  if (!C.getVarint(Hops))
    return false;
  for (uint64_t I = 0; I != Hops; ++I) {
    std::string_view Inst, Port;
    if (!C.getString(Inst) || !C.getString(Port))
      return false;
    D.addHop(std::string(Inst), std::string(Port));
  }
  uint64_t NoteCount = 0;
  if (!C.getVarint(NoteCount))
    return false;
  for (uint64_t I = 0; I != NoteCount; ++I) {
    std::string_view Key, Value;
    if (!C.getString(Key) || !C.getString(Value))
      return false;
    D = std::move(D).withNote(std::string(Key), std::string(Value));
  }
  return true;
}
