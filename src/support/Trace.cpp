//===- support/Trace.cpp - Tracing and metrics ----------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

using namespace wiresort;
using namespace wiresort::trace;

// --- Global state -----------------------------------------------------------

std::atomic<bool> detail::SpansOn{false};
std::atomic<bool> detail::CountersOn{false};

namespace {

/// One span as recorded on the hot path: literal pointers, raw clock.
struct RawEvent {
  const char *Name;
  const char *Cat;
  uint64_t StartNs;
  uint64_t EndNs;
  std::vector<std::pair<const char *, std::string>> Args;
};

/// A thread's event buffer. Owned jointly by the thread (thread_local
/// shared_ptr) and the registry, so events survive thread exit until the
/// session drains them.
struct ThreadBuf {
  std::vector<RawEvent> Events;
  uint32_t Tid = 0;
};

/// Registry of thread buffers + named metrics. One mutex guards the
/// cold paths (thread registration, name interning, session start/stop,
/// drains); the hot paths — Span::~Span appending to its own buffer,
/// Counter::add — never take it.
struct Registry {
  std::mutex Mutex;
  std::vector<std::shared_ptr<ThreadBuf>> Buffers;
  uint32_t NextTid = 0;
  std::map<std::string, Counter> Counters;
  std::map<std::string, Histogram> Histograms;
  /// Session time base: StartNs in SpanRecord is relative to this.
  uint64_t BaseNs = 0;
  Session *Active = nullptr;
};

Registry &registry() {
  static Registry R;
  return R;
}

ThreadBuf &myBuffer() {
  thread_local std::shared_ptr<ThreadBuf> Buf;
  if (!Buf) {
    Buf = std::make_shared<ThreadBuf>();
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    Buf->Tid = R.NextTid++;
    R.Buffers.push_back(Buf);
  }
  return *Buf;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Microseconds with fixed 3-decimal precision (Chrome ts unit).
std::string microseconds(uint64_t Ns) {
  char Buf[32];
  std::snprintf(Buf, sizeof Buf, "%llu.%03llu",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned long long>(Ns % 1000));
  return Buf;
}

} // namespace

uint64_t detail::nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void detail::record(const char *Name, const char *Cat, uint64_t StartNs,
                    uint64_t EndNs,
                    std::vector<std::pair<const char *, std::string>> Args) {
  // Re-check under the race where a session finishes while a span is
  // being destroyed: events from a closed window are dropped, never
  // appended concurrently with a drain. (Production callers join their
  // workers before finish(); this is belt-and-braces.)
  if (!spansEnabled())
    return;
  myBuffer().Events.push_back(
      {Name, Cat, StartNs, EndNs, std::move(Args)});
}

// --- Histogram --------------------------------------------------------------

void Histogram::record(uint64_t Sample) {
  if (!countersEnabled())
    return;
  N.fetch_add(1, std::memory_order_relaxed);
  S.fetch_add(Sample, std::memory_order_relaxed);
  uint64_t Cur = Mn.load(std::memory_order_relaxed);
  while (Sample < Cur &&
         !Mn.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
  Cur = Mx.load(std::memory_order_relaxed);
  while (Sample > Cur &&
         !Mx.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
}

uint64_t Histogram::min() const {
  const uint64_t V = Mn.load(std::memory_order_relaxed);
  return V == UINT64_MAX ? 0 : V;
}

void Histogram::reset() {
  N.store(0, std::memory_order_relaxed);
  S.store(0, std::memory_order_relaxed);
  Mn.store(UINT64_MAX, std::memory_order_relaxed);
  Mx.store(0, std::memory_order_relaxed);
}

// --- Registry ---------------------------------------------------------------

Counter &trace::counter(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Counters[Name]; // std::map nodes: stable addresses.
}

Histogram &trace::histogram(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return R.Histograms[Name];
}

std::vector<std::pair<std::string, uint64_t>> trace::counterSnapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(R.Counters.size());
  for (const auto &[Name, C] : R.Counters)
    Out.emplace_back(Name, C.value());
  return Out; // std::map iteration order: already sorted by name.
}

std::vector<HistogramSnapshot> trace::histogramSnapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<HistogramSnapshot> Out;
  Out.reserve(R.Histograms.size());
  for (const auto &[Name, H] : R.Histograms)
    Out.push_back({Name, H.count(), H.sum(), H.min(), H.max()});
  return Out;
}

// --- Session ----------------------------------------------------------------

Session::Session(SessionOptions O) : Opts(std::move(O)) {
  Registry &R = registry();
  {
    std::lock_guard<std::mutex> Lock(R.Mutex);
    assert(!R.Active && "only one trace::Session may be live at a time");
    R.Active = this;
    for (auto &Buf : R.Buffers)
      Buf->Events.clear();
    for (auto &[Name, C] : R.Counters)
      C.reset();
    for (auto &[Name, H] : R.Histograms)
      H.reset();
    R.BaseNs = detail::nowNs();
  }
  detail::CountersOn.store(true, std::memory_order_relaxed);
  if (Opts.CollectSpans)
    detail::SpansOn.store(true, std::memory_order_relaxed);
}

Session::~Session() { (void)finish(); }

support::Status Session::finish() {
  if (Finished)
    return {};
  Finished = true;
  detail::SpansOn.store(false, std::memory_order_relaxed);
  detail::CountersOn.store(false, std::memory_order_relaxed);

  Registry &R = registry();
  {
    std::lock_guard<std::mutex> Lock(R.Mutex);
    R.Active = nullptr;
    for (const auto &Buf : R.Buffers) {
      for (const RawEvent &E : Buf->Events) {
        SpanRecord Rec;
        Rec.Name = E.Name;
        Rec.Cat = E.Cat;
        Rec.StartNs = E.StartNs >= R.BaseNs ? E.StartNs - R.BaseNs : 0;
        Rec.DurNs = E.EndNs - E.StartNs;
        Rec.Tid = Buf->Tid;
        for (const auto &[K, V] : E.Args)
          Rec.Args.emplace_back(K, V);
        Collected.push_back(std::move(Rec));
      }
      Buf->Events.clear();
    }
  }
  // Ascending start time; ties broken longest-first so an enclosing
  // span precedes the spans it contains. Makes the trace's ts stream
  // monotonic, which TraceTest and the jq CI stage assert.
  std::stable_sort(Collected.begin(), Collected.end(),
                   [](const SpanRecord &A, const SpanRecord &B) {
                     if (A.StartNs != B.StartNs)
                       return A.StartNs < B.StartNs;
                     return A.DurNs > B.DurNs;
                   });

  if (Opts.TraceOutPath.empty())
    return {};
  std::ofstream Out(Opts.TraceOutPath);
  if (!Out) {
    return support::Diag(support::DiagCode::WS501_IO_ERROR,
                         "cannot write trace file '" + Opts.TraceOutPath +
                             "'");
  }
  Out << chromeTraceJson();
  if (!Out.good()) {
    return support::Diag(support::DiagCode::WS501_IO_ERROR,
                         "error writing trace file '" + Opts.TraceOutPath +
                             "'");
  }
  return {};
}

std::string Session::chromeTraceJson() const {
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  uint64_t LastTs = 0;
  for (const SpanRecord &S : Collected) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n{\"name\":\"" + jsonEscape(S.Name) + "\",\"cat\":\"" +
           jsonEscape(S.Cat) + "\",\"ph\":\"X\",\"ts\":" +
           microseconds(S.StartNs) + ",\"dur\":" + microseconds(S.DurNs) +
           ",\"pid\":1,\"tid\":" + std::to_string(S.Tid);
    if (!S.Args.empty()) {
      Out += ",\"args\":{";
      for (size_t I = 0; I != S.Args.size(); ++I) {
        if (I)
          Out += ",";
        Out += "\"" + jsonEscape(S.Args[I].first) + "\":\"" +
               jsonEscape(S.Args[I].second) + "\"";
      }
      Out += "}";
    }
    Out += "}";
    LastTs = std::max(LastTs, S.StartNs);
  }
  // Final registry values as Chrome counter events, timestamped at the
  // end of the window so they render as closing totals.
  for (const auto &[Name, Value] : counterSnapshot()) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n{\"name\":\"" + jsonEscape(Name) +
           "\",\"ph\":\"C\",\"ts\":" + microseconds(LastTs) +
           ",\"pid\":1,\"tid\":0,\"args\":{\"value\":" +
           std::to_string(Value) + "}}";
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

std::string Session::statsText() const {
  std::string Out = "=== stats (support::trace registry) ===\n";
  Out += "counters:\n";
  for (const auto &[Name, Value] : counterSnapshot())
    Out += "  " + Name + " = " + std::to_string(Value) + "\n";
  Out += "histograms:\n";
  for (const HistogramSnapshot &H : histogramSnapshot()) {
    Out += "  " + H.Name + ": count=" + std::to_string(H.Count) + " sum=" +
           std::to_string(H.Sum) + "us min=" + std::to_string(H.Min) +
           "us max=" + std::to_string(H.Max) + "us\n";
  }
  return Out;
}

std::string Session::statsJson() const {
  std::string Out = "{\"type\":\"stats\",\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : counterSnapshot()) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(Name) + "\":" + std::to_string(Value);
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const HistogramSnapshot &H : histogramSnapshot()) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(H.Name) + "\":{\"count\":" +
           std::to_string(H.Count) + ",\"sum\":" + std::to_string(H.Sum) +
           ",\"min\":" + std::to_string(H.Min) +
           ",\"max\":" + std::to_string(H.Max) + "}";
  }
  Out += "}}";
  return Out;
}
