//===- support/SimdSweepAvx2.cpp - AVX2 OR-sweep variant ------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//
//
// AVX2 instantiation of the sweep loops. This file is compiled with
// -mavx2 (per-file, set in src/support/CMakeLists.txt) and only when
// the toolchain accepts that flag; nothing outside this TU may call
// into it without a CPUID check — simd::sweepOpsFor guarantees that.
//
//===----------------------------------------------------------------------===//

#define WS_SIMD_NAMESPACE avx2_impl
#define WS_SIMD_ISA_NAME "avx2"
#include "support/SimdSweepImpl.h"

const wiresort::simd::SweepOps &wiresort::simd::avx2SweepOps() {
  return avx2_impl::Ops;
}
