//===- support/CsrGraph.h - Frozen CSR graph + bit-parallel reach -*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A frozen compressed-sparse-row snapshot of a \ref Graph plus a
/// bit-parallel multi-source reachability kernel (see docs/KERNEL.md).
///
/// \ref Graph stores adjacency as one heap vector per node, which is the
/// right shape while edges are still being inserted but a poor one for the
/// closure sweeps Stage-1 inference runs over it: every traversal chases a
/// pointer per node and every source pays a fresh visited-set allocation.
/// \ref CsrGraph::freeze packs the edges into two flat arrays (forward and
/// reverse CSR), caches the edge count, and settles the graph's order
/// once. Synthesized netlists create wires in dependency order, so the
/// fill pass usually proves node ids are already topological; the few
/// descending edges that do occur (late-bound output-port wires) are
/// repaired locally by topologically ordering just their downstream
/// closure, which also settles acyclicity. Only genuinely cyclic graphs
/// pay for a Tarjan pass, whose SCC ids come out reverse-topological.
///
/// Freezing also settles the KERNEL LAYOUT: a second CSR over "sweep
/// positions" — condensation blocks renumbered so that every edge goes
/// from a lower position to a higher one, level-grouped and sorted by
/// out-degree within a level for cache locality. The permutation is
/// applied and inverted internally (\ref ReachabilityKernel maps public
/// node ids through it on seed and lookup), so NO public id ever
/// changes. On the common all-ascending acyclic graph the layout is the
/// identity and aliases the forward CSR at zero cost; graphs that
/// needed repair or condensation materialize it. Consumers that never
/// sweep can opt out with \ref Plain.
///
/// \ref ReachabilityKernel answers "which of these K sources reach node
/// n?" for up to 512 sources per sweep: an L-word lane row (L = 1, 2, 4
/// or 8 uint64_t, fixed per kernel) per block in one flat row-major
/// scratch arena, seeded with the sources' bits and OR-folded over
/// successors in one topological pass. The OR inner loops are
/// runtime-dispatched to scalar/AVX2/AVX-512 variants via
/// support/Simd.h. Sweeps are sparse — only blocks actually reachable
/// from the chunk's sources are visited, tracked in a frontier bitmap
/// plus a dirty list that doubles as the sparse reset set — so a sweep
/// over a register-dominated graph costs the size of the reached
/// region, not of the whole module. No per-source allocation anywhere,
/// and scratch can be shared across kernels (one \ref
/// ReachabilityKernel::Scratch per thread, not per module).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_CSRGRAPH_H
#define WIRESORT_SUPPORT_CSRGRAPH_H

#include "support/Deadline.h"
#include "support/Graph.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace wiresort {

/// An immutable compressed-sparse-row snapshot of a \ref Graph.
///
/// Freezing settles acyclicity (ascending-ids proof plus a local repair
/// of any descending edges) and, for cyclic graphs only, the SCC
/// condensation (Tarjan). Parallel edges survive the freeze unchanged;
/// they are harmless to every consumer.
class CsrGraph {
public:
  /// Which adjacency arrays \ref freeze materializes. Reverse row
  /// offsets (in-degrees) are cheap — counted during the forward fill —
  /// but filling the reverse column array is a full extra pass over the
  /// edges, so closure-only consumers (Stage-1 inference, the circuit
  /// checkers) skip it.
  enum Edges { ForwardOnly, ForwardAndReverse };

  /// Whether \ref freeze materializes the kernel (sweep) layout. The
  /// identity layout of an all-ascending acyclic graph is free either
  /// way; \ref Plain only skips the blocked reordering for graphs that
  /// needed repair or condensation — for consumers that freeze purely
  /// for \ref isAcyclic / adjacency and never construct a
  /// \ref ReachabilityKernel.
  enum Layout { Kernel, Plain };

  CsrGraph() = default;

  /// Packs \p G into CSR form and orders it.
  static CsrGraph freeze(const Graph &G, Edges Dirs = ForwardAndReverse,
                         Layout L = Kernel);

  size_t numNodes() const { return FwdRow.empty() ? 0 : FwdRow.size() - 1; }

  /// Total edge count, cached at freeze time (Graph::numEdges is a full
  /// scan of the per-node vectors).
  size_t numEdges() const { return FwdCol.size(); }

  std::span<const uint32_t> successors(uint32_t Node) const {
    return {FwdCol.data() + FwdRow[Node], FwdCol.data() + FwdRow[Node + 1]};
  }
  std::span<const uint32_t> predecessors(uint32_t Node) const {
    assert(RevCol.size() == FwdCol.size() &&
           "reverse adjacency was not materialized (ForwardOnly freeze)");
    return {RevCol.data() + RevRow[Node], RevCol.data() + RevRow[Node + 1]};
  }

  /// True iff the graph has no cycle (equivalently: no SCC of size > 1
  /// and no self-edge). Settled at freeze time, so this is a
  /// combinational-loop verdict for free.
  bool isAcyclic() const { return Acyclic; }

  /// Number of strongly connected components. Acyclic graphs have the
  /// identity condensation (every node its own component) without ever
  /// running Tarjan.
  uint32_t numComponents() const {
    return Acyclic ? static_cast<uint32_t>(numNodes()) : NumComps;
  }

  /// SCC id of \p Node (the node itself when \ref isAcyclic). For cyclic
  /// graphs, ids follow Tarjan's numbering: reverse topological order of
  /// the condensation, i.e. for every edge u -> v crossing components,
  /// componentOf(v) < componentOf(u).
  uint32_t componentOf(uint32_t Node) const {
    return Acyclic ? Node : Comp[Node];
  }

  /// The nodes of component \p C, grouped at freeze time. Only available
  /// on cyclic graphs — acyclic condensations are the identity and never
  /// materialize member lists.
  std::span<const uint32_t> componentNodes(uint32_t C) const {
    assert(!Acyclic && "acyclic condensations are the identity");
    return {CompNodes.data() + CompRow[C], CompNodes.data() + CompRow[C + 1]};
  }

  /// True iff this freeze carries a sweep layout (always, unless frozen
  /// with \ref Plain on a graph that needed reordering).
  bool hasKernelLayout() const { return KernelLayoutOk; }

  /// Condensation block \p Block's sweep position (identity unless the
  /// layout was materialized). Only meaningful under \ref
  /// hasKernelLayout; node ids map via componentOf first.
  uint32_t kernelPos(uint32_t Block) const {
    return KernelPos.empty() ? Block : KernelPos[Block];
  }

private:
  // Forward and reverse CSR: Row has numNodes()+1 offsets into Col.
  std::vector<uint32_t> FwdRow, FwdCol;
  std::vector<uint32_t> RevRow, RevCol;
  bool Acyclic = true;
  /// Cyclic only: node -> component, plus nodes grouped by component.
  std::vector<uint32_t> Comp;
  std::vector<uint32_t> CompRow, CompNodes;
  uint32_t NumComps = 0;

  /// Kernel (sweep) layout: a CSR over sweep positions, where position
  /// p holds condensation block KernelPos^-1(p) and every edge goes to
  /// a strictly greater position. All three stay EMPTY for the identity
  /// layout (all-ascending acyclic graphs: node ids are already
  /// topological, so the forward CSR doubles as the kernel CSR at zero
  /// cost). Materialized layouts group blocks by dependency level and
  /// sort each level by descending out-degree — high-fanout rows front
  /// their level so their lane rows are still cache-hot when their many
  /// successors OR them in. Intra-block (same-SCC) edges are dropped
  /// and cross-block parallel edges deduplicated during
  /// materialization, so cyclic sweeps never touch componentNodes.
  std::vector<uint32_t> KernelPos;
  std::vector<uint32_t> KernelRow, KernelCol;
  bool KernelLayoutOk = true;

  const uint32_t *kernelRowData() const {
    return KernelRow.empty() ? FwdRow.data() : KernelRow.data();
  }
  const uint32_t *kernelColData() const {
    return KernelRow.empty() ? FwdCol.data() : KernelCol.data();
  }

  friend class ReachabilityKernel;
};

/// Bit-parallel multi-source reachability over a frozen \ref CsrGraph.
///
/// One \ref sweep computes the forward closure of up to laneCount()
/// source nodes simultaneously: afterwards, lane k of \p Node's row
/// (\ref bit, or \ref mask / \ref row for word access) is set iff
/// Sources[k] reaches \p Node — with the same convention as
/// Graph::reachableFrom, so a source always reaches itself. Callers
/// with more sources block them into chunks and sweep per chunk; \ref
/// laneWordsFor picks the widest sensible row for a source count.
///
/// Scratch lives in a \ref Scratch arena — one lane row per
/// condensation block in a single flat row-major array, a frontier
/// bitmap, and the dirty/worklist vectors — either owned by the kernel
/// or borrowed from the caller so repeated kernel constructions (one
/// per module in Stage-1 inference) reuse one allocation per thread.
/// Each sweep discovers the blocks reachable from its sources,
/// propagates lane rows over exactly those in topological (kernel
/// position) order through the runtime-dispatched simd::sweepOps inner
/// loops, and sparsely resets them on the next sweep via the dirty
/// list. The kernel is exact on cyclic graphs: rows live on the
/// condensation, so every member of an SCC shares its component's
/// closure.
class ReachabilityKernel {
public:
  /// Lanes per row word.
  static constexpr uint32_t WordBits = 64;
  /// Widest supported row: 8 words = 512 source lanes.
  static constexpr uint32_t MaxLaneWords = 8;

  /// Reusable sweep scratch. Kernel-independent storage: construct one
  /// per thread and pass it to every kernel that thread builds — each
  /// kernel re-prepares (and right-sizes) it without shrinking
  /// capacity, so steady-state Stage-1 inference performs no scratch
  /// allocation at all. A Scratch may back only one live kernel at a
  /// time.
  struct Scratch {
    Scratch() = default;
    Scratch(const Scratch &) = delete;
    Scratch &operator=(const Scratch &) = delete;

  private:
    friend class ReachabilityKernel;
    /// Lane rows, NumBlocks x LaneWords row-major.
    std::vector<uint64_t> Mask;
    /// Discovery bitmap, one bit per block.
    std::vector<uint64_t> Frontier;
    /// Blocks touched by the previous sweep: the sparse reset set.
    std::vector<uint32_t> Dirty;
    /// Discovery worklist, reused across sweeps.
    std::vector<uint32_t> Work;
  };

  /// Self-contained kernel with \p LaneWords-word rows (1, 2, 4 or 8).
  /// \p G must outlive the kernel and carry a kernel layout.
  explicit ReachabilityKernel(const CsrGraph &G, uint32_t LaneWords = 1)
      : ReachabilityKernel(G, OwnScratch, LaneWords) {}

  /// Kernel borrowing \p S (see \ref Scratch). \p G and \p S must
  /// outlive the kernel.
  ReachabilityKernel(const CsrGraph &G, Scratch &S, uint32_t LaneWords = 1);

  ReachabilityKernel(const ReachabilityKernel &) = delete;
  ReachabilityKernel &operator=(const ReachabilityKernel &) = delete;

  /// The widest useful row for sweeping \p SourceCount sources:
  /// ceil(SourceCount/64) rounded up to {1,2,4,8}, capped by
  /// simd::maxLaneWords(). More words than sources waste OR bandwidth;
  /// fewer cost extra sweeps.
  static uint32_t laneWordsFor(size_t SourceCount);

  uint32_t laneWords() const { return L; }
  /// Sources per sweep: laneWords() * 64.
  uint32_t laneCount() const { return L * WordBits; }

  /// Computes the closure of \p Sources[0..Count) (Count <=
  /// laneCount()), replacing any previous sweep's results. \returns
  /// true on completion. With an active \p DL the sweep polls it every
  /// few thousand blocks (plus the kernel.cancel failpoint) and returns
  /// false when it fires — the kernel's scratch stays reusable but the
  /// current rows are meaningless and must be discarded. A null \p DL
  /// (the default, and every pre-deadline caller) never aborts.
  bool sweep(const uint32_t *Sources, uint32_t Count,
             const support::Deadline *DL = nullptr);

  /// Post-sweep: \p Node's lane row, laneWords() words. Lane k (bit
  /// k%64 of word k/64) is set iff Sources[k] reaches \p Node
  /// (inclusive of Node == Sources[k]). The pointer is stable for the
  /// kernel's lifetime — hoist it out of per-lane decode loops instead
  /// of re-deriving it per bit test.
  const uint64_t *row(uint32_t Node) const {
    return S->Mask.data() + std::size_t(posOf(Node)) * L;
  }

  /// Post-sweep: lanes 0..63 of \p Node's row. The whole row when
  /// laneWords() == 1 (the historical single-word interface).
  uint64_t mask(uint32_t Node) const { return row(Node)[0]; }

  /// Post-sweep: does Sources[Lane] reach \p Node?
  bool bit(uint32_t Node, uint32_t Lane) const {
    return (row(Node)[Lane / WordBits] >> (Lane % WordBits)) & 1;
  }

private:
  uint32_t posOf(uint32_t Node) const {
    return G->kernelPos(G->componentOf(Node));
  }

  const CsrGraph *G;
  Scratch *S;
  uint32_t L;
  uint32_t NumBlocks;
  /// Backing store for the self-contained constructor; unused (empty)
  /// when scratch is borrowed.
  Scratch OwnScratch;
};

} // namespace wiresort

#endif // WIRESORT_SUPPORT_CSRGRAPH_H
