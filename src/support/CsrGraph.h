//===- support/CsrGraph.h - Frozen CSR graph + bit-parallel reach -*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A frozen compressed-sparse-row snapshot of a \ref Graph plus a
/// bit-parallel multi-source reachability kernel (see docs/KERNEL.md).
///
/// \ref Graph stores adjacency as one heap vector per node, which is the
/// right shape while edges are still being inserted but a poor one for the
/// closure sweeps Stage-1 inference runs over it: every traversal chases a
/// pointer per node and every source pays a fresh visited-set allocation.
/// \ref CsrGraph::freeze packs the edges into two flat arrays (forward and
/// reverse CSR), caches the edge count, and settles the graph's order
/// once. Synthesized netlists create wires in dependency order, so the
/// fill pass usually proves node ids are already topological; the few
/// descending edges that do occur (late-bound output-port wires) are
/// repaired locally by topologically ordering just their downstream
/// closure, which also settles acyclicity. Only genuinely cyclic graphs
/// pay for a Tarjan pass, whose SCC ids come out reverse-topological.
/// Either way, every later closure query walks the condensation in
/// topological order for free, and \ref isAcyclic doubles as a
/// combinational-loop verdict.
///
/// \ref ReachabilityKernel answers "which of these K sources reach node
/// n?" for up to 64 sources per sweep: one machine word per condensation
/// block, seeded with the sources' bits and OR-folded over successors in
/// one topological pass. A module with K inputs costs ceil(K/64) sweeps
/// instead of K BFS traversals. Sweeps are sparse — only blocks actually
/// reachable from the chunk's sources are visited, and scratch is reset
/// through a dirty list — so a sweep over a register-dominated graph
/// costs the size of the reached region, not of the whole module. No
/// per-source allocation anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_CSRGRAPH_H
#define WIRESORT_SUPPORT_CSRGRAPH_H

#include "support/Deadline.h"
#include "support/Graph.h"

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace wiresort {

/// An immutable compressed-sparse-row snapshot of a \ref Graph.
///
/// Freezing settles acyclicity (ascending-ids proof plus a local repair
/// of any descending edges) and, for cyclic graphs only, the SCC
/// condensation (Tarjan). Parallel edges survive the freeze unchanged;
/// they are harmless to every consumer.
class CsrGraph {
public:
  /// Which adjacency arrays \ref freeze materializes. Reverse row
  /// offsets (in-degrees) are cheap — counted during the forward fill —
  /// but filling the reverse column array is a full extra pass over the
  /// edges, so closure-only consumers (Stage-1 inference, the circuit
  /// checkers) skip it.
  enum Edges { ForwardOnly, ForwardAndReverse };

  CsrGraph() = default;

  /// Packs \p G into CSR form and orders it.
  static CsrGraph freeze(const Graph &G, Edges Dirs = ForwardAndReverse);

  size_t numNodes() const { return FwdRow.empty() ? 0 : FwdRow.size() - 1; }

  /// Total edge count, cached at freeze time (Graph::numEdges is a full
  /// scan of the per-node vectors).
  size_t numEdges() const { return FwdCol.size(); }

  std::span<const uint32_t> successors(uint32_t Node) const {
    return {FwdCol.data() + FwdRow[Node], FwdCol.data() + FwdRow[Node + 1]};
  }
  std::span<const uint32_t> predecessors(uint32_t Node) const {
    assert(RevCol.size() == FwdCol.size() &&
           "reverse adjacency was not materialized (ForwardOnly freeze)");
    return {RevCol.data() + RevRow[Node], RevCol.data() + RevRow[Node + 1]};
  }

  /// True iff the graph has no cycle (equivalently: no SCC of size > 1
  /// and no self-edge). Settled at freeze time, so this is a
  /// combinational-loop verdict for free.
  bool isAcyclic() const { return Acyclic; }

  /// Number of strongly connected components. Acyclic graphs have the
  /// identity condensation (every node its own component) without ever
  /// running Tarjan.
  uint32_t numComponents() const {
    return Acyclic ? static_cast<uint32_t>(numNodes()) : NumComps;
  }

  /// SCC id of \p Node (the node itself when \ref isAcyclic). For cyclic
  /// graphs, ids follow Tarjan's numbering: reverse topological order of
  /// the condensation, i.e. for every edge u -> v crossing components,
  /// componentOf(v) < componentOf(u).
  uint32_t componentOf(uint32_t Node) const {
    return Acyclic ? Node : Comp[Node];
  }

  /// The nodes of component \p C, grouped at freeze time. Only available
  /// on cyclic graphs — acyclic condensations are the identity and never
  /// materialize member lists.
  std::span<const uint32_t> componentNodes(uint32_t C) const {
    assert(!Acyclic && "acyclic condensations are the identity");
    return {CompNodes.data() + CompRow[C], CompNodes.data() + CompRow[C + 1]};
  }

private:
  // Forward and reverse CSR: Row has numNodes()+1 offsets into Col.
  std::vector<uint32_t> FwdRow, FwdCol;
  std::vector<uint32_t> RevRow, RevCol;
  bool Acyclic = true;
  /// Acyclic only: nodes in topological order, and each node's position
  /// in that order (the sweep's sort key). Both stay EMPTY when node ids
  /// are already topological (every edge ascends) — the common shape for
  /// synthesized netlists, whose wires are created in dependency order —
  /// in which case the identity order is used. With descending edges the
  /// order is materialized by the repair pass in \ref freeze.
  std::vector<uint32_t> TopoOrder, TopoPos;
  /// Cyclic only: node -> component, plus nodes grouped by component.
  std::vector<uint32_t> Comp;
  std::vector<uint32_t> CompRow, CompNodes;
  uint32_t NumComps = 0;

  friend class ReachabilityKernel;
};

/// Bit-parallel multi-source reachability over a frozen \ref CsrGraph.
///
/// One \ref sweep computes the forward closure of up to 64 source nodes
/// simultaneously: afterwards, bit k of \ref mask(n) is set iff
/// Sources[k] reaches n — with the same convention as
/// Graph::reachableFrom, so a source always reaches itself. Callers with
/// more than 64 sources block them into chunks and sweep per chunk.
///
/// Scratch (one uint64_t lane word and one visited byte per condensation
/// block) is allocated once per kernel; each sweep discovers the blocks
/// reachable from its sources, propagates lane masks over exactly those
/// in topological order, and sparsely resets them on the next sweep via
/// a dirty list. The kernel is exact on cyclic graphs: masks live on the
/// condensation, so every member of an SCC shares its component's
/// closure.
class ReachabilityKernel {
public:
  /// Sources per sweep — one bit lane per machine-word bit.
  static constexpr uint32_t WordBits = 64;

  /// \p G must outlive the kernel.
  explicit ReachabilityKernel(const CsrGraph &G)
      : G(&G), BlockMask(G.numComponents(), 0),
        Seen(G.numComponents(), 0) {}

  /// Computes the closure of \p Sources[0..Count) (Count <= 64),
  /// replacing any previous sweep's results. \returns true on
  /// completion. With an active \p DL the sweep polls it every few
  /// thousand blocks (plus the kernel.cancel failpoint) and returns
  /// false when it fires — the kernel's scratch stays reusable but the
  /// current masks are meaningless and must be discarded. A null \p DL
  /// (the default, and every pre-deadline caller) never aborts.
  bool sweep(const uint32_t *Sources, uint32_t Count,
             const support::Deadline *DL = nullptr);

  /// Post-sweep: bit k set iff Sources[k] reaches \p Node (inclusive of
  /// Node == Sources[k]).
  uint64_t mask(uint32_t Node) const {
    return BlockMask[G->componentOf(Node)];
  }

private:
  const CsrGraph *G;
  /// One lane word per condensation block, all-zero between sweeps
  /// except at Dirty positions.
  std::vector<uint64_t> BlockMask;
  /// Discovery marks for the current sweep, reset through Dirty.
  std::vector<uint8_t> Seen;
  /// Blocks touched by the previous sweep: the sparse reset set.
  std::vector<uint32_t> Dirty;
  /// Discovery worklist, reused across sweeps.
  std::vector<uint32_t> Work;
};

} // namespace wiresort

#endif // WIRESORT_SUPPORT_CSRGRAPH_H
