//===- support/FailPoint.cpp - Fault-injection framework ------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"

#include "support/Trace.h"

#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>

using namespace wiresort;
using namespace wiresort::support;
using namespace wiresort::support::failpoint;

namespace {

/// The process-wide site registry. Sites are heap-allocated and never
/// freed so the references WS_FAILPOINT caches in function-local statics
/// stay valid for the process lifetime (same discipline as the
/// trace::counter registry).
struct Registry {
  std::mutex Mutex;
  std::map<std::string, Site *> Sites;
};

Registry &registry() {
  static Registry *R = new Registry;
  return *R;
}

/// SplitMix64 — the same cheap, well-mixed stream the gen layer's
/// seeded generators rely on; good enough to make prob() streams
/// independent across sites and hit indices.
uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : S)
    H = (H ^ C) * 0x100000001b3ULL;
  return H;
}

} // namespace

bool Site::fireSlow() {
  // The hit index is claimed atomically so concurrent workers hitting
  // the same site observe distinct indices — nth(N) fires exactly once
  // even under a racy schedule.
  const uint64_t Hit = Hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const Mode M = static_cast<Mode>(ModeV.load(std::memory_order_relaxed));
  bool Fire = false;
  switch (M) {
  case Mode::Off:
    break;
  case Mode::Always:
    Fire = true;
    break;
  case Mode::Nth:
    Fire = Hit == Param.load(std::memory_order_relaxed);
    break;
  case Mode::Prob: {
    const uint64_t Stream =
        splitmix64(Seed.load(std::memory_order_relaxed) ^ fnv1a(Name) ^
                   (Hit * 0x2545f4914f6cdd1dULL));
    Fire = Stream < Param.load(std::memory_order_relaxed);
    break;
  }
  }
  if (Fire) {
    Fires.fetch_add(1, std::memory_order_relaxed);
    static trace::Counter &Injected = trace::counter("fault.injected");
    Injected.add();
  }
  return Fire;
}

Site &failpoint::site(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Sites.find(Name);
  if (It == R.Sites.end())
    It = R.Sites.emplace(Name, new Site(Name)).first;
  return *It->second;
}

Status failpoint::configure(const std::string &Spec, uint64_t SeedV) {
  // Parse the whole spec before touching any site: a malformed clause
  // must not leave the process half-armed.
  struct Clause {
    std::string Name;
    Site::Mode M = Site::Mode::Off;
    uint64_t Param = 0;
  };
  std::vector<Clause> Clauses;

  auto fail = [&](const std::string &Why) {
    return Diag(DiagCode::WS503_USAGE,
                "malformed --failpoints spec: " + Why)
        .withNote("spec", Spec);
  };

  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Part = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Part.empty())
      continue;
    size_t Eq = Part.find('=');
    if (Eq == std::string::npos || Eq == 0)
      return fail("expected name=mode, got '" + Part + "'");
    Clause C;
    C.Name = Part.substr(0, Eq);
    std::string ModeStr = Part.substr(Eq + 1);
    if (ModeStr == "always") {
      C.M = Site::Mode::Always;
    } else if (ModeStr == "off") {
      C.M = Site::Mode::Off;
    } else if (ModeStr.rfind("nth(", 0) == 0 && ModeStr.back() == ')') {
      char *EndP = nullptr;
      std::string Num = ModeStr.substr(4, ModeStr.size() - 5);
      unsigned long long N = std::strtoull(Num.c_str(), &EndP, 10);
      if (Num.empty() || *EndP != '\0' || N == 0)
        return fail("nth() expects a positive integer in '" + Part + "'");
      C.M = Site::Mode::Nth;
      C.Param = N;
    } else if (ModeStr.rfind("prob(", 0) == 0 && ModeStr.back() == ')') {
      char *EndP = nullptr;
      std::string Num = ModeStr.substr(5, ModeStr.size() - 6);
      double P = std::strtod(Num.c_str(), &EndP);
      if (Num.empty() || *EndP != '\0' || !(P >= 0.0) || !(P <= 1.0))
        return fail("prob() expects a probability in [0,1] in '" + Part +
                    "'");
      C.M = Site::Mode::Prob;
      // Scale to the full 64-bit hash range; ldexp keeps P == 1.0 from
      // overflowing to 0.
      C.Param = P >= 1.0 ? UINT64_MAX
                         : static_cast<uint64_t>(std::ldexp(P, 64));
    } else {
      return fail("unknown mode '" + ModeStr + "' in '" + Part + "'");
    }
    Clauses.push_back(std::move(C));
  }

  for (const Clause &C : Clauses) {
    Site &S = site(C.Name);
    S.Param.store(C.Param, std::memory_order_relaxed);
    S.Seed.store(SeedV, std::memory_order_relaxed);
    S.ModeV.store(static_cast<uint8_t>(C.M), std::memory_order_relaxed);
    S.Armed.store(C.M != Site::Mode::Off, std::memory_order_relaxed);
  }
  return {};
}

Status failpoint::configureFromEnv() {
  // Interning the fault counters here — the CLI calls this
  // unconditionally at startup — makes `fault.*` visible at zero in
  // every stats report, armed or not (the trace-contract stage of
  // tools/run_tests.sh greps for them).
  (void)trace::counter("fault.injected");
  (void)trace::counter("fault.retries");
  (void)trace::counter("fault.cancelled_modules");
  (void)trace::counter("fault.quarantined_records");

  const char *Spec = std::getenv("WIRESORT_FAILPOINTS");
  if (!Spec || !*Spec)
    return {};
  uint64_t Seed = 0;
  if (const char *SeedStr = std::getenv("WIRESORT_FAILPOINT_SEED"))
    Seed = std::strtoull(SeedStr, nullptr, 10);
  return configure(Spec, Seed);
}

void failpoint::disarmAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (auto &[Name, S] : R.Sites) {
    S->Armed.store(false, std::memory_order_relaxed);
    S->ModeV.store(static_cast<uint8_t>(Site::Mode::Off),
                   std::memory_order_relaxed);
    S->Param.store(0, std::memory_order_relaxed);
    S->Hits.store(0, std::memory_order_relaxed);
    S->Fires.store(0, std::memory_order_relaxed);
  }
}

size_t failpoint::armedCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  size_t N = 0;
  for (auto &[Name, S] : R.Sites)
    if (S->Armed.load(std::memory_order_relaxed))
      ++N;
  return N;
}

std::vector<std::string> failpoint::siteNames() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<std::string> Names;
  for (auto &[Name, S] : R.Sites)
    Names.push_back(Name);
  return Names;
}
