//===- support/FailPoint.h - Fault-injection framework ----------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Zero-overhead-when-disabled fault injection (docs/ROBUSTNESS.md). The
/// checking pipeline claims to fail *closed* — a cache that cannot be
/// written degrades to a warning, a worker that throws becomes a
/// structured diag, a deadline that fires produces a partial-progress
/// report — and those claims are only testable if faults can be raised
/// on demand, deterministically, inside the production code paths. A
/// failpoint is a named site compiled into a hot path:
///
///   if (WS_FAILPOINT("cache.save.write"))
///     return simulatedIoError();
///
/// Disabled (the production steady state) a site costs one relaxed
/// atomic load and a branch — the same budget as a trace::Counter, and
/// covered by the same bench_engine overhead smoke. Armed sites evaluate
/// a per-site trigger:
///
///   * `always`   — fire on every hit (deterministic);
///   * `nth(N)`   — fire on exactly the Nth hit, once (deterministic);
///   * `prob(P)`  — fire each hit with probability P, derived from the
///                  configured seed, the site name, and the hit index,
///                  so a (spec, seed) pair replays byte-identically;
///   * `off`      — explicit disarm.
///
/// Sites are configured per run from a spec string
/// ("site=mode,site=mode", e.g. `--failpoints cache.save.write=nth(2)`)
/// or from the environment (WIRESORT_FAILPOINTS /
/// WIRESORT_FAILPOINT_SEED — the channel the crash-recovery tests use to
/// inject faults into a child process). The seed comes from
/// analysis::CheckOptions::FaultSeed on production paths. Every fired
/// site bumps the `fault.injected` trace counter, so fault activity is
/// visible in `wiresort-check --stats` (docs/OBSERVABILITY.md).
///
/// The site registry is in docs/ROBUSTNESS.md; configure() accepts
/// unknown site names (the site is created disarmed-by-name so tooling
/// can pre-arm sites of a binary that registers them lazily).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_FAILPOINT_H
#define WIRESORT_SUPPORT_FAILPOINT_H

#include "support/Diag.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wiresort::support::failpoint {

/// One named injection site. Obtained via \ref site() and cached in a
/// function-local static by the WS_FAILPOINT macro; the reference is
/// stable for the process lifetime.
class Site {
public:
  /// The hot-path query: false in one relaxed load + branch when the
  /// site is not armed; otherwise evaluates the configured trigger
  /// (counting the hit either way).
  bool shouldFire() {
    if (!Armed.load(std::memory_order_relaxed))
      return false;
    return fireSlow();
  }

  const std::string &name() const { return Name; }

  /// Hits observed while armed (trigger evaluations, not fires).
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  /// Times the trigger actually fired.
  uint64_t fires() const { return Fires.load(std::memory_order_relaxed); }

private:
  friend Site &site(const std::string &Name);
  friend Status configure(const std::string &Spec, uint64_t Seed);
  friend void disarmAll();
  friend size_t armedCount();

  explicit Site(std::string Name) : Name(std::move(Name)) {}

  enum class Mode : uint8_t { Off, Always, Nth, Prob };

  /// Evaluates the armed trigger; out of line so the header stays free
  /// of the mixing arithmetic.
  bool fireSlow();

  const std::string Name;
  std::atomic<bool> Armed{false};
  std::atomic<uint8_t> ModeV{static_cast<uint8_t>(Mode::Off)};
  /// Nth: the 1-based hit to fire on. Prob: fire threshold scaled to
  /// 2^64 (hash < Threshold fires).
  std::atomic<uint64_t> Param{0};
  std::atomic<uint64_t> Seed{0};
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Fires{0};
};

/// Interns \p Name in the process-wide registry (creating a disarmed
/// site on first use) and returns its stable reference.
Site &site(const std::string &Name);

/// Arms sites per \p Spec — a comma-separated list of `name=mode` with
/// mode one of `always`, `off`, `nth(N)` (N >= 1), `prob(P)`
/// (0 <= P <= 1). An empty spec is a no-op (sites keep their state).
/// \p Seed feeds the prob() trigger streams. \returns a WS503_USAGE
/// diagnostic naming the offending clause on a malformed spec (no site
/// state is changed in that case).
Status configure(const std::string &Spec, uint64_t Seed = 0);

/// Reads WIRESORT_FAILPOINTS / WIRESORT_FAILPOINT_SEED and configures
/// accordingly (no-op when unset). Also interns the `fault.*` trace
/// counters so they are visible — at zero — in every stats report.
Status configureFromEnv();

/// Disarms every site and resets its hit/fire counts. Tests sandwich
/// their schedules between configure()/disarmAll() so state never leaks
/// across trials.
void disarmAll();

/// Number of currently armed sites (cheap; for assertions and smokes).
size_t armedCount();

/// Names of every interned site, sorted (the registry listing
/// docs/ROBUSTNESS.md is checked against).
std::vector<std::string> siteNames();

} // namespace wiresort::support::failpoint

/// The injection-site macro: evaluates to true when the named fault
/// should fire at this hit. NAME must be a string literal; the site
/// lookup happens once per call site (function-local static).
#define WS_FAILPOINT(NAME)                                                   \
  ([]() -> bool {                                                            \
    static ::wiresort::support::failpoint::Site &WsFpSite =                  \
        ::wiresort::support::failpoint::site(NAME);                          \
    return WsFpSite.shouldFire();                                            \
  }())

#endif // WIRESORT_SUPPORT_FAILPOINT_H
