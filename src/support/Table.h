//===- support/Table.h - Plain-text table formatting ------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small column-aligned table printer used by the benchmark binaries to
/// emit the same rows the paper's tables report.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_TABLE_H
#define WIRESORT_SUPPORT_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace wiresort {

/// Column-aligned plain-text table with a header row.
///
/// Cells are free-form strings; numeric helpers format counts with
/// thousands separators and times with fixed precision so benchmark output
/// visually matches the paper's tables.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends one row; the row is padded or an assertion fires if the arity
  /// does not match the header.
  void addRow(std::vector<std::string> Row);

  /// Renders the table, header first, followed by a separator rule.
  std::string str() const;

  /// Prints \ref str to stdout.
  void print() const;

  /// Formats \p N with thousands separators, e.g. 1517073 -> "1,517,073".
  static std::string withCommas(uint64_t N);

  /// Formats \p Seconds as a fixed-precision seconds string, e.g. "30.176".
  static std::string secondsStr(double Seconds, int Precision = 3);

  /// Formats \p Ratio as a speedup string, e.g. "33.93x".
  static std::string speedupStr(double Ratio);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace wiresort

#endif // WIRESORT_SUPPORT_TABLE_H
