//===- support/Table.cpp - Plain-text table formatting --------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>
#include <sstream>

using namespace wiresort;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity must match header");
  Rows.push_back(std::move(Row));
}

std::string Table::str() const {
  std::vector<size_t> Width(Header.size(), 0);
  for (size_t I = 0; I != Header.size(); ++I)
    Width[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      if (Row[I].size() > Width[I])
        Width[I] = Row[I].size();

  std::ostringstream OS;
  auto emitRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I) {
      OS << Row[I];
      if (I + 1 == Row.size())
        break;
      OS << std::string(Width[I] - Row[I].size() + 2, ' ');
    }
    OS << '\n';
  };

  emitRow(Header);
  size_t Total = 0;
  for (size_t I = 0; I != Width.size(); ++I)
    Total += Width[I] + (I + 1 == Width.size() ? 0 : 2);
  OS << std::string(Total, '-') << '\n';
  for (const auto &Row : Rows)
    emitRow(Row);
  return OS.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string Table::withCommas(uint64_t N) {
  std::string Raw = std::to_string(N);
  std::string Out;
  int Count = 0;
  for (auto It = Raw.rbegin(); It != Raw.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Out.push_back(',');
    Out.push_back(*It);
    ++Count;
  }
  return std::string(Out.rbegin(), Out.rend());
}

std::string Table::secondsStr(double Seconds, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Seconds);
  return Buf;
}

std::string Table::speedupStr(double Ratio) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2fx", Ratio);
  return Buf;
}
