//===- support/Diag.cpp - Structured diagnostics --------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/Diag.h"

#include <sstream>

using namespace wiresort;
using namespace wiresort::support;

const char *support::diagCodeName(DiagCode Code) {
  switch (Code) {
  case DiagCode::WS101_COMB_LOOP:
    return "WS101_COMB_LOOP";
  case DiagCode::WS102_ASCRIPTION_MISMATCH:
    return "WS102_ASCRIPTION_MISMATCH";
  case DiagCode::WS103_ASCRIPTION_INCOMPLETE:
    return "WS103_ASCRIPTION_INCOMPLETE";
  case DiagCode::WS104_CONTRACT_VIOLATION:
    return "WS104_CONTRACT_VIOLATION";
  case DiagCode::WS201_BLIF_SYNTAX:
    return "WS201_BLIF_SYNTAX";
  case DiagCode::WS202_BLIF_STRUCTURE:
    return "WS202_BLIF_STRUCTURE";
  case DiagCode::WS211_VERILOG_LEX:
    return "WS211_VERILOG_LEX";
  case DiagCode::WS212_VERILOG_SYNTAX:
    return "WS212_VERILOG_SYNTAX";
  case DiagCode::WS213_VERILOG_UNSUPPORTED:
    return "WS213_VERILOG_UNSUPPORTED";
  case DiagCode::WS221_SUMMARY_SYNTAX:
    return "WS221_SUMMARY_SYNTAX";
  case DiagCode::WS301_SIM_BUILD:
    return "WS301_SIM_BUILD";
  case DiagCode::WS302_SIM_COMB_LOOP:
    return "WS302_SIM_COMB_LOOP";
  case DiagCode::WS401_NETLIST_CYCLE:
    return "WS401_NETLIST_CYCLE";
  case DiagCode::WS501_IO_ERROR:
    return "WS501_IO_ERROR";
  case DiagCode::WS502_CACHE_FORMAT:
    return "WS502_CACHE_FORMAT";
  case DiagCode::WS503_USAGE:
    return "WS503_USAGE";
  case DiagCode::WS601_CANCELLED:
    return "WS601_CANCELLED";
  case DiagCode::WS602_CACHE_IO:
    return "WS602_CACHE_IO";
  case DiagCode::WS603_CACHE_CORRUPT:
    return "WS603_CACHE_CORRUPT";
  case DiagCode::WS604_WORKER_PANIC:
    return "WS604_WORKER_PANIC";
  case DiagCode::WS605_CACHE_MIGRATED:
    return "WS605_CACHE_MIGRATED";
  case DiagCode::WS606_TRANSPORT_TIMEOUT:
    return "WS606_TRANSPORT_TIMEOUT";
  case DiagCode::WS607_SERVER_BUSY:
    return "WS607_SERVER_BUSY";
  }
  return "WS000_UNKNOWN";
}

const char *support::severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "?";
}

std::string Diag::note(const std::string &Key) const {
  for (const auto &[K, V] : Notes)
    if (K == Key)
      return V;
  return "";
}

std::vector<std::string> Diag::witnessLabels() const {
  std::vector<std::string> Labels;
  Labels.reserve(Witness.size());
  for (const WitnessHop &Hop : Witness)
    Labels.push_back(Hop.label());
  return Labels;
}

std::string Diag::describe() const {
  std::string Out;
  if (Loc && !Loc->File.empty()) {
    Out += Loc->File;
    Out += ':';
  }
  if (Loc && Loc->Line) {
    Out += std::to_string(Loc->Line);
    if (Loc->Col) {
      Out += ':';
      Out += std::to_string(Loc->Col);
    }
    Out += ": ";
  } else if (Loc && !Loc->File.empty()) {
    Out += ' ';
  }
  Out += Message;
  if (!Witness.empty()) {
    Out += ": ";
    for (const WitnessHop &Hop : Witness) {
      Out += Hop.label();
      Out += " -> ";
    }
    Out += Witness.front().label();
  }
  return Out;
}

const Diag &DiagList::firstError() const {
  for (const Diag &D : Diags)
    if (D.severity() == Severity::Error)
      return D;
  assert(false && "firstError() on a list without errors");
  return Diags.front();
}

std::string DiagList::describe() const {
  std::string Out;
  for (const Diag &D : Diags) {
    if (!Out.empty())
      Out += '\n';
    Out += D.describe();
  }
  return Out;
}

// --- Text renderer ----------------------------------------------------------

namespace {

/// The \p Line-th (1-based) line of \p Text, without the newline.
std::string lineOf(const std::string &Text, size_t Line) {
  size_t Start = 0;
  for (size_t I = 1; I < Line; ++I) {
    Start = Text.find('\n', Start);
    if (Start == std::string::npos)
      return "";
    ++Start;
  }
  size_t End = Text.find('\n', Start);
  return Text.substr(Start, End == std::string::npos ? std::string::npos
                                                     : End - Start);
}

} // namespace

std::string support::renderText(const Diag &D,
                                const std::string *SourceText) {
  std::string Out;
  const std::optional<SrcLoc> &Loc = D.loc();
  if (Loc) {
    if (!Loc->File.empty()) {
      Out += Loc->File;
      Out += ':';
    }
    if (Loc->Line) {
      Out += std::to_string(Loc->Line);
      Out += ':';
      if (Loc->Col) {
        Out += std::to_string(Loc->Col);
        Out += ':';
      }
    }
    Out += ' ';
  }
  Out += severityName(D.severity());
  Out += '[';
  Out += diagCodeName(D.code());
  Out += "]: ";
  Out += D.message();
  for (const auto &[Key, Value] : D.notes()) {
    Out += "\n  ";
    Out += Key;
    Out += ": ";
    Out += Value;
  }
  if (!D.witness().empty()) {
    Out += "\n  witness:";
    for (const WitnessHop &Hop : D.witness()) {
      Out += ' ';
      Out += Hop.label();
      Out += " ->";
    }
    Out += ' ';
    Out += D.witness().front().label();
  }
  // Caret echo when we can see the source.
  if (SourceText && Loc && Loc->Line) {
    std::string Src = lineOf(*SourceText, Loc->Line);
    if (!Src.empty() || Loc->Col) {
      Out += "\n  ";
      Out += Src;
      Out += "\n  ";
      for (size_t I = 1; I < Loc->Col; ++I)
        Out += (I - 1 < Src.size() && Src[I - 1] == '\t') ? '\t' : ' ';
      Out += '^';
    }
  }
  return Out;
}

std::string support::renderText(const DiagList &Ds,
                                const std::string *SourceText) {
  std::string Out;
  for (const Diag &D : Ds) {
    if (!Out.empty())
      Out += '\n';
    Out += renderText(D, SourceText);
  }
  return Out;
}

// --- JSON renderer ----------------------------------------------------------

namespace {

void jsonEscape(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void jsonString(std::string &Out, const std::string &S) {
  Out += '"';
  jsonEscape(Out, S);
  Out += '"';
}

} // namespace

std::string support::renderJson(const Diag &D) {
  std::string Out = "{\"severity\":";
  jsonString(Out, severityName(D.severity()));
  Out += ",\"code\":";
  jsonString(Out, diagCodeName(D.code()));
  Out += ",\"message\":";
  jsonString(Out, D.message());
  if (D.loc()) {
    Out += ",\"loc\":{\"file\":";
    jsonString(Out, D.loc()->File);
    Out += ",\"line\":" + std::to_string(D.loc()->Line);
    Out += ",\"col\":" + std::to_string(D.loc()->Col);
    Out += '}';
  }
  if (!D.witness().empty()) {
    Out += ",\"witness\":[";
    for (size_t I = 0; I != D.witness().size(); ++I) {
      if (I)
        Out += ',';
      Out += "{\"instance\":";
      jsonString(Out, D.witness()[I].Instance);
      Out += ",\"port\":";
      jsonString(Out, D.witness()[I].Port);
      Out += '}';
    }
    Out += ']';
  }
  if (!D.notes().empty()) {
    Out += ",\"notes\":{";
    for (size_t I = 0; I != D.notes().size(); ++I) {
      if (I)
        Out += ',';
      jsonString(Out, D.notes()[I].first);
      Out += ':';
      jsonString(Out, D.notes()[I].second);
    }
    Out += '}';
  }
  Out += '}';
  return Out;
}

std::string support::renderJson(const DiagList &Ds) {
  std::string Out;
  for (const Diag &D : Ds) {
    Out += renderJson(D);
    Out += '\n';
  }
  return Out;
}
