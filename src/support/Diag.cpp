//===- support/Diag.cpp - Structured diagnostics --------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/Diag.h"

#include <sstream>

using namespace wiresort;
using namespace wiresort::support;

const char *support::diagCodeName(DiagCode Code) {
  switch (Code) {
  case DiagCode::WS101_COMB_LOOP:
    return "WS101_COMB_LOOP";
  case DiagCode::WS102_ASCRIPTION_MISMATCH:
    return "WS102_ASCRIPTION_MISMATCH";
  case DiagCode::WS103_ASCRIPTION_INCOMPLETE:
    return "WS103_ASCRIPTION_INCOMPLETE";
  case DiagCode::WS104_CONTRACT_VIOLATION:
    return "WS104_CONTRACT_VIOLATION";
  case DiagCode::WS201_BLIF_SYNTAX:
    return "WS201_BLIF_SYNTAX";
  case DiagCode::WS202_BLIF_STRUCTURE:
    return "WS202_BLIF_STRUCTURE";
  case DiagCode::WS211_VERILOG_LEX:
    return "WS211_VERILOG_LEX";
  case DiagCode::WS212_VERILOG_SYNTAX:
    return "WS212_VERILOG_SYNTAX";
  case DiagCode::WS213_VERILOG_UNSUPPORTED:
    return "WS213_VERILOG_UNSUPPORTED";
  case DiagCode::WS221_SUMMARY_SYNTAX:
    return "WS221_SUMMARY_SYNTAX";
  case DiagCode::WS301_SIM_BUILD:
    return "WS301_SIM_BUILD";
  case DiagCode::WS302_SIM_COMB_LOOP:
    return "WS302_SIM_COMB_LOOP";
  case DiagCode::WS401_NETLIST_CYCLE:
    return "WS401_NETLIST_CYCLE";
  case DiagCode::WS501_IO_ERROR:
    return "WS501_IO_ERROR";
  case DiagCode::WS502_CACHE_FORMAT:
    return "WS502_CACHE_FORMAT";
  case DiagCode::WS503_USAGE:
    return "WS503_USAGE";
  case DiagCode::WS601_CANCELLED:
    return "WS601_CANCELLED";
  case DiagCode::WS602_CACHE_IO:
    return "WS602_CACHE_IO";
  case DiagCode::WS603_CACHE_CORRUPT:
    return "WS603_CACHE_CORRUPT";
  case DiagCode::WS604_WORKER_PANIC:
    return "WS604_WORKER_PANIC";
  }
  return "WS000_UNKNOWN";
}

const char *support::severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "?";
}

std::string Diag::note(const std::string &Key) const {
  for (const auto &[K, V] : Notes)
    if (K == Key)
      return V;
  return "";
}

std::vector<std::string> Diag::witnessLabels() const {
  std::vector<std::string> Labels;
  Labels.reserve(Witness.size());
  for (const WitnessHop &Hop : Witness)
    Labels.push_back(Hop.label());
  return Labels;
}

std::string Diag::describe() const {
  std::string Out;
  if (Loc && !Loc->File.empty()) {
    Out += Loc->File;
    Out += ':';
  }
  if (Loc && Loc->Line) {
    Out += std::to_string(Loc->Line);
    if (Loc->Col) {
      Out += ':';
      Out += std::to_string(Loc->Col);
    }
    Out += ": ";
  } else if (Loc && !Loc->File.empty()) {
    Out += ' ';
  }
  Out += Message;
  if (!Witness.empty()) {
    Out += ": ";
    for (const WitnessHop &Hop : Witness) {
      Out += Hop.label();
      Out += " -> ";
    }
    Out += Witness.front().label();
  }
  return Out;
}

const Diag &DiagList::firstError() const {
  for (const Diag &D : Diags)
    if (D.severity() == Severity::Error)
      return D;
  assert(false && "firstError() on a list without errors");
  return Diags.front();
}

std::string DiagList::describe() const {
  std::string Out;
  for (const Diag &D : Diags) {
    if (!Out.empty())
      Out += '\n';
    Out += D.describe();
  }
  return Out;
}

// --- Text renderer ----------------------------------------------------------

namespace {

/// The \p Line-th (1-based) line of \p Text, without the newline.
std::string lineOf(const std::string &Text, size_t Line) {
  size_t Start = 0;
  for (size_t I = 1; I < Line; ++I) {
    Start = Text.find('\n', Start);
    if (Start == std::string::npos)
      return "";
    ++Start;
  }
  size_t End = Text.find('\n', Start);
  return Text.substr(Start, End == std::string::npos ? std::string::npos
                                                     : End - Start);
}

} // namespace

std::string support::renderText(const Diag &D,
                                const std::string *SourceText) {
  std::string Out;
  const std::optional<SrcLoc> &Loc = D.loc();
  if (Loc) {
    if (!Loc->File.empty()) {
      Out += Loc->File;
      Out += ':';
    }
    if (Loc->Line) {
      Out += std::to_string(Loc->Line);
      Out += ':';
      if (Loc->Col) {
        Out += std::to_string(Loc->Col);
        Out += ':';
      }
    }
    Out += ' ';
  }
  Out += severityName(D.severity());
  Out += '[';
  Out += diagCodeName(D.code());
  Out += "]: ";
  Out += D.message();
  for (const auto &[Key, Value] : D.notes()) {
    Out += "\n  ";
    Out += Key;
    Out += ": ";
    Out += Value;
  }
  if (!D.witness().empty()) {
    Out += "\n  witness:";
    for (const WitnessHop &Hop : D.witness()) {
      Out += ' ';
      Out += Hop.label();
      Out += " ->";
    }
    Out += ' ';
    Out += D.witness().front().label();
  }
  // Caret echo when we can see the source.
  if (SourceText && Loc && Loc->Line) {
    std::string Src = lineOf(*SourceText, Loc->Line);
    if (!Src.empty() || Loc->Col) {
      Out += "\n  ";
      Out += Src;
      Out += "\n  ";
      for (size_t I = 1; I < Loc->Col; ++I)
        Out += (I - 1 < Src.size() && Src[I - 1] == '\t') ? '\t' : ' ';
      Out += '^';
    }
  }
  return Out;
}

std::string support::renderText(const DiagList &Ds,
                                const std::string *SourceText) {
  std::string Out;
  for (const Diag &D : Ds) {
    if (!Out.empty())
      Out += '\n';
    Out += renderText(D, SourceText);
  }
  return Out;
}

// --- JSON renderer ----------------------------------------------------------

namespace {

void jsonEscape(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void jsonString(std::string &Out, const std::string &S) {
  Out += '"';
  jsonEscape(Out, S);
  Out += '"';
}

} // namespace

std::string support::renderJson(const Diag &D) {
  std::string Out = "{\"severity\":";
  jsonString(Out, severityName(D.severity()));
  Out += ",\"code\":";
  jsonString(Out, diagCodeName(D.code()));
  Out += ",\"message\":";
  jsonString(Out, D.message());
  if (D.loc()) {
    Out += ",\"loc\":{\"file\":";
    jsonString(Out, D.loc()->File);
    Out += ",\"line\":" + std::to_string(D.loc()->Line);
    Out += ",\"col\":" + std::to_string(D.loc()->Col);
    Out += '}';
  }
  if (!D.witness().empty()) {
    Out += ",\"witness\":[";
    for (size_t I = 0; I != D.witness().size(); ++I) {
      if (I)
        Out += ',';
      Out += "{\"instance\":";
      jsonString(Out, D.witness()[I].Instance);
      Out += ",\"port\":";
      jsonString(Out, D.witness()[I].Port);
      Out += '}';
    }
    Out += ']';
  }
  if (!D.notes().empty()) {
    Out += ",\"notes\":{";
    for (size_t I = 0; I != D.notes().size(); ++I) {
      if (I)
        Out += ',';
      jsonString(Out, D.notes()[I].first);
      Out += ':';
      jsonString(Out, D.notes()[I].second);
    }
    Out += '}';
  }
  Out += '}';
  return Out;
}

std::string support::renderJson(const DiagList &Ds) {
  std::string Out;
  for (const Diag &D : Ds) {
    Out += renderJson(D);
    Out += '\n';
  }
  return Out;
}

// --- Wire transport ---------------------------------------------------------
//
// encodeDiag / decodeDiag: "WSDIAG v1 <code> <sev> msg <esc> [loc <file>
// <line> <col>] {hop <inst> <port>} {note <key> <val>}", every string
// token %XX-escaped so it contains no space, percent, or control byte.
// An empty string travels as the sentinel token "%00".

namespace {

std::string escapeToken(const std::string &S) {
  static const char *Hex = "0123456789ABCDEF";
  if (S.empty())
    return "%00";
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    if (C == '%' || C == ' ' || C < 0x20) {
      Out += '%';
      Out += Hex[C >> 4];
      Out += Hex[C & 0xf];
    } else {
      Out += static_cast<char>(C);
    }
  }
  return Out;
}

int hexVal(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  return -1;
}

bool unescapeToken(const std::string &Tok, std::string &Out) {
  Out.clear();
  if (Tok == "%00")
    return true;
  for (size_t I = 0; I != Tok.size(); ++I) {
    if (Tok[I] != '%') {
      Out += Tok[I];
      continue;
    }
    if (I + 2 >= Tok.size())
      return false;
    int Hi = hexVal(Tok[I + 1]);
    int Lo = hexVal(Tok[I + 2]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out += static_cast<char>((Hi << 4) | Lo);
    I += 2;
  }
  return true;
}

bool parseU64(const std::string &Tok, uint64_t &Out) {
  if (Tok.empty())
    return false;
  Out = 0;
  for (char C : Tok) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

std::vector<std::string> splitTokens(const std::string &Line) {
  std::vector<std::string> Toks;
  size_t I = 0;
  while (I < Line.size()) {
    size_t J = Line.find(' ', I);
    if (J == std::string::npos)
      J = Line.size();
    if (J > I)
      Toks.push_back(Line.substr(I, J - I));
    I = J + 1;
  }
  return Toks;
}

} // namespace

std::string support::encodeDiag(const Diag &D) {
  std::string Out = "WSDIAG v1 ";
  Out += std::to_string(static_cast<unsigned>(D.code()));
  Out += ' ';
  Out += std::to_string(static_cast<unsigned>(D.severity()));
  Out += " msg ";
  Out += escapeToken(D.message());
  if (D.loc()) {
    Out += " loc ";
    Out += escapeToken(D.loc()->File);
    Out += ' ';
    Out += std::to_string(D.loc()->Line);
    Out += ' ';
    Out += std::to_string(D.loc()->Col);
  }
  for (const WitnessHop &H : D.witness()) {
    Out += " hop ";
    Out += escapeToken(H.Instance);
    Out += ' ';
    Out += escapeToken(H.Port);
  }
  for (const auto &[Key, Value] : D.notes()) {
    Out += " note ";
    Out += escapeToken(Key);
    Out += ' ';
    Out += escapeToken(Value);
  }
  return Out;
}

std::optional<Diag> support::decodeDiag(const std::string &Line) {
  std::vector<std::string> Toks = splitTokens(Line);
  if (Toks.size() < 6 || Toks[0] != "WSDIAG" || Toks[1] != "v1" ||
      Toks[4] != "msg")
    return std::nullopt;

  uint64_t CodeVal = 0, SevVal = 0;
  if (!parseU64(Toks[2], CodeVal) || CodeVal > 0xffff ||
      !parseU64(Toks[3], SevVal) || SevVal > 2)
    return std::nullopt;
  std::string Message;
  if (!unescapeToken(Toks[5], Message))
    return std::nullopt;

  Diag D(static_cast<DiagCode>(CodeVal), std::move(Message),
         static_cast<Severity>(SevVal));

  size_t I = 6;
  while (I < Toks.size()) {
    const std::string &Kind = Toks[I];
    if (Kind == "loc") {
      if (I + 3 >= Toks.size())
        return std::nullopt;
      std::string File;
      uint64_t LineNo = 0, ColNo = 0;
      if (!unescapeToken(Toks[I + 1], File) ||
          !parseU64(Toks[I + 2], LineNo) || !parseU64(Toks[I + 3], ColNo))
        return std::nullopt;
      SrcLoc Loc;
      Loc.File = std::move(File);
      Loc.Line = LineNo;
      Loc.Col = ColNo;
      D = std::move(D).withLoc(std::move(Loc));
      I += 4;
    } else if (Kind == "hop") {
      if (I + 2 >= Toks.size())
        return std::nullopt;
      std::string Inst, Port;
      if (!unescapeToken(Toks[I + 1], Inst) ||
          !unescapeToken(Toks[I + 2], Port))
        return std::nullopt;
      D.addHop(std::move(Inst), std::move(Port));
      I += 3;
    } else if (Kind == "note") {
      if (I + 2 >= Toks.size())
        return std::nullopt;
      std::string Key, Value;
      if (!unescapeToken(Toks[I + 1], Key) ||
          !unescapeToken(Toks[I + 2], Value))
        return std::nullopt;
      D = std::move(D).withNote(std::move(Key), std::move(Value));
      I += 3;
    } else {
      return std::nullopt;
    }
  }
  return D;
}
