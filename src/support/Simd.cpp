//===- support/Simd.cpp - Runtime kernel ISA dispatch ---------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "support/Simd.h"

#include "support/SimdSweep.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

using namespace wiresort;
using namespace wiresort::simd;

const char *simd::isaName(KernelIsa Isa) {
  switch (Isa) {
  case KernelIsa::Scalar:
    return "scalar";
  case KernelIsa::Avx2:
    return "avx2";
  case KernelIsa::Avx512:
    return "avx512";
  }
  return "scalar";
}

bool simd::isaSupported(KernelIsa Isa) {
  switch (Isa) {
  case KernelIsa::Scalar:
    return true;
  case KernelIsa::Avx2:
#if defined(WIRESORT_HAVE_AVX2_SWEEP) &&                                       \
    (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
  case KernelIsa::Avx512:
#if defined(WIRESORT_HAVE_AVX512_SWEEP) &&                                     \
    (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx512f");
#else
    return false;
#endif
  }
  return false;
}

KernelIsa simd::bestSupportedIsa() {
  if (isaSupported(KernelIsa::Avx512))
    return KernelIsa::Avx512;
  if (isaSupported(KernelIsa::Avx2))
    return KernelIsa::Avx2;
  return KernelIsa::Scalar;
}

namespace {

/// 255 = not yet resolved. Plain relaxed atomics: a racing first call
/// resolves the same value twice, which is harmless.
std::atomic<uint8_t> ActiveIsaV{255};
std::atomic<uint32_t> MaxLaneWordsV{0};

KernelIsa resolveIsaFromEnv() {
  const char *Env = std::getenv("WIRESORT_KERNEL_ISA");
  KernelIsa Want = bestSupportedIsa();
  if (Env != nullptr) {
    if (std::strcmp(Env, "scalar") == 0)
      Want = KernelIsa::Scalar;
    else if (std::strcmp(Env, "avx2") == 0)
      Want = KernelIsa::Avx2;
    else if (std::strcmp(Env, "avx512") == 0)
      Want = KernelIsa::Avx512;
    // Unknown spellings keep the CPUID default.
  }
  // Clamp an over-wide request down to what this host can execute, so a
  // CI matrix pinning WIRESORT_KERNEL_ISA=avx512 degrades instead of
  // crashing on an AVX2-only machine.
  while (Want != KernelIsa::Scalar && !isaSupported(Want))
    Want = static_cast<KernelIsa>(static_cast<uint8_t>(Want) - 1);
  return Want;
}

uint32_t resolveLanesFromEnv() {
  if (const char *Env = std::getenv("WIRESORT_KERNEL_LANES")) {
    const long V = std::strtol(Env, nullptr, 10);
    if (V == 1 || V == 2 || V == 4 || V == 8)
      return static_cast<uint32_t>(V);
  }
  return 8;
}

} // namespace

KernelIsa simd::activeIsa() {
  uint8_t V = ActiveIsaV.load(std::memory_order_relaxed);
  if (V == 255) {
    V = static_cast<uint8_t>(resolveIsaFromEnv());
    ActiveIsaV.store(V, std::memory_order_relaxed);
  }
  return static_cast<KernelIsa>(V);
}

bool simd::setActiveIsa(KernelIsa Isa) {
  if (!isaSupported(Isa))
    return false;
  ActiveIsaV.store(static_cast<uint8_t>(Isa), std::memory_order_relaxed);
  return true;
}

uint32_t simd::maxLaneWords() {
  uint32_t V = MaxLaneWordsV.load(std::memory_order_relaxed);
  if (V == 0) {
    V = resolveLanesFromEnv();
    MaxLaneWordsV.store(V, std::memory_order_relaxed);
  }
  return V;
}

bool simd::setMaxLaneWords(uint32_t LaneWords) {
  if (LaneWords != 1 && LaneWords != 2 && LaneWords != 4 && LaneWords != 8)
    return false;
  MaxLaneWordsV.store(LaneWords, std::memory_order_relaxed);
  return true;
}

const SweepOps &simd::sweepOpsFor(KernelIsa Isa) {
  switch (Isa) {
  case KernelIsa::Avx512:
#ifdef WIRESORT_HAVE_AVX512_SWEEP
    if (isaSupported(KernelIsa::Avx512))
      return avx512SweepOps();
#endif
    [[fallthrough]];
  case KernelIsa::Avx2:
#ifdef WIRESORT_HAVE_AVX2_SWEEP
    if (isaSupported(KernelIsa::Avx2))
      return avx2SweepOps();
#endif
    [[fallthrough]];
  case KernelIsa::Scalar:
    break;
  }
  return scalarSweepOps();
}

const SweepOps &simd::sweepOps() { return sweepOpsFor(activeIsa()); }
