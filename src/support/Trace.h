//===- support/Trace.h - Tracing and metrics --------------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer (docs/OBSERVABILITY.md): a low-overhead
/// tracing + metrics subsystem every hot layer of the checker is
/// instrumented with. Production RTL flows treat per-pass telemetry as
/// table stakes (Yosys's per-pass logging, LLVM's -ftime-trace); this is
/// the wiresort equivalent, and it is what makes the next round of
/// scaling work measurable instead of anecdotal.
///
/// Three pieces:
///
///  * \ref Span — an RAII timed region. Completed spans are appended to
///    per-thread buffers (no locking on the hot path; a thread registers
///    its buffer once, under a mutex, on first use) and flushed by the
///    owning \ref Session into Chrome trace-event JSON, loadable in
///    Perfetto or about:tracing.
///  * \ref Counter / \ref Histogram — a process-wide registry of named
///    monotonic counters and value distributions (cache hits, kernel
///    words swept, freeze repairs, parse bytes, per-module infer time).
///    Lookup by name pays one mutex acquisition; call sites cache the
///    returned reference in a function-local static so the steady state
///    is a single relaxed atomic add.
///  * \ref Session — the RAII collection window. Constructing a Session
///    resets the registry and thread buffers and flips the global enable
///    flag; finish() flips it back, gathers every buffer, and writes the
///    trace file. Exactly one Session may be live at a time.
///
/// Disabled cost: outside a Session, \ref spansEnabled / \ref
/// countersEnabled are false and every instrumentation point costs one
/// relaxed atomic load and a branch — nothing is allocated, formatted,
/// or stored. The overhead budget (enforced as a smoke check in
/// bench_engine) is < 2% on cold engine runs with tracing disabled.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SUPPORT_TRACE_H
#define WIRESORT_SUPPORT_TRACE_H

#include "support/Diag.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wiresort::trace {

namespace detail {
extern std::atomic<bool> SpansOn;
extern std::atomic<bool> CountersOn;
/// Nanoseconds on the steady clock (same clock as support/Timer.h).
uint64_t nowNs();
/// Appends one completed span to the calling thread's buffer.
void record(const char *Name, const char *Cat, uint64_t StartNs,
            uint64_t EndNs,
            std::vector<std::pair<const char *, std::string>> Args);
} // namespace detail

/// True while a Session with span collection is live. The single branch
/// every instrumentation point pays when tracing is off.
inline bool spansEnabled() {
  return detail::SpansOn.load(std::memory_order_relaxed);
}
/// True while any Session is live (metrics-only sessions included).
inline bool countersEnabled() {
  return detail::CountersOn.load(std::memory_order_relaxed);
}

/// An RAII timed region. Construction samples the clock iff spans are
/// enabled; destruction appends one complete event to the calling
/// thread's buffer. Names and categories must be string literals (they
/// are stored as pointers, never copied).
///
/// Attribute values that are merely *passed through* (an existing
/// std::string, a literal) can be note()'d unconditionally — the copy
/// happens only when the span is active. Guard *computed* values behind
/// active() so the disabled path stays one branch:
///
///   trace::Span S("engine.module", "engine");
///   S.note("module", M.Name);                       // fine: no work when off
///   if (S.active()) S.note("key", expensiveString());  // guard computation
class Span {
public:
  explicit Span(const char *Name, const char *Category = "wiresort")
      : Name(Name), Cat(Category), Active(spansEnabled()),
        StartNs(Active ? detail::nowNs() : 0) {}

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  bool active() const { return Active; }

  Span &note(const char *Key, const std::string &Value) {
    if (Active)
      Args.emplace_back(Key, Value);
    return *this;
  }
  Span &note(const char *Key, const char *Value) {
    if (Active)
      Args.emplace_back(Key, std::string(Value));
    return *this;
  }
  Span &note(const char *Key, uint64_t Value) {
    if (Active)
      Args.emplace_back(Key, std::to_string(Value));
    return *this;
  }

  ~Span() {
    if (Active)
      detail::record(Name, Cat, StartNs, detail::nowNs(), std::move(Args));
  }

private:
  const char *Name;
  const char *Cat;
  bool Active;
  uint64_t StartNs;
  std::vector<std::pair<const char *, std::string>> Args;
};

/// A named monotonic counter. add() is wait-free (one relaxed atomic
/// add) and a single branch when collection is disabled.
class Counter {
public:
  void add(uint64_t N = 1) {
    if (countersEnabled())
      V.fetch_add(N, std::memory_order_relaxed);
  }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A named value distribution: count / sum / min / max, all atomically
/// maintained (min/max via CAS loops — contention is rare because
/// samples are per-module, not per-edge). Timing histograms record
/// microseconds and carry a "_us" name suffix by convention.
class Histogram {
public:
  void record(uint64_t Sample);
  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  uint64_t sum() const { return S.load(std::memory_order_relaxed); }
  /// Smallest recorded sample (0 when empty).
  uint64_t min() const;
  uint64_t max() const { return Mx.load(std::memory_order_relaxed); }
  void reset();

private:
  std::atomic<uint64_t> N{0};
  std::atomic<uint64_t> S{0};
  std::atomic<uint64_t> Mn{UINT64_MAX};
  std::atomic<uint64_t> Mx{0};
};

/// Interns \p Name in the process-wide registry. The returned reference
/// is stable for the process lifetime — cache it in a function-local
/// static at the call site:
///
///   static trace::Counter &Sweeps = trace::counter("kernel.sweeps");
///   Sweeps.add();
Counter &counter(const std::string &Name);
Histogram &histogram(const std::string &Name);

/// Registry snapshots, sorted by name; what Session::statsText /
/// statsJson and the bench --json reports render.
std::vector<std::pair<std::string, uint64_t>> counterSnapshot();

struct HistogramSnapshot {
  std::string Name;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = 0;
  uint64_t Max = 0;
};
std::vector<HistogramSnapshot> histogramSnapshot();

/// One collected span, in flush order (ascending start time). The test
/// suite inspects these; the Chrome writer serializes them.
struct SpanRecord {
  std::string Name;
  std::string Cat;
  /// Nanoseconds relative to the session start.
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  /// Session-scoped thread id (0 = first thread to record).
  uint32_t Tid = 0;
  std::vector<std::pair<std::string, std::string>> Args;
};

struct SessionOptions {
  /// Chrome trace-event JSON destination; "" keeps spans in memory only
  /// (retrievable via Session::spans after finish()).
  std::string TraceOutPath;
  /// When false, only counters/histograms collect — the metrics-only
  /// mode benchmark harnesses use so span bookkeeping cannot perturb
  /// the numbers they report.
  bool CollectSpans = true;
};

/// The RAII collection window. At most one Session is live at a time
/// (asserted). Construction resets the counter/histogram registry and
/// all span buffers, so a session's stats are its own.
///
/// Thread discipline: spans must complete (and their threads must be
/// joined, or synchronized via ThreadPool::wait) before finish() runs;
/// the engine's pools are scoped inside analyze(), so every production
/// caller gets this for free.
class Session {
public:
  explicit Session(SessionOptions Opts = {});
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;
  /// Calls finish() if the caller did not; a failed trace write in the
  /// destructor is swallowed (finish() explicitly to observe it).
  ~Session();

  /// Stops collection, drains every thread buffer into spans(), and
  /// writes the trace file when TraceOutPath was set. Idempotent.
  /// \returns a WS501_IO_ERROR diagnostic when the trace file cannot be
  /// written; an empty Status otherwise.
  support::Status finish();

  /// The collected spans, ascending by start time (populated by
  /// finish()).
  const std::vector<SpanRecord> &spans() const { return Collected; }

  /// The Chrome trace-event JSON document finish() writes: an object
  /// with a "traceEvents" array of complete ("ph":"X") span events —
  /// ts/dur in microseconds, session-scoped tid, args as strings —
  /// followed by one final counter ("ph":"C") event per registry
  /// counter. Every event carries ph/ts/pid/tid, and events are sorted
  /// by ts, so `jq` consumers can rely on monotonic timestamps.
  std::string chromeTraceJson() const;

  /// Human rendering of the registry: counters then histograms, sorted
  /// by name, timing values suffixed "us" (the normalizable token the
  /// golden tests scrub).
  std::string statsText() const;

  /// One NDJSON record (single line, no trailing newline):
  ///   {"type":"stats","counters":{...},"histograms":{"name":{"count":..,
  ///    "sum":..,"min":..,"max":..},...}}
  /// Keys sorted by name; wiresort-check --stats emits this alongside
  /// the diagnostics stream, before the verdict line.
  std::string statsJson() const;

private:
  SessionOptions Opts;
  bool Finished = false;
  std::vector<SpanRecord> Collected;
};

} // namespace wiresort::trace

#endif // WIRESORT_SUPPORT_TRACE_H
