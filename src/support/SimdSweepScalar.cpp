//===- support/SimdSweepScalar.cpp - Portable OR-sweep variant ------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//
//
// Baseline-ISA instantiation of the sweep loops: compiled with the
// project's default flags, so the unrolled scalar OR path is the widest
// this TU ever emits. Always present; the dispatch fallback.
//
//===----------------------------------------------------------------------===//

#define WS_SIMD_NAMESPACE scalar_impl
#define WS_SIMD_ISA_NAME "scalar"
#include "support/SimdSweepImpl.h"

const wiresort::simd::SweepOps &wiresort::simd::scalarSweepOps() {
  return scalar_impl::Ops;
}
