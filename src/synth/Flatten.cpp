//===- synth/Flatten.cpp - RTL-level hierarchy inlining -------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "synth/Flatten.h"

#include <cassert>
#include <map>
#include <string>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::synth;

namespace {

class Inliner {
public:
  Inliner(const Design &D) : D(D) {}

  Module run(ModuleId Top) {
    const Module &M = D.module(Top);
    Out.Name = M.Name;
    std::map<WireId, WireId> InputMap;
    for (WireId In : M.Inputs)
      InputMap[In] = Out.addInput(M.wire(In).Name, M.wire(In).Width);
    emit(M, "", InputMap, /*TopLevel=*/true);
    return std::move(Out);
  }

private:
  /// Copies \p M's contents into Out with \p InputMap pre-binding its
  /// input ports; \returns the local wires carrying each output port.
  std::map<WireId, WireId> emit(const Module &M, const std::string &Prefix,
                                const std::map<WireId, WireId> &InputMap,
                                bool TopLevel) {
    std::map<WireId, WireId> Map = InputMap;
    std::map<WireId, WireId> OutPorts;
    for (WireId W = 0; W != M.numWires(); ++W) {
      if (Map.count(W))
        continue; // Already bound (input port).
      const Wire &Wr = M.wire(W);
      WireKind Kind = Wr.Kind;
      if (!TopLevel && (Kind == WireKind::Input || Kind == WireKind::Output))
        Kind = WireKind::Basic;
      WireId NW = Out.addWire(Prefix + Wr.Name, Kind, Wr.Width,
                              Wr.ConstValue);
      if (TopLevel && Wr.Kind == WireKind::Output)
        Out.Outputs.push_back(NW);
      Map[W] = NW;
      if (Wr.Kind == WireKind::Output)
        OutPorts[W] = NW;
    }
    for (const Net &N : M.Nets) {
      std::vector<WireId> Ins;
      for (WireId In : N.Inputs)
        Ins.push_back(Map.at(In));
      Out.addNet(N.Operation, std::move(Ins), Map.at(N.Output), N.Aux,
                 N.Cover);
    }
    for (const Register &R : M.Registers)
      Out.addRegister(Map.at(R.D), Map.at(R.Q), R.Init);
    for (const Memory &Mem : M.Memories) {
      Memory NewMem = Mem;
      NewMem.Name = Prefix + Mem.Name;
      NewMem.RAddr = Map.at(Mem.RAddr);
      NewMem.RData = Map.at(Mem.RData);
      NewMem.WAddr = Map.at(Mem.WAddr);
      NewMem.WData = Map.at(Mem.WData);
      NewMem.WEnable = Map.at(Mem.WEnable);
      Out.addMemory(std::move(NewMem));
    }
    for (const SubInstance &Inst : M.Instances) {
      const Module &Def = D.module(Inst.Def);
      std::map<WireId, WireId> SubInputs;
      std::map<WireId, WireId> OutBindings;
      for (const auto &[DefPort, Local] : Inst.Bindings) {
        if (Def.isInput(DefPort))
          SubInputs[DefPort] = Map.at(Local);
        else
          OutBindings[DefPort] = Map.at(Local);
      }
      std::map<WireId, WireId> SubOuts =
          emit(Def, Prefix + Inst.Name + ".", SubInputs, /*TopLevel=*/false);
      for (const auto &[DefPort, Local] : OutBindings)
        Out.addNet(Op::Buf, {SubOuts.at(DefPort)}, Local);
    }
    return OutPorts;
  }

  const Design &D;
  Module Out;
};

} // namespace

Module synth::inlineInstances(const Design &D, ModuleId Id) {
  Inliner I(D);
  Module Flat = I.run(Id);
  assert(!Flat.validate() && "inlined module must validate");
  return Flat;
}
