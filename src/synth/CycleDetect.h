//===- synth/CycleDetect.h - Netlist-level cycle detection ------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthesis-time baseline of Table 3: standard cycle detection over
/// a flat primitive-gate netlist. Finding the loop here is easy — "one
/// need only look for cycles in the netlist graph" (Section 1) — but the
/// netlist must first be produced (synth::lower) and is far larger than
/// the RTL, and the loop report names anonymous gate-level bits rather
/// than module ports.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SYNTH_CYCLEDETECT_H
#define WIRESORT_SYNTH_CYCLEDETECT_H

#include "ir/Module.h"
#include "support/Diag.h"

namespace wiresort::synth {

/// Result of gate-level cycle detection.
struct NetlistCycleResult {
  bool HasLoop = false;
  /// WS401_NETLIST_CYCLE diagnostic when a loop is found; its witness
  /// names the flat module and the gate-level wires on the cycle.
  support::DiagList Diags;
  size_t NumWires = 0;
  size_t NumGates = 0;
  double Seconds = 0.0;
};

/// Runs SCC-based cycle detection over \p Flat, which must be
/// instance-free (typically the result of synth::lower). Registers and
/// synchronous memories break paths; asynchronous memory reads are
/// combinational edges.
NetlistCycleResult detectCycles(const ir::Module &Flat);

} // namespace wiresort::synth

#endif // WIRESORT_SYNTH_CYCLEDETECT_H
