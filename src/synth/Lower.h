//===- synth/Lower.h - RTL-to-primitive-gate lowering -----------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthesis front half: lowers a (possibly hierarchical, multi-bit)
/// module into a flat netlist of 1-bit primitive gates, the form a
/// synthesis tool like Yosys hands to cycle detection. This is the
/// expensive transformation the paper's Table 3 baseline must pay: N-bit
/// operations expand into O(N) gates (O(N) per bit for some), memories
/// expand into register files with decoders and mux trees, and hierarchy
/// is inlined per instance — the paper reports netlists 47x larger than
/// the RTL in one example.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SYNTH_LOWER_H
#define WIRESORT_SYNTH_LOWER_H

#include "ir/Design.h"

#include <cstdint>

namespace wiresort::synth {

/// Lowers module \p Id of \p D to a flat 1-bit primitive-gate module.
/// Submodule instances are inlined recursively; every multi-bit operation
/// is bit-blasted; memories become registers plus address decoders and
/// read mux trees. The result validates and contains only primitive ops
/// (ir::isPrimitiveOp) plus registers.
ir::Module lower(const ir::Design &D, ir::ModuleId Id);

/// Number of primitive gates \p Id lowers to — the paper's "Prim. Gates"
/// columns. Equivalent to lower(D, Id).Nets.size() but conventionally
/// named.
size_t primitiveGateCount(const ir::Design &D, ir::ModuleId Id);

/// Gate count without hierarchy flattening: instances contribute their
/// own (recursively flattened) gate count exactly once per *unique*
/// definition, mirroring how Table 3 counts hierarchical BLIF.
size_t hierarchicalGateCount(const ir::Design &D, ir::ModuleId Id);

/// The result of \ref lowerHierarchical: a design whose modules are all
/// bit-level but whose instance structure is preserved — the in-memory
/// analog of the hierarchical BLIF the paper's Table 3 pipeline imports.
struct HierLowered {
  ir::Design Design;
  ir::ModuleId Top = ir::InvalidId;
};

/// Lowers \p Top and every definition it (transitively) instantiates to
/// 1-bit primitive gates, keeping the hierarchy: each unique definition
/// is lowered exactly once (the Table 3 reuse), and instances rebind the
/// per-bit ports. Multi-bit ports become N 1-bit ports named
/// "name[i]" — the same port blow-up the paper notes for BLIF import.
HierLowered lowerHierarchical(const ir::Design &D, ir::ModuleId Top);

/// Flattened instance count below \p Id (Table 3 "Submodules Total").
size_t totalInstanceCount(const ir::Design &D, ir::ModuleId Id);
/// Number of distinct definitions below \p Id (Table 3 "Unique").
size_t uniqueModuleCount(const ir::Design &D, ir::ModuleId Id);

} // namespace wiresort::synth

#endif // WIRESORT_SYNTH_LOWER_H
