//===- synth/Lower.cpp - RTL-to-primitive-gate lowering -------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "synth/Lower.h"

#include <cassert>
#include <map>
#include <set>
#include <string>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::synth;

namespace {

/// Shared bit-blasting machinery: expands nets, registers, and memories
/// of a source module into 1-bit primitive gates of the module under
/// construction. Subclasses decide what happens to submodule instances
/// (inline them or rebind them).
class GateEmitter {
protected:
  GateEmitter(const Design &D, std::string Name) : D(D), Out(std::move(Name)) {}

  static std::string bitName(const std::string &Base, uint16_t Bit) {
    return Base + "[" + std::to_string(Bit) + "]";
  }

  WireId freshBit(const std::string &Name, WireKind Kind = WireKind::Basic) {
    return Out.addWire(Name + "$" + std::to_string(Seq++), Kind, 1);
  }

  WireId constBit(bool Value) {
    auto It = ConstPool.find(Value);
    if (It != ConstPool.end())
      return It->second;
    WireId W = Out.addWire(Value ? "const1" : "const0", WireKind::Const, 1,
                           Value ? 1 : 0);
    ConstPool[Value] = W;
    return W;
  }

  WireId gate(Op Operation, std::vector<WireId> Ins, const char *Hint) {
    WireId Result = freshBit(Hint);
    Out.addNet(Operation, std::move(Ins), Result);
    return Result;
  }

  /// Emits a gate whose output is the pre-created wire \p Into.
  void gateInto(Op Operation, std::vector<WireId> Ins, WireId Into) {
    Out.addNet(Operation, std::move(Ins), Into);
  }

  WireId andTree(const std::vector<WireId> &Ins) {
    return reduceTree(Op::And, Ins);
  }

  WireId reduceTree(Op Operation, std::vector<WireId> Level) {
    assert(!Level.empty());
    while (Level.size() > 1) {
      std::vector<WireId> Next;
      for (size_t I = 0; I + 1 < Level.size(); I += 2)
        Next.push_back(gate(Operation, {Level[I], Level[I + 1]}, "tree"));
      if (Level.size() % 2)
        Next.push_back(Level.back());
      Level = std::move(Next);
    }
    return Level.front();
  }

  using BitMap = std::map<WireId, std::vector<WireId>>;

  /// Creates the per-bit wires for every wire of \p M not already bound
  /// in \p Bits. Ports become real ports when \p PortsArePorts, else
  /// plain wires; output-port bit ids are recorded in \p OutputBits.
  void createBits(const Module &M, const std::string &Prefix, BitMap &Bits,
                  BitMap &OutputBits, bool PortsArePorts) {
    for (WireId W = 0; W != M.numWires(); ++W) {
      if (Bits.count(W))
        continue; // Pre-bound (e.g. inlined instance inputs).
      const Wire &Wr = M.wire(W);
      std::string Name = Prefix + Wr.Name;
      std::vector<WireId> &Vec = Bits[W];
      switch (Wr.Kind) {
      case WireKind::Input:
        for (uint16_t B = 0; B != Wr.Width; ++B)
          Vec.push_back(Out.addInput(bitName(Name, B)));
        break;
      case WireKind::Const:
        for (uint16_t B = 0; B != Wr.Width; ++B)
          Vec.push_back(constBit((Wr.ConstValue >> B) & 1));
        break;
      case WireKind::Reg:
        for (uint16_t B = 0; B != Wr.Width; ++B)
          Vec.push_back(Out.addWire(bitName(Name, B), WireKind::Reg, 1));
        break;
      case WireKind::Output:
        for (uint16_t B = 0; B != Wr.Width; ++B) {
          if (PortsArePorts)
            Vec.push_back(Out.addOutput(bitName(Name, B)));
          else
            Vec.push_back(
                Out.addWire(bitName(Name, B), WireKind::Basic, 1));
        }
        OutputBits[W] = Vec;
        break;
      case WireKind::Basic:
        for (uint16_t B = 0; B != Wr.Width; ++B)
          Vec.push_back(Out.addWire(bitName(Name, B), WireKind::Basic, 1));
        break;
      }
    }
  }

  void lowerNet(const Module &M, const Net &N, BitMap &Bits) {
    const std::vector<WireId> &OutBits = Bits[N.Output];
    auto in = [&](size_t Index) -> const std::vector<WireId> & {
      return Bits[N.Inputs[Index]];
    };
    switch (N.Operation) {
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::Nand:
    case Op::Nor:
    case Op::Xnor:
      for (size_t B = 0; B != OutBits.size(); ++B)
        gateInto(N.Operation, {in(0)[B], in(1)[B]}, OutBits[B]);
      return;
    case Op::Not:
    case Op::Buf:
      for (size_t B = 0; B != OutBits.size(); ++B)
        gateInto(N.Operation, {in(0)[B]}, OutBits[B]);
      return;
    case Op::Mux: {
      WireId Sel = in(0)[0];
      for (size_t B = 0; B != OutBits.size(); ++B)
        gateInto(Op::Mux, {Sel, in(1)[B], in(2)[B]}, OutBits[B]);
      return;
    }
    case Op::Lut: {
      std::vector<WireId> Ins;
      for (size_t I = 0; I != N.Inputs.size(); ++I)
        Ins.push_back(in(I)[0]);
      Out.addNet(Op::Lut, std::move(Ins), OutBits[0], 0, N.Cover);
      return;
    }
    case Op::Add:
    case Op::Sub: {
      bool IsSub = N.Operation == Op::Sub;
      WireId Carry = constBit(IsSub);
      for (size_t B = 0; B != OutBits.size(); ++B) {
        WireId A = in(0)[B];
        WireId Bw = IsSub ? gate(Op::Not, {in(1)[B]}, "sub_nb") : in(1)[B];
        WireId AxB = gate(Op::Xor, {A, Bw}, "add_x");
        gateInto(Op::Xor, {AxB, Carry}, OutBits[B]);
        WireId AaB = gate(Op::And, {A, Bw}, "add_g");
        WireId CaX = gate(Op::And, {Carry, AxB}, "add_p");
        Carry = gate(Op::Or, {AaB, CaX}, "add_c");
      }
      return;
    }
    case Op::Eq: {
      std::vector<WireId> Eqs;
      for (size_t B = 0; B != in(0).size(); ++B)
        Eqs.push_back(gate(Op::Xnor, {in(0)[B], in(1)[B]}, "eq_b"));
      gateInto(Op::Buf, {andTree(Eqs)}, OutBits[0]);
      return;
    }
    case Op::Lt: {
      // LSB-to-MSB ripple comparator.
      WireId Lt = constBit(false);
      for (size_t B = 0; B != in(0).size(); ++B) {
        WireId NotA = gate(Op::Not, {in(0)[B]}, "lt_na");
        WireId BGt = gate(Op::And, {NotA, in(1)[B]}, "lt_g");
        WireId Same = gate(Op::Xnor, {in(0)[B], in(1)[B]}, "lt_e");
        WireId Keep = gate(Op::And, {Same, Lt}, "lt_k");
        Lt = gate(Op::Or, {BGt, Keep}, "lt");
      }
      gateInto(Op::Buf, {Lt}, OutBits[0]);
      return;
    }
    case Op::Concat: {
      // Inputs are listed most-significant first.
      size_t B = 0;
      for (size_t I = N.Inputs.size(); I-- > 0;) {
        const std::vector<WireId> &Part = in(I);
        for (WireId Bit : Part)
          gateInto(Op::Buf, {Bit}, OutBits[B++]);
      }
      assert(B == OutBits.size());
      return;
    }
    case Op::Select:
      for (size_t B = 0; B != OutBits.size(); ++B)
        gateInto(Op::Buf, {in(0)[N.Aux + B]}, OutBits[B]);
      return;
    case Op::AndR:
      gateInto(Op::Buf, {reduceTree(Op::And, in(0))}, OutBits[0]);
      return;
    case Op::OrR:
      gateInto(Op::Buf, {reduceTree(Op::Or, in(0))}, OutBits[0]);
      return;
    case Op::XorR:
      gateInto(Op::Buf, {reduceTree(Op::Xor, in(0))}, OutBits[0]);
      return;
    }
    (void)M;
    assert(false && "unhandled operation in lowering");
  }

  void lowerRegisters(const Module &M, BitMap &Bits) {
    for (const Register &R : M.Registers) {
      const std::vector<WireId> &DBits = Bits[R.D];
      const std::vector<WireId> &QBits = Bits[R.Q];
      for (size_t B = 0; B != QBits.size(); ++B)
        Out.addRegister(DBits[B], QBits[B], (R.Init >> B) & 1);
    }
  }

  void lowerMemory(const Memory &Mem, BitMap &Bits) {
    assert(Mem.AddrWidth <= 14 && "memory too large to expand");
    const size_t Words = size_t(1) << Mem.AddrWidth;
    const std::vector<WireId> &RAddr = Bits[Mem.RAddr];
    const std::vector<WireId> &WAddr = Bits[Mem.WAddr];
    const std::vector<WireId> &WData = Bits[Mem.WData];
    WireId WEn = Bits[Mem.WEnable][0];

    // Storage: Words x DataWidth register bits.
    std::vector<std::vector<WireId>> Word(Words);
    // Precompute complemented write-address bits.
    std::vector<WireId> NWAddr;
    for (WireId A : WAddr)
      NWAddr.push_back(gate(Op::Not, {A}, "mem_nwa"));

    for (size_t W = 0; W != Words; ++W) {
      // One-hot write select for this word.
      std::vector<WireId> Terms;
      for (uint16_t A = 0; A != Mem.AddrWidth; ++A)
        Terms.push_back((W >> A) & 1 ? WAddr[A] : NWAddr[A]);
      WireId Sel = andTree(Terms);
      WireId En = gate(Op::And, {Sel, WEn}, "mem_we");
      Word[W].resize(Mem.DataWidth);
      for (uint16_t Bit = 0; Bit != Mem.DataWidth; ++Bit) {
        WireId Q = freshBit(Mem.Name + "_q", WireKind::Reg);
        WireId DNext = gate(Op::Mux, {En, WData[Bit], Q}, "mem_d");
        Out.addRegister(DNext, Q);
        Word[W][Bit] = Q;
      }
    }

    // Read port: per-bit mux tree over the words, indexed by RAddr.
    auto readTree = [&](uint16_t Bit) {
      std::vector<WireId> Level;
      Level.reserve(Words);
      for (size_t W = 0; W != Words; ++W)
        Level.push_back(Word[W][Bit]);
      for (uint16_t A = 0; A != Mem.AddrWidth; ++A) {
        std::vector<WireId> Next;
        for (size_t I = 0; I != Level.size(); I += 2)
          Next.push_back(
              gate(Op::Mux, {RAddr[A], Level[I + 1], Level[I]}, "mem_r"));
        Level = std::move(Next);
      }
      return Level.front();
    };

    const std::vector<WireId> &RData = Bits[Mem.RData];
    for (uint16_t Bit = 0; Bit != Mem.DataWidth; ++Bit) {
      WireId Value = readTree(Bit);
      if (Mem.SyncRead)
        Out.addRegister(Value, RData[Bit]); // RData bits are reg-kind.
      else
        gateInto(Op::Buf, {Value}, RData[Bit]);
    }
  }

  const Design &D;
  Module Out;
  uint64_t Seq = 0;
  std::map<uint64_t, WireId> ConstPool;
};

/// Flattening emitter: recursively inlines every instance.
class FlatEmitter : public GateEmitter {
public:
  FlatEmitter(const Design &D, std::string Name)
      : GateEmitter(D, std::move(Name)) {}

  Module run(ModuleId Top) {
    const Module &M = D.module(Top);
    BitMap Bits;
    BitMap OutputBits;
    emitBody(M, "", Bits, OutputBits, /*TopLevel=*/true);
    return std::move(Out);
  }

private:
  /// \p Bits may pre-bind input ports (for inlined instances).
  void emitBody(const Module &M, const std::string &Prefix, BitMap &Bits,
                BitMap &OutputBits, bool TopLevel) {
    // For non-top levels, input bits are pre-bound by the caller and
    // output ports become plain wires; at top level ports are ports.
    createBits(M, Prefix, Bits, OutputBits, TopLevel);

    for (const Net &N : M.Nets)
      lowerNet(M, N, Bits);
    lowerRegisters(M, Bits);
    for (const Memory &Mem : M.Memories)
      lowerMemory(Mem, Bits);

    for (const SubInstance &Inst : M.Instances) {
      const Module &Def = D.module(Inst.Def);
      BitMap SubBits;
      std::map<WireId, WireId> OutBindings;
      for (const auto &[DefPort, Local] : Inst.Bindings) {
        if (Def.isInput(DefPort))
          SubBits[DefPort] = Bits[Local];
        else
          OutBindings[DefPort] = Local;
      }
      // Pre-bound inputs keep their kind trick: mark them present so
      // createBits skips them inside the recursive call.
      BitMap SubOutputs;
      emitBody(Def, Prefix + Inst.Name + ".", SubBits, SubOutputs,
               /*TopLevel=*/false);
      for (const auto &[DefPort, Local] : OutBindings) {
        const std::vector<WireId> &Src = SubOutputs.at(DefPort);
        const std::vector<WireId> &Dst = Bits[Local];
        for (size_t B = 0; B != Dst.size(); ++B)
          gateInto(Op::Buf, {Src[B]}, Dst[B]);
      }
    }
  }
};

/// Hierarchy-preserving emitter: lowers one module's own logic; instances
/// are rebound to the already-lowered definitions.
class HierEmitter : public GateEmitter {
public:
  /// Per lowered definition: original port WireId -> its bit ports.
  using PortBitMap = std::map<WireId, std::vector<WireId>>;

  HierEmitter(const Design &D, const Module &M,
              const std::map<ModuleId, ModuleId> &LoweredId,
              const std::map<ModuleId, PortBitMap> &LoweredPorts)
      : GateEmitter(D, M.Name + "$gates"), M(M), LoweredId(LoweredId),
        LoweredPorts(LoweredPorts) {}

  Module run(PortBitMap &PortBits) {
    BitMap Bits;
    BitMap OutputBits;
    createBits(M, "", Bits, OutputBits, /*PortsArePorts=*/true);
    for (WireId Port : M.Inputs)
      PortBits[Port] = Bits[Port];
    for (WireId Port : M.Outputs)
      PortBits[Port] = Bits[Port];

    for (const Net &N : M.Nets)
      lowerNet(M, N, Bits);
    lowerRegisters(M, Bits);
    for (const Memory &Mem : M.Memories)
      lowerMemory(Mem, Bits);

    for (const SubInstance &Inst : M.Instances) {
      SubInstance Lowered;
      Lowered.Def = LoweredId.at(Inst.Def);
      Lowered.Name = Inst.Name;
      const PortBitMap &DefBits = LoweredPorts.at(Inst.Def);
      for (const auto &[DefPort, Local] : Inst.Bindings) {
        const std::vector<WireId> &Ports = DefBits.at(DefPort);
        const std::vector<WireId> &Locals = Bits[Local];
        assert(Ports.size() == Locals.size());
        for (size_t B = 0; B != Ports.size(); ++B)
          Lowered.Bindings.emplace_back(Ports[B], Locals[B]);
      }
      Out.addInstance(std::move(Lowered));
    }
    return std::move(Out);
  }

private:
  const Module &M;
  const std::map<ModuleId, ModuleId> &LoweredId;
  const std::map<ModuleId, PortBitMap> &LoweredPorts;
};

} // namespace

Module synth::lower(const Design &D, ModuleId Id) {
  FlatEmitter E(D, D.module(Id).Name + "$gates");
  return E.run(Id);
}

size_t synth::primitiveGateCount(const Design &D, ModuleId Id) {
  Module Lowered = lower(D, Id);
  size_t Count = 0;
  for (const Net &N : Lowered.Nets)
    if (N.Operation != Op::Buf)
      ++Count;
  return Count;
}

size_t synth::hierarchicalGateCount(const Design &D, ModuleId Id) {
  std::set<ModuleId> Seen;
  size_t Total = 0;
  // Each unique definition contributes its flattened gate count once.
  std::vector<ModuleId> Work{Id};
  while (!Work.empty()) {
    ModuleId Cur = Work.back();
    Work.pop_back();
    if (!Seen.insert(Cur).second)
      continue;
    const Module &M = D.module(Cur);
    Design Shallow; // Count only this module's own logic: lower a copy
                    // with instances stripped.
    Module Copy = M;
    Copy.Instances.clear();
    // Wires driven by instance outputs become inputs of the shallow copy
    // so it still validates.
    std::set<WireId> InstDriven;
    for (const SubInstance &Inst : M.Instances)
      for (const auto &[DefPort, Local] : Inst.Bindings)
        if (D.module(Inst.Def).isOutput(DefPort))
          InstDriven.insert(Local);
    for (WireId W : InstDriven) {
      if (Copy.Wires[W].Kind == WireKind::Output) {
        // An instance output bound straight to a module port: feed the
        // port from a stand-in input instead.
        WireId Stub = Copy.addInput(Copy.Wires[W].Name + "$stub",
                                    Copy.Wires[W].Width);
        Copy.addNet(Op::Buf, {Stub}, W);
      } else {
        Copy.Wires[W].Kind = WireKind::Input;
        Copy.Inputs.push_back(W);
      }
    }
    ModuleId ShallowId = Shallow.addModule(std::move(Copy));
    Total += primitiveGateCount(Shallow, ShallowId);
    for (const SubInstance &Inst : M.Instances)
      Work.push_back(Inst.Def);
  }
  return Total;
}

HierLowered synth::lowerHierarchical(const Design &D, ModuleId Top) {
  // Reachable definitions in dependency order.
  std::optional<std::vector<ModuleId>> Order = D.topologicalModuleOrder();
  assert(Order && "module instantiation must be acyclic");
  std::set<ModuleId> Reachable{Top};
  // Walk the topo order backwards so instantiators mark their children.
  for (auto It = Order->rbegin(); It != Order->rend(); ++It)
    if (Reachable.count(*It))
      for (const SubInstance &Inst : D.module(*It).Instances)
        Reachable.insert(Inst.Def);

  HierLowered Result;
  std::map<ModuleId, ModuleId> LoweredId;
  std::map<ModuleId, HierEmitter::PortBitMap> LoweredPorts;
  for (ModuleId Id : *Order) {
    if (!Reachable.count(Id))
      continue;
    HierEmitter E(D, D.module(Id), LoweredId, LoweredPorts);
    HierEmitter::PortBitMap PortBits;
    Module Lowered = E.run(PortBits);
    LoweredId[Id] = Result.Design.addModule(std::move(Lowered));
    LoweredPorts[Id] = std::move(PortBits);
  }
  Result.Top = LoweredId.at(Top);
  return Result;
}

size_t synth::totalInstanceCount(const Design &D, ModuleId Id) {
  size_t Total = 0;
  for (const SubInstance &Inst : D.module(Id).Instances)
    Total += 1 + totalInstanceCount(D, Inst.Def);
  return Total;
}

size_t synth::uniqueModuleCount(const Design &D, ModuleId Id) {
  std::set<ModuleId> Seen;
  std::vector<ModuleId> Work{Id};
  while (!Work.empty()) {
    ModuleId Cur = Work.back();
    Work.pop_back();
    if (!Seen.insert(Cur).second)
      continue;
    for (const SubInstance &Inst : D.module(Cur).Instances)
      Work.push_back(Inst.Def);
  }
  return Seen.size() - 1; // Exclude Id itself.
}
